// Control-plane-at-scale benchmarks: the PR 9 acceptance pair. At 100k
// active jobs the steady-state controller cost must be O(churn), not
// O(jobs) — delta recompilation against from-scratch compilation, and
// the hierarchical lazy share ledger against the flat pre-refactor roll
// that re-walked the whole universe every λ.
package themisio

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/metrics"
	"themisio/internal/policy"
)

// makeJobsWide is makeJobs with zero-padding wide enough that 100k ids
// stay in lexicographic JobID order (the active-set snapshot contract).
func makeJobsWide(n int) []policy.JobInfo {
	jobs := make([]policy.JobInfo, n)
	for i := range jobs {
		jobs[i] = policy.JobInfo{
			JobID:   fmt.Sprintf("job%06d", i),
			UserID:  fmt.Sprintf("user%03d", i%257),
			GroupID: fmt.Sprintf("grp%d", i%5),
			Nodes:   i%64 + 1,
		}
	}
	return jobs
}

// BenchmarkCompile100kJobs measures one controller recompile at 100k
// active jobs under the three-tier composite policy. "full" is the
// from-scratch Compile the controller used to pay on every generation
// move; "delta" is the incremental Recompile over a churn of 10 jobs
// (10 departures + 10 arrivals per op, the paper's per-λ churn scale),
// chained so each op patches the previous op's epoch exactly as the
// live controller does. The PR 9 acceptance bar is delta ≥ 50× full.
func BenchmarkCompile100kJobs(b *testing.B) {
	const nJobs = 100_000
	const churn = 10
	jobs := makeJobsWide(nJobs)

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := policy.Compile(jobs, policy.GroupUserSizeFair); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("delta", func(b *testing.B) {
		prev, err := policy.Compile(jobs, policy.GroupUserSizeFair)
		if err != nil {
			b.Fatal(err)
		}
		// live is the FIFO of current job ids: each op retires the 10
		// oldest and admits 10 new arrivals, holding the set at 100k.
		live := make([]string, nJobs)
		for i, j := range jobs {
			live[i] = j.JobID
		}
		head, next := 0, nJobs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var d policy.Delta
			for k := 0; k < churn; k++ {
				d.Removed = append(d.Removed, live[head%nJobs])
				id := fmt.Sprintf("job%06d", next)
				d.Added = append(d.Added, policy.JobInfo{
					JobID:   id,
					UserID:  fmt.Sprintf("user%03d", next%257),
					GroupID: fmt.Sprintf("grp%d", next%5),
					Nodes:   next%64 + 1,
				})
				live[head%nJobs] = id
				head++
				next++
			}
			prev, err = policy.Recompile(prev, d)
			if err != nil {
				b.Fatal(err)
			}
		}
		if prev.JobCount() != nJobs {
			b.Fatalf("job count drifted to %d", prev.JobCount())
		}
	})
}

// flatLedgerRoll reproduces the pre-refactor ShareLedger.Roll exactly:
// cumulative counters diffed against the previous snapshot, then a row
// emitted for every active job — O(universe) per λ regardless of how
// many jobs actually serviced bytes. Benchmark baseline only (the
// mutexThemis pattern).
type flatLedgerRoll struct {
	horizon int
	prev    map[string]int64
	windows []map[string]int64
}

func (l *flatLedgerRoll) roll(cum map[string]int64, jobs []policy.JobInfo, shareOf func(string) float64) []metrics.ShareEntry {
	delta := make(map[string]int64)
	for job, n := range cum {
		if d := n - l.prev[job]; d > 0 {
			delta[job] = d
		}
	}
	l.prev = cum
	l.windows = append(l.windows, delta)
	if len(l.windows) > l.horizon {
		l.windows = l.windows[len(l.windows)-l.horizon:]
	}
	bytes := make(map[string]int64)
	var total int64
	for _, w := range l.windows {
		for job, d := range w {
			bytes[job] += d
			total += d
		}
	}
	if total == 0 {
		return nil
	}
	type agg struct {
		compiled float64
		bytes    int64
	}
	users := map[string]*agg{}
	groups := map[string]*agg{}
	add := func(m map[string]*agg, key string, c float64, n int64) {
		a, ok := m[key]
		if !ok {
			a = &agg{}
			m[key] = a
		}
		a.compiled += c
		a.bytes += n
	}
	var out []metrics.ShareEntry
	for _, j := range jobs {
		c := shareOf(j.JobID)
		n := bytes[j.JobID]
		out = append(out, metrics.ShareEntry{
			Kind: "job", ID: j.JobID,
			Compiled: c, Measured: float64(n) / float64(total), Bytes: n,
		})
		add(users, j.UserID, c, n)
		add(groups, j.GroupID, c, n)
	}
	emit := func(kind string, m map[string]*agg) {
		for id, a := range m {
			out = append(out, metrics.ShareEntry{
				Kind: kind, ID: id,
				Compiled: a.compiled, Measured: float64(a.bytes) / float64(total), Bytes: a.bytes,
			})
		}
	}
	emit("user", users)
	emit("group", groups)
	sort.Slice(out, func(i, k int) bool {
		if out[i].Kind != out[k].Kind {
			return out[i].Kind < out[k].Kind
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// BenchmarkLedgerRoll100k measures one λ share-ledger roll on a fabric
// that knows 100k jobs of which 1k serviced bytes in the window.
// "hier" is the hierarchical lazy ledger (per-window deltas, entities
// materialised only for traffic); "flat" the pre-refactor roll that
// diffed a 100k-entry cumulative snapshot and emitted a row per active
// job. The PR 9 acceptance bar is hier ≥ 10× flat.
func BenchmarkLedgerRoll100k(b *testing.B) {
	const nJobs = 100_000
	const active = 1_000
	jobs := makeJobsWide(nJobs)
	snap := &jobtable.ActiveSet{Gen: 1, Jobs: jobs}
	shareOf := func(string) float64 { return 1.0 / nJobs }

	b.Run("hier", func(b *testing.B) {
		l := metrics.NewShareLedger(metrics.DefaultShareHorizon)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delta := make(map[string]int64, active)
			for k := 0; k < active; k++ {
				delta[jobs[(i*active+k)%nJobs].JobID] = 1 << 20
			}
			l.Roll(time.Duration(i)*time.Second, delta, snap.Lookup, shareOf)
		}
	})

	b.Run("flat", func(b *testing.B) {
		l := &flatLedgerRoll{horizon: metrics.DefaultShareHorizon, prev: map[string]int64{}}
		cum := make(map[string]int64, nJobs)
		for _, j := range jobs {
			cum[j.JobID] = 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-refactor contract: a full cumulative snapshot per
			// roll (its construction was part of every λ's cost).
			next := make(map[string]int64, nJobs)
			for job, v := range cum {
				next[job] = v
			}
			for k := 0; k < active; k++ {
				next[jobs[(i*active+k)%nJobs].JobID] += 1 << 20
			}
			cum = next
			if l.roll(cum, jobs, shareOf) == nil {
				b.Fatal("flat roll produced no report")
			}
		}
	})
}
