// Package chash implements the consistent hash ring ThemisIO's user-space
// file system uses to spread files and metadata across servers (§4.3):
// "files and metadata are spread across ThemisIO servers using a
// consistent hash function".
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultReplicas is the number of virtual nodes per server; enough to
// keep the per-server load imbalance within a few percent for the server
// counts in the paper (1–128).
const DefaultReplicas = 128

// Ring is a consistent hash ring over string node names. It is safe for
// concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	keys     []uint64 // sorted virtual-node hashes
	owner    map[uint64]string
	nodes    map[string]bool
}

// New returns a ring with the given number of virtual nodes per server.
// replicas <= 0 selects DefaultReplicas.
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		nodes:    make(map[string]bool),
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV alone clusters badly on short, similar strings (server
	// addresses differing in one digit), which skews the ring's
	// virtual-node spacing to a ~2× max/mean shard imbalance. The
	// splitmix64 finalizer avalanches the bits, bringing occupancy
	// within the balls-in-boxes bound the placement design assumes.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a node into the ring. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		k := hash64(fmt.Sprintf("%s#%d", node, i))
		// On the vanishingly-rare collision, keep the first owner; the
		// node still has replicas-1 other points.
		if _, exists := r.owner[k]; exists {
			continue
		}
		r.owner[k] = node
		r.keys = append(r.keys, k)
	}
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
}

// Remove deletes a node and its virtual points from the ring.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.keys[:0]
	for _, k := range r.keys {
		if r.owner[k] == node {
			delete(r.owner, k)
			continue
		}
		kept = append(kept, k)
	}
	r.keys = kept
}

// Nodes returns the current node set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns the node owning key. ok is false if the ring is empty.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.keys) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	if i == len(r.keys) {
		i = 0
	}
	return r.owner[r.keys[i]], true
}

// Loads distributes the keys over the ring and returns how many land
// on each node — the balls-in-boxes occupancy check (arXiv:2203.08918)
// behind the virtual-node count: with enough replicas the max/mean
// ratio stays within a small constant of 1, so no server's shard is
// pathologically hot.
func (r *Ring) Loads(keys []string) map[string]int {
	out := make(map[string]int)
	r.mu.RLock()
	for n := range r.nodes {
		out[n] = 0
	}
	r.mu.RUnlock()
	for _, k := range keys {
		if n, ok := r.Lookup(k); ok {
			out[n]++
		}
	}
	return out
}

// LookupN returns up to n distinct nodes for the key, walking the ring
// clockwise — used to pick the stripe set of a striped file.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.keys) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	seen := make(map[string]bool, n)
	var out []string
	for len(out) < n {
		if i >= len(r.keys) {
			i = 0
		}
		node := r.owner[r.keys[i]]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
		i++
	}
	return out
}
