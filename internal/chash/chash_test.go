package chash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestLookupEmpty(t *testing.T) {
	r := New(0)
	if _, ok := r.Lookup("x"); ok {
		t.Fatal("lookup on empty ring should fail")
	}
	if got := r.LookupN("x", 3); got != nil {
		t.Fatalf("LookupN on empty ring = %v", got)
	}
}

func TestLookupDeterministic(t *testing.T) {
	r := New(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	a, _ := r.Lookup("some/file/path")
	for i := 0; i < 100; i++ {
		b, _ := r.Lookup("some/file/path")
		if a != b {
			t.Fatal("lookup not deterministic")
		}
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := New(16)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("len = %d after removes", r.Len())
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	r := New(256)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		n, _ := r.Lookup(fmt.Sprintf("/fs/data/file-%d", i))
		counts[n]++
	}
	want := keys / nodes
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("node %s owns %d keys, want within [%d, %d]", n, c, want/2, want*2)
		}
	}
}

func TestRemovalOnlyMovesOwnedKeys(t *testing.T) {
	r := New(128)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	before := map[string]string{}
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k], _ = r.Lookup(k)
	}
	r.Remove("node2")
	moved := 0
	for k, owner := range before {
		now, _ := r.Lookup(k)
		if owner == "node2" {
			if now == "node2" {
				t.Fatal("removed node still owns a key")
			}
		} else if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed node moved — consistent hashing violated", moved)
	}
}

func TestLookupN(t *testing.T) {
	r := New(64)
	for i := 0; i < 6; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	got := r.LookupN("stripe/file", 3)
	if len(got) != 3 {
		t.Fatalf("LookupN returned %d nodes", len(got))
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatal("duplicate node in stripe set")
		}
		seen[n] = true
	}
	// Requesting more than exist clips to ring size.
	if got := r.LookupN("x", 100); len(got) != 6 {
		t.Fatalf("clipped LookupN = %d", len(got))
	}
	// First node of LookupN matches Lookup.
	one, _ := r.Lookup("stripe/file")
	if got[0] != one {
		t.Fatal("LookupN[0] disagrees with Lookup")
	}
}

// Property: lookups never return an absent node and are stable under
// re-adding an unrelated node.
func TestLookupMembershipProperty(t *testing.T) {
	r := New(32)
	members := map[string]bool{}
	for i := 0; i < 7; i++ {
		n := fmt.Sprintf("srv%d", i)
		r.Add(n)
		members[n] = true
	}
	f := func(key string) bool {
		n, ok := r.Lookup(key)
		return ok && members[n]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Occupancy: with the default 128 virtual nodes per server, spreading
// many keys over the ring keeps the hottest shard within 1.35× the
// mean (the balls-in-boxes bound the placement design leans on,
// arXiv:2203.08918) — the acceptance check for membership-driven
// rebalancing.
func TestOccupancyBalance(t *testing.T) {
	for _, servers := range []int{4, 8, 16} {
		r := New(DefaultReplicas)
		for i := 0; i < servers; i++ {
			r.Add(fmt.Sprintf("srv%02d", i))
		}
		const keys = 100000
		all := make([]string, keys)
		for i := range all {
			all[i] = fmt.Sprintf("/data/job%d/ckpt.%d", i%997, i)
		}
		loads := r.Loads(all)
		if len(loads) != servers {
			t.Fatalf("Loads covers %d servers, want %d", len(loads), servers)
		}
		max, total := 0, 0
		for _, n := range loads {
			total += n
			if n > max {
				max = n
			}
		}
		if total != keys {
			t.Fatalf("Loads accounted %d keys, want %d", total, keys)
		}
		mean := float64(total) / float64(servers)
		if ratio := float64(max) / mean; ratio > 1.35 {
			t.Fatalf("%d servers: max/mean = %.3f, want <= 1.35", servers, ratio)
		}
	}
}

// Occupancy guard at scale: the max/mean key-load ratio must track the
// balls-in-boxes bound for consistent hashing with v virtual nodes per
// server — max/mean ≲ 1 + c·sqrt(ln n / v) for n servers (Karlin-style
// arc-length concentration, arXiv:2203.08918) — so doubling the vnode
// count provably tightens the spread instead of just shuffling it.
// c = 2.5 absorbs the constant in the concentration bound and a slack
// term covers finite-key sampling noise (100k keys ≈ ±2σ of 1/sqrt(k̄)
// per shard). A regression that flattens vnode growth (e.g. hashing
// the server name once and offsetting) fails the tight high-v rows.
func TestOccupancyKarlinBound(t *testing.T) {
	const keys = 100000
	all := make([]string, keys)
	for i := range all {
		all[i] = fmt.Sprintf("/data/job%d/ckpt.%d", i%997, i)
	}
	for _, servers := range []int{8, 16} {
		for _, vnodes := range []int{64, 128, 256, 512} {
			r := New(vnodes)
			for i := 0; i < servers; i++ {
				r.Add(fmt.Sprintf("srv%02d", i))
			}
			loads := r.Loads(all)
			max, total := 0, 0
			for _, n := range loads {
				total += n
				if n > max {
					max = n
				}
			}
			if total != keys {
				t.Fatalf("n=%d v=%d: Loads accounted %d keys, want %d", servers, vnodes, total, keys)
			}
			mean := float64(total) / float64(servers)
			sampling := 2 / math.Sqrt(mean) // ±2σ multinomial noise per shard
			bound := 1 + 2.5*math.Sqrt(math.Log(float64(servers))/float64(vnodes)) + sampling
			if ratio := float64(max) / mean; ratio > bound {
				t.Fatalf("n=%d servers, v=%d vnodes: max/mean = %.3f exceeds Karlin bound %.3f",
					servers, vnodes, ratio, bound)
			}
		}
	}
}
