package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddAndRate(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(500*time.Millisecond, 1e9)
	s.Add(700*time.Millisecond, 1e9)
	s.Add(1500*time.Millisecond, 4e9)
	if got := s.Rate(0); got != 2e9 {
		t.Fatalf("rate(0) = %g", got)
	}
	if got := s.Rate(1); got != 4e9 {
		t.Fatalf("rate(1) = %g", got)
	}
	if got := s.Rate(5); got != 0 {
		t.Fatalf("rate past end = %g", got)
	}
	if got := s.TotalBytes(); got != 6e9 {
		t.Fatalf("total = %g", got)
	}
}

func TestAddSpreadSplitsAcrossBins(t *testing.T) {
	s := NewSeries(time.Second)
	// 4 GB over [0.5s, 2.5s): 0.5/2 in bin0, 1/2 in bin1, 0.5/2 in bin2.
	s.AddSpread(500*time.Millisecond, 2500*time.Millisecond, 4e9)
	if math.Abs(s.Rate(0)-1e9) > 1 || math.Abs(s.Rate(1)-2e9) > 1 || math.Abs(s.Rate(2)-1e9) > 1 {
		t.Fatalf("spread rates = %v", s.Rates())
	}
	// Total mass preserved.
	if math.Abs(s.TotalBytes()-4e9) > 1 {
		t.Fatalf("total = %g", s.TotalBytes())
	}
}

func TestAddSpreadDegenerateInterval(t *testing.T) {
	s := NewSeries(time.Second)
	s.AddSpread(time.Second, time.Second, 5)
	if s.TotalBytes() != 5 {
		t.Fatalf("degenerate spread lost bytes: %g", s.TotalBytes())
	}
}

// Property: AddSpread conserves byte mass for arbitrary intervals.
func TestAddSpreadConservesMassProperty(t *testing.T) {
	f := func(a, b uint16, n uint32) bool {
		t0 := time.Duration(a) * time.Millisecond
		t1 := time.Duration(b) * time.Millisecond
		if t1 < t0 {
			t0, t1 = t1, t0
		}
		bytes := int64(n%1000000) + 1
		s := NewSeries(100 * time.Millisecond)
		s.AddSpread(t0, t1, bytes)
		return math.Abs(s.TotalBytes()-float64(bytes)) < 1e-6*float64(bytes)+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianMeanStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if Median(xs) != 3 {
		t.Fatalf("median = %g", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 || Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty inputs should give 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean")
	}
	sd := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2) > 1e-12 {
		t.Fatalf("stddev = %g, want 2", sd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 50) != 5 {
		t.Fatalf("p50 = %g", Percentile(xs, 50))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 10 {
		t.Fatal("extremes")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty")
	}
}

func TestJainFairness(t *testing.T) {
	if JainFairness([]float64{5, 5, 5}) != 1 {
		t.Fatal("equal allocation should be 1")
	}
	got := JainFairness([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("max unfairness = %g, want 0.25", got)
	}
	if JainFairness(nil) != 1 || JainFairness([]float64{0, 0}) != 1 {
		t.Fatal("degenerate inputs")
	}
}

func TestFormatting(t *testing.T) {
	if got := GBps(21.8e9); got != "21.8 GB/s" {
		t.Fatalf("GBps = %q", got)
	}
	if got := MBps(504e6); got != "504 MB/s" {
		t.Fatalf("MBps = %q", got)
	}
}

func TestRatesBetween(t *testing.T) {
	s := NewSeries(time.Second)
	for i := 0; i < 5; i++ {
		s.Add(time.Duration(i)*time.Second+time.Millisecond, int64(i)*1000)
	}
	got := s.RatesBetween(time.Second, 4*time.Second)
	if len(got) != 3 || got[0] != 1000 || got[2] != 3000 {
		t.Fatalf("rates between = %v", got)
	}
}
