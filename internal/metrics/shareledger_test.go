package metrics

import (
	"math"
	"testing"
	"time"

	"themisio/internal/policy"
)

func ledgerJobs() []policy.JobInfo {
	return []policy.JobInfo{
		{JobID: "j1", UserID: "alice", GroupID: "g1", Nodes: 3},
		{JobID: "j2", UserID: "bob", GroupID: "g1", Nodes: 1},
	}
}

func shareOf(m map[string]float64) func(string) float64 {
	return func(job string) float64 { return m[job] }
}

// lookupOf resolves job ids against a fixed job slice, standing in for
// the job table snapshot's lazy Lookup.
func lookupOf(jobs []policy.JobInfo) func(string) (policy.JobInfo, bool) {
	return func(job string) (policy.JobInfo, bool) {
		for _, j := range jobs {
			if j.JobID == job {
				return j, true
			}
		}
		return policy.JobInfo{}, false
	}
}

func entry(t *testing.T, rep []ShareEntry, kind, id string) ShareEntry {
	t.Helper()
	for _, e := range rep {
		if e.Kind == kind && e.ID == id {
			return e
		}
	}
	t.Fatalf("no %s entry %q in %+v", kind, id, rep)
	return ShareEntry{}
}

func hasEntry(rep []ShareEntry, kind, id string) bool {
	for _, e := range rep {
		if e.Kind == kind && e.ID == id {
			return true
		}
	}
	return false
}

// Rolling accumulates per-window deltas into horizon measured shares;
// user and group rows aggregate their jobs' bytes and compiled shares.
func TestShareLedgerAggregation(t *testing.T) {
	l := NewShareLedger(4)
	comp := map[string]float64{"j1": 0.75, "j2": 0.25}

	l.Roll(time.Second, map[string]int64{"j1": 100, "j2": 100}, lookupOf(ledgerJobs()), shareOf(comp))
	rep := l.Roll(2*time.Second, map[string]int64{"j1": 300, "j2": 100}, lookupOf(ledgerJobs()), shareOf(comp))

	// Horizon bytes: j1 = 100+300, j2 = 100+100 → measured 2/3 vs 1/3.
	j1 := entry(t, rep, "job", "j1")
	if math.Abs(j1.Measured-4.0/6.0) > 1e-9 || j1.Bytes != 400 || j1.Compiled != 0.75 {
		t.Fatalf("j1 entry: %+v", j1)
	}
	alice := entry(t, rep, "user", "alice")
	if alice.Bytes != 400 || math.Abs(alice.Compiled-0.75) > 1e-9 {
		t.Fatalf("alice entry: %+v", alice)
	}
	g1 := entry(t, rep, "group", "g1")
	if g1.Bytes != 600 || math.Abs(g1.Measured-1.0) > 1e-9 || math.Abs(g1.Compiled-1.0) > 1e-9 {
		t.Fatalf("g1 entry: %+v", g1)
	}
	if worst, any := l.MaxResidual("job"); !any || math.Abs(worst-(0.75-4.0/6.0)) > 1e-9 {
		t.Fatalf("MaxResidual = %v %v", worst, any)
	}
}

// An idle window leaves the previous report standing, and old windows
// age out of the horizon — after which an entity with no horizon
// traffic is not materialised at all.
func TestShareLedgerIdleAndHorizon(t *testing.T) {
	l := NewShareLedger(2)
	comp := map[string]float64{"j1": 0.5, "j2": 0.5}

	l.Roll(1, map[string]int64{"j1": 100}, lookupOf(ledgerJobs()), shareOf(comp))
	idle := l.Roll(2, nil, lookupOf(ledgerJobs()), shareOf(comp))
	if e := entry(t, idle, "job", "j1"); e.Bytes != 100 {
		t.Fatalf("idle window must keep the previous report, got %+v", e)
	}
	// Two more active windows push j1's window out of horizon 2.
	l.Roll(3, map[string]int64{"j2": 50}, lookupOf(ledgerJobs()), shareOf(comp))
	rep := l.Roll(4, map[string]int64{"j2": 50}, lookupOf(ledgerJobs()), shareOf(comp))
	if e := entry(t, rep, "job", "j2"); e.Bytes != 100 {
		t.Fatalf("horizon should hold the last 2 windows only, got %+v", e)
	}
	if hasEntry(rep, "job", "j1") || hasEntry(rep, "user", "alice") {
		t.Fatalf("j1 had no bytes inside the horizon and must not be materialised: %+v", rep)
	}
}

// A job that departed the active set but serviced bytes inside the
// horizon still appears as a job row, so measured shares sum to 1 —
// but it attributes to no user/group (its metadata left with it).
func TestShareLedgerDepartedJob(t *testing.T) {
	l := NewShareLedger(4)
	comp := map[string]float64{"j1": 1}
	present := []policy.JobInfo{{JobID: "j1", UserID: "alice", GroupID: "g1"}}
	rep := l.Roll(1, map[string]int64{"j1": 100, "gone": 100}, lookupOf(present), shareOf(comp))
	if e := entry(t, rep, "job", "gone"); e.Measured != 0.5 || e.Compiled != 0 {
		t.Fatalf("departed job entry: %+v", e)
	}
	sum := 0.0
	for _, e := range rep {
		if e.Kind == "job" {
			sum += e.Measured
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("job measured shares sum to %v, want 1", sum)
	}
	if e := entry(t, rep, "user", "alice"); e.Bytes != 100 {
		t.Fatalf("departed job must not attribute to any user: %+v", e)
	}
}

// Group and user roll-ups equal the sum of their lazily-materialised
// member jobs, bytes and compiled shares alike.
func TestShareLedgerRollupSums(t *testing.T) {
	jobs := []policy.JobInfo{
		{JobID: "a", UserID: "u1", GroupID: "g1"},
		{JobID: "b", UserID: "u1", GroupID: "g1"},
		{JobID: "c", UserID: "u2", GroupID: "g1"},
		{JobID: "d", UserID: "u3", GroupID: "g2"},
	}
	comp := map[string]float64{"a": 0.25, "b": 0.25, "c": 0.3, "d": 0.2}
	l := NewShareLedger(4)
	rep := l.Roll(1, map[string]int64{"a": 10, "b": 30, "c": 20, "d": 40}, lookupOf(jobs), shareOf(comp))

	byKind := map[string]map[string]ShareEntry{}
	for _, e := range rep {
		if byKind[e.Kind] == nil {
			byKind[e.Kind] = map[string]ShareEntry{}
		}
		byKind[e.Kind][e.ID] = e
	}
	checks := []struct {
		kind, id string
		members  []string
	}{
		{"user", "u1", []string{"a", "b"}},
		{"user", "u2", []string{"c"}},
		{"user", "u3", []string{"d"}},
		{"group", "g1", []string{"a", "b", "c"}},
		{"group", "g2", []string{"d"}},
	}
	for _, ck := range checks {
		var wantBytes int64
		var wantCompiled, wantMeasured float64
		for _, m := range ck.members {
			j := byKind["job"][m]
			wantBytes += j.Bytes
			wantCompiled += j.Compiled
			wantMeasured += j.Measured
		}
		got := entry(t, rep, ck.kind, ck.id)
		if got.Bytes != wantBytes || math.Abs(got.Compiled-wantCompiled) > 1e-9 ||
			math.Abs(got.Measured-wantMeasured) > 1e-9 {
			t.Fatalf("%s %s = %+v, want sum of %v (bytes %d compiled %v measured %v)",
				ck.kind, ck.id, got, ck.members, wantBytes, wantCompiled, wantMeasured)
		}
	}
}

// ReportTop pages the report: kind filter, |residual|-descending order,
// top-N truncation; n <= 0 returns everything.
func TestShareLedgerReportTop(t *testing.T) {
	jobs := []policy.JobInfo{
		{JobID: "a", UserID: "u1", GroupID: "g1"},
		{JobID: "b", UserID: "u2", GroupID: "g1"},
		{JobID: "c", UserID: "u3", GroupID: "g1"},
	}
	// Measured: a=0.5, b=0.3, c=0.2; residuals: a=+0.2, b=-0.1, c=+0.05.
	comp := map[string]float64{"a": 0.3, "b": 0.4, "c": 0.15}
	l := NewShareLedger(4)
	l.Roll(1, map[string]int64{"a": 50, "b": 30, "c": 20}, lookupOf(jobs), shareOf(comp))

	top := l.ReportTop(2, "job")
	if len(top) != 2 || top[0].ID != "a" || top[1].ID != "b" {
		t.Fatalf("top-2 jobs = %+v, want a then b by |residual|", top)
	}
	for _, e := range l.ReportTop(0, "user") {
		if e.Kind != "user" {
			t.Fatalf("kind filter leaked %+v", e)
		}
	}
	if all := l.ReportTop(0, ""); len(all) != len(l.Report()) {
		t.Fatalf("unfiltered ReportTop returned %d rows, report has %d", len(all), len(l.Report()))
	}
	if all := l.ReportTop(0, "all"); len(all) != len(l.Report()) {
		t.Fatalf(`kind "all" must match every row`)
	}
}
