package metrics

import (
	"math"
	"testing"
	"time"

	"themisio/internal/policy"
)

func ledgerJobs() []policy.JobInfo {
	return []policy.JobInfo{
		{JobID: "j1", UserID: "alice", GroupID: "g1", Nodes: 3},
		{JobID: "j2", UserID: "bob", GroupID: "g1", Nodes: 1},
	}
}

func shareOf(m map[string]float64) func(string) float64 {
	return func(job string) float64 { return m[job] }
}

func entry(t *testing.T, rep []ShareEntry, kind, id string) ShareEntry {
	t.Helper()
	for _, e := range rep {
		if e.Kind == kind && e.ID == id {
			return e
		}
	}
	t.Fatalf("no %s entry %q in %+v", kind, id, rep)
	return ShareEntry{}
}

// Rolling converts cumulative counters to window deltas and measured
// shares; user and group rows aggregate their jobs' bytes and compiled
// shares.
func TestShareLedgerAggregation(t *testing.T) {
	l := NewShareLedger(4)
	comp := map[string]float64{"j1": 0.75, "j2": 0.25}

	l.Roll(time.Second, map[string]int64{"j1": 100, "j2": 100}, ledgerJobs(), shareOf(comp))
	rep := l.Roll(2*time.Second, map[string]int64{"j1": 400, "j2": 200}, ledgerJobs(), shareOf(comp))

	// Horizon bytes: j1 = 100+300, j2 = 100+100 → measured 2/3 vs 1/3.
	j1 := entry(t, rep, "job", "j1")
	if math.Abs(j1.Measured-4.0/6.0) > 1e-9 || j1.Bytes != 400 || j1.Compiled != 0.75 {
		t.Fatalf("j1 entry: %+v", j1)
	}
	alice := entry(t, rep, "user", "alice")
	if alice.Bytes != 400 || math.Abs(alice.Compiled-0.75) > 1e-9 {
		t.Fatalf("alice entry: %+v", alice)
	}
	g1 := entry(t, rep, "group", "g1")
	if g1.Bytes != 600 || math.Abs(g1.Measured-1.0) > 1e-9 || math.Abs(g1.Compiled-1.0) > 1e-9 {
		t.Fatalf("g1 entry: %+v", g1)
	}
	if worst, any := l.MaxResidual("job"); !any || math.Abs(worst-(0.75-4.0/6.0)) > 1e-9 {
		t.Fatalf("MaxResidual = %v %v", worst, any)
	}
}

// An idle window leaves the previous report standing, and old windows
// age out of the horizon.
func TestShareLedgerIdleAndHorizon(t *testing.T) {
	l := NewShareLedger(2)
	comp := map[string]float64{"j1": 0.5, "j2": 0.5}

	l.Roll(1, map[string]int64{"j1": 100}, ledgerJobs(), shareOf(comp))
	idle := l.Roll(2, map[string]int64{"j1": 100}, ledgerJobs(), shareOf(comp))
	if e := entry(t, idle, "job", "j1"); e.Bytes != 100 {
		t.Fatalf("idle window must keep the previous report, got %+v", e)
	}
	// Two more active windows push the first window out of horizon 2.
	l.Roll(3, map[string]int64{"j1": 100, "j2": 50}, ledgerJobs(), shareOf(comp))
	rep := l.Roll(4, map[string]int64{"j1": 100, "j2": 100}, ledgerJobs(), shareOf(comp))
	if e := entry(t, rep, "job", "j2"); e.Bytes != 100 {
		t.Fatalf("horizon should hold the last 2 windows only, got %+v", e)
	}
	if e := entry(t, rep, "job", "j1"); e.Bytes != 0 {
		t.Fatalf("j1 had no bytes inside the horizon, got %+v", e)
	}
}

// A job that departed the active set but serviced bytes inside the
// horizon still appears as a job row, so measured shares sum to 1.
func TestShareLedgerDepartedJob(t *testing.T) {
	l := NewShareLedger(4)
	comp := map[string]float64{"j1": 1}
	rep := l.Roll(1, map[string]int64{"j1": 100, "gone": 100},
		[]policy.JobInfo{{JobID: "j1", UserID: "alice", GroupID: "g1"}}, shareOf(comp))
	if e := entry(t, rep, "job", "gone"); e.Measured != 0.5 || e.Compiled != 0 {
		t.Fatalf("departed job entry: %+v", e)
	}
	sum := 0.0
	for _, e := range rep {
		if e.Kind == "job" {
			sum += e.Measured
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("job measured shares sum to %v, want 1", sum)
	}
}
