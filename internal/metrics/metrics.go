// Package metrics provides time-binned throughput series and summary
// statistics used by every experiment: the paper reports per-second
// throughput samples, medians during sharing phases, standard deviations,
// and fairness shares.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates bytes into fixed-width time bins, producing a
// throughput-over-time curve like the ones in Figures 8–12 of the paper.
type Series struct {
	Bin   time.Duration
	bytes []float64
}

// NewSeries returns a series with the given bin width (the paper samples
// at 1-second intervals).
func NewSeries(bin time.Duration) *Series {
	if bin <= 0 {
		bin = time.Second
	}
	return &Series{Bin: bin}
}

// Add records n bytes transferred at virtual time t.
func (s *Series) Add(t time.Duration, n int64) {
	if n == 0 {
		return
	}
	i := int(t / s.Bin)
	if i < 0 {
		i = 0
	}
	for len(s.bytes) <= i {
		s.bytes = append(s.bytes, 0)
	}
	s.bytes[i] += float64(n)
}

// AddSpread records n bytes transferred uniformly over [t0, t1), spreading
// the mass across the bins the interval covers. This produces smooth
// curves when a single large request spans several bins.
func (s *Series) AddSpread(t0, t1 time.Duration, n int64) {
	if n <= 0 {
		return
	}
	if t1 <= t0 {
		s.Add(t0, n)
		return
	}
	total := float64(t1 - t0)
	first := int(t0 / s.Bin)
	last := int((t1 - 1) / s.Bin)
	for len(s.bytes) <= last {
		s.bytes = append(s.bytes, 0)
	}
	for i := first; i <= last; i++ {
		binStart := time.Duration(i) * s.Bin
		binEnd := binStart + s.Bin
		lo := maxDur(binStart, t0)
		hi := minDur(binEnd, t1)
		if hi > lo {
			s.bytes[i] += float64(n) * float64(hi-lo) / total
		}
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// Bins returns the number of bins.
func (s *Series) Bins() int { return len(s.bytes) }

// Rate returns the throughput of bin i in bytes/second.
func (s *Series) Rate(i int) float64 {
	if i < 0 || i >= len(s.bytes) {
		return 0
	}
	return s.bytes[i] / s.Bin.Seconds()
}

// Rates returns the whole series as bytes/second per bin.
func (s *Series) Rates() []float64 {
	out := make([]float64, len(s.bytes))
	for i := range s.bytes {
		out[i] = s.Rate(i)
	}
	return out
}

// RatesBetween returns bytes/second for bins covering [from, to).
func (s *Series) RatesBetween(from, to time.Duration) []float64 {
	lo := int(from / s.Bin)
	hi := int(to / s.Bin)
	var out []float64
	for i := lo; i < hi; i++ {
		out = append(out, s.Rate(i))
	}
	return out
}

// TotalBytes returns the sum over all bins.
func (s *Series) TotalBytes() float64 {
	t := 0.0
	for _, b := range s.bytes {
		t += b
	}
	return t
}

// Median returns the median of xs; 0 for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Mean returns the arithmetic mean of xs; 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// JainFairness returns Jain's fairness index of the allocation xs:
// (Σx)² / (n·Σx²). 1.0 is perfectly fair; 1/n is maximally unfair.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// GBps formats a bytes/second value in the paper's GB/s units (decimal).
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f GB/s", bytesPerSec/1e9)
}

// MBps formats a bytes/second value in MB/s.
func MBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.0f MB/s", bytesPerSec/1e6)
}
