// Share ledger: per-entity fairness accounting for the live policy
// hot-swap machinery. Each server's scheduler keeps lock-free cumulative
// serviced-byte counters per job (core.Themis.ServedBytes); every λ the
// controller rolls this ledger, which converts the counters into
// per-window deltas, aggregates them to the policy's sharing entities
// (job, user, group), and pairs each entity's *measured* serviced-byte
// share over a bounded window horizon with the *compiled* token share
// the current policy assigns it. The residual between the two is the
// convergence signal the paper's operability story rests on: after a
// live `themisctl policy set`, every server's measured shares should
// track the freshly compiled shares within noise a few λ later — an
// invariant the fairness CI gate enforces at ±0.02.
package metrics

import (
	"sort"
	"sync"
	"time"

	"themisio/internal/policy"
)

// ShareEntry is one sharing entity's accounting at a window close. Kind
// is "job", "user" or "group"; Compiled is the token share the policy
// compiled for the entity at the close (summed over the entity's jobs
// for user/group rows); Measured is the fraction of all serviced bytes
// the entity received over the ledger's horizon; Bytes is the entity's
// absolute serviced bytes over the same horizon.
//
// Measured tracks Compiled only while every entity keeps a backlog:
// opportunity fairness deliberately hands an idle entity's cycles to
// whoever has demand, so an under-demanding entity measures below its
// compiled share and the others above. The residual is a convergence
// check for saturated phases, not a violation detector.
type ShareEntry struct {
	Kind     string
	ID       string
	Compiled float64
	Measured float64
	Bytes    int64
}

// Residual is the measured-minus-compiled convergence residual.
func (e ShareEntry) Residual() float64 { return e.Measured - e.Compiled }

// DefaultShareHorizon is how many λ windows the measured share averages
// over. One window of a busy server holds a few thousand token draws —
// enough for ±0.02 on a ~0.25 share only at the edge of binomial noise —
// so the default horizon keeps per-entity estimates an order of
// magnitude tighter while still forgetting a policy swap within a
// second or two of λs.
const DefaultShareHorizon = 8

// ShareLedger accumulates per-λ serviced-byte windows and produces the
// per-entity share report. Safe for concurrent use: the controller
// rolls it on the λ tick while operator queries read the report.
type ShareLedger struct {
	mu      sync.Mutex
	horizon int
	prev    map[string]int64   // last cumulative counter snapshot
	windows []map[string]int64 // per-window deltas, oldest first
	report  []ShareEntry
	at      time.Duration
}

// NewShareLedger returns a ledger averaging over the given number of λ
// windows (non-positive selects DefaultShareHorizon).
func NewShareLedger(horizon int) *ShareLedger {
	if horizon <= 0 {
		horizon = DefaultShareHorizon
	}
	return &ShareLedger{horizon: horizon}
}

// Roll closes one λ window at time now: cum is the scheduler's
// cumulative serviced-byte counter per job, jobs the active job set
// (attributing jobs to users and groups), and shareOf the compiled
// token share per job under the policy in force at the close. It
// returns the refreshed report. A window in which nothing was serviced
// leaves the previous report standing — an idle λ carries no fairness
// evidence either way.
func (l *ShareLedger) Roll(now time.Duration, cum map[string]int64, jobs []policy.JobInfo, shareOf func(job string) float64) []ShareEntry {
	l.mu.Lock()
	defer l.mu.Unlock()

	delta := make(map[string]int64)
	for job, n := range cum {
		if d := n - l.prev[job]; d > 0 {
			delta[job] = d
		}
	}
	l.prev = cum
	l.windows = append(l.windows, delta)
	if len(l.windows) > l.horizon {
		l.windows = l.windows[len(l.windows)-l.horizon:]
	}

	bytes := make(map[string]int64)
	var total int64
	for _, w := range l.windows {
		for job, d := range w {
			bytes[job] += d
			total += d
		}
	}
	if total == 0 {
		return append([]ShareEntry(nil), l.report...)
	}

	type agg struct {
		compiled float64
		bytes    int64
	}
	users := map[string]*agg{}
	groups := map[string]*agg{}
	known := map[string]bool{}
	var out []ShareEntry
	add := func(m map[string]*agg, key string, compiled float64, b int64) {
		a, ok := m[key]
		if !ok {
			a = &agg{}
			m[key] = a
		}
		a.compiled += compiled
		a.bytes += b
	}
	for _, j := range jobs {
		known[j.JobID] = true
		c := shareOf(j.JobID)
		b := bytes[j.JobID]
		out = append(out, ShareEntry{
			Kind: "job", ID: j.JobID,
			Compiled: c, Measured: float64(b) / float64(total), Bytes: b,
		})
		add(users, j.UserID, c, b)
		add(groups, j.GroupID, c, b)
	}
	// Jobs with serviced bytes in the horizon but no longer in the
	// active set (departed mid-horizon): report them as job rows so the
	// measured shares still sum to 1, but without user/group attribution
	// — their metadata left with them.
	for job, b := range bytes {
		if !known[job] {
			out = append(out, ShareEntry{
				Kind: "job", ID: job,
				Compiled: shareOf(job), Measured: float64(b) / float64(total), Bytes: b,
			})
		}
	}
	emit := func(kind string, m map[string]*agg) {
		for id, a := range m {
			out = append(out, ShareEntry{
				Kind: kind, ID: id,
				Compiled: a.compiled, Measured: float64(a.bytes) / float64(total), Bytes: a.bytes,
			})
		}
	}
	emit("user", users)
	emit("group", groups)
	kindRank := map[string]int{"job": 0, "user": 1, "group": 2}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Kind != out[k].Kind {
			return kindRank[out[i].Kind] < kindRank[out[k].Kind]
		}
		return out[i].ID < out[k].ID
	})
	l.report = out
	l.at = now
	return append([]ShareEntry(nil), out...)
}

// Report returns the latest per-entity report (nil before the first
// non-idle window).
func (l *ShareLedger) Report() []ShareEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ShareEntry(nil), l.report...)
}

// ReportAt returns the virtual/wall time offset of the last window
// close that produced the current report.
func (l *ShareLedger) ReportAt() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.at
}

// MaxResidual returns the largest |measured − compiled| among the
// report's entities of the given kind ("" means all kinds), and whether
// any such entity exists — the scalar the fairness gate bounds.
func (l *ShareLedger) MaxResidual(kind string) (float64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	worst, any := 0.0, false
	for _, e := range l.report {
		if kind != "" && e.Kind != kind {
			continue
		}
		any = true
		if r := e.Residual(); r > worst {
			worst = r
		} else if -r > worst {
			worst = -r
		}
	}
	return worst, any
}
