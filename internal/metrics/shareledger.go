// Share ledger: per-entity fairness accounting for the live policy
// hot-swap machinery. Each server's scheduler keeps lock-free cumulative
// serviced-byte counters per job (core.Themis.ServedBytes); every λ the
// controller rolls this ledger, which converts the counters into
// per-window deltas, aggregates them to the policy's sharing entities
// (job, user, group), and pairs each entity's *measured* serviced-byte
// share over a bounded window horizon with the *compiled* token share
// the current policy assigns it. The residual between the two is the
// convergence signal the paper's operability story rests on: after a
// live `themisctl policy set`, every server's measured shares should
// track the freshly compiled shares within noise a few λ later — an
// invariant the fairness CI gate enforces at ±0.02.
package metrics

import (
	"sort"
	"sync"
	"time"

	"themisio/internal/policy"
)

// ShareEntry is one sharing entity's accounting at a window close. Kind
// is "job", "user" or "group"; Compiled is the token share the policy
// compiled for the entity at the close (summed over the entity's jobs
// for user/group rows); Measured is the fraction of all serviced bytes
// the entity received over the ledger's horizon; Bytes is the entity's
// absolute serviced bytes over the same horizon.
//
// Measured tracks Compiled only while every entity keeps a backlog:
// opportunity fairness deliberately hands an idle entity's cycles to
// whoever has demand, so an under-demanding entity measures below its
// compiled share and the others above. The residual is a convergence
// check for saturated phases, not a violation detector.
type ShareEntry struct {
	Kind     string
	ID       string
	Compiled float64
	Measured float64
	Bytes    int64
}

// Residual is the measured-minus-compiled convergence residual.
func (e ShareEntry) Residual() float64 { return e.Measured - e.Compiled }

// DefaultShareHorizon is how many λ windows the measured share averages
// over. One window of a busy server holds a few thousand token draws —
// enough for ±0.02 on a ~0.25 share only at the edge of binomial noise —
// so the default horizon keeps per-entity estimates an order of
// magnitude tighter while still forgetting a policy swap within a
// second or two of λs.
const DefaultShareHorizon = 8

// ShareLedger accumulates per-λ serviced-byte windows and produces the
// per-entity share report. Safe for concurrent use: the controller
// rolls it on the λ tick while operator queries read the report.
//
// The ledger is hierarchical and lazy: each roll consumes a per-window
// byte *delta* (the scheduler's ServedBytesDelta drain) and
// materialises rows only for jobs that serviced bytes inside the
// horizon, rolling them up into per-user and per-group aggregates. A λ
// roll at 100k known entities with 1k active therefore touches 1k jobs
// plus their entities, never the full universe.
type ShareLedger struct {
	mu      sync.Mutex
	horizon int
	windows []map[string]int64 // per-window serviced-byte deltas, oldest first
	report  []ShareEntry
	at      time.Duration
}

// NewShareLedger returns a ledger averaging over the given number of λ
// windows (non-positive selects DefaultShareHorizon).
func NewShareLedger(horizon int) *ShareLedger {
	if horizon <= 0 {
		horizon = DefaultShareHorizon
	}
	return &ShareLedger{horizon: horizon}
}

// Roll closes one λ window at time now: delta is the scheduler's
// per-job serviced-byte delta for the window (ServedBytesDelta — only
// jobs that actually serviced bytes appear), lookup lazily resolves a
// job id to its active-set info (the snapshot's binary search; a miss
// means the job departed), and shareOf the compiled token share per
// job under the policy in force at the close. It returns the refreshed
// report.
//
// Rows are materialised only for jobs with serviced bytes inside the
// horizon; each resolves through lookup into its user and group
// roll-up. A job that departed mid-horizon still gets a job row — so
// measured shares keep summing to 1 — but no user/group attribution:
// its metadata left with it. A window in which nothing was serviced
// leaves the previous report standing — an idle λ carries no fairness
// evidence either way.
func (l *ShareLedger) Roll(now time.Duration, delta map[string]int64, lookup func(job string) (policy.JobInfo, bool), shareOf func(job string) float64) []ShareEntry {
	l.mu.Lock()
	defer l.mu.Unlock()

	w := make(map[string]int64, len(delta))
	for job, d := range delta {
		if d > 0 {
			w[job] = d
		}
	}
	l.windows = append(l.windows, w)
	if len(l.windows) > l.horizon {
		l.windows = l.windows[len(l.windows)-l.horizon:]
	}

	bytes := make(map[string]int64)
	var total int64
	for _, w := range l.windows {
		for job, d := range w {
			bytes[job] += d
			total += d
		}
	}
	if total == 0 {
		return append([]ShareEntry(nil), l.report...)
	}

	type agg struct {
		compiled float64
		bytes    int64
	}
	users := map[string]*agg{}
	groups := map[string]*agg{}
	out := make([]ShareEntry, 0, len(bytes))
	add := func(m map[string]*agg, key string, compiled float64, b int64) {
		a, ok := m[key]
		if !ok {
			a = &agg{}
			m[key] = a
		}
		a.compiled += compiled
		a.bytes += b
	}
	for job, b := range bytes {
		c := shareOf(job)
		out = append(out, ShareEntry{
			Kind: "job", ID: job,
			Compiled: c, Measured: float64(b) / float64(total), Bytes: b,
		})
		if j, ok := lookup(job); ok {
			add(users, j.UserID, c, b)
			add(groups, j.GroupID, c, b)
		}
	}
	emit := func(kind string, m map[string]*agg) {
		for id, a := range m {
			out = append(out, ShareEntry{
				Kind: kind, ID: id,
				Compiled: a.compiled, Measured: float64(a.bytes) / float64(total), Bytes: a.bytes,
			})
		}
	}
	emit("user", users)
	emit("group", groups)
	sort.Slice(out, func(i, k int) bool {
		if out[i].Kind != out[k].Kind {
			return kindRank[out[i].Kind] < kindRank[out[k].Kind]
		}
		return out[i].ID < out[k].ID
	})
	l.report = out
	l.at = now
	return append([]ShareEntry(nil), out...)
}

// kindRank orders report rows job < user < group.
var kindRank = map[string]int{"job": 0, "user": 1, "group": 2}

// Report returns the latest per-entity report (nil before the first
// non-idle window).
func (l *ShareLedger) Report() []ShareEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ShareEntry(nil), l.report...)
}

// ReportTop returns the report's worst offenders: entities of the
// given kind ("" or "all" means every kind) ordered by |residual|
// descending — ties broken by kind then ID for determinism — truncated
// to n rows. n <= 0 disables truncation. This is what pages the
// `themisctl policy status` view at 100k entities instead of shipping
// the world over the wire.
func (l *ShareLedger) ReportTop(n int, kind string) []ShareEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ShareEntry, 0, len(l.report))
	for _, e := range l.report {
		if kind != "" && kind != "all" && e.Kind != kind {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, k int) bool {
		ri, rk := out[i].Residual(), out[k].Residual()
		if ri < 0 {
			ri = -ri
		}
		if rk < 0 {
			rk = -rk
		}
		if ri != rk {
			return ri > rk
		}
		if out[i].Kind != out[k].Kind {
			return kindRank[out[i].Kind] < kindRank[out[k].Kind]
		}
		return out[i].ID < out[k].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ReportAt returns the virtual/wall time offset of the last window
// close that produced the current report.
func (l *ShareLedger) ReportAt() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.at
}

// MaxResidual returns the largest |measured − compiled| among the
// report's entities of the given kind ("" means all kinds), and whether
// any such entity exists — the scalar the fairness gate bounds.
func (l *ShareLedger) MaxResidual(kind string) (float64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	worst, any := 0.0, false
	for _, e := range l.report {
		if kind != "" && e.Kind != kind {
			continue
		}
		any = true
		if r := e.Residual(); r > worst {
			worst = r
		} else if -r > worst {
			worst = -r
		}
	}
	return worst, any
}
