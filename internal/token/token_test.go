package token

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixValidateGood(t *testing.T) {
	// The user-then-job-fair example of Figure 4: one root queue, two
	// users, six jobs (2 + 4).
	u := NewMatrix(1, 2)
	u.Set(0, 0, 0.5)
	u.Set(0, 1, 0.5)
	if err := u.Validate(); err != nil {
		t.Fatalf("user matrix: %v", err)
	}
	j := NewMatrix(2, 6)
	j.Set(0, 0, 0.5)
	j.Set(0, 1, 0.5)
	for c := 2; c < 6; c++ {
		j.Set(1, c, 0.25)
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("job matrix: %v", err)
	}
	prod := u.Mul(j)
	want := []float64{0.25, 0.25, 0.125, 0.125, 0.125, 0.125}
	for c, w := range want {
		if math.Abs(prod.At(0, c)-w) > 1e-12 {
			t.Fatalf("product[%d] = %g, want %g", c, prod.At(0, c), w)
		}
	}
}

func TestMatrixValidateRowSum(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 0.6)
	m.Set(0, 1, 0.6)
	if err := m.Validate(); err == nil {
		t.Fatal("want row-sum error")
	}
}

func TestMatrixValidateColumnMultiParent(t *testing.T) {
	m := NewMatrix(2, 1)
	m.Set(0, 0, 1)
	m.Set(1, 0, 1)
	if err := m.Validate(); err == nil {
		t.Fatal("want one-parent-per-column error")
	}
}

func TestMatrixValidateNegative(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, -0.5)
	m.Set(0, 1, 1.5)
	if err := m.Validate(); err == nil {
		t.Fatal("want negative-entry error")
	}
}

func TestChainProductEmpty(t *testing.T) {
	if _, err := ChainProduct(nil); err == nil {
		t.Fatal("want error for empty chain")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dimension mismatch")
		}
	}()
	NewMatrix(1, 2).Mul(NewMatrix(3, 1))
}

func TestFromWeightsBasic(t *testing.T) {
	a, err := FromWeights([]string{"a", "b", "c"}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Share("b"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("share(b) = %g, want 0.5", got)
	}
	if got := a.Share("missing"); got != 0 {
		t.Fatalf("share(missing) = %g, want 0", got)
	}
}

func TestFromWeightsErrors(t *testing.T) {
	if _, err := FromWeights([]string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, err := FromWeights([]string{"a"}, []float64{-1}); err == nil {
		t.Fatal("want negative-weight error")
	}
	if _, err := FromWeights([]string{"a", "b"}, []float64{0, 0}); err == nil {
		t.Fatal("want all-zero error")
	}
	a, err := FromWeights(nil, nil)
	if err != nil || len(a.Segments()) != 0 {
		t.Fatalf("empty input should give empty assignment, got %v %v", a, err)
	}
}

func TestLookup(t *testing.T) {
	a, _ := FromWeights([]string{"a", "b"}, []float64{1, 3})
	cases := []struct {
		x    float64
		want string
	}{{0, "a"}, {0.2, "a"}, {0.25, "b"}, {0.7, "b"}, {0.999999, "b"}}
	for _, c := range cases {
		got, ok := a.Lookup(c.x)
		if !ok || got != c.want {
			t.Fatalf("Lookup(%g) = %q, want %q", c.x, got, c.want)
		}
	}
	empty := &Assignment{}
	if _, ok := empty.Lookup(0.5); ok {
		t.Fatal("lookup on empty assignment should fail")
	}
}

// PickEligible over all-eligible jobs converges to segment shares.
func TestPickEligibleFrequencies(t *testing.T) {
	a, _ := FromWeights([]string{"a", "b", "c"}, []float64{1, 2, 5})
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		j, ok := a.PickEligible(func(string) bool { return true }, rng.Float64)
		if !ok {
			t.Fatal("pick failed")
		}
		counts[j]++
	}
	for job, want := range map[string]float64{"a": 1.0 / 8, "b": 2.0 / 8, "c": 5.0 / 8} {
		got := float64(counts[job]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("frequency(%s) = %.3f, want %.3f", job, got, want)
		}
	}
}

// Opportunity fairness: with one job ineligible its mass is redistributed
// proportionally among the rest.
func TestPickEligibleRenormalizes(t *testing.T) {
	a, _ := FromWeights([]string{"a", "b", "c"}, []float64{1, 1, 2})
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		j, _ := a.PickEligible(func(s string) bool { return s != "c" }, rng.Float64)
		counts[j]++
	}
	if counts["c"] != 0 {
		t.Fatal("ineligible job was picked")
	}
	got := float64(counts["a"]) / n
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("frequency(a) = %.3f, want 0.5 after renormalization", got)
	}
}

func TestPickEligibleNoneEligible(t *testing.T) {
	a, _ := FromWeights([]string{"a"}, []float64{1})
	if _, ok := a.PickEligible(func(string) bool { return false }, func() float64 { return 0 }); ok {
		t.Fatal("pick should fail with no eligible jobs")
	}
}

// Property: any set of positive weights yields a valid tiling of [0,1)
// whose shares match the normalised weights.
func TestFromWeightsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		jobs := make([]string, len(raw))
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			jobs[i] = string(rune('A' + i%26))
			// rune collisions are fine: FromWeights keys by position for
			// layout; Share sums only the last index, so make ids unique.
			jobs[i] = jobs[i] + "-" + string(rune('0'+i%10)) + "-" + itoa(i)
			weights[i] = float64(r%1000) + 1
			total += weights[i]
		}
		a, err := FromWeights(jobs, weights)
		if err != nil {
			return false
		}
		if a.Validate() != nil {
			return false
		}
		for i, j := range jobs {
			if math.Abs(a.Share(j)-weights[i]/total) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup(x) always lands in the segment containing x.
func TestLookupProperty(t *testing.T) {
	a, _ := FromWeights([]string{"a", "b", "c", "d"}, []float64{3, 1, 4, 2})
	f := func(xr uint32) bool {
		x := float64(xr) / float64(math.MaxUint32+1.0)
		job, ok := a.Lookup(x)
		if !ok {
			return false
		}
		for _, s := range a.Segments() {
			if s.Job == job {
				return x >= s.Lo-Epsilon && x < s.Hi+Epsilon
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
