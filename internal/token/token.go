// Package token implements the statistical token design of ThemisIO (§3 of
// the paper). A sharing policy is compiled into a probability segment on
// [0, 1) per job by multiplying a chain of transition matrices, one per
// sharing-entity level. An I/O worker draws a uniform random number and
// serves the job whose segment contains it; draws over jobs with empty
// queues are renormalised away, which is what makes the design
// work-conserving ("opportunity fairness").
package token

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Epsilon is the tolerance used when validating that matrix rows are
// stochastic and that segment bounds tile [0, 1).
const Epsilon = 1e-9

// Matrix is a transition matrix T^i as defined in §3 of the paper. Each row
// represents a token queue (a sharing scope at level i) and each column an
// entity at the next level. Row sums are 1 and each column has at most one
// non-zero entry, because an entity belongs to exactly one parent scope.
type Matrix struct {
	Rows, Cols int
	// V is row-major: V[r*Cols + c].
	V []float64
	// RowLabels and ColLabels name the scopes/entities, for debugging and
	// for the tree rendering used by the fig10/11 experiment.
	RowLabels []string
	ColLabels []string
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, V: make([]float64, rows*cols)}
}

// At returns the entry at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.V[r*m.Cols+c] }

// Set assigns the entry at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.V[r*m.Cols+c] = v }

// Validate checks the two structural invariants from the paper: every row
// sums to one (each scope distributes its full share) and every column has
// at most one non-zero entry (each entity has a single parent scope).
func (m *Matrix) Validate() error {
	for r := 0; r < m.Rows; r++ {
		sum := 0.0
		for c := 0; c < m.Cols; c++ {
			v := m.At(r, c)
			if v < 0 {
				return fmt.Errorf("token: negative entry at (%d,%d): %g", r, c, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("token: row %d sums to %g, want 1", r, sum)
		}
	}
	for c := 0; c < m.Cols; c++ {
		nz := 0
		for r := 0; r < m.Rows; r++ {
			if m.At(r, c) != 0 {
				nz++
			}
		}
		if nz > 1 {
			return fmt.Errorf("token: column %d has %d non-zero entries, want <=1", c, nz)
		}
	}
	return nil
}

// Mul returns the matrix product m·n. It panics if the inner dimensions
// disagree; the policy compiler always produces conformant chains.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("token: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	out.RowLabels = m.RowLabels
	out.ColLabels = n.ColLabels
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < n.Cols; c++ {
				out.V[r*out.Cols+c] += a * n.At(k, c)
			}
		}
	}
	return out
}

// ChainProduct multiplies the matrices in order (Equation 1 of the paper):
// T⁰ · T¹ · … · Tᴺ⁻¹. The result of a well-formed policy chain is a 1×J row
// vector of per-job probabilities.
func ChainProduct(chain []*Matrix) (*Matrix, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("token: empty matrix chain")
	}
	acc := chain[0]
	for i := 1; i < len(chain); i++ {
		acc = acc.Mul(chain[i])
	}
	return acc, nil
}

// Segment is one job's slice of [0, 1).
type Segment struct {
	Lo, Hi float64
	Job    string
}

// Width returns the probability mass of the segment.
func (s Segment) Width() float64 { return s.Hi - s.Lo }

// Block is one contiguous run of the assignment: the jobs of a single
// terminal sharing scope with their raw (unnormalised) token weights
// and the prefix sums a draw needs to binary-search within the run.
// A Block is immutable once it is part of an Assignment — that is what
// lets a delta recompile share the blocks of untouched scopes
// pointer-identical across epochs instead of re-deriving a flat
// segment array per generation.
type Block struct {
	Jobs []string
	Ws   []float64 // raw weights, parallel to Jobs
	Cum  []float64 // prefix sums of Ws: Cum[i] = Ws[0]+…+Ws[i]
	Sum  float64   // total raw mass of the block (== Cum[len-1], 0 if empty)
}

// NewBlock builds a block over the given jobs and raw weights, taking
// ownership of both slices (callers must not mutate them afterwards).
func NewBlock(jobs []string, ws []float64) (*Block, error) {
	if len(jobs) != len(ws) {
		return nil, fmt.Errorf("token: %d jobs but %d weights", len(jobs), len(ws))
	}
	b := &Block{Jobs: jobs, Ws: ws, Cum: make([]float64, len(ws))}
	sum := 0.0
	for i, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("token: negative weight %g for job %s", w, jobs[i])
		}
		sum += w
		b.Cum[i] = sum
	}
	b.Sum = sum
	return b, nil
}

// Assignment is the statistical token assignment: a tiling of [0, 1) by
// job segments, in ascending order, held as a sequence of scope blocks.
// The flat []Segment view is materialised lazily (Segments) — the
// steady-state draw path works off the blocks directly, so an
// incrementally recompiled epoch never pays the O(jobs) flatten.
type Assignment struct {
	blocks []*Block
	n      int     // total job count across blocks
	total  float64 // Σ Block.Sum, in block order — the normaliser
	index  map[string]float64
	flat   atomic.Pointer[[]Segment]
}

// FromBlocks builds an assignment from scope blocks, taking ownership
// of the slice. withIndex controls whether the O(jobs) job→share map is
// built (Share answers 0 without it; the delta-recompile path skips it
// because incremental epochs answer shares from the policy share tree).
func FromBlocks(blocks []*Block, withIndex bool) (*Assignment, error) {
	n := 0
	total := 0.0
	for _, b := range blocks {
		n += len(b.Jobs)
		total += b.Sum
	}
	if n == 0 {
		return &Assignment{}, nil
	}
	if total <= 0 {
		return nil, fmt.Errorf("token: all weights are zero")
	}
	a := &Assignment{blocks: blocks, n: n, total: total}
	if withIndex {
		a.index = make(map[string]float64, n)
		for _, b := range blocks {
			for i, j := range b.Jobs {
				a.index[j] = b.Ws[i] / total
			}
		}
	}
	return a, nil
}

// FromWeights builds a single-block assignment from per-job weights
// (not necessarily normalised). Jobs with non-positive weight receive
// an empty segment. The job order is preserved so that segment layout
// is deterministic. The input slices are copied.
func FromWeights(jobs []string, weights []float64) (*Assignment, error) {
	if len(jobs) != len(weights) {
		return nil, fmt.Errorf("token: %d jobs but %d weights", len(jobs), len(weights))
	}
	if len(jobs) == 0 {
		return &Assignment{}, nil
	}
	b, err := NewBlock(append([]string(nil), jobs...), append([]float64(nil), weights...))
	if err != nil {
		return nil, err
	}
	return FromBlocks([]*Block{b}, true)
}

// Blocks returns the assignment's scope blocks in segment order. The
// blocks and the slice are shared and must not be mutated.
func (a *Assignment) Blocks() []*Block { return a.blocks }

// Total returns the raw weight mass the segments are normalised by.
func (a *Assignment) Total() float64 { return a.total }

// Len returns the number of job segments in the assignment.
func (a *Assignment) Len() int { return a.n }

// Segments materialises the flat segment view of the assignment:
// hi = lo + w/total per job in block order, with the final bound
// clamped to 1.0 to absorb floating-point residue. The view is built
// on first use and cached; reporting, validation, and the experiment
// harness use it — the scheduler's draw path never does.
func (a *Assignment) Segments() []Segment {
	if p := a.flat.Load(); p != nil {
		return *p
	}
	segs := make([]Segment, 0, a.n)
	lo := 0.0
	for _, b := range a.blocks {
		for i, j := range b.Jobs {
			hi := lo + b.Ws[i]/a.total
			segs = append(segs, Segment{Lo: lo, Hi: hi, Job: j})
			lo = hi
		}
	}
	if len(segs) > 0 {
		segs[len(segs)-1].Hi = 1.0 // absorb floating-point residue
	}
	a.flat.Store(&segs)
	return segs
}

// FromRowVector builds an assignment from a 1×J chain product, using the
// matrix column labels as job ids.
func FromRowVector(m *Matrix) (*Assignment, error) {
	if m.Rows != 1 {
		return nil, fmt.Errorf("token: chain product has %d rows, want 1", m.Rows)
	}
	if len(m.ColLabels) != m.Cols {
		return nil, fmt.Errorf("token: row vector missing column labels")
	}
	return FromWeights(m.ColLabels, m.V)
}

// Validate checks that segments tile [0, 1) without gaps or overlaps.
func (a *Assignment) Validate() error {
	segs := a.Segments()
	if len(segs) == 0 {
		return nil
	}
	if math.Abs(segs[0].Lo) > Epsilon {
		return fmt.Errorf("token: first segment starts at %g", segs[0].Lo)
	}
	for i := 1; i < len(segs); i++ {
		if math.Abs(segs[i].Lo-segs[i-1].Hi) > Epsilon {
			return fmt.Errorf("token: gap between segment %d and %d", i-1, i)
		}
	}
	last := segs[len(segs)-1]
	if math.Abs(last.Hi-1) > Epsilon {
		return fmt.Errorf("token: last segment ends at %g", last.Hi)
	}
	return nil
}

// Share returns the probability mass assigned to the given job, 0 if
// absent or if the assignment was built without an index.
func (a *Assignment) Share(job string) float64 {
	return a.index[job]
}

// Jobs returns the job ids in segment order.
func (a *Assignment) Jobs() []string {
	out := make([]string, 0, a.n)
	for _, b := range a.blocks {
		out = append(out, b.Jobs...)
	}
	return out
}

// Lookup returns the job whose segment contains x ∈ [0, 1).
func (a *Assignment) Lookup(x float64) (string, bool) {
	segs := a.Segments()
	if len(segs) == 0 {
		return "", false
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Hi > x })
	if i >= len(segs) {
		i = len(segs) - 1
	}
	return segs[i].Job, true
}

// PickEligible draws the statistical token conditioned on the eligible set:
// jobs whose queues are non-empty. This implements opportunity fairness —
// unused probability mass is, in effect, reassigned proportionally to jobs
// that have work. rnd must return a uniform value in [0, 1).
//
// Zero-share eligible jobs (for example, a job that just appeared and has
// not been through a λ-sync yet) are served only when no positive-share job
// is eligible, which mirrors ThemisIO's behaviour of serving unknown jobs
// from leftover cycles rather than starving them.
func (a *Assignment) PickEligible(eligible func(job string) bool, rnd func() float64) (string, bool) {
	// The draw runs in raw weight space — eligible mass and the scaled
	// draw both use the unnormalised block weights, which conditions the
	// distribution identically to widths on [0, 1).
	total := 0.0
	for _, b := range a.blocks {
		for i, j := range b.Jobs {
			if eligible(j) {
				total += b.Ws[i]
			}
		}
	}
	if total <= 0 {
		for _, b := range a.blocks {
			for _, j := range b.Jobs {
				if eligible(j) {
					return j, true
				}
			}
		}
		return "", false
	}
	x := rnd() * total
	acc := 0.0
	for _, b := range a.blocks {
		for i, j := range b.Jobs {
			if !eligible(j) {
				continue
			}
			acc += b.Ws[i]
			if x < acc {
				return j, true
			}
		}
	}
	// Floating point residue: fall back to the last eligible segment.
	for bi := len(a.blocks) - 1; bi >= 0; bi-- {
		b := a.blocks[bi]
		for i := len(b.Jobs) - 1; i >= 0; i-- {
			if eligible(b.Jobs[i]) {
				return b.Jobs[i], true
			}
		}
	}
	return "", false
}
