// Package token implements the statistical token design of ThemisIO (§3 of
// the paper). A sharing policy is compiled into a probability segment on
// [0, 1) per job by multiplying a chain of transition matrices, one per
// sharing-entity level. An I/O worker draws a uniform random number and
// serves the job whose segment contains it; draws over jobs with empty
// queues are renormalised away, which is what makes the design
// work-conserving ("opportunity fairness").
package token

import (
	"fmt"
	"math"
	"sort"
)

// Epsilon is the tolerance used when validating that matrix rows are
// stochastic and that segment bounds tile [0, 1).
const Epsilon = 1e-9

// Matrix is a transition matrix T^i as defined in §3 of the paper. Each row
// represents a token queue (a sharing scope at level i) and each column an
// entity at the next level. Row sums are 1 and each column has at most one
// non-zero entry, because an entity belongs to exactly one parent scope.
type Matrix struct {
	Rows, Cols int
	// V is row-major: V[r*Cols + c].
	V []float64
	// RowLabels and ColLabels name the scopes/entities, for debugging and
	// for the tree rendering used by the fig10/11 experiment.
	RowLabels []string
	ColLabels []string
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, V: make([]float64, rows*cols)}
}

// At returns the entry at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.V[r*m.Cols+c] }

// Set assigns the entry at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.V[r*m.Cols+c] = v }

// Validate checks the two structural invariants from the paper: every row
// sums to one (each scope distributes its full share) and every column has
// at most one non-zero entry (each entity has a single parent scope).
func (m *Matrix) Validate() error {
	for r := 0; r < m.Rows; r++ {
		sum := 0.0
		for c := 0; c < m.Cols; c++ {
			v := m.At(r, c)
			if v < 0 {
				return fmt.Errorf("token: negative entry at (%d,%d): %g", r, c, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("token: row %d sums to %g, want 1", r, sum)
		}
	}
	for c := 0; c < m.Cols; c++ {
		nz := 0
		for r := 0; r < m.Rows; r++ {
			if m.At(r, c) != 0 {
				nz++
			}
		}
		if nz > 1 {
			return fmt.Errorf("token: column %d has %d non-zero entries, want <=1", c, nz)
		}
	}
	return nil
}

// Mul returns the matrix product m·n. It panics if the inner dimensions
// disagree; the policy compiler always produces conformant chains.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("token: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	out.RowLabels = m.RowLabels
	out.ColLabels = n.ColLabels
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < n.Cols; c++ {
				out.V[r*out.Cols+c] += a * n.At(k, c)
			}
		}
	}
	return out
}

// ChainProduct multiplies the matrices in order (Equation 1 of the paper):
// T⁰ · T¹ · … · Tᴺ⁻¹. The result of a well-formed policy chain is a 1×J row
// vector of per-job probabilities.
func ChainProduct(chain []*Matrix) (*Matrix, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("token: empty matrix chain")
	}
	acc := chain[0]
	for i := 1; i < len(chain); i++ {
		acc = acc.Mul(chain[i])
	}
	return acc, nil
}

// Segment is one job's slice of [0, 1).
type Segment struct {
	Lo, Hi float64
	Job    string
}

// Width returns the probability mass of the segment.
func (s Segment) Width() float64 { return s.Hi - s.Lo }

// Assignment is the statistical token assignment: a tiling of [0, 1) by job
// segments, in ascending order.
type Assignment struct {
	Segments []Segment
	index    map[string]int
}

// FromWeights builds an assignment from per-job weights (not necessarily
// normalised). Jobs with non-positive weight receive an empty segment.
// The job order is preserved so that segment layout is deterministic.
func FromWeights(jobs []string, weights []float64) (*Assignment, error) {
	if len(jobs) != len(weights) {
		return nil, fmt.Errorf("token: %d jobs but %d weights", len(jobs), len(weights))
	}
	if len(jobs) == 0 {
		return &Assignment{index: map[string]int{}}, nil
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("token: negative weight %g for job %s", w, jobs[i])
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("token: all weights are zero")
	}
	a := &Assignment{index: make(map[string]int, len(jobs))}
	lo := 0.0
	for i, j := range jobs {
		hi := lo + weights[i]/total
		if i == len(jobs)-1 {
			hi = 1.0 // absorb floating-point residue
		}
		a.Segments = append(a.Segments, Segment{Lo: lo, Hi: hi, Job: j})
		a.index[j] = i
		lo = hi
	}
	return a, nil
}

// FromRowVector builds an assignment from a 1×J chain product, using the
// matrix column labels as job ids.
func FromRowVector(m *Matrix) (*Assignment, error) {
	if m.Rows != 1 {
		return nil, fmt.Errorf("token: chain product has %d rows, want 1", m.Rows)
	}
	if len(m.ColLabels) != m.Cols {
		return nil, fmt.Errorf("token: row vector missing column labels")
	}
	return FromWeights(m.ColLabels, m.V)
}

// Validate checks that segments tile [0, 1) without gaps or overlaps.
func (a *Assignment) Validate() error {
	if len(a.Segments) == 0 {
		return nil
	}
	if math.Abs(a.Segments[0].Lo) > Epsilon {
		return fmt.Errorf("token: first segment starts at %g", a.Segments[0].Lo)
	}
	for i := 1; i < len(a.Segments); i++ {
		if math.Abs(a.Segments[i].Lo-a.Segments[i-1].Hi) > Epsilon {
			return fmt.Errorf("token: gap between segment %d and %d", i-1, i)
		}
	}
	last := a.Segments[len(a.Segments)-1]
	if math.Abs(last.Hi-1) > Epsilon {
		return fmt.Errorf("token: last segment ends at %g", last.Hi)
	}
	return nil
}

// Share returns the probability mass assigned to the given job, 0 if absent.
func (a *Assignment) Share(job string) float64 {
	if i, ok := a.index[job]; ok {
		return a.Segments[i].Width()
	}
	return 0
}

// Jobs returns the job ids in segment order.
func (a *Assignment) Jobs() []string {
	out := make([]string, len(a.Segments))
	for i, s := range a.Segments {
		out[i] = s.Job
	}
	return out
}

// Lookup returns the job whose segment contains x ∈ [0, 1).
func (a *Assignment) Lookup(x float64) (string, bool) {
	if len(a.Segments) == 0 {
		return "", false
	}
	i := sort.Search(len(a.Segments), func(i int) bool { return a.Segments[i].Hi > x })
	if i >= len(a.Segments) {
		i = len(a.Segments) - 1
	}
	return a.Segments[i].Job, true
}

// PickEligible draws the statistical token conditioned on the eligible set:
// jobs whose queues are non-empty. This implements opportunity fairness —
// unused probability mass is, in effect, reassigned proportionally to jobs
// that have work. rnd must return a uniform value in [0, 1).
//
// Zero-share eligible jobs (for example, a job that just appeared and has
// not been through a λ-sync yet) are served only when no positive-share job
// is eligible, which mirrors ThemisIO's behaviour of serving unknown jobs
// from leftover cycles rather than starving them.
func (a *Assignment) PickEligible(eligible func(job string) bool, rnd func() float64) (string, bool) {
	total := 0.0
	for _, s := range a.Segments {
		if eligible(s.Job) {
			total += s.Width()
		}
	}
	if total <= 0 {
		for _, s := range a.Segments {
			if eligible(s.Job) {
				return s.Job, true
			}
		}
		return "", false
	}
	x := rnd() * total
	acc := 0.0
	for _, s := range a.Segments {
		if !eligible(s.Job) {
			continue
		}
		acc += s.Width()
		if x < acc {
			return s.Job, true
		}
	}
	// Floating point residue: fall back to the last eligible segment.
	for i := len(a.Segments) - 1; i >= 0; i-- {
		if eligible(a.Segments[i].Job) {
			return a.Segments[i].Job, true
		}
	}
	return "", false
}
