package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestMembershipSingleNode(t *testing.T) {
	m := NewMembership("a", 0, 0)
	if got := m.Peers(); len(got) != 0 {
		t.Fatalf("lone member has peers %v", got)
	}
	self, ok := m.Lookup("a")
	if !ok || self.State != StateAlive || self.Incarnation != 1 {
		t.Fatalf("self = %+v, ok=%v", self, ok)
	}
	if nodes := m.Ring().Nodes(); len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("ring = %v", nodes)
	}
}

func TestMembershipSightingAndFailure(t *testing.T) {
	m := NewMembership("a", 100*time.Millisecond, 0)
	m.Sighting("b", 0)
	if b, _ := m.Lookup("b"); b.State != StateAlive {
		t.Fatalf("b = %+v after sighting", b)
	}
	epoch := m.Epoch()

	// Two consecutive contact failures turn b suspect; the ring keeps b
	// (no placement flapping on one missed round).
	m.ReportFailure("b", 10*time.Millisecond)
	m.ReportFailure("b", 20*time.Millisecond)
	if b, _ := m.Lookup("b"); b.State != StateSuspect {
		t.Fatalf("b = %+v after %d failures", b, DefaultFailAfter)
	}
	if m.Epoch() != epoch {
		t.Fatal("suspicion must not move ring segments")
	}

	// The timeout confirms the failure: ring reassigns, epoch bumps.
	failed := m.Tick(200 * time.Millisecond)
	if len(failed) != 1 || failed[0] != "b" {
		t.Fatalf("Tick failed %v", failed)
	}
	if b, _ := m.Lookup("b"); b.State != StateFailed {
		t.Fatalf("b = %+v after timeout", b)
	}
	if m.Epoch() == epoch {
		t.Fatal("failure must reassign ring segments")
	}
	if nodes := m.Ring().Nodes(); len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("ring = %v after failure", nodes)
	}

	// A direct sighting revives b with a higher incarnation, superseding
	// the failure rumor.
	m.Sighting("b", 300*time.Millisecond)
	b, _ := m.Lookup("b")
	if b.State != StateAlive || b.Incarnation != 2 {
		t.Fatalf("b = %+v after revival", b)
	}
}

func TestMembershipRumorPrecedence(t *testing.T) {
	m := NewMembership("a", 0, 0)
	m.Merge([]Member{{Addr: "b", State: StateAlive, Incarnation: 3}}, 0)

	// A stale alive rumor (lower incarnation) must not downgrade.
	m.Merge([]Member{{Addr: "b", State: StateFailed, Incarnation: 2}}, 0)
	if b, _ := m.Lookup("b"); b.State != StateAlive {
		t.Fatalf("stale failure applied: %+v", b)
	}

	// Same incarnation, worse state wins.
	failed := m.Merge([]Member{{Addr: "b", State: StateFailed, Incarnation: 3}}, 0)
	if b, _ := m.Lookup("b"); b.State != StateFailed {
		t.Fatalf("equal-incarnation failure ignored: %+v", b)
	}
	if len(failed) != 1 || failed[0] != "b" {
		t.Fatalf("Merge reported failed %v", failed)
	}

	// Higher incarnation (the refutation) wins over failed.
	m.Merge([]Member{{Addr: "b", State: StateAlive, Incarnation: 4}}, 0)
	if b, _ := m.Lookup("b"); b.State != StateAlive {
		t.Fatalf("refutation ignored: %+v", b)
	}
}

func TestMembershipSelfRefutation(t *testing.T) {
	m := NewMembership("a", 0, 0)
	// A rumor that self has failed is refuted by out-incarnating it.
	m.Merge([]Member{{Addr: "a", State: StateFailed, Incarnation: 7}}, 0)
	self, _ := m.Lookup("a")
	if self.State != StateAlive || self.Incarnation != 8 {
		t.Fatalf("self = %+v after refutation", self)
	}
	if nodes := m.Ring().Nodes(); len(nodes) != 1 {
		t.Fatalf("ring lost self: %v", nodes)
	}
	// An echo of a self-chosen drain is not an accusation — it must
	// stick, not revert the drain.
	m.Drain()
	m.Merge([]Member{{Addr: "a", State: StateDraining, Incarnation: 9}}, 0)
	if self, _ := m.Lookup("a"); self.State != StateDraining || self.Incarnation != 9 {
		t.Fatalf("self = %+v after drain echo (drain reverted?)", self)
	}
	// An accusation while draining is refuted with the draining state.
	m.Merge([]Member{{Addr: "a", State: StateFailed, Incarnation: 11}}, 0)
	if self, _ := m.Lookup("a"); self.State != StateDraining || self.Incarnation != 12 {
		t.Fatalf("self = %+v after accusation while draining", self)
	}
}

func TestMembershipDrainAndLeave(t *testing.T) {
	m := NewMembership("a", 0, 0)
	m.Sighting("b", 0)
	m.Drain()
	self, _ := m.Lookup("a")
	if self.State != StateDraining || self.Incarnation != 2 {
		t.Fatalf("self = %+v after drain", self)
	}
	if nodes := m.Ring().Nodes(); len(nodes) != 1 || nodes[0] != "b" {
		t.Fatalf("draining member still owns ring segments: %v", nodes)
	}
	// Draining members still gossip.
	m2 := NewMembership("b", 0, 0)
	m2.Merge(m.Snapshot(), 0)
	if a, _ := m2.Lookup("a"); a.State != StateDraining {
		t.Fatalf("drain did not propagate: %+v", a)
	}
	if got := m2.Peers(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("peer pool %v (draining member should gossip)", got)
	}

	m.Leave()
	if self, _ := m.Lookup("a"); self.State != StateLeft || self.Incarnation != 3 {
		t.Fatalf("self = %+v after leave", self)
	}
}

// TestMembershipGossipConvergence runs the pure merge protocol over a
// simulated cluster: with fan-out 1 every view converges to the full
// member set within O(log N) rounds.
func TestMembershipGossipConvergence(t *testing.T) {
	const n = 16
	views := make([]*Membership, n)
	for i := range views {
		views[i] = NewMembership(fmt.Sprintf("s%02d", i), 0, 0)
	}
	// Everyone knows only the seed (s00) plus itself, as after MsgJoin.
	for i := 1; i < n; i++ {
		views[i].Merge(views[0].Snapshot(), 0)
		views[0].Merge([]Member{{Addr: views[i].Self(), State: StateAlive, Incarnation: 1}}, 0)
	}
	full := func() bool {
		for _, v := range views {
			if len(v.Snapshot()) != n {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; !full() && rounds < 20; rounds++ {
		for i, v := range views {
			peers := v.Peers()
			peer := peers[(i+rounds)%len(peers)] // deterministic stand-in for rand
			var pv *Membership
			for _, w := range views {
				if w.Self() == peer {
					pv = w
				}
			}
			// Push-pull: both sides merge.
			pv.Merge(v.Snapshot(), 0)
			v.Merge(pv.Snapshot(), 0)
		}
	}
	if !full() {
		t.Fatalf("views not converged after %d rounds", rounds)
	}
	if rounds > 8 { // log2(16)=4; allow slack for the deterministic schedule
		t.Fatalf("convergence took %d rounds, want O(log N)", rounds)
	}
}
