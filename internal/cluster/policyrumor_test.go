package cluster

import (
	"testing"

	"themisio/internal/jobtable"
)

// The policy rumor follows the epoch-precedence rules: higher epoch
// wins, equal epochs tie-break on the lexically greater string, epoch-0
// and unparseable rumors are ignored, and a local propose always
// advances past everything seen.
func TestPolicyRumorPrecedence(t *testing.T) {
	n := NewNode(Config{Self: "s1"}, jobtable.New("s1", 0))

	if s, e := n.PolicyVersion(); s != "" || e != 0 {
		t.Fatalf("fresh node version = %q/%d, want empty/0", s, e)
	}
	if n.MergePolicy("size-fair", 0) {
		t.Fatal("epoch-0 rumor must be ignored")
	}
	if !n.MergePolicy("size-fair", 3) {
		t.Fatal("fresh epoch-3 rumor must be adopted")
	}
	if n.MergePolicy("job-fair", 2) {
		t.Fatal("older epoch must lose")
	}
	if n.MergePolicy("job-fair", 3) {
		t.Fatal("equal epoch with lexically smaller string must lose")
	}
	if !n.MergePolicy("user-fair", 3) {
		t.Fatal("equal epoch with lexically greater string must win (deterministic convergence)")
	}
	if n.MergePolicy("not-a-policy", 9) {
		t.Fatal("unparseable rumor must be ignored")
	}
	if s, e := n.PolicyVersion(); s != "user-fair" || e != 3 {
		t.Fatalf("version = %q/%d, want user-fair/3", s, e)
	}
	if e := n.ProposePolicy("job-fair"); e != 4 {
		t.Fatalf("propose after epoch 3 = %d, want 4", e)
	}
	if s, e := n.PolicyVersion(); s != "job-fair" || e != 4 {
		t.Fatalf("version after propose = %q/%d", s, e)
	}
}
