// Gossip-based λ-sync: the epidemic push-pull exchange that replaces
// the all-to-all MsgSync fan-out. Every λ round a node contacts k
// uniformly random gossipable peers, pushes its job-table snapshot and
// membership digest, and pulls the peer's in the reply. Push-pull
// epidemic dissemination infects all N members in O(log N) rounds with
// high probability, so every server's job table converges within a
// small multiple of λ while each server maintains only k connections
// per round instead of N-1.
package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// DefaultFanout is the gossip fan-out k when none is configured. Two
// push-pull contacts per round keeps rumor spread comfortably
// supercritical at the cluster sizes in the paper (1–128 servers).
const DefaultFanout = 2

// Config parameterizes a cluster node.
type Config struct {
	// Self is the advertised (listen) address of this server.
	Self string
	// Fanout is the number of random peers contacted per gossip round
	// (non-positive selects DefaultFanout).
	Fanout int
	// FailTimeout confirms a suspect member failed after this sighting
	// age (non-positive selects DefaultFailTimeout).
	FailTimeout time.Duration
	// Replicas is the ring virtual-node count (non-positive selects
	// chash.DefaultReplicas).
	Replicas int
	// DialTimeout bounds one peer dial (default 500ms).
	DialTimeout time.Duration
	// Seed fixes the peer-selection stream for deterministic tests.
	Seed int64
}

// Node binds a server's membership view, its job table, and the gossip
// transport into one fabric endpoint. The owning server calls Gossip
// every λ from its controller and routes incoming cluster control
// messages to Handle.
type Node struct {
	cfg Config
	mem *Membership
	tab *jobtable.Table

	// xmu serializes whole exchanges: request/response pairs on a
	// cached connection must not interleave (responses carry no type,
	// only Seq, and the exchange path matches them positionally).
	xmu   sync.Mutex
	mu    sync.Mutex
	conns map[string]*transport.Conn
	rng   *rand.Rand
	seq   uint64

	// rounds counts completed Gossip calls (λ rounds), for the
	// operator metrics endpoint.
	rounds atomic.Int64

	// pmu guards the cluster-wide policy version rumor. Epoch 0 is the
	// pre-hot-swap state — every server runs its own boot policy and
	// nothing is gossiped; the first live `policy set` anywhere starts
	// the epoch sequence and from then on the whole fabric converges on
	// one policy.
	pmu      sync.Mutex
	polStr   string
	polEpoch uint64
}

// NewNode creates a fabric endpoint for the server at cfg.Self whose
// job table is tab.
func NewNode(cfg Config, tab *jobtable.Table) *Node {
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	return &Node{
		cfg:   cfg,
		mem:   NewMembership(cfg.Self, cfg.FailTimeout, cfg.Replicas),
		tab:   tab,
		conns: map[string]*transport.Conn{},
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Membership returns the node's membership view.
func (n *Node) Membership() *Membership { return n.mem }

// GossipRounds returns the number of λ gossip rounds run since boot.
func (n *Node) GossipRounds() int64 { return n.rounds.Load() }

// PolicyVersion returns the cluster-wide policy rumor this node holds:
// the canonical policy string and its epoch. Epoch 0 means no live
// policy set has ever happened (each server still runs its boot
// policy, and the empty string rides along).
func (n *Node) PolicyVersion() (string, uint64) {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	return n.polStr, n.polEpoch
}

// ProposePolicy installs s (already validated and canonicalized by the
// caller) as a new cluster-wide policy version on this node: the epoch
// advances past every version the node has seen, so the rumor
// supersedes the current one everywhere gossip carries it. Returns the
// new epoch.
func (n *Node) ProposePolicy(s string) uint64 {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	n.polEpoch++
	n.polStr = s
	return n.polEpoch
}

// MergePolicy folds a gossiped policy rumor into the node: a higher
// epoch wins outright; equal epochs tie-break on the lexically greater
// string so two concurrent sets at the same epoch still converge
// cluster-wide. Epoch-0 rumors (no set has happened) and strings that
// do not parse as a policy are ignored. Reports whether the local
// version changed.
func (n *Node) MergePolicy(s string, epoch uint64) bool {
	if epoch == 0 {
		return false
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if epoch < n.polEpoch || (epoch == n.polEpoch && s <= n.polStr) {
		return false
	}
	if _, err := policy.Parse(s); err != nil {
		return false
	}
	n.polStr = s
	n.polEpoch = epoch
	return true
}

// Records converts a membership digest to its wire form.
func Records(members []Member) []transport.MemberRecord {
	out := make([]transport.MemberRecord, len(members))
	for i, m := range members {
		out[i] = transport.MemberRecord{Addr: m.Addr, State: uint8(m.State), Incarnation: m.Incarnation}
	}
	return out
}

// FromRecords converts a wire digest back to membership rumors.
func FromRecords(recs []transport.MemberRecord) []Member {
	out := make([]Member, len(recs))
	for i, r := range recs {
		out[i] = Member{Addr: r.Addr, State: State(r.State), Incarnation: r.Incarnation}
	}
	return out
}

// Join contacts the seed addresses, announces self, and merges the
// returned membership and job table. One reachable seed suffices; the
// error reports only total failure.
func (n *Node) Join(seeds []string, now time.Duration) error {
	if len(seeds) == 0 {
		return nil
	}
	var lastErr error
	joined := false
	for _, addr := range seeds {
		if addr == "" || addr == n.cfg.Self {
			continue
		}
		resp, err := n.exchange(addr, transport.MsgJoin, now)
		if err != nil {
			lastErr = err
			continue
		}
		n.absorb(addr, resp, now)
		joined = true
	}
	if !joined && lastErr != nil {
		return fmt.Errorf("cluster: join: %w", lastErr)
	}
	return nil
}

// Gossip runs one λ round at time now: failure-detection tick, then a
// push-pull exchange with up to Fanout random gossipable peers. It
// returns true if the job table or membership changed (the caller
// recompiles token assignments).
func (n *Node) Gossip(now time.Duration) bool {
	n.rounds.Add(1)
	changed := len(n.mem.Tick(now)) > 0
	peers := n.mem.Peers()
	for _, addr := range n.sample(peers, n.cfg.Fanout) {
		resp, err := n.exchange(addr, transport.MsgGossip, now)
		if err != nil {
			n.mem.ReportFailure(addr, now)
			continue
		}
		if n.absorb(addr, resp, now) {
			changed = true
		}
	}
	if n.scrub() {
		changed = true
	}
	return changed
}

// sample picks up to k distinct elements of peers uniformly at random.
func (n *Node) sample(peers []string, k int) []string {
	if len(peers) <= k {
		return peers
	}
	n.mu.Lock()
	idx := n.rng.Perm(len(peers))[:k]
	n.mu.Unlock()
	out := make([]string, 0, k)
	for _, i := range idx {
		out = append(out, peers[i])
	}
	return out
}

// exchange performs one request/response round trip with a peer over a
// cached connection, redialing once on a stale connection.
func (n *Node) exchange(addr string, typ transport.MsgType, now time.Duration) (*transport.Response, error) {
	n.xmu.Lock()
	defer n.xmu.Unlock()
	req := &transport.Request{
		Type:    typ,
		From:    n.cfg.Self,
		Table:   n.tab.Snapshot(),
		Members: Records(n.mem.Snapshot()),
	}
	req.PolicyStr, req.PolicyEpoch = n.PolicyVersion()
	n.mu.Lock()
	req.Seq = n.seq + 1
	n.seq++
	c := n.conns[addr]
	n.mu.Unlock()
	if c != nil {
		if resp, err := n.roundTrip(c, req); err == nil {
			return resp, nil
		}
		n.dropConn(addr, c)
	}
	raw, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c = transport.NewConn(raw)
	n.mu.Lock()
	n.conns[addr] = c
	n.mu.Unlock()
	resp, err := n.roundTrip(c, req)
	if err != nil {
		n.dropConn(addr, c)
		return nil, err
	}
	return resp, nil
}

func (n *Node) roundTrip(c *transport.Conn, req *transport.Request) (*transport.Response, error) {
	// A deadline bounds the whole exchange: a peer that accepted the
	// connection but never replies (wedged process, half-open socket)
	// must not stall the caller's λ loop — and with it failure
	// detection — forever.
	_ = c.SetDeadline(time.Now().Add(4 * n.cfg.DialTimeout))
	defer c.SetDeadline(time.Time{})
	if err := c.SendRequest(req); err != nil {
		return nil, err
	}
	resp, err := c.RecvResponse()
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (n *Node) dropConn(addr string, c *transport.Conn) {
	c.Close()
	n.mu.Lock()
	if n.conns[addr] == c {
		delete(n.conns, addr)
	}
	n.mu.Unlock()
}

// absorb merges a pull reply from addr into the local view.
func (n *Node) absorb(addr string, resp *transport.Response, now time.Duration) bool {
	n.mem.Sighting(addr, now)
	changed := len(n.mem.Merge(FromRecords(resp.Members), now)) > 0
	if n.tab.Merge(resp.Table, now) {
		changed = true
	}
	if n.MergePolicy(resp.PolicyStr, resp.PolicyEpoch) {
		changed = true
	}
	if n.scrub() {
		changed = true
	}
	return changed
}

// Handle services an incoming cluster control request (the server's
// communicator routes MsgGossip/MsgJoin/MsgLeave/MsgClusterStatus/
// MsgDrain here) and returns the reply frame.
func (n *Node) Handle(req *transport.Request, now time.Duration) *transport.Response {
	resp := &transport.Response{Seq: req.Seq}
	switch req.Type {
	case transport.MsgGossip, transport.MsgJoin:
		if req.From != "" {
			n.mem.Sighting(req.From, now)
		}
		n.mem.Merge(FromRecords(req.Members), now)
		n.tab.Merge(req.Table, now)
		n.MergePolicy(req.PolicyStr, req.PolicyEpoch)
		n.scrub()
		resp.Table = n.tab.Snapshot()
		resp.Members = Records(n.mem.Snapshot())
		resp.Epoch = n.mem.Epoch()
		resp.PolicyStr, resp.PolicyEpoch = n.PolicyVersion()
	case transport.MsgLeave:
		n.mem.Merge(FromRecords(req.Members), now)
		if req.From != "" {
			n.tab.DropServer(req.From)
		}
		n.scrub()
		resp.Members = Records(n.mem.Snapshot())
	case transport.MsgDrain:
		n.mem.Drain()
		resp.Members = Records(n.mem.Snapshot())
		resp.Epoch = n.mem.Epoch()
	case transport.MsgClusterStatus:
		resp.Members = Records(n.mem.Snapshot())
		resp.Epoch = n.mem.Epoch()
	default:
		resp.Err = fmt.Sprintf("cluster: unexpected %v", req.Type)
	}
	return resp
}

// scrub removes failed and departed members' job-table sightings so
// each affected job's presence — and with it the 1/k token deweighting
// — shifts to the surviving servers (the failover half of Figure 5's
// token-count reconciliation). It runs after every merge, not just on
// the failure transition, because a merge from a peer that has not yet
// learned of the failure would otherwise resurrect the dead server in
// the union of observed-server sets. Reports whether anything changed.
func (n *Node) scrub() bool {
	changed := false
	for _, m := range n.mem.Snapshot() {
		if m.State == StateFailed || m.State == StateLeft {
			if n.tab.DropServer(m.Addr) {
				changed = true
			}
		}
	}
	return changed
}

// Leave gossips a final departure digest to up to Fanout peers and
// closes all cached connections.
func (n *Node) Leave(now time.Duration) {
	n.mem.Leave()
	req := &transport.Request{
		Type:    transport.MsgLeave,
		From:    n.cfg.Self,
		Members: Records(n.mem.Snapshot()),
	}
	n.xmu.Lock()
	defer n.xmu.Unlock()
	for _, addr := range n.sample(n.mem.Peers(), n.cfg.Fanout) {
		n.mu.Lock()
		c := n.conns[addr]
		n.mu.Unlock()
		if c == nil {
			raw, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
			if err != nil {
				continue
			}
			c = transport.NewConn(raw)
			n.mu.Lock()
			n.conns[addr] = c
			n.mu.Unlock()
		}
		_ = c.SetDeadline(time.Now().Add(4 * n.cfg.DialTimeout))
		if err := c.SendRequest(req); err == nil {
			_, _ = c.RecvResponse()
		}
		_ = c.SetDeadline(time.Time{})
	}
	n.Close()
}

// Close tears down cached peer connections.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for addr, c := range n.conns {
		c.Close()
		delete(n.conns, addr)
	}
}
