package cluster_test

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"themisio/internal/backing"
	"themisio/internal/client"
	"themisio/internal/obsv"
	"themisio/internal/policy"
	"themisio/internal/server"
	"themisio/internal/transport"
)

// startMetricsFabric is startFabric with the operator surface wired in:
// every server gets its own obsv.Registry served over a live HTTP
// endpoint, and all servers share one backing store so the stage-out
// families carry real traffic.
func startMetricsFabric(t *testing.T, n int) (servers []*server.Server, addrs, endpoints []string) {
	t.Helper()
	store, err := backing.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	servers = make([]*server.Server, n)
	addrs = make([]string, n)
	endpoints = make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		reg := obsv.NewRegistry()
		cfg := server.Config{
			Policy:       policy.SizeFair,
			Lambda:       itLambda,
			FailTimeout:  6 * itLambda,
			GossipFanout: 1,
			Seed:         int64(i + 1),
			Quiet:        true,
			Backing:      store,
			Metrics:      reg,
		}
		if i > 0 {
			cfg.Join = []string{addrs[0]}
		}
		servers[i] = server.New(lns[i], cfg)
		if err := servers[i].BootErr(); err != nil {
			t.Fatal(err)
		}
		go servers[i].Serve()
		ep := httptest.NewServer(obsv.Mux(reg, servers[i].Ready))
		t.Cleanup(ep.Close)
		endpoints[i] = ep.URL
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs, endpoints
}

// scrape GETs url/metrics and returns every sample keyed by its full
// series string (name plus label set, exactly as rendered).
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// hasSeries reports whether any series of the family is present.
func hasSeries(m map[string]float64, family string) bool {
	for k := range m {
		if k == family || strings.HasPrefix(k, family+"{") ||
			strings.HasPrefix(k, family+"_bucket{") ||
			k == family+"_sum" || k == family+"_count" ||
			strings.HasPrefix(k, family+"_sum{") || strings.HasPrefix(k, family+"_count{") {
			return true
		}
	}
	return false
}

// shareReport fetches one server's MsgShareReport over the data plane.
func shareReport(t *testing.T, addr string) []transport.ShareRecord {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewConn(raw)
	defer c.Close()
	if err := c.SendRequest(&transport.Request{Type: transport.MsgShareReport, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.RecvResponse()
	if err != nil {
		t.Fatal(err)
	}
	return resp.Shares
}

func sameShares(a, b []transport.ShareRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFabricMetricsLive is the observability acceptance gate: four live
// servers with backing stores are flooded with striped traffic from two
// jobs while each server's /metrics endpoint is scraped. The scrape
// must carry live families from every layer — scheduler, transport,
// worker latency histograms, backing, rebalance, cluster — and, once
// the flood stops, the per-entity share residual gauges must agree with
// the MsgShareReport wire report to within 0.001.
func TestFabricMetricsLive(t *testing.T) {
	servers, addrs, endpoints := startMetricsFabric(t, 4)

	// Two jobs from different users flood striped writes so every layer
	// carries traffic while the endpoints are scraped.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 131)
	}
	mk, err := client.Dial(jobInfo("setup"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := mk.Mkdir("/flood"); err != nil {
		t.Fatal(err)
	}
	mk.Close()
	for j := 0; j < 2; j++ {
		c, err := client.DialOpts(jobInfo(fmt.Sprintf("flood%d", j)), addrs, client.Options{
			Stripes: 4, StripeUnit: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(j int, c *client.Client) {
			defer wg.Done()
			defer c.Close()
			fd, err := c.OpenFd(fmt.Sprintf("/flood/j%d.bin", j), true)
			if err != nil {
				return
			}
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Write(fd, data); err != nil {
					return
				}
				if k%16 == 0 {
					// Keep each file bounded so the shared RAM shards
					// never fill mid-flood.
					c.Unlink(fmt.Sprintf("/flood/j%d.bin", j))
					fd, err = c.OpenFd(fmt.Sprintf("/flood/j%d.bin", j), true)
					if err != nil {
						return
					}
				}
			}
		}(j, c)
	}

	// Mid-flood: every server's endpoint must carry live series from all
	// six layers.
	perServer := []string{
		"themis_sched_draws_total",
		"themis_sched_pending_requests",
		"themis_sched_served_bytes_total",
		"themis_sched_draw_latency_seconds",
		"themis_server_requests_served_total",
		"themis_server_request_latency_seconds",
		"themis_transport_frames_total",
		"themis_transport_bytes_total",
		"themis_transport_pool_conns_open",
		"themis_transport_pool_picks_total",
		"themis_transport_pool_inflight",
		"themis_backing_dirty_bytes",
		"themis_backing_staged_bytes_total",
		"themis_rebalance_epoch",
		"themis_cluster_members_alive",
		"themis_cluster_gossip_rounds_total",
		"themis_share_residual",
	}
	for i, ep := range endpoints {
		i, ep := i, ep
		waitFor(t, 10*time.Second, fmt.Sprintf("live families on server %d", i), func() bool {
			m := scrape(t, ep)
			for _, fam := range perServer {
				if !hasSeries(m, fam) {
					return false
				}
			}
			// Traffic-bearing layers must show real flow, not just
			// registered-but-zero families.
			return m["themis_sched_draws_total"] > 0 &&
				m["themis_server_requests_served_total"] > 0 &&
				m[`themis_transport_frames_total{type="write",dir="in"}`] > 0 &&
				m["themis_sched_draw_latency_seconds_count"] > 0 &&
				m[`themis_server_request_latency_seconds_count{op="write"}`] > 0 &&
				m["themis_cluster_members_alive"] == float64(len(servers)) &&
				m["themis_cluster_gossip_rounds_total"] > 0
		})
	}
	// The drain engine stages dirty bytes out through the scheduler every
	// λ; the staged counter must move on at least one server.
	waitFor(t, 10*time.Second, "staged bytes", func() bool {
		for _, ep := range endpoints {
			if scrape(t, ep)["themis_backing_staged_bytes_total"] > 0 {
				return true
			}
		}
		return false
	})

	close(stop)
	wg.Wait()

	// Residual agreement: the share gauges a scrape renders and the
	// MsgShareReport wire report read the same ledger. The flood has
	// stopped, so the report goes quiet; bracketing the scrape with two
	// identical RPC reads rejects the rare scrape that straddles a λ
	// roll.
	for i, ep := range endpoints {
		i, ep := i, ep
		waitFor(t, 10*time.Second, fmt.Sprintf("share residual agreement on server %d", i), func() bool {
			before := shareReport(t, addrs[i])
			if len(before) == 0 {
				return false
			}
			m := scrape(t, ep)
			after := shareReport(t, addrs[i])
			if !sameShares(before, after) {
				return false
			}
			seenFlood := false
			for _, e := range before {
				key := fmt.Sprintf("themis_share_residual{kind=%q,id=%q}", e.Kind, e.ID)
				got, ok := m[key]
				if !ok {
					return false
				}
				if math.Abs(got-(e.Measured-e.Compiled)) > 0.001 {
					t.Fatalf("server %d %s/%s: scraped residual %v, wire report %v",
						i, e.Kind, e.ID, got, e.Measured-e.Compiled)
				}
				if e.Kind == "job" && strings.HasPrefix(e.ID, "flood") {
					seenFlood = true
				}
			}
			return seenFlood
		})
	}
}
