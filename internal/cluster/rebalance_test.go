package cluster_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/experiments"
	"themisio/internal/policy"
	"themisio/internal/server"
)

// joinServers starts extra servers that join an existing fabric through
// seed.
func joinServers(t testing.TB, n int, seed string) []*server.Server {
	t.Helper()
	out := make([]*server.Server, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = server.New(ln, server.Config{
			Policy:       policy.SizeFair,
			Lambda:       itLambda,
			FailTimeout:  6 * itLambda,
			GossipFanout: 1,
			Seed:         int64(100 + i),
			Join:         []string{seed},
			Quiet:        true,
		})
		go out[i].Serve()
		t.Cleanup(out[i].Close)
	}
	return out
}

// waitConverged waits until every server sees want alive members.
func waitConverged(t testing.TB, servers []*server.Server, want int) {
	t.Helper()
	waitFor(t, 10*time.Second, "membership convergence", func() bool {
		for _, s := range servers {
			n := 0
			for _, m := range s.Cluster().Membership().Snapshot() {
				if m.State == cluster.StateAlive {
					n++
				}
			}
			if n != want {
				return false
			}
		}
		return true
	})
}

// waitRebalanced waits until every server's migrator has reconciled its
// own current ring epoch with no pending work, held across consecutive
// polls so a settle racing a just-arrived epoch bump is not mistaken
// for convergence. (Epochs are per-view flip counters, so they are
// compared per server, never across servers.)
func waitRebalanced(t testing.TB, servers []*server.Server) {
	t.Helper()
	stable := 0
	waitFor(t, 20*time.Second, "rebalance settle", func() bool {
		for _, s := range servers {
			if !s.Migrator().Settled(s.Cluster().Membership().Epoch()) {
				stable = 0
				return false
			}
		}
		stable++
		return stable >= 3
	})
}

// TestFabricRebalance is the acceptance walkthrough of elastic
// scale-out: a 4-server cluster with existing striped and unstriped
// files, two more servers join, and the policy-governed migration
// moves every diverged layout onto the grown ring — while concurrent
// readers (including one holding a file descriptor opened before the
// join) observe every byte, with zero errors, throughout.
func TestFabricRebalance(t *testing.T) {
	servers, addrs := startFabric(t, 4)
	waitConverged(t, servers, 4)

	// Existing data: unstriped files spread over the ring plus files
	// striped across the original fabric.
	w, err := client.Dial(jobInfo("writer"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/data/plain%d.bin", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 60_000+i*1_000)
		for j := range data {
			data[j] ^= byte(j * 13)
		}
		files[p] = data
		fd, err := w.OpenFd(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := w.Write(fd, data); err != nil || n != len(data) {
			t.Fatalf("write %s: n=%d err=%v", p, n, err)
		}
	}
	ws, err := client.DialOpts(jobInfo("striper"), addrs, client.Options{Stripes: 4, StripeUnit: 4096, ConnsPerServer: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/data/striped%d.bin", i)
		data := make([]byte, 300_000+i*10_000)
		for j := range data {
			data[j] = byte(j*31 + i)
		}
		files[p] = data
		fd, err := ws.OpenFd(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := ws.Write(fd, data); err != nil || n != len(data) {
			t.Fatalf("striped write %s: n=%d err=%v", p, n, err)
		}
	}
	ws.Close()

	// A handle opened before the join survives the layout rewrite: the
	// stale-layout answer makes it re-stat and retry (satellite fix for
	// the frozen per-handle stripe set).
	held, err := client.DialOpts(jobInfo("holder"), addrs, client.Options{Stripes: 4, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	heldFd, err := held.OpenFd("/data/striped0.bin", false)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent readers hammer the files across the join: migration
	// must be invisible — every read byte-identical, zero errors.
	reader, err := client.Dial(jobInfo("reader"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	var stop atomic.Bool
	var readerErr atomic.Value
	var wg sync.WaitGroup
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				p := paths[(i+g)%len(paths)]
				want := files[p]
				fd, err := reader.OpenFd(p, false)
				if err != nil {
					readerErr.Store(fmt.Errorf("open %s: %w", p, err))
					return
				}
				got := make([]byte, len(want))
				total := 0
				for total < len(got) {
					n, err := reader.Read(fd, got[total:])
					if err != nil {
						readerErr.Store(fmt.Errorf("read %s at %d: %w", p, total, err))
						reader.CloseFd(fd)
						return
					}
					if n == 0 {
						break
					}
					total += n
				}
				reader.CloseFd(fd)
				if total != len(want) || !bytes.Equal(got[:total], want) {
					readerErr.Store(fmt.Errorf("read %s: %d/%d bytes, content match=%v",
						p, total, len(want), bytes.Equal(got[:total], want)))
					return
				}
			}
		}(g)
	}

	// Scale out: two more servers join; every fabric member must see
	// six alive and settle its migrations against the grown ring.
	joined := joinServers(t, 2, addrs[0])
	all := append(append([]*server.Server{}, servers...), joined...)
	newAddrs := []string{joined[0].Addr(), joined[1].Addr()}
	waitConverged(t, all, 6)
	waitRebalanced(t, all)

	stop.Store(true)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatalf("concurrent reader failed during rebalance: %v", err)
	}

	// Every file reads back byte-identical through a fresh client of
	// the full fabric.
	fresh, err := client.Dial(jobInfo("verifier"), append(append([]string{}, addrs...), newAddrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	readBack := func(c *client.Client, p string, want []byte) error {
		fd, err := c.OpenFd(p, false)
		if err != nil {
			return err
		}
		defer c.CloseFd(fd)
		got := make([]byte, len(want))
		total := 0
		for total < len(got) {
			n, err := c.Read(fd, got[total:])
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			total += n
		}
		if total != len(want) || !bytes.Equal(got, want) {
			return fmt.Errorf("%s: %d/%d bytes, equal=%v", p, total, len(want), bytes.Equal(got[:total], want))
		}
		return nil
	}
	for p, want := range files {
		if err := readBack(fresh, p, want); err != nil {
			t.Fatalf("post-rebalance content: %v", err)
		}
	}

	// Every recorded layout now matches the grown ring's walk — the new
	// members own exactly their ring share of stripes, which is ≥ the
	// share the acceptance bar asks for.
	ring := servers[0].Cluster().Membership().Ring()
	newOwned := 0
	for p := range files {
		_, _, err := fresh.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		set, stripes, err := fresh.Layout(p)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := ring.LookupN(p, stripes)
		if len(set) != len(wantSet) {
			t.Fatalf("%s: recorded set %v, ring wants %v", p, set, wantSet)
		}
		for i := range set {
			if set[i] != wantSet[i] {
				for _, s := range all {
					f, b, e, pd := s.Migrator().Stats()
					t.Logf("server %s: files=%d bytes=%d errs=%d pending=%d planned=%d memEpoch=%d lastErr=%v",
						s.Addr(), f, b, e, pd, s.Migrator().Epoch(), s.Cluster().Membership().Epoch(), s.Migrator().LastErr())
				}
				t.Fatalf("%s: recorded set %v diverges from ring %v", p, set, wantSet)
			}
			if set[i] == newAddrs[0] || set[i] == newAddrs[1] {
				newOwned++
			}
		}
	}
	if newOwned == 0 {
		t.Fatal("joined servers own zero stripes after rebalance")
	}
	t.Logf("joined servers own %d stripes across %d files", newOwned, len(files))

	// The pre-join handle reads the full migrated file through its old
	// fd (stale-layout → re-stat → retry), then appends through it and
	// reads the tail back.
	want := files["/data/striped0.bin"]
	if _, err := held.Lseek(heldFd, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	total := 0
	for total < len(got) {
		n, err := held.Read(heldFd, got[total:])
		if err != nil {
			t.Fatalf("held-handle read at %d: %v", total, err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("held-handle content: %d/%d bytes, equal=%v", total, len(want), bytes.Equal(got[:total], want))
	}
	tail := bytes.Repeat([]byte{0xEE}, 9000)
	if n, err := held.Write(heldFd, tail); err != nil || n != len(tail) {
		t.Fatalf("held-handle append: n=%d err=%v", n, err)
	}
	want = append(append([]byte{}, want...), tail...)
	if err := readBack(fresh, "/data/striped0.bin", want); err != nil {
		t.Fatalf("post-append content: %v", err)
	}

	// Unlink through the migrated layout still removes every stripe.
	if err := fresh.Unlink("/data/plain0.bin"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fresh.Stat("/data/plain0.bin"); err == nil {
		t.Fatal("stat after unlink should fail")
	}
	w.Close()
}

// TestRebalanceShareTracksPolicy pins the acceptance bar for
// migration bandwidth: the measured rebalance share must track the
// compiled policy share within the same ±0.01-level tolerance PR 3
// used for drain. The deterministic simulator provides the measurement
// (live-socket timing is too noisy to assert a two-decimal share); the
// live fabric above proves the same code path moves real bytes.
func TestRebalanceShareTracksPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sharing sweep")
	}
	m := experiments.Rebalance().Metrics
	if s := m["sizefair_migration_share"]; s < 0.24 || s > 0.26 {
		t.Fatalf("size-fair migration share = %.3f, want 0.25±0.01", s)
	}
	if s := m["jobfair_migration_share"]; s < 0.49 || s > 0.51 {
		t.Fatalf("job-fair migration share = %.3f, want 0.50±0.01", s)
	}
}
