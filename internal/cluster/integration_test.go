package cluster_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/server"
)

const itLambda = 25 * time.Millisecond

// startFabric launches n live servers joined into one cluster through
// server 0, with gossip fan-out strictly below n-1 so no server ever
// holds all-to-all connections.
func startFabric(t testing.TB, n int) ([]*server.Server, []string) {
	t.Helper()
	servers := make([]*server.Server, n)
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		cfg := server.Config{
			Policy:       policy.SizeFair,
			Lambda:       itLambda,
			FailTimeout:  6 * itLambda,
			GossipFanout: 1,
			Seed:         int64(i + 1),
			Quiet:        true,
		}
		if i > 0 {
			cfg.Join = []string{addrs[0]}
		}
		servers[i] = server.New(lns[i], cfg)
		go servers[i].Serve()
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) time.Duration {
	t.Helper()
	start := time.Now()
	for time.Since(start) < d {
		if cond() {
			return time.Since(start)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
	return 0
}

func jobInfo(id string) policy.JobInfo {
	return policy.JobInfo{JobID: id, UserID: "u-" + id, GroupID: "g", Nodes: 4}
}

// TestFabricLive is the end-to-end cluster walkthrough of the issue:
// four live servers form a fabric by gossip (fan-out 1, so nobody
// talks to everybody), a job heartbeating a single server becomes
// globally visible within a small multiple of λ, striped I/O round
// trips across all four servers, and after one server is killed its
// ring segment reassigns and the survivors keep serving.
func TestFabricLive(t *testing.T) {
	servers, addrs := startFabric(t, 4)

	// Membership convergence: every server sees all four members alive.
	waitFor(t, 5*time.Second, "membership convergence", func() bool {
		for _, s := range servers {
			n := 0
			for _, m := range s.Cluster().Membership().Snapshot() {
				if m.State == cluster.StateAlive {
					n++
				}
			}
			if n != len(servers) {
				return false
			}
		}
		return true
	})

	// Gossip λ-sync: a job known to one server spreads to all job
	// tables in O(log N) gossip rounds — budget a small multiple of λ.
	solo, err := client.Dial(jobInfo("solo"), addrs[:1])
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	elapsed := waitFor(t, 5*time.Second, "job-table convergence", func() bool {
		for _, s := range servers {
			found := false
			for _, e := range s.Table().Snapshot() {
				if e.Info.JobID == "solo" {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
	if elapsed > 20*itLambda {
		t.Errorf("job table converged in %v, want within 20λ = %v", elapsed, 20*itLambda)
	}

	// Striped round trip across all four servers.
	c, err := client.DialOpts(jobInfo("stripe"), addrs, client.Options{
		Stripes: 4, StripeUnit: 4096, ConnsPerServer: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	served := make([]int64, len(servers))
	for i, s := range servers {
		served[i] = s.Served()
	}
	fd, err := c.OpenFd("/data/striped.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if n, err := c.Write(fd, data); err != nil || n != len(data) {
		t.Fatalf("striped write: n=%d err=%v", n, err)
	}
	for i, s := range servers {
		if s.Served() <= served[i] {
			t.Fatalf("server %d saw no striped traffic", i)
		}
	}
	if size, _, err := c.Stat("/data/striped.bin"); err != nil || size != int64(len(data)) {
		t.Fatalf("striped stat: size=%d err=%v", size, err)
	}
	if _, err := c.Lseek(fd, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := c.Read(fd, got); err != nil || n != len(data) {
		t.Fatalf("striped read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped read mismatch")
	}
	// Unaligned interior read crossing several stripe units.
	const off, ln = 4097*3 + 11, 40000
	if _, err := c.Lseek(fd, off, 0); err != nil {
		t.Fatal(err)
	}
	part := make([]byte, ln)
	if n, err := c.Read(fd, part); err != nil || n != ln {
		t.Fatalf("interior read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(part, data[off:off+ln]) {
		t.Fatal("interior read mismatch")
	}

	// Failover: kill server 3 without a goodbye. The fabric suspects,
	// times out, and fails it; its ring segment reassigns.
	dead := addrs[3]
	servers[3].Close()
	waitFor(t, 5*time.Second, "failure detection", func() bool {
		for _, s := range servers[:3] {
			m, ok := s.Cluster().Membership().Lookup(dead)
			if !ok || m.State != cluster.StateFailed {
				return false
			}
		}
		return true
	})
	for i, s := range servers[:3] {
		nodes := s.Cluster().Membership().Ring().Nodes()
		if len(nodes) != 3 {
			t.Fatalf("server %d ring = %v after failover", i, nodes)
		}
		for _, n := range nodes {
			if n == dead {
				t.Fatalf("server %d ring still owns %s", i, dead)
			}
		}
	}
	// The dead server's job-table sightings are scrubbed, so presence
	// deweighting shifts entirely onto the survivors.
	waitFor(t, 5*time.Second, "presence scrub", func() bool {
		for _, s := range servers[:3] {
			for _, e := range s.Table().Snapshot() {
				if e.Servers[dead] {
					return false
				}
			}
		}
		return true
	})

	// Jobs are still served under the policy: striped I/O continues on
	// the survivors once the client's ring reassigns (its first attempt
	// may consume the error that teaches it the server is gone).
	var fd2 int
	waitFor(t, 5*time.Second, "post-failover write", func() bool {
		fd2, err = c.OpenFd(fmt.Sprintf("/data/after-%d.bin", time.Now().UnixNano()), true)
		if err != nil {
			return false
		}
		_, err = c.Write(fd2, data[:1<<18])
		return err == nil
	})
	if len(c.Servers()) != 3 {
		t.Fatalf("client ring = %v after failover", c.Servers())
	}
	if _, err := c.Lseek(fd2, 0, 0); err != nil {
		t.Fatal(err)
	}
	after := make([]byte, 1<<18)
	if n, err := c.Read(fd2, after); err != nil || n != len(after) {
		t.Fatalf("post-failover read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(after, data[:1<<18]) {
		t.Fatal("post-failover read mismatch")
	}
	if share := servers[0].Scheduler().Share("stripe"); share <= 0 {
		t.Fatalf("stripe job share = %v on survivor", share)
	}
}
