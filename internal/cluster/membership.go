// Package cluster is the multi-server fabric of the reproduction: a
// membership manager (join/leave/drain/fail, driven by the same
// timeout idiom as the job table's heartbeat expiry), an epidemic
// push-pull gossip engine that replaces the O(N²) λ-interval job-table
// all-gather with k random peer exchanges per round, and the consistent
// hash ring that placement (client striping, server fsys) follows as
// membership changes.
//
// The paper runs ThemisIO as a remote-shared burst buffer — many
// servers, one global fairness contract, with the λ-interval job-table
// synchronization as the only cross-server mechanism (§3.1, §4.1).
// This package supplies the fabric around that mechanism. Randomized
// peer selection follows the greedy/randomized-selection analyses of
// Kaczmarz-style methods (arXiv:1612.07838): uniform random fan-out is
// within a constant of the best fixed schedule and needs no global
// coordination, and push-pull epidemic exchange converges every
// member's view in O(log N) rounds with high probability.
package cluster

import (
	"sort"
	"sync"
	"time"

	"themisio/internal/chash"
)

// State is a member's lifecycle state.
type State uint8

// Member lifecycle states. Order encodes rumor precedence: for equal
// incarnations a later (worse) state overrides an earlier one, so a
// failure rumor beats a stale alive claim and a refutation must bump
// the incarnation to win.
const (
	// StateAlive members serve I/O and own ring segments.
	StateAlive State = iota
	// StateDraining members still serve and gossip but own no ring
	// segment: new placement avoids them so they can empty and leave.
	StateDraining
	// StateSuspect members missed contact; they keep their ring segment
	// until the failure timeout confirms (avoids placement flapping).
	StateSuspect
	// StateFailed members timed out; their ring segment reassigns and
	// their job-table sightings are dropped (presence deweighting
	// shifts to the survivors).
	StateFailed
	// StateLeft members departed gracefully.
	StateLeft
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateDraining:
		return "draining"
	case StateSuspect:
		return "suspect"
	case StateFailed:
		return "failed"
	case StateLeft:
		return "left"
	}
	return "unknown"
}

// InRing reports whether a member in this state owns ring segments.
func (s State) InRing() bool { return s == StateAlive || s == StateSuspect }

// Gossipable reports whether a member in this state is a useful gossip
// target (suspects are included so one missed round does not partition
// them; failed and left members are not contacted).
func (s State) Gossipable() bool {
	return s == StateAlive || s == StateDraining || s == StateSuspect
}

// Member is the gossiped membership record: address, state, and an
// incarnation number that totally orders rumors about the same member
// without comparing timestamps across clock domains.
type Member struct {
	Addr        string
	State       State
	Incarnation uint64
}

// supersedes reports whether rumor a beats rumor b about the same
// member: higher incarnation wins outright; equal incarnations resolve
// to the worse state.
func supersedes(a, b Member) bool {
	if a.Incarnation != b.Incarnation {
		return a.Incarnation > b.Incarnation
	}
	return a.State > b.State
}

// entry is the local bookkeeping around a gossiped record.
type entry struct {
	m     Member
	last  time.Duration // most recent direct or gossiped sighting
	fails int           // consecutive failed direct contacts
}

// DefaultFailTimeout is the sighting age at which a suspect member is
// declared failed when none is configured; like the job table's
// heartbeat expiry it is a small multiple of the sync interval.
const DefaultFailTimeout = 5 * time.Second

// DefaultFailAfter is the consecutive direct-contact failures that turn
// an alive member suspect.
const DefaultFailAfter = 2

// Membership tracks the cluster's member set for one server and derives
// the placement ring from it. Time is expressed as offsets from an
// arbitrary epoch (the jobtable convention) so the same code runs under
// the live wall clock and the simulator's virtual clock. Safe for
// concurrent use.
type Membership struct {
	mu      sync.RWMutex
	self    string
	timeout time.Duration
	after   int
	entries map[string]*entry
	ring    *chash.Ring
	epoch   uint64
}

// NewMembership returns a membership view owned by self, with the given
// failure timeout (non-positive selects DefaultFailTimeout) and ring
// virtual-node count (non-positive selects chash.DefaultReplicas).
// The view starts as a single-member cluster: self, alive.
func NewMembership(self string, timeout time.Duration, replicas int) *Membership {
	if timeout <= 0 {
		timeout = DefaultFailTimeout
	}
	m := &Membership{
		self:    self,
		timeout: timeout,
		after:   DefaultFailAfter,
		entries: map[string]*entry{},
		ring:    chash.New(replicas),
	}
	m.entries[self] = &entry{m: Member{Addr: self, State: StateAlive, Incarnation: 1}}
	m.ring.Add(self)
	return m
}

// Self returns the owning server's address.
func (m *Membership) Self() string { return m.self }

// Ring returns the placement ring (live view; it rebalances as
// membership changes).
func (m *Membership) Ring() *chash.Ring { return m.ring }

// Epoch returns a counter that increments whenever ring ownership
// changes; placement caches compare epochs to detect rebalances.
func (m *Membership) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// newEntryLocked registers a previously-unknown member. The placeholder
// state is StateLeft — out of the ring — so the setLocked that follows
// sees the ring-ownership flip and inserts the member's virtual nodes.
// Caller holds m.mu.
func (m *Membership) newEntryLocked(addr string) *entry {
	e := &entry{m: Member{Addr: addr, State: StateLeft}}
	m.entries[addr] = e
	return e
}

// setLocked installs rec, updating the ring when ring ownership flips.
// Caller holds m.mu.
func (m *Membership) setLocked(e *entry, rec Member) {
	was := e.m.State.InRing()
	e.m = rec
	now := rec.State.InRing()
	if was != now {
		if now {
			m.ring.Add(rec.Addr)
		} else {
			m.ring.Remove(rec.Addr)
		}
		m.epoch++
	}
}

// Sighting records a successful direct contact with addr at time now: a
// gossip exchange completed or a join/heartbeat arrived. A sighting
// clears the failure counter and revives a suspect or failed member by
// bumping its incarnation past the standing rumor (the contacted member
// is observably alive, so the reviving record supersedes).
func (m *Membership) Sighting(addr string, now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[addr]
	if !ok {
		e = m.newEntryLocked(addr)
		m.setLocked(e, Member{Addr: addr, State: StateAlive, Incarnation: 1})
		e.last = now
		return
	}
	e.fails = 0
	e.last = now
	if e.m.State == StateSuspect || e.m.State == StateFailed {
		m.setLocked(e, Member{Addr: addr, State: StateAlive, Incarnation: e.m.Incarnation + 1})
	}
}

// ReportFailure records a failed direct contact with addr at time now.
// After DefaultFailAfter consecutive failures an alive or draining
// member turns suspect; Tick later confirms the failure once the
// sighting age passes the timeout.
func (m *Membership) ReportFailure(addr string, now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[addr]
	if !ok || addr == m.self {
		return
	}
	e.fails++
	if e.fails >= m.after && (e.m.State == StateAlive || e.m.State == StateDraining) {
		m.setLocked(e, Member{Addr: addr, State: StateSuspect, Incarnation: e.m.Incarnation})
	}
}

// Tick advances failure detection at time now and returns the addresses
// newly declared failed (the caller drops their job-table sightings and
// the ring has already reassigned their segments). A suspect whose last
// sighting is older than the failure timeout is confirmed failed.
func (m *Membership) Tick(now time.Duration) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var failed []string
	for addr, e := range m.entries {
		if addr == m.self {
			continue
		}
		if e.m.State == StateSuspect && now-e.last > m.timeout {
			m.setLocked(e, Member{Addr: addr, State: StateFailed, Incarnation: e.m.Incarnation})
			failed = append(failed, addr)
		}
	}
	sort.Strings(failed)
	return failed
}

// Merge folds a gossiped membership digest into the view at time now,
// applying the rumor-precedence rule per member. A rumor that the owner
// itself is suspect or failed is refuted by bumping the owner's own
// incarnation past it (the SWIM refutation). Returns the addresses
// newly declared failed by the merge.
func (m *Membership) Merge(records []Member, now time.Duration) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var failed []string
	for _, rec := range records {
		if rec.Addr == m.self {
			// Refute a rumor accusing self of being suspect or failed by
			// out-incarnating it with the actual local state (the SWIM
			// refutation). Echoes of self-chosen states — draining,
			// left — are not accusations and must not be "refuted", or
			// a drain would revert the moment it gossips back.
			self := m.entries[m.self]
			accusation := rec.State == StateSuspect || rec.State == StateFailed
			if accusation && rec.Incarnation >= self.m.Incarnation && self.m.State != StateLeft {
				m.setLocked(self, Member{Addr: m.self, State: self.m.State, Incarnation: rec.Incarnation + 1})
			}
			continue
		}
		e, ok := m.entries[rec.Addr]
		if !ok {
			e = m.newEntryLocked(rec.Addr)
			e.last = now
			m.setLocked(e, rec)
			if rec.State == StateFailed {
				failed = append(failed, rec.Addr)
			}
			continue
		}
		if supersedes(rec, e.m) {
			wasFailed := e.m.State == StateFailed
			m.setLocked(e, rec)
			if rec.State == StateFailed && !wasFailed {
				failed = append(failed, rec.Addr)
			}
			if rec.State == StateAlive || rec.State == StateDraining {
				e.last = now
				e.fails = 0
			}
		}
	}
	sort.Strings(failed)
	return failed
}

// Snapshot returns the full membership digest, sorted by address — what
// a gossip round sends.
func (m *Membership) Snapshot() []Member {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Member, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Peers returns the gossipable members other than self, sorted — the
// pool a gossip round samples its fan-out from.
func (m *Membership) Peers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for addr, e := range m.entries {
		if addr != m.self && e.m.State.Gossipable() {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// IsAlive reports whether addr is a known member in StateAlive — the
// eligibility check rebalancing applies to every source and target of
// a planned stripe migration (moving data toward or away from a
// suspect, draining or failed member is failover recovery's job, not
// the planner's).
func (m *Membership) IsAlive(addr string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[addr]
	return ok && e.m.State == StateAlive
}

// Lookup returns the member record for addr.
func (m *Membership) Lookup(addr string) (Member, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[addr]
	if !ok {
		return Member{}, false
	}
	return e.m, true
}

// Drain marks self draining: still serving and gossiping, but owning no
// ring segment, so placement moves off this server ahead of a graceful
// leave. The state change bumps the incarnation so it propagates.
func (m *Membership) Drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	self := m.entries[m.self]
	if self.m.State == StateDraining {
		return
	}
	m.setLocked(self, Member{Addr: m.self, State: StateDraining, Incarnation: self.m.Incarnation + 1})
}

// Leave marks self departed; the caller gossips the final digest out
// before shutting down.
func (m *Membership) Leave() {
	m.mu.Lock()
	defer m.mu.Unlock()
	self := m.entries[m.self]
	if self.m.State == StateLeft {
		return
	}
	m.setLocked(self, Member{Addr: m.self, State: StateLeft, Incarnation: self.m.Incarnation + 1})
}
