package cluster_test

import (
	"bytes"
	"fmt"
	"testing"

	"themisio/internal/client"
)

// BenchmarkStripedThroughput measures one client's aggregate bandwidth
// (write + read back) against 1 and 4 servers with files striped over
// the full fabric — the scaling claim of client-side striping: fan-out
// parallelism grows with the server count.
//
// Run: go test -bench StripedThroughput ./internal/cluster/
func BenchmarkStripedThroughput(b *testing.B) {
	const payload = 8 << 20
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			_, addrs := startFabric(b, n)
			c, err := client.DialOpts(jobInfo("bench"), addrs, client.Options{
				Stripes: n, StripeUnit: 256 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			data := bytes.Repeat([]byte{0xa5}, payload)
			got := make([]byte, payload)
			b.SetBytes(2 * payload) // write + read per iteration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("/bench-%d.bin", i)
				fd, err := c.Open(path, true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Write(fd, data); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Lseek(fd, 0, 0); err != nil {
					b.Fatal(err)
				}
				if m, err := c.Read(fd, got); err != nil || m != payload {
					b.Fatalf("read: n=%d err=%v", m, err)
				}
				if err := c.CloseFd(fd); err != nil {
					b.Fatal(err)
				}
				// Unlink releases the extents so capacity never runs out
				// regardless of b.N.
				if err := c.Unlink(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
