package cluster_test

import (
	"bytes"
	"fmt"
	"testing"

	"themisio/internal/client"
)

// BenchmarkStripedThroughput measures one client's aggregate bandwidth
// (write + read back) against 1 and 4 servers with files striped over
// the full fabric — the scaling claim of client-side striping: fan-out
// parallelism grows with the server count.
//
// Run: go test -bench StripedThroughput ./internal/cluster/
func BenchmarkStripedThroughput(b *testing.B) {
	const payload = 8 << 20
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			_, addrs := startFabric(b, n)
			// Pinned to one connection per server: this is the
			// single-conn baseline BenchmarkStripedThroughputPooled is
			// measured against.
			c, err := client.DialOpts(jobInfo("bench"), addrs, client.Options{
				Stripes: n, StripeUnit: 256 << 10, ConnsPerServer: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			data := bytes.Repeat([]byte{0xa5}, payload)
			got := make([]byte, payload)
			b.SetBytes(2 * payload) // write + read per iteration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("/bench-%d.bin", i)
				fd, err := c.OpenFd(path, true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Write(fd, data); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Lseek(fd, 0, 0); err != nil {
					b.Fatal(err)
				}
				if m, err := c.Read(fd, got); err != nil || m != payload {
					b.Fatalf("read: n=%d err=%v", m, err)
				}
				if err := c.CloseFd(fd); err != nil {
					b.Fatal(err)
				}
				// Unlink releases the extents so capacity never runs out
				// regardless of b.N.
				if err := c.Unlink(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStripedThroughputPooled measures the aggregate bandwidth of
// concurrent striped streams against a 4-server fabric, with the
// per-server connection pool sized 1 (the pre-pool wire shape: every
// stream of a server multiplexed onto one conn) and 4 (each stream
// rides its own slot by stripe affinity, reads spread over all slots).
// The conns=4 case is the PR's headline number: ≥1.3× the committed
// single-conn BenchmarkStripedThroughput/servers=4 baseline.
//
// Run: go test -bench StripedThroughputPooled ./internal/cluster/
func BenchmarkStripedThroughputPooled(b *testing.B) {
	const (
		payload = 8 << 20
		writers = 4
	)
	for _, conns := range []int{1, 4} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			_, addrs := startFabric(b, 4)
			cs := make([]*client.Client, writers)
			for w := range cs {
				c, err := client.DialOpts(jobInfo(fmt.Sprintf("bench%d", w)), addrs, client.Options{
					Stripes: 4, StripeUnit: 256 << 10, ConnsPerServer: conns,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				cs[w] = c
			}
			data := bytes.Repeat([]byte{0xa5}, payload)
			b.SetBytes(2 * payload * writers) // write + read per stream per iteration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				errs := make(chan error, writers)
				for w := 0; w < writers; w++ {
					go func(w int) {
						errs <- func() error {
							c := cs[w]
							path := fmt.Sprintf("/bench-p%d-%d.bin", w, i)
							fd, err := c.OpenFd(path, true)
							if err != nil {
								return err
							}
							if _, err := c.Write(fd, data); err != nil {
								return err
							}
							if _, err := c.Lseek(fd, 0, 0); err != nil {
								return err
							}
							got := make([]byte, payload)
							if m, err := c.Read(fd, got); err != nil || m != payload {
								return fmt.Errorf("read: n=%d err=%v", m, err)
							}
							if err := c.CloseFd(fd); err != nil {
								return err
							}
							return c.Unlink(path)
						}()
					}(w)
				}
				for w := 0; w < writers; w++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
