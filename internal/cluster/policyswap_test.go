package cluster_test

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"themisio/internal/client"
	"themisio/internal/policy"
	"themisio/internal/server"
)

// Hot-swap fabric tuning. λ is generous so the ≤3λ epoch-propagation
// budget is dominated by gossip rounds, not TCP scheduling jitter; the
// per-request OpDelay keeps the worker pool the bottleneck, so both
// jobs hold a standing backlog and the token draw — not client offered
// load — decides the measured shares.
const (
	psLambda  = 200 * time.Millisecond
	psOpDelay = 500 * time.Microsecond
	// 64 writers per user keep every server's per-user queue deep enough
	// that the striped write's fan-out barrier (a write completes at the
	// slowest of its 4 stripe servers) cannot momentarily drain the
	// high-share user's queue and leak her cycles to the other user.
	psWriters = 64
	psWrite   = 16 << 10 // bytes per Write call
	psUnit    = 4 << 10  // stripe unit: every write fans to all 4 servers
)

// startSwapFabric launches n live servers under the job-fair boot
// policy with saturating-delay device emulation.
func startSwapFabric(t testing.TB, n int) ([]*server.Server, []string) {
	t.Helper()
	servers := make([]*server.Server, n)
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		cfg := server.Config{
			Policy:       policy.JobFair,
			Lambda:       psLambda,
			FailTimeout:  6 * psLambda,
			GossipFanout: 2,
			OpDelay:      psOpDelay,
			Seed:         int64(i + 1),
			Quiet:        true,
		}
		if i > 0 {
			cfg.Join = []string{addrs[0]}
		}
		servers[i] = server.New(lns[i], cfg)
		go servers[i].Serve()
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs
}

// psRotateWrites is how many appends a writer makes to one file before
// unlinking it and starting over (3 MB per file): the flood runs for as
// long as convergence takes without ever filling the servers' 256 MiB
// shards — steady state is ≤ psWriters·2·3 MB across the fabric. The
// rotation is long enough that its serial unlink/reopen round trips
// (scheduled ops, so they queue like any request) stay well under 1% of
// a writer's duty cycle — rotating too often visibly leaks the
// high-share user's cycles to the other user.
const psRotateWrites = 192

// swapLoad runs one user's striped write flood: psWriters goroutines,
// each appending to (and periodically rotating) its own file, until
// stop closes. Every error — write, unlink, reopen, short write — is
// counted; the acceptance bar is zero.
func swapLoad(t testing.TB, c *client.Client, user string, stop chan struct{}, errs *atomic.Int64) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < psWriters; i++ {
		path := fmt.Sprintf("/swap/%s-%d.bin", user, i)
		fd, err := c.OpenFd(path, true)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		wg.Add(1)
		go func(fd int, path string) {
			defer wg.Done()
			buf := make([]byte, psWrite)
			writes := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n, err := c.Write(fd, buf); err != nil || n != len(buf) {
					errs.Add(1)
				}
				if writes++; writes >= psRotateWrites {
					writes = 0
					if err := c.CloseFd(fd); err != nil {
						errs.Add(1)
					}
					if err := c.Unlink(path); err != nil {
						errs.Add(1)
					}
					var err error
					if fd, err = c.OpenFd(path, true); err != nil {
						errs.Add(1)
						return
					}
				}
			}
		}(fd, path)
	}
	return &wg
}

// TestFabricPolicySwap is the acceptance walkthrough of the live
// policy hot-swap: on a 4-server fabric under concurrent load from two
// users, `policy set` flips job-fair → size-fair through one member;
// the rumor gossips out and every member reports the new policy epoch
// within 3λ; no request errors; and the measured per-entity shares
// every server reports over MsgShareReport converge to the freshly
// compiled shares within ±0.02 — without restarting anything or
// dropping a byte.
func TestFabricPolicySwap(t *testing.T) {
	if testing.Short() {
		t.Skip("live share-convergence scenario needs several seconds of saturated load")
	}
	servers, addrs := startSwapFabric(t, 4)
	waitConverged(t, servers, 4)

	alice := policy.JobInfo{JobID: "job-a", UserID: "alice", GroupID: "g", Nodes: 3}
	bob := policy.JobInfo{JobID: "job-b", UserID: "bob", GroupID: "g", Nodes: 1}
	opts := client.Options{Stripes: 4, StripeUnit: psUnit}
	ca, err := client.DialOpts(alice, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := client.DialOpts(bob, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	if err := ca.Mkdir("/swap"); err != nil {
		t.Fatal(err)
	}

	var errCount atomic.Int64
	stop := make(chan struct{})
	wgA := swapLoad(t, ca, "alice", stop, &errCount)
	wgB := swapLoad(t, cb, "bob", stop, &errCount)

	// Let the fabric settle into the saturated job-fair regime.
	time.Sleep(5 * psLambda)

	// The swap: one control message to one member.
	canon, epoch, err := ca.SetPolicy("size-fair")
	swapAt := time.Now()
	if err != nil {
		t.Fatalf("policy set: %v", err)
	}
	if canon != "size-fair" || epoch == 0 {
		t.Fatalf("policy set returned %q epoch %d", canon, epoch)
	}

	// Every member must be enforcing the new policy epoch within 3λ.
	waitFor(t, 10*time.Second, "policy epoch propagation", func() bool {
		for _, s := range servers {
			str, e := s.AppliedPolicy()
			if e != epoch || str != "size-fair" {
				return false
			}
		}
		return true
	})
	if elapsed := time.Since(swapAt); elapsed > 3*psLambda {
		t.Errorf("policy epoch reached every member in %v, want within 3λ = %v", elapsed, 3*psLambda)
	}

	// Measured shares re-converge to the new compiled shares on every
	// server (the ledger horizon has to forget the job-fair windows
	// first). Checked through the wire path — MsgShareReport — exactly
	// as `themisctl policy status` would.
	var lastBad string
	converged := func() bool {
		reports, err := ca.ShareReports()
		if err != nil || len(reports) != 4 {
			lastBad = fmt.Sprintf("reports: %d, err %v", len(reports), err)
			return false
		}
		for _, rep := range reports {
			if rep.PolicyEpoch != epoch {
				lastBad = fmt.Sprintf("%s at epoch %d", rep.Addr, rep.PolicyEpoch)
				return false
			}
			seen := 0
			for _, e := range rep.Shares {
				if e.Kind != "user" {
					continue
				}
				var want float64
				switch e.ID {
				case "alice":
					want = 0.75
				case "bob":
					want = 0.25
				default:
					continue
				}
				seen++
				if math.Abs(e.Compiled-want) > 1e-6 {
					lastBad = fmt.Sprintf("%s compiled %s = %.4f, want %.2f", rep.Addr, e.ID, e.Compiled, want)
					return false
				}
				if r := e.Measured - e.Compiled; math.Abs(r) > 0.02 {
					lastBad = fmt.Sprintf("%s %s residual %+.4f", rep.Addr, e.ID, r)
					return false
				}
			}
			if seen != 2 {
				lastBad = fmt.Sprintf("%s reports %d of 2 users", rep.Addr, seen)
				return false
			}
		}
		return true
	}
	start := time.Now()
	stillOK := false
	for time.Since(start) < 20*time.Second {
		if converged() {
			stillOK = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	close(stop)
	wgA.Wait()
	wgB.Wait()

	if !stillOK {
		t.Fatalf("measured shares did not converge to ±0.02 of compiled: %s", lastBad)
	}
	if n := errCount.Load(); n != 0 {
		t.Fatalf("%d request errors across the hot-swap, want 0", n)
	}
	// The jobs were never restarted: both made progress after the swap
	// under the new shares (alice ~3× bob).
	reports, err := ca.ShareReports()
	if err != nil {
		t.Fatal(err)
	}
	var aBytes, bBytes int64
	for _, rep := range reports {
		for _, e := range rep.Shares {
			if e.Kind == "user" && e.ID == "alice" {
				aBytes += e.Bytes
			}
			if e.Kind == "user" && e.ID == "bob" {
				bBytes += e.Bytes
			}
		}
	}
	if aBytes == 0 || bBytes == 0 {
		t.Fatalf("post-swap serviced bytes: alice %d, bob %d", aBytes, bBytes)
	}
	ratio := float64(aBytes) / float64(aBytes+bBytes)
	if math.Abs(ratio-0.75) > 0.02 {
		t.Errorf("cluster-aggregate alice share = %.3f, want 0.75±0.02", ratio)
	}
}
