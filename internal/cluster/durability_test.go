package cluster_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"themisio/internal/backing"
	"themisio/internal/client"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/server"
)

// startBackedFabric launches n live servers sharing one backing store —
// the deployment shape of a real burst buffer in front of a PFS.
func startBackedFabric(t testing.TB, n int, store backing.Store) ([]*server.Server, []string) {
	t.Helper()
	servers := make([]*server.Server, n)
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		cfg := server.Config{
			Policy:       policy.SizeFair,
			Lambda:       itLambda,
			FailTimeout:  6 * itLambda,
			GossipFanout: 1,
			Seed:         int64(i + 1),
			Backing:      store,
			Quiet:        true,
		}
		if i > 0 {
			cfg.Join = []string{addrs[0]}
		}
		servers[i] = server.New(lns[i], cfg)
		go servers[i].Serve()
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs
}

// TestFabricDurability is the acceptance walkthrough of the stage-out
// subsystem: a 4-server cluster over one backing store, files written
// and flushed, one server killed without a goodbye — and clients read
// every byte back after the survivors re-hydrate the dead member's ring
// segment from the backing store. Before this subsystem, a failed
// member lost every byte it held (TestFabricLive asserts only that
// routing survives).
func TestFabricDurability(t *testing.T) {
	store, err := backing.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startBackedFabric(t, 4, store)

	waitFor(t, 5*time.Second, "membership convergence", func() bool {
		for _, s := range servers {
			n := 0
			for _, m := range s.Cluster().Membership().Snapshot() {
				if m.State == cluster.StateAlive {
					n++
				}
			}
			if n != len(servers) {
				return false
			}
		}
		return true
	})

	// Unstriped files spread over the ring (some land on every server),
	// plus one file striped across all four — the dead server will hold
	// whole files and single stripes.
	c, err := client.Dial(jobInfo("writer"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/data/f%d.bin", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 100_000+i*1_000)
		files[p] = data
		fd, err := c.OpenFd(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := c.Write(fd, data); err != nil || n != len(data) {
			t.Fatalf("write %s: n=%d err=%v", p, n, err)
		}
	}
	cs, err := client.DialOpts(jobInfo("striper"), addrs, client.Options{Stripes: 4, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	striped := make([]byte, 1<<20)
	for i := range striped {
		striped[i] = byte(i * 131)
	}
	fd, err := cs.OpenFd("/data/striped.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cs.Write(fd, striped); err != nil || n != len(striped) {
		t.Fatalf("striped write: n=%d err=%v", n, err)
	}
	files["/data/striped.bin"] = striped

	// Durability barrier: every dirty byte reaches the backing store.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	cs.Close()
	c.Close()

	// Kill server 3 without a goodbye; survivors must confirm the
	// failure and re-hydrate its ring segment from the backing store.
	dead := addrs[3]
	servers[3].Close()
	waitFor(t, 5*time.Second, "failure detection", func() bool {
		for _, s := range servers[:3] {
			m, ok := s.Cluster().Membership().Lookup(dead)
			if !ok || m.State != cluster.StateFailed {
				return false
			}
		}
		return true
	})

	// A fresh client of the survivors reads every file back
	// byte-identical. Recovery is asynchronous (one λ behind failure
	// confirmation), so poll until all contents match.
	cr, err := client.Dial(jobInfo("reader"), addrs[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Close()
	readBack := func(p string, want []byte) bool {
		fd, err := cr.OpenFd(p, false)
		if err != nil {
			return false
		}
		defer cr.CloseFd(fd)
		got := make([]byte, len(want))
		total := 0
		for total < len(got) {
			n, err := cr.Read(fd, got[total:])
			if err != nil || n == 0 {
				return false
			}
			total += n
		}
		return bytes.Equal(got, want)
	}
	waitFor(t, 10*time.Second, "post-failover content recovery", func() bool {
		for p, want := range files {
			if !readBack(p, want) {
				return false
			}
		}
		return true
	})

	// The namespace recovered too: children whose directory entry lived
	// only on the dead server are re-registered by the adopting owner.
	names, err := cr.Readdir("/data")
	if err != nil || len(names) != len(files) {
		t.Fatalf("post-recovery readdir: %v (err=%v), want %d entries", names, err, len(files))
	}
}
