package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(2*time.Second, func() { got = append(got, 2) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events reordered: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic scheduling in the past")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestAfterNesting(t *testing.T) {
	e := New()
	var fired time.Duration
	e.After(time.Second, func() {
		e.After(2*time.Second, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 3*time.Second {
		t.Fatalf("nested After fired at %v, want 3s", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.At(time.Second, func() { fired = true })
	tm.Stop()
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	// Stopping after firing is a no-op.
	tm2 := e.At(2*time.Second, func() {})
	e.Run()
	tm2.Stop()
}

func TestEvery(t *testing.T) {
	e := New()
	var times []time.Duration
	tm := e.Every(time.Second, func() { times = append(times, e.Now()) })
	e.RunUntil(3500 * time.Millisecond)
	tm.Stop()
	e.RunUntil(10 * time.Second)
	if len(times) != 3 {
		t.Fatalf("Every fired %d times (%v), want 3", len(times), times)
	}
	for i, at := range times {
		if at != time.Duration(i+1)*time.Second {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestRunUntilLeavesClockAtDeadline(t *testing.T) {
	e := New()
	e.At(10*time.Second, func() {})
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v, want 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if e.Pending() != 0 || e.Processed() != 1 {
		t.Fatalf("pending/processed = %d/%d", e.Pending(), e.Processed())
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New().Every(0, func() {})
}
