// Package sim is a deterministic discrete-event simulation engine with a
// virtual clock. It substitutes for the paper's real Frontera testbed:
// every figure in the evaluation is a statement about ratios of bandwidth
// over time, which the virtual clock reproduces deterministically and
// several orders of magnitude faster than wall time.
//
// The engine is single-threaded: events fire in timestamp order (FIFO
// among equal timestamps, by sequence number), and each event handler runs
// to completion before the next fires. No goroutines, no locks, no races.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event, usable to cancel it.
type Timer struct{ ev *event }

// Stop cancels the timer; the callback will not fire. Safe to call after
// the event has fired (it becomes a no-op).
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.dead = true
	}
}

// Engine is a discrete-event executor over a virtual clock that starts
// at zero.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	nRun   uint64
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Every schedules fn at now+d, then repeatedly every d, until the returned
// timer is stopped. fn observes the clock via Engine.Now.
func (e *Engine) Every(d time.Duration, fn func()) *Timer {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	ev := &event{}
	t := &Timer{ev: ev}
	var tick func()
	tick = func() {
		if ev.dead {
			return
		}
		fn()
		if ev.dead {
			return
		}
		inner := e.After(d, tick)
		*ev = *inner.ev // keep the same handle pointing at the new event
	}
	first := e.After(d, tick)
	*ev = *first.ev
	return t
}

// Step executes the next event, advancing the clock. Returns false when no
// events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.nRun++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass deadline; the clock
// is left exactly at deadline. Events scheduled at the deadline itself are
// executed.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run drains the event queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
