package obsv

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a strict-enough parser of the text exposition
// format for conformance checking: it returns families (name → type)
// and samples (full series line → value), failing the test on any
// structural violation — duplicate family declarations, samples
// without a preceding TYPE, unparseable values, or label syntax that
// doesn't round-trip the escaping rules.
func parseExposition(t *testing.T, out string) (map[string]string, map[string]float64) {
	t.Helper()
	fams := map[string]string{}
	samples := map[string]float64{}
	var cur string
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[0], parts[1]
			if _, dup := fams[name]; dup {
				t.Fatalf("duplicate family declaration: %s", name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown family type %q in %q", typ, line)
			}
			fams[name] = typ
			cur = name
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			v = f
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			checkLabelSyntax(t, series[i+1:len(series)-1])
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := fams[name]; !ok {
			if _, ok := fams[base]; !ok || fams[base] != "histogram" {
				t.Fatalf("sample %q has no family declaration", line)
			}
		}
		if cur != name && cur != base {
			t.Fatalf("sample %q outside its family block (current %q)", line, cur)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("duplicate series: %q", series)
		}
		samples[series] = v
	}
	return fams, samples
}

// checkLabelSyntax validates one rendered label set body: comma-joined
// name="value" pairs whose values contain no raw quote, backslash or
// newline.
func checkLabelSyntax(t *testing.T, body string) {
	t.Helper()
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=\"")
		if eq <= 0 {
			t.Fatalf("malformed label in %q", body)
		}
		rest = rest[eq+2:]
		// Scan to the closing unescaped quote.
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				if i >= len(rest) {
					t.Fatalf("dangling escape in %q", body)
				}
				if c := rest[i]; c != '\\' && c != '"' && c != 'n' {
					t.Fatalf("invalid escape \\%c in %q", c, body)
				}
				continue
			}
			if rest[i] == '"' {
				break
			}
			if rest[i] == '\n' {
				t.Fatalf("raw newline in label value of %q", body)
			}
		}
		if i >= len(rest) {
			t.Fatalf("unterminated label value in %q", body)
		}
		rest = rest[i+1:]
		if rest != "" {
			if rest[0] != ',' {
				t.Fatalf("garbage after label value in %q", body)
			}
			rest = rest[1:]
		}
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestExpositionConformance registers one family of every kind —
// including label values exercising the escaping rules and a callback
// collector — and validates the rendered output structurally.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_ops_total", "ops").Add(42)
	cv := r.CounterVec("t_frames_total", "frames by type", "type", "dir")
	cv.With("read", "in").Add(7)
	cv.With(`we"ird\type`, "out").Inc()
	cv.With("line\nbreak", "in").Inc()
	g := r.Gauge("t_depth", "queue depth")
	g.Set(3.5)
	r.GaugeFunc("t_dirty_bytes", "dirty bytes", func() float64 { return 1024 })
	r.GaugeVecFunc("t_residual", "per-entity residual", []string{"kind", "id"},
		func(emit Emit) {
			emit([]string{"user", "alice"}, -0.013)
			emit([]string{"user", "bob"}, 0.013)
		})
	h := r.Histogram("t_latency_seconds", "request latency", LatencyBuckets)
	for _, v := range []float64{0.0002, 0.004, 0.004, 0.2, 99} {
		h.Observe(v)
	}

	out := render(t, r)
	fams, samples := parseExposition(t, out)

	if len(fams) != 6 {
		t.Fatalf("got %d families, want 6:\n%s", len(fams), out)
	}
	if fams["t_latency_seconds"] != "histogram" {
		t.Fatalf("t_latency_seconds type = %q", fams["t_latency_seconds"])
	}
	if v := samples[`t_ops_total`]; v != 42 {
		t.Fatalf("t_ops_total = %v", v)
	}
	if v := samples[`t_frames_total{type="read",dir="in"}`]; v != 7 {
		t.Fatalf("labeled counter = %v; samples: %v", v, samples)
	}
	if v := samples[`t_frames_total{type="we\"ird\\type",dir="out"}`]; v != 1 {
		t.Fatalf("escaped label sample missing; have %v", samples)
	}
	if v := samples[`t_frames_total{type="line\nbreak",dir="in"}`]; v != 1 {
		t.Fatalf("newline-escaped label sample missing")
	}
	if v := samples[`t_residual{kind="user",id="alice"}`]; v != -0.013 {
		t.Fatalf("collector sample = %v", v)
	}

	// Histogram: buckets cumulative and monotone, +Inf present and equal
	// to _count, _sum exact.
	var last float64
	seenInf := false
	for i, ub := range LatencyBuckets {
		key := fmt.Sprintf(`t_latency_seconds_bucket{le="%s"}`, formatFloat(ub))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < last {
			t.Fatalf("bucket %d not monotone: %v < %v", i, v, last)
		}
		last = v
	}
	if v, ok := samples[`t_latency_seconds_bucket{le="+Inf"}`]; !ok {
		t.Fatal("missing +Inf bucket")
	} else {
		seenInf = true
		if v != samples[`t_latency_seconds_count`] {
			t.Fatalf("+Inf bucket %v != count %v", v, samples[`t_latency_seconds_count`])
		}
		if v < last {
			t.Fatalf("+Inf bucket %v below last finite bucket %v", v, last)
		}
	}
	if !seenInf {
		t.Fatal("no +Inf bucket rendered")
	}
	if v := samples[`t_latency_seconds_count`]; v != 5 {
		t.Fatalf("count = %v", v)
	}
	if v := samples[`t_latency_seconds_sum`]; math.Abs(v-99.2082) > 1e-9 {
		t.Fatalf("sum = %v", v)
	}
}

// TestDuplicateFamilyPanics pins the no-duplicate-families contract at
// registration time.
func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "y")
}

// TestRenderDeterministic pins that two scrapes of a quiet registry are
// byte-identical (families sorted, children in registration order).
func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("z_total", "z", "a")
	cv.With("2").Inc()
	cv.With("1").Inc()
	r.Gauge("a_gauge", "a").Set(1)
	if a, b := render(t, r), render(t, r); a != b {
		t.Fatalf("non-deterministic render:\n%s\n---\n%s", a, b)
	}
}

// TestHistogramBucketEdges pins the le boundary convention: a sample
// exactly on an upper bound lands in that bucket (le is <=).
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf only
	_, samples := parseExposition(t, render(t, r))
	if v := samples[`edge_seconds_bucket{le="1"}`]; v != 1 {
		t.Fatalf("le=1 bucket = %v", v)
	}
	if v := samples[`edge_seconds_bucket{le="2"}`]; v != 2 {
		t.Fatalf("le=2 bucket = %v", v)
	}
	if v := samples[`edge_seconds_bucket{le="+Inf"}`]; v != 3 {
		t.Fatalf("+Inf bucket = %v", v)
	}
}

// TestConcurrentWritersDuringScrape hammers every instrument kind from
// parallel writers while scraping concurrently — the -race gate for the
// lock-free hot path, plus a conformance parse of every mid-flight
// scrape.
func TestConcurrentWritersDuringScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_ops_total", "ops")
	cv := r.CounterVec("hammer_frames_total", "frames", "type")
	g := r.Gauge("hammer_depth", "depth")
	h := r.Histogram("hammer_latency_seconds", "lat", LatencyBuckets)
	hv := r.HistogramVec("hammer_op_seconds", "per-op", []float64{0.001, 0.1}, "op")
	r.GaugeFunc("hammer_live", "live", func() float64 { return 1 })

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			typ := fmt.Sprintf("t%d", w%3)
			fc := cv.With(typ)
			fh := hv.With(typ)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				fc.Add(2)
				g.Set(float64(i))
				h.Observe(float64(i%100) / 1000)
				fh.Observe(float64(i%7) / 100)
			}
		}(w)
	}
	// Concurrent scrapers through the real HTTP handler.
	srv := httptest.NewServer(Mux(r, nil))
	defer srv.Close()
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				parseExposition(t, render(t, r))
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	_, samples := parseExposition(t, render(t, r))
	if v := samples["hammer_ops_total"]; v != writers*perWriter {
		t.Fatalf("lost counter increments: %v != %v", v, writers*perWriter)
	}
	if v := samples["hammer_latency_seconds_count"]; v != writers*perWriter {
		t.Fatalf("lost observations: %v != %v", v, writers*perWriter)
	}
	var frames float64
	for i := 0; i < 3; i++ {
		frames += samples[fmt.Sprintf(`hammer_frames_total{type="t%d"}`, i)]
	}
	if frames != 2*writers*perWriter {
		t.Fatalf("lost labeled increments: %v", frames)
	}
}

// TestHealth pins the readiness latch and the /healthz status codes.
func TestHealth(t *testing.T) {
	h := NewHealth("booting")
	srv := httptest.NewServer(Mux(NewRegistry(), h.Ready))
	defer srv.Close()
	get := func() int {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != 503 {
		t.Fatalf("not-ready healthz = %d, want 503", code)
	}
	h.SetReady()
	if code := get(); code != 200 {
		t.Fatalf("ready healthz = %d, want 200", code)
	}
	h.SetNotReady("draining")
	if code := get(); code != 503 {
		t.Fatalf("re-unready healthz = %d, want 503", code)
	}
}

// TestParseLevel covers the -log-level flag mapping.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR",
	} {
		lv, err := ParseLevel(s)
		if err != nil || lv.String() != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, lv, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}
