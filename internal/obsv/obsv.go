// Package obsv is the fabric's operator observability layer: a
// zero-dependency (stdlib-only) metrics registry rendered in the
// Prometheus text exposition format, an HTTP handler mounting /metrics,
// /healthz and the pprof profiling hooks, and small structured-logging
// helpers shared by the binaries.
//
// The registry is built for the same regime as the scheduler it
// instruments: writes on the request hot path are single atomic
// operations (counter adds, gauge stores, one bucket increment plus a
// CAS-loop sum add for histograms) and take no lock; locks appear only
// on the cold paths — family registration at boot and child creation on
// a label value's first sighting. A scrape walks the families under the
// registry lock but reads every sample with atomic loads, so a flood of
// parallel writers never blocks (nor is blocked by) a scrape — pinned
// by the package's -race hammer test.
//
// Values that the fabric already counts elsewhere (the scheduler's
// lock-free serviced-byte counters, the drainer's stage-out tallies,
// the membership table) are exported through callback collectors
// (GaugeFunc / the *VecFunc variants) evaluated at scrape time, so
// instrumenting them costs the hot path nothing at all.
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types in the exposition format.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// LatencyBuckets is the default fixed bucket ladder for request-path
// latency histograms: 100µs to 10s, roughly ×2.5 per step — wide enough
// to cover a RAM-backed op and a seal-stalled striped write in the same
// family.
var LatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005,
	.01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one named metric family: a fixed type, help string and
// label schema, with one child per distinct label-value tuple (or a
// collect callback evaluated at scrape time instead).
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]child // key: joined label values
	order    []string         // registration order of children keys
	collect  func(emit Emit)  // callback families; children nil
}

type child struct {
	labelValues []string
	metric      any // *Counter, *Gauge, *Histogram, or func() float64
}

// Emit is the sample sink passed to callback collectors: one call per
// sample, with the label values matching the family's label schema.
type Emit func(labelValues []string, v float64)

// register adds a family, panicking on a duplicate name or an invalid
// label schema — both programmer errors caught at boot, the same
// contract as the upstream Prometheus client.
func (r *Registry) register(f *family) *family {
	if f.name == "" || !validName(f.name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", f.name))
	}
	for _, l := range f.labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("obsv: invalid label name %q on %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obsv: duplicate metric family %q", f.name))
	}
	if f.children == nil && f.collect == nil {
		f.children = map[string]child{}
	}
	r.fams[f.name] = f
	return f
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// child returns the family's metric for the label tuple, creating it
// with mk on first sight. Hot callers should hold the returned handle
// rather than re-resolving per operation.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obsv: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.metric
	}
	m := mk()
	f.children[key] = child{labelValues: append([]string(nil), values...), metric: m}
	f.order = append(f.order, key)
	return m
}

// --- instrument types ----------------------------------------------------

// Counter is a monotonically increasing sample. All methods are
// lock-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas panic (counters only go up).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obsv: counter decrement")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a sample that can go up and down. All methods are lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; contended adds retry).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is lock-free: one
// atomic bucket increment, one count increment, and a CAS-loop float
// add for the sum.
type Histogram struct {
	uppers []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obsv: histogram buckets not strictly ascending")
		}
	}
	uppers := append([]float64(nil), buckets...)
	return &Histogram{uppers: uppers, counts: make([]atomic.Int64, len(uppers)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// --- registration API ----------------------------------------------------

// Counter registers an unlabeled counter family and returns its single
// instrument.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: typeCounter})
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(&family{
		name: name, help: help, typ: typeCounter, labelNames: labelNames,
	})}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the label values, creating it on first
// sight. Resolve once and keep the handle on hot paths.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers an unlabeled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: typeGauge})
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{
		name: name, help: help, typ: typeGauge, labelNames: labelNames,
	})}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values, creating it on first
// sight.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is fn evaluated at scrape
// time — the zero-hot-path-cost way to export a value the fabric
// already maintains (queue depth, dirty bytes, ring epoch).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: typeGauge})
	f.child(nil, func() any { return fn })
}

// GaugeVecFunc registers a labeled gauge family fully produced by a
// collect callback at scrape time — for dynamic label sets such as
// per-job backlogs or per-entity share residuals, where the set of
// children changes as jobs come and go.
func (r *Registry) GaugeVecFunc(name, help string, labelNames []string, collect func(emit Emit)) {
	r.register(&family{
		name: name, help: help, typ: typeGauge,
		labelNames: labelNames, collect: collect,
	})
}

// CounterVecFunc is GaugeVecFunc with counter semantics: the callback
// must emit monotonically non-decreasing values (cumulative tallies the
// fabric already keeps, e.g. per-job serviced bytes).
func (r *Registry) CounterVecFunc(name, help string, labelNames []string, collect func(emit Emit)) {
	r.register(&family{
		name: name, help: help, typ: typeCounter,
		labelNames: labelNames, collect: collect,
	})
}

// CounterFunc registers an unlabeled scrape-time counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: typeCounter})
	f.child(nil, func() any { return fn })
}

// Histogram registers an unlabeled histogram family with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: typeHistogram, buckets: buckets})
	return f.child(nil, func() any { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{
		name: name, help: help, typ: typeHistogram,
		labelNames: labelNames, buckets: buckets,
	})}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values, creating it on
// first sight.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// --- text exposition render ----------------------------------------------

// WriteTo renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and children in
// first-registration order, so successive scrapes of a quiet registry
// are byte-identical.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for _, f := range fams {
		if err := f.render(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func (f *family) render(w *countWriter) error {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	if f.collect != nil {
		f.collect(func(labelValues []string, v float64) {
			if len(labelValues) != len(f.labelNames) {
				return // a misbehaving collector must not corrupt the format
			}
			writeSample(w, f.name, f.labelNames, labelValues, "", v)
		})
		return w.err
	}
	f.mu.Lock()
	kids := make([]child, 0, len(f.order))
	for _, key := range f.order {
		kids = append(kids, f.children[key])
	}
	f.mu.Unlock()
	for _, c := range kids {
		switch m := c.metric.(type) {
		case *Counter:
			writeSample(w, f.name, f.labelNames, c.labelValues, "", float64(m.Value()))
		case *Gauge:
			writeSample(w, f.name, f.labelNames, c.labelValues, "", m.Value())
		case func() float64:
			writeSample(w, f.name, f.labelNames, c.labelValues, "", m())
		case *Histogram:
			renderHistogram(w, f, c, m)
		}
	}
	return w.err
}

// renderHistogram emits the cumulative _bucket series (ending in
// le="+Inf"), then _sum and _count. The +Inf bucket equals _count by
// construction — the conformance test pins both that and bucket
// monotonicity.
func renderHistogram(w *countWriter, f *family, c child, h *Histogram) {
	cum := int64(0)
	names := append(append([]string(nil), f.labelNames...), "le")
	for i, ub := range h.uppers {
		cum += h.counts[i].Load()
		vals := append(append([]string(nil), c.labelValues...), formatFloat(ub))
		writeSample(w, f.name, names, vals, "_bucket", float64(cum))
	}
	cum += h.counts[len(h.uppers)].Load()
	vals := append(append([]string(nil), c.labelValues...), "+Inf")
	writeSample(w, f.name, names, vals, "_bucket", float64(cum))
	writeSample(w, f.name, f.labelNames, c.labelValues, "_sum", h.Sum())
	writeSample(w, f.name, f.labelNames, c.labelValues, "_count", float64(cum))
}

func writeSample(w *countWriter, name string, labelNames, labelValues []string, suffix string, v float64) {
	w.Write([]byte(name))
	w.Write([]byte(suffix))
	if len(labelNames) > 0 {
		w.Write([]byte{'{'})
		for i, ln := range labelNames {
			if i > 0 {
				w.Write([]byte{','})
			}
			fmt.Fprintf(w, `%s="%s"`, ln, escapeLabel(labelValues[i]))
		}
		w.Write([]byte{'}'})
	}
	fmt.Fprintf(w, " %s\n", formatFloat(v))
}

// escapeLabel applies the exposition-format label-value escaping:
// backslash, double quote, and newline — exactly these three, per the
// text format spec.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer("\\", `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
