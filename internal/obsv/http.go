package obsv

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// ReadyFunc reports whether the process is ready to serve, and a human
// reason when it is not. /healthz answers 200 when ready and 503
// otherwise, so load balancers (and the future autoscaler) never route
// to a member that answers TCP but refuses requests.
type ReadyFunc func() (bool, string)

// Mux returns the operator endpoint: /metrics renders the registry,
// /healthz answers readiness, and /debug/pprof/* exposes the standard
// profiling hooks. Either argument may be nil, dropping that endpoint
// (a nil ready leaves /healthz always 200 — liveness only).
func Mux(reg *Registry, ready ReadyFunc) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", MetricsHandler(reg))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil {
			if ok, reason := ready(); !ok {
				http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler serves one registry in the text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteTo(w)
	})
}

// Health is an atomic readiness latch implementing ReadyFunc — for
// binaries whose readiness changes over a lifetime New can't capture
// (boot → rehydrating → serving → draining).
type Health struct {
	state atomic.Pointer[healthState]
}

type healthState struct {
	ready  bool
	reason string
}

// NewHealth returns a not-ready latch with the given reason.
func NewHealth(reason string) *Health {
	h := &Health{}
	h.SetNotReady(reason)
	return h
}

// SetReady marks the process ready.
func (h *Health) SetReady() { h.state.Store(&healthState{ready: true}) }

// SetNotReady marks the process not ready with a reason.
func (h *Health) SetNotReady(reason string) {
	h.state.Store(&healthState{reason: reason})
}

// Ready implements ReadyFunc.
func (h *Health) Ready() (bool, string) {
	s := h.state.Load()
	return s.ready, s.reason
}

// --- structured-logging helpers ------------------------------------------

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obsv: unknown log level %q (want debug|info|warn|error)", s)
}

// NopLogger returns a logger that discards everything without
// formatting it — the Quiet configuration of library components.
// (slog.DiscardHandler needs Go 1.24; go.mod floors at 1.22.)
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
