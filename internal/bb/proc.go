package bb

import (
	"time"

	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Proc describes one client process: a closed-loop request stream issued
// against a set of target servers. A benchmark job of P processes is P
// Procs sharing a JobInfo, matching "the benchmark program in these
// experiments opens one file per process" (§5.3.1).
type Proc struct {
	Job policy.JobInfo
	// Stream yields the process's requests. Required.
	Stream workload.Stream
	// Targets are server indices the process stripes requests over
	// round-robin; empty means all servers.
	Targets []int
	// QueueDepth is the number of outstanding requests the process keeps
	// in flight (0 selects DefaultQueueDepth).
	QueueDepth int
	// Start is when the process begins issuing; Stop (if non-zero) cuts
	// it off even if the stream has more items.
	Start time.Duration
	Stop  time.Duration
}

// ProcHandle reports a process's fate after the simulation runs.
type ProcHandle struct {
	// Finished is true once the stream is exhausted (or Stop passed) and
	// all in-flight requests completed.
	Finished bool
	// DoneAt is the completion time (valid when Finished).
	DoneAt time.Duration
	// Issued counts requests issued; Completed counts completions.
	Issued    int64
	Completed int64

	alive int // outstanding issue chains
}

// AddProc registers a process with the cluster. Must be called before the
// virtual clock passes p.Start.
func (c *Cluster) AddProc(p Proc) *ProcHandle {
	if p.Stream == nil {
		panic("bb: Proc.Stream is required")
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = DefaultQueueDepth
	}
	if len(p.Targets) == 0 {
		p.Targets = make([]int, len(c.servers))
		for i := range c.servers {
			p.Targets[i] = i
		}
	}
	h := &ProcHandle{}
	ps := &procState{c: c, spec: p, h: h}
	c.eng.At(p.Start, func() {
		h.alive = p.QueueDepth
		for i := 0; i < p.QueueDepth; i++ {
			ps.issue()
		}
	})
	return h
}

// JobSpec is a convenience bundle: a job of Procs identical processes.
type JobSpec struct {
	Job        policy.JobInfo
	Procs      int
	MakeStream func(proc int) workload.Stream
	Targets    []int
	QueueDepth int
	Start      time.Duration
	Stop       time.Duration
}

// AddJob registers all of a job's processes and returns their handles.
func (c *Cluster) AddJob(js JobSpec) []*ProcHandle {
	if js.Procs <= 0 {
		js.Procs = 1
	}
	handles := make([]*ProcHandle, js.Procs)
	for i := 0; i < js.Procs; i++ {
		handles[i] = c.AddProc(Proc{
			Job:        js.Job,
			Stream:     js.MakeStream(i),
			Targets:    js.Targets,
			QueueDepth: js.QueueDepth,
			Start:      js.Start,
			Stop:       js.Stop,
		})
	}
	return handles
}

// AllFinished reports whether every handle finished.
func AllFinished(hs []*ProcHandle) bool {
	for _, h := range hs {
		if !h.Finished {
			return false
		}
	}
	return true
}

// LastDone returns the latest DoneAt among finished handles.
func LastDone(hs []*ProcHandle) time.Duration {
	var last time.Duration
	for _, h := range hs {
		if h.Finished && h.DoneAt > last {
			last = h.DoneAt
		}
	}
	return last
}

// procState drives one process's closed loop inside the event engine.
type procState struct {
	c    *Cluster
	spec Proc
	h    *ProcHandle
	rr   int
}

// issue advances one in-flight chain: take the next stream item, wait out
// its think time, submit, and re-issue on completion.
func (ps *procState) issue() {
	now := ps.c.eng.Now()
	if ps.spec.Stop > 0 && now >= ps.spec.Stop {
		ps.chainDone()
		return
	}
	it, ok := ps.spec.Stream.Next()
	if !ok {
		ps.chainDone()
		return
	}
	fire := func() {
		t := ps.c.eng.Now()
		if ps.spec.Stop > 0 && t >= ps.spec.Stop {
			ps.chainDone()
			return
		}
		r := &sched.Request{
			Job:    ps.spec.Job,
			Op:     it.Op,
			Bytes:  it.Bytes,
			Arrive: t,
			Done: func(at time.Duration) {
				ps.h.Completed++
				ps.issue()
			},
		}
		ps.h.Issued++
		target := ps.spec.Targets[ps.rr%len(ps.spec.Targets)]
		ps.rr++
		ps.c.servers[target].submit(t, r)
	}
	if it.Think > 0 {
		ps.c.eng.After(it.Think, fire)
	} else {
		fire()
	}
}

func (ps *procState) chainDone() {
	ps.h.alive--
	if ps.h.alive == 0 {
		ps.h.Finished = true
		ps.h.DoneAt = ps.c.eng.Now()
	}
}
