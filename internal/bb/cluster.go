package bb

import (
	"fmt"
	"math/rand"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/metrics"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/sim"
)

// Config describes a simulated burst-buffer deployment.
type Config struct {
	// Servers is the number of burst-buffer nodes.
	Servers int
	// NewSched builds the scheduler for server i with the given combined
	// device bandwidth (capacity-aware schedulers — GIFT, TBF — need it).
	NewSched func(i int, capacity float64) sched.Scheduler

	// Bandwidths; zero selects the Frontera-calibrated defaults.
	DirBW     float64
	DeviceBW  float64
	OpsPerSec float64

	// Tick is the fluid-service quantum; Lambda the job-table all-gather
	// interval (§3.1); Bin the metering bin width.
	Tick   time.Duration
	Lambda time.Duration
	Bin    time.Duration

	// ScaleAlpha is the interconnect-congestion coefficient for
	// multi-server runs; zero selects the calibrated default. Set negative
	// to disable scaling losses.
	ScaleAlpha float64

	// SyncDelay models the control-plane cost of the λ all-gather (server
	// processing + interconnect, §5.6): snapshots taken at the λ boundary
	// take effect SyncDelay later. Zero applies syncs instantly.
	SyncDelay time.Duration

	// HeartbeatTimeout is the job-table inactivity window.
	HeartbeatTimeout time.Duration

	// GossipFanout mirrors the live cluster fabric: when positive, the
	// λ sync is an epidemic push-pull with this many random peers per
	// server per round (converging in O(log N) rounds) instead of the
	// all-to-all gather. Zero keeps the exact all-gather.
	GossipFanout int
	// GossipSeed fixes the peer-selection stream (sim determinism).
	GossipSeed int64
}

func (c *Config) fill() {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.DirBW <= 0 {
		c.DirBW = DefaultDirBW
	}
	if c.DeviceBW <= 0 {
		c.DeviceBW = DefaultDeviceBW
	}
	if c.OpsPerSec <= 0 {
		c.OpsPerSec = DefaultOpsPerSec
	}
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	if c.Lambda <= 0 {
		c.Lambda = DefaultLambda
	}
	if c.Bin <= 0 {
		c.Bin = DefaultBin
	}
	if c.ScaleAlpha == 0 {
		c.ScaleAlpha = DefaultScaleAlpha
	}
}

// Cluster is a simulated remote-shared burst buffer: servers with
// schedulers and job tables, client processes submitting closed-loop
// request streams, and a meter observing completions. Single-threaded
// over a virtual clock; completely deterministic for a fixed seed.
type Cluster struct {
	cfg     Config
	eng     *sim.Engine
	servers []*server
	meter   *Meter
	eff     float64
	rng     *rand.Rand
}

// NewCluster builds a cluster. NewSched is required.
func NewCluster(cfg Config) *Cluster {
	cfg.fill()
	if cfg.NewSched == nil {
		panic("bb: Config.NewSched is required")
	}
	c := &Cluster{
		cfg:   cfg,
		eng:   sim.New(),
		meter: NewMeter(cfg.Bin),
		rng:   rand.New(rand.NewSource(cfg.GossipSeed)),
	}
	alpha := cfg.ScaleAlpha
	if alpha < 0 {
		alpha = 0
		c.eff = 1
	} else {
		c.eff = Efficiency(cfg.Servers, alpha)
	}
	for i := 0; i < cfg.Servers; i++ {
		id := fmt.Sprintf("bb%d", i)
		c.servers = append(c.servers, &server{
			c:     c,
			idx:   i,
			id:    id,
			sch:   cfg.NewSched(i, cfg.DeviceBW*c.eff),
			table: jobtable.New(id, cfg.HeartbeatTimeout),
		})
	}
	for _, s := range c.servers {
		s.ledger = metrics.NewShareLedger(0)
	}
	// Service tick loop.
	var tick func()
	tick = func() {
		now := c.eng.Now()
		for _, s := range c.servers {
			s.serve(now, cfg.Tick)
		}
		c.eng.At(now+cfg.Tick, tick)
	}
	c.eng.At(0, tick)
	// λ-delayed global fairness: all-gather the job status tables, then
	// close each server's share-accounting window (mirroring the live
	// controller's λ loop: recompiles happen before the window closes,
	// so the compiled shares paired with it are the ones in force).
	c.eng.Every(cfg.Lambda, func() {
		c.SyncTables()
		c.rollLedgers()
	})
	return c
}

// policyControl is the slice of core.Themis the simulator mirrors for
// live policy hot-swap; shareAccounting the slice the λ share ledger
// feeds from. Baseline schedulers (FIFO, GIFT, TBF) implement neither
// and are simply skipped.
type policyControl interface{ SetPolicy(policy.Policy) }

type shareAccounting interface {
	ServedBytesDelta() map[string]int64
	Share(job string) float64
}

// deltaScheduler is the slice of core.Themis the simulator uses to
// mirror the live controller's incremental recompile path; schedulers
// without it fall back to full SetJobs.
type deltaScheduler interface {
	ApplyDelta(jobs []policy.JobInfo, d policy.Delta)
}

// SwapPolicy schedules a live policy hot-swap at virtual time at: each
// live server's scheduler recompiles under pol at at + i·stagger. A
// zero stagger is an instantaneous cluster-wide swap; a positive one
// models the gossip rumor reaching members round by round (the
// straggler scenario — the last server keeps arbitrating under the old
// policy until the rumor lands, exactly like a live member that missed
// the first fan-outs and learns via gossip catch-up).
func (c *Cluster) SwapPolicy(at time.Duration, pol policy.Policy, stagger time.Duration) {
	for i := range c.servers {
		i := i
		c.eng.At(at+time.Duration(i)*stagger, func() {
			s := c.servers[i]
			if s.failed {
				return
			}
			if sw, ok := s.sch.(policyControl); ok {
				sw.SetPolicy(pol)
			}
		})
	}
}

// rollLedgers closes one λ share-accounting window on every live
// server whose scheduler exposes serviced-byte counters.
func (c *Cluster) rollLedgers() {
	now := c.eng.Now()
	for _, s := range c.servers {
		if s.failed {
			continue
		}
		sa, ok := s.sch.(shareAccounting)
		if !ok {
			continue
		}
		// Refresh first so the lazy per-job attribution resolves against
		// a snapshot current as of the window close.
		s.table.Refresh(now)
		s.ledger.Roll(now, sa.ServedBytesDelta(), s.table.ActiveSnapshot().Lookup, sa.Share)
	}
}

// ShareReport returns server i's latest per-entity share report — the
// sim mirror of MsgShareReport (nil for baseline schedulers or before
// the first non-idle λ window).
func (c *Cluster) ShareReport(i int) []metrics.ShareEntry {
	return c.servers[i].ledger.Report()
}

// Engine exposes the discrete-event engine (for app traces and tests).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.eng.Now() }

// Meter returns the throughput meter.
func (c *Cluster) Meter() *Meter { return c.meter }

// Servers returns the number of servers.
func (c *Cluster) Servers() int { return len(c.servers) }

// Scheduler returns server i's scheduler (for inspection).
func (c *Cluster) Scheduler(i int) sched.Scheduler { return c.servers[i].sch }

// Table returns server i's job status table.
func (c *Cluster) Table(i int) *jobtable.Table { return c.servers[i].table }

// Efficiency returns the applied multi-server scaling efficiency.
func (c *Cluster) Efficiency() float64 { return c.eff }

// SyncTables performs one λ synchronization round (the λ loop calls
// this on schedule; tests may call it directly): an all-gather by
// default, or — with GossipFanout set — one epidemic push-pull round
// mirroring the live fabric, where each live server exchanges tables
// with k random live peers. With SyncDelay configured, peer snapshots
// are captured now but merged and applied SyncDelay later.
func (c *Cluster) SyncTables() {
	now := c.eng.Now()
	apply := func() {
		at := c.eng.Now()
		if len(c.servers) > 1 {
			if c.cfg.GossipFanout > 0 {
				c.gossipRound(at)
			} else {
				tables := make([]*jobtable.Table, 0, len(c.servers))
				for _, s := range c.servers {
					if !s.failed {
						tables = append(tables, s.table)
					}
				}
				jobtable.AllGather(tables, at)
			}
		}
		for _, s := range c.servers {
			s.dirty = true
		}
	}
	if c.cfg.SyncDelay > 0 {
		// Capture peer snapshots at the boundary; merge after the
		// control-plane delay.
		snaps := make([][]jobtable.Entry, len(c.servers))
		for i, s := range c.servers {
			snaps[i] = s.table.Snapshot()
		}
		pairs := c.syncPairs()
		c.eng.After(c.cfg.SyncDelay, func() {
			at := c.eng.Now()
			for _, p := range pairs {
				c.servers[p[0]].table.Merge(snaps[p[1]], at)
			}
			for _, s := range c.servers {
				s.dirty = true
			}
		})
		_ = now
		return
	}
	apply()
}

// syncPairs returns the (dst, src) merge pairs of one sync round: the
// full bipartite set for the all-gather, or the push-pull pairs of one
// gossip round.
func (c *Cluster) syncPairs() [][2]int {
	var pairs [][2]int
	live := c.liveIdx()
	if c.cfg.GossipFanout <= 0 {
		for _, i := range live {
			for _, j := range live {
				if i != j {
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		return pairs
	}
	for _, i := range live {
		for _, j := range c.pickPeers(i, live) {
			pairs = append(pairs, [2]int{i, j}, [2]int{j, i})
		}
	}
	return pairs
}

// gossipRound runs one push-pull epidemic round at virtual time at:
// every live server exchanges fresh table snapshots with GossipFanout
// random live peers (both directions, like the wire exchange).
func (c *Cluster) gossipRound(at time.Duration) {
	for _, p := range c.syncPairs() {
		snap := c.servers[p[1]].table.Snapshot()
		c.servers[p[0]].table.Merge(snap, at)
	}
}

// liveIdx returns the indices of non-failed servers.
func (c *Cluster) liveIdx() []int {
	var out []int
	for i, s := range c.servers {
		if !s.failed {
			out = append(out, i)
		}
	}
	return out
}

// pickPeers samples up to GossipFanout random live peers of server i.
func (c *Cluster) pickPeers(i int, live []int) []int {
	var others []int
	for _, j := range live {
		if j != i {
			others = append(others, j)
		}
	}
	k := c.cfg.GossipFanout
	if len(others) <= k {
		return others
	}
	idx := c.rng.Perm(len(others))[:k]
	out := make([]int, 0, k)
	for _, x := range idx {
		out = append(out, others[x])
	}
	return out
}

// FailServer marks server i failed, mirroring the live fabric's
// failover: the server stops serving and syncing, its queued requests
// are abandoned, and every survivor drops its sightings so the 1/k
// presence deweighting shifts each affected job's tokens onto the
// remaining servers.
func (c *Cluster) FailServer(i int) {
	s := c.servers[i]
	if s.failed {
		return
	}
	s.failed = true
	s.parked = nil
	for j, p := range c.servers {
		if j == i || p.failed {
			continue
		}
		p.table.DropServer(s.id)
		p.dirty = true
	}
}

// Failed reports whether server i has been failed.
func (c *Cluster) Failed(i int) bool { return c.servers[i].failed }

// Submit enqueues a request on server i at the current virtual time. A
// request aimed at a failed server lands on the next live server in
// index order — the sim mirror of the client's ring reassignment. Most
// callers use AddProc; app traces with custom control loops use Submit
// directly.
func (c *Cluster) Submit(i int, r *sched.Request) {
	for n := 0; n < len(c.servers) && c.servers[i].failed; n++ {
		i = (i + 1) % len(c.servers)
	}
	if c.servers[i].failed {
		// Enqueueing on a failed server would drop the request silently
		// (its serve loop never runs); a driver doing this has failed
		// the whole cluster and should hear about it deterministically.
		panic("bb: Submit with every server failed")
	}
	c.servers[i].submit(c.eng.Now(), r)
}

// Run advances the simulation to the given virtual time.
func (c *Cluster) Run(until time.Duration) {
	c.eng.RunUntil(until)
}

// server models one burst-buffer node: a scheduler fed by the
// communicator (submit) and drained by a fluid-service loop standing in
// for the worker pool. Per tick, the server moves up to DeviceBW·dt bytes
// total, DirBW·dt per direction, and OpsPerSec·dt requests — the §5.2
// hardware envelope.
type server struct {
	c     *Cluster
	idx   int
	id    string
	sch   sched.Scheduler
	table *jobtable.Table
	// lastGen is the job-table generation the scheduler was last
	// compiled against — the sim mirror of the live controller's
	// epoch gating: serve() recompiles only when the generation moves
	// (or dirty forces it, e.g. after a failover scrub), never per
	// submitted request.
	lastGen uint64
	dirty   bool
	failed  bool
	// ledger mirrors the live server's per-entity share accounting,
	// rolled every λ from the scheduler's serviced-byte counters.
	ledger *metrics.ShareLedger

	// parked holds requests whose service straddles tick boundaries
	// (budget for their direction ran out); they are served ahead of the
	// scheduler next tick, preserving their position.
	parked []parkedReq
}

type parkedReq struct {
	r     *sched.Request
	rem   float64
	start time.Duration
}

func (s *server) submit(now time.Duration, r *sched.Request) {
	if r.Arrive == 0 {
		r.Arrive = now
	}
	// Observe bumps the table generation when the active set changes;
	// serve() picks that up. The submit path itself compiles nothing.
	s.table.Observe(r.Job, now)
	s.sch.Push(r)
}

// parkCap bounds how many requests a server may park per tick. One park
// per direction is the common case (a request caught mid-service when its
// direction's budget runs out); the cap keeps a pathological pop sequence
// from draining the scheduler queue into the park list.
const parkCap = 64

func (s *server) serve(now time.Duration, dt time.Duration) {
	if s.failed {
		return
	}
	if g := s.table.Refresh(now); s.dirty || g != s.lastGen {
		snap := s.table.ActiveSnapshot()
		ds, canDelta := s.sch.(deltaScheduler)
		if d, ok := s.table.DeltaSince(s.lastGen); ok && canDelta && !s.dirty {
			// The live controller's incremental path, mirrored: patch
			// the previous epoch's share tree with the generation delta
			// instead of recompiling the whole job set.
			ds.ApplyDelta(snap.Jobs, d)
		} else {
			s.sch.SetJobs(snap.Jobs)
		}
		s.lastGen = g
		s.dirty = false
	}
	sec := dt.Seconds()
	devB := s.c.cfg.DeviceBW * s.c.eff * sec
	readB := s.c.cfg.DirBW * s.c.eff * sec
	writeB := s.c.cfg.DirBW * s.c.eff * sec
	ops := s.c.cfg.OpsPerSec * s.c.eff * sec
	end := now + dt

	// attempt services as much of p as budgets allow; returns the leftover
	// (rem > 0) if the request must stay parked. Metadata operations hit
	// in-memory structures, not the data device: they are bounded by the
	// IOPS envelope alone and never charge byte budgets.
	attempt := func(p parkedReq) (parkedReq, bool) {
		if !p.r.Op.IsData() {
			s.complete(p.r, p.start, end)
			return p, true
		}
		avail := devB
		switch p.r.Op {
		case sched.OpRead:
			if readB < avail {
				avail = readB
			}
		case sched.OpWrite:
			if writeB < avail {
				avail = writeB
			}
		}
		if avail < 1 {
			return p, false
		}
		take := p.rem
		if take > avail {
			take = avail
		}
		devB -= take
		switch p.r.Op {
		case sched.OpRead:
			readB -= take
		case sched.OpWrite:
			writeB -= take
		}
		p.rem -= take
		if p.rem >= 1 {
			return p, false
		}
		s.complete(p.r, p.start, end)
		return p, true
	}

	// Serve carried-over requests first, preserving order.
	var still []parkedReq
	for _, p := range s.parked {
		if left, done := attempt(p); !done {
			still = append(still, left)
		}
	}
	// Then drain the scheduler while budget remains. The allow filter
	// keeps policy schedulers from handing out requests for a direction
	// whose budget is exhausted — the real server's workers would not
	// start those transfers, so the scheduling priority must be spent on
	// requests that can actually run. FIFO ignores the filter (strict
	// order), so its popped requests may still park — head-of-line
	// blocking, faithfully reproduced.
	allow := func(op sched.Op) bool {
		switch op {
		case sched.OpRead:
			return devB >= 1 && readB >= 1
		case sched.OpWrite:
			return devB >= 1 && writeB >= 1
		}
		return true // metadata rides the IOPS envelope only
	}
	for ops >= 1 && len(still) < parkCap {
		r := s.sch.Pop(now, allow)
		if r == nil {
			break // empty, all heads disallowed, or throttled (GIFT/TBF)
		}
		ops--
		if left, done := attempt(parkedReq{r: r, rem: float64(r.Cost()), start: now}); !done {
			still = append(still, left)
		}
	}
	s.parked = still
}

func (s *server) complete(r *sched.Request, start, end time.Duration) {
	s.c.meter.Record(r.Job.JobID, r.Op, r.Bytes, start, end)
	if r.Done != nil {
		done := r.Done
		s.c.eng.At(end, func() { done(end) })
	}
}
