package bb

import (
	"sort"
	"time"

	"themisio/internal/metrics"
	"themisio/internal/sched"
)

// Meter records completed I/O per job per direction into 1-second bins —
// the measurement used in every figure.
type Meter struct {
	bin   time.Duration
	read  map[string]*metrics.Series
	write map[string]*metrics.Series
	meta  map[string]*metrics.Series // op-count series for iops workloads
}

// NewMeter returns a meter with the given bin width.
func NewMeter(bin time.Duration) *Meter {
	if bin <= 0 {
		bin = DefaultBin
	}
	return &Meter{
		bin:   bin,
		read:  make(map[string]*metrics.Series),
		write: make(map[string]*metrics.Series),
		meta:  make(map[string]*metrics.Series),
	}
}

func (m *Meter) series(table map[string]*metrics.Series, job string) *metrics.Series {
	s, ok := table[job]
	if !ok {
		s = metrics.NewSeries(m.bin)
		table[job] = s
	}
	return s
}

// Record notes a completed request served over [t0, t1).
func (m *Meter) Record(job string, op sched.Op, bytes int64, t0, t1 time.Duration) {
	switch {
	case op == sched.OpRead:
		m.series(m.read, job).AddSpread(t0, t1, bytes)
	case op == sched.OpWrite:
		m.series(m.write, job).AddSpread(t0, t1, bytes)
	default:
		m.series(m.meta, job).AddSpread(t0, t1, 1)
	}
}

// Jobs returns all jobs with recorded traffic, sorted.
func (m *Meter) Jobs() []string {
	set := map[string]bool{}
	for j := range m.read {
		set[j] = true
	}
	for j := range m.write {
		set[j] = true
	}
	for j := range m.meta {
		set[j] = true
	}
	out := make([]string, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// Read returns the job's read series (may be nil).
func (m *Meter) Read(job string) *metrics.Series { return m.read[job] }

// Write returns the job's write series (may be nil).
func (m *Meter) Write(job string) *metrics.Series { return m.write[job] }

// Meta returns the job's metadata-op series (may be nil).
func (m *Meter) Meta(job string) *metrics.Series { return m.meta[job] }

// Rates returns the job's combined read+write throughput per bin over
// [from, to), in bytes/sec.
func (m *Meter) Rates(job string, from, to time.Duration) []float64 {
	n := int(to/m.bin) - int(from/m.bin)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	add := func(s *metrics.Series) {
		if s == nil {
			return
		}
		for i, r := range s.RatesBetween(from, to) {
			if i < len(out) {
				out[i] += r
			}
		}
	}
	add(m.read[job])
	add(m.write[job])
	return out
}

// MedianRate returns the median combined throughput of the job over
// [from, to) in bytes/sec.
func (m *Meter) MedianRate(job string, from, to time.Duration) float64 {
	return metrics.Median(m.Rates(job, from, to))
}

// MeanRate returns the mean combined throughput of the job over [from, to).
func (m *Meter) MeanRate(job string, from, to time.Duration) float64 {
	return metrics.Mean(m.Rates(job, from, to))
}

// StddevRate returns the standard deviation of the job's per-bin combined
// throughput over [from, to).
func (m *Meter) StddevRate(job string, from, to time.Duration) float64 {
	return metrics.Stddev(m.Rates(job, from, to))
}

// TotalBytes returns all bytes moved by the job.
func (m *Meter) TotalBytes(job string) float64 {
	t := 0.0
	if s := m.read[job]; s != nil {
		t += s.TotalBytes()
	}
	if s := m.write[job]; s != nil {
		t += s.TotalBytes()
	}
	return t
}

// AggregateRates sums combined throughput across all jobs per bin over
// [from, to).
func (m *Meter) AggregateRates(from, to time.Duration) []float64 {
	n := int(to/m.bin) - int(from/m.bin)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, j := range m.Jobs() {
		for i, r := range m.Rates(j, from, to) {
			out[i] += r
		}
	}
	return out
}
