package bb

import (
	"fmt"
	"testing"
	"time"

	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

func themisFactory(pol policy.Policy, seed int64) func(int, float64) sched.Scheduler {
	return func(i int, capacity float64) sched.Scheduler {
		return core.New(pol, seed+int64(i))
	}
}

func job(id, user, group string, nodes int) policy.JobInfo {
	return policy.JobInfo{JobID: id, UserID: user, GroupID: group, Nodes: nodes}
}

// One saturating job on one server should reach the combined device
// bandwidth (~22 GB/s) doing write/read cycles.
func TestSingleJobSaturatesDevice(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.JobFair, 1)})
	c.AddJob(JobSpec{
		Job:   job("j1", "u1", "g1", 4),
		Procs: 224,
		MakeStream: func(int) workload.Stream {
			return workload.WriteReadCycle(10*workload.MB, workload.MB)
		},
	})
	c.Run(10 * time.Second)
	rate := c.Meter().MedianRate("j1", 2*time.Second, 10*time.Second)
	if rate < 20e9 || rate > 22.5e9 {
		t.Fatalf("single-job rate = %.2f GB/s, want ~22", rate/1e9)
	}
}

// A write-only job is limited by the per-direction link (~11.7 GB/s),
// not the device total.
func TestUnidirectionalLinkLimit(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.JobFair, 1)})
	c.AddJob(JobSpec{
		Job:   job("j1", "u1", "g1", 1),
		Procs: 56,
		MakeStream: func(int) workload.Stream {
			return workload.IORLoop(sched.OpWrite, workload.MB)
		},
	})
	c.Run(10 * time.Second)
	rate := c.Meter().MedianRate("j1", 2*time.Second, 10*time.Second)
	if rate < 11e9 || rate > 12e9 {
		t.Fatalf("unidirectional rate = %.2f GB/s, want ~11.7", rate/1e9)
	}
}

// Size-fair: a 4-node job and a 1-node job competing on one server should
// split throughput ~4:1 (Figure 8a).
func TestSizeFairRatio(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.SizeFair, 7)})
	mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
	c.AddJob(JobSpec{Job: job("j1", "u1", "g1", 4), Procs: 224, MakeStream: mk})
	c.AddJob(JobSpec{Job: job("j2", "u2", "g1", 1), Procs: 56, MakeStream: mk})
	c.Run(20 * time.Second)
	r1 := c.Meter().MedianRate("j1", 5*time.Second, 20*time.Second)
	r2 := c.Meter().MedianRate("j2", 5*time.Second, 20*time.Second)
	ratio := r1 / r2
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("size-fair ratio = %.2f (%.1f vs %.1f GB/s), want ~4", ratio, r1/1e9, r2/1e9)
	}
	total := r1 + r2
	if total < 20e9 {
		t.Fatalf("sharing total = %.2f GB/s, want ~22 (opportunity fairness keeps utilization)", total/1e9)
	}
}

// Job-fair: same pair, ~1:1 split (Figure 8b).
func TestJobFairRatio(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.JobFair, 7)})
	mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
	c.AddJob(JobSpec{Job: job("j1", "u1", "g1", 4), Procs: 224, MakeStream: mk})
	c.AddJob(JobSpec{Job: job("j2", "u2", "g1", 1), Procs: 56, MakeStream: mk})
	c.Run(20 * time.Second)
	r1 := c.Meter().MedianRate("j1", 5*time.Second, 20*time.Second)
	r2 := c.Meter().MedianRate("j2", 5*time.Second, 20*time.Second)
	ratio := r1 / r2
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("job-fair ratio = %.2f (%.1f vs %.1f GB/s), want ~1", ratio, r1/1e9, r2/1e9)
	}
}

// Opportunity fairness: when one job stops, the survivor reclaims the
// full device (§5.3.1 — "applications will get the same amount of I/O
// resources as they would when running without ThemisIO").
func TestOpportunityFairnessReclaim(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.JobFair, 3)})
	mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
	c.AddJob(JobSpec{Job: job("j1", "u1", "g1", 1), Procs: 56, MakeStream: mk})
	c.AddJob(JobSpec{Job: job("j2", "u2", "g1", 1), Procs: 56, MakeStream: mk, Stop: 10 * time.Second})
	c.Run(25 * time.Second)
	shared := c.Meter().MedianRate("j1", 3*time.Second, 9*time.Second)
	alone := c.Meter().MedianRate("j1", 15*time.Second, 25*time.Second)
	if shared > 0.6*alone {
		t.Fatalf("shared rate %.1f GB/s should be ~half of alone rate %.1f GB/s", shared/1e9, alone/1e9)
	}
	if alone < 20e9 {
		t.Fatalf("after j2 stops, j1 should reclaim full device; got %.1f GB/s", alone/1e9)
	}
}

// FIFO head-of-line blocking: a job keeping many more requests in flight
// dominates a modest job (§2.2.1) — the interference ThemisIO removes.
func TestFIFOHeadOfLineBlocking(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: func(int, float64) sched.Scheduler { return sched.NewFIFO() }})
	mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
	// Bursty small job: 56 procs at depth 8. Modest job: 8 procs depth 1.
	c.AddJob(JobSpec{Job: job("bursty", "u1", "g1", 1), Procs: 56, QueueDepth: 8, MakeStream: mk})
	c.AddJob(JobSpec{Job: job("modest", "u2", "g1", 4), Procs: 8, QueueDepth: 1, MakeStream: mk})
	c.Run(10 * time.Second)
	rb := c.Meter().MedianRate("bursty", 2*time.Second, 10*time.Second)
	rm := c.Meter().MedianRate("modest", 2*time.Second, 10*time.Second)
	if rb < 10*rm {
		t.Fatalf("FIFO should let the bursty job dominate: bursty %.1f GB/s vs modest %.2f GB/s", rb/1e9, rm/1e9)
	}
}

// λ-delayed fairness: two servers, job1 active on both, jobs 2 and 3 each
// on one. Before the first all-gather servers over-serve job1; after it,
// presence deweighting restores the global 2:1:1 (size 16:8:8) split.
func TestLambdaDelayedGlobalFairness(t *testing.T) {
	c := NewCluster(Config{
		Servers:  2,
		NewSched: themisFactory(policy.SizeFair, 11),
		Lambda:   200 * time.Millisecond,
	})
	mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
	c.AddJob(JobSpec{Job: job("j1", "u1", "g1", 16), Procs: 64, MakeStream: mk, Targets: []int{0, 1}})
	c.AddJob(JobSpec{Job: job("j2", "u2", "g1", 8), Procs: 32, MakeStream: mk, Targets: []int{0}})
	c.AddJob(JobSpec{Job: job("j3", "u3", "g1", 8), Procs: 32, MakeStream: mk, Targets: []int{1}})
	c.Run(20 * time.Second)
	r1 := c.Meter().MedianRate("j1", 5*time.Second, 20*time.Second)
	r2 := c.Meter().MedianRate("j2", 5*time.Second, 20*time.Second)
	r3 := c.Meter().MedianRate("j3", 5*time.Second, 20*time.Second)
	tot := r1 + r2 + r3
	s1, s2, s3 := r1/tot, r2/tot, r3/tot
	if s1 < 0.44 || s1 > 0.56 {
		t.Fatalf("job1 global share = %.2f, want ~0.50 (got %.2f/%.2f/%.2f)", s1, s1, s2, s3)
	}
	if s2 < 0.19 || s2 > 0.31 || s3 < 0.19 || s3 > 0.31 {
		t.Fatalf("jobs 2/3 shares = %.2f/%.2f, want ~0.25 each", s2, s3)
	}
}

// Metadata storms are bounded by the IOPS envelope, not bandwidth.
func TestStatStormIOPSBound(t *testing.T) {
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.JobFair, 5)})
	c.AddJob(JobSpec{
		Job:        job("meta", "u1", "g1", 1),
		Procs:      256,
		QueueDepth: 8, // enough concurrency to saturate the IOPS envelope
		MakeStream: func(int) workload.Stream {
			return workload.StatStorm()
		},
	})
	c.Run(5 * time.Second)
	s := c.Meter().Meta("meta")
	if s == nil {
		t.Fatal("no metadata series recorded")
	}
	opsPerSec := s.TotalBytes() / 5 // series stores op counts
	if opsPerSec < 0.5e6 || opsPerSec > 1.3e6 {
		t.Fatalf("stat throughput = %.0f ops/s, want ~1.2M (IOPS envelope)", opsPerSec)
	}
}

// Gossip λ-sync mirror: with fan-out 2, sixteen servers each knowing
// one distinct job converge to the full 16-job table in O(log N) sync
// rounds — no all-gather.
func TestGossipSyncConvergence(t *testing.T) {
	const n = 16
	c := NewCluster(Config{
		Servers:      n,
		NewSched:     themisFactory(policy.JobFair, 1),
		GossipFanout: 2,
		GossipSeed:   7,
	})
	for i := 0; i < n; i++ {
		c.Submit(i, &sched.Request{
			Job: job(fmt.Sprintf("j%02d", i), "u", "g", 1), Op: sched.OpWrite, Bytes: 1,
		})
	}
	full := func() bool {
		for i := 0; i < n; i++ {
			if c.Table(i).Len() != n {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; !full() && rounds < 12; rounds++ {
		c.SyncTables()
	}
	if !full() {
		t.Fatalf("tables not converged after %d gossip rounds", rounds)
	}
	if rounds > 8 { // log2(16)=4 with push-pull fan-out 2; allow slack
		t.Fatalf("convergence took %d rounds, want O(log N)", rounds)
	}
}

// FailServer mirrors the live failover: the failed server stops
// serving, its sightings are scrubbed (presence deweighting shifts to
// the survivors), and traffic aimed at it lands on a live server.
func TestFailServerShiftsLoad(t *testing.T) {
	c := NewCluster(Config{Servers: 2, NewSched: themisFactory(policy.JobFair, 1)})
	j := job("j1", "u1", "g1", 1)
	c.Submit(0, &sched.Request{Job: j, Op: sched.OpWrite, Bytes: 1})
	c.Submit(1, &sched.Request{Job: j, Op: sched.OpWrite, Bytes: 1})
	c.SyncTables()
	if act := c.Table(0).Active(c.Now()); len(act) != 1 || act[0].Presence != 2 {
		t.Fatalf("pre-failure active = %+v, want presence 2", act)
	}
	c.FailServer(1)
	if !c.Failed(1) || c.Failed(0) {
		t.Fatal("failure flags wrong")
	}
	if act := c.Table(0).Active(c.Now()); act[0].Presence != 1 {
		t.Fatalf("post-failure presence = %d, want 1", act[0].Presence)
	}
	// A request aimed at the dead server is served by the survivor.
	done := false
	c.Submit(1, &sched.Request{
		Job: j, Op: sched.OpWrite, Bytes: workload.MB,
		Done: func(time.Duration) { done = true },
	})
	c.Run(c.Now() + 100*time.Millisecond)
	if !done {
		t.Fatal("redirected request never completed")
	}
}

// SwapPolicy is the sim mirror of the live hot-swap: the scheduler
// recompiles mid-run with queues intact, measured shares follow the
// new policy, and the λ share ledger (the ShareReport mirror) pairs
// measured shares with the compiled shares now in force.
func TestSwapPolicyAndShareReport(t *testing.T) {
	const end = 8 * time.Second
	c := NewCluster(Config{Servers: 1, NewSched: themisFactory(policy.JobFair, 3)})
	j1 := job("j1", "u1", "g1", 3)
	j2 := job("j2", "u2", "g2", 1)
	for _, j := range []policy.JobInfo{j1, j2} {
		for i := 0; i < 6; i++ {
			c.AddProc(Proc{
				Job:    j,
				Stream: workload.IORLoop(sched.OpWrite, 2*workload.MB),
				Stop:   end,
			})
		}
	}
	c.SwapPolicy(4*time.Second, policy.SizeFair, 0)
	c.Run(end)

	share := func(from, to time.Duration) float64 {
		a := c.Meter().MeanRate("j1", from, to)
		b := c.Meter().MeanRate("j2", from, to)
		return a / (a + b)
	}
	if s := share(1*time.Second, 3*time.Second); s < 0.45 || s > 0.55 {
		t.Fatalf("pre-swap job-fair share = %.3f, want ~0.5", s)
	}
	if s := share(6*time.Second, 8*time.Second); s < 0.70 || s > 0.80 {
		t.Fatalf("post-swap size-fair share = %.3f, want ~0.75", s)
	}

	rep := c.ShareReport(0)
	if len(rep) == 0 {
		t.Fatal("no share report after a busy run")
	}
	seen := map[string]bool{}
	for _, e := range rep {
		seen[e.Kind+"/"+e.ID] = true
		if e.Kind == "job" && (e.ID == "j1" || e.ID == "j2") {
			if r := e.Residual(); r < -0.05 || r > 0.05 {
				t.Errorf("%s ledger residual = %+.3f under the post-swap policy", e.ID, r)
			}
		}
	}
	for _, want := range []string{"job/j1", "job/j2", "user/u1", "user/u2", "group/g1", "group/g2"} {
		if !seen[want] {
			t.Errorf("share report missing entity %s", want)
		}
	}
	// The compiled shares in the report are the post-swap ones.
	for _, e := range rep {
		if e.Kind == "user" && e.ID == "u1" && (e.Compiled < 0.7 || e.Compiled > 0.8) {
			t.Errorf("u1 compiled share after swap = %.3f, want 0.75", e.Compiled)
		}
	}
}
