package bb

import (
	"testing"
	"time"

	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// TestStageOutMirrorsPolicy: the simulated drain (a background writer
// under the stage-out job identity) splits write bandwidth with a
// foreground job exactly as the policy compiles — job-fair here, so
// ~50/50 — and vanishes from contention when it stops.
func TestStageOutMirrorsPolicy(t *testing.T) {
	c := NewCluster(Config{
		Servers:  1,
		NewSched: func(i int, _ float64) sched.Scheduler { return core.New(policy.JobFair, 7) },
	})
	job := policy.JobInfo{JobID: "fg", UserID: "u1", Nodes: 1}
	for i := 0; i < 16; i++ {
		c.AddProc(Proc{
			Job:    job,
			Stream: workload.IORLoop(sched.OpWrite, workload.MB),
			Start:  time.Duration(i) * 437 * time.Microsecond,
			Stop:   12 * time.Second,
		})
	}
	c.AddStageOut(0, 0, 64, 0, 6*time.Second)
	c.Run(12 * time.Second)

	drainID := StageOutJobID(0)
	fgShared := c.Meter().MeanRate("fg", 1*time.Second, 5*time.Second)
	drain := c.Meter().MeanRate(drainID, 1*time.Second, 5*time.Second)
	share := drain / (fgShared + drain)
	if share < 0.42 || share > 0.58 {
		t.Fatalf("drain share under job-fair = %.3f, want ~0.5 (fg %.2f vs drain %.2f GB/s)",
			share, fgShared/1e9, drain/1e9)
	}
	// After the drain stops, opportunity fairness hands its share back.
	fgAlone := c.Meter().MeanRate("fg", 8*time.Second, 11*time.Second)
	if fgAlone < 1.6*fgShared {
		t.Fatalf("foreground did not reclaim the drain's share: %.2f vs %.2f GB/s",
			fgAlone/1e9, fgShared/1e9)
	}
}
