package bb

import (
	"fmt"
	"time"

	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Stage-out mirror: the simulator's model of the live drain engine. The
// live server submits dirty-chunk write-backs through the token
// scheduler under a synthetic background job (policy.StageOutJob), so
// the sharing policy arbitrates stage-out bandwidth against foreground
// I/O. The simulator mirrors that as a closed-loop background writer
// pinned to one server under the same job identity — which is exactly
// what a continuously-dirty shard looks like to the scheduler.

// StageOutJobID returns the simulated server i's stage-out job id (what
// the live drain engine would use for server "bb<i>").
func StageOutJobID(i int) string {
	return policy.StageOutJob(fmt.Sprintf("bb%d", i)).JobID
}

// AddStageOut registers a stage-out drain on server i: an endless
// stream of chunk-sized writes (chunkBytes <= 0 selects the live
// engine's 1 MiB default) with depth outstanding chunks (<= 0 selects
// the default queue depth), running from start to stop. Returns the
// proc handle for completion accounting; meter the job under
// StageOutJobID(i).
func (c *Cluster) AddStageOut(i int, chunkBytes int64, depth int, start, stop time.Duration) *ProcHandle {
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	return c.AddProc(Proc{
		Job:        policy.StageOutJob(fmt.Sprintf("bb%d", i)),
		Stream:     workload.IORLoop(sched.OpWrite, chunkBytes),
		Targets:    []int{i},
		QueueDepth: depth,
		Start:      start,
		Stop:       stop,
	})
}

// RebalanceJobID returns the simulated server i's rebalance job id
// (what the live migration coordinator would use for server "bb<i>").
func RebalanceJobID(i int) string {
	return policy.RebalanceJob(fmt.Sprintf("bb%d", i)).JobID
}

// AddRebalance registers a join-time rebalance on server i: the
// simulator's model of the live migration coordinator, a closed-loop
// background writer of chunk-sized stripe installs under the rebalance
// job identity — which is exactly what a server absorbing migrated
// stripes looks like to the scheduler. Meter the job under
// RebalanceJobID(i).
func (c *Cluster) AddRebalance(i int, chunkBytes int64, depth int, start, stop time.Duration) *ProcHandle {
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	return c.AddProc(Proc{
		Job:        policy.RebalanceJob(fmt.Sprintf("bb%d", i)),
		Stream:     workload.IORLoop(sched.OpWrite, chunkBytes),
		Targets:    []int{i},
		QueueDepth: depth,
		Start:      start,
		Stop:       stop,
	})
}
