// Package bb simulates a remote-shared burst buffer cluster: dedicated
// I/O server nodes (each running a scheduler from package sched or core)
// serving closed-loop client processes over a virtual clock. It is the
// substrate for every experiment in the paper's evaluation, replacing the
// Frontera testbed (see DESIGN.md for the substitution argument).
package bb

import "time"

// Calibration constants, taken from the paper's own measurements so that
// simulated absolute numbers land in the same regime as Frontera's:
//
//   - §5.2: "With one server node, this achieved a maximum throughput of
//     11.7 GB/s" (unidirectional) — the per-direction link bandwidth.
//   - §1/§5.3: "the hardware I/O throughput limit, which is ~22 GB/sec per
//     I/O server combining read and write" — the device bandwidth.
//   - §5.2: scaling efficiency 82% at 8 servers and 68% at 128 servers —
//     fitted by ScaleAlpha in the 1/(1+α·log2(N)) congestion model.
//   - §5.3: "The actual response time of each I/O operation is on the
//     order of 1 microsecond" — OpsPerSec bounds metadata IOPS.
const (
	// DefaultDirBW is the per-direction (read or write) bandwidth of one
	// server in bytes/sec.
	DefaultDirBW = 11.7e9
	// DefaultDeviceBW is the combined read+write bandwidth of one server
	// in bytes/sec.
	DefaultDeviceBW = 22e9
	// DefaultOpsPerSec bounds request processing per server per second.
	DefaultOpsPerSec = 1.2e6
	// DefaultScaleAlpha is the fitted interconnect-congestion coefficient:
	// efficiency(N) = 1/(1+α·log2(N)) gives 0.82 at N=8 and 0.66 at N=128,
	// bracketing the paper's 82% and 68%.
	DefaultScaleAlpha = 0.0732
	// DefaultTick is the fluid-model service quantum. One tick of a
	// saturated server moves ~22 MB, i.e. ~22 requests of the benchmark's
	// 1 MB block size, so policy enforcement still operates at per-request
	// granularity.
	DefaultTick = time.Millisecond
	// DefaultLambda is the job-table all-gather interval; §5.6 concludes
	// "the 500 ms communication interval is a reasonable value".
	DefaultLambda = 500 * time.Millisecond
	// DefaultQueueDepth is the client-process outstanding-request window.
	DefaultQueueDepth = 4
	// DefaultBin is the metering bin width; the paper samples throughput
	// at 1-second intervals.
	DefaultBin = time.Second
)

// Efficiency returns the multi-server scaling efficiency for n servers.
func Efficiency(n int, alpha float64) float64 {
	if n <= 1 {
		return 1
	}
	if alpha <= 0 {
		alpha = DefaultScaleAlpha
	}
	log2 := 0.0
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	return 1 / (1 + alpha*log2)
}
