package sched

import (
	"testing"
	"time"

	"themisio/internal/policy"
)

func req(job string, op Op, bytes int64) *Request {
	return &Request{
		Job:   policy.JobInfo{JobID: job, UserID: "u-" + job, Nodes: 1},
		Op:    op,
		Bytes: bytes,
	}
}

func TestRequestCost(t *testing.T) {
	if got := req("a", OpWrite, 1<<20).Cost(); got != 1<<20 {
		t.Fatalf("data cost = %d", got)
	}
	if got := req("a", OpStat, 0).Cost(); got != MetaCost {
		t.Fatalf("meta cost = %d", got)
	}
	if got := req("a", OpWrite, 0).Cost(); got != MetaCost {
		t.Fatalf("zero-byte write cost = %d", got)
	}
}

func TestOpStrings(t *testing.T) {
	names := map[Op]string{
		OpRead: "read", OpWrite: "write", OpOpen: "open", OpClose: "close",
		OpStat: "stat", OpMkdir: "mkdir", OpReaddir: "readdir",
		OpUnlink: "unlink", OpSeek: "lseek",
	}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("op %d = %q, want %q", op, op.String(), want)
		}
	}
	if !OpRead.IsData() || !OpWrite.IsData() || OpStat.IsData() {
		t.Fatal("IsData misclassifies")
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	f.SetJobs(nil) // no-op
	for i := 0; i < 100; i++ {
		r := req("j", OpWrite, int64(i))
		f.Push(r)
	}
	if f.Pending() != 100 {
		t.Fatalf("pending = %d", f.Pending())
	}
	for i := 0; i < 100; i++ {
		r := f.Pop(0, nil)
		if r == nil || r.Bytes != int64(i) {
			t.Fatalf("pop %d out of order: %+v", i, r)
		}
	}
	if f.Pop(0, nil) != nil {
		t.Fatal("empty pop should be nil")
	}
}

func TestReqQueueCompaction(t *testing.T) {
	var q reqQueue
	for round := 0; round < 5; round++ {
		for i := 0; i < 1000; i++ {
			q.push(queued{r: req("j", OpRead, int64(i)), seq: uint64(i)})
		}
		for i := 0; i < 1000; i++ {
			if r := q.pop(); r == nil || r.Bytes != int64(i) {
				t.Fatalf("round %d item %d", round, i)
			}
		}
	}
	if _, ok := q.peek(); q.len() != 0 || q.pop() != nil || ok {
		t.Fatal("queue should be empty")
	}
}

func TestJobQueuesOrdering(t *testing.T) {
	jq := NewJobQueues()
	jq.Push(req("b", OpRead, 1))
	jq.Push(req("a", OpRead, 2))
	jq.Push(req("b", OpRead, 3))
	if jq.Pending() != 3 || jq.LenOf("b") != 2 || jq.LenOf("a") != 1 || jq.LenOf("x") != 0 {
		t.Fatal("counts wrong")
	}
	got := jq.Backlogged()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("backlogged = %v (insertion order expected)", got)
	}
	if r := jq.PopFrom("b", nil); r.Bytes != 1 {
		t.Fatal("per-job FIFO violated")
	}
	if jq.PopFrom("nope", nil) != nil || jq.PeekFrom("nope", nil) != nil {
		t.Fatal("unknown job should be empty")
	}
}

// Class-split queues: a disallowed write head does not block the job's
// reads, but order is oldest-first when both classes are allowed.
func TestJobQueuesClassSplit(t *testing.T) {
	jq := NewJobQueues()
	jq.Push(req("j", OpWrite, 1))
	jq.Push(req("j", OpRead, 2))
	jq.Push(req("j", OpWrite, 3))
	noWrites := func(op Op) bool { return op != OpWrite }
	if r := jq.PeekFrom("j", noWrites); r == nil || r.Bytes != 2 {
		t.Fatalf("peek with writes blocked = %+v, want the read", r)
	}
	if r := jq.PopFrom("j", noWrites); r == nil || r.Bytes != 2 {
		t.Fatal("pop with writes blocked should yield the read")
	}
	// With everything allowed, oldest-first across classes.
	if r := jq.PopFrom("j", nil); r == nil || r.Bytes != 1 {
		t.Fatal("oldest-first violated")
	}
	if r := jq.PopFrom("j", nil); r == nil || r.Bytes != 3 {
		t.Fatal("remaining write lost")
	}
	if jq.Pending() != 0 {
		t.Fatal("pending mismatch")
	}
}

// GIFT: equal split across backlogged jobs within a window; a job that
// exhausts its budget is throttled even though capacity remains.
func TestGIFTWindowBudgetThrottles(t *testing.T) {
	g := NewGIFT(GIFTConfig{Capacity: 100 << 20, Window: 100 * time.Millisecond, AllocEff: 1})
	g.SetJobs(nil) // no-op
	// One job, backlogged beyond its full-window budget of 10 MB.
	for i := 0; i < 100; i++ {
		g.Push(req("a", OpWrite, 1<<20))
	}
	served := 0
	for {
		r := g.Pop(0, nil)
		if r == nil {
			break
		}
		served++
	}
	// Window budget = 100 MB/s × 0.1 s = 10 MB → 10 requests, the rest
	// throttled despite pending backlog.
	if served != 10 {
		t.Fatalf("served %d requests in window, want 10", served)
	}
	if g.Pending() != 90 {
		t.Fatalf("pending = %d", g.Pending())
	}
	// Next window serves another slice.
	if r := g.Pop(150*time.Millisecond, nil); r == nil {
		t.Fatal("new window should re-budget")
	}
}

// GIFT coupons: a throttled job gets extra budget in later windows.
func TestGIFTCouponRedemption(t *testing.T) {
	g := NewGIFT(GIFTConfig{Capacity: 100 << 20, Window: 100 * time.Millisecond, AllocEff: 1, CouponCap: 0.5})
	for i := 0; i < 200; i++ {
		g.Push(req("a", OpWrite, 1<<20))
	}
	// Window 1: serve only 4 of the 10 MB budget (the server spent its
	// device budget elsewhere); the job stays backlogged with 6 MB of
	// issued-but-unused allocation.
	for i := 0; i < 4; i++ {
		if g.Pop(0, nil) == nil {
			t.Fatal("window1 should serve")
		}
	}
	// Window 2: the 6 MB deficit returns as a coupon, capped at 0.5× the
	// 10 MB fair share → budget = 10 + 5 = 15.
	n2 := drain(g, 100*time.Millisecond)
	if n2 != 15 {
		t.Fatalf("window2 = %d, want 15 (10 fair + 5 coupon)", n2)
	}
	// Window 3: the remaining 1 MB coupon is redeemed on top.
	n3 := drain(g, 200*time.Millisecond)
	if n3 != 11 {
		t.Fatalf("window3 = %d, want 11 (10 fair + 1 coupon)", n3)
	}
}

func drain(s Scheduler, now time.Duration) int {
	n := 0
	for {
		if r := s.Pop(now, nil); r == nil {
			return n
		}
		n++
	}
}

// TBF: a new class's bucket starts empty; it is served only after a
// refill boundary, and service is burst-paced by the bucket.
func TestTBFBucketPacing(t *testing.T) {
	tb := NewTBF(TBFConfig{Capacity: 100 << 20, RateCap: 1, Tick: 100 * time.Millisecond, Depth: 100 * time.Millisecond})
	for i := 0; i < 100; i++ {
		tb.Push(req("a", OpWrite, 1<<20))
	}
	if tb.Pending() != 100 {
		t.Fatalf("pending = %d", tb.Pending())
	}
	// After the first boundary: one tick of tokens = 100 MB/s × 0.1 s =
	// 10 MB. (Before any boundary the bucket is empty.)
	if n := drain(tb, 110*time.Millisecond); n != 10 {
		t.Fatalf("served %d after first refill, want 10", n)
	}
	// Bucket is drained mid-interval: backlog stalls (and is marked
	// starved) even though the device would be idle.
	if n := drain(tb, 150*time.Millisecond); n != 0 {
		t.Fatalf("served %d mid-interval with empty bucket", n)
	}
	// The class consumed its full configured rate, so bounded HTC grants
	// nothing extra: the next interval serves exactly one tick again.
	if n := drain(tb, 210*time.Millisecond); n != 10 {
		t.Fatalf("served %d after refill, want 10 (HTC bounded by entitlement)", n)
	}
}

// HTC compensates a class that starved while consuming less than its
// configured rate (here: request size doesn't divide the grant, stranding
// tokens below the head request's cost).
func TestTBFHTCCompensatesUnderservice(t *testing.T) {
	tb := NewTBF(TBFConfig{Capacity: 100 << 20, RateCap: 1, Tick: 100 * time.Millisecond, Depth: 100 * time.Millisecond})
	for i := 0; i < 50; i++ {
		tb.Push(req("a", OpWrite, 3<<20))
	}
	// First interval: grant 10 MB, serve 3×3 MB = 9 MB, then starve with
	// 1 MB stranded — underserved by 1 MB.
	if n := drain(tb, 110*time.Millisecond); n != 3 {
		t.Fatalf("served %d in first interval, want 3", n)
	}
	// Next refill: 10 MB + 1 MB HTC deficit + 1 MB carry = 12 MB → 4 reqs.
	if n := drain(tb, 210*time.Millisecond); n != 4 {
		t.Fatalf("served %d after HTC refill, want 4", n)
	}
}

// TBF PSSB: spare rate from an idle class flows to the backlogged class.
func TestTBFPSSBRedistribution(t *testing.T) {
	tb := NewTBF(TBFConfig{Capacity: 100 << 20, RateCap: 1, Tick: 100 * time.Millisecond, Depth: 100 * time.Millisecond})
	tb.SetJobs([]policy.JobInfo{
		{JobID: "busy", UserID: "u1"},
		{JobID: "idle", UserID: "u2"},
	})
	for i := 0; i < 100; i++ {
		tb.Push(req("busy", OpWrite, 1<<20))
	}
	// Per-class rate = 50 MB/s; tick grant = 5 MB; PSSB moves the idle
	// class's 5 MB to the busy one → 10 MB.
	if n := drain(tb, 110*time.Millisecond); n != 10 {
		t.Fatalf("served %d with PSSB, want 10", n)
	}
}

// TBF caps burst size by bucket depth.
func TestTBFDepthCap(t *testing.T) {
	tb := NewTBF(TBFConfig{Capacity: 100 << 20, RateCap: 1, Tick: 50 * time.Millisecond, Depth: 100 * time.Millisecond})
	tb.SetJobs([]policy.JobInfo{{JobID: "a", UserID: "u"}})
	// Let many ticks pass with no traffic; bucket must not exceed depth
	// (plus the current grant).
	tb.refill(2 * time.Second)
	if tb.tokens["a"] > 100e6*0.2 {
		t.Fatalf("bucket overfilled: %.0f bytes", tb.tokens["a"])
	}
}
