package sched

import (
	"time"

	"themisio/internal/policy"
)

// GIFT reimplements the core algorithm of the GIFT I/O sharing system
// (Patel et al., FAST'20) the way the paper did for its §5.4 comparison:
// "we copy the GIFT core algorithms, BSIP (Basic Synchronous I/O Progress)
// and the linear programming algorithm, from the GIFT codebase into
// ThemisIO".
//
// Mechanics modelled:
//
//   - Window-based allocation: every μ interval (the paper tuned μ to
//     0.5 s) the scheduler divides the deliverable bandwidth equally among
//     backlogged jobs (GIFT supports only job-fair sharing). Budgets only
//     change at window boundaries, so a job arriving mid-window waits for
//     the next boundary — the adaptation lag visible in Figure 12(b).
//   - Throttle-and-reward coupons: a backlogged job that received less
//     than its fair share in a window is issued a coupon for the deficit,
//     redeemable in later windows on top of the fair share. Throttled jobs
//     leave capacity idle until the window ends (BSIP keeps sibling
//     progress synchronous), which is GIFT's throughput cost.
//   - AllocEfficiency: GIFT enforces rates with cgroup throttling below
//     the forwarding layer and synchronizes progress across each job's
//     processes; both cost sustained throughput. The paper measures the
//     net effect as a 13.5% lower peak than ThemisIO (Figure 12); this
//     implementation models it as a calibrated allocation-efficiency
//     factor because the mechanism (kernel throttling granularity) is
//     below the level this simulator represents.
type GIFT struct {
	queues *JobQueues

	// Capacity is the deliverable bandwidth of the server in bytes/sec.
	capacity float64
	// window is the reallocation interval μ.
	window time.Duration
	// allocEff is the fraction of capacity GIFT's allocator hands out per
	// window (see doc comment).
	allocEff float64
	// couponCap bounds redemption per window as a multiple of fair share,
	// keeping the reward mechanism from starving other jobs (GIFT's
	// "relaxed fairness window" is bounded).
	couponCap float64

	windowEnd time.Duration
	budget    map[string]float64
	granted   map[string]float64
	coupons   map[string]float64
	rr        int
}

// GIFTConfig parameterizes the GIFT scheduler.
type GIFTConfig struct {
	Capacity  float64       // server bandwidth, bytes/sec (required)
	Window    time.Duration // μ; 0 selects 500 ms per §5.4
	AllocEff  float64       // 0 selects the calibrated 0.88
	CouponCap float64       // 0 selects 0.5× fair share per window
}

// NewGIFT returns a GIFT scheduler with the given configuration.
func NewGIFT(cfg GIFTConfig) *GIFT {
	if cfg.Window <= 0 {
		cfg.Window = 500 * time.Millisecond
	}
	if cfg.AllocEff <= 0 {
		cfg.AllocEff = 0.88
	}
	if cfg.CouponCap <= 0 {
		cfg.CouponCap = 0.5
	}
	return &GIFT{
		queues:    NewJobQueues(),
		capacity:  cfg.Capacity,
		window:    cfg.Window,
		allocEff:  cfg.AllocEff,
		couponCap: cfg.CouponCap,
		budget:    make(map[string]float64),
		granted:   make(map[string]float64),
		coupons:   make(map[string]float64),
		windowEnd: -1,
	}
}

// Name implements Scheduler.
func (g *GIFT) Name() string { return "gift" }

// Push implements Scheduler.
func (g *GIFT) Push(r *Request) { g.queues.Push(r) }

// Pending implements Scheduler.
func (g *GIFT) Pending() int { return g.queues.Pending() }

// SetJobs implements Scheduler. GIFT allocates purely from observed
// backlog (pending I/O every μ), so the job table is not consulted; the
// method exists to satisfy the interface the controller drives.
func (g *GIFT) SetJobs(jobs []policy.JobInfo) {}

// rebudget starts a new allocation window at time now: issue coupons for
// last window's deficits, then split the window's deliverable bytes
// equally among currently backlogged jobs, plus bounded coupon redemption.
func (g *GIFT) rebudget(now time.Duration) {
	backlogged := g.queues.Backlogged()
	// Coupon issue for the window that just closed: any job that stayed
	// backlogged but was granted less than it could consume gets the
	// deficit as a coupon.
	for job, b := range g.budget {
		if b > 0 && g.queues.LenOf(job) > 0 {
			g.coupons[job] += b
		}
	}
	clear(g.budget)
	clear(g.granted)
	if len(backlogged) > 0 {
		windowBytes := g.capacity * g.allocEff * g.window.Seconds()
		fair := windowBytes / float64(len(backlogged))
		for _, job := range backlogged {
			redeem := g.coupons[job]
			if max := fair * g.couponCap; redeem > max {
				redeem = max
			}
			g.coupons[job] -= redeem
			g.budget[job] = fair + redeem
		}
	}
	// Align windows to multiples of μ so that boundaries are stable
	// regardless of when requests arrive.
	n := now/g.window + 1
	g.windowEnd = n * g.window
}

// Pop implements Scheduler: round-robin over backlogged jobs that still
// have window budget. Jobs with backlog but no budget are throttled —
// Pop returns nil even though Pending() > 0, and the server idles.
func (g *GIFT) Pop(now time.Duration, allow AllowFunc) *Request {
	if now >= g.windowEnd {
		g.rebudget(now)
	}
	order := g.queues.Order()
	n := len(order)
	for i := 0; i < n; i++ {
		job := order[(g.rr+i)%n]
		head := g.queues.PeekFrom(job, allow)
		if head == nil {
			continue
		}
		cost := float64(head.Cost())
		if g.budget[job] <= 0 {
			continue // throttled until next window
		}
		g.budget[job] -= cost
		g.granted[job] += cost
		g.rr = (g.rr + i + 1) % n
		return g.queues.PopFrom(job, allow)
	}
	return nil
}
