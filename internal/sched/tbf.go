package sched

import (
	"time"

	"themisio/internal/policy"
)

// TBF reimplements the core strategies of the Lustre NRS token bucket
// filter (Qian et al., SC'17) as the paper did for §5.4: "we implement the
// core HTC (Hard Token Compensation) and PSSB (Proportional Sharing Spare
// Bandwidth) strategies and integrate them with ThemisIO's I/O resource
// allocation mechanism".
//
// Mechanics modelled:
//
//   - Classful token buckets: each job has a bucket refilled at its
//     configured rate; a request is served only if the bucket holds enough
//     tokens, otherwise the job is deferred even when the device is idle.
//     Refill happens at discrete tick boundaries, so service alternates
//     between bursts (bucket drains) and stalls (wait for refill) — the
//     stop-start cycle behind TBF's higher throughput variance in
//     Figure 12(c).
//   - RateCap: TBF requires user-supplied request rates and enforces them
//     as hard limits; operators must configure the aggregate below the
//     device peak to keep the QoS guarantee feasible (the paper's critique:
//     "it is difficult to know the exact I/O request rate of an
//     application"). The calibrated 0.88 reproduces the measured 13.7%
//     peak gap vs ThemisIO. The default enforcement quantum (Tick) is
//     coarse — Lustre's NRS batches RPCs well above the per-request
//     level — which is what makes TBF's throughput variance the highest
//     of the three schedulers, as in Figure 12(c).
//   - HTC: a job whose bucket starved for a whole tick while backlogged is
//     granted compensation tokens at the next refill.
//   - PSSB: rate belonging to idle classes is redistributed to backlogged
//     classes proportionally to their configured rates at each refill.
type TBF struct {
	queues *JobQueues

	capacity float64
	rateCap  float64       // fraction of capacity the operator configured
	tick     time.Duration // refill interval
	depth    time.Duration // bucket depth expressed as time at full rate

	lastRefill time.Duration
	tokens     map[string]float64
	consumed   map[string]float64 // bytes served since the last refill
	starved    map[string]bool
	jobs       []string // known classes (from SetJobs ∪ observed)
	known      map[string]bool
	rr         int
}

// TBFConfig parameterizes the TBF scheduler.
type TBFConfig struct {
	Capacity float64       // server bandwidth, bytes/sec (required)
	RateCap  float64       // 0 selects the calibrated 0.88
	Tick     time.Duration // refill interval; 0 selects 800 ms
	Depth    time.Duration // bucket depth in time-at-rate; 0 selects 400 ms
}

// NewTBF returns a TBF scheduler with the given configuration.
func NewTBF(cfg TBFConfig) *TBF {
	if cfg.RateCap <= 0 {
		cfg.RateCap = 0.88
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 800 * time.Millisecond
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 400 * time.Millisecond
	}
	return &TBF{
		queues:   NewJobQueues(),
		capacity: cfg.Capacity,
		rateCap:  cfg.RateCap,
		tick:     cfg.Tick,
		depth:    cfg.Depth,
		tokens:   make(map[string]float64),
		consumed: make(map[string]float64),
		starved:  make(map[string]bool),
		known:    make(map[string]bool),
	}
}

// Name implements Scheduler.
func (t *TBF) Name() string { return "tbf" }

// Push implements Scheduler. Unknown classes are registered on first
// sight; their bucket starts empty and fills at the next tick — the
// slow-start visible when job 2 arrives in Figure 12(c).
func (t *TBF) Push(r *Request) {
	id := r.Job.JobID
	if !t.known[id] {
		t.known[id] = true
		t.jobs = append(t.jobs, id)
	}
	t.queues.Push(r)
}

// Pending implements Scheduler.
func (t *TBF) Pending() int { return t.queues.Pending() }

// SetJobs implements Scheduler: registers classes ahead of traffic.
func (t *TBF) SetJobs(jobs []policy.JobInfo) {
	for _, j := range jobs {
		if !t.known[j.JobID] {
			t.known[j.JobID] = true
			t.jobs = append(t.jobs, j.JobID)
		}
	}
}

// refill advances bucket state to the tick boundary at or before now.
// Buckets start empty: a class is first served only after a refill
// boundary passes (lastRefill starts at the t=0 boundary).
func (t *TBF) refill(now time.Duration) {
	boundary := now / t.tick * t.tick
	if boundary <= t.lastRefill {
		return
	}
	ticks := int64((boundary - t.lastRefill) / t.tick)
	t.lastRefill = boundary
	if len(t.jobs) == 0 {
		return
	}
	perJobRate := t.capacity * t.rateCap / float64(len(t.jobs))
	tickBytes := perJobRate * t.tick.Seconds() * float64(ticks)
	maxDepth := perJobRate * t.depth.Seconds()

	// PSSB: rate of classes with no backlog is spare; redistribute it to
	// backlogged classes proportionally (equal classes → equal split).
	var idle, busy []string
	for _, j := range t.jobs {
		if t.queues.LenOf(j) > 0 {
			busy = append(busy, j)
		} else {
			idle = append(idle, j)
		}
	}
	spare := tickBytes * float64(len(idle))
	for _, j := range t.jobs {
		grant := tickBytes
		if t.queues.LenOf(j) == 0 {
			grant = 0 // PSSB took this class's share
		} else if len(busy) > 0 {
			grant += spare / float64(len(busy))
		}
		// HTC: a class that starved with backlog while having been served
		// *less than its configured rate* is compensated for the deficit
		// (hard token compensation is bounded by entitlement — a class
		// that consumed its full rate gets nothing extra).
		if t.starved[j] {
			if deficit := tickBytes - t.consumed[j]; deficit > 0 {
				grant += deficit
			}
			t.starved[j] = false
		}
		t.tokens[j] += grant
		if t.tokens[j] > maxDepth+grant {
			t.tokens[j] = maxDepth + grant
		}
		t.consumed[j] = 0
	}
}

// Pop implements Scheduler: round-robin over classes whose bucket covers
// their head request. Classes with backlog but empty buckets wait for the
// next refill even if the device is idle (hard rate enforcement).
func (t *TBF) Pop(now time.Duration, allow AllowFunc) *Request {
	t.refill(now)
	n := len(t.jobs)
	if n == 0 {
		return nil
	}
	anyBacklog := false
	for i := 0; i < n; i++ {
		job := t.jobs[(t.rr+i)%n]
		head := t.queues.PeekFrom(job, allow)
		if head == nil {
			continue
		}
		anyBacklog = true
		cost := float64(head.Cost())
		if t.tokens[job] < cost {
			t.starved[job] = true // HTC will compensate at next refill
			continue
		}
		t.tokens[job] -= cost
		t.consumed[job] += cost
		t.rr = (t.rr + i + 1) % n
		return t.queues.PopFrom(job, allow)
	}
	_ = anyBacklog
	return nil
}
