// Package sched defines the I/O request scheduler interface shared by the
// discrete-event simulator and the live server, plus the three baseline
// schedulers the paper evaluates against: FIFO (production default), GIFT
// (BSIP + throttle-and-reward coupons) and TBF (classful token bucket with
// HTC and PSSB). The ThemisIO statistical-token scheduler itself lives in
// package core, built on the same interface — mirroring how the paper
// integrated the GIFT and TBF core algorithms into ThemisIO for the §5.4
// comparison.
package sched

import (
	"time"

	"themisio/internal/policy"
)

// Op is the I/O operation class of a request.
type Op int

// Operation classes. Data ops carry Bytes; metadata ops are charged a
// nominal cost (MetaCost) by capacity-aware schedulers.
const (
	OpRead Op = iota
	OpWrite
	OpOpen
	OpClose
	OpStat
	OpMkdir
	OpReaddir
	OpUnlink
	OpSeek
)

// String returns the POSIX-ish name of the op.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpStat:
		return "stat"
	case OpMkdir:
		return "mkdir"
	case OpReaddir:
		return "readdir"
	case OpUnlink:
		return "unlink"
	case OpSeek:
		return "lseek"
	}
	return "op?"
}

// IsData reports whether the op moves file data.
func (o Op) IsData() bool { return o == OpRead || o == OpWrite }

// MetaCost is the nominal byte-equivalent cost capacity-aware schedulers
// charge for a metadata operation, so that stat storms (the paper's
// iops_stat workload) still consume I/O cycles.
const MetaCost = 4 << 10

// Request is one I/O request as seen by a scheduler. The job metadata is
// embedded in every request by the client (§4.1), which is what lets the
// server enforce any policy without user-supplied profiles.
type Request struct {
	Job    policy.JobInfo
	Op     Op
	Bytes  int64
	Arrive time.Duration
	// Done, if non-nil, is invoked by the serving plane when the request
	// completes (the simulator's client loop and the live server's worker
	// both use it).
	Done func(now time.Duration)
	// Tag carries plane-specific payload (e.g. the live server's decoded
	// message) through the scheduler untouched.
	Tag any
}

// Cost returns the byte-equivalent scheduling cost of the request.
func (r *Request) Cost() int64 {
	if r.Op.IsData() && r.Bytes > 0 {
		return r.Bytes
	}
	return MetaCost
}

// AllowFunc tells a scheduler which operation classes the serving plane
// can start right now (e.g. the write path is saturated but the read path
// has headroom). A nil AllowFunc allows everything. Policy schedulers
// treat a job whose head request is disallowed as ineligible for this
// draw; FIFO ignores the filter — its workers take requests strictly in
// order, which is exactly the head-of-line coupling the paper identifies.
type AllowFunc func(op Op) bool

// Scheduler reorders I/O requests according to a sharing policy. Push and
// Pop are called from the serving plane; SetJobs is called by the
// controller whenever the job table changes (heartbeat, expiry, λ-sync).
//
// Pop may return nil even when Pending() > 0: every job's head request
// may be disallowed by the filter, and GIFT and TBF additionally throttle
// jobs whose window budget or token bucket is exhausted, leaving capacity
// idle. That non-work-conserving throttling is precisely what ThemisIO's
// opportunity fairness removes.
type Scheduler interface {
	Name() string
	Push(r *Request)
	Pop(now time.Duration, allow AllowFunc) *Request
	Pending() int
	SetJobs(jobs []policy.JobInfo)
}

// NumClasses is the number of independent service classes (reads,
// writes, metadata).
const NumClasses = 3

// ClassOf buckets ops into the three service classes a worker pool can
// run independently: reads (0), writes (1), and metadata (2). Exported
// so the Themis scheduler's lock-free eligibility counters bucket
// exactly like the class-split queues underneath them.
func ClassOf(op Op) int {
	switch op {
	case OpRead:
		return 0
	case OpWrite:
		return 1
	}
	return 2
}

func classOf(op Op) int { return ClassOf(op) }

// queued is a request plus its global arrival sequence (for oldest-first
// selection across classes).
type queued struct {
	r   *Request
	seq uint64
}

// reqQueue is an allocation-friendly FIFO of queued requests.
type reqQueue struct {
	items []queued
	head  int
}

func (q *reqQueue) push(it queued) { q.items = append(q.items, it) }

func (q *reqQueue) pop() *Request {
	if q.head >= len(q.items) {
		return nil
	}
	r := q.items[q.head].r
	q.items[q.head] = queued{}
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return r
}

func (q *reqQueue) peek() (queued, bool) {
	if q.head >= len(q.items) {
		return queued{}, false
	}
	return q.items[q.head], true
}

func (q *reqQueue) len() int { return len(q.items) - q.head }

// jobQueue holds one job's backlog, split by service class so that a
// saturated write path does not block the job's reads (the server's
// workers run transfer directions independently); arrival order is
// preserved within a class and respected across classes via sequence
// numbers.
type jobQueue struct {
	cls [3]reqQueue
}

func (jq *jobQueue) push(it queued) { jq.cls[classOf(it.r.Op)].push(it) }

func (jq *jobQueue) len() int {
	return jq.cls[0].len() + jq.cls[1].len() + jq.cls[2].len()
}

// peekAllowed returns the oldest head among classes the filter allows.
func (jq *jobQueue) peekAllowed(allow AllowFunc) (*Request, int, bool) {
	best := -1
	var bestSeq uint64
	for c := range jq.cls {
		it, ok := jq.cls[c].peek()
		if !ok {
			continue
		}
		if allow != nil && !allow(it.r.Op) {
			continue
		}
		if best == -1 || it.seq < bestSeq {
			best = c
			bestSeq = it.seq
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	it, _ := jq.cls[best].peek()
	return it.r, best, true
}

// JobQueues maintains one class-split FIFO per job with a deterministic
// iteration order (insertion order). It is the communicator's queue
// structure from §4.1: "I/O requests are grouped into queues based on the
// fair sharing policy ... identified by job ids". Exported so the Themis
// scheduler in package core builds on the same machinery as the
// baselines.
type JobQueues struct {
	byJob map[string]*jobQueue
	order []string
	total int
	seq   uint64
}

// NewJobQueues returns an empty queue set.
func NewJobQueues() *JobQueues {
	return &JobQueues{byJob: make(map[string]*jobQueue)}
}

// Push enqueues the request on its job's queue.
func (jq *JobQueues) Push(r *Request) {
	id := r.Job.JobID
	q, ok := jq.byJob[id]
	if !ok {
		q = &jobQueue{}
		jq.byJob[id] = q
		jq.order = append(jq.order, id)
	}
	jq.seq++
	q.push(queued{r: r, seq: jq.seq})
	jq.total++
}

// PeekFrom returns the job's oldest request among allowed classes.
func (jq *JobQueues) PeekFrom(job string, allow AllowFunc) *Request {
	q, ok := jq.byJob[job]
	if !ok {
		return nil
	}
	r, _, ok := q.peekAllowed(allow)
	if !ok {
		return nil
	}
	return r
}

// PopFrom removes and returns the job's oldest request among allowed
// classes, or nil.
func (jq *JobQueues) PopFrom(job string, allow AllowFunc) *Request {
	q, ok := jq.byJob[job]
	if !ok {
		return nil
	}
	_, cls, ok := q.peekAllowed(allow)
	if !ok {
		return nil
	}
	r := q.cls[cls].pop()
	if r != nil {
		jq.total--
	}
	return r
}

// LenOf returns the job's backlog.
func (jq *JobQueues) LenOf(job string) int {
	q, ok := jq.byJob[job]
	if !ok {
		return 0
	}
	return q.len()
}

// Pending returns the total backlog.
func (jq *JobQueues) Pending() int { return jq.total }

// Order returns the job iteration order (insertion order). The returned
// slice is owned by the queue set; callers must not mutate it.
func (jq *JobQueues) Order() []string { return jq.order }

// Backlogged returns the jobs with non-empty queues, in insertion order.
func (jq *JobQueues) Backlogged() []string {
	var out []string
	for _, id := range jq.order {
		if jq.byJob[id].len() > 0 {
			out = append(out, id)
		}
	}
	return out
}
