package sched

import (
	"time"

	"themisio/internal/policy"
)

// FIFO serves requests strictly in arrival order — the production-system
// default whose head-of-line blocking is the root cause of the I/O
// interference the paper measures (§2.2.1): "highly concurrent and bursty
// I/O traffic from one application can saturate the I/O system's queue,
// then block the I/O of another application".
type FIFO struct {
	items []*Request
	head  int
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Push implements Scheduler.
func (f *FIFO) Push(r *Request) { f.items = append(f.items, r) }

// Pop implements Scheduler. FIFO deliberately ignores the allow filter:
// its workers take requests strictly in arrival order, so a request for a
// saturated path blocks everything behind it (§2.2.1).
func (f *FIFO) Pop(now time.Duration, allow AllowFunc) *Request {
	if f.head >= len(f.items) {
		return nil
	}
	r := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return r
}

// Pending implements Scheduler.
func (f *FIFO) Pending() int { return len(f.items) - f.head }

// SetJobs implements Scheduler; FIFO ignores job state entirely.
func (f *FIFO) SetJobs(jobs []policy.JobInfo) {}
