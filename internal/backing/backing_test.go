package backing

import (
	"bytes"
	"testing"
)

func TestDirWriteReadDelete(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := FileMeta{Owner: "s1", Path: "/a", Stripe: 0, Stripes: 1, StripeUnit: 4096, StripeSet: []string{"s1"}}
	if err := d.WriteRange(meta, 0, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRange(meta, 6, []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, m, err := d.ReadObject("", "/a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" || m.Size != 11 {
		t.Fatalf("read %q size %d", data, m.Size)
	}
	// Overwrite inside the object must not shrink it.
	if err := d.WriteRange(meta, 0, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	data, _, _ = d.ReadObject("s1", "/a", 0)
	if string(data) != "HELLO world" {
		t.Fatalf("after overwrite: %q", data)
	}
	if err := d.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadObject("", "/a", 0); err == nil {
		t.Fatal("read after delete should fail")
	}
}

func TestDirManifestPersists(t *testing.T) {
	root := t.TempDir()
	d, _ := OpenDir(root)
	if err := d.WriteRange(FileMeta{Owner: "s1", Path: "/x", Stripe: 1, Stripes: 2, StripeUnit: 8, StripeSet: []string{"s0", "s1"}}, 0, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRange(FileMeta{Owner: "s1", Path: "/dir", IsDir: true, Children: []string{"x"}}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Reopen: manifest and objects survive the "crash".
	d2, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := d2.Manifest()
	if err != nil || len(manifest) != 2 {
		t.Fatalf("manifest = %v err=%v", manifest, err)
	}
	data, m, err := d2.ReadObject("", "/x", 1)
	if err != nil || string(data) != "bbbb" {
		t.Fatalf("reopened read: %q err=%v", data, err)
	}
	if m.Stripes != 2 || m.StripeUnit != 8 || len(m.StripeSet) != 2 {
		t.Fatalf("layout metadata lost: %+v", m)
	}
	_, dm, err := d2.ReadObject("", "/dir", 0)
	if err != nil || !dm.IsDir || len(dm.Children) != 1 {
		t.Fatalf("dir entry lost: %+v err=%v", dm, err)
	}
}

func TestReassemble(t *testing.T) {
	d, _ := OpenDir(t.TempDir())
	// File of 10 bytes striped over 3 servers, unit 3:
	// units: [0,3)->s0  [3,6)->s1  [6,9)->s2  [9,10)->s0
	full := []byte("0123456789")
	stripes := [][]byte{
		append(append([]byte{}, full[0:3]...), full[9:10]...), // s0
		full[3:6], // s1
		full[6:9], // s2
	}
	owners := []string{"s0", "s1", "s2"}
	for i, part := range stripes {
		meta := FileMeta{Owner: owners[i], Path: "/f", Stripe: i, Stripes: 3, StripeUnit: 3, StripeSet: owners}
		if err := d.WriteRange(meta, 0, part); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Reassemble(d, "/f", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("reassembled %q, want %q", got, full)
	}
	// Missing stripe truncates at the gap rather than corrupting.
	if err := d.DeleteObject("s1", "/f", 1); err != nil {
		t.Fatal(err)
	}
	got, err = Reassemble(d, "/f", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full[:3]) {
		t.Fatalf("truncated reassembly %q, want %q", got, full[:3])
	}
}
