// Package backing implements the stage-out half of the burst-buffer
// lifecycle: a backing-store interface over which servers write dirty
// data back asynchronously (stage-out), and from which a server restores
// its shard after a restart (stage-in) or survivors re-hydrate a failed
// member's ring segment (failover recovery).
//
// The paper's conclusion names persistence — "log-structure
// byte-addressable file system designs and persistent data structure
// strategy to enable fault tolerance" — as the open future-work item;
// this package supplies the data path for it. The backing store plays
// the role of the parallel file system behind a production burst buffer:
// slower, durable, and shared by every server.
//
// Layout of the local-directory implementation (Dir): one object file
// per staged entry under objects/, named by a hash of (owner, path,
// stripe), plus one JSON metadata row per object under meta/. Rows are
// written atomically (temp file + rename) and deleted with a single
// unlink, so the concurrent server processes of one cluster — which
// all open the same directory — never clobber each other: each row has
// exactly one writer (the owner server), and cross-owner deletes
// (unlink propagation, recovery cleanup) remove whole rows instead of
// rewriting shared state.
package backing

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileMeta describes one staged object: which entry it belongs to, which
// stripe of the entry it holds, and the stripe layout recorded at
// creation so recovery can reassemble the full file.
type FileMeta struct {
	// Owner is the server (listen address) that staged the object.
	// Directory entries are replicated on every server, so the owner is
	// part of the object identity; file stripes are unique per (path,
	// stripe) but keep the owner for restart re-hydration.
	Owner string `json:"owner"`
	// Path is the canonical file-system path of the entry.
	Path string `json:"path"`
	// IsDir marks a directory entry; Children are its entries.
	IsDir    bool     `json:"is_dir,omitempty"`
	Children []string `json:"children,omitempty"`
	// Stripe is which stripe of the file this object holds; Stripes,
	// StripeUnit and StripeSet are the layout recorded at creation.
	Stripe     int      `json:"stripe"`
	Stripes    int      `json:"stripes,omitempty"`
	StripeUnit int64    `json:"stripe_unit,omitempty"`
	StripeSet  []string `json:"stripe_set,omitempty"`
	// LayoutGen is the layout generation recorded with the stripes (so
	// failover adoption can install a generation newer than any client
	// cached before the failure).
	LayoutGen uint64 `json:"layout_gen,omitempty"`
	// Size is the object's content length in bytes (the local stripe
	// size, not the global file size).
	Size int64 `json:"size"`
}

// Store is the backing-store interface. Implementations must be safe
// for concurrent use: the drain engine writes from worker goroutines
// while recovery reads the manifest.
type Store interface {
	// WriteRange stages data at byte offset off of the object identified
	// by meta (owner, path, stripe), creating or extending it as needed
	// and updating the manifest entry's layout metadata.
	WriteRange(meta FileMeta, off int64, data []byte) error
	// ReadObject returns the full content and metadata of the object for
	// (owner, path, stripe). An empty owner matches any — file stripes
	// are unique per (path, stripe) in steady state, and for replicated
	// directory entries any owner's copy is equivalent.
	ReadObject(owner, path string, stripe int) ([]byte, FileMeta, error)
	// DeleteObject removes the single object (owner, path, stripe).
	// Deliberately the only delete in the interface: unlink write-back
	// and recovery cleanup each remove exactly the rows they own — a
	// path-wide, all-owners delete could destroy rows another server
	// (or a newer incarnation of the path) staged concurrently.
	DeleteObject(owner, path string, stripe int) error
	// Manifest returns a copy of all staged-object metadata, sorted by
	// (path, stripe, owner).
	Manifest() ([]FileMeta, error)
}

// ErrNotStaged reports a lookup of an object the store does not hold.
var ErrNotStaged = fmt.Errorf("backing: object not staged")

// Dir is the local-directory Store: object content under objects/, one
// JSON metadata row per object under meta/ — the shape a PFS-backed
// deployment would use. Every server process of a cluster opens the
// same directory; per-row files keep them coherent without locks: a row
// has exactly one writer (its owner server, serialized by that
// process's mu), row installs are atomic renames, and cross-owner
// deletes are single unlinks. The one benign race — an unlink removing
// a row the owner concurrently rewrites — self-heals because the owner
// processes the same unlink as a tombstone on its next pump.
type Dir struct {
	root string
	mu   sync.Mutex
}

// objKey names an object and its metadata row: a 64-bit hash of the
// identity triple. Hashing keeps arbitrary paths (and owner addresses
// with ':') out of the host file system's namespace rules.
func objKey(owner, path string, stripe int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", owner, path, stripe)
	return fmt.Sprintf("%016x-%d", h.Sum64(), stripe)
}

// OpenDir opens (creating if needed) a directory-backed store rooted at
// root.
func OpenDir(root string) (*Dir, error) {
	for _, sub := range []string{"objects", "meta"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, fmt.Errorf("backing: %w", err)
		}
	}
	return &Dir{root: root}, nil
}

// Root returns the store's directory.
func (d *Dir) Root() string { return d.root }

func (d *Dir) rowPath(key string) string {
	return filepath.Join(d.root, "meta", key+".json")
}

func (d *Dir) objectPath(key string) string {
	return filepath.Join(d.root, "objects", key+".obj")
}

// loadRow reads one metadata row; ok=false if the object is not staged.
func (d *Dir) loadRow(key string) (FileMeta, bool, error) {
	raw, err := os.ReadFile(d.rowPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return FileMeta{}, false, nil
		}
		return FileMeta{}, false, fmt.Errorf("backing: reading row: %w", err)
	}
	var m FileMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return FileMeta{}, false, fmt.Errorf("backing: parsing row %s: %w", key, err)
	}
	return m, true, nil
}

// saveRow installs one metadata row atomically (temp + rename).
func (d *Dir) saveRow(key string, m FileMeta) error {
	raw, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	tmp := d.rowPath(key) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("backing: %w", err)
	}
	if err := os.Rename(tmp, d.rowPath(key)); err != nil {
		return fmt.Errorf("backing: %w", err)
	}
	return nil
}

// rows loads every metadata row in the store.
func (d *Dir) rows() ([]FileMeta, []string, error) {
	paths, err := filepath.Glob(filepath.Join(d.root, "meta", "*.json"))
	if err != nil {
		return nil, nil, err
	}
	var metas []FileMeta
	var keys []string
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue // row deleted under the glob
			}
			return nil, nil, fmt.Errorf("backing: reading row: %w", err)
		}
		var m FileMeta
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, nil, fmt.Errorf("backing: parsing %s: %w", filepath.Base(p), err)
		}
		metas = append(metas, m)
		keys = append(keys, strings.TrimSuffix(filepath.Base(p), ".json"))
	}
	return metas, keys, nil
}

// removeObjectLocked deletes one row and its content file. Caller holds
// d.mu.
func (d *Dir) removeObjectLocked(key string, isDir bool) error {
	if err := os.Remove(d.rowPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("backing: %w", err)
	}
	if !isDir {
		if err := os.Remove(d.objectPath(key)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("backing: %w", err)
		}
	}
	return nil
}

// WriteRange implements Store.
func (d *Dir) WriteRange(meta FileMeta, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("backing: negative offset %d", off)
	}
	key := objKey(meta.Owner, meta.Path, meta.Stripe)
	if !meta.IsDir && (len(data) > 0 || off > 0) {
		f, err := os.OpenFile(d.objectPath(key), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("backing: %w", err)
		}
		_, werr := f.WriteAt(data, off)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("backing: writing %s: %w", meta.Path, werr)
		}
		if cerr != nil {
			return fmt.Errorf("backing: closing %s: %w", meta.Path, cerr)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok, err := d.loadRow(key); err != nil {
		return err
	} else if ok && prev.Size > off+int64(len(data)) {
		meta.Size = prev.Size
	} else {
		meta.Size = off + int64(len(data))
	}
	return d.saveRow(key, meta)
}

// ReadObject implements Store.
func (d *Dir) ReadObject(owner, path string, stripe int) ([]byte, FileMeta, error) {
	d.mu.Lock()
	var meta FileMeta
	var key string
	found := false
	var err error
	if owner != "" {
		key = objKey(owner, path, stripe)
		meta, found, err = d.loadRow(key)
	} else {
		var metas []FileMeta
		var keys []string
		metas, keys, err = d.rows()
		for i, m := range metas {
			if m.Path == path && m.Stripe == stripe {
				meta, key, found = m, keys[i], true
				break
			}
		}
	}
	d.mu.Unlock()
	if err != nil {
		return nil, FileMeta{}, err
	}
	if !found {
		return nil, FileMeta{}, fmt.Errorf("%w: %s stripe %d", ErrNotStaged, path, stripe)
	}
	if meta.IsDir || meta.Size == 0 {
		return nil, meta, nil
	}
	data, err := os.ReadFile(d.objectPath(key))
	if err != nil {
		return nil, meta, fmt.Errorf("backing: reading %s: %w", path, err)
	}
	if int64(len(data)) > meta.Size {
		data = data[:meta.Size]
	}
	return data, meta, nil
}

// Delete removes every staged object of path (all stripes, all owners)
// — an operator/GC helper and test utility, intentionally NOT part of
// the Store interface (see DeleteObject's comment).
func (d *Dir) Delete(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	metas, keys, err := d.rows()
	if err != nil {
		return err
	}
	for i, m := range metas {
		if m.Path != path {
			continue
		}
		if err := d.removeObjectLocked(keys[i], m.IsDir); err != nil {
			return err
		}
	}
	return nil
}

// DeleteObject implements Store.
func (d *Dir) DeleteObject(owner, path string, stripe int) error {
	key := objKey(owner, path, stripe)
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok, err := d.loadRow(key)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	return d.removeObjectLocked(key, meta.IsDir)
}

// Manifest implements Store.
func (d *Dir) Manifest() ([]FileMeta, error) {
	d.mu.Lock()
	out, _, err := d.rows()
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		if out[i].Stripe != out[j].Stripe {
			return out[i].Stripe < out[j].Stripe
		}
		return out[i].Owner < out[j].Owner
	})
	return out, nil
}

// Reassemble stitches a striped file back together from its staged
// stripe objects: global unit u lives on stripe u mod stripes, so the
// full content interleaves each stripe object in unit-sized chunks.
// Reassembly is best-effort — it stops at the first missing byte (an
// unstaged stripe truncates the file at the gap), which is the inherent
// contract of asynchronous write-back; a flush before the failure makes
// it exact.
func Reassemble(store Store, path string, stripes int, unit int64) ([]byte, error) {
	// One manifest scan maps stripes to owners; the per-stripe reads are
	// then direct row lookups.
	manifest, err := store.Manifest()
	if err != nil {
		return nil, err
	}
	rowOwner := map[int]string{}
	for _, m := range manifest {
		if m.Path == path && !m.IsDir {
			rowOwner[m.Stripe] = m.Owner
		}
	}
	return reassembleRows(store, path, stripes, unit, rowOwner)
}

// reassembleRows interleaves the stripe objects named by rowOwner
// (stripe index → staging owner); stripes without a row truncate the
// file at their first unit.
func reassembleRows(store Store, path string, stripes int, unit int64, rowOwner map[int]string) ([]byte, error) {
	if stripes <= 1 {
		owner, ok := rowOwner[0]
		if !ok {
			return nil, fmt.Errorf("%w: %s stripe 0", ErrNotStaged, path)
		}
		data, _, err := store.ReadObject(owner, path, 0)
		return data, err
	}
	if unit <= 0 {
		return nil, fmt.Errorf("backing: reassemble %s: no stripe unit", path)
	}
	parts := make([][]byte, stripes)
	for i := 0; i < stripes; i++ {
		owner, ok := rowOwner[i]
		if !ok {
			continue // missing stripe: truncate at its first unit
		}
		data, _, err := store.ReadObject(owner, path, i)
		if err != nil {
			continue
		}
		parts[i] = data
	}
	return Interleave(parts, unit), nil
}

// Interleave stitches per-stripe local contents back into the global
// byte stream of a round-robin layout: global unit u lives on stripe
// u mod len(parts). It stops at the first exhausted stripe that was
// expected to contribute a full unit — the longest prefix every stripe
// agrees on — so a straggling stripe can truncate but never corrupt.
// Join-time rebalancing shares this with failover reassembly: both
// rebuild a file from its stripes, one from live servers, one from
// staged objects.
func Interleave(parts [][]byte, unit int64) []byte {
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		return parts[0]
	}
	cursors := make([]int64, len(parts))
	var out []byte
	for u := int64(0); ; u++ {
		i := int(u % int64(len(parts)))
		avail := int64(len(parts[i])) - cursors[i]
		if avail <= 0 {
			return out
		}
		take := unit
		if take > avail {
			take = avail
		}
		out = append(out, parts[i][cursors[i]:cursors[i]+take]...)
		cursors[i] += take
		if take < unit {
			// A partial unit is the file's tail.
			return out
		}
	}
}
