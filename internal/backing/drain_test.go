package backing

import (
	"bytes"
	"testing"
	"time"

	"themisio/internal/fsys"
	"themisio/internal/sched"
)

// runAll executes submitted drain tasks inline — a stand-in for the
// server's workers in unit tests.
func runAll(t *testing.T, reqs []*sched.Request) {
	t.Helper()
	for _, r := range reqs {
		if err := r.Tag.(*Task).Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func pumpAll(t *testing.T, d *Drainer) int {
	t.Helper()
	total := 0
	for {
		var reqs []*sched.Request
		n := d.Pump(0, func(r *sched.Request) { reqs = append(reqs, r) })
		if n == 0 {
			return total
		}
		runAll(t, reqs)
		total += n
	}
}

func TestDrainAndRehydrate(t *testing.T) {
	store, _ := OpenDir(t.TempDir())
	sh := fsys.NewShard("s1", 8<<20)
	r := fsys.NewRouter([]*fsys.Shard{sh}, 1, 1<<16)
	if err := r.Mkdir("/ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("/ckpt/a"); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("durable!"), 40000) // 320 KB, several chunks
	if _, err := r.Write("/ckpt/a", want); err != nil {
		t.Fatal(err)
	}

	d := NewDrainer("s1", sh, store)
	d.ChunkBytes = 64 << 10
	if n := pumpAll(t, d); n == 0 {
		t.Fatal("nothing pumped despite dirty data")
	}
	if d.Dirty() {
		t.Fatal("still dirty after full drain")
	}
	chunks, bytesOut, errs := d.Stats()
	if chunks == 0 || bytesOut != int64(len(want)) || errs != 0 {
		t.Fatalf("stats: chunks=%d bytes=%d errs=%d", chunks, bytesOut, errs)
	}

	// Incremental: another write stages only the delta.
	if _, err := r.Write("/ckpt/a", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	pumpAll(t, d)
	_, bytesOut2, _ := d.Stats()
	if delta := bytesOut2 - bytesOut; delta != 4 {
		t.Fatalf("incremental drain moved %d bytes, want 4", delta)
	}

	// Crash: rebuild the shard from the backing store alone.
	sh2 := fsys.NewShard("s1", 8<<20)
	n, err := Rehydrate(sh2, store, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing rehydrated")
	}
	r2 := fsys.NewRouter([]*fsys.Shard{sh2}, 1, 1<<16)
	got := make([]byte, len(want)+4)
	if m, err := r2.ReadAt("/ckpt/a", 0, got); err != nil || m != len(got) {
		t.Fatalf("rehydrated read: n=%d err=%v", m, err)
	}
	if !bytes.Equal(got, append(append([]byte{}, want...), []byte("tail")...)) {
		t.Fatal("rehydrated content differs")
	}
	if names, err := r2.Readdir("/ckpt"); err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("rehydrated readdir: %v %v", names, err)
	}
	if sh2.HasDirty() {
		t.Fatal("rehydrated shard should start clean")
	}

	// Unlink propagates as a backing delete.
	if err := r.Unlink("/ckpt/a"); err != nil {
		t.Fatal(err)
	}
	pumpAll(t, d)
	if _, _, err := store.ReadObject("", "/ckpt/a", 0); err == nil {
		t.Fatal("object should be deleted after unlink drain")
	}
}

func TestFlushTimeoutAndSuccess(t *testing.T) {
	store, _ := OpenDir(t.TempDir())
	sh := fsys.NewShard("s1", 1<<20)
	r := fsys.NewRouter([]*fsys.Shard{sh}, 1, 1<<16)
	if err := r.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write("/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	d := NewDrainer("s1", sh, store)
	// A push sink that executes tasks inline: flush succeeds.
	now := func() time.Duration { return 0 }
	err := d.Flush(now, func(rq *sched.Request) {
		_ = rq.Tag.(*Task).Run()
	}, func(int) {}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A sink that drops tasks on the floor: flush times out.
	if _, err := r.Write("/f", []byte("more")); err != nil {
		t.Fatal(err)
	}
	err = d.Flush(now, func(rq *sched.Request) {}, func(int) {}, 20*time.Millisecond)
	if err == nil {
		t.Fatal("flush with a dead sink should time out")
	}
}

// TestRecoverSegmentKeepsUnstagedLocalBytes: recovery must stage a
// survivor's un-staged dirty bytes before reassembling, so acknowledged
// writes on healthy servers never regress to the last flush.
func TestRecoverSegmentKeepsUnstagedLocalBytes(t *testing.T) {
	store, _ := OpenDir(t.TempDir())
	// /f striped over [s1, s2], unit 4: units A,C on s1; B,D on s2.
	set := []string{"s1", "s2"}
	s1 := fsys.NewShard("s1", 1<<20)
	s2 := fsys.NewShard("s2", 1<<20)
	for _, sh := range []*fsys.Shard{s1, s2} {
		if err := sh.CreateEntry("/f", false, 2, 4, set); err != nil {
			t.Fatal(err)
		}
	}
	s1.Append("/f", []byte("AAAACCCC"))
	s2.Append("/f", []byte("BBBBDDDD"))
	pumpAll(t, NewDrainer("s1", s1, store))
	pumpAll(t, NewDrainer("s2", s2, store))
	// A further acknowledged append lands unit E on s1 — never staged.
	if _, err := s1.Append("/f", []byte("EEEE")); err != nil {
		t.Fatal(err)
	}
	// s2 dies; s1 is the new ring owner and adopts.
	ownerOf := func(string) (string, bool) { return "s1", true }
	if _, _, err := RecoverSegment(s1, store, "s1", []string{"s2"}, ownerOf); err != nil {
		t.Fatal(err)
	}
	want := "AAAABBBBCCCCDDDDEEEE"
	got := make([]byte, len(want))
	if n, err := s1.ReadAt("/f", 0, got); err != nil || n != len(want) {
		t.Fatalf("adopted read: n=%d err=%v", n, err)
	}
	if string(got) != want {
		t.Fatalf("adopted %q, want %q (un-staged tail lost)", got, want)
	}
	if data, _, err := store.ReadObject("", "/f", 0); err != nil || string(data) != want {
		t.Fatalf("restaged object %q err=%v, want %q", data, err, want)
	}
}

// TestRecoverSegmentTruncatesShrunkObject: when reassembly comes out
// shorter than a pre-existing same-key object (a stripe was never
// staged), the restage must not leave the old object's stale tail under
// a larger recorded size.
func TestRecoverSegmentTruncatesShrunkObject(t *testing.T) {
	store, _ := OpenDir(t.TempDir())
	set := []string{"s1", "s2"}
	s1 := fsys.NewShard("s1", 1<<20)
	if err := s1.CreateEntry("/f", false, 2, 4, set); err != nil {
		t.Fatal(err)
	}
	s1.Append("/f", []byte("AAAACCCC"))
	pumpAll(t, NewDrainer("s1", s1, store))
	// s2's stripe (units B, D) was never staged; s2 dies.
	ownerOf := func(string) (string, bool) { return "s1", true }
	if _, _, err := RecoverSegment(s1, store, "s1", []string{"s2"}, ownerOf); err != nil {
		t.Fatal(err)
	}
	// The file truncates at the gap: only unit A survives.
	data, meta, err := store.ReadObject("", "/f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "AAAA" || meta.Size != 4 {
		t.Fatalf("restaged object %q size %d, want %q size 4 (stale tail kept)", data, meta.Size, "AAAA")
	}
	// And a fresh rehydrate sees the clean truncation, not garbage.
	fresh := fsys.NewShard("s1", 1<<20)
	if _, err := Rehydrate(fresh, store, "s1"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	n, err := fresh.ReadAt("/f", 0, got)
	if err != nil || n != 4 || string(got[:n]) != "AAAA" {
		t.Fatalf("rehydrated read: %q n=%d err=%v", got[:n], n, err)
	}
}

// TestRecoverSegmentAdoptsNeverStagedFile: a file with no backing rows
// at all (written, never pumped) must still be adopted by its new
// owner: the owner's own stripes are staged during recovery and the
// reachable prefix is re-laid-out off the dead member, instead of
// leaving a layout that names the dead server forever.
func TestRecoverSegmentAdoptsNeverStagedFile(t *testing.T) {
	store, _ := OpenDir(t.TempDir())
	set := []string{"s1", "s2"}
	s1 := fsys.NewShard("s1", 1<<20)
	if err := s1.CreateEntry("/f", false, 2, 4, set); err != nil {
		t.Fatal(err)
	}
	s1.Append("/f", []byte("AAAACCCC")) // units A, C; s2 held B, D and died unstaged
	ownerOf := func(string) (string, bool) { return "s1", true }
	adopted, _, err := RecoverSegment(s1, store, "s1", []string{"s2"}, ownerOf)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 1 {
		t.Fatalf("adopted = %d, want 1 (never-staged file skipped)", adopted)
	}
	fi, err := s1.Stat("/f")
	if err != nil || fi.Stripes != 1 || len(fi.StripeSet) != 1 || fi.StripeSet[0] != "s1" {
		t.Fatalf("layout still names the dead member: %+v err=%v", fi, err)
	}
	// The reachable prefix (unit A, truncated at s2's missing unit B).
	got := make([]byte, 8)
	n, err := s1.ReadAt("/f", 0, got)
	if err != nil || n != 4 || string(got[:n]) != "AAAA" {
		t.Fatalf("adopted prefix: %q n=%d err=%v", got[:n], n, err)
	}
	if data, _, err := store.ReadObject("s1", "/f", 0); err != nil || string(data) != "AAAA" {
		t.Fatalf("restaged object: %q err=%v", data, err)
	}
}

func TestRecoverSegment(t *testing.T) {
	store, _ := OpenDir(t.TempDir())
	// Three servers each hold a stripe of /f (unit 4, width 3) and have
	// fully staged out. s2 dies; s0 is the new ring owner of /f.
	full := []byte("AAAABBBBCCCCDDDDEE") // units: A->0 B->1 C->2 D->0 E->1
	set := []string{"s0", "s1", "s2"}
	parts := [][]byte{
		append(append([]byte{}, full[0:4]...), full[12:16]...), // s0: A,D
		append(append([]byte{}, full[4:8]...), full[16:18]...), // s1: B,E
		full[8:12], // s2: C
	}
	shards := make([]*fsys.Shard, 3)
	for i, name := range set {
		shards[i] = fsys.NewShard(name, 1<<20)
		if err := shards[i].CreateEntry("/f", false, 3, 4, set); err != nil {
			t.Fatal(err)
		}
		if _, err := shards[i].Append("/f", parts[i]); err != nil {
			t.Fatal(err)
		}
		pumpAll(t, NewDrainer(name, shards[i], store))
	}

	ownerOf := func(path string) (string, bool) { return "s0", true }
	adopted, _, err := RecoverSegment(shards[0], store, "s0", []string{"s2"}, ownerOf)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 1 {
		t.Fatalf("adopted = %d, want 1", adopted)
	}
	// s0 now serves the full content under the new layout.
	got := make([]byte, len(full))
	if n, err := shards[0].ReadAt("/f", 0, got); err != nil || n != len(full) {
		t.Fatalf("adopted read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("adopted content %q, want %q", got, full)
	}
	fi, err := shards[0].Stat("/f")
	if err != nil || fi.Stripes != 1 || len(fi.StripeSet) != 1 || fi.StripeSet[0] != "s0" {
		t.Fatalf("adopted layout: %+v err=%v", fi, err)
	}
	// s1's stale stripe is dropped by its own recovery pass.
	if _, _, err := RecoverSegment(shards[1], store, "s1", []string{"s2"}, ownerOf); err != nil {
		t.Fatal(err)
	}
	if shards[1].Exists("/f") {
		t.Fatal("s1 should have dropped its stale stripe")
	}
	// The backing store converged on the new layout: exactly one object
	// remains for /f, owned by s0, holding the full bytes.
	data, m, err := store.ReadObject("", "/f", 0)
	if err != nil || !bytes.Equal(data, full) {
		t.Fatalf("backing after recovery: %q err=%v", data, err)
	}
	if m.Owner != "s0" || m.Stripes != 1 {
		t.Fatalf("backing meta after recovery: %+v", m)
	}
	if _, _, err := store.ReadObject("", "/f", 1); err == nil {
		t.Fatal("stale stripe 1 object should be deleted")
	}
	if _, _, err := store.ReadObject("", "/f", 2); err == nil {
		t.Fatal("stale stripe 2 object should be deleted")
	}
}
