package backing

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/fsys"
	"themisio/internal/policy"
	"themisio/internal/sched"
)

// Drainer is the stage-out engine of one server: it harvests dirty
// chunks from the shard and submits them to the token scheduler as
// requests of a synthetic background job, so the sharing policy
// arbitrates stage-out bandwidth against foreground I/O exactly like
// any other contending job. The serving plane's workers execute the
// chunks (Task.Run) when the token draw selects the stage-out job.
type Drainer struct {
	self  string
	shard *fsys.Shard
	store Store
	job   policy.JobInfo

	// ChunkBytes caps one drain request's payload (default 1 MiB — the
	// same granularity as a foreground striped write, so the policy
	// interleaves the two at equal grain).
	ChunkBytes int64
	// BatchBytes caps how much dirty data one Pump harvests (default
	// 8 MiB): the engine keeps at most a bounded backlog inside the
	// scheduler, so a huge dirty set cannot crowd the queues.
	BatchBytes int64

	inFlight atomic.Int64
	chunks   atomic.Int64
	bytes    atomic.Int64
	errs     atomic.Int64

	// pumpMu makes one Pump atomic with respect to Dirty(): harvested
	// chunks are counted in-flight before the lock drops, so a
	// concurrent Flush can never observe the window where dirty ranges
	// have left the shard but are not yet accounted for.
	pumpMu sync.Mutex

	mu      sync.Mutex
	lastErr error
	// pendingDeletes are unlink tombstones whose backing delete failed;
	// retried every Pump (a dropped tombstone would resurrect the file
	// on the next restart's rehydrate).
	pendingDeletes []fsys.Tombstone
}

// NewDrainer builds a drain engine for the shard (owned by server self)
// writing back to store.
func NewDrainer(self string, shard *fsys.Shard, store Store) *Drainer {
	return &Drainer{
		self:       self,
		shard:      shard,
		store:      store,
		job:        policy.StageOutJob(self),
		ChunkBytes: 1 << 20,
		BatchBytes: 8 << 20,
	}
}

// Job returns the synthetic background job identity the drainer's
// requests carry.
func (d *Drainer) Job() policy.JobInfo { return d.job }

// Task is one scheduled stage-out unit, carried through the scheduler in
// Request.Tag. The worker that pops the request calls Run.
type Task struct {
	d     *Drainer
	chunk fsys.DirtyChunk
}

// Run stages the chunk out to the backing store. On failure the chunk's
// range is re-marked dirty so a later pump retries it. A chunk whose
// entry was unlinked — or unlinked and re-created — while it sat in the
// scheduler queue is detected by its creation generation and dropped,
// so stale queued data can never resurrect a removed file or leak old
// bytes into a new incarnation of the path.
func (t *Task) Run() error {
	d := t.d
	defer d.inFlight.Add(-1)
	c := t.chunk
	if d.shard.GenOf(c.Path) != c.Gen {
		return nil // entry gone or recreated; its own lifecycle handles staging
	}
	meta := FileMeta{
		Owner: d.self, Path: c.Path,
		IsDir: c.IsDir, Children: c.Children,
		Stripe: c.Stripe, Stripes: c.Stripes,
		StripeUnit: c.Unit, StripeSet: c.Set,
		LayoutGen: c.LayoutGen,
	}
	if err := d.store.WriteRange(meta, c.Off, c.Data); err != nil {
		d.errs.Add(1)
		d.mu.Lock()
		d.lastErr = err
		d.mu.Unlock()
		if d.shard.GenOf(c.Path) == c.Gen {
			d.shard.MarkDirty(c.Path, c.Off, int64(len(c.Data)))
		}
		return err
	}
	if d.shard.GenOf(c.Path) != c.Gen {
		// The entry was unlinked, recreated, or replaced between the
		// check and the write: our write may have polluted the (possibly
		// new) object. Undo our own object — only our own; an unlink's
		// tombstone covers the other stripes, and a recovery adopter's
		// fresh object must survive — and re-mark any live incarnation
		// so a future pump restages it from scratch.
		_ = d.store.DeleteObject(d.self, c.Path, c.Stripe)
		d.shard.MarkDirtyAll(c.Path)
		return nil
	}
	d.chunks.Add(1)
	d.bytes.Add(int64(len(c.Data)))
	return nil
}

// Pump harvests up to BatchBytes of dirty data, propagates pending
// unlinks to the backing store (retrying earlier failures), and submits
// one scheduler request per chunk via push. It returns the number of
// requests submitted. now stamps the requests' arrival (the serving
// plane's clock domain).
func (d *Drainer) Pump(now time.Duration, push func(*sched.Request)) int {
	d.pumpMu.Lock()
	defer d.pumpMu.Unlock()
	d.mu.Lock()
	deletes := append(d.pendingDeletes, d.shard.TakeTombstones()...)
	d.pendingDeletes = nil
	d.mu.Unlock()
	for i, t := range deletes {
		// Delete only this server's own object: every stripe holder
		// processes the same unlink, and a path-wide delete could
		// destroy rows another server (or a newer incarnation of the
		// path) staged since.
		if err := d.store.DeleteObject(d.self, t.Path, t.Stripe); err != nil {
			d.errs.Add(1)
			d.mu.Lock()
			d.lastErr = err
			// Requeue this and every remaining tombstone for retry.
			d.pendingDeletes = append(d.pendingDeletes, deletes[i:]...)
			d.mu.Unlock()
			break
		}
		if d.shard.Exists(t.Path) {
			// The path was recreated before its tombstone drained: the
			// deleted key may have carried the new incarnation's staged
			// row, so restage it from scratch (this same pump's harvest
			// picks the re-mark up).
			d.shard.MarkDirtyAll(t.Path)
		}
	}
	chunks := d.shard.CollectDirty(d.BatchBytes, d.ChunkBytes)
	d.inFlight.Add(int64(len(chunks)))
	for _, c := range chunks {
		op := sched.OpWrite
		if c.IsDir {
			op = sched.OpMkdir // metadata class: rides the IOPS envelope
		}
		push(&sched.Request{
			Job:    d.job,
			Op:     op,
			Bytes:  int64(len(c.Data)),
			Arrive: now,
			Tag:    &Task{d: d, chunk: c},
		})
	}
	return len(chunks)
}

// InFlight returns the number of submitted-but-unexecuted chunks.
func (d *Drainer) InFlight() int64 { return d.inFlight.Load() }

// Dirty reports whether un-staged state remains (dirty ranges, changed
// directories, pending unlinks, or chunks still queued in the
// scheduler). It takes the pump lock, so a concurrent Pump's harvested
// chunks are always either still in the shard or already counted
// in-flight — a flush can never observe the gap between the two.
func (d *Drainer) Dirty() bool {
	d.pumpMu.Lock()
	defer d.pumpMu.Unlock()
	d.mu.Lock()
	pending := len(d.pendingDeletes) > 0
	d.mu.Unlock()
	return d.inFlight.Load() > 0 || pending || d.shard.HasDirty()
}

// Flush pumps and waits until the shard is fully staged out or the
// timeout passes. push and wake are the serving plane's scheduler
// injection and worker wake-up; wait polls because execution happens on
// the workers (through the policy, like all drain traffic — a flush
// forces completeness, not priority).
func (d *Drainer) Flush(now func() time.Duration, push func(*sched.Request), wake func(int), timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := d.Pump(now(), push)
		if n > 0 {
			wake(n)
		}
		if !d.Dirty() {
			return nil
		}
		if time.Now().After(deadline) {
			d.mu.Lock()
			err := d.lastErr
			d.mu.Unlock()
			if err != nil {
				return fmt.Errorf("backing: flush timed out; last error: %w", err)
			}
			return fmt.Errorf("backing: flush timed out with %d chunks in flight", d.InFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Stats reports lifetime drain counters.
func (d *Drainer) Stats() (chunks, bytes, errs int64) {
	return d.chunks.Load(), d.bytes.Load(), d.errs.Load()
}

// LastErr returns the most recent stage-out error (nil if none).
func (d *Drainer) LastErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastErr
}
