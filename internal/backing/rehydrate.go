package backing

import (
	"fmt"

	"themisio/internal/fsys"
)

// Re-hydration: the stage-in half of the lifecycle. Two entry points:
//
//   - Rehydrate restores a server's own staged entries at startup (crash
//     or maintenance restart with the same listen address).
//   - RecoverSegment runs on every survivor when members fail: the new
//     ring owner of each affected path reassembles the full file from
//     the staged stripes and adopts it; other survivors drop their now
//     stale local stripes.

// Rehydrate restores every staged entry owned by self into the shard —
// the crash-restart stage-in. Restored entries are clean (their content
// is, by definition, already staged). Returns the number of entries
// restored.
func Rehydrate(shard *fsys.Shard, store Store, self string) (int, error) {
	manifest, err := store.Manifest()
	if err != nil {
		return 0, err
	}
	n := 0
	// Directories first, so files land in existing parents.
	for _, m := range manifest {
		if m.Owner != self || !m.IsDir {
			continue
		}
		if err := shard.RestoreDir(m.Path, m.Children); err != nil {
			return n, fmt.Errorf("backing: rehydrating %s: %w", m.Path, err)
		}
		n++
	}
	for _, m := range manifest {
		if m.Owner != self || m.IsDir {
			continue
		}
		data, _, err := store.ReadObject(self, m.Path, m.Stripe)
		if err != nil {
			return n, fmt.Errorf("backing: rehydrating %s: %w", m.Path, err)
		}
		if err := shard.RestoreFile(m.Path, data, m.Stripes, m.StripeUnit, m.StripeSet, m.LayoutGen); err != nil {
			return n, fmt.Errorf("backing: rehydrating %s: %w", m.Path, err)
		}
		n++
	}
	shard.ClearDirty()
	return n, nil
}

// holders returns the servers holding an object's file, preferring the
// recorded stripe set (the unstriped server-side default records none,
// so the staging owner stands in).
func holders(m FileMeta) []string {
	if len(m.StripeSet) > 0 {
		return m.StripeSet
	}
	return []string{m.Owner}
}

// stageLocal synchronously stages any un-staged dirty bytes of p held
// by this shard, so recovery never drops or reassembles over a backing
// copy staler than the live data. On failure the bytes are re-marked
// dirty and the error returned (the caller retries the whole pass).
func stageLocal(shard *fsys.Shard, store Store, self, p string) error {
	for _, c := range shard.CollectDirtyPath(p, 1<<20) {
		meta := FileMeta{
			Owner: self, Path: c.Path,
			Stripe: c.Stripe, Stripes: c.Stripes,
			StripeUnit: c.Unit, StripeSet: c.Set,
			LayoutGen: c.LayoutGen,
		}
		if err := store.WriteRange(meta, c.Off, c.Data); err != nil {
			shard.MarkDirty(c.Path, c.Off, int64(len(c.Data)))
			return err
		}
	}
	return nil
}

// StageAffected synchronously stages this shard's un-staged dirty bytes
// of every file that shares a stripe set with a dead member — the first
// phase of failover recovery, run by every survivor as soon as it
// learns of the failure. Adoption (RecoverSegment) runs a couple of λ
// ticks later, so by the time any adopter reassembles, the other
// survivors' freshest bytes are in the backing store with high
// probability (failure sightings spread by gossip within a round or
// two; a strict guarantee would need cross-server coordination).
func StageAffected(shard *fsys.Shard, store Store, self string, dead []string) error {
	var firstErr error
	for _, a := range dead {
		for _, p := range shard.FilesWithServer(a) {
			if err := stageLocal(shard, store, self, p); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// RecoverSegment reconciles the shard with the backing store after the
// given members failed. ownerOf maps a path to its current ring owner
// (the post-failover ring, which no longer contains the dead members).
// For every staged file with a dead holder:
//
//   - If self is the path's new ring owner, the file's full content is
//     reassembled from the staged stripes and adopted locally under a
//     fresh single-stripe layout (set = [self]); the new copy is staged
//     back immediately and the stale stripe objects are deleted, so the
//     backing store converges on the new layout.
//   - Otherwise any stale local stripe of the file is dropped: clients
//     re-learn the new layout from the ring owner's metadata, and the
//     stale copy would only squat on device space.
//
// Returns the number of files adopted and dropped.
func RecoverSegment(shard *fsys.Shard, store Store, self string, dead []string, ownerOf func(path string) (string, bool)) (adopted, dropped int, err error) {
	isDead := make(map[string]bool, len(dead))
	for _, a := range dead {
		isDead[a] = true
	}
	// Drop pass first, from the shard's own records: a local stripe of a
	// file that lost a holder is stale unless this server is the file's
	// new owner. This must not depend on the manifest — the adopting
	// owner rewrites it concurrently. Any un-staged bytes of the stripe
	// are staged before the drop, so the adopter's reassembly sees them
	// (the adopter may race ahead of this stage by a gossip round — the
	// same bounded window as any asynchronous write-back).
	var firstErr error
	for _, a := range dead {
		for _, p := range shard.FilesWithServer(a) {
			if owner, ok := ownerOf(p); ok && owner != self {
				if err := stageLocal(shard, store, self, p); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue // keep the local copy; the caller retries
				}
				if shard.DropStale(p) {
					dropped++
				}
			}
		}
	}
	// Adopt pass: collect every affected path whose new ring owner is
	// self — from the manifest (files staged by anyone) unioned with the
	// shard's own records (files written but never yet staged, which
	// have no manifest rows at all but still need their layout rewritten
	// off the dead member).
	manifest, merr := store.Manifest()
	if merr != nil {
		return 0, dropped, merr
	}
	type layout struct {
		stripes int
		unit    int64
		gen     uint64 // highest staged layout generation for the path
	}
	adopt := map[string]*layout{}
	for _, m := range manifest {
		if m.IsDir {
			continue
		}
		hit := false
		for _, h := range holders(m) {
			if isDead[h] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if owner, ok := ownerOf(m.Path); !ok || owner != self {
			continue // the drop pass handled any stale local stripe
		}
		l := adopt[m.Path]
		if l == nil {
			l = &layout{stripes: 1}
			adopt[m.Path] = l
		}
		if m.Stripes > l.stripes {
			l.stripes = m.Stripes
		}
		if m.StripeUnit > 0 {
			l.unit = m.StripeUnit
		}
		if m.LayoutGen > l.gen {
			l.gen = m.LayoutGen
		}
	}
	for _, a := range dead {
		for _, p := range shard.FilesWithServer(a) {
			if _, ok := adopt[p]; ok {
				continue
			}
			if owner, ok := ownerOf(p); !ok || owner != self {
				continue
			}
			fi, serr := shard.Stat(p)
			if serr != nil {
				continue
			}
			adopt[p] = &layout{stripes: fi.Stripes, unit: fi.StripeUnit, gen: fi.LayoutGen}
		}
	}
	if len(adopt) == 0 {
		return 0, dropped, firstErr
	}
	// Stage fresher local bytes of every adopt path first (this server
	// may itself hold stripes of them), then reload the manifest once:
	// the reload maps each (path, stripe) to its row — owner for
	// targeted reads, size for the shrink check — without re-scanning
	// the store per stripe.
	for path := range adopt {
		if rerr := stageLocal(shard, store, self, path); rerr != nil && firstErr == nil {
			firstErr = rerr
		}
	}
	manifest, merr = store.Manifest()
	if merr != nil {
		return 0, dropped, merr
	}
	type rowKey struct {
		path   string
		stripe int
	}
	rows := map[rowKey]FileMeta{}
	for _, m := range manifest {
		if !m.IsDir {
			rows[rowKey{m.Path, m.Stripe}] = m
		}
	}
	for path, l := range adopt {
		rowOwner := map[int]string{}
		var objs []FileMeta
		for i := 0; i < l.stripes; i++ {
			if m, ok := rows[rowKey{path, i}]; ok {
				rowOwner[i] = m.Owner
				objs = append(objs, m)
			}
		}
		full, rerr := reassembleRows(store, path, l.stripes, l.unit, rowOwner)
		if rerr != nil {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		// The adopted layout's generation supersedes every staged one, so
		// a client still holding the pre-failure layout is detectably
		// stale instead of passing the generation check against the
		// adopter's rewritten geometry.
		newGen := l.gen + 1
		if newGen < 2 {
			newGen = 2
		}
		if rerr := shard.RestoreFile(path, full, 1, l.unit, []string{self}, newGen); rerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("backing: adopting %s: %w", path, rerr)
			}
			continue
		}
		// Stage the adopted copy back synchronously under the new layout,
		// then retire the stale stripe objects: the backing store never
		// loses its only copy (new object first, stale deletes after).
		// When the reassembly came out *shorter* than the pre-existing
		// same-key object (a stripe was missing and truncated the file),
		// the old object is deleted first — an overwrite would leave its
		// stale tail under a larger recorded size.
		if prev, ok := rows[rowKey{path, 0}]; ok && prev.Owner == self && prev.Size > int64(len(full)) {
			if derr := store.DeleteObject(self, path, 0); derr != nil && firstErr == nil {
				firstErr = derr
			}
		}
		meta := FileMeta{
			Owner: self, Path: path, Stripe: 0, Stripes: 1,
			StripeUnit: l.unit, StripeSet: []string{self},
			LayoutGen: newGen,
		}
		if werr := store.WriteRange(meta, 0, full); werr != nil {
			if firstErr == nil {
				firstErr = werr
			}
			// Fall back to the async path: mark dirty so a pump retries.
			shard.MarkDirty(path, 0, int64(len(full)))
		} else {
			for _, m := range objs {
				if m.Owner == self && m.Stripe == 0 {
					continue // the object just (re)written
				}
				_ = store.DeleteObject(m.Owner, m.Path, m.Stripe)
			}
		}
		adopted++
	}
	return adopted, dropped, firstErr
}
