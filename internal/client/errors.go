// The client's one exported error surface. The wire protocol carries
// application errors as strings (a response's Err field), and the
// server-side conditions clients must react to — a migrated layout, a
// torn positional append, a missing entry — were previously matched by
// substring only. The sentinels here give callers errors.Is semantics:
// wireErr classifies an incoming wire error and wraps it so the original
// message (and every Contains-based helper in transport) keeps working
// while errors.Is(err, ErrStaleLayout) and friends also hold, through
// any number of fmt.Errorf("...: %w", err) wrapping layers.
package client

import (
	"context"
	"errors"
	"strings"
	"time"
)

var (
	// ErrInvalidOptions marks a DialOpts refusal: an Options field held
	// a nonsense value (negative stripe count, non-power-of-two stripe
	// unit, negative pool width). Match with errors.Is.
	ErrInvalidOptions = errors.New("client: invalid options")

	// ErrCanceled marks an operation cut short by its context. The
	// original context error stays reachable too: errors.Is against
	// context.Canceled or context.DeadlineExceeded also reports true.
	ErrCanceled = errors.New("client: operation canceled")

	// ErrStaleLayout marks an I/O refused because the file's layout
	// changed under the handle (a rebalance migrated it); re-stat and
	// retry, which File/Client methods do internally within their
	// budgets before surfacing this.
	ErrStaleLayout = errors.New("client: stale file layout")

	// ErrNotExist marks a path with no entry on the servers asked.
	ErrNotExist = errors.New("client: file does not exist")

	// ErrTornAppend marks a positional append refused because it
	// partially overlaps data already landed — the server-side guard
	// against pipelined chunks tearing a stripe.
	ErrTornAppend = errors.New("client: torn positional append")

	// ErrParkedFull marks a positional append refused because the
	// server's reorder buffer was full.
	ErrParkedFull = errors.New("client: append reorder buffer full")
)

// apiError attaches a sentinel to a wire error while preserving the
// original message verbatim: substring matchers (transport.IsStaleLayout
// etc.) and log readers see the server's words, errors.Is sees the kind.
type apiError struct {
	msg  string
	kind error
}

func (e *apiError) Error() string { return e.msg }
func (e *apiError) Unwrap() error { return e.kind }

// wireErr classifies an application error that arrived as a wire string.
// The match is on the server-side message fragments (fsys's sentinel
// texts and transport's stale-layout marker); anything unrecognized
// passes through untouched.
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "stale-layout:") || strings.Contains(msg, "stale file layout"):
		return &apiError{msg: msg, kind: ErrStaleLayout}
	case strings.Contains(msg, "no such file or directory"):
		return &apiError{msg: msg, kind: ErrNotExist}
	case strings.Contains(msg, "partially overlaps landed data"):
		return &apiError{msg: msg, kind: ErrTornAppend}
	case strings.Contains(msg, "reorder buffer full"):
		return &apiError{msg: msg, kind: ErrParkedFull}
	}
	return err
}

// canceledError carries both the exported sentinel and the underlying
// context error, so errors.Is matches ErrCanceled as well as
// context.Canceled / context.DeadlineExceeded.
type canceledError struct{ cause error }

func (e *canceledError) Error() string   { return "client: " + e.cause.Error() }
func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// canceled wraps a context error into the typed form (idempotent).
func canceled(err error) error {
	if isCanceled(err) {
		return err
	}
	return &canceledError{cause: err}
}

// isCanceled reports whether err is the typed cancellation error.
func isCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// isCtxErr reports whether err stems from context cancellation or
// expiry — outcomes that must not fail a server over (the server did
// nothing wrong; the caller gave up).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// budgetDeadline is the wall-clock bound for an internal retry budget:
// now+d — today's hard-coded behavior — unless ctx carries an earlier
// deadline of its own.
func budgetDeadline(ctx context.Context, d time.Duration) time.Time {
	dl := time.Now().Add(d)
	if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
		dl = cd
	}
	return dl
}
