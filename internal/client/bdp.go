// Adaptive stripe-unit sizing: under Options.StripeUnit ==
// AutoStripeUnit, each newly created file's unit is the power of two
// nearest above the client's measured bandwidth-delay product, clamped
// to [64 KiB, 4 MiB]. A unit well under the BDP wastes the pipeline
// (each chunk's ack returns before the next fills the path); one far
// over it defeats striping's parallelism for mid-sized files. The
// estimator feeds on traffic the client is already doing — small
// exchanges (stats, heartbeat-sized control calls) sample the round
// trip, payload-bearing transfers sample bandwidth — so no probe
// traffic is ever generated.
package client

import (
	"sync"
	"time"
)

// bdpEstimator tracks EWMA round-trip time and streaming bandwidth.
// The zero value is ready to use.
type bdpEstimator struct {
	mu  sync.Mutex
	rtt float64 // seconds, over sub-bdpSmallOp exchanges
	bw  float64 // bytes/second, over payload-bearing exchanges
}

const (
	// bdpSmallOp splits RTT samples from bandwidth samples: an exchange
	// moving less than this is dominated by the round trip, not the pipe.
	bdpSmallOp = 4 << 10
	// bdpAlpha is the EWMA weight of the newest sample.
	bdpAlpha = 0.25
	// minAutoUnit / maxAutoUnit clamp the adaptive unit; the cap matches
	// the transport payload pool's largest size class.
	minAutoUnit = 64 << 10
	maxAutoUnit = 4 << 20
)

// observe feeds one completed exchange: bytes is the larger of the
// request and response payloads, d the call's round trip.
func (e *bdpEstimator) observe(bytes int64, d time.Duration) {
	if d <= 0 {
		return
	}
	s := d.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	if bytes < bdpSmallOp {
		if e.rtt == 0 {
			e.rtt = s
		} else {
			e.rtt += bdpAlpha * (s - e.rtt)
		}
		return
	}
	r := float64(bytes) / s
	if e.bw == 0 {
		e.bw = r
	} else {
		e.bw += bdpAlpha * (r - e.bw)
	}
}

// unit returns the power-of-two stripe unit nearest above the measured
// bandwidth-delay product, clamped to [minAutoUnit, maxAutoUnit] —
// DefaultStripeUnit until both estimates have at least one sample.
func (e *bdpEstimator) unit() int64 {
	e.mu.Lock()
	rtt, bw := e.rtt, e.bw
	e.mu.Unlock()
	if rtt <= 0 || bw <= 0 {
		return DefaultStripeUnit
	}
	bdp := bw * rtt
	u := int64(minAutoUnit)
	for u < maxAutoUnit && float64(u) < bdp {
		u <<= 1
	}
	return u
}

// stripeUnit is the unit recorded into newly created files: the
// configured option, or the live BDP estimate under AutoStripeUnit.
func (c *Client) stripeUnit() int64 {
	if c.autoUnit {
		return c.bdp.unit()
	}
	return c.opts.StripeUnit
}
