package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"themisio/internal/transport"
)

// TestZeroCopyHammer drives the pooled-payload path end to end with
// lease poisoning armed: several writers each stream a deterministic
// pattern through multiple Writes (the first rides the pre-capability
// fallback, the rest the pipelined positional path), then read it all
// back through the leased read replies. Any alias held past Release —
// on either side of the wire — corrupts a pattern byte and fails the
// compare; under -race the reuse also trips the detector.
func TestZeroCopyHammer(t *testing.T) {
	transport.SetLeasePoison(true)
	defer transport.SetLeasePoison(false)
	addrs := startServers(t, 4)

	const (
		writers   = 4
		perWrite  = 200 << 10 // crosses the 64 KiB units and the 8 KiB sg threshold
		numWrites = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs <- func() error {
				c, err := DialOpts(testJob(fmt.Sprintf("zc%d", w)), addrs, Options{
					Stripes:        4,
					StripeUnit:     64 << 10,
					ConnsPerServer: 4,
				})
				if err != nil {
					return err
				}
				defer c.Close()
				path := fmt.Sprintf("/zc/f%d", w)
				if err := c.Mkdir("/zc"); err != nil && w != 0 {
					// Racing mkdirs: only one creator wins; that's fine.
					_ = err
				}
				fd, err := c.OpenFd(path, true)
				if err != nil {
					return err
				}
				want := make([]byte, 0, perWrite*numWrites)
				for i := 0; i < numWrites; i++ {
					chunk := make([]byte, perWrite)
					for j := range chunk {
						chunk[j] = byte((len(want)+j)*31 + w)
					}
					if n, err := c.Write(fd, chunk); err != nil || n != perWrite {
						return fmt.Errorf("write %d: n=%d err=%v", i, n, err)
					}
					want = append(want, chunk...)
				}
				if _, err := c.Lseek(fd, 0, 0); err != nil {
					return err
				}
				// Read back in chunks misaligned with both the stripe
				// unit and the write sizes.
				got := make([]byte, 0, len(want))
				buf := make([]byte, 150<<10)
				for len(got) < len(want) {
					n, err := c.Read(fd, buf)
					if err != nil {
						return fmt.Errorf("read at %d: %v", len(got), err)
					}
					if n == 0 {
						return fmt.Errorf("early EOF at %d of %d", len(got), len(want))
					}
					got = append(got, buf[:n]...)
				}
				if !bytes.Equal(got, want) {
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("writer %d: corruption at byte %d: got %#x want %#x", w, i, got[i], want[i])
						}
					}
				}
				return nil
			}()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// The BDP estimator: default before samples, EWMA convergence, and the
// power-of-two clamp of the derived unit.
func TestBDPEstimator(t *testing.T) {
	var e bdpEstimator
	if e.unit() != DefaultStripeUnit {
		t.Fatalf("unsampled estimator must fall back to the default, got %d", e.unit())
	}
	e.observe(100, time.Millisecond) // small op → RTT sample only
	if e.unit() != DefaultStripeUnit {
		t.Fatal("RTT alone must not produce a unit")
	}
	// 1 GB/s over a 1 ms RTT → BDP 1 MB → unit 1 MiB (pow2 above 10^6).
	for i := 0; i < 50; i++ {
		e.observe(1<<20, time.Duration(float64(time.Second)*float64(1<<20)/1e9))
		e.observe(100, time.Millisecond)
	}
	if u := e.unit(); u != 1<<20 {
		t.Fatalf("1 GB/s × 1 ms should size a 1 MiB unit, got %d", u)
	}
	// A fat long pipe clamps at the top class…
	var hi bdpEstimator
	hi.observe(100, 100*time.Millisecond)
	hi.observe(64<<20, 100*time.Millisecond)
	if u := hi.unit(); u != maxAutoUnit {
		t.Fatalf("huge BDP must clamp to %d, got %d", maxAutoUnit, u)
	}
	// …and a thin short one at the bottom.
	var lo bdpEstimator
	lo.observe(100, 10*time.Microsecond)
	lo.observe(8<<10, 8*time.Millisecond)
	if u := lo.unit(); u != minAutoUnit {
		t.Fatalf("tiny BDP must clamp to %d, got %d", minAutoUnit, u)
	}
	// Units are powers of two in range.
	for _, u := range []int64{e.unit(), hi.unit(), lo.unit()} {
		if u&(u-1) != 0 || u < minAutoUnit || u > maxAutoUnit {
			t.Fatalf("unit %d is not a clamped power of two", u)
		}
	}
}

// scatterLocal is the inverse of the round-robin split: reconstructing
// a random global window from random per-stripe chunks must reproduce
// the original bytes exactly.
func TestScatterLocalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nStripes := 1 + rng.Intn(5)
		unit := int64(1 + rng.Intn(200))
		total := int64(rng.Intn(5000))
		global := make([]byte, total)
		for i := range global {
			global[i] = byte(rng.Int())
		}
		// Build each stripe's local image by the forward round-robin.
		locals := make([][]byte, nStripes)
		for off := int64(0); off < total; off++ {
			gu := off / unit
			idx := int(gu % int64(nStripes))
			locals[idx] = append(locals[idx], global[off])
		}
		// Pick a random global window and rebuild it via scatterLocal
		// from randomly sized local chunks.
		g0 := int64(rng.Intn(int(total + 1)))
		g1 := g0 + int64(rng.Intn(int(total-g0+1)))
		got := make([]byte, g1-g0)
		for idx := 0; idx < nStripes; idx++ {
			for a := int64(0); a < int64(len(locals[idx])); {
				n := int64(1 + rng.Intn(300))
				if a+n > int64(len(locals[idx])) {
					n = int64(len(locals[idx])) - a
				}
				scatterLocal(got, g0, g1, idx, nStripes, unit, a, locals[idx][a:a+n])
				a += n
			}
		}
		if !bytes.Equal(got, global[g0:g1]) {
			t.Fatalf("trial %d (stripes=%d unit=%d total=%d window=[%d,%d)): scatter mismatch",
				trial, nStripes, unit, total, g0, g1)
		}
	}
}

// spanTail slices the last need bytes out of a segment list without
// copying — the repair path's top-up source.
func TestSpanTail(t *testing.T) {
	base := []byte("abcdefghij")
	segs := [][]byte{base[0:3], base[3:4], base[4:10]} // abc | d | efghij
	for need := int64(0); need <= 10; need++ {
		tail := spanTail(segs, need)
		var flat []byte
		for _, s := range tail {
			flat = append(flat, s...)
		}
		if want := base[10-need:]; !bytes.Equal(flat, want) {
			t.Fatalf("need=%d: got %q want %q", need, flat, want)
		}
		// Zero-copy: every returned segment aliases the original base.
		for _, s := range tail {
			if len(s) > 0 && &s[0] != &base[10-len(flat):][0] && !aliases(base, s) {
				t.Fatalf("need=%d: segment does not alias the source", need)
			}
		}
	}
	if spanTail(segs, 99) == nil {
		t.Fatal("over-asking returns the whole span, not nil")
	}
}

// aliases reports whether sub's backing array lies within base's.
func aliases(base, sub []byte) bool {
	if len(sub) == 0 {
		return true
	}
	for i := range base {
		if &base[i] == &sub[0] {
			return true
		}
	}
	return false
}
