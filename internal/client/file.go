package client

import (
	"context"
	"fmt"
	"io"
)

// File is a handle to an open ThemisIO file. It implements
// io.ReadWriteSeeker and io.Closer over the client's striped data
// plane, and each method has a context-honoring variant for callers
// that need deadlines or cancellation. A File is not safe for
// concurrent use (it carries one offset, like a POSIX descriptor); open
// the path again for a second independent handle.
type File struct {
	c    *Client
	fd   int
	path string
}

// Path returns the path the handle was opened on.
func (f *File) Path() string { return f.path }

// Fd returns the underlying integer descriptor — interoperability with
// the deprecated int-fd API during migration.
func (f *File) Fd() int { return f.fd }

// Read reads up to len(p) bytes from the handle's offset, returning
// io.EOF at end of file (the io.Reader contract; the deprecated int-fd
// Read returned 0, nil instead).
func (f *File) Read(p []byte) (int, error) {
	return f.ReadContext(context.Background(), p)
}

// ReadContext is Read honoring ctx: cancellation mid-read abandons the
// in-flight chunk RPCs and returns ErrCanceled.
func (f *File) ReadContext(ctx context.Context, p []byte) (int, error) {
	h, err := f.c.handle(f.fd)
	if err != nil {
		return 0, err
	}
	n, err := f.c.read(ctx, h, p)
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

// Write appends len(p) bytes to the file through the striped data
// plane. On a short write the returned count is the durable prefix, so
// a POSIX-style retry of the remainder is correct.
func (f *File) Write(p []byte) (int, error) {
	return f.WriteContext(context.Background(), p)
}

// WriteContext is Write honoring ctx. The seal-window retry budget
// tightens to ctx's deadline; cancellation returns ErrCanceled.
func (f *File) WriteContext(ctx context.Context, p []byte) (int, error) {
	h, err := f.c.handle(f.fd)
	if err != nil {
		return 0, err
	}
	return f.c.write(ctx, h, p)
}

// Seek repositions the handle (io.Seeker whence values). Seeking
// relative to the end stats the file.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.SeekContext(context.Background(), offset, whence)
}

// SeekContext is Seek honoring ctx (only SeekEnd performs I/O).
func (f *File) SeekContext(ctx context.Context, offset int64, whence int) (int64, error) {
	h, err := f.c.handle(f.fd)
	if err != nil {
		return 0, err
	}
	if whence < io.SeekStart || whence > io.SeekEnd {
		return 0, fmt.Errorf("client: bad whence %d", whence)
	}
	return f.c.lseek(ctx, h, offset, whence)
}

// Close releases the handle. The client connection stays up; Close on
// the Client tears that down.
func (f *File) Close() error { return f.c.CloseFd(f.fd) }
