// Package client is the ThemisIO client library: the POSIX-compliant
// interface of §4.4 (open/close/read/write/lseek/stat/opendir/readdir/
// unlink) over the wire protocol, with job metadata embedded in every
// request and periodic heartbeats to every server (§4.1). On a real
// deployment these entry points are reached by intercepting the libc
// symbols (override/trampoline, §4.4); here they are called directly —
// the arbitration problem is identical either way.
//
// With multiple servers the client places each path on servers via the
// same consistent hash the servers' file system uses. Files may be
// striped: data is split into stripe-unit chunks laid round-robin
// across the path's stripe set, and reads and writes fan out to the
// stripe servers in parallel, so one client's aggregate bandwidth
// scales with the server count. A server that stops answering is
// removed from the client's ring, so its segment reassigns and I/O
// continues on the survivors (the client half of failover).
package client

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/chash"
	"themisio/internal/cluster"
	"themisio/internal/fsys"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// Options tunes a client beyond the defaults. DialOpts validates: a
// negative Stripes, a negative non-sentinel StripeUnit or ConnsPerServer,
// or a positive StripeUnit that is not a power of two are refused with
// an error matching ErrInvalidOptions (zero always means "default" —
// the zero Options value stays valid).
type Options struct {
	// Stripes is the number of servers each file's data spans (clipped
	// to the live server count; zero means 1, the unstriped placement
	// of the seed implementation; negative is refused).
	Stripes int
	// StripeUnit is the bytes written to one server before moving to
	// the next (zero selects DefaultStripeUnit; AutoStripeUnit sizes
	// the unit of each newly created file to the measured
	// bandwidth-delay product instead). Must be a power of two: the
	// round-robin arithmetic and the BDP unit classes both assume it,
	// and the old code silently accepted (then mis-measured) other
	// values.
	StripeUnit int64
	// ConnsPerServer is the connection-pool width per server: how many
	// TCP connections the client multiplexes its traffic to one server
	// over. Writes pin each (file, stripe) to one slot so per-stripe
	// append order is preserved; read chunks spread across all slots.
	// Zero selects DefaultConnsPerServer, AutoConnsPerServer scales
	// with the stripe width, 1 reproduces the old single-connection
	// behavior; other negatives are refused.
	ConnsPerServer int
	// LegacyGob forces the gob wire codec instead of the default
	// length-prefixed binary codec — the escape hatch for servers too
	// old to auto-detect the binary preamble.
	LegacyGob bool
}

// DefaultStripeUnit is the stripe chunk size, matching the server-side
// file system's unit.
const DefaultStripeUnit = 1 << 20

// AutoStripeUnit as Options.StripeUnit sizes each created file's
// stripe unit from the client's measured bandwidth-delay product at
// open time (see bdp.go). The chosen unit is recorded in the file's
// metadata like any explicit one, so readers need no negotiation.
const AutoStripeUnit int64 = -1

// DefaultConnsPerServer is the pool width when Options.ConnsPerServer
// is zero.
const DefaultConnsPerServer = 4

// AutoConnsPerServer as Options.ConnsPerServer sizes each server's pool
// to the stripe width (clamped to [1, maxAutoConns]): a file that fans
// out over k stripes tends to put k concurrent chunk streams on each
// server once several files are in flight.
const AutoConnsPerServer = -1

// maxAutoConns caps the AutoConnsPerServer pool width.
const maxAutoConns = 8

// validateOptions refuses nonsense option values with typed usage
// errors instead of the old silent clamps. Zero always means "default".
func validateOptions(opts Options) error {
	if opts.Stripes < 0 {
		return fmt.Errorf("client: %w: Stripes %d is negative (0 means default)", ErrInvalidOptions, opts.Stripes)
	}
	if opts.StripeUnit < 0 && opts.StripeUnit != AutoStripeUnit {
		return fmt.Errorf("client: %w: StripeUnit %d is negative (0 means default, %d means auto)",
			ErrInvalidOptions, opts.StripeUnit, AutoStripeUnit)
	}
	if u := opts.StripeUnit; u > 0 && u&(u-1) != 0 {
		return fmt.Errorf("client: %w: StripeUnit %d is not a power of two", ErrInvalidOptions, u)
	}
	if cps := opts.ConnsPerServer; cps < 0 && cps != AutoConnsPerServer {
		return fmt.Errorf("client: %w: ConnsPerServer %d is negative (0 means default, %d means auto)",
			ErrInvalidOptions, cps, AutoConnsPerServer)
	}
	return nil
}

// Client is one application process's connection to the burst buffer.
type Client struct {
	job  policy.JobInfo
	ring *chash.Ring
	opts Options
	// autoUnit marks Options.StripeUnit == AutoStripeUnit: each created
	// file's unit comes from bdp's live estimate instead of the option.
	autoUnit bool
	bdp      bdpEstimator

	// connsPerServer is the resolved pool width (defaults and the auto
	// sentinel applied at dial time).
	connsPerServer int

	mu       sync.Mutex
	pools    map[string]*transport.Pool
	draining map[string]bool // members to avoid for new placement
	// unreachable remembers when a dial or call to a member last
	// failed: recorded stripe sets keep naming dead members, and
	// re-dialing one (2s timeout) on every stat would stall the client.
	// ensurePool fast-fails inside the cooldown; a member that comes
	// back (restart, rejoin) is re-dialed after it.
	unreachable map[string]time.Time
	fds         map[int]*fileHandle
	next        int
	seq         atomic.Uint64
	// closed stops ensurePool from registering new pools after Close —
	// the membership refresh dials joiners asynchronously, and a dial
	// completing after teardown would leak its sockets.
	closed atomic.Bool

	hbStop chan struct{}
	hbDone chan struct{}
}

type fileHandle struct {
	path string
	off  int64
	// size is the known global size — the append position for striped
	// writes. It is set at Open and advanced by Write; extensions made
	// through other handles become visible on reopen.
	size    int64
	stripes int      // the file's stripe width (from metadata, not config)
	unit    int64    // the file's stripe unit (from metadata, not config)
	set     []string // the file's recorded stripe servers, in order
	// layoutGen is the layout generation the cached set was read under;
	// every read and write echoes it, so a server that rebalanced the
	// file answers stale-layout instead of serving re-striped bytes, and
	// the handle re-stats and retries (see refreshHandle).
	layoutGen uint64
	// damaged marks a handle whose striped write could not be completed
	// or repaired; further writes would interleave wrongly, so they are
	// refused instead of silently corrupting the file.
	damaged bool
}

// dialConn dials one raw data connection to addr — the pool's dial
// function (transport.Pool owns the multiplexing that the old
// serverConn type used to).
func dialConn(addr string, legacyGob bool) (*transport.Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	if legacyGob {
		return transport.NewConn(raw), nil
	}
	return transport.NewBinaryConn(raw), nil
}

// newPool builds the connection pool for addr: slot 0 dials eagerly (so
// an unreachable server fails here, with the same semantics one dial
// had), the rest lazily.
func (c *Client) newPool(addr string) (*transport.Pool, error) {
	legacy := c.opts.LegacyGob
	return transport.NewPool(addr, c.connsPerServer, pipelineWindow,
		func(a string) (*transport.Conn, error) { return dialConn(a, legacy) })
}

// Dial connects to the given servers under the job identity with
// default options (no striping). The client begins heartbeating
// immediately so the servers' job monitors see the job before its
// first I/O.
func Dial(job policy.JobInfo, servers []string) (*Client, error) {
	return DialOpts(job, servers, Options{})
}

// DialOpts connects with explicit striping and pooling options,
// refusing invalid option values (see Options and ErrInvalidOptions).
func DialOpts(job policy.JobInfo, servers []string, opts Options) (*Client, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: no servers")
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if opts.Stripes == 0 {
		opts.Stripes = 1
	}
	autoUnit := opts.StripeUnit == AutoStripeUnit
	if opts.StripeUnit <= 0 {
		// Auto keeps the default as its no-samples fallback and as the
		// unit assumed for legacy files whose metadata records none.
		opts.StripeUnit = DefaultStripeUnit
	}
	switch opts.ConnsPerServer {
	case 0:
		opts.ConnsPerServer = DefaultConnsPerServer
	case AutoConnsPerServer:
		opts.ConnsPerServer = opts.Stripes
		if opts.ConnsPerServer < 1 {
			opts.ConnsPerServer = 1
		}
		if opts.ConnsPerServer > maxAutoConns {
			opts.ConnsPerServer = maxAutoConns
		}
	}
	c := &Client{
		autoUnit:       autoUnit,
		job:            job,
		ring:           chash.New(0),
		opts:           opts,
		connsPerServer: opts.ConnsPerServer,
		pools:          map[string]*transport.Pool{},
		draining:       map[string]bool{},
		unreachable:    map[string]time.Time{},
		fds:            map[int]*fileHandle{},
		next:           3, // fds 0-2 are taken, as in POSIX
		hbStop:         make(chan struct{}),
		hbDone:         make(chan struct{}),
	}
	for _, addr := range servers {
		p, err := c.newPool(addr)
		if err != nil {
			c.closePools()
			return nil, err
		}
		c.pools[addr] = p
		c.ring.Add(addr)
	}
	c.heartbeatAll()
	go c.heartbeatLoop()
	return c, nil
}

func (c *Client) closePools() {
	for _, p := range c.pools {
		p.Close()
	}
}

// Close notifies servers and tears down connections (§4.2: "when a
// client exits, it notifies the ThemisIO servers to destroy the
// corresponding mapping entry").
func (c *Client) Close() {
	c.closed.Store(true)
	close(c.hbStop)
	<-c.hbDone
	// Copy under the lock, send after: a goodbye to a wedged server
	// must not hold c.mu and block every other client method.
	c.mu.Lock()
	pools := make([]*transport.Pool, 0, len(c.pools))
	for _, p := range c.pools {
		pools = append(pools, p)
	}
	c.mu.Unlock()
	for _, p := range pools {
		p.ForEach(func(mc *transport.MuxConn) {
			_ = mc.Send(&transport.Request{Type: transport.MsgBye, Job: c.job})
		})
		p.Close()
	}
}

// Servers returns the addresses the client still considers live.
func (c *Client) Servers() []string { return c.ring.Nodes() }

func (c *Client) heartbeatLoop() {
	defer close(c.hbDone)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
			c.heartbeatAll()
			c.refreshMembership()
		}
	}
}

// refreshMembership asks one live server for the fabric's membership
// view: failed and left members are dropped from the placement ring
// proactively (not just after an I/O error), and draining members are
// remembered so new files avoid them.
func (c *Client) refreshMembership() {
	c.mu.Lock()
	var any *transport.Pool
	for _, p := range c.pools {
		any = p
		break
	}
	c.mu.Unlock()
	if any == nil {
		return
	}
	resp, err := c.poolCall(context.Background(), any, &transport.Request{
		Type: transport.MsgClusterStatus, Seq: c.seq.Add(1), Job: c.job,
	})
	if err != nil {
		c.markFailed(any.Addr())
		return
	}
	for _, m := range cluster.FromRecords(resp.Members) {
		switch m.State {
		case cluster.StateFailed, cluster.StateLeft:
			c.markFailed(m.Addr)
		case cluster.StateDraining:
			c.mu.Lock()
			c.draining[m.Addr] = true
			c.mu.Unlock()
		case cluster.StateAlive:
			c.mu.Lock()
			_, have := c.pools[m.Addr]
			delete(c.draining, m.Addr)
			c.mu.Unlock()
			// A member this client has never dialed is a scale-out join:
			// connect and extend the placement ring, so new files spread
			// onto the added capacity and migrated layouts that name the
			// new member stay reachable. The dial runs off this loop — a
			// member the fabric gossips alive but this client cannot
			// reach (asymmetric partition) must not stall the heartbeat
			// cadence for the healthy servers; ensurePool's cooldown
			// keeps the retries bounded.
			if !have {
				go func(addr string) { _, _ = c.ensurePool(addr) }(m.Addr)
			}
		}
	}
}

// dialCooldown is how long ensureConn fast-fails an address after a
// failed dial or a failed-over connection, so a dead member named in
// recorded stripe sets cannot stall every stat behind a dial timeout.
const dialCooldown = 3 * time.Second

// ensurePool returns the live connection pool for addr, building it on
// first use — recorded stripe sets and the membership view may name
// servers this client was never configured with (members that joined
// after the client dialed in). Recently unreachable members fail fast.
func (c *Client) ensurePool(addr string) (*transport.Pool, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("client: closed")
	}
	c.mu.Lock()
	p, ok := c.pools[addr]
	if ok {
		c.mu.Unlock()
		return p, nil
	}
	if t, bad := c.unreachable[addr]; bad && time.Since(t) < dialCooldown {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: %s recently unreachable", addr)
	}
	c.mu.Unlock()
	p, err := c.newPool(addr)
	if err != nil {
		c.mu.Lock()
		c.unreachable[addr] = time.Now()
		c.mu.Unlock()
		return nil, fmt.Errorf("client: no live connection to %s: %w", addr, err)
	}
	c.mu.Lock()
	delete(c.unreachable, addr)
	if exist, ok := c.pools[addr]; ok {
		c.mu.Unlock()
		p.Close()
		return exist, nil
	}
	if c.closed.Load() {
		// Close ran while we dialed; registering now would leak the
		// sockets past teardown.
		c.mu.Unlock()
		p.Close()
		return nil, fmt.Errorf("client: closed")
	}
	c.pools[addr] = p
	c.mu.Unlock()
	c.ring.Add(addr)
	return p, nil
}

// poolCall performs one control-path exchange on a pool: an already-open
// connection is picked (control traffic never stalls behind a lazy
// dial) and the request rides it under ctx.
func (c *Client) poolCall(ctx context.Context, p *transport.Pool, req *transport.Request) (*transport.Response, error) {
	mc, err := p.Pick()
	if err != nil {
		return nil, err
	}
	return mc.Call(ctx, req)
}

func (c *Client) heartbeatAll() {
	c.mu.Lock()
	pools := make([]*transport.Pool, 0, len(c.pools))
	for _, p := range c.pools {
		pools = append(pools, p)
	}
	c.mu.Unlock()
	for _, p := range pools {
		// Every open connection of the pool heartbeats: the server's job
		// monitor only needs one, but each connection's liveness is only
		// proven by traffic on that connection. The server is failed over
		// when no connection could carry the heartbeat — one bad slot
		// among healthy ones is the pool's problem (cooldown + fallback),
		// not a server failure.
		sent := 0
		p.ForEach(func(mc *transport.MuxConn) {
			if err := mc.Send(&transport.Request{
				Type: transport.MsgHeartbeat,
				Seq:  c.seq.Add(1),
				Job:  c.job,
			}); err == nil {
				sent++
			}
		})
		if sent == 0 {
			c.markFailed(p.Addr())
		}
	}
}

// markFailed drops a server the client could not reach: its whole
// connection pool closes and its ring segment reassigns to the
// survivors, mirroring the fabric's failover. Subsequent placement
// follows the shrunken ring.
func (c *Client) markFailed(addr string) {
	c.mu.Lock()
	p, ok := c.pools[addr]
	if ok {
		delete(c.pools, addr)
	}
	c.unreachable[addr] = time.Now()
	c.mu.Unlock()
	if ok {
		p.Close()
		c.ring.Remove(addr)
	}
}

// stripeSet returns the addresses holding a width-stripes file's data,
// in stripe order, when no recorded set is available (legacy files).
func (c *Client) stripeSet(path string, stripes int) []string {
	if stripes < 1 {
		stripes = 1
	}
	return c.ring.LookupN(path, stripes)
}

// createSet picks the stripe servers for a new file: the ring walk,
// skipping draining members when enough non-draining servers remain.
// The chosen set is recorded in the file metadata, so every later
// reader follows it regardless of how the ring drifts afterwards.
func (c *Client) createSet(path string) []string {
	c.mu.Lock()
	nDraining := len(c.draining)
	c.mu.Unlock()
	want := c.opts.Stripes
	candidates := c.ring.LookupN(path, want+nDraining)
	var out []string
	for _, addr := range candidates {
		c.mu.Lock()
		drain := c.draining[addr]
		c.mu.Unlock()
		if !drain && len(out) < want {
			out = append(out, addr)
		}
	}
	if len(out) == 0 {
		return candidates[:min(want, len(candidates))]
	}
	return out
}

// callAddr sends one request to one server — dialing it on first use —
// failing the server over on a transport-level error. Context
// cancellation is not a server failure: the exchange is abandoned (the
// late response's frame still returns to the lease pool) and the typed
// ErrCanceled surfaces instead.
func (c *Client) callAddr(ctx context.Context, addr, path string, req *transport.Request) (*transport.Response, error) {
	p, err := c.ensurePool(addr)
	if err != nil {
		return nil, err
	}
	mc, err := p.Pick()
	if err != nil {
		c.markFailed(addr)
		return nil, err
	}
	req.Seq = c.seq.Add(1)
	req.Job = c.job
	req.Path = path
	start := time.Now()
	resp, err := mc.Call(ctx, req)
	if err != nil {
		if isCtxErr(err) {
			return nil, canceled(err)
		}
		c.markFailed(addr)
		return nil, err
	}
	// Feed the bandwidth-delay estimator: a small exchange samples the
	// round trip, a payload-bearing one samples bandwidth.
	bytes := int64(len(req.Data))
	if resp.N > bytes {
		bytes = resp.N
	}
	c.bdp.observe(bytes, time.Since(start))
	return resp, nil
}

// call routes a request to the path's owner server, retrying on the
// reassigned owner when the first choice has failed. Application errors
// (ErrNotExist and friends) surface immediately; only transport-level
// failures trigger re-routing, and cancellation stops the retries.
func (c *Client) call(ctx context.Context, path string, req *transport.Request) (*transport.Response, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, canceled(err)
		}
		addr, ok := c.ring.Lookup(path)
		if !ok {
			return nil, fmt.Errorf("client: no servers left")
		}
		resp, err := c.callAddr(ctx, addr, path, req)
		if err != nil {
			if isCanceled(err) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if resp.Err != "" {
			return nil, wireErr(resp.Error())
		}
		return resp, nil
	}
	return nil, lastErr
}

// fanOut sends one request per address in parallel and collects the
// responses in address order. A transport-level error on any server
// fails that server over and reports the error; an application error in
// any response is returned as-is (classified with the exported
// sentinels).
func (c *Client) fanOut(ctx context.Context, addrs []string, path string, mk func(i int) *transport.Request) ([]*transport.Response, error) {
	resps := make([]*transport.Response, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		req := mk(i)
		if req == nil {
			continue
		}
		wg.Add(1)
		go func(i int, addr string, req *transport.Request) {
			defer wg.Done()
			resps[i], errs[i] = c.callAddr(ctx, addr, path, req)
		}(i, addr, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return resps, err
		}
	}
	for _, r := range resps {
		if r != nil && r.Err != "" {
			return resps, wireErr(r.Error())
		}
	}
	return resps, nil
}

// Open opens an existing file (create=false) or creates it, returning a
// *File handle. Creation places the file on every server of its stripe
// set — recording the stripe width in the file metadata — so striped
// appends land locally and any client can later discover the layout.
// Opening reads the width back from the metadata, so clients with
// different striping configurations interoperate.
func (c *Client) Open(path string, create bool) (*File, error) {
	return c.OpenContext(context.Background(), path, create)
}

// OpenContext is Open honoring ctx: cancellation during the create
// fan-out or the layout stat returns ErrCanceled.
func (c *Client) OpenContext(ctx context.Context, path string, create bool) (*File, error) {
	fd, err := c.open(ctx, path, create)
	if err != nil {
		return nil, err
	}
	return &File{c: c, fd: fd, path: path}, nil
}

// OpenFd is the int-descriptor Open.
//
// Deprecated: use Open (or OpenContext), which returns a *File
// implementing io.ReadWriteSeeker and io.Closer.
func (c *Client) OpenFd(path string, create bool) (int, error) {
	return c.open(context.Background(), path, create)
}

func (c *Client) open(ctx context.Context, path string, create bool) (int, error) {
	if create {
		set := c.createSet(path)
		if len(set) == 0 {
			return -1, fmt.Errorf("client: no servers left")
		}
		unit := c.stripeUnit()
		if _, err := c.fanOut(ctx, set, path, func(int) *transport.Request {
			return &transport.Request{
				Type:       transport.MsgCreate,
				Stripes:    len(set),
				StripeUnit: unit,
				StripeSet:  set,
			}
		}); err != nil {
			return -1, err
		}
	}
	size, _, layout, err := c.statFull(ctx, path)
	if err != nil {
		return -1, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fd := c.next
	c.next++
	c.fds[fd] = &fileHandle{
		path: path, size: size,
		stripes: layout.stripes, unit: layout.unit, set: layout.set,
		layoutGen: layout.gen,
	}
	return fd, nil
}

func (c *Client) handle(fd int) (*fileHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.fds[fd]
	if !ok {
		return nil, fmt.Errorf("client: bad file descriptor %d", fd)
	}
	return h, nil
}

// Write appends len(p) bytes to the file (the server store is
// append-structured; sequential writes are the burst-buffer pattern).
// With striping, the data splits into stripe-unit chunks laid
// round-robin over the stripe set; each server's chunks are contiguous
// in its local stripe, so the whole write is at most one parallel
// request per stripe server.
//
// A stale-layout answer means join-time rebalancing is moving (or has
// moved) the file under the handle: the migration seal guarantees that
// either nothing or a contiguous prefix of this write survived the
// cutover, so the handle re-stats, measures the surviving prefix from
// the fresh global size, and appends the remainder under the rewritten
// layout. While the file is still sealed — the copy phase, before any
// cutover — the re-stat returns the old layout and the retry is
// refused again, so the write keeps retrying until the cutover lands
// or writeRetryTimeout passes; on giving up it reports how much of p
// is durably in the file (the handle's size already accounts for it),
// so a POSIX-style short-write retry of the remainder is correct.
func (c *Client) Write(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	return c.write(context.Background(), h, p)
}

// write is the striped append shared by the int-fd and *File APIs. The
// seal-window retry budget is writeRetryTimeout, tightened to ctx's own
// deadline when that is sooner; cancellation mid-retry returns
// ErrCanceled with the durable prefix reported like any short write.
func (c *Client) write(ctx context.Context, h *fileHandle, p []byte) (int, error) {
	if h.damaged {
		return 0, fmt.Errorf("client: %s: earlier striped write failed mid-stripe; reopen after repair", h.path)
	}
	err := c.writeOnce(ctx, h, p)
	if err == nil {
		return len(p), nil
	}
	if !retryableLayout(err) {
		return 0, err
	}
	prev := h.size
	deadline := budgetDeadline(ctx, writeRetryTimeout)
	for {
		if cerr := ctx.Err(); cerr != nil {
			return 0, canceled(cerr)
		}
		if rerr := c.refreshHandle(ctx, h); rerr != nil {
			return 0, fmt.Errorf("client: %s: layout changed and re-stat failed: %w", h.path, rerr)
		}
		landed := h.size - prev
		if landed < 0 && !time.Now().After(deadline) {
			// A degraded stat during a stalled partial cutover can
			// under-report the size (an uncommitted target's bytes sit
			// in its invisible pending buffer); that heals when the
			// cutover lands, so keep re-statting instead of condemning
			// the handle.
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if landed < 0 || landed > int64(len(p)) {
			// The size moved by more than this write — another writer
			// raced the handle, which the offset bookkeeping cannot
			// survive (true before this change too).
			h.damaged = true
			return 0, fmt.Errorf("client: %s: size moved by %d during layout change; reopen", h.path, landed)
		}
		if landed == int64(len(p)) {
			h.off = h.size
			return len(p), nil
		}
		err = c.writeOnce(ctx, h, p[landed:])
		if err == nil {
			return len(p), nil
		}
		if !retryableLayout(err) || time.Now().After(deadline) {
			return int(landed), err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// retryableLayout matches the transient conditions of a mid-migration
// file: the typed stale-layout answer, and a not-exist from a server
// the layout names — a commit that has not landed yet keeps the new
// stripe in an invisible pending buffer, so the entry appears briefly
// absent on that holder. A handle is only operated on after a
// successful open, so not-exist mid-operation is a routing transient
// (or a genuine unlink, which surfaces once the retry budget passes).
func retryableLayout(err error) bool {
	return transport.IsStaleLayout(err) || transport.IsNotExist(err)
}

// writeRetryTimeout bounds how long a write blocks waiting for a
// mid-migration file's cutover (the copy phase is policy-throttled, so
// a large file under a small compiled share can hold its seal a
// while).
const writeRetryTimeout = 10 * time.Second

// writeOnce performs one striped append attempt at the handle's
// current layout, advancing the handle bookkeeping on success.
//
// The data plane here is zero-copy: p is sliced into per-server span
// LISTS (segments referencing p directly — never concatenated), each
// segment rides the wire as its own iovec, and each stripe's span goes
// out either pipelined (a window of positional-append chunk RPCs, for
// servers advertising CapAppendAt) or as one ordered append RPC.
func (c *Client) writeOnce(ctx context.Context, h *fileHandle, p []byte) error {
	set := h.set
	if len(set) == 0 {
		set = c.stripeSet(h.path, h.stripes)
	}
	if len(set) == 0 {
		return fmt.Errorf("client: no servers left")
	}
	unit := h.unit
	if unit <= 0 {
		unit = c.opts.StripeUnit
	}
	// Slice p into per-server span lists, preserving order within a
	// server. Each entry aliases p — no copy is made on the client side.
	spans := make([][][]byte, len(set))
	off := h.size
	for done := 0; done < len(p); {
		idx := int(off/unit) % len(set)
		n := int(unit - off%unit)
		if n > len(p)-done {
			n = len(p) - done
		}
		spans[idx] = append(spans[idx], p[done:done+n])
		done += n
		off += int64(n)
	}
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, addr := range set {
		if len(spans[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = c.writeStripe(ctx, addr, h.path, i, spans[i],
				localLen(h.size, i, len(set), unit), h.layoutGen)
		}(i, addr)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil && isCanceled(e) {
			// Cancellation mid-fan-out leaves the stripe state unknown,
			// and repairing under a dead ctx cannot work; poison the
			// handle (reopen re-learns the durable size) and surface the
			// typed error.
			h.damaged = true
			return e
		}
	}
	// Transport-level (non-retryable) failures dominate the outcome so
	// partial landings go through repair, mirroring fanOut's precedence.
	var err error
	for _, e := range errs {
		if e != nil && !retryableLayout(e) {
			err = e
			break
		}
	}
	if err == nil {
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err != nil {
		if retryableLayout(err) {
			// No repair across layouts (or against a holder whose commit
			// has not landed): the caller re-stats and retries.
			return err
		}
		// Some stripes may have appended and some not; a blind retry
		// would re-append the landed chunks and silently corrupt the
		// round-robin layout. Repair instead: top each stripe up to its
		// exact target length, and poison the handle if that fails.
		if rerr := c.repairWrite(ctx, h, set, spans, unit); rerr != nil {
			if retryableLayout(rerr) {
				return rerr
			}
			h.damaged = true
			return fmt.Errorf("client: striped write failed and could not be repaired: %w", rerr)
		}
	}
	h.size += int64(len(p))
	h.off = h.size
	return nil
}

// writeChunkTarget is the payload size one pipelined append RPC aims
// for (whole segments are never split); pipelineWindow is the in-flight
// chunk budget each pool connection contributes — the pool's shared
// write and read windows are each pipelineWindow × pool size, so a
// size-1 pool budgets exactly what the old single connection did.
const (
	writeChunkTarget = 512 << 10
	pipelineWindow   = 8
)

// affinityKey maps a (path, stripe index) pair into the pool's slot
// space: the same stripe of the same file always picks the same slot
// (per-stripe send order rides one connection), while consecutive
// stripes of one file land on consecutive slots (the stripes of a file
// that shares servers spread over the pool's paths).
func affinityKey(path string, stripe int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64() + uint64(stripe)
}

// writeStripe sends one server's span of a striped write over the
// stripe's affinity connection in its pool. Servers that have
// advertised CapAppendAt get the pipelined positional-append path: the
// span goes out as a window of chunk RPCs that need no round trip
// between them, and the explicit offsets keep landing order-independent
// under the server's multiplexed worker pool. Anyone else (old servers,
// or a pool whose first response has not yet been seen) gets the whole
// span as one ordered append RPC. Transport-level errors fail the
// server over, as callAddr would.
func (c *Client) writeStripe(ctx context.Context, addr, path string, stripeIdx int, segs [][]byte, startOff int64, layoutGen uint64) error {
	pool, err := c.ensurePool(addr)
	if err != nil {
		return err
	}
	mc, err := pool.SlotFor(affinityKey(path, stripeIdx))
	if err != nil {
		c.markFailed(addr)
		return err
	}
	var appErr, netErr error
	start := time.Now()
	total := spanLen(segs)
	if pool.Caps()&transport.CapAppendAt != 0 {
		appErr, netErr = c.writeStripePipelined(ctx, pool, mc, path, segs, startOff, layoutGen)
	} else {
		resp, cerr := mc.Call(ctx, &transport.Request{
			Type: transport.MsgWrite, Seq: c.seq.Add(1), Job: c.job, Path: path,
			DataSegs: segs, LayoutGen: layoutGen,
		})
		if cerr != nil {
			if isCtxErr(cerr) {
				return canceled(cerr)
			}
			netErr = cerr
		} else {
			if resp.Err != "" {
				appErr = wireErr(resp.Error())
			}
			resp.Release()
		}
	}
	if netErr != nil {
		c.markFailed(addr)
		return netErr
	}
	if appErr == nil {
		c.bdp.observe(total, time.Since(start))
	}
	return appErr
}

// writeStripePipelined issues a stripe's span as windowed positional
// appends on the stripe's affinity connection. The in-flight budget is
// the pool's shared write window (not a per-call constant): tokens are
// taken per chunk and returned per response, so concurrent stripes to
// one server share pipelineWindow × size chunk RPCs between them.
// Application errors (appErr) and transport failures (netErr) are
// reported separately so the caller can fail the server over on the
// latter only; cancellation abandons the in-flight chunks (their frames
// still return to the lease pool) and surfaces as appErr.
func (c *Client) writeStripePipelined(ctx context.Context, pool *transport.Pool, mc *transport.MuxConn, path string, segs [][]byte, startOff int64, layoutGen uint64) (appErr, netErr error) {
	// Group whole segments into chunk RPCs of ~writeChunkTarget bytes.
	// Groups are subslices of segs: still zero-copy.
	type pending struct {
		seq uint64
		ch  chan *transport.Response
	}
	var inflight []pending
	collect := func() {
		pd := inflight[0]
		inflight = inflight[1:]
		resp, ok := <-pd.ch
		pool.ReleaseWrite()
		if !ok {
			if netErr == nil {
				netErr = fmt.Errorf("client: connection lost")
			}
			return
		}
		if resp.Err != "" && appErr == nil {
			appErr = wireErr(resp.Error())
		}
		resp.Release()
	}
	// acquire takes one pool write token, draining our own in-flight
	// chunks while the window is full — progress never depends on a
	// token this call itself is sitting on.
	acquire := func() bool {
		for {
			if pool.TryAcquireWrite() {
				return true
			}
			if len(inflight) == 0 {
				// Every token is held by other calls, which release
				// independently of us; block (honoring ctx).
				if err := pool.AcquireWrite(ctx); err != nil {
					appErr = canceled(err)
					return false
				}
				return true
			}
			collect()
			if appErr != nil || netErr != nil {
				return false
			}
		}
	}
	off := startOff
	for lo := 0; lo < len(segs) && appErr == nil && netErr == nil; {
		if err := ctx.Err(); err != nil {
			appErr = canceled(err)
			break
		}
		hi := lo + 1
		glen := int64(len(segs[lo]))
		for hi < len(segs) && glen+int64(len(segs[hi])) <= writeChunkTarget {
			glen += int64(len(segs[hi]))
			hi++
		}
		if !acquire() {
			break
		}
		seq := c.seq.Add(1)
		ch, err := mc.Start(&transport.Request{
			Type: transport.MsgWrite, Seq: seq, Job: c.job, Path: path,
			DataSegs: segs[lo:hi], AppendAt: true, AppendOff: off,
			LayoutGen: layoutGen,
		})
		if err != nil {
			pool.ReleaseWrite()
			netErr = err
			break
		}
		inflight = append(inflight, pending{seq: seq, ch: ch})
		off += glen
		lo = hi
	}
	if isCanceled(appErr) {
		// Return promptly on cancellation: abandon the waiters instead
		// of draining them (the reader releases the late frames).
		for _, pd := range inflight {
			mc.Forget(pd.seq, pd.ch)
			pool.ReleaseWrite()
		}
		inflight = nil
	}
	for len(inflight) > 0 {
		collect()
	}
	return appErr, netErr
}

// spanLen is the byte length of a segment list.
func spanLen(segs [][]byte) int64 {
	var n int64
	for _, s := range segs {
		n += int64(len(s))
	}
	return n
}

// spanTail returns the last need bytes of a segment list, as a segment
// list still referencing the original backing bytes.
func spanTail(segs [][]byte, need int64) [][]byte {
	if need <= 0 {
		return nil
	}
	var out [][]byte
	for i := len(segs) - 1; i >= 0 && need > 0; i-- {
		s := segs[i]
		if int64(len(s)) >= need {
			s = s[int64(len(s))-need:]
			need = 0
		} else {
			need -= int64(len(s))
		}
		out = append(out, s)
	}
	// Reverse into span order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// refreshHandle re-learns a file's layout and size after a
// stale-layout answer: the cutover of a stripe migration rewrote the
// metadata, and the handle's cached stripe set predates it.
func (c *Client) refreshHandle(ctx context.Context, h *fileHandle) error {
	size, isDir, lay, err := c.statFull(ctx, h.path)
	if err != nil {
		return err
	}
	if isDir {
		return fmt.Errorf("client: %s: replaced by a directory", h.path)
	}
	h.size = size
	h.stripes, h.unit, h.set, h.layoutGen = lay.stripes, lay.unit, lay.set, lay.gen
	return nil
}

// localLen returns how many bytes of a total-byte file laid round-robin
// in unit-sized chunks over nStripes servers land on stripe i. The one
// implementation lives in fsys (the migration planner trims sealed
// stripes with it too); the property test here covers that shared copy.
func localLen(total int64, i, nStripes int, unit int64) int64 {
	return fsys.LocalLen(total, i, nStripes, unit)
}

// repairWrite completes a partially-landed striped write: each stripe
// server reports its local length, and only the missing tail of its
// span is re-sent. Appends are per-server ordered, so the local length
// identifies exactly which chunks landed.
//
// A stripe longer than its target ("over-landed") cannot arise from
// this handle's own protocol: every chunk is sent exactly once per
// attempt, a landed chunk is detected here by its length and never
// re-sent, and a top-up whose ack is lost leaves the stripe exactly at
// target (need becomes 0 on the next inspection), never past it. The
// only producers of surplus bytes are a second writer on the same path
// (outside the handle contract) or a duplicated delivery through some
// future at-least-once transport. Rather than refusing outright, the
// repair reads this write's own span back: byte-identical content
// means every chunk of this write is correctly placed and the surplus
// is not this write's corruption to report; a mismatch is refused as
// before.
func (c *Client) repairWrite(ctx context.Context, h *fileHandle, set []string, spans [][][]byte, unit int64) error {
	target := h.size
	for _, segs := range spans {
		target += spanLen(segs)
	}
	for i, addr := range set {
		resp, err := c.callAddr(ctx, addr, h.path, &transport.Request{Type: transport.MsgStat})
		if err != nil {
			return fmt.Errorf("stripe %s unreachable: %w", addr, err)
		}
		if resp.Err != "" {
			return fmt.Errorf("stripe %s: %w", addr, wireErr(resp.Error()))
		}
		need := localLen(target, i, len(set), unit) - resp.Size
		resp.Release()
		if need > spanLen(spans[i]) {
			return fmt.Errorf("stripe %s has unexpected length %d", addr, resp.Size)
		}
		if need < 0 {
			if err := c.verifySpan(ctx, h, addr, i, len(set), unit, spans[i]); err != nil {
				return fmt.Errorf("stripe %s over-landed to %d: %w", addr, resp.Size, err)
			}
			continue
		}
		if need == 0 {
			continue
		}
		wresp, err := c.callAddr(ctx, addr, h.path, &transport.Request{
			Type: transport.MsgWrite, DataSegs: spanTail(spans[i], need),
			LayoutGen: h.layoutGen,
		})
		if err != nil {
			return fmt.Errorf("stripe %s unreachable: %w", addr, err)
		}
		if wresp.Err != "" {
			return fmt.Errorf("stripe %s: %w", addr, wireErr(wresp.Error()))
		}
		wresp.Release()
	}
	return nil
}

// verifySpan reads back the local span this write addressed on one
// stripe server and compares it to the bytes sent — the over-landed
// repair check.
func (c *Client) verifySpan(ctx context.Context, h *fileHandle, addr string, i, nStripes int, unit int64, want [][]byte) error {
	total := spanLen(want)
	if total == 0 {
		return nil
	}
	start := localLen(h.size, i, nStripes, unit)
	resp, err := c.callAddr(ctx, addr, h.path, &transport.Request{
		Type: transport.MsgRead, Offset: start, Size: total,
	})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return wireErr(resp.Error())
	}
	defer resp.Release()
	got := resp.Data[:resp.N]
	for _, seg := range want {
		if int64(len(got)) < int64(len(seg)) || !bytes.Equal(got[:len(seg)], seg) {
			return fmt.Errorf("span content mismatch at local offset %d", start)
		}
		got = got[len(seg):]
	}
	return nil
}

// Read reads up to len(p) bytes from the handle's offset. A striped
// read touches each stripe server's locally-contiguous range once, in
// parallel, and reassembles the units into p. A stale-layout answer
// (the file was rebalanced under this handle) re-stats the path and
// retries once against the migrated layout.
func (c *Client) Read(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	return c.read(context.Background(), h, p)
}

// read is the striped read shared by the int-fd and *File APIs; the
// stale-layout retry budget is statRetryTimeout, tightened to ctx's own
// deadline when that is sooner.
func (c *Client) read(ctx context.Context, h *fileHandle, p []byte) (int, error) {
	n, err := c.readOnce(ctx, h, p)
	for deadline := budgetDeadline(ctx, statRetryTimeout); err != nil && retryableLayout(err) && !time.Now().After(deadline); {
		// A cutover can land between the re-stat and the retry (the
		// refresh may still see the old layout while the old holders
		// serve sealed reads); a bounded loop rides the window out. The
		// backoff keeps a crowd of handles on one migrating file from
		// turning the window into a stat storm against the servers the
		// policy is throttling.
		time.Sleep(10 * time.Millisecond)
		if cerr := ctx.Err(); cerr != nil {
			return 0, canceled(cerr)
		}
		if rerr := c.refreshHandle(ctx, h); rerr != nil {
			return 0, fmt.Errorf("client: %s: layout changed and re-stat failed: %w", h.path, rerr)
		}
		n, err = c.readOnce(ctx, h, p)
	}
	return n, err
}

// readOnce performs one read attempt at the handle's current layout.
func (c *Client) readOnce(ctx context.Context, h *fileHandle, p []byte) (int, error) {
	set := h.set
	if len(set) == 0 {
		set = c.stripeSet(h.path, h.stripes)
	}
	if len(set) == 0 {
		return 0, fmt.Errorf("client: no servers left")
	}
	if len(set) == 1 {
		resp, err := c.callAddr(ctx, set[0], h.path, &transport.Request{
			Type: transport.MsgRead, Offset: h.off, Size: int64(len(p)),
			LayoutGen: h.layoutGen,
		})
		if err != nil {
			return 0, err
		}
		if resp.Err != "" {
			return 0, wireErr(resp.Error())
		}
		copy(p, resp.Data)
		h.off += resp.N
		n := int(resp.N)
		resp.Release()
		return n, nil
	}
	// The handle's tracked size clamps the read (no per-read stat storm
	// on the path that exists to scale bandwidth); writes through other
	// handles become visible on reopen.
	size := h.size
	want := int64(len(p))
	if h.off >= size {
		return 0, nil
	}
	if want > size-h.off {
		want = size - h.off
	}
	unit := h.unit
	if unit <= 0 {
		unit = c.opts.StripeUnit
	}
	g0, g1 := h.off, h.off+want
	// Each server's touched units are consecutive multiples of the unit
	// in its local stripe, so its byte range is contiguous: track the
	// local [lo,hi) per server, read once, then scatter units back.
	lo := make([]int64, len(set))
	hi := make([]int64, len(set))
	for i := range lo {
		lo[i] = -1
	}
	for u := g0 / unit; u <= (g1-1)/unit; u++ {
		idx := int(u) % len(set)
		segStart, segEnd := u*unit, (u+1)*unit
		if segStart < g0 {
			segStart = g0
		}
		if segEnd > g1 {
			segEnd = g1
		}
		base := (u / int64(len(set))) * unit
		llo := base + segStart - u*unit
		lhi := base + segEnd - u*unit
		if lo[idx] < 0 {
			lo[idx] = llo
		}
		hi[idx] = lhi
	}
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, addr := range set {
		if lo[i] < 0 {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = c.readStripe(ctx, addr, h.path, i, len(set), unit,
				lo[i], hi[i], h.layoutGen, p, g0, g1)
		}(i, addr)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil && !retryableLayout(e) {
			return 0, e
		}
	}
	for _, e := range errs {
		if e != nil {
			return 0, e
		}
	}
	h.off += want
	return int(want), nil
}

// readChunk is the payload size one pipelined stripe-read RPC asks for;
// the in-flight budget is the pool's shared read window.
const readChunk = 512 << 10

// readStripe fetches one server's locally-contiguous byte range
// [lo,hi) of a striped read as a window of chunk RPCs — readahead that
// needs no round trip between chunks (reads at explicit offsets are
// idempotent, so unlike writes this pipelining needs no server
// capability) — and scatters each arriving chunk's units straight into
// p. Chunks spread over every pool connection (PickSpread): explicit
// offsets make order irrelevant, so the pool's paths carry the socket
// reads and frame decodes in parallel. Transport-level errors fail the
// server over.
func (c *Client) readStripe(ctx context.Context, addr, path string, idx, nStripes int, unit int64, lo, hi int64, layoutGen uint64, p []byte, g0, g1 int64) error {
	pool, err := c.ensurePool(addr)
	if err != nil {
		return err
	}
	type chunk struct {
		off int64
		n   int64
		seq uint64
		mc  *transport.MuxConn
		ch  chan *transport.Response
	}
	var inflight []chunk
	var appErr, netErr error
	start := time.Now()
	collect := func() {
		ck := inflight[0]
		inflight = inflight[1:]
		resp, ok := <-ck.ch
		pool.ReleaseRead()
		if !ok {
			if netErr == nil {
				netErr = fmt.Errorf("client: connection lost")
			}
			return
		}
		defer resp.Release()
		if resp.Err != "" {
			if appErr == nil {
				appErr = wireErr(resp.Error())
			}
			return
		}
		if resp.N < ck.n && appErr == nil {
			appErr = fmt.Errorf("client: short stripe read from %s: %d < %d", addr, resp.N, ck.n)
			return
		}
		scatterLocal(p, g0, g1, idx, nStripes, unit, ck.off, resp.Data[:ck.n])
	}
	acquire := func() bool {
		for {
			if pool.TryAcquireRead() {
				return true
			}
			if len(inflight) == 0 {
				if err := pool.AcquireRead(ctx); err != nil {
					appErr = canceled(err)
					return false
				}
				return true
			}
			collect()
			if appErr != nil || netErr != nil {
				return false
			}
		}
	}
	for off := lo; off < hi && appErr == nil && netErr == nil; {
		if err := ctx.Err(); err != nil {
			appErr = canceled(err)
			break
		}
		n := hi - off
		if n > readChunk {
			n = readChunk
		}
		if !acquire() {
			break
		}
		mc, err := pool.PickSpread()
		if err != nil {
			pool.ReleaseRead()
			netErr = err
			break
		}
		seq := c.seq.Add(1)
		ch, err := mc.Start(&transport.Request{
			Type: transport.MsgRead, Seq: seq, Job: c.job, Path: path,
			Offset: off, Size: n, LayoutGen: layoutGen,
		})
		if err != nil {
			pool.ReleaseRead()
			netErr = err
			break
		}
		inflight = append(inflight, chunk{off: off, n: n, seq: seq, mc: mc, ch: ch})
		off += n
	}
	if isCanceled(appErr) {
		for _, ck := range inflight {
			ck.mc.Forget(ck.seq, ck.ch)
			pool.ReleaseRead()
		}
		inflight = nil
	}
	for len(inflight) > 0 {
		collect()
	}
	if netErr != nil {
		c.markFailed(addr)
		return netErr
	}
	if appErr == nil {
		c.bdp.observe(hi-lo, time.Since(start))
	}
	return appErr
}

// scatterLocal copies one stripe-local contiguous chunk (starting at
// local offset a on stripe idx) into its global positions in p, whose
// first byte is global offset g0. The round-robin inverse: local unit
// l/unit is global unit (l/unit)*nStripes+idx.
func scatterLocal(p []byte, g0, g1 int64, idx, nStripes int, unit, a int64, data []byte) {
	for l := a; l < a+int64(len(data)); {
		lu := l / unit
		unitEnd := (lu + 1) * unit
		end := a + int64(len(data))
		if end > unitEnd {
			end = unitEnd
		}
		g := (lu*int64(nStripes)+int64(idx))*unit + l%unit
		// Clamp to the requested global window (the first and last
		// touched units may be partial; a unit wholly outside the
		// window is dropped, not sliced out of range).
		src := data[l-a : end-a]
		if g >= g1 || g+int64(len(src)) <= g0 {
			l = end
			continue
		}
		if g < g0 {
			src = src[g0-g:]
			g = g0
		}
		if g+int64(len(src)) > g1 {
			src = src[:g1-g]
		}
		copy(p[g-g0:], src)
		l = end
	}
}

// Lseek repositions the handle. Whence follows POSIX: 0=set, 1=cur,
// 2=end. A resulting offset below zero is refused with the handle
// unmoved — POSIX EINVAL — instead of the old silent clamp to zero,
// which hid arithmetic bugs in callers by quietly rereading the file
// head.
func (c *Client) Lseek(fd int, offset int64, whence int) (int64, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	return c.lseek(context.Background(), h, offset, whence)
}

func (c *Client) lseek(ctx context.Context, h *fileHandle, offset int64, whence int) (int64, error) {
	var next int64
	switch whence {
	case 0:
		next = offset
	case 1:
		next = h.off + offset
	case 2:
		size, _, _, err := c.statFull(ctx, h.path)
		if err != nil {
			return 0, err
		}
		next = size + offset
	default:
		return 0, fmt.Errorf("client: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("client: invalid seek to negative offset %d (EINVAL)", next)
	}
	h.off = next
	return h.off, nil
}

// CloseFd releases a file descriptor.
func (c *Client) CloseFd(fd int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.fds[fd]; !ok {
		return fmt.Errorf("client: bad file descriptor %d", fd)
	}
	delete(c.fds, fd)
	return nil
}

// Stat returns size and directory flag. A striped file's size is the
// sum of its stripes.
func (c *Client) Stat(path string) (size int64, isDir bool, err error) {
	return c.StatContext(context.Background(), path)
}

// StatContext is Stat honoring ctx: the internal retry budgets tighten
// to ctx's deadline, and cancellation returns ErrCanceled.
func (c *Client) StatContext(ctx context.Context, path string) (size int64, isDir bool, err error) {
	size, isDir, _, err = c.statFull(ctx, path)
	return size, isDir, err
}

// Layout returns a file's recorded stripe servers (in stripe order) and
// stripe width — the operator's view of where a file's bytes live,
// which rebalancing rewrites as the fabric grows.
func (c *Client) Layout(path string) (set []string, stripes int, err error) {
	_, _, lay, err := c.statFull(context.Background(), path)
	if err != nil {
		return nil, 0, err
	}
	return lay.set, lay.stripes, nil
}

// layout is a file's stripe geometry as recorded in its metadata.
type layoutInfo struct {
	stripes int
	unit    int64
	set     []string
	gen     uint64 // layout generation; echoed on reads and writes
}

// statFull stats the path's ring owner to learn what it is — a
// directory, an unstriped file, or a striped file whose layout the
// creating client recorded in the metadata — then sums stripe sizes
// across the recorded stripe set. If the ring owner has drifted since
// creation and no longer holds the entry, every connected server is
// consulted before giving up (metadata is findable as long as any
// stripe server lives).
//
// The stripe-size fan-out is layout-generation-checked: every stripe
// server must answer under the same generation the layout was read at,
// so a stat can never sum sizes across two different layouts of a
// mid-migration file. A stale answer anywhere — or a not-exist from a
// stripe member after the layout itself was readable, which is a
// target whose commit has not landed yet — re-reads the layout (a
// rebalance cutover lands within a couple of round trips; the first
// retry refreshes membership so freshly joined owners are dialed).
func (c *Client) statFull(ctx context.Context, path string) (size int64, isDir bool, lay layoutInfo, err error) {
	staleDeadline := budgetDeadline(ctx, statRetryTimeout)
	goneDeadline := budgetDeadline(ctx, statGoneRetryTimeout)
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return 0, false, lay, canceled(cerr)
		}
		var transient bool
		size, isDir, lay, transient, err = c.statOnce(ctx, path, false)
		if err == nil || !transient {
			return size, isDir, lay, err
		}
		if transport.IsStaleLayout(err) {
			if time.Now().After(staleDeadline) {
				return size, isDir, lay, err
			}
		} else if time.Now().After(goneDeadline) {
			// A stripe member still answering not-exist past every
			// cutover window holds a genuinely lost stripe (a volatile
			// member crash-restarted empty, say): fall back to summing
			// the members that do hold data — a stripe lost to failover
			// contributes nothing, and the stat must not fail just
			// because the recorded layout names it, or Unlink could
			// never clean such files up.
			size, isDir, lay, _, err = c.statOnce(ctx, path, true)
			return size, isDir, lay, err
		}
		if attempt == 0 {
			c.refreshMembership()
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// statRetryTimeout bounds how long a stat chases a moving layout — the
// seal-to-cutover window of one file's migration, which stretches with
// machine load since the copy is policy-throttled. Only transient
// outcomes retry, so genuine errors still fail on the first attempt.
// statGoneRetryTimeout is the shorter budget for a stripe member
// answering not-exist: a mid-cutover target commits within a couple of
// round trips, while a genuinely lost stripe never will — after it,
// the stat degrades to the tolerant partial sum. Both are defaults: a
// ctx deadline sooner than the budget tightens it (budgetDeadline).
const (
	statRetryTimeout     = 2 * time.Second
	statGoneRetryTimeout = 500 * time.Millisecond
)

// statOnce is one layout read + generation-checked stripe-size sum.
// transient marks outcomes worth re-reading the layout for: a
// stale-layout answer anywhere, or a not-exist from the stripe
// fan-out (the layout was just readable, so the member is a
// mid-cutover target, not a deleted file).
func (c *Client) statOnce(ctx context.Context, path string, tolerateMissing bool) (size int64, isDir bool, lay layoutInfo, transient bool, err error) {
	resp, err := c.call(ctx, path, &transport.Request{Type: transport.MsgStat})
	if err != nil {
		if isCanceled(err) {
			return 0, false, lay, false, err
		}
		resp = c.statAny(ctx, path)
		if resp == nil {
			return 0, false, lay, transport.IsStaleLayout(err), err
		}
	}
	if resp.IsDir {
		return 0, true, layoutInfo{stripes: 1}, false, nil
	}
	lay.stripes, lay.unit, lay.set, lay.gen = resp.Stripes, resp.StripeUnit, resp.StripeSet, resp.LayoutGen
	if lay.stripes < 1 {
		lay.stripes = 1
	}
	if lay.unit <= 0 {
		lay.unit = c.opts.StripeUnit
	}
	if len(lay.set) == 0 {
		lay.set = c.stripeSet(path, lay.stripes)
	}
	if len(lay.set) == 1 {
		return resp.Size, false, lay, false, nil
	}
	// Sum sizes over the reachable stripe servers only: a stripe lost
	// to failover contributes nothing (its bytes are gone), and the
	// stat itself must not fail just because the layout names a dead
	// member — Unlink needs the layout to clean such files up. Members
	// this client has not dialed yet (a migrated layout naming a
	// freshly joined server) are connected on demand.
	var live []string
	for _, addr := range lay.set {
		if _, err := c.ensurePool(addr); err == nil {
			live = append(live, addr)
		}
	}
	if tolerateMissing {
		// Degraded mode (statFull's not-exist budget ran out): sum the
		// members that do hold the entry, skipping the rest — the
		// pre-rebalance partial-loss semantics.
		for _, addr := range live {
			r, err := c.callAddr(ctx, addr, path, &transport.Request{Type: transport.MsgStat})
			if err != nil || r.Err != "" {
				continue
			}
			size += r.Size
		}
		return size, false, lay, false, nil
	}
	resps, err := c.fanOut(ctx, live, path, func(int) *transport.Request {
		return &transport.Request{Type: transport.MsgStat, LayoutGen: lay.gen}
	})
	if err != nil {
		transient := transport.IsStaleLayout(err) || transport.IsNotExist(err)
		return 0, false, lay, transient, err
	}
	if len(live) == len(lay.set) {
		// The authoritative size is the consistent round-robin prefix of
		// the per-stripe sizes, not their raw sum: a write racing a
		// migration seal can land a chunk on a not-yet-frozen stripe
		// while an earlier chunk is refused, and counting that orphan
		// would make Write's surviving-prefix arithmetic resume past a
		// hole — acknowledging bytes the cutover trim then discards.
		sizes := make([]int64, len(resps))
		for i, r := range resps {
			sizes[i] = r.Size
		}
		return fsys.ConsistentTotal(sizes, lay.unit), false, lay, false, nil
	}
	for _, r := range resps {
		size += r.Size
	}
	return size, false, lay, false, nil
}

// statAny broadcasts a stat to every connected server and returns the
// first hit — the fallback path for entries the drifted ring owner no
// longer holds.
func (c *Client) statAny(ctx context.Context, path string) *transport.Response {
	for _, p := range c.sortedPools() {
		resp, err := c.poolCall(ctx, p, &transport.Request{
			Type: transport.MsgStat, Seq: c.seq.Add(1), Job: c.job, Path: path,
		})
		if err == nil && resp.Err == "" {
			return resp
		}
	}
	return nil
}

// sortedPools snapshots the live pools in address order — the iteration
// every broadcast-style method (Mkdir/Readdir/Flush, SetPolicy,
// ShareReports) shares.
func (c *Client) sortedPools() []*transport.Pool {
	c.mu.Lock()
	pools := make([]*transport.Pool, 0, len(c.pools))
	for _, p := range c.pools {
		pools = append(pools, p)
	}
	c.mu.Unlock()
	sort.Slice(pools, func(i, j int) bool { return pools[i].Addr() < pools[j].Addr() })
	return pools
}

// broadcast sends the request to every server and collects responses.
// Directory metadata is replicated on all servers so that any server can
// validate parents locally, matching §4.3's "directories and files are
// stored as files" with directory content spread across servers.
func (c *Client) broadcast(ctx context.Context, path string, mk func() *transport.Request) ([]*transport.Response, error) {
	var out []*transport.Response
	for _, p := range c.sortedPools() {
		req := mk()
		req.Seq = c.seq.Add(1)
		req.Job = c.job
		req.Path = path
		resp, err := c.poolCall(ctx, p, req)
		if err != nil {
			if isCtxErr(err) {
				return out, canceled(err)
			}
			c.markFailed(p.Addr())
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// Flush asks every connected server to stage out all dirty data to its
// backing store before returning — the client-visible durability
// barrier (an application calls it after writing a checkpoint it cannot
// afford to lose). Servers without a backing store reply immediately.
func (c *Client) Flush() error {
	return c.FlushContext(context.Background())
}

// FlushContext is Flush honoring ctx.
func (c *Client) FlushContext(ctx context.Context) error {
	resps, err := c.broadcast(ctx, "/", func() *transport.Request {
		return &transport.Request{Type: transport.MsgFlush}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return wireErr(r.Error())
		}
	}
	return nil
}

// SetPolicy installs a new cluster-wide sharing policy through any
// live server — the client face of the live hot-swap. The contacted
// member validates the policy string, bumps the cluster policy epoch,
// and gossip carries the new version to every other member; each
// server recompiles at its next λ with no restart and no dropped
// request. Returns the canonical policy string and the new epoch.
func (c *Client) SetPolicy(policyStr string) (string, uint64, error) {
	var lastErr error = fmt.Errorf("client: no servers left")
	for _, p := range c.sortedPools() {
		resp, err := c.poolCall(context.Background(), p, &transport.Request{
			Type: transport.MsgPolicySet, Seq: c.seq.Add(1), Job: c.job,
			PolicyStr: policyStr,
		})
		if err != nil {
			c.markFailed(p.Addr())
			lastErr = err
			continue
		}
		if resp.Err != "" {
			// An application error (an unparseable policy string) is the
			// same on every member; do not retry it around the ring.
			return "", 0, wireErr(resp.Error())
		}
		return resp.PolicyStr, resp.PolicyEpoch, nil
	}
	return "", 0, lastErr
}

// ShareReport is one server's per-entity fairness report: the policy
// it is enforcing (string + applied cluster policy epoch) and each
// sharing entity's compiled token share versus measured serviced-byte
// share over the server's λ-windowed horizon.
type ShareReport struct {
	Addr        string
	Policy      string
	PolicyEpoch uint64
	Shares      []transport.ShareRecord
}

// ShareReports collects every connected server's fairness report, in
// address order — the raw material of `themisctl policy status` and of
// swap-convergence checks (aggregate Bytes per entity across servers
// for the cluster-wide measured share).
func (c *Client) ShareReports() ([]ShareReport, error) {
	var out []ShareReport
	for _, p := range c.sortedPools() {
		resp, err := c.poolCall(context.Background(), p, &transport.Request{
			Type: transport.MsgShareReport, Seq: c.seq.Add(1), Job: c.job,
		})
		if err != nil {
			c.markFailed(p.Addr())
			return out, err
		}
		if resp.Err != "" {
			return out, wireErr(resp.Error())
		}
		out = append(out, ShareReport{
			Addr: p.Addr(), Policy: resp.PolicyStr,
			PolicyEpoch: resp.PolicyEpoch, Shares: resp.Shares,
		})
	}
	return out, nil
}

// Mkdir creates a directory (replicated on every server).
func (c *Client) Mkdir(path string) error {
	return c.MkdirContext(context.Background(), path)
}

// MkdirContext is Mkdir honoring ctx.
func (c *Client) MkdirContext(ctx context.Context, path string) error {
	resps, err := c.broadcast(ctx, path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgMkdir}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return wireErr(r.Error())
		}
	}
	return nil
}

// Readdir lists a directory, merging the children recorded on each
// server (a file's directory entry lives on the file's owner server).
// A server that answers not-exist contributes nothing instead of
// failing the merge: directory replication is opportunistic — a member
// that joined after the mkdir legitimately lacks the entry until
// something migrates into it. Only not-exist is tolerated (any other
// error, like not-a-directory, signals real divergence and surfaces),
// and the listing fails when every server answers not-exist (a
// genuinely missing directory).
func (c *Client) Readdir(path string) ([]string, error) {
	return c.ReaddirContext(context.Background(), path)
}

// ReaddirContext is Readdir honoring ctx.
func (c *Client) ReaddirContext(ctx context.Context, path string) ([]string, error) {
	resps, err := c.broadcast(ctx, path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgReaddir}
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	var firstErr error
	ok := false
	for _, r := range resps {
		if r.Err != "" {
			if !transport.IsNotExist(r.Error()) {
				return nil, wireErr(r.Error())
			}
			if firstErr == nil {
				firstErr = wireErr(r.Error())
			}
			continue
		}
		ok = true
		for _, n := range r.Names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	if !ok && firstErr != nil {
		return nil, firstErr
	}
	sort.Strings(names)
	return names, nil
}

// Unlink removes a file (on its stripe servers) or a directory (on all).
// Stripe servers that have failed over are skipped: their copy died with
// them, and refusing to unlink a partially-lost file would leave its
// stale layout squatting on the name forever.
func (c *Client) Unlink(path string) error {
	return c.UnlinkContext(context.Background(), path)
}

// UnlinkContext is Unlink honoring ctx.
func (c *Client) UnlinkContext(ctx context.Context, path string) error {
	_, isDir, lay, err := c.statFull(ctx, path)
	if err != nil {
		return err
	}
	if !isDir {
		var live []string
		for _, addr := range lay.set {
			if _, err := c.ensurePool(addr); err == nil {
				live = append(live, addr)
			}
		}
		if len(live) == 0 {
			return fmt.Errorf("client: no live stripe servers hold %s", path)
		}
		_, err := c.fanOut(ctx, live, path, func(int) *transport.Request {
			return &transport.Request{Type: transport.MsgUnlink}
		})
		return err
	}
	resps, err := c.broadcast(ctx, path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgUnlink}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return wireErr(r.Error())
		}
	}
	return nil
}
