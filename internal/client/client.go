// Package client is the ThemisIO client library: the POSIX-compliant
// interface of §4.4 (open/close/read/write/lseek/stat/opendir/readdir/
// unlink) over the wire protocol, with job metadata embedded in every
// request and periodic heartbeats to every server (§4.1). On a real
// deployment these entry points are reached by intercepting the libc
// symbols (override/trampoline, §4.4); here they are called directly —
// the arbitration problem is identical either way.
//
// With multiple servers the client places each path on servers via the
// same consistent hash the servers' file system uses. Files may be
// striped: data is split into stripe-unit chunks laid round-robin
// across the path's stripe set, and reads and writes fan out to the
// stripe servers in parallel, so one client's aggregate bandwidth
// scales with the server count. A server that stops answering is
// removed from the client's ring, so its segment reassigns and I/O
// continues on the survivors (the client half of failover).
package client

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/chash"
	"themisio/internal/cluster"
	"themisio/internal/fsys"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// Options tunes a client beyond the defaults.
type Options struct {
	// Stripes is the number of servers each file's data spans (clipped
	// to the live server count; non-positive means 1, the unstriped
	// placement of the seed implementation).
	Stripes int
	// StripeUnit is the bytes written to one server before moving to
	// the next (zero selects DefaultStripeUnit; AutoStripeUnit sizes
	// the unit of each newly created file to the measured
	// bandwidth-delay product instead).
	StripeUnit int64
	// LegacyGob forces the gob wire codec instead of the default
	// length-prefixed binary codec — the escape hatch for servers too
	// old to auto-detect the binary preamble.
	LegacyGob bool
}

// DefaultStripeUnit is the stripe chunk size, matching the server-side
// file system's unit.
const DefaultStripeUnit = 1 << 20

// AutoStripeUnit as Options.StripeUnit sizes each created file's
// stripe unit from the client's measured bandwidth-delay product at
// open time (see bdp.go). The chosen unit is recorded in the file's
// metadata like any explicit one, so readers need no negotiation.
const AutoStripeUnit int64 = -1

// Client is one application process's connection to the burst buffer.
type Client struct {
	job  policy.JobInfo
	ring *chash.Ring
	opts Options
	// autoUnit marks Options.StripeUnit == AutoStripeUnit: each created
	// file's unit comes from bdp's live estimate instead of the option.
	autoUnit bool
	bdp      bdpEstimator

	mu       sync.Mutex
	conns    map[string]*serverConn
	draining map[string]bool // members to avoid for new placement
	// unreachable remembers when a dial or call to a member last
	// failed: recorded stripe sets keep naming dead members, and
	// re-dialing one (2s timeout) on every stat would stall the client.
	// ensureConn fast-fails inside the cooldown; a member that comes
	// back (restart, rejoin) is re-dialed after it.
	unreachable map[string]time.Time
	fds         map[int]*fileHandle
	next        int
	seq         atomic.Uint64
	// closed stops ensureConn from registering new connections after
	// Close — the membership refresh dials joiners asynchronously, and
	// a dial completing after teardown would leak its socket.
	closed atomic.Bool

	hbStop chan struct{}
	hbDone chan struct{}
}

type fileHandle struct {
	path string
	off  int64
	// size is the known global size — the append position for striped
	// writes. It is set at Open and advanced by Write; extensions made
	// through other handles become visible on reopen.
	size    int64
	stripes int      // the file's stripe width (from metadata, not config)
	unit    int64    // the file's stripe unit (from metadata, not config)
	set     []string // the file's recorded stripe servers, in order
	// layoutGen is the layout generation the cached set was read under;
	// every read and write echoes it, so a server that rebalanced the
	// file answers stale-layout instead of serving re-striped bytes, and
	// the handle re-stats and retries (see refreshHandle).
	layoutGen uint64
	// damaged marks a handle whose striped write could not be completed
	// or repaired; further writes would interleave wrongly, so they are
	// refused instead of silently corrupting the file.
	damaged bool
}

// serverConn multiplexes concurrent requests over one connection.
type serverConn struct {
	addr string
	conn *transport.Conn
	// caps accumulates the capability bits the peer has stamped on its
	// responses (zero until the first response arrives — an old server
	// never sends any). The client gates pipelined positional appends
	// on having actually observed CapAppendAt here.
	caps atomic.Uint64
	mu   sync.Mutex
	wait map[uint64]chan *transport.Response
	err  error
}

func dialServer(addr string, legacyGob bool) (*serverConn, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	conn := transport.NewBinaryConn(raw)
	if legacyGob {
		conn = transport.NewConn(raw)
	}
	sc := &serverConn{
		addr: addr,
		conn: conn,
		wait: map[uint64]chan *transport.Response{},
	}
	go sc.reader()
	return sc, nil
}

func (sc *serverConn) reader() {
	for {
		resp, err := sc.conn.RecvResponse()
		if err != nil {
			sc.mu.Lock()
			sc.err = err
			for _, ch := range sc.wait {
				close(ch)
			}
			sc.wait = map[uint64]chan *transport.Response{}
			sc.mu.Unlock()
			return
		}
		if resp.Caps != 0 {
			sc.caps.Store(resp.Caps)
		}
		sc.mu.Lock()
		ch, ok := sc.wait[resp.Seq]
		delete(sc.wait, resp.Seq)
		sc.mu.Unlock()
		if ok {
			ch <- resp
		} else {
			// No waiter (a call torn down mid-send): the leased frame
			// goes straight back to the pool.
			resp.Release()
		}
	}
}

// start registers req's response channel and puts the request on the
// wire without waiting — the building block of pipelined stripe I/O.
// The caller must receive exactly once from the returned channel; a
// closed channel means the connection died.
func (sc *serverConn) start(req *transport.Request) (chan *transport.Response, error) {
	ch := make(chan *transport.Response, 1)
	sc.mu.Lock()
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return nil, err
	}
	sc.wait[req.Seq] = ch
	sc.mu.Unlock()
	if err := sc.conn.SendRequest(req); err != nil {
		sc.mu.Lock()
		delete(sc.wait, req.Seq)
		sc.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

func (sc *serverConn) call(req *transport.Request) (*transport.Response, error) {
	ch, err := sc.start(req)
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("client: connection lost")
	}
	return resp, nil
}

// Dial connects to the given servers under the job identity with
// default options (no striping). The client begins heartbeating
// immediately so the servers' job monitors see the job before its
// first I/O.
func Dial(job policy.JobInfo, servers []string) (*Client, error) {
	return DialOpts(job, servers, Options{})
}

// DialOpts connects with explicit striping options.
func DialOpts(job policy.JobInfo, servers []string, opts Options) (*Client, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: no servers")
	}
	if opts.Stripes <= 0 {
		opts.Stripes = 1
	}
	autoUnit := opts.StripeUnit == AutoStripeUnit
	if opts.StripeUnit <= 0 {
		// Auto keeps the default as its no-samples fallback and as the
		// unit assumed for legacy files whose metadata records none.
		opts.StripeUnit = DefaultStripeUnit
	}
	c := &Client{
		autoUnit:    autoUnit,
		job:         job,
		ring:        chash.New(0),
		opts:        opts,
		conns:       map[string]*serverConn{},
		draining:    map[string]bool{},
		unreachable: map[string]time.Time{},
		fds:         map[int]*fileHandle{},
		next:        3, // fds 0-2 are taken, as in POSIX
		hbStop:      make(chan struct{}),
		hbDone:      make(chan struct{}),
	}
	for _, addr := range servers {
		sc, err := dialServer(addr, opts.LegacyGob)
		if err != nil {
			c.closeConns()
			return nil, err
		}
		c.conns[addr] = sc
		c.ring.Add(addr)
	}
	c.heartbeatAll()
	go c.heartbeatLoop()
	return c, nil
}

func (c *Client) closeConns() {
	for _, sc := range c.conns {
		sc.conn.Close()
	}
}

// Close notifies servers and tears down connections (§4.2: "when a
// client exits, it notifies the ThemisIO servers to destroy the
// corresponding mapping entry").
func (c *Client) Close() {
	c.closed.Store(true)
	close(c.hbStop)
	<-c.hbDone
	// Copy under the lock, send after: a goodbye to a wedged server
	// must not hold c.mu and block every other client method.
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		_ = sc.conn.SendRequest(&transport.Request{Type: transport.MsgBye, Job: c.job})
		sc.conn.Close()
	}
}

// Servers returns the addresses the client still considers live.
func (c *Client) Servers() []string { return c.ring.Nodes() }

func (c *Client) heartbeatLoop() {
	defer close(c.hbDone)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
			c.heartbeatAll()
			c.refreshMembership()
		}
	}
}

// refreshMembership asks one live server for the fabric's membership
// view: failed and left members are dropped from the placement ring
// proactively (not just after an I/O error), and draining members are
// remembered so new files avoid them.
func (c *Client) refreshMembership() {
	c.mu.Lock()
	var any *serverConn
	for _, sc := range c.conns {
		any = sc
		break
	}
	c.mu.Unlock()
	if any == nil {
		return
	}
	resp, err := any.call(&transport.Request{
		Type: transport.MsgClusterStatus, Seq: c.seq.Add(1), Job: c.job,
	})
	if err != nil {
		c.markFailed(any.addr)
		return
	}
	for _, m := range cluster.FromRecords(resp.Members) {
		switch m.State {
		case cluster.StateFailed, cluster.StateLeft:
			c.markFailed(m.Addr)
		case cluster.StateDraining:
			c.mu.Lock()
			c.draining[m.Addr] = true
			c.mu.Unlock()
		case cluster.StateAlive:
			c.mu.Lock()
			_, have := c.conns[m.Addr]
			delete(c.draining, m.Addr)
			c.mu.Unlock()
			// A member this client has never dialed is a scale-out join:
			// connect and extend the placement ring, so new files spread
			// onto the added capacity and migrated layouts that name the
			// new member stay reachable. The dial runs off this loop — a
			// member the fabric gossips alive but this client cannot
			// reach (asymmetric partition) must not stall the heartbeat
			// cadence for the healthy servers; ensureConn's cooldown
			// keeps the retries bounded.
			if !have {
				go func(addr string) { _, _ = c.ensureConn(addr) }(m.Addr)
			}
		}
	}
}

// dialCooldown is how long ensureConn fast-fails an address after a
// failed dial or a failed-over connection, so a dead member named in
// recorded stripe sets cannot stall every stat behind a dial timeout.
const dialCooldown = 3 * time.Second

// ensureConn returns the live connection for addr, dialing it on first
// use — recorded stripe sets and the membership view may name servers
// this client was never configured with (members that joined after the
// client dialed in). Recently unreachable members fail fast.
func (c *Client) ensureConn(addr string) (*serverConn, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("client: closed")
	}
	c.mu.Lock()
	sc, ok := c.conns[addr]
	if ok {
		c.mu.Unlock()
		return sc, nil
	}
	if t, bad := c.unreachable[addr]; bad && time.Since(t) < dialCooldown {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: %s recently unreachable", addr)
	}
	c.mu.Unlock()
	sc, err := dialServer(addr, c.opts.LegacyGob)
	if err != nil {
		c.mu.Lock()
		c.unreachable[addr] = time.Now()
		c.mu.Unlock()
		return nil, fmt.Errorf("client: no live connection to %s: %w", addr, err)
	}
	c.mu.Lock()
	delete(c.unreachable, addr)
	if exist, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		sc.conn.Close()
		return exist, nil
	}
	if c.closed.Load() {
		// Close ran while we dialed; registering now would leak the
		// socket past teardown.
		c.mu.Unlock()
		sc.conn.Close()
		return nil, fmt.Errorf("client: closed")
	}
	c.conns[addr] = sc
	c.mu.Unlock()
	c.ring.Add(addr)
	return sc, nil
}

func (c *Client) heartbeatAll() {
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		if err := sc.conn.SendRequest(&transport.Request{
			Type: transport.MsgHeartbeat,
			Seq:  c.seq.Add(1),
			Job:  c.job,
		}); err != nil {
			c.markFailed(sc.addr)
		}
	}
}

// markFailed drops a server the client could not reach: its connection
// closes and its ring segment reassigns to the survivors, mirroring the
// fabric's failover. Subsequent placement follows the shrunken ring.
func (c *Client) markFailed(addr string) {
	c.mu.Lock()
	sc, ok := c.conns[addr]
	if ok {
		delete(c.conns, addr)
	}
	c.unreachable[addr] = time.Now()
	c.mu.Unlock()
	if ok {
		sc.conn.Close()
		c.ring.Remove(addr)
	}
}

// stripeSet returns the addresses holding a width-stripes file's data,
// in stripe order, when no recorded set is available (legacy files).
func (c *Client) stripeSet(path string, stripes int) []string {
	if stripes < 1 {
		stripes = 1
	}
	return c.ring.LookupN(path, stripes)
}

// createSet picks the stripe servers for a new file: the ring walk,
// skipping draining members when enough non-draining servers remain.
// The chosen set is recorded in the file metadata, so every later
// reader follows it regardless of how the ring drifts afterwards.
func (c *Client) createSet(path string) []string {
	c.mu.Lock()
	nDraining := len(c.draining)
	c.mu.Unlock()
	want := c.opts.Stripes
	candidates := c.ring.LookupN(path, want+nDraining)
	var out []string
	for _, addr := range candidates {
		c.mu.Lock()
		drain := c.draining[addr]
		c.mu.Unlock()
		if !drain && len(out) < want {
			out = append(out, addr)
		}
	}
	if len(out) == 0 {
		return candidates[:min(want, len(candidates))]
	}
	return out
}

// callAddr sends one request to one server — dialing it on first use —
// failing the server over on a transport-level error.
func (c *Client) callAddr(addr, path string, req *transport.Request) (*transport.Response, error) {
	sc, err := c.ensureConn(addr)
	if err != nil {
		return nil, err
	}
	req.Seq = c.seq.Add(1)
	req.Job = c.job
	req.Path = path
	start := time.Now()
	resp, err := sc.call(req)
	if err != nil {
		c.markFailed(addr)
		return nil, err
	}
	// Feed the bandwidth-delay estimator: a small exchange samples the
	// round trip, a payload-bearing one samples bandwidth.
	bytes := int64(len(req.Data))
	if resp.N > bytes {
		bytes = resp.N
	}
	c.bdp.observe(bytes, time.Since(start))
	return resp, nil
}

// call routes a request to the path's owner server, retrying on the
// reassigned owner when the first choice has failed. Application errors
// (ErrNotExist and friends) surface immediately; only transport-level
// failures trigger re-routing.
func (c *Client) call(path string, req *transport.Request) (*transport.Response, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		addr, ok := c.ring.Lookup(path)
		if !ok {
			return nil, fmt.Errorf("client: no servers left")
		}
		resp, err := c.callAddr(addr, path, req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Err != "" {
			return nil, resp.Error()
		}
		return resp, nil
	}
	return nil, lastErr
}

// fanOut sends one request per address in parallel and collects the
// responses in address order. A transport-level error on any server
// fails that server over and reports the error; an application error in
// any response is returned as-is.
func (c *Client) fanOut(addrs []string, path string, mk func(i int) *transport.Request) ([]*transport.Response, error) {
	resps := make([]*transport.Response, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		req := mk(i)
		if req == nil {
			continue
		}
		wg.Add(1)
		go func(i int, addr string, req *transport.Request) {
			defer wg.Done()
			resps[i], errs[i] = c.callAddr(addr, path, req)
		}(i, addr, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return resps, err
		}
	}
	for _, r := range resps {
		if r != nil && r.Err != "" {
			return resps, r.Error()
		}
	}
	return resps, nil
}

// Open opens an existing file (create=false) or creates it, returning a
// file descriptor. Creation places the file on every server of its
// stripe set — recording the stripe width in the file metadata — so
// striped appends land locally and any client can later discover the
// layout. Opening reads the width back from the metadata, so clients
// with different striping configurations interoperate.
func (c *Client) Open(path string, create bool) (int, error) {
	if create {
		set := c.createSet(path)
		if len(set) == 0 {
			return -1, fmt.Errorf("client: no servers left")
		}
		unit := c.stripeUnit()
		if _, err := c.fanOut(set, path, func(int) *transport.Request {
			return &transport.Request{
				Type:       transport.MsgCreate,
				Stripes:    len(set),
				StripeUnit: unit,
				StripeSet:  set,
			}
		}); err != nil {
			return -1, err
		}
	}
	size, _, layout, err := c.statFull(path)
	if err != nil {
		return -1, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fd := c.next
	c.next++
	c.fds[fd] = &fileHandle{
		path: path, size: size,
		stripes: layout.stripes, unit: layout.unit, set: layout.set,
		layoutGen: layout.gen,
	}
	return fd, nil
}

func (c *Client) handle(fd int) (*fileHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.fds[fd]
	if !ok {
		return nil, fmt.Errorf("client: bad file descriptor %d", fd)
	}
	return h, nil
}

// Write appends len(p) bytes to the file (the server store is
// append-structured; sequential writes are the burst-buffer pattern).
// With striping, the data splits into stripe-unit chunks laid
// round-robin over the stripe set; each server's chunks are contiguous
// in its local stripe, so the whole write is at most one parallel
// request per stripe server.
//
// A stale-layout answer means join-time rebalancing is moving (or has
// moved) the file under the handle: the migration seal guarantees that
// either nothing or a contiguous prefix of this write survived the
// cutover, so the handle re-stats, measures the surviving prefix from
// the fresh global size, and appends the remainder under the rewritten
// layout. While the file is still sealed — the copy phase, before any
// cutover — the re-stat returns the old layout and the retry is
// refused again, so the write keeps retrying until the cutover lands
// or writeRetryTimeout passes; on giving up it reports how much of p
// is durably in the file (the handle's size already accounts for it),
// so a POSIX-style short-write retry of the remainder is correct.
func (c *Client) Write(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	if h.damaged {
		return 0, fmt.Errorf("client: %s: earlier striped write failed mid-stripe; reopen after repair", h.path)
	}
	err = c.writeOnce(h, p)
	if err == nil {
		return len(p), nil
	}
	if !retryableLayout(err) {
		return 0, err
	}
	prev := h.size
	deadline := time.Now().Add(writeRetryTimeout)
	for {
		if rerr := c.refreshHandle(h); rerr != nil {
			return 0, fmt.Errorf("client: %s: layout changed and re-stat failed: %w", h.path, rerr)
		}
		landed := h.size - prev
		if landed < 0 && !time.Now().After(deadline) {
			// A degraded stat during a stalled partial cutover can
			// under-report the size (an uncommitted target's bytes sit
			// in its invisible pending buffer); that heals when the
			// cutover lands, so keep re-statting instead of condemning
			// the handle.
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if landed < 0 || landed > int64(len(p)) {
			// The size moved by more than this write — another writer
			// raced the handle, which the offset bookkeeping cannot
			// survive (true before this change too).
			h.damaged = true
			return 0, fmt.Errorf("client: %s: size moved by %d during layout change; reopen", h.path, landed)
		}
		if landed == int64(len(p)) {
			h.off = h.size
			return len(p), nil
		}
		err = c.writeOnce(h, p[landed:])
		if err == nil {
			return len(p), nil
		}
		if !retryableLayout(err) || time.Now().After(deadline) {
			return int(landed), err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// retryableLayout matches the transient conditions of a mid-migration
// file: the typed stale-layout answer, and a not-exist from a server
// the layout names — a commit that has not landed yet keeps the new
// stripe in an invisible pending buffer, so the entry appears briefly
// absent on that holder. A handle is only operated on after a
// successful open, so not-exist mid-operation is a routing transient
// (or a genuine unlink, which surfaces once the retry budget passes).
func retryableLayout(err error) bool {
	return transport.IsStaleLayout(err) || transport.IsNotExist(err)
}

// writeRetryTimeout bounds how long a write blocks waiting for a
// mid-migration file's cutover (the copy phase is policy-throttled, so
// a large file under a small compiled share can hold its seal a
// while).
const writeRetryTimeout = 10 * time.Second

// writeOnce performs one striped append attempt at the handle's
// current layout, advancing the handle bookkeeping on success.
//
// The data plane here is zero-copy: p is sliced into per-server span
// LISTS (segments referencing p directly — never concatenated), each
// segment rides the wire as its own iovec, and each stripe's span goes
// out either pipelined (a window of positional-append chunk RPCs, for
// servers advertising CapAppendAt) or as one ordered append RPC.
func (c *Client) writeOnce(h *fileHandle, p []byte) error {
	set := h.set
	if len(set) == 0 {
		set = c.stripeSet(h.path, h.stripes)
	}
	if len(set) == 0 {
		return fmt.Errorf("client: no servers left")
	}
	unit := h.unit
	if unit <= 0 {
		unit = c.opts.StripeUnit
	}
	// Slice p into per-server span lists, preserving order within a
	// server. Each entry aliases p — no copy is made on the client side.
	spans := make([][][]byte, len(set))
	off := h.size
	for done := 0; done < len(p); {
		idx := int(off/unit) % len(set)
		n := int(unit - off%unit)
		if n > len(p)-done {
			n = len(p) - done
		}
		spans[idx] = append(spans[idx], p[done:done+n])
		done += n
		off += int64(n)
	}
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, addr := range set {
		if len(spans[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = c.writeStripe(addr, h.path, spans[i],
				localLen(h.size, i, len(set), unit), h.layoutGen)
		}(i, addr)
	}
	wg.Wait()
	// Transport-level (non-retryable) failures dominate the outcome so
	// partial landings go through repair, mirroring fanOut's precedence.
	var err error
	for _, e := range errs {
		if e != nil && !retryableLayout(e) {
			err = e
			break
		}
	}
	if err == nil {
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err != nil {
		if retryableLayout(err) {
			// No repair across layouts (or against a holder whose commit
			// has not landed): the caller re-stats and retries.
			return err
		}
		// Some stripes may have appended and some not; a blind retry
		// would re-append the landed chunks and silently corrupt the
		// round-robin layout. Repair instead: top each stripe up to its
		// exact target length, and poison the handle if that fails.
		if rerr := c.repairWrite(h, set, spans, unit); rerr != nil {
			if retryableLayout(rerr) {
				return rerr
			}
			h.damaged = true
			return fmt.Errorf("client: striped write failed and could not be repaired: %w", rerr)
		}
	}
	h.size += int64(len(p))
	h.off = h.size
	return nil
}

// writeChunkTarget is the payload size one pipelined append RPC aims
// for (whole segments are never split); writeWindow bounds how many
// such RPCs one stripe keeps in flight on its connection.
const (
	writeChunkTarget = 512 << 10
	writeWindow      = 8
)

// writeStripe sends one server's span of a striped write. Servers that
// have advertised CapAppendAt get the pipelined positional-append path:
// the span goes out as a window of chunk RPCs that need no round trip
// between them, and the explicit offsets keep landing order-independent
// under the server's multiplexed worker pool. Anyone else (old servers,
// or a connection whose first response has not yet been seen) gets the
// whole span as one ordered append RPC. Transport-level errors fail the
// server over, as callAddr would.
func (c *Client) writeStripe(addr, path string, segs [][]byte, startOff int64, layoutGen uint64) error {
	sc, err := c.ensureConn(addr)
	if err != nil {
		return err
	}
	var appErr, netErr error
	start := time.Now()
	total := spanLen(segs)
	if sc.caps.Load()&transport.CapAppendAt != 0 {
		appErr, netErr = c.writeStripePipelined(sc, path, segs, startOff, layoutGen)
	} else {
		resp, cerr := sc.call(&transport.Request{
			Type: transport.MsgWrite, Seq: c.seq.Add(1), Job: c.job, Path: path,
			DataSegs: segs, LayoutGen: layoutGen,
		})
		if cerr != nil {
			netErr = cerr
		} else {
			if resp.Err != "" {
				appErr = resp.Error()
			}
			resp.Release()
		}
	}
	if netErr != nil {
		c.markFailed(addr)
		return netErr
	}
	if appErr == nil {
		c.bdp.observe(total, time.Since(start))
	}
	return appErr
}

// writeStripePipelined issues a stripe's span as windowed positional
// appends. Application errors (appErr) and transport failures (netErr)
// are reported separately so the caller can fail the server over on the
// latter only.
func (c *Client) writeStripePipelined(sc *serverConn, path string, segs [][]byte, startOff int64, layoutGen uint64) (appErr, netErr error) {
	// Group whole segments into chunk RPCs of ~writeChunkTarget bytes.
	// Groups are subslices of segs: still zero-copy.
	var inflight []chan *transport.Response
	collect := func() {
		resp, ok := <-inflight[0]
		inflight = inflight[1:]
		if !ok {
			if netErr == nil {
				netErr = fmt.Errorf("client: connection lost")
			}
			return
		}
		if resp.Err != "" && appErr == nil {
			appErr = resp.Error()
		}
		resp.Release()
	}
	off := startOff
	for lo := 0; lo < len(segs) && appErr == nil && netErr == nil; {
		hi := lo + 1
		glen := int64(len(segs[lo]))
		for hi < len(segs) && glen+int64(len(segs[hi])) <= writeChunkTarget {
			glen += int64(len(segs[hi]))
			hi++
		}
		for len(inflight) >= writeWindow && appErr == nil && netErr == nil {
			collect()
		}
		if appErr != nil || netErr != nil {
			break
		}
		ch, err := sc.start(&transport.Request{
			Type: transport.MsgWrite, Seq: c.seq.Add(1), Job: c.job, Path: path,
			DataSegs: segs[lo:hi], AppendAt: true, AppendOff: off,
			LayoutGen: layoutGen,
		})
		if err != nil {
			netErr = err
			break
		}
		inflight = append(inflight, ch)
		off += glen
		lo = hi
	}
	for len(inflight) > 0 {
		collect()
	}
	return appErr, netErr
}

// spanLen is the byte length of a segment list.
func spanLen(segs [][]byte) int64 {
	var n int64
	for _, s := range segs {
		n += int64(len(s))
	}
	return n
}

// spanTail returns the last need bytes of a segment list, as a segment
// list still referencing the original backing bytes.
func spanTail(segs [][]byte, need int64) [][]byte {
	if need <= 0 {
		return nil
	}
	var out [][]byte
	for i := len(segs) - 1; i >= 0 && need > 0; i-- {
		s := segs[i]
		if int64(len(s)) >= need {
			s = s[int64(len(s))-need:]
			need = 0
		} else {
			need -= int64(len(s))
		}
		out = append(out, s)
	}
	// Reverse into span order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// refreshHandle re-learns a file's layout and size after a
// stale-layout answer: the cutover of a stripe migration rewrote the
// metadata, and the handle's cached stripe set predates it.
func (c *Client) refreshHandle(h *fileHandle) error {
	size, isDir, lay, err := c.statFull(h.path)
	if err != nil {
		return err
	}
	if isDir {
		return fmt.Errorf("client: %s: replaced by a directory", h.path)
	}
	h.size = size
	h.stripes, h.unit, h.set, h.layoutGen = lay.stripes, lay.unit, lay.set, lay.gen
	return nil
}

// localLen returns how many bytes of a total-byte file laid round-robin
// in unit-sized chunks over nStripes servers land on stripe i. The one
// implementation lives in fsys (the migration planner trims sealed
// stripes with it too); the property test here covers that shared copy.
func localLen(total int64, i, nStripes int, unit int64) int64 {
	return fsys.LocalLen(total, i, nStripes, unit)
}

// repairWrite completes a partially-landed striped write: each stripe
// server reports its local length, and only the missing tail of its
// span is re-sent. Appends are per-server ordered, so the local length
// identifies exactly which chunks landed.
//
// A stripe longer than its target ("over-landed") cannot arise from
// this handle's own protocol: every chunk is sent exactly once per
// attempt, a landed chunk is detected here by its length and never
// re-sent, and a top-up whose ack is lost leaves the stripe exactly at
// target (need becomes 0 on the next inspection), never past it. The
// only producers of surplus bytes are a second writer on the same path
// (outside the handle contract) or a duplicated delivery through some
// future at-least-once transport. Rather than refusing outright, the
// repair reads this write's own span back: byte-identical content
// means every chunk of this write is correctly placed and the surplus
// is not this write's corruption to report; a mismatch is refused as
// before.
func (c *Client) repairWrite(h *fileHandle, set []string, spans [][][]byte, unit int64) error {
	target := h.size
	for _, segs := range spans {
		target += spanLen(segs)
	}
	for i, addr := range set {
		resp, err := c.callAddr(addr, h.path, &transport.Request{Type: transport.MsgStat})
		if err != nil {
			return fmt.Errorf("stripe %s unreachable: %w", addr, err)
		}
		if resp.Err != "" {
			return fmt.Errorf("stripe %s: %s", addr, resp.Err)
		}
		need := localLen(target, i, len(set), unit) - resp.Size
		resp.Release()
		if need > spanLen(spans[i]) {
			return fmt.Errorf("stripe %s has unexpected length %d", addr, resp.Size)
		}
		if need < 0 {
			if err := c.verifySpan(h, addr, i, len(set), unit, spans[i]); err != nil {
				return fmt.Errorf("stripe %s over-landed to %d: %w", addr, resp.Size, err)
			}
			continue
		}
		if need == 0 {
			continue
		}
		wresp, err := c.callAddr(addr, h.path, &transport.Request{
			Type: transport.MsgWrite, DataSegs: spanTail(spans[i], need),
			LayoutGen: h.layoutGen,
		})
		if err != nil {
			return fmt.Errorf("stripe %s unreachable: %w", addr, err)
		}
		if wresp.Err != "" {
			return fmt.Errorf("stripe %s: %s", addr, wresp.Err)
		}
		wresp.Release()
	}
	return nil
}

// verifySpan reads back the local span this write addressed on one
// stripe server and compares it to the bytes sent — the over-landed
// repair check.
func (c *Client) verifySpan(h *fileHandle, addr string, i, nStripes int, unit int64, want [][]byte) error {
	total := spanLen(want)
	if total == 0 {
		return nil
	}
	start := localLen(h.size, i, nStripes, unit)
	resp, err := c.callAddr(addr, h.path, &transport.Request{
		Type: transport.MsgRead, Offset: start, Size: total,
	})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return resp.Error()
	}
	defer resp.Release()
	got := resp.Data[:resp.N]
	for _, seg := range want {
		if int64(len(got)) < int64(len(seg)) || !bytes.Equal(got[:len(seg)], seg) {
			return fmt.Errorf("span content mismatch at local offset %d", start)
		}
		got = got[len(seg):]
	}
	return nil
}

// Read reads up to len(p) bytes from the handle's offset. A striped
// read touches each stripe server's locally-contiguous range once, in
// parallel, and reassembles the units into p. A stale-layout answer
// (the file was rebalanced under this handle) re-stats the path and
// retries once against the migrated layout.
func (c *Client) Read(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	n, err := c.readOnce(h, p)
	for deadline := time.Now().Add(statRetryTimeout); err != nil && retryableLayout(err) && !time.Now().After(deadline); {
		// A cutover can land between the re-stat and the retry (the
		// refresh may still see the old layout while the old holders
		// serve sealed reads); a bounded loop rides the window out. The
		// backoff keeps a crowd of handles on one migrating file from
		// turning the window into a stat storm against the servers the
		// policy is throttling.
		time.Sleep(10 * time.Millisecond)
		if rerr := c.refreshHandle(h); rerr != nil {
			return 0, fmt.Errorf("client: %s: layout changed and re-stat failed: %w", h.path, rerr)
		}
		n, err = c.readOnce(h, p)
	}
	return n, err
}

// readOnce performs one read attempt at the handle's current layout.
func (c *Client) readOnce(h *fileHandle, p []byte) (int, error) {
	set := h.set
	if len(set) == 0 {
		set = c.stripeSet(h.path, h.stripes)
	}
	if len(set) == 0 {
		return 0, fmt.Errorf("client: no servers left")
	}
	if len(set) == 1 {
		resp, err := c.callAddr(set[0], h.path, &transport.Request{
			Type: transport.MsgRead, Offset: h.off, Size: int64(len(p)),
			LayoutGen: h.layoutGen,
		})
		if err != nil {
			return 0, err
		}
		if resp.Err != "" {
			return 0, resp.Error()
		}
		copy(p, resp.Data)
		h.off += resp.N
		n := int(resp.N)
		resp.Release()
		return n, nil
	}
	// The handle's tracked size clamps the read (no per-read stat storm
	// on the path that exists to scale bandwidth); writes through other
	// handles become visible on reopen.
	size := h.size
	want := int64(len(p))
	if h.off >= size {
		return 0, nil
	}
	if want > size-h.off {
		want = size - h.off
	}
	unit := h.unit
	if unit <= 0 {
		unit = c.opts.StripeUnit
	}
	g0, g1 := h.off, h.off+want
	// Each server's touched units are consecutive multiples of the unit
	// in its local stripe, so its byte range is contiguous: track the
	// local [lo,hi) per server, read once, then scatter units back.
	lo := make([]int64, len(set))
	hi := make([]int64, len(set))
	for i := range lo {
		lo[i] = -1
	}
	for u := g0 / unit; u <= (g1-1)/unit; u++ {
		idx := int(u) % len(set)
		segStart, segEnd := u*unit, (u+1)*unit
		if segStart < g0 {
			segStart = g0
		}
		if segEnd > g1 {
			segEnd = g1
		}
		base := (u / int64(len(set))) * unit
		llo := base + segStart - u*unit
		lhi := base + segEnd - u*unit
		if lo[idx] < 0 {
			lo[idx] = llo
		}
		hi[idx] = lhi
	}
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, addr := range set {
		if lo[i] < 0 {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = c.readStripe(addr, h.path, i, len(set), unit,
				lo[i], hi[i], h.layoutGen, p, g0, g1)
		}(i, addr)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil && !retryableLayout(e) {
			return 0, e
		}
	}
	for _, e := range errs {
		if e != nil {
			return 0, e
		}
	}
	h.off += want
	return int(want), nil
}

// readChunk is the payload size one pipelined stripe-read RPC asks
// for; readWindow bounds how many such RPCs one stripe keeps in flight.
const (
	readChunk  = 512 << 10
	readWindow = 8
)

// readStripe fetches one server's locally-contiguous byte range
// [lo,hi) of a striped read as a window of chunk RPCs — readahead that
// needs no round trip between chunks (reads at explicit offsets are
// idempotent, so unlike writes this pipelining needs no server
// capability) — and scatters each arriving chunk's units straight into
// p. Transport-level errors fail the server over.
func (c *Client) readStripe(addr, path string, idx, nStripes int, unit int64, lo, hi int64, layoutGen uint64, p []byte, g0, g1 int64) error {
	sc, err := c.ensureConn(addr)
	if err != nil {
		return err
	}
	type chunk struct {
		off int64
		n   int64
		ch  chan *transport.Response
	}
	var inflight []chunk
	var appErr, netErr error
	start := time.Now()
	collect := func() {
		ck := inflight[0]
		inflight = inflight[1:]
		resp, ok := <-ck.ch
		if !ok {
			if netErr == nil {
				netErr = fmt.Errorf("client: connection lost")
			}
			return
		}
		defer resp.Release()
		if resp.Err != "" {
			if appErr == nil {
				appErr = resp.Error()
			}
			return
		}
		if resp.N < ck.n && appErr == nil {
			appErr = fmt.Errorf("client: short stripe read from %s: %d < %d", addr, resp.N, ck.n)
			return
		}
		scatterLocal(p, g0, g1, idx, nStripes, unit, ck.off, resp.Data[:ck.n])
	}
	for off := lo; off < hi && appErr == nil && netErr == nil; {
		n := hi - off
		if n > readChunk {
			n = readChunk
		}
		for len(inflight) >= readWindow && appErr == nil && netErr == nil {
			collect()
		}
		if appErr != nil || netErr != nil {
			break
		}
		ch, err := sc.start(&transport.Request{
			Type: transport.MsgRead, Seq: c.seq.Add(1), Job: c.job, Path: path,
			Offset: off, Size: n, LayoutGen: layoutGen,
		})
		if err != nil {
			netErr = err
			break
		}
		inflight = append(inflight, chunk{off: off, n: n, ch: ch})
		off += n
	}
	for len(inflight) > 0 {
		collect()
	}
	if netErr != nil {
		c.markFailed(addr)
		return netErr
	}
	if appErr == nil {
		c.bdp.observe(hi-lo, time.Since(start))
	}
	return appErr
}

// scatterLocal copies one stripe-local contiguous chunk (starting at
// local offset a on stripe idx) into its global positions in p, whose
// first byte is global offset g0. The round-robin inverse: local unit
// l/unit is global unit (l/unit)*nStripes+idx.
func scatterLocal(p []byte, g0, g1 int64, idx, nStripes int, unit, a int64, data []byte) {
	for l := a; l < a+int64(len(data)); {
		lu := l / unit
		unitEnd := (lu + 1) * unit
		end := a + int64(len(data))
		if end > unitEnd {
			end = unitEnd
		}
		g := (lu*int64(nStripes)+int64(idx))*unit + l%unit
		// Clamp to the requested global window (the first and last
		// touched units may be partial; a unit wholly outside the
		// window is dropped, not sliced out of range).
		src := data[l-a : end-a]
		if g >= g1 || g+int64(len(src)) <= g0 {
			l = end
			continue
		}
		if g < g0 {
			src = src[g0-g:]
			g = g0
		}
		if g+int64(len(src)) > g1 {
			src = src[:g1-g]
		}
		copy(p[g-g0:], src)
		l = end
	}
}

// Lseek repositions the handle. Whence follows POSIX: 0=set, 1=cur,
// 2=end. A resulting offset below zero is refused with the handle
// unmoved — POSIX EINVAL — instead of the old silent clamp to zero,
// which hid arithmetic bugs in callers by quietly rereading the file
// head.
func (c *Client) Lseek(fd int, offset int64, whence int) (int64, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	var next int64
	switch whence {
	case 0:
		next = offset
	case 1:
		next = h.off + offset
	case 2:
		size, _, err := c.Stat(h.path)
		if err != nil {
			return 0, err
		}
		next = size + offset
	default:
		return 0, fmt.Errorf("client: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("client: invalid seek to negative offset %d (EINVAL)", next)
	}
	h.off = next
	return h.off, nil
}

// CloseFd releases a file descriptor.
func (c *Client) CloseFd(fd int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.fds[fd]; !ok {
		return fmt.Errorf("client: bad file descriptor %d", fd)
	}
	delete(c.fds, fd)
	return nil
}

// Stat returns size and directory flag. A striped file's size is the
// sum of its stripes.
func (c *Client) Stat(path string) (size int64, isDir bool, err error) {
	size, isDir, _, err = c.statFull(path)
	return size, isDir, err
}

// Layout returns a file's recorded stripe servers (in stripe order) and
// stripe width — the operator's view of where a file's bytes live,
// which rebalancing rewrites as the fabric grows.
func (c *Client) Layout(path string) (set []string, stripes int, err error) {
	_, _, lay, err := c.statFull(path)
	if err != nil {
		return nil, 0, err
	}
	return lay.set, lay.stripes, nil
}

// layout is a file's stripe geometry as recorded in its metadata.
type layoutInfo struct {
	stripes int
	unit    int64
	set     []string
	gen     uint64 // layout generation; echoed on reads and writes
}

// statFull stats the path's ring owner to learn what it is — a
// directory, an unstriped file, or a striped file whose layout the
// creating client recorded in the metadata — then sums stripe sizes
// across the recorded stripe set. If the ring owner has drifted since
// creation and no longer holds the entry, every connected server is
// consulted before giving up (metadata is findable as long as any
// stripe server lives).
//
// The stripe-size fan-out is layout-generation-checked: every stripe
// server must answer under the same generation the layout was read at,
// so a stat can never sum sizes across two different layouts of a
// mid-migration file. A stale answer anywhere — or a not-exist from a
// stripe member after the layout itself was readable, which is a
// target whose commit has not landed yet — re-reads the layout (a
// rebalance cutover lands within a couple of round trips; the first
// retry refreshes membership so freshly joined owners are dialed).
func (c *Client) statFull(path string) (size int64, isDir bool, lay layoutInfo, err error) {
	staleDeadline := time.Now().Add(statRetryTimeout)
	goneDeadline := time.Now().Add(statGoneRetryTimeout)
	for attempt := 0; ; attempt++ {
		var transient bool
		size, isDir, lay, transient, err = c.statOnce(path, false)
		if err == nil || !transient {
			return size, isDir, lay, err
		}
		if transport.IsStaleLayout(err) {
			if time.Now().After(staleDeadline) {
				return size, isDir, lay, err
			}
		} else if time.Now().After(goneDeadline) {
			// A stripe member still answering not-exist past every
			// cutover window holds a genuinely lost stripe (a volatile
			// member crash-restarted empty, say): fall back to summing
			// the members that do hold data — a stripe lost to failover
			// contributes nothing, and the stat must not fail just
			// because the recorded layout names it, or Unlink could
			// never clean such files up.
			size, isDir, lay, _, err = c.statOnce(path, true)
			return size, isDir, lay, err
		}
		if attempt == 0 {
			c.refreshMembership()
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// statRetryTimeout bounds how long a stat chases a moving layout — the
// seal-to-cutover window of one file's migration, which stretches with
// machine load since the copy is policy-throttled. Only transient
// outcomes retry, so genuine errors still fail on the first attempt.
// statGoneRetryTimeout is the shorter budget for a stripe member
// answering not-exist: a mid-cutover target commits within a couple of
// round trips, while a genuinely lost stripe never will — after it,
// the stat degrades to the tolerant partial sum.
const (
	statRetryTimeout     = 2 * time.Second
	statGoneRetryTimeout = 500 * time.Millisecond
)

// statOnce is one layout read + generation-checked stripe-size sum.
// transient marks outcomes worth re-reading the layout for: a
// stale-layout answer anywhere, or a not-exist from the stripe
// fan-out (the layout was just readable, so the member is a
// mid-cutover target, not a deleted file).
func (c *Client) statOnce(path string, tolerateMissing bool) (size int64, isDir bool, lay layoutInfo, transient bool, err error) {
	resp, err := c.call(path, &transport.Request{Type: transport.MsgStat})
	if err != nil {
		resp = c.statAny(path)
		if resp == nil {
			return 0, false, lay, transport.IsStaleLayout(err), err
		}
	}
	if resp.IsDir {
		return 0, true, layoutInfo{stripes: 1}, false, nil
	}
	lay.stripes, lay.unit, lay.set, lay.gen = resp.Stripes, resp.StripeUnit, resp.StripeSet, resp.LayoutGen
	if lay.stripes < 1 {
		lay.stripes = 1
	}
	if lay.unit <= 0 {
		lay.unit = c.opts.StripeUnit
	}
	if len(lay.set) == 0 {
		lay.set = c.stripeSet(path, lay.stripes)
	}
	if len(lay.set) == 1 {
		return resp.Size, false, lay, false, nil
	}
	// Sum sizes over the reachable stripe servers only: a stripe lost
	// to failover contributes nothing (its bytes are gone), and the
	// stat itself must not fail just because the layout names a dead
	// member — Unlink needs the layout to clean such files up. Members
	// this client has not dialed yet (a migrated layout naming a
	// freshly joined server) are connected on demand.
	var live []string
	for _, addr := range lay.set {
		if _, err := c.ensureConn(addr); err == nil {
			live = append(live, addr)
		}
	}
	if tolerateMissing {
		// Degraded mode (statFull's not-exist budget ran out): sum the
		// members that do hold the entry, skipping the rest — the
		// pre-rebalance partial-loss semantics.
		for _, addr := range live {
			r, err := c.callAddr(addr, path, &transport.Request{Type: transport.MsgStat})
			if err != nil || r.Err != "" {
				continue
			}
			size += r.Size
		}
		return size, false, lay, false, nil
	}
	resps, err := c.fanOut(live, path, func(int) *transport.Request {
		return &transport.Request{Type: transport.MsgStat, LayoutGen: lay.gen}
	})
	if err != nil {
		transient := transport.IsStaleLayout(err) || transport.IsNotExist(err)
		return 0, false, lay, transient, err
	}
	if len(live) == len(lay.set) {
		// The authoritative size is the consistent round-robin prefix of
		// the per-stripe sizes, not their raw sum: a write racing a
		// migration seal can land a chunk on a not-yet-frozen stripe
		// while an earlier chunk is refused, and counting that orphan
		// would make Write's surviving-prefix arithmetic resume past a
		// hole — acknowledging bytes the cutover trim then discards.
		sizes := make([]int64, len(resps))
		for i, r := range resps {
			sizes[i] = r.Size
		}
		return fsys.ConsistentTotal(sizes, lay.unit), false, lay, false, nil
	}
	for _, r := range resps {
		size += r.Size
	}
	return size, false, lay, false, nil
}

// statAny broadcasts a stat to every connected server and returns the
// first hit — the fallback path for entries the drifted ring owner no
// longer holds.
func (c *Client) statAny(path string) *transport.Response {
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		resp, err := sc.call(&transport.Request{
			Type: transport.MsgStat, Seq: c.seq.Add(1), Job: c.job, Path: path,
		})
		if err == nil && resp.Err == "" {
			return resp
		}
	}
	return nil
}

// sortedConns snapshots the live connections in address order — the
// iteration every broadcast-style method (Mkdir/Readdir/Flush,
// SetPolicy, ShareReports) shares.
func (c *Client) sortedConns() []*serverConn {
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].addr < conns[j].addr })
	return conns
}

// broadcast sends the request to every server and collects responses.
// Directory metadata is replicated on all servers so that any server can
// validate parents locally, matching §4.3's "directories and files are
// stored as files" with directory content spread across servers.
func (c *Client) broadcast(path string, mk func() *transport.Request) ([]*transport.Response, error) {
	var out []*transport.Response
	for _, sc := range c.sortedConns() {
		req := mk()
		req.Seq = c.seq.Add(1)
		req.Job = c.job
		req.Path = path
		resp, err := sc.call(req)
		if err != nil {
			c.markFailed(sc.addr)
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// Flush asks every connected server to stage out all dirty data to its
// backing store before returning — the client-visible durability
// barrier (an application calls it after writing a checkpoint it cannot
// afford to lose). Servers without a backing store reply immediately.
func (c *Client) Flush() error {
	resps, err := c.broadcast("/", func() *transport.Request {
		return &transport.Request{Type: transport.MsgFlush}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}

// SetPolicy installs a new cluster-wide sharing policy through any
// live server — the client face of the live hot-swap. The contacted
// member validates the policy string, bumps the cluster policy epoch,
// and gossip carries the new version to every other member; each
// server recompiles at its next λ with no restart and no dropped
// request. Returns the canonical policy string and the new epoch.
func (c *Client) SetPolicy(policyStr string) (string, uint64, error) {
	var lastErr error = fmt.Errorf("client: no servers left")
	for _, sc := range c.sortedConns() {
		resp, err := sc.call(&transport.Request{
			Type: transport.MsgPolicySet, Seq: c.seq.Add(1), Job: c.job,
			PolicyStr: policyStr,
		})
		if err != nil {
			c.markFailed(sc.addr)
			lastErr = err
			continue
		}
		if resp.Err != "" {
			// An application error (an unparseable policy string) is the
			// same on every member; do not retry it around the ring.
			return "", 0, resp.Error()
		}
		return resp.PolicyStr, resp.PolicyEpoch, nil
	}
	return "", 0, lastErr
}

// ShareReport is one server's per-entity fairness report: the policy
// it is enforcing (string + applied cluster policy epoch) and each
// sharing entity's compiled token share versus measured serviced-byte
// share over the server's λ-windowed horizon.
type ShareReport struct {
	Addr        string
	Policy      string
	PolicyEpoch uint64
	Shares      []transport.ShareRecord
}

// ShareReports collects every connected server's fairness report, in
// address order — the raw material of `themisctl policy status` and of
// swap-convergence checks (aggregate Bytes per entity across servers
// for the cluster-wide measured share).
func (c *Client) ShareReports() ([]ShareReport, error) {
	var out []ShareReport
	for _, sc := range c.sortedConns() {
		resp, err := sc.call(&transport.Request{
			Type: transport.MsgShareReport, Seq: c.seq.Add(1), Job: c.job,
		})
		if err != nil {
			c.markFailed(sc.addr)
			return out, err
		}
		if resp.Err != "" {
			return out, resp.Error()
		}
		out = append(out, ShareReport{
			Addr: sc.addr, Policy: resp.PolicyStr,
			PolicyEpoch: resp.PolicyEpoch, Shares: resp.Shares,
		})
	}
	return out, nil
}

// Mkdir creates a directory (replicated on every server).
func (c *Client) Mkdir(path string) error {
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgMkdir}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}

// Readdir lists a directory, merging the children recorded on each
// server (a file's directory entry lives on the file's owner server).
// A server that answers not-exist contributes nothing instead of
// failing the merge: directory replication is opportunistic — a member
// that joined after the mkdir legitimately lacks the entry until
// something migrates into it. Only not-exist is tolerated (any other
// error, like not-a-directory, signals real divergence and surfaces),
// and the listing fails when every server answers not-exist (a
// genuinely missing directory).
func (c *Client) Readdir(path string) ([]string, error) {
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgReaddir}
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	var firstErr error
	ok := false
	for _, r := range resps {
		if r.Err != "" {
			if !transport.IsNotExist(r.Error()) {
				return nil, r.Error()
			}
			if firstErr == nil {
				firstErr = r.Error()
			}
			continue
		}
		ok = true
		for _, n := range r.Names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	if !ok && firstErr != nil {
		return nil, firstErr
	}
	sort.Strings(names)
	return names, nil
}

// Unlink removes a file (on its stripe servers) or a directory (on all).
// Stripe servers that have failed over are skipped: their copy died with
// them, and refusing to unlink a partially-lost file would leave its
// stale layout squatting on the name forever.
func (c *Client) Unlink(path string) error {
	_, isDir, lay, err := c.statFull(path)
	if err != nil {
		return err
	}
	if !isDir {
		var live []string
		for _, addr := range lay.set {
			if _, err := c.ensureConn(addr); err == nil {
				live = append(live, addr)
			}
		}
		if len(live) == 0 {
			return fmt.Errorf("client: no live stripe servers hold %s", path)
		}
		_, err := c.fanOut(live, path, func(int) *transport.Request {
			return &transport.Request{Type: transport.MsgUnlink}
		})
		return err
	}
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgUnlink}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}
