// Package client is the ThemisIO client library: the POSIX-compliant
// interface of §4.4 (open/close/read/write/lseek/stat/opendir/readdir/
// unlink) over the wire protocol, with job metadata embedded in every
// request and periodic heartbeats to every server (§4.1). On a real
// deployment these entry points are reached by intercepting the libc
// symbols (override/trampoline, §4.4); here they are called directly —
// the arbitration problem is identical either way.
//
// With multiple servers the client places each path on servers via the
// same consistent hash the servers' file system uses. Files may be
// striped: data is split into stripe-unit chunks laid round-robin
// across the path's stripe set, and reads and writes fan out to the
// stripe servers in parallel, so one client's aggregate bandwidth
// scales with the server count. A server that stops answering is
// removed from the client's ring, so its segment reassigns and I/O
// continues on the survivors (the client half of failover).
package client

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/chash"
	"themisio/internal/cluster"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// Options tunes a client beyond the defaults.
type Options struct {
	// Stripes is the number of servers each file's data spans (clipped
	// to the live server count; non-positive means 1, the unstriped
	// placement of the seed implementation).
	Stripes int
	// StripeUnit is the bytes written to one server before moving to
	// the next (non-positive selects DefaultStripeUnit).
	StripeUnit int64
	// LegacyGob forces the gob wire codec instead of the default
	// length-prefixed binary codec — the escape hatch for servers too
	// old to auto-detect the binary preamble.
	LegacyGob bool
}

// DefaultStripeUnit is the stripe chunk size, matching the server-side
// file system's unit.
const DefaultStripeUnit = 1 << 20

// Client is one application process's connection to the burst buffer.
type Client struct {
	job  policy.JobInfo
	ring *chash.Ring
	opts Options

	mu       sync.Mutex
	conns    map[string]*serverConn
	draining map[string]bool // members to avoid for new placement
	fds      map[int]*fileHandle
	next     int
	seq      atomic.Uint64

	hbStop chan struct{}
	hbDone chan struct{}
}

type fileHandle struct {
	path string
	off  int64
	// size is the known global size — the append position for striped
	// writes. It is set at Open and advanced by Write; extensions made
	// through other handles become visible on reopen.
	size    int64
	stripes int      // the file's stripe width (from metadata, not config)
	unit    int64    // the file's stripe unit (from metadata, not config)
	set     []string // the file's recorded stripe servers, in order
	// damaged marks a handle whose striped write could not be completed
	// or repaired; further writes would interleave wrongly, so they are
	// refused instead of silently corrupting the file.
	damaged bool
}

// serverConn multiplexes concurrent requests over one connection.
type serverConn struct {
	addr string
	conn *transport.Conn
	mu   sync.Mutex
	wait map[uint64]chan *transport.Response
	err  error
}

func dialServer(addr string, legacyGob bool) (*serverConn, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	conn := transport.NewBinaryConn(raw)
	if legacyGob {
		conn = transport.NewConn(raw)
	}
	sc := &serverConn{
		addr: addr,
		conn: conn,
		wait: map[uint64]chan *transport.Response{},
	}
	go sc.reader()
	return sc, nil
}

func (sc *serverConn) reader() {
	for {
		resp, err := sc.conn.RecvResponse()
		if err != nil {
			sc.mu.Lock()
			sc.err = err
			for _, ch := range sc.wait {
				close(ch)
			}
			sc.wait = map[uint64]chan *transport.Response{}
			sc.mu.Unlock()
			return
		}
		sc.mu.Lock()
		ch, ok := sc.wait[resp.Seq]
		delete(sc.wait, resp.Seq)
		sc.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

func (sc *serverConn) call(req *transport.Request) (*transport.Response, error) {
	ch := make(chan *transport.Response, 1)
	sc.mu.Lock()
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return nil, err
	}
	sc.wait[req.Seq] = ch
	sc.mu.Unlock()
	if err := sc.conn.SendRequest(req); err != nil {
		sc.mu.Lock()
		delete(sc.wait, req.Seq)
		sc.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("client: connection lost")
	}
	return resp, nil
}

// Dial connects to the given servers under the job identity with
// default options (no striping). The client begins heartbeating
// immediately so the servers' job monitors see the job before its
// first I/O.
func Dial(job policy.JobInfo, servers []string) (*Client, error) {
	return DialOpts(job, servers, Options{})
}

// DialOpts connects with explicit striping options.
func DialOpts(job policy.JobInfo, servers []string, opts Options) (*Client, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: no servers")
	}
	if opts.Stripes <= 0 {
		opts.Stripes = 1
	}
	if opts.StripeUnit <= 0 {
		opts.StripeUnit = DefaultStripeUnit
	}
	c := &Client{
		job:      job,
		ring:     chash.New(0),
		opts:     opts,
		conns:    map[string]*serverConn{},
		draining: map[string]bool{},
		fds:      map[int]*fileHandle{},
		next:     3, // fds 0-2 are taken, as in POSIX
		hbStop:   make(chan struct{}),
		hbDone:   make(chan struct{}),
	}
	for _, addr := range servers {
		sc, err := dialServer(addr, opts.LegacyGob)
		if err != nil {
			c.closeConns()
			return nil, err
		}
		c.conns[addr] = sc
		c.ring.Add(addr)
	}
	c.heartbeatAll()
	go c.heartbeatLoop()
	return c, nil
}

func (c *Client) closeConns() {
	for _, sc := range c.conns {
		sc.conn.Close()
	}
}

// Close notifies servers and tears down connections (§4.2: "when a
// client exits, it notifies the ThemisIO servers to destroy the
// corresponding mapping entry").
func (c *Client) Close() {
	close(c.hbStop)
	<-c.hbDone
	// Copy under the lock, send after: a goodbye to a wedged server
	// must not hold c.mu and block every other client method.
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		_ = sc.conn.SendRequest(&transport.Request{Type: transport.MsgBye, Job: c.job})
		sc.conn.Close()
	}
}

// Servers returns the addresses the client still considers live.
func (c *Client) Servers() []string { return c.ring.Nodes() }

func (c *Client) heartbeatLoop() {
	defer close(c.hbDone)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
			c.heartbeatAll()
			c.refreshMembership()
		}
	}
}

// refreshMembership asks one live server for the fabric's membership
// view: failed and left members are dropped from the placement ring
// proactively (not just after an I/O error), and draining members are
// remembered so new files avoid them.
func (c *Client) refreshMembership() {
	c.mu.Lock()
	var any *serverConn
	for _, sc := range c.conns {
		any = sc
		break
	}
	c.mu.Unlock()
	if any == nil {
		return
	}
	resp, err := any.call(&transport.Request{
		Type: transport.MsgClusterStatus, Seq: c.seq.Add(1), Job: c.job,
	})
	if err != nil {
		c.markFailed(any.addr)
		return
	}
	for _, m := range cluster.FromRecords(resp.Members) {
		switch m.State {
		case cluster.StateFailed, cluster.StateLeft:
			c.markFailed(m.Addr)
		case cluster.StateDraining:
			c.mu.Lock()
			c.draining[m.Addr] = true
			c.mu.Unlock()
		case cluster.StateAlive:
			c.mu.Lock()
			delete(c.draining, m.Addr)
			c.mu.Unlock()
		}
	}
}

func (c *Client) heartbeatAll() {
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		if err := sc.conn.SendRequest(&transport.Request{
			Type: transport.MsgHeartbeat,
			Seq:  c.seq.Add(1),
			Job:  c.job,
		}); err != nil {
			c.markFailed(sc.addr)
		}
	}
}

// markFailed drops a server the client could not reach: its connection
// closes and its ring segment reassigns to the survivors, mirroring the
// fabric's failover. Subsequent placement follows the shrunken ring.
func (c *Client) markFailed(addr string) {
	c.mu.Lock()
	sc, ok := c.conns[addr]
	if ok {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	if ok {
		sc.conn.Close()
		c.ring.Remove(addr)
	}
}

// connFor returns the live connection for addr.
func (c *Client) connFor(addr string) (*serverConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, ok := c.conns[addr]
	if !ok {
		return nil, fmt.Errorf("client: no live connection to %s", addr)
	}
	return sc, nil
}

// stripeSet returns the addresses holding a width-stripes file's data,
// in stripe order, when no recorded set is available (legacy files).
func (c *Client) stripeSet(path string, stripes int) []string {
	if stripes < 1 {
		stripes = 1
	}
	return c.ring.LookupN(path, stripes)
}

// createSet picks the stripe servers for a new file: the ring walk,
// skipping draining members when enough non-draining servers remain.
// The chosen set is recorded in the file metadata, so every later
// reader follows it regardless of how the ring drifts afterwards.
func (c *Client) createSet(path string) []string {
	c.mu.Lock()
	nDraining := len(c.draining)
	c.mu.Unlock()
	want := c.opts.Stripes
	candidates := c.ring.LookupN(path, want+nDraining)
	var out []string
	for _, addr := range candidates {
		c.mu.Lock()
		drain := c.draining[addr]
		c.mu.Unlock()
		if !drain && len(out) < want {
			out = append(out, addr)
		}
	}
	if len(out) == 0 {
		return candidates[:min(want, len(candidates))]
	}
	return out
}

// callAddr sends one request to one server, failing the server over on
// a transport-level error.
func (c *Client) callAddr(addr, path string, req *transport.Request) (*transport.Response, error) {
	sc, err := c.connFor(addr)
	if err != nil {
		return nil, err
	}
	req.Seq = c.seq.Add(1)
	req.Job = c.job
	req.Path = path
	resp, err := sc.call(req)
	if err != nil {
		c.markFailed(addr)
		return nil, err
	}
	return resp, nil
}

// call routes a request to the path's owner server, retrying on the
// reassigned owner when the first choice has failed. Application errors
// (ErrNotExist and friends) surface immediately; only transport-level
// failures trigger re-routing.
func (c *Client) call(path string, req *transport.Request) (*transport.Response, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		addr, ok := c.ring.Lookup(path)
		if !ok {
			return nil, fmt.Errorf("client: no servers left")
		}
		resp, err := c.callAddr(addr, path, req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Err != "" {
			return nil, resp.Error()
		}
		return resp, nil
	}
	return nil, lastErr
}

// fanOut sends one request per address in parallel and collects the
// responses in address order. A transport-level error on any server
// fails that server over and reports the error; an application error in
// any response is returned as-is.
func (c *Client) fanOut(addrs []string, path string, mk func(i int) *transport.Request) ([]*transport.Response, error) {
	resps := make([]*transport.Response, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		req := mk(i)
		if req == nil {
			continue
		}
		wg.Add(1)
		go func(i int, addr string, req *transport.Request) {
			defer wg.Done()
			resps[i], errs[i] = c.callAddr(addr, path, req)
		}(i, addr, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return resps, err
		}
	}
	for _, r := range resps {
		if r != nil && r.Err != "" {
			return resps, r.Error()
		}
	}
	return resps, nil
}

// Open opens an existing file (create=false) or creates it, returning a
// file descriptor. Creation places the file on every server of its
// stripe set — recording the stripe width in the file metadata — so
// striped appends land locally and any client can later discover the
// layout. Opening reads the width back from the metadata, so clients
// with different striping configurations interoperate.
func (c *Client) Open(path string, create bool) (int, error) {
	if create {
		set := c.createSet(path)
		if len(set) == 0 {
			return -1, fmt.Errorf("client: no servers left")
		}
		if _, err := c.fanOut(set, path, func(int) *transport.Request {
			return &transport.Request{
				Type:       transport.MsgCreate,
				Stripes:    len(set),
				StripeUnit: c.opts.StripeUnit,
				StripeSet:  set,
			}
		}); err != nil {
			return -1, err
		}
	}
	size, _, layout, err := c.statFull(path)
	if err != nil {
		return -1, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fd := c.next
	c.next++
	c.fds[fd] = &fileHandle{
		path: path, size: size,
		stripes: layout.stripes, unit: layout.unit, set: layout.set,
	}
	return fd, nil
}

func (c *Client) handle(fd int) (*fileHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.fds[fd]
	if !ok {
		return nil, fmt.Errorf("client: bad file descriptor %d", fd)
	}
	return h, nil
}

// Write appends len(p) bytes to the file (the server store is
// append-structured; sequential writes are the burst-buffer pattern).
// With striping, the data splits into stripe-unit chunks laid
// round-robin over the stripe set; each server's chunks are contiguous
// in its local stripe, so the whole write is at most one parallel
// request per stripe server.
func (c *Client) Write(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	if h.damaged {
		return 0, fmt.Errorf("client: %s: earlier striped write failed mid-stripe; reopen after repair", h.path)
	}
	set := h.set
	if len(set) == 0 {
		set = c.stripeSet(h.path, h.stripes)
	}
	if len(set) == 0 {
		return 0, fmt.Errorf("client: no servers left")
	}
	unit := h.unit
	if unit <= 0 {
		unit = c.opts.StripeUnit
	}
	// Slice p into per-server spans, preserving order within a server.
	bufs := make([][]byte, len(set))
	off := h.size
	for done := 0; done < len(p); {
		idx := int(off/unit) % len(set)
		n := int(unit - off%unit)
		if n > len(p)-done {
			n = len(p) - done
		}
		bufs[idx] = append(bufs[idx], p[done:done+n]...)
		done += n
		off += int64(n)
	}
	if _, err := c.fanOut(set, h.path, func(i int) *transport.Request {
		if len(bufs[i]) == 0 {
			return nil
		}
		return &transport.Request{Type: transport.MsgWrite, Data: bufs[i]}
	}); err != nil {
		// Some stripes may have appended and some not; a blind retry
		// would re-append the landed chunks and silently corrupt the
		// round-robin layout. Repair instead: top each stripe up to its
		// exact target length, and poison the handle if that fails.
		if rerr := c.repairWrite(h, set, bufs, unit); rerr != nil {
			h.damaged = true
			return 0, fmt.Errorf("client: striped write failed and could not be repaired: %w", rerr)
		}
	}
	h.size += int64(len(p))
	h.off = h.size
	return len(p), nil
}

// localLen returns how many bytes of a total-byte file laid round-robin
// in unit-sized chunks over nStripes servers land on stripe i.
func localLen(total int64, i, nStripes int, unit int64) int64 {
	cycle := unit * int64(nStripes)
	n := (total / cycle) * unit
	rem := total%cycle - int64(i)*unit
	if rem > unit {
		rem = unit
	}
	if rem > 0 {
		n += rem
	}
	return n
}

// repairWrite completes a partially-landed striped write: each stripe
// server reports its local length, and only the missing tail of its
// span is re-sent. Appends are per-server ordered, so the local length
// identifies exactly which chunks landed.
func (c *Client) repairWrite(h *fileHandle, set []string, bufs [][]byte, unit int64) error {
	target := h.size + func() int64 {
		var n int64
		for _, b := range bufs {
			n += int64(len(b))
		}
		return n
	}()
	for i, addr := range set {
		resp, err := c.callAddr(addr, h.path, &transport.Request{Type: transport.MsgStat})
		if err != nil {
			return fmt.Errorf("stripe %s unreachable: %w", addr, err)
		}
		if resp.Err != "" {
			return fmt.Errorf("stripe %s: %s", addr, resp.Err)
		}
		need := localLen(target, i, len(set), unit) - resp.Size
		if need < 0 || need > int64(len(bufs[i])) {
			return fmt.Errorf("stripe %s has unexpected length %d", addr, resp.Size)
		}
		if need == 0 {
			continue
		}
		wresp, err := c.callAddr(addr, h.path, &transport.Request{
			Type: transport.MsgWrite, Data: bufs[i][int64(len(bufs[i]))-need:],
		})
		if err != nil {
			return fmt.Errorf("stripe %s unreachable: %w", addr, err)
		}
		if wresp.Err != "" {
			return fmt.Errorf("stripe %s: %s", addr, wresp.Err)
		}
	}
	return nil
}

// Read reads up to len(p) bytes from the handle's offset. A striped
// read touches each stripe server's locally-contiguous range once, in
// parallel, and reassembles the units into p.
func (c *Client) Read(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	set := h.set
	if len(set) == 0 {
		set = c.stripeSet(h.path, h.stripes)
	}
	if len(set) == 0 {
		return 0, fmt.Errorf("client: no servers left")
	}
	if len(set) == 1 {
		resp, err := c.callAddr(set[0], h.path, &transport.Request{
			Type: transport.MsgRead, Offset: h.off, Size: int64(len(p)),
		})
		if err != nil {
			return 0, err
		}
		if resp.Err != "" {
			return 0, resp.Error()
		}
		copy(p, resp.Data)
		h.off += resp.N
		return int(resp.N), nil
	}
	// The handle's tracked size clamps the read (no per-read stat storm
	// on the path that exists to scale bandwidth); writes through other
	// handles become visible on reopen.
	size := h.size
	want := int64(len(p))
	if h.off >= size {
		return 0, nil
	}
	if want > size-h.off {
		want = size - h.off
	}
	unit := h.unit
	if unit <= 0 {
		unit = c.opts.StripeUnit
	}
	g0, g1 := h.off, h.off+want
	// Each server's touched units are consecutive multiples of the unit
	// in its local stripe, so its byte range is contiguous: track the
	// local [lo,hi) per server, read once, then scatter units back.
	lo := make([]int64, len(set))
	hi := make([]int64, len(set))
	for i := range lo {
		lo[i] = -1
	}
	for u := g0 / unit; u <= (g1-1)/unit; u++ {
		idx := int(u) % len(set)
		segStart, segEnd := u*unit, (u+1)*unit
		if segStart < g0 {
			segStart = g0
		}
		if segEnd > g1 {
			segEnd = g1
		}
		base := (u / int64(len(set))) * unit
		llo := base + segStart - u*unit
		lhi := base + segEnd - u*unit
		if lo[idx] < 0 {
			lo[idx] = llo
		}
		hi[idx] = lhi
	}
	resps, err := c.fanOut(set, h.path, func(i int) *transport.Request {
		if lo[i] < 0 {
			return nil
		}
		return &transport.Request{Type: transport.MsgRead, Offset: lo[i], Size: hi[i] - lo[i]}
	})
	if err != nil {
		return 0, err
	}
	for i, r := range resps {
		if r != nil && r.N < hi[i]-lo[i] {
			return 0, fmt.Errorf("client: short stripe read from %s: %d < %d",
				set[i], r.N, hi[i]-lo[i])
		}
	}
	for u := g0 / unit; u <= (g1-1)/unit; u++ {
		idx := int(u) % len(set)
		segStart, segEnd := u*unit, (u+1)*unit
		if segStart < g0 {
			segStart = g0
		}
		if segEnd > g1 {
			segEnd = g1
		}
		base := (u / int64(len(set))) * unit
		llo := base + segStart - u*unit
		copy(p[segStart-g0:segEnd-g0], resps[idx].Data[llo-lo[idx]:])
	}
	h.off += want
	return int(want), nil
}

// Lseek repositions the handle. Whence follows POSIX: 0=set, 1=cur,
// 2=end.
func (c *Client) Lseek(fd int, offset int64, whence int) (int64, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	switch whence {
	case 0:
		h.off = offset
	case 1:
		h.off += offset
	case 2:
		size, _, err := c.Stat(h.path)
		if err != nil {
			return 0, err
		}
		h.off = size + offset
	default:
		return 0, fmt.Errorf("client: bad whence %d", whence)
	}
	if h.off < 0 {
		h.off = 0
	}
	return h.off, nil
}

// CloseFd releases a file descriptor.
func (c *Client) CloseFd(fd int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.fds[fd]; !ok {
		return fmt.Errorf("client: bad file descriptor %d", fd)
	}
	delete(c.fds, fd)
	return nil
}

// Stat returns size and directory flag. A striped file's size is the
// sum of its stripes.
func (c *Client) Stat(path string) (size int64, isDir bool, err error) {
	size, isDir, _, err = c.statFull(path)
	return size, isDir, err
}

// layout is a file's stripe geometry as recorded in its metadata.
type layoutInfo struct {
	stripes int
	unit    int64
	set     []string
}

// statFull stats the path's ring owner to learn what it is — a
// directory, an unstriped file, or a striped file whose layout the
// creating client recorded in the metadata — then sums stripe sizes
// across the recorded stripe set. If the ring owner has drifted since
// creation and no longer holds the entry, every connected server is
// consulted before giving up (metadata is findable as long as any
// stripe server lives).
func (c *Client) statFull(path string) (size int64, isDir bool, lay layoutInfo, err error) {
	resp, err := c.call(path, &transport.Request{Type: transport.MsgStat})
	if err != nil {
		resp = c.statAny(path)
		if resp == nil {
			return 0, false, lay, err
		}
	}
	if resp.IsDir {
		return 0, true, layoutInfo{stripes: 1}, nil
	}
	lay.stripes, lay.unit, lay.set = resp.Stripes, resp.StripeUnit, resp.StripeSet
	if lay.stripes < 1 {
		lay.stripes = 1
	}
	if lay.unit <= 0 {
		lay.unit = c.opts.StripeUnit
	}
	if len(lay.set) == 0 {
		lay.set = c.stripeSet(path, lay.stripes)
	}
	if len(lay.set) == 1 {
		return resp.Size, false, lay, nil
	}
	// Sum sizes over the reachable stripe servers only: a stripe lost
	// to failover contributes nothing (its bytes are gone), and the
	// stat itself must not fail just because the layout names a dead
	// member — Unlink needs the layout to clean such files up.
	var live []string
	c.mu.Lock()
	for _, addr := range lay.set {
		if _, ok := c.conns[addr]; ok {
			live = append(live, addr)
		}
	}
	c.mu.Unlock()
	resps, err := c.fanOut(live, path, func(int) *transport.Request {
		return &transport.Request{Type: transport.MsgStat}
	})
	if err != nil {
		return 0, false, lay, err
	}
	for _, r := range resps {
		size += r.Size
	}
	return size, false, lay, nil
}

// statAny broadcasts a stat to every connected server and returns the
// first hit — the fallback path for entries the drifted ring owner no
// longer holds.
func (c *Client) statAny(path string) *transport.Response {
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		resp, err := sc.call(&transport.Request{
			Type: transport.MsgStat, Seq: c.seq.Add(1), Job: c.job, Path: path,
		})
		if err == nil && resp.Err == "" {
			return resp
		}
	}
	return nil
}

// broadcast sends the request to every server and collects responses.
// Directory metadata is replicated on all servers so that any server can
// validate parents locally, matching §4.3's "directories and files are
// stored as files" with directory content spread across servers.
func (c *Client) broadcast(path string, mk func() *transport.Request) ([]*transport.Response, error) {
	var out []*transport.Response
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].addr < conns[j].addr })
	for _, sc := range conns {
		req := mk()
		req.Seq = c.seq.Add(1)
		req.Job = c.job
		req.Path = path
		resp, err := sc.call(req)
		if err != nil {
			c.markFailed(sc.addr)
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// Flush asks every connected server to stage out all dirty data to its
// backing store before returning — the client-visible durability
// barrier (an application calls it after writing a checkpoint it cannot
// afford to lose). Servers without a backing store reply immediately.
func (c *Client) Flush() error {
	resps, err := c.broadcast("/", func() *transport.Request {
		return &transport.Request{Type: transport.MsgFlush}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}

// Mkdir creates a directory (replicated on every server).
func (c *Client) Mkdir(path string) error {
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgMkdir}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}

// Readdir lists a directory, merging the children recorded on each
// server (a file's directory entry lives on the file's owner server).
func (c *Client) Readdir(path string) ([]string, error) {
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgReaddir}
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range resps {
		if r.Err != "" {
			return nil, r.Error()
		}
		for _, n := range r.Names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// Unlink removes a file (on its stripe servers) or a directory (on all).
// Stripe servers that have failed over are skipped: their copy died with
// them, and refusing to unlink a partially-lost file would leave its
// stale layout squatting on the name forever.
func (c *Client) Unlink(path string) error {
	_, isDir, lay, err := c.statFull(path)
	if err != nil {
		return err
	}
	if !isDir {
		var live []string
		c.mu.Lock()
		for _, addr := range lay.set {
			if _, ok := c.conns[addr]; ok {
				live = append(live, addr)
			}
		}
		c.mu.Unlock()
		if len(live) == 0 {
			return fmt.Errorf("client: no live stripe servers hold %s", path)
		}
		_, err := c.fanOut(live, path, func(int) *transport.Request {
			return &transport.Request{Type: transport.MsgUnlink}
		})
		return err
	}
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgUnlink}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}
