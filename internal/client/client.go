// Package client is the ThemisIO client library: the POSIX-compliant
// interface of §4.4 (open/close/read/write/lseek/stat/opendir/readdir/
// unlink) over the wire protocol, with job metadata embedded in every
// request and periodic heartbeats to every server (§4.1). On a real
// deployment these entry points are reached by intercepting the libc
// symbols (override/trampoline, §4.4); here they are called directly —
// the arbitration problem is identical either way.
//
// With multiple servers the client places each path on a server via the
// same consistent hash the servers' file system uses.
package client

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/chash"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// Client is one application process's connection to the burst buffer.
type Client struct {
	job  policy.JobInfo
	ring *chash.Ring

	mu    sync.Mutex
	conns map[string]*serverConn
	fds   map[int]*fileHandle
	next  int
	seq   atomic.Uint64

	hbStop chan struct{}
	hbDone chan struct{}
}

type fileHandle struct {
	path string
	off  int64
}

// serverConn multiplexes concurrent requests over one connection.
type serverConn struct {
	conn *transport.Conn
	mu   sync.Mutex
	wait map[uint64]chan *transport.Response
	err  error
}

func dialServer(addr string) (*serverConn, error) {
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	sc := &serverConn{
		conn: transport.NewConn(raw),
		wait: map[uint64]chan *transport.Response{},
	}
	go sc.reader()
	return sc, nil
}

func (sc *serverConn) reader() {
	for {
		resp, err := sc.conn.RecvResponse()
		if err != nil {
			sc.mu.Lock()
			sc.err = err
			for _, ch := range sc.wait {
				close(ch)
			}
			sc.wait = map[uint64]chan *transport.Response{}
			sc.mu.Unlock()
			return
		}
		sc.mu.Lock()
		ch, ok := sc.wait[resp.Seq]
		delete(sc.wait, resp.Seq)
		sc.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

func (sc *serverConn) call(req *transport.Request) (*transport.Response, error) {
	ch := make(chan *transport.Response, 1)
	sc.mu.Lock()
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return nil, err
	}
	sc.wait[req.Seq] = ch
	sc.mu.Unlock()
	if err := sc.conn.SendRequest(req); err != nil {
		sc.mu.Lock()
		delete(sc.wait, req.Seq)
		sc.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("client: connection lost")
	}
	return resp, nil
}

// Dial connects to the given servers under the job identity. The client
// begins heartbeating immediately so the servers' job monitors see the
// job before its first I/O.
func Dial(job policy.JobInfo, servers []string) (*Client, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: no servers")
	}
	c := &Client{
		job:    job,
		ring:   chash.New(0),
		conns:  map[string]*serverConn{},
		fds:    map[int]*fileHandle{},
		next:   3, // fds 0-2 are taken, as in POSIX
		hbStop: make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	for _, addr := range servers {
		sc, err := dialServer(addr)
		if err != nil {
			c.closeConns()
			return nil, err
		}
		c.conns[addr] = sc
		c.ring.Add(addr)
	}
	c.heartbeatAll()
	go c.heartbeatLoop()
	return c, nil
}

func (c *Client) closeConns() {
	for _, sc := range c.conns {
		sc.conn.Close()
	}
}

// Close notifies servers and tears down connections (§4.2: "when a
// client exits, it notifies the ThemisIO servers to destroy the
// corresponding mapping entry").
func (c *Client) Close() {
	close(c.hbStop)
	<-c.hbDone
	for _, sc := range c.conns {
		_ = sc.conn.SendRequest(&transport.Request{Type: transport.MsgBye, Job: c.job})
		sc.conn.Close()
	}
}

func (c *Client) heartbeatLoop() {
	defer close(c.hbDone)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
			c.heartbeatAll()
		}
	}
}

func (c *Client) heartbeatAll() {
	for _, sc := range c.conns {
		_ = sc.conn.SendRequest(&transport.Request{
			Type: transport.MsgHeartbeat,
			Seq:  c.seq.Add(1),
			Job:  c.job,
		})
	}
}

// serverFor routes a path to its owning server.
func (c *Client) serverFor(path string) *serverConn {
	addr, _ := c.ring.Lookup(path)
	return c.conns[addr]
}

func (c *Client) call(path string, req *transport.Request) (*transport.Response, error) {
	req.Seq = c.seq.Add(1)
	req.Job = c.job
	req.Path = path
	resp, err := c.serverFor(path).call(req)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, resp.Error()
	}
	return resp, nil
}

// Open opens an existing file (create=false) or creates it, returning a
// file descriptor.
func (c *Client) Open(path string, create bool) (int, error) {
	typ := transport.MsgOpen
	if create {
		typ = transport.MsgCreate
	}
	if _, err := c.call(path, &transport.Request{Type: typ}); err != nil {
		return -1, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fd := c.next
	c.next++
	c.fds[fd] = &fileHandle{path: path}
	return fd, nil
}

func (c *Client) handle(fd int) (*fileHandle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.fds[fd]
	if !ok {
		return nil, fmt.Errorf("client: bad file descriptor %d", fd)
	}
	return h, nil
}

// Write appends len(p) bytes at the handle's offset (the server store is
// append-structured; sequential writes are the burst-buffer pattern).
func (c *Client) Write(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(h.path, &transport.Request{Type: transport.MsgWrite, Data: p})
	if err != nil {
		return 0, err
	}
	h.off += resp.N
	return int(resp.N), nil
}

// Read reads up to len(p) bytes from the handle's offset.
func (c *Client) Read(fd int, p []byte) (int, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(h.path, &transport.Request{
		Type: transport.MsgRead, Offset: h.off, Size: int64(len(p)),
	})
	if err != nil {
		return 0, err
	}
	copy(p, resp.Data)
	h.off += resp.N
	return int(resp.N), nil
}

// Lseek repositions the handle. Whence follows POSIX: 0=set, 1=cur,
// 2=end.
func (c *Client) Lseek(fd int, offset int64, whence int) (int64, error) {
	h, err := c.handle(fd)
	if err != nil {
		return 0, err
	}
	switch whence {
	case 0:
		h.off = offset
	case 1:
		h.off += offset
	case 2:
		size, _, err := c.Stat(h.path)
		if err != nil {
			return 0, err
		}
		h.off = size + offset
	default:
		return 0, fmt.Errorf("client: bad whence %d", whence)
	}
	if h.off < 0 {
		h.off = 0
	}
	return h.off, nil
}

// CloseFd releases a file descriptor.
func (c *Client) CloseFd(fd int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.fds[fd]; !ok {
		return fmt.Errorf("client: bad file descriptor %d", fd)
	}
	delete(c.fds, fd)
	return nil
}

// Stat returns size and directory flag.
func (c *Client) Stat(path string) (size int64, isDir bool, err error) {
	resp, err := c.call(path, &transport.Request{Type: transport.MsgStat})
	if err != nil {
		return 0, false, err
	}
	return resp.Size, resp.IsDir, nil
}

// broadcast sends the request to every server and collects responses.
// Directory metadata is replicated on all servers so that any server can
// validate parents locally, matching §4.3's "directories and files are
// stored as files" with directory content spread across servers.
func (c *Client) broadcast(path string, mk func() *transport.Request) ([]*transport.Response, error) {
	var out []*transport.Response
	for _, sc := range c.conns {
		req := mk()
		req.Seq = c.seq.Add(1)
		req.Job = c.job
		req.Path = path
		resp, err := sc.call(req)
		if err != nil {
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// Mkdir creates a directory (replicated on every server).
func (c *Client) Mkdir(path string) error {
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgMkdir}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}

// Readdir lists a directory, merging the children recorded on each
// server (a file's directory entry lives on the file's owner server).
func (c *Client) Readdir(path string) ([]string, error) {
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgReaddir}
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range resps {
		if r.Err != "" {
			return nil, r.Error()
		}
		for _, n := range r.Names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// Unlink removes a file (on its owner server) or a directory (on all).
func (c *Client) Unlink(path string) error {
	_, isDir, err := c.Stat(path)
	if err != nil {
		return err
	}
	if !isDir {
		_, err := c.call(path, &transport.Request{Type: transport.MsgUnlink})
		return err
	}
	resps, err := c.broadcast(path, func() *transport.Request {
		return &transport.Request{Type: transport.MsgUnlink}
	})
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Err != "" {
			return r.Error()
		}
	}
	return nil
}
