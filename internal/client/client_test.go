package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"themisio/internal/policy"
	"themisio/internal/server"
)

// startServers launches n standalone live servers (client-side striping
// needs no server fabric: placement is the client's ring).
func startServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(ln, server.Config{
			Policy: policy.SizeFair,
			Lambda: 50 * time.Millisecond,
			Seed:   int64(i + 1),
			Quiet:  true,
		})
		go s.Serve()
		t.Cleanup(s.Close)
		addrs[i] = s.Addr()
	}
	return addrs
}

func testJob(id string) policy.JobInfo {
	return policy.JobInfo{JobID: id, UserID: "u-" + id, GroupID: "g", Nodes: 2}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(testJob("j"), nil); err == nil {
		t.Fatal("Dial with no servers should fail")
	}
	// A dead address fails fast (nothing listens on a closed listener).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	if _, err := Dial(testJob("j"), []string{dead}); err == nil {
		t.Fatal("Dial to a dead server should fail")
	}
}

func TestPerServerRouting(t *testing.T) {
	addrs := startServers(t, 3)
	c, err := Dial(testJob("route"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// Paths spread over servers by the consistent hash; every file must
	// land on exactly one server and read back from it.
	owners := map[string]bool{}
	for _, name := range []string{"/d/a", "/d/b", "/d/c", "/d/e", "/d/f", "/d/g"} {
		fd, err := c.OpenFd(name, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := c.Write(fd, []byte(name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		owner, _ := c.ring.Lookup(name)
		owners[owner] = true
		got := make([]byte, 64)
		if _, err := c.Lseek(fd, 0, 0); err != nil {
			t.Fatal(err)
		}
		n, err := c.Read(fd, got)
		if err != nil || string(got[:n]) != name {
			t.Fatalf("%s: read %q err=%v", name, got[:n], err)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("6 paths all routed to %d server(s)", len(owners))
	}
	// Readdir merges every server's children.
	names, err := c.Readdir("/d")
	if err != nil || len(names) != 6 {
		t.Fatalf("Readdir = %v err=%v", names, err)
	}
}

func TestClientErrorPaths(t *testing.T) {
	addrs := startServers(t, 2)
	c, err := Dial(testJob("errs"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenFd("/nope", false); err == nil {
		t.Fatal("opening a missing file should fail")
	}
	if _, err := c.Read(99, make([]byte, 8)); err == nil {
		t.Fatal("read on bad fd should fail")
	}
	if _, err := c.Write(99, []byte("x")); err == nil {
		t.Fatal("write on bad fd should fail")
	}
	if _, err := c.Lseek(99, 0, 0); err == nil {
		t.Fatal("lseek on bad fd should fail")
	}
	if err := c.Unlink("/nope"); err == nil {
		t.Fatal("unlink of a missing file should fail")
	}
	fd, err := c.OpenFd("/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lseek(fd, 0, 9); err == nil || !strings.Contains(err.Error(), "whence") {
		t.Fatalf("bad whence error = %v", err)
	}
	if err := c.Mkdir("/missing/parent"); err == nil {
		t.Fatal("mkdir under a missing parent should fail")
	}
	if _, err := c.Readdir("/f"); err == nil {
		t.Fatal("readdir of a file should fail")
	}
}

func TestStripedRoundTrip(t *testing.T) {
	addrs := startServers(t, 3)
	c, err := DialOpts(testJob("stripe"), addrs, Options{Stripes: 3, StripeUnit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fd, err := c.OpenFd("/striped", true)
	if err != nil {
		t.Fatal(err)
	}
	// Appends of awkward sizes: unit-straddling, sub-unit, multi-unit.
	var want []byte
	for i, sz := range []int{1000, 3000, 50000, 24, 8192} {
		chunk := bytes.Repeat([]byte{byte(i + 1)}, sz)
		for j := range chunk {
			chunk[j] ^= byte(j * 17)
		}
		if n, err := c.Write(fd, chunk); err != nil || n != sz {
			t.Fatalf("write %d: n=%d err=%v", sz, n, err)
		}
		want = append(want, chunk...)
	}
	if size, _, err := c.Stat("/striped"); err != nil || size != int64(len(want)) {
		t.Fatalf("stat = %d err=%v, want %d", size, err, len(want))
	}
	if _, err := c.Lseek(fd, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := c.Read(fd, got); err != nil || n != len(want) {
		t.Fatalf("full read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("striped data mismatch")
	}
	// Interior unaligned reads across stripe boundaries.
	for _, rg := range [][2]int{{0, 10}, {1020, 9}, {1000, 3000}, {50000, 12000}, {62200, 100}} {
		off, ln := rg[0], rg[1]
		if _, err := c.Lseek(fd, int64(off), 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, ln)
		n, err := c.Read(fd, buf)
		if err != nil {
			t.Fatalf("read [%d,%d): %v", off, off+ln, err)
		}
		exp := want[off:min(off+ln, len(want))]
		if !bytes.Equal(buf[:n], exp) {
			t.Fatalf("read [%d,%d) mismatch (n=%d)", off, off+ln, n)
		}
	}
	// Reading past EOF returns 0.
	if _, err := c.Lseek(fd, int64(len(want))+100, 0); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Read(fd, make([]byte, 8)); err != nil || n != 0 {
		t.Fatalf("past-EOF read: n=%d err=%v", n, err)
	}
	// Open the same file fresh: the size comes from summed stripe stats.
	fd2, err := c.OpenFd("/striped", false)
	if err != nil {
		t.Fatal(err)
	}
	if off, err := c.Lseek(fd2, 0, 2); err != nil || off != int64(len(want)) {
		t.Fatalf("seek-end = %d err=%v", off, err)
	}
	// Unlink removes every stripe.
	if err := c.Unlink("/striped"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Stat("/striped"); err == nil {
		t.Fatal("stat after unlink should fail")
	}
}

func TestClientFailover(t *testing.T) {
	addrs := startServers(t, 2)
	// A third, doomed server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doomed := server.New(ln, server.Config{Policy: policy.SizeFair, Quiet: true})
	go doomed.Serve()
	c, err := Dial(testJob("fo"), append(addrs, doomed.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := len(c.Servers()); got != 3 {
		t.Fatalf("client sees %d servers, want 3", got)
	}
	doomed.Close()
	// Every path stays writable: the client reroutes to the reassigned
	// ring owner after the dead connection errors out. Enough distinct
	// paths guarantees some hash to the dead server's segment.
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("/f%02d", i)
		var lastErr error
		ok := false
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			fd, err := c.OpenFd(name, true)
			if err != nil {
				lastErr = err
				continue
			}
			if _, err := c.Write(fd, []byte(name)); err != nil {
				lastErr = err
				continue
			}
			ok = true
		}
		if !ok {
			t.Fatalf("%s unwritable after failover: %v", name, lastErr)
		}
	}
	if got := len(c.Servers()); got != 2 {
		t.Fatalf("client sees %d servers after failover, want 2", got)
	}
}

// Stripe width lives in the file's metadata, not the client's flags: a
// client with a different (or default) striping configuration must see
// the right size and read the right bytes.
func TestStripeWidthInterop(t *testing.T) {
	addrs := startServers(t, 3)
	w, err := DialOpts(testJob("writer"), addrs, Options{Stripes: 3, StripeUnit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	want := bytes.Repeat([]byte("striped-interop/"), 4096) // 64 KiB
	fd, err := w.OpenFd("/interop", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(fd, want); err != nil {
		t.Fatal(err)
	}

	// A default (unstriped) client reads the same file correctly.
	r, err := Dial(testJob("reader"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if size, _, err := r.Stat("/interop"); err != nil || size != int64(len(want)) {
		t.Fatalf("interop stat = %d err=%v, want %d", size, err, len(want))
	}
	rfd, err := r.OpenFd("/interop", false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := r.Read(rfd, got); err != nil || n != len(want) {
		t.Fatalf("interop read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("interop read mismatch")
	}
	if err := r.Unlink("/interop"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Stat("/interop"); err == nil {
		t.Fatal("unlink by the unstriped client should remove every stripe")
	}
}

// POSIX lseek: a resulting offset below zero is EINVAL, with the
// handle unmoved — the old behaviour silently clamped to zero, so a
// caller's off-by-N seek bug quietly reread the file head. Regression
// for the whence 0/1 arithmetic; whence 2 keeps resolving end-of-file
// through Stat and refuses a negative result the same way.
func TestLseekNegative(t *testing.T) {
	addrs := startServers(t, 1)
	c, err := Dial(testJob("seek"), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fd, err := c.OpenFd("/seek", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lseek(fd, -1, 0); err == nil {
		t.Fatal("whence 0 to a negative offset must fail")
	}
	if off, err := c.Lseek(fd, 4, 0); err != nil || off != 4 {
		t.Fatalf("seek-set = %d err=%v", off, err)
	}
	if _, err := c.Lseek(fd, -5, 1); err == nil {
		t.Fatal("whence 1 producing a negative offset must fail")
	}
	// The failed seeks must not have moved the handle.
	if off, err := c.Lseek(fd, 0, 1); err != nil || off != 4 {
		t.Fatalf("offset after refused seeks = %d err=%v, want 4", off, err)
	}
	if _, err := c.Lseek(fd, -11, 2); err == nil {
		t.Fatal("whence 2 producing a negative offset must fail")
	}
	if off, err := c.Lseek(fd, -10, 2); err != nil || off != 0 {
		t.Fatalf("seek-end -size = %d err=%v, want 0", off, err)
	}
}

// localLen is the invariant the write-repair path leans on: the local
// stripe lengths of a round-robin layout must always sum to the total
// and match a brute-force unit walk.
func TestLocalLen(t *testing.T) {
	for _, tc := range []struct {
		total int64
		n     int
		unit  int64
	}{
		{0, 3, 1024}, {1, 3, 1024}, {1024, 3, 1024}, {1025, 3, 1024},
		{3 * 1024, 3, 1024}, {10*1024 + 7, 3, 1024}, {65536, 4, 4096},
		{999999, 5, 4096}, {5, 1, 1024},
	} {
		var sum int64
		brute := make([]int64, tc.n)
		for off := int64(0); off < tc.total; {
			u := off / tc.unit
			n := tc.unit - off%tc.unit
			if n > tc.total-off {
				n = tc.total - off
			}
			brute[int(u)%tc.n] += n
			off += n
		}
		for i := 0; i < tc.n; i++ {
			got := localLen(tc.total, i, tc.n, tc.unit)
			if got != brute[i] {
				t.Fatalf("localLen(%d,%d,%d,%d) = %d, want %d",
					tc.total, i, tc.n, tc.unit, got, brute[i])
			}
			sum += got
		}
		if sum != tc.total {
			t.Fatalf("localLen over %+v sums to %d", tc, sum)
		}
	}
}

// bruteLocalLens walks the round-robin layout unit by unit — the
// reference implementation the closed form must match.
func bruteLocalLens(total int64, n int, unit int64) []int64 {
	out := make([]int64, n)
	for off := int64(0); off < total; {
		u := off / unit
		step := unit - off%unit
		if step > total-off {
			step = total - off
		}
		out[int(u)%n] += step
		off += step
	}
	return out
}

// Property test over randomized (total, nStripes, unit): the
// rebalancer's migration planner and the write-repair path both lean
// on localLen agreeing with the brute-force unit walk for arbitrary
// geometries, including totals far from cycle boundaries and units
// down to a single byte.
func TestLocalLenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 5000; iter++ {
		n := 1 + rng.Intn(9)
		unit := int64(1 + rng.Intn(1<<13))
		var total int64
		switch rng.Intn(4) {
		case 0:
			total = int64(rng.Intn(10)) // tiny files
		case 1:
			total = unit * int64(n) * int64(rng.Intn(8)) // exact cycles
		case 2:
			total = unit*int64(n)*int64(rng.Intn(8)) + int64(rng.Intn(int(unit))) // mid-unit tail
		default:
			total = int64(rng.Intn(1 << 20))
		}
		brute := bruteLocalLens(total, n, unit)
		var sum int64
		for i := 0; i < n; i++ {
			got := localLen(total, i, n, unit)
			if got != brute[i] {
				t.Fatalf("iter %d: localLen(%d,%d,%d,%d) = %d, want %d",
					iter, total, i, n, unit, got, brute[i])
			}
			if got < 0 {
				t.Fatalf("iter %d: negative local length %d", iter, got)
			}
			sum += got
		}
		if sum != total {
			t.Fatalf("iter %d: lengths sum to %d, want %d", iter, sum, total)
		}
	}
}
