package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// The handle is the package's io citizen.
var (
	_ io.ReadWriteSeeker = (*File)(nil)
	_ io.Closer          = (*File)(nil)
)

// TestOptionsValidation: every malformed Options field is rejected with
// a typed usage error before any socket is dialed; zero values and the
// auto sentinels pass.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"explicit defaults", Options{Stripes: 4, StripeUnit: DefaultStripeUnit, ConnsPerServer: DefaultConnsPerServer}, true},
		{"auto stripe unit", Options{Stripes: 2, StripeUnit: AutoStripeUnit}, true},
		{"auto conns", Options{Stripes: 8, ConnsPerServer: AutoConnsPerServer}, true},
		{"one of everything", Options{Stripes: 1, StripeUnit: 1, ConnsPerServer: 1}, true},
		{"negative stripes", Options{Stripes: -1}, false},
		{"negative stripe unit", Options{StripeUnit: -2}, false},
		{"non-pow2 stripe unit", Options{StripeUnit: 3000}, false},
		{"non-pow2 large unit", Options{StripeUnit: (1 << 20) + 512}, false},
		{"negative conns", Options{ConnsPerServer: -2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateOptions(tc.opts)
			if tc.ok && err != nil {
				t.Fatalf("valid options rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("malformed options accepted")
				}
				if !errors.Is(err, ErrInvalidOptions) {
					t.Fatalf("error %v is not ErrInvalidOptions", err)
				}
			}
		})
	}
	// DialOpts surfaces the same typed error without needing live servers.
	if _, err := DialOpts(testJob("bad"), []string{"127.0.0.1:1"}, Options{Stripes: -3}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("DialOpts validation error = %v, want ErrInvalidOptions", err)
	}
}

// TestErrorSentinels: the wire strings servers send classify to the
// exported sentinels, and errors.Is survives the wrapping and prefixing
// the retry/repair paths apply (repairWrite prefixes with "stripe
// <addr>: ", call paths with fmt.Errorf %w).
func TestErrorSentinels(t *testing.T) {
	cases := []struct {
		wire string
		want error
	}{
		{"stale-layout: gen 3 < 4", ErrStaleLayout},
		{"fsys: stale file layout (migrated)", ErrStaleLayout},
		{"fsys: no such file or directory", ErrNotExist},
		{"fsys: positional append partially overlaps landed data", ErrTornAppend},
		{"fsys: positional append reorder buffer full", ErrParkedFull},
	}
	for _, tc := range cases {
		err := wireErr(errors.New(tc.wire))
		if !errors.Is(err, tc.want) {
			t.Fatalf("wire %q does not match sentinel %v", tc.wire, tc.want)
		}
		// The server's exact message survives classification: the
		// Contains-based retry matchers still see it.
		if !strings.Contains(err.Error(), tc.wire) {
			t.Fatalf("classification lost the wire message: %q", err.Error())
		}
		// repairWrite-style prefix wrapping keeps the sentinel reachable.
		wrapped := fmt.Errorf("stripe 127.0.0.1:9999: %w", err)
		if !errors.Is(wrapped, tc.want) {
			t.Fatalf("prefixed form %q lost sentinel %v", wrapped, tc.want)
		}
		// ...and double wrapping, as retry ladders do.
		double := fmt.Errorf("write /f: %w", wrapped)
		if !errors.Is(double, tc.want) {
			t.Fatalf("double-wrapped form lost sentinel %v", tc.want)
		}
	}
	// Unclassified wire errors pass through untouched.
	plain := errors.New("something else entirely")
	if wireErr(plain) != plain {
		t.Fatal("unclassified error must pass through")
	}
	// Cancellation wraps both our sentinel and the stdlib cause.
	cerr := canceled(context.Canceled)
	if !errors.Is(cerr, ErrCanceled) || !errors.Is(cerr, context.Canceled) {
		t.Fatalf("canceled error %v must match both ErrCanceled and context.Canceled", cerr)
	}
	if canceled(cerr) != cerr {
		t.Fatal("canceled must be idempotent")
	}
}

// TestContextCancellation: a dead context fails the call with the typed
// cancellation error — and does not mark the server failed, so the
// client keeps working on a live context afterwards.
func TestContextCancellation(t *testing.T) {
	addrs := startServers(t, 2)
	c, err := DialOpts(testJob("ctx"), addrs, Options{Stripes: 2, StripeUnit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := c.OpenContext(dead, "/ctx.bin", true); !errors.Is(err, ErrCanceled) {
		t.Fatalf("OpenContext(dead) = %v, want ErrCanceled", err)
	}
	if _, _, err := c.StatContext(dead, "/nope"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("StatContext(dead) = %v, want ErrCanceled", err)
	}
	if err := c.FlushContext(dead); !errors.Is(err, ErrCanceled) {
		t.Fatalf("FlushContext(dead) = %v, want ErrCanceled", err)
	}

	f, err := c.Open("/ctx.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 7)
	}
	_, werr := f.WriteContext(dead, data)
	if !errors.Is(werr, ErrCanceled) {
		t.Fatalf("WriteContext(dead) = %v, want ErrCanceled", werr)
	}
	// The stdlib cause is reachable through the wrap too.
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancellation should expose context.Canceled, got %v", werr)
	}
	// A canceled striped write poisons the handle: durability of the
	// in-flight stripes is unknown, so further writes are refused until
	// the caller reopens.
	if _, err := f.Write(data); err == nil {
		t.Fatal("write on a cancellation-damaged handle succeeded")
	}

	// Cancellation is a caller verdict, not a server failure: both
	// servers are still in the ring and a live context succeeds.
	if len(c.Servers()) != 2 {
		t.Fatalf("cancellation evicted servers: ring = %v", c.Servers())
	}
	g, err := c.OpenContext(context.Background(), "/ctx-live.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := g.WriteContext(context.Background(), data); err != nil || n != len(data) {
		t.Fatalf("live write after cancellation: n=%d err=%v", n, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileHandle: the handle speaks io — sequential Write, Seek,
// ReadFull, io.EOF at end — and the deprecated int-fd API observes the
// same file.
func TestFileHandle(t *testing.T) {
	addrs := startServers(t, 2)
	c, err := DialOpts(testJob("file"), addrs, Options{Stripes: 2, StripeUnit: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f, err := c.Open("/h.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/h.bin" {
		t.Fatalf("Path() = %q", f.Path())
	}
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i*13 + 1)
	}
	if n, err := f.Write(data); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if pos, err := f.Seek(0, io.SeekStart); err != nil || pos != 0 {
		t.Fatalf("seek: pos=%d err=%v", pos, err)
	}
	got := make([]byte, len(data))
	if _, err := io.ReadFull(f, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], data[i])
		}
	}
	// At EOF the handle reports io.EOF, as io.Reader demands (the
	// deprecated int-fd Read reports 0, nil instead).
	if n, err := f.Read(got[:10]); n != 0 || err != io.EOF {
		t.Fatalf("read at EOF: n=%d err=%v, want 0, io.EOF", n, err)
	}
	if n, err := c.Read(f.Fd(), got[:10]); n != 0 || err != nil {
		t.Fatalf("deprecated read at EOF: n=%d err=%v, want 0, nil", n, err)
	}
	// io.Copy terminates off the io.EOF contract.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if n, err := io.Copy(&sink, f); err != nil || n != int64(len(data)) {
		t.Fatalf("io.Copy: n=%d err=%v", n, err)
	}
	// SeekEnd stats the durable size.
	if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != int64(len(data)) {
		t.Fatalf("SeekEnd: pos=%d err=%v", pos, err)
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}

	// The deprecated fd API addresses the same open handle.
	fd := f.Fd()
	if _, err := c.Lseek(fd, 0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	viaFd := make([]byte, 100)
	if n, err := c.Read(fd, viaFd); err != nil || n != len(viaFd) {
		t.Fatalf("fd read: n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(got[:1]); err == nil {
		t.Fatal("read after close succeeded")
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
}
