package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"themisio/internal/client"
	"themisio/internal/policy"
)

// startServers launches n live servers on loopback TCP, fully peered for
// λ-sync, and returns their addresses plus a shutdown func.
func startServers(t *testing.T, n int, pol policy.Policy) ([]string, func()) {
	return startServersDelay(t, n, pol, 0)
}

func startServersDelay(t *testing.T, n int, pol policy.Policy, opDelay time.Duration) ([]string, func()) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	servers := make([]*Server, n)
	for i := range lns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		servers[i] = New(lns[i], Config{
			Policy:  pol,
			Lambda:  50 * time.Millisecond,
			Peers:   peers,
			Seed:    int64(i + 1),
			OpDelay: opDelay,
			Quiet:   true,
		})
		go servers[i].Serve()
	}
	return addrs, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

func jobInfo(id string, nodes int) policy.JobInfo {
	return policy.JobInfo{JobID: id, UserID: "u-" + id, GroupID: "g", Nodes: nodes}
}

func TestLiveRoundTripSingleServer(t *testing.T) {
	addrs, stop := startServers(t, 1, policy.SizeFair)
	defer stop()
	c, err := client.Dial(jobInfo("job1", 4), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	fd, err := c.OpenFd("/data/hello.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the statistical token scheduler")
	if n, err := c.Write(fd, msg); err != nil || n != len(msg) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if _, err := c.Lseek(fd, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := c.Read(fd, got); err != nil || n != len(msg) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	size, isDir, err := c.Stat("/data/hello.bin")
	if err != nil || isDir || size != int64(len(msg)) {
		t.Fatalf("stat: %d %v %v", size, isDir, err)
	}
	names, err := c.Readdir("/data")
	if err != nil || len(names) != 1 || names[0] != "hello.bin" {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if err := c.CloseFd(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/data/hello.bin"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Stat("/data/hello.bin"); err == nil {
		t.Fatal("stat after unlink should fail")
	}
}

func TestLiveMultiServerPlacementAndSync(t *testing.T) {
	addrs, stop := startServers(t, 3, policy.SizeFair)
	defer stop()
	c, err := client.Dial(jobInfo("job1", 8), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Mkdir("/spread"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	contents := map[string][]byte{}
	for i := 0; i < 24; i++ {
		p := fmt.Sprintf("/spread/file-%02d", i)
		fd, err := c.OpenFd(p, true)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		data := make([]byte, rng.Intn(60000)+1)
		rng.Read(data)
		if _, err := c.Write(fd, data); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
		contents[p] = data
		c.CloseFd(fd)
	}
	// All files visible in one merged directory listing.
	names, err := c.Readdir("/spread")
	if err != nil || len(names) != 24 {
		t.Fatalf("readdir merged %d names (%v)", len(names), err)
	}
	// Data round-trips regardless of which server owns the file.
	for p, want := range contents {
		fd, err := c.OpenFd(p, false)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		got := make([]byte, len(want))
		if n, err := c.Read(fd, got); err != nil || n != len(want) {
			t.Fatalf("read %s: n=%d err=%v", p, n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("corrupt data in %s", p)
		}
		c.CloseFd(fd)
	}
}

// Two jobs hammer a live server concurrently; the size-fair scheduler
// must serve the 4x larger job ~4x more requests.
func TestLiveSizeFairService(t *testing.T) {
	// A 200µs device emulation keeps the queue saturated, which is the
	// regime where the policy bites (unsaturated servers serve everyone
	// at full speed by opportunity fairness). Under the race detector the
	// clients slow more than the server and can no longer saturate a
	// 200µs device, so the emulated op cost scales up to match.
	opDelay := 200 * time.Microsecond
	if raceEnabled {
		opDelay = 1500 * time.Microsecond
	}
	addrs, stop := startServersDelay(t, 1, policy.SizeFair, opDelay)
	defer stop()

	run := func(job policy.JobInfo, workers int, stopCh chan struct{}, count *int64, mu *sync.Mutex) {
		var wg sync.WaitGroup
		c, err := client.Dial(job, addrs)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := fmt.Sprintf("/%s-%d", job.JobID, w)
				fd, err := c.OpenFd(p, true)
				if err != nil {
					return
				}
				buf := make([]byte, 512)
				for {
					select {
					case <-stopCh:
						return
					default:
					}
					if _, err := c.Write(fd, buf); err != nil {
						return
					}
					mu.Lock()
					*count++
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	}

	stopCh := make(chan struct{})
	var mu sync.Mutex
	var bigN, smallN int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); run(jobInfo("big", 4), 8, stopCh, &bigN, &mu) }()
	go func() { defer wg.Done(); run(jobInfo("small", 1), 8, stopCh, &smallN, &mu) }()
	time.Sleep(1500 * time.Millisecond)
	close(stopCh)
	wg.Wait()

	mu.Lock()
	b, s := bigN, smallN
	mu.Unlock()
	if b < 100 || s < 10 {
		t.Fatalf("too little traffic to judge: big=%d small=%d", b, s)
	}
	ratio := float64(b) / float64(s)
	if ratio < 2.0 || ratio > 8.0 {
		t.Fatalf("live size-fair ratio = %.2f (big=%d small=%d), want ~4", ratio, b, s)
	}
}

func TestLiveBadFd(t *testing.T) {
	addrs, stop := startServers(t, 1, policy.SizeFair)
	defer stop()
	c, err := client.Dial(jobInfo("j", 1), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Read(99, make([]byte, 1)); err == nil {
		t.Fatal("read on bad fd should fail")
	}
	if err := c.CloseFd(99); err == nil {
		t.Fatal("close on bad fd should fail")
	}
	if _, err := c.OpenFd("/missing", false); err == nil {
		t.Fatal("open of missing file should fail")
	}
	if _, err := c.Lseek(42, 0, 0); err == nil {
		t.Fatal("lseek on bad fd should fail")
	}
}
