//go:build race

package server

// raceEnabled reports that this test binary was built with -race; the
// timing-sensitive fairness test scales its device emulation so the
// saturated-queue regime survives the detector's overhead.
const raceEnabled = true
