package server_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"themisio/internal/backing"
	"themisio/internal/client"
	"themisio/internal/policy"
	"themisio/internal/server"
)

func startOne(t *testing.T, ln net.Listener, store backing.Store) *server.Server {
	t.Helper()
	s := server.New(ln, server.Config{
		Policy:  policy.SizeFair,
		Lambda:  20 * time.Millisecond,
		Backing: store,
		Quiet:   true,
	})
	go s.Serve()
	return s
}

// TestStageOutRestart is the single-server lifecycle: write, flush,
// crash (no goodbye), restart on the same address with the same backing
// store, and read the bytes back — the stage-in/stage-out round trip
// the paper's conclusion leaves as future work.
func TestStageOutRestart(t *testing.T) {
	store, err := backing.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s := startOne(t, ln, store)

	job := policy.JobInfo{JobID: "ckpt", UserID: "alice", Nodes: 2}
	c, err := client.Dial(job, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/run1"); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB, 0xCD, 0xEF, 0x01}, 200_000) // 800 KB
	fd, err := c.OpenFd("/run1/ckpt.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Write(fd, want); err != nil || n != len(want) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	// Durability barrier, then crash without a goodbye.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	s.Close()

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s2 := startOne(t, ln2, store)
	defer s2.Close()

	c2, err := client.Dial(job, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fd2, err := c2.OpenFd("/run1/ckpt.bin", false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	total := 0
	for total < len(got) {
		n, err := c2.Read(fd2, got[total:])
		if err != nil {
			t.Fatalf("read after restart: %v", err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("restart read: %d/%d bytes, identical=%v", total, len(want), bytes.Equal(got, want))
	}
	if names, err := c2.Readdir("/run1"); err != nil || len(names) != 1 || names[0] != "ckpt.bin" {
		t.Fatalf("restart readdir: %v %v", names, err)
	}
}

// TestStageOutUnlinkRecreate: an unlink followed by a recreate of the
// same path must not lose the new file to the old file's tombstone
// (tombstones are processed after the new incarnation may already have
// staged rows under the same keys). The flushed new content survives a
// crash-restart byte-identical.
func TestStageOutUnlinkRecreate(t *testing.T) {
	store, err := backing.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s := startOne(t, ln, store)

	job := policy.JobInfo{JobID: "cycle", UserID: "alice"}
	c, err := client.Dial(job, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte("OLD!"), 100_000)
	fd, err := c.OpenFd("/gen.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, old); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/gen.bin"); err != nil {
		t.Fatal(err)
	}
	// Recreate immediately — the unlink's tombstone has not drained yet.
	want := bytes.Repeat([]byte("new"), 50_000) // shorter than old, too
	fd2, err := c.OpenFd("/gen.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd2, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	s.Close()

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s2 := startOne(t, ln2, store)
	defer s2.Close()
	c2, err := client.Dial(job, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	size, _, err := c2.Stat("/gen.bin")
	if err != nil || size != int64(len(want)) {
		t.Fatalf("restart stat: size=%d err=%v, want %d (old tombstone ate the new file, or stale tail)", size, err, len(want))
	}
	fd3, err := c2.OpenFd("/gen.bin", false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	total := 0
	for total < len(got) {
		n, err := c2.Read(fd3, got[total:])
		if err != nil || n == 0 {
			break
		}
		total += n
	}
	if total != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("restart read: %d/%d bytes, identical=%v", total, len(want), bytes.Equal(got[:total], want[:total]))
	}
}

// TestBackgroundDrainNoFlush checks that the drain engine stages data
// out on its own (through the scheduler, at λ cadence) with no explicit
// flush, and that unlinks propagate as backing deletes.
func TestBackgroundDrainNoFlush(t *testing.T) {
	store, err := backing.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := startOne(t, ln, store)
	defer s.Close()

	c, err := client.Dial(policy.JobInfo{JobID: "bg", UserID: "bob"}, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fd, err := c.OpenFd("/lazy.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("drip"), 50_000)
	if _, err := c.Write(fd, data); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if obj, _, err := store.ReadObject("", "/lazy.bin", 0); err == nil && bytes.Equal(obj, data) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background drain never staged the file out")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Unlink("/lazy.bin"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, _, err := store.ReadObject("", "/lazy.bin", 0); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unlink never propagated to the backing store")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if chunks, bytesOut, _ := s.Drainer().Stats(); chunks == 0 || bytesOut < int64(len(data)) {
		t.Fatalf("drain stats: chunks=%d bytes=%d", chunks, bytesOut)
	}
}
