package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"themisio/internal/client"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// startServersCompiles is startServers but returns the *Server handles so
// tests can read scheduler counters.
func startServersCompiles(t *testing.T, n int, pol policy.Policy) ([]*Server, []string, func()) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	servers := make([]*Server, n)
	for i := range lns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		servers[i] = New(lns[i], Config{
			Policy: pol,
			Lambda: 50 * time.Millisecond,
			Peers:  peers,
			Seed:   int64(i + 1),
			Quiet:  true,
		})
		go servers[i].Serve()
	}
	return servers, addrs, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// Regression: the per-request hot path must not recompile policy. Before
// the epoch refactor every message — data, heartbeat, gossip — called
// sched.SetJobs, making compilation O(requests); now only the controller
// compiles, when the job-table generation moves. The compile count must
// therefore track job-set changes, not traffic volume.
func TestCompileCountScalesWithJobSetChanges(t *testing.T) {
	servers, addrs, stop := startServersCompiles(t, 2, policy.SizeFair)
	defer stop()
	c, err := client.Dial(jobInfo("epoch-job", 4), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fd, err := c.OpenFd("/epoch.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	const requests = 400
	buf := make([]byte, 256)
	for i := 0; i < requests; i++ {
		if _, err := c.Write(fd, buf); err != nil {
			t.Fatal(err)
		}
	}
	// The writes can outrun the first λ tick entirely; give the
	// controllers a few ticks to publish the job's epoch before reading
	// the counters.
	time.Sleep(300 * time.Millisecond)
	var served, compiles int64
	for _, s := range servers {
		served += s.Served()
		compiles += s.Scheduler().Compiles()
	}
	if served < requests {
		t.Fatalf("served %d < %d requests issued", served, requests)
	}
	// One job appearing (plus presence merges) should compile a handful
	// of times across both servers; per-request compilation would be
	// hundreds. Bound well below the request count and well above the
	// legitimate epoch churn.
	if compiles == 0 {
		t.Fatal("controller never compiled — scheduler runs without a policy epoch")
	}
	if compiles > served/10 {
		t.Fatalf("compiles = %d for %d served requests — compilation is on the hot path", compiles, served)
	}
	// A second burst of pure traffic (no job-set change) must not add
	// more than the odd λ-tick epoch (presence settling), regardless of
	// volume.
	before := compiles
	for i := 0; i < requests; i++ {
		if _, err := c.Write(fd, buf); err != nil {
			t.Fatal(err)
		}
	}
	var after int64
	for _, s := range servers {
		after += s.Scheduler().Compiles()
	}
	if after-before > 4 {
		t.Fatalf("steady traffic recompiled %d times", after-before)
	}
}

// Regression for the cap-1 wake channel: concurrent pipelined floods
// from several connections must drain promptly even though many pushes
// race a single park/unpark cycle. With the old channel, concurrent
// pushes collapsed into one token and left workers parked on a 5ms
// timeout treadmill while queues held work.
func TestFloodFromFewConnsDrainsManyWorkers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ln, Config{
		Policy:  policy.SizeFair,
		Workers: 16,
		Lambda:  50 * time.Millisecond,
		Quiet:   true,
	})
	go srv.Serve()
	defer srv.Close()

	const conns = 4
	const perConn = 100
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			conn := transport.NewBinaryConn(raw)
			defer conn.Close()
			job := jobInfo(fmt.Sprintf("flood-%d", ci), 1)
			// Pipeline the whole flood before reading any response: the
			// backlog lands in the scheduler faster than workers wake.
			for i := 0; i < perConn; i++ {
				req := &transport.Request{
					Type: transport.MsgWrite,
					Seq:  uint64(i + 1),
					Job:  job,
					Path: fmt.Sprintf("/flood-%d.bin", ci),
					Data: []byte("x"),
				}
				if i == 0 {
					req.Type = transport.MsgCreate
					req.Stripes = 1
				}
				if err := conn.SendRequest(req); err != nil {
					errs <- err
					return
				}
			}
			for i := 0; i < perConn; i++ {
				if _, err := conn.RecvResponse(); err != nil {
					errs <- fmt.Errorf("conn %d response %d: %w", ci, i, err)
					return
				}
			}
			errs <- nil
		}(ci)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("flood did not drain: served %d of %d", srv.Served(), conns*perConn)
	}
	for i := 0; i < conns; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Served(); got != conns*perConn {
		t.Fatalf("served %d, want %d", got, conns*perConn)
	}
	// Not a benchmark, but with 400 one-byte writes and 16 workers the
	// drain should be near-instant; a wake-starvation regression shows up
	// as multi-second 5ms-timeout pacing.
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("drain took %v — workers are parking with work queued", e)
	}
}
