package server

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/backing"
	"themisio/internal/cluster"
	"themisio/internal/fsys"
	"themisio/internal/obsv"
	"themisio/internal/policy"
	"themisio/internal/transport"
)

// Join-time stripe rebalancing: when the membership ring's epoch moves
// because a member joined, file layouts pinned at creation no longer
// match the ring walk, so the new member serves none of the existing
// bytes. The migrator closes that gap: the file's recorded set[0]
// server (the coordinator — for a join, every recorded holder is still
// alive, so it always exists) detects the divergence, copies the
// sealed stripes, and re-installs the file under the ring's current
// placement, two-phase like failover recovery:
//
//  1. Seal every current holder (write-freeze; reads keep serving) and
//     fetch each frozen stripe — directly from the live holders, or
//     from the backing store's append-only staged objects when a
//     holder stops answering mid-copy.
//  2. Install the re-striped content into pending (invisible) buffers
//     on the target servers, then commit — atomically rewriting the
//     layout metadata under a bumped layout generation — and drop the
//     stale stripes, generation-checked so a concurrent unlink or
//     recreate is never clobbered. Dropped stripes leave moved markers
//     and tombstone their staged objects; committed stripes are fully
//     dirty, so the ordinary drain engine converges the backing store
//     on the new layout.
//
// All peer traffic (seal, stripe fetches, installs, commits, drops)
// carries the synthetic rebalance job (policy.RebalanceJob), and data
// messages go through each receiving server's token scheduler — the
// compiled sharing policy arbitrates migration bandwidth against
// foreground I/O exactly as it does stage-out drain traffic.

// migChunk is the migration transfer granularity: the same 1 MiB grain
// as foreground striped writes and drain chunks, so the policy
// interleaves all three equally.
const migChunk = 1 << 20

// Migrator plans and executes stripe migrations for one server.
type Migrator struct {
	self  string
	shard *fsys.Shard
	node  *cluster.Node
	store backing.Store // nil without stage-out durability
	job   policy.JobInfo
	log   *slog.Logger

	// running admits one pass at a time (the controller ticks every λ;
	// a tick that finds a pass in flight changes nothing). planned is
	// the ring epoch the shard was last fully reconciled against: the
	// pass is a no-op until the epoch moves again or a previous pass
	// left errors behind.
	running atomic.Bool
	planned atomic.Uint64
	dirty   atomic.Bool // a pass failed; retry even at the same epoch
	closed  atomic.Bool

	// Progress counters for themisctl rebalance status.
	files   atomic.Int64
	bytes   atomic.Int64
	errs    atomic.Int64
	pending atomic.Int64

	mu        sync.Mutex
	lastErr   error
	conns     map[string]*transport.Conn
	seq       uint64
	lastSweep time.Time
	// drops are stale-stripe retirements whose delivery failed after a
	// cutover already committed. The cutover is correct without them —
	// moved markers and tombstones are per-holder hygiene — but a
	// dropped drop would leak the sealed zombie entry and its staged
	// object forever (no epoch move revisits it), so they are retried
	// every pass until they land or the generation check voids them.
	drops []pendingDrop
}

type pendingDrop struct {
	addr, path string
	gen        uint64
}

// NewMigrator builds a migration coordinator for the shard owned by
// server self. logger receives migration progress (nil discards).
func NewMigrator(self string, shard *fsys.Shard, node *cluster.Node, store backing.Store, logger *slog.Logger) *Migrator {
	if logger == nil {
		logger = obsv.NopLogger()
	}
	return &Migrator{
		self:  self,
		shard: shard,
		node:  node,
		store: store,
		job:   policy.RebalanceJob(self),
		log:   logger,
		conns: map[string]*transport.Conn{},
	}
}

// Job returns the synthetic job identity the migrator's peer traffic
// carries.
func (m *Migrator) Job() policy.JobInfo { return m.job }

// Stats reports lifetime migration counters and the pending candidate
// count of the current pass.
func (m *Migrator) Stats() (files, bytes, errs, pending int64) {
	return m.files.Load(), m.bytes.Load(), m.errs.Load(), m.pending.Load()
}

// Epoch returns the ring epoch the shard was last fully reconciled
// against.
func (m *Migrator) Epoch() uint64 { return m.planned.Load() }

// Settled reports whether the migrator has fully reconciled the given
// ring epoch: no pass in flight, no re-plan owed, nothing pending.
func (m *Migrator) Settled(epoch uint64) bool {
	return m.planned.Load() == epoch && !m.dirty.Load() &&
		!m.running.Load() && m.pending.Load() == 0
}

// LastErr returns the most recent migration error (nil if none).
func (m *Migrator) LastErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// Close tears down cached peer connections and refuses new dials — an
// in-flight pass errors out at its next round trip instead of opening
// (and leaking) fresh sockets after shutdown.
func (m *Migrator) Close() {
	m.closed.Store(true)
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, c := range m.conns {
		c.Close()
		delete(m.conns, addr)
	}
}

func (m *Migrator) fail(err error) {
	m.errs.Add(1)
	m.mu.Lock()
	m.lastErr = err
	m.mu.Unlock()
}

// Pass runs one plan-and-migrate pass if the ring epoch moved since the
// last fully-reconciled pass (or the last pass left failures behind).
// It returns immediately when there is nothing to do; the caller runs
// it off the controller's λ loop.
func (m *Migrator) Pass() {
	mem := m.node.Membership()
	epoch := mem.Epoch()
	if epoch == m.planned.Load() && !m.dirty.Load() {
		return
	}
	m.dirty.Store(false)
	m.retryDrops()
	plan, skipped := m.plan(mem)
	m.pending.Store(int64(len(plan)))
	ok := true
	for _, fi := range plan {
		if err := m.migrateFile(mem, fi); err != nil {
			m.fail(fmt.Errorf("rebalance %s: %w", fi.Path, err))
			ok = false
		}
		m.pending.Add(-1)
	}
	m.pending.Store(0)
	m.mu.Lock()
	dropsLeft := len(m.drops)
	m.mu.Unlock()
	// Advance the reconciled epoch only if every candidate settled, no
	// candidate was skipped for a transiently non-alive member (a
	// suspect recovering to alive moves no epoch, so only the dirty
	// flag would ever revisit it), no stale-stripe drop is still owed,
	// and the ring did not move mid-pass; otherwise the next λ tick
	// replans.
	if ok && skipped == 0 && dropsLeft == 0 && mem.Epoch() == epoch {
		m.planned.Store(epoch)
	} else if !ok || skipped > 0 || dropsLeft > 0 {
		m.dirty.Store(true)
	}
}

// retryDrops re-delivers stale-stripe retirements left over from
// earlier cutovers; still-failing ones requeue.
func (m *Migrator) retryDrops() {
	m.mu.Lock()
	drops := m.drops
	m.drops = nil
	m.mu.Unlock()
	for _, d := range drops {
		if err := m.dropOn(d.addr, d.path, d.gen); err != nil {
			m.mu.Lock()
			m.drops = append(m.drops, d)
			m.mu.Unlock()
		}
	}
}

// MarkDirty forces the next pass to re-plan even at an unchanged ring
// epoch. A committed migration calls it on the receiving server: the
// commit may have made this server the new coordinator (set[0]) of a
// layout the grown ring wants moved again, and no epoch move would
// announce that.
func (m *Migrator) MarkDirty() { m.dirty.Store(true) }

// zombieAge is how long an entry must stay sealed before the zombie
// sweep considers its coordinator dead, and zombieSweepEvery paces the
// sweep itself. Both sit far above any live migration's seal window.
const (
	zombieAge        = 2 * time.Minute
	zombieSweepEvery = time.Minute
)

// ZombieSweep retires long-sealed local stripes whose migration
// completed elsewhere — the owed-drops queue is coordinator memory, so
// a coordinator crash between cutover and drop delivery would
// otherwise leak the sealed entry and its staged object forever, with
// no epoch move to revisit it. The proof of completion is read from
// the path's current ring owner: a committed layout at a newer
// generation that excludes this server supersedes the local stripe.
// Anything short of that proof leaves the entry alone.
func (m *Migrator) ZombieSweep() {
	m.mu.Lock()
	if time.Since(m.lastSweep) < zombieSweepEvery {
		m.mu.Unlock()
		return
	}
	m.lastSweep = time.Now()
	m.mu.Unlock()
	// Periodic re-plan backstop: whatever ordering race or lost signal
	// might ever leave a diverged layout behind a settled epoch, the
	// next sweep re-plans and converges it. One FileLayouts scan per
	// sweep interval is noise.
	m.dirty.Store(true)
	for _, p := range m.shard.LongSealed(zombieAge) {
		fi, err := m.shard.Stat(p)
		if err != nil {
			continue
		}
		// The creation generation is captured before the remote round
		// trip: an unlink/recreate landing while the owner's stat queues
		// through its scheduler must void the drop, and a generation
		// read at drop time would trivially match the new incarnation.
		gen := m.shard.GenOf(p)
		owner, ok := m.node.Membership().Ring().Lookup(p)
		if !ok || owner == m.self {
			continue // this server's own plan owns the path's fate
		}
		resp, err := m.call(owner, &transport.Request{Type: transport.MsgStat, Path: p})
		if err != nil {
			continue
		}
		if resp.IsDir || resp.LayoutGen <= fi.LayoutGen || slices.Contains(resp.StripeSet, m.self) {
			continue
		}
		if m.shard.MigrateDrop(p, gen) {
			m.log.Info("retired zombie stripe",
				"path", p, "superseded_gen", resp.LayoutGen, "owner", owner)
		}
	}
}

// plan scans the shard for files whose recorded layout diverges from
// the ring's current placement and that this server coordinates
// (self == recorded set[0]; unrecorded legacy layouts are coordinated
// by their holder). Files touching any non-alive member are counted
// as skipped, not planned — failure reconciliation belongs to failover
// recovery, and a transient suspect resolves within a few λ — and a
// non-zero skip count keeps the pass from settling.
func (m *Migrator) plan(mem *cluster.Membership) ([]fsys.FileInfo, int) {
	ring := mem.Ring()
	var out []fsys.FileInfo
	skipped := 0
	for _, fi := range m.shard.FileLayouts() {
		set := fi.StripeSet
		if len(set) == 0 {
			if fi.Stripes > 1 {
				// A legacy multi-stripe layout with no recorded set: the
				// other holders are underivable (the creating ring is
				// gone), and migrating just the local stripe as if it
				// were the whole file would destroy the rest. Leave it
				// where the hash put it.
				continue
			}
			set = []string{m.self}
		}
		if set[0] != m.self {
			continue
		}
		width := fi.Stripes
		if width < 1 {
			width = 1
		}
		target := ring.LookupN(fi.Path, width)
		if len(target) == 0 || slices.Equal(set, target) {
			continue
		}
		alive := true
		for _, a := range append(append([]string{}, set...), target...) {
			if !mem.IsAlive(a) {
				alive = false
				break
			}
		}
		if !alive {
			skipped++
			continue
		}
		fi.StripeSet = set
		out = append(out, fi)
	}
	return out, skipped
}

// migrateFile moves one file from its recorded layout to the ring's
// current placement. A nil return means settled: migrated, found
// already gone, or skipped because the path changed under us (the next
// pass re-plans).
func (m *Migrator) migrateFile(mem *cluster.Membership, fi fsys.FileInfo) error {
	set := fi.StripeSet
	target := mem.Ring().LookupN(fi.Path, max(1, fi.Stripes))
	if len(target) == 0 || slices.Equal(set, target) {
		return nil
	}
	unit := fi.StripeUnit
	if unit <= 0 {
		unit = fsys.DefaultStripeUnit
	}

	newGen := fi.LayoutGen + 1
	if newGen < 2 {
		newGen = 2 // legacy entries may report generation zero
	}
	// Phase one: seal every current holder, generation-checked against
	// the recorded layout. The seal freezes each local stripe (writes
	// answer stale-layout and the client retries against the new layout
	// after cutover), so the sizes reported here are final and the copy
	// can never miss an acknowledged byte.
	//
	// A stale answer from a holder means it already carries the NEW
	// layout — this pass is resuming a cutover an earlier pass started
	// but could not finish (a commit executed whose reply was lost).
	// Width-preserving migration maps new stripe i to old stripe i
	// byte-for-byte, so the committed holder of stripe i — target[i] —
	// serves the same content; seal it under the new generation and
	// fetch from there instead. Without the generation check, a resumed
	// pass would copy a committed holder's re-indexed stripe under its
	// old index and corrupt the reassembly.
	seals := sealState{
		srcs:  make([]string, len(set)), // who serves stripe i's frozen bytes
		sizes: make([]int64, len(set)),
		gens:  make([]uint64, len(set)), // old holders' creation gens (for drops)
		held:  make([]bool, len(set)),   // a seal this pass placed
		sub:   make([]bool, len(set)),   // src is the committed target (resume)
	}
	var sealErr error
	for i, addr := range set {
		size, gen, err := m.sealOn(addr, fi.Path, fi.LayoutGen)
		if err == nil {
			seals.srcs[i], seals.sizes[i], seals.gens[i], seals.held[i] = addr, size, gen, true
			continue
		}
		if staleErr(err) && len(target) == len(set) && i < len(target) {
			if size, _, rerr := m.sealOn(target[i], fi.Path, newGen); rerr == nil {
				seals.srcs[i], seals.sizes[i], seals.held[i], seals.sub[i] = target[i], size, true, true
				continue
			}
		}
		sealErr = err
		break
	}
	if sealErr != nil {
		m.releaseSeals(fi.Path, unit, set, seals)
		if isGone(sealErr) || staleErr(sealErr) {
			return nil // unlinked, or moved on in a way this pass cannot resume
		}
		return sealErr
	}

	// The migrated content is the longest round-robin-consistent prefix
	// of the sealed stripes. Anything past it is the torn tail of a
	// write that raced the seal — some chunks landed, an earlier one
	// was refused — which the client was never acked for and re-issues
	// against the new layout after its re-stat; carrying such an orphan
	// unit over verbatim would make the re-stat size include bytes that
	// are not a prefix of the interrupted write, and the client's
	// "surviving prefix" arithmetic would then resume at the wrong
	// offset.
	total := fsys.ConsistentTotal(seals.sizes, unit)
	var moved int64
	// Copy: fetch each frozen stripe, trimmed to the consistent prefix.
	parts := make([][]byte, len(set))
	for i := range set {
		want := fsys.LocalLen(total, i, len(set), unit)
		data, err := m.fetchStripe(seals.srcs[i], fi.Path, i, want)
		if err != nil {
			m.releaseSeals(fi.Path, unit, set, seals)
			return err
		}
		parts[i] = data
		moved += int64(len(data))
	}
	// Project the new local stripes. Migration preserves width and unit
	// (only the server set shifts), and the round-robin projection
	// depends on nothing else — so new stripe j is old stripe j,
	// byte-for-byte, with no intermediate full-content copy. The
	// general re-stripe path (via backing.Interleave, shared with
	// failover reassembly) stays for a future width change.
	var stripes [][]byte
	if len(target) == len(set) {
		stripes = parts
	} else {
		full := backing.Interleave(parts, unit)
		stripes = make([][]byte, len(target))
		for j := range target {
			stripes[j] = stripeOf(full, j, len(target), unit)
		}
	}

	// Generation guard: the coordinator is always a current holder, so
	// its local creation generation moving means the path was unlinked
	// or recreated while we copied — the new incarnation owns the name.
	selfIdx := slices.Index(set, m.self)
	if selfIdx < 0 || m.shard.GenOf(fi.Path) != seals.gens[selfIdx] {
		m.releaseSeals(fi.Path, unit, set, seals)
		m.shard.MigrateAbort(fi.Path)
		return nil
	}

	// Phase two: install each new local stripe into a pending buffer on
	// its target, commit the new layout everywhere (remote targets
	// first, self last, so an interrupted cutover leaves this
	// coordinator's old layout in place and the next pass resumes),
	// then drop the stale stripes.
	for j, addr := range target {
		if err := m.installOn(addr, fi.Path, stripes[j]); err != nil {
			m.abortAll(target[:j+1], fi.Path)
			m.releaseSeals(fi.Path, unit, set, seals)
			return err
		}
	}
	// Re-check the unlink guard at the cutover edge: the installs are
	// policy-throttled and can take a while, and a commit after an
	// unlink would resurrect the file on the targets. (The residual
	// window — an unlink landing between this check and the commit
	// deliveries — is one round trip, the same bounded-async exposure
	// as failover recovery's adoption.)
	if m.shard.GenOf(fi.Path) != seals.gens[selfIdx] {
		m.abortAll(target, fi.Path)
		m.releaseSeals(fi.Path, unit, set, seals)
		return nil
	}
	for _, addr := range target {
		if addr == m.self {
			continue
		}
		// Commits are idempotent (layout-generation-checked on the
		// receiver), so transport failures retry in place — the
		// alternative, abandoning a partially committed cutover, leaves
		// a mixed-generation file for the resume path to repair.
		var cerr error
		for attempt := 0; attempt < 3; attempt++ {
			if cerr = m.commitOn(addr, fi.Path, len(target), unit, target, newGen); cerr == nil {
				break
			}
			if staleErr(cerr) || isGone(cerr) {
				break // an application refusal will not change on retry
			}
			time.Sleep(50 * time.Millisecond)
		}
		if cerr != nil {
			// A persistently dying peer: the layouts re-converge through
			// the next pass (this coordinator's entry still records the
			// old set, and the generation-checked seal resumes the
			// partial cutover) or through failover recovery.
			m.abortAll(target, fi.Path)
			m.releaseSeals(fi.Path, unit, set, seals)
			return cerr
		}
	}
	if slices.Index(target, m.self) >= 0 {
		if err := m.shard.MigrateCommit(fi.Path, len(target), unit, target, newGen); err != nil {
			m.releaseSeals(fi.Path, unit, set, seals)
			return err
		}
	}
	// Cutover done: retire the stale stripes. A failed drop does not
	// fail the file — the cutover is complete — but it is queued for
	// retry on every subsequent pass: nothing else ever revisits the
	// holder (the entry is already off the recorded layout), and an
	// unretired stripe leaks its device extents and staged object.
	for i, addr := range set {
		if slices.Index(target, addr) >= 0 {
			continue // replaced by its commit
		}
		if err := m.dropOn(addr, fi.Path, seals.gens[i]); err != nil {
			m.fail(fmt.Errorf("rebalance %s: dropping stale stripe on %s (will retry): %w", fi.Path, addr, err))
			m.mu.Lock()
			m.drops = append(m.drops, pendingDrop{addr: addr, path: fi.Path, gen: seals.gens[i]})
			m.mu.Unlock()
			m.dirty.Store(true)
		}
	}
	m.files.Add(1)
	m.bytes.Add(moved)
	return nil
}

// stripeOf projects the round-robin local stripe j of a width-n layout
// out of the full content.
func stripeOf(full []byte, j, n int, unit int64) []byte {
	if n <= 1 {
		return full
	}
	var out []byte
	total := int64(len(full))
	for off := int64(j) * unit; off < total; off += unit * int64(n) {
		end := off + unit
		if end > total {
			end = total
		}
		out = append(out, full[off:end]...)
	}
	return out
}

// isGone matches the missing-entry condition across the local
// (errors.Is) and remote (string-carried) forms.
func isGone(err error) bool {
	return err != nil && (errors.Is(err, fsys.ErrNotExist) || transport.IsNotExist(err))
}

// staleErr matches the stale-layout condition across the local and
// wire-carried forms.
func staleErr(err error) bool {
	return err != nil && (errors.Is(err, fsys.ErrStaleLayout) || transport.IsStaleLayout(err))
}

// --- per-holder operations (local fast path + remote RPC) ---------------

func (m *Migrator) sealOn(addr, path string, expectLayoutGen uint64) (int64, uint64, error) {
	if addr == m.self {
		return m.shard.Seal(path, expectLayoutGen)
	}
	resp, err := m.call(addr, &transport.Request{
		Type: transport.MsgMigrate, MigrateOp: transport.MigrateSeal, Path: path,
		LayoutGen: expectLayoutGen,
	})
	if err != nil {
		return 0, 0, err
	}
	return resp.Size, resp.Gen, nil
}

// sealState tracks, per stripe index of the old layout, which server
// serves the frozen bytes and what the seal phase learned about it.
type sealState struct {
	srcs  []string
	sizes []int64
	gens  []uint64
	held  []bool // a seal this pass placed on srcs[i]
	sub   []bool // srcs[i] is the committed target (a resumed cutover)
}

// releaseSeals lifts every seal an abandoned migration placed. Sealed
// old-layout holders are first trimmed back to their share of the
// consistent round-robin prefix: a striped write racing the sequential
// seal phase can land a chunk on a not-yet-sealed holder while an
// already-sealed one refuses — bytes the client was never acked for
// and, on an append-structured stripe, a permanent off-by-a-unit for
// every later append. (The cutover path needs no trim-on-release: its
// installs are cut from the consistent prefix and the commit replaces
// the entries wholesale.) Holders whose sizes the failed seal phase
// never learned are completed with a direct stat; if even that fails,
// the seal lifts untrimmed and the next pass — or the eventual
// cutover, which always trims — converges. Committed-target seals (the
// resume path) are released untrimmed: their content was installed
// from a consistent prefix and is not writable under the old layout.
func (m *Migrator) releaseSeals(path string, unit int64, set []string, seals sealState) {
	known := true
	for i := range set {
		if seals.held[i] || seals.sub[i] {
			continue
		}
		sz, err := m.statStripe(set[i], path)
		if err != nil {
			known = false
			break
		}
		seals.sizes[i] = sz
	}
	if !known {
		// Unsealing without the trim could leave torn bytes that
		// misplace every later append, and a later cutover would trim
		// acknowledged data at the hole. Leaving the seals standing is
		// strictly safer: writes answer stale-layout (the client keeps
		// retrying inside its budget), the pass stays dirty, and the
		// retry completes the trim once the unreachable holder answers
		// — or failover recovery replaces the entries wholesale.
		m.fail(fmt.Errorf("rebalance %s: holder sizes unknown; keeping seals until the next pass", path))
		m.dirty.Store(true)
		return
	}
	total := fsys.ConsistentTotal(seals.sizes, unit)
	for i := range set {
		if seals.sub[i] {
			if seals.held[i] {
				m.unsealOn(seals.srcs[i], path, -1)
			}
			continue
		}
		// Trim every old holder — sealed or not — back to its share of
		// the consistent prefix: the torn chunk of a write the seal
		// phase refused elsewhere lands precisely on the holders that
		// were never sealed, and no acknowledged byte can sit past the
		// prefix while any holder is still sealed. The trim doubles as
		// the unseal for the held ones.
		keep := int64(-1)
		if seals.sizes[i] > fsys.LocalLen(total, i, len(set), unit) {
			keep = fsys.LocalLen(total, i, len(set), unit)
		}
		if seals.held[i] || keep >= 0 {
			addr := set[i]
			if seals.held[i] {
				addr = seals.srcs[i]
			}
			m.unsealOn(addr, path, keep)
		}
	}
}

// unsealOn lifts one seal; keep >= 0 additionally trims the stripe to
// keep bytes first.
func (m *Migrator) unsealOn(addr, path string, keep int64) {
	if addr == m.self {
		if keep >= 0 {
			if err := m.shard.UnsealTrim(path, keep); err != nil {
				m.fail(fmt.Errorf("rebalance %s: trimming local stripe: %w", path, err))
			}
			return
		}
		m.shard.Unseal(path)
		return
	}
	op, size := transport.MigrateUnseal, int64(0)
	if keep >= 0 {
		op, size = transport.MigrateUnsealTrim, keep
	}
	_, _ = m.call(addr, &transport.Request{
		Type: transport.MsgMigrate, MigrateOp: op, Path: path, Size: size,
	})
}

// statStripe reads one holder's local stripe size.
func (m *Migrator) statStripe(addr, path string) (int64, error) {
	if addr == m.self {
		fi, err := m.shard.Stat(path)
		if err != nil {
			return 0, err
		}
		return fi.Size, nil
	}
	resp, err := m.call(addr, &transport.Request{Type: transport.MsgStat, Path: path})
	if err != nil {
		return 0, err
	}
	return resp.Size, nil
}

func (m *Migrator) abortAll(targets []string, path string) {
	for _, addr := range targets {
		if addr == m.self {
			m.shard.MigrateAbort(path)
			continue
		}
		_, _ = m.call(addr, &transport.Request{
			Type: transport.MsgMigrate, MigrateOp: transport.MigrateAbort, Path: path,
		})
	}
}

// fetchStripe reads the frozen local stripe of path on addr. When the
// holder stops answering mid-copy and a backing store is configured,
// the holder's own staged object stands in: the store is
// append-structured, so any prefix that holder staged under this
// stripe index is byte-identical to the live stripe. The lookup is
// owner-scoped — an any-owner match could return a not-yet-tombstoned
// row from an older layout whose bytes interleave differently.
func (m *Migrator) fetchStripe(addr, path string, stripe int, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, 0, size)
	if addr == m.self {
		buf = buf[:size]
		n, err := m.shard.ReadAt(path, 0, buf)
		if err != nil || int64(n) != size {
			return nil, fmt.Errorf("local stripe read: n=%d err=%v", n, err)
		}
		return buf, nil
	}
	var ferr error
	for off := int64(0); off < size; {
		want := int64(migChunk)
		if want > size-off {
			want = size - off
		}
		resp, err := m.call(addr, &transport.Request{
			Type: transport.MsgRead, Path: path, Offset: off, Size: want,
		})
		if err != nil {
			ferr = err
			break
		}
		if resp.N < want {
			ferr = fmt.Errorf("short stripe read from %s: %d < %d", addr, resp.N, want)
			break
		}
		buf = append(buf, resp.Data[:want]...)
		off += want
	}
	if ferr == nil {
		return buf, nil
	}
	if m.store != nil {
		if data, _, err := m.store.ReadObject(addr, path, stripe); err == nil && int64(len(data)) >= size {
			return data[:size], nil
		}
	}
	return nil, ferr
}

func (m *Migrator) installOn(addr, path string, data []byte) error {
	for off := int64(0); ; {
		end := off + migChunk
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if addr == m.self {
			if err := m.shard.MigrateInstall(path, off, data[off:end]); err != nil {
				return err
			}
		} else {
			if _, err := m.call(addr, &transport.Request{
				Type: transport.MsgMigrate, MigrateOp: transport.MigrateInstall,
				Path: path, Offset: off, Data: data[off:end],
			}); err != nil {
				return err
			}
		}
		off = end
		if off >= int64(len(data)) {
			return nil
		}
	}
}

func (m *Migrator) commitOn(addr, path string, stripes int, unit int64, set []string, layoutGen uint64) error {
	_, err := m.call(addr, &transport.Request{
		Type: transport.MsgMigrate, MigrateOp: transport.MigrateCommit,
		Path: path, Stripes: stripes, StripeUnit: unit, StripeSet: set,
		LayoutGen: layoutGen,
	})
	return err
}

func (m *Migrator) dropOn(addr, path string, gen uint64) error {
	if addr == m.self {
		m.shard.MigrateDrop(path, gen)
		return nil
	}
	_, err := m.call(addr, &transport.Request{
		Type: transport.MsgMigrate, MigrateOp: transport.MigrateDrop,
		Path: path, Gen: gen,
	})
	return err
}

// call performs one request/response round trip with a peer over a
// cached connection under the rebalance job identity, redialing once
// on a transport failure. Data messages land in the peer's scheduler,
// so the reply waits for a token draw — the deadline must comfortably
// exceed a saturated queue's service time.
//
// An application-level error (the peer answered, but refused) is
// returned as-is without touching the connection: it is a protocol
// outcome, not a transport fault. A transport failure on the cached
// connection re-sends once over a fresh dial; the first delivery may
// have executed, which is safe because every migrate sub-op is
// idempotent — seal/unseal/abort by nature, install by its in-order
// offset check, commit by the layout-generation check, drop by the
// creation-generation check.
func (m *Migrator) call(addr string, req *transport.Request) (*transport.Response, error) {
	if m.closed.Load() {
		return nil, fmt.Errorf("rebalance: migrator closed")
	}
	req.Job = m.job
	m.mu.Lock()
	m.seq++
	req.Seq = m.seq
	c := m.conns[addr]
	m.mu.Unlock()
	if c != nil {
		resp, err := m.roundTrip(c, req)
		if err == nil {
			return m.appResult(resp)
		}
		m.dropConn(addr, c)
	}
	if m.closed.Load() {
		// Close swept the cache while this call was in flight; dialing
		// now would register a socket nothing ever closes.
		return nil, fmt.Errorf("rebalance: migrator closed")
	}
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	c = transport.NewBinaryConn(raw)
	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("rebalance: migrator closed")
	}
	m.conns[addr] = c
	m.mu.Unlock()
	resp, err := m.roundTrip(c, req)
	if err != nil {
		m.dropConn(addr, c)
		return nil, err
	}
	return m.appResult(resp)
}

// appResult surfaces a peer's application-level refusal as an error
// while leaving the healthy connection cached.
func (m *Migrator) appResult(resp *transport.Response) (*transport.Response, error) {
	if resp.Err != "" {
		return nil, resp.Error()
	}
	return resp, nil
}

func (m *Migrator) roundTrip(c *transport.Conn, req *transport.Request) (*transport.Response, error) {
	_ = c.SetDeadline(time.Now().Add(30 * time.Second))
	defer c.SetDeadline(time.Time{})
	if err := c.SendRequest(req); err != nil {
		return nil, err
	}
	resp, err := c.RecvResponse()
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (m *Migrator) dropConn(addr string, c *transport.Conn) {
	c.Close()
	m.mu.Lock()
	if m.conns[addr] == c {
		delete(m.conns, addr)
	}
	m.mu.Unlock()
}
