package server

import (
	"net"
	"strconv"
	"time"

	"themisio/internal/cluster"
	"themisio/internal/obsv"
	"themisio/internal/sched"
	"themisio/internal/transport"
)

// Operator metrics wiring: every layer of the fabric exported through
// one per-server obsv.Registry (Config.Metrics). Almost everything here
// is a scrape-time callback over counters the fabric already maintains
// lock-free — the request path pays nothing for them. The only hot-path
// instruments are the transport frame accounting (two atomic adds per
// frame), the per-op request-latency histograms, and the draw-latency
// histogram, all gated on Config.Metrics being set.

// numOps is the number of sched.Op values (OpSeek is the last).
const numOps = int(sched.OpSeek) + 1

// serverMetrics holds the hot-path instrument handles; the scrape-time
// callbacks are registered once and never referenced again.
type serverMetrics struct {
	transport *transport.Stats
	reqLat    [numOps]*obsv.Histogram
	drawLat   *obsv.Histogram
}

// newServerMetrics registers the full themis_* family set for s on reg
// and returns the hot-path handles. Called once from New; reg must not
// already hold another server's families (one registry per server).
func newServerMetrics(reg *obsv.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{transport: &transport.Stats{}}

	// --- core scheduler ---------------------------------------------------
	reg.CounterFunc("themis_sched_draws_total",
		"Statistical lottery tokens drawn since boot.",
		func() float64 { return float64(s.sched.Draws()) })
	reg.GaugeFunc("themis_sched_pending_requests",
		"Requests currently queued across all jobs.",
		func() float64 { return float64(s.sched.Pending()) })
	reg.CounterFunc("themis_sched_policy_compiles_total",
		"Policy compilations (grows with job-set changes, not requests).",
		func() float64 { return float64(s.sched.Compiles()) })
	reg.CounterFunc("themis_sched_compile_full_total",
		"From-scratch policy compilations (bootstrap, policy swaps, delta fallbacks).",
		func() float64 { return float64(s.sched.CompilesFull()) })
	reg.CounterFunc("themis_sched_compile_delta_total",
		"Incremental delta recompiles that patched the previous epoch's share tree.",
		func() float64 { return float64(s.sched.CompilesDelta()) })
	reg.GaugeFunc("themis_sched_epoch",
		"Current compiled token-assignment epoch sequence.",
		func() float64 { return float64(s.sched.EpochSeq()) })
	reg.GaugeVecFunc("themis_sched_backlog_requests",
		"Queued requests per job.", []string{"job"},
		func(emit obsv.Emit) {
			for job, n := range s.sched.Backlogs() {
				emit([]string{job}, float64(n))
			}
		})
	reg.CounterVecFunc("themis_sched_served_bytes_total",
		"Serviced bytes per job (request Cost at pop time).", []string{"job"},
		func(emit obsv.Emit) {
			for job, n := range s.sched.ServedBytes() {
				emit([]string{job}, float64(n))
			}
		})
	m.drawLat = reg.Histogram("themis_sched_draw_latency_seconds",
		"Latency of token draws that handed out a request.",
		obsv.LatencyBuckets)
	s.sched.SetDrawObserver(func(d time.Duration) { m.drawLat.Observe(d.Seconds()) })

	// --- server workers ---------------------------------------------------
	reg.CounterFunc("themis_server_requests_served_total",
		"Client requests executed by the worker pool.",
		func() float64 { return float64(s.served.Load()) })
	lat := reg.HistogramVec("themis_server_request_latency_seconds",
		"Request latency from communicator arrival to reply sent, by operation.",
		obsv.LatencyBuckets, "op")
	for op := 0; op < numOps; op++ {
		m.reqLat[op] = lat.With(sched.Op(op).String())
	}

	// --- transport --------------------------------------------------------
	reg.CounterVecFunc("themis_transport_frames_total",
		"Frames exchanged on accepted connections, by message type and direction.",
		[]string{"type", "dir"},
		func(emit obsv.Emit) {
			m.transport.Snapshot(func(typ, dir string, frames, _ int64) {
				emit([]string{typ, dir}, float64(frames))
			})
		})
	reg.CounterVecFunc("themis_transport_bytes_total",
		"Exact wire bytes on accepted connections (framing included), by message type and direction.",
		[]string{"type", "dir"},
		func(emit obsv.Emit) {
			m.transport.Snapshot(func(typ, dir string, _, bytes int64) {
				emit([]string{typ, dir}, float64(bytes))
			})
		})
	reg.CounterFunc("themis_transport_pool_gets_total",
		"Codec scratch-buffer pool gets (process-wide).",
		func() float64 { g, _ := transport.PoolStats(); return float64(g) })
	reg.CounterFunc("themis_transport_pool_misses_total",
		"Codec scratch-buffer pool gets that had to allocate (process-wide).",
		func() float64 { _, mi := transport.PoolStats(); return float64(mi) })
	reg.CounterFunc("themis_transport_writev_frames_total",
		"Data frames sent vectored — header and payload as separate iovecs in one writev (process-wide).",
		func() float64 { v, _, _ := transport.IOStats(); return float64(v) })
	reg.CounterFunc("themis_transport_writev_payload_bytes_total",
		"Payload bytes that rode out as their own iovec, never concatenated into scratch (process-wide).",
		func() float64 { _, b, _ := transport.IOStats(); return float64(b) })
	reg.CounterFunc("themis_transport_flat_frames_total",
		"Frames sent as a single contiguous write (control traffic and sub-threshold payloads, process-wide).",
		func() float64 { _, _, f := transport.IOStats(); return float64(f) })
	reg.CounterFunc("themis_transport_lease_gets_total",
		"Payload-pool leases handed out (frame receives and read replies, process-wide).",
		func() float64 { g, _ := transport.LeaseStats(); return float64(g) })
	reg.CounterFunc("themis_transport_lease_misses_total",
		"Payload-pool leases that had to allocate a fresh buffer (process-wide).",
		func() float64 { _, mi := transport.LeaseStats(); return float64(mi) })
	reg.GaugeFunc("themis_transport_pool_conns_open",
		"Connections open across every live per-server connection pool (process-wide).",
		func() float64 { o, _, _ := transport.ConnPoolStats(); return float64(o) })
	reg.GaugeFunc("themis_transport_pool_conns_dialing",
		"Pool slots with a dial in progress (process-wide).",
		func() float64 { _, d, _ := transport.ConnPoolStats(); return float64(d) })
	reg.GaugeFunc("themis_transport_pool_conns_cooldown",
		"Pool slots sitting out a dial-failure cooldown (process-wide).",
		func() float64 { _, _, cd := transport.ConnPoolStats(); return float64(cd) })
	reg.CounterVecFunc("themis_transport_pool_picks_total",
		"Connection picks by pool slot index; the last slot aggregates wider pools (process-wide).",
		[]string{"slot"},
		func(emit obsv.Emit) {
			transport.PoolPicks(func(slot int, picks int64) {
				emit([]string{strconv.Itoa(slot)}, float64(picks))
			})
		})
	reg.GaugeVecFunc("themis_transport_pool_inflight",
		"In-flight window tokens held against each pooled server.",
		[]string{"server"},
		func(emit obsv.Emit) {
			transport.PoolsSnapshot(func(addr string, _, inflight int64) {
				emit([]string{addr}, float64(inflight))
			})
		})

	// --- backing / stage-out ----------------------------------------------
	reg.GaugeFunc("themis_backing_dirty_bytes",
		"Bytes on the shard not yet staged to the backing store.",
		func() float64 { return float64(s.shard.DirtyBytes()) })
	reg.GaugeFunc("themis_backing_drain_queue_depth",
		"Stage-out chunks handed to the scheduler and not yet durable.",
		func() float64 {
			if s.drain == nil {
				return 0
			}
			return float64(s.drain.InFlight())
		})
	reg.CounterFunc("themis_backing_staged_chunks_total",
		"Stage-out chunks written to the backing store.",
		func() float64 { return float64(drainChunks(s)) })
	reg.CounterFunc("themis_backing_staged_bytes_total",
		"Bytes written to the backing store by the drain engine.",
		func() float64 { return float64(drainBytes(s)) })
	reg.CounterFunc("themis_backing_drain_errors_total",
		"Stage-out chunk failures (each is retried).",
		func() float64 { return float64(drainErrs(s)) })
	reg.CounterFunc("themis_backing_recovery_passes_total",
		"Failover-reconciliation passes run (two-phase recovery).",
		func() float64 { return float64(s.recoverPasses.Load()) })

	// --- rebalance --------------------------------------------------------
	reg.CounterFunc("themis_rebalance_files_migrated_total",
		"Files re-striped onto the current ring by the migrator.",
		func() float64 { f, _, _, _ := s.migr.Stats(); return float64(f) })
	reg.CounterFunc("themis_rebalance_bytes_migrated_total",
		"Stripe bytes copied during rebalancing.",
		func() float64 { _, b, _, _ := s.migr.Stats(); return float64(b) })
	reg.CounterFunc("themis_rebalance_errors_total",
		"Migration sub-operation failures (passes retry).",
		func() float64 { _, _, e, _ := s.migr.Stats(); return float64(e) })
	reg.GaugeFunc("themis_rebalance_pending",
		"Migration candidates of the in-flight pass plus unretired stale-stripe drops.",
		func() float64 { _, _, _, p := s.migr.Stats(); return float64(p) })
	reg.GaugeFunc("themis_rebalance_epoch",
		"Ring epoch the shard was last fully reconciled against.",
		func() float64 { return float64(s.migr.Epoch()) })

	// --- cluster ----------------------------------------------------------
	reg.GaugeFunc("themis_cluster_members_alive",
		"Members currently alive in this server's view.",
		func() float64 {
			n := 0
			for _, mb := range s.node.Membership().Snapshot() {
				if mb.State == cluster.StateAlive {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("themis_cluster_membership_epoch",
		"Membership ring epoch in this server's view.",
		func() float64 { return float64(s.node.Membership().Epoch()) })
	reg.CounterFunc("themis_cluster_gossip_rounds_total",
		"λ gossip rounds run since boot.",
		func() float64 { return float64(s.node.GossipRounds()) })
	reg.GaugeFunc("themis_cluster_policy_epoch",
		"Cluster policy epoch the scheduler is currently enforcing (0 = boot policy).",
		func() float64 { _, e := s.AppliedPolicy(); return float64(e) })

	// --- per-entity share ledger ------------------------------------------
	shareLabels := []string{"kind", "id"}
	reg.GaugeVecFunc("themis_share_compiled",
		"Compiled token share per entity in the last λ window.", shareLabels,
		func(emit obsv.Emit) {
			for _, e := range s.ledger.Report() {
				emit([]string{e.Kind, e.ID}, e.Compiled)
			}
		})
	reg.GaugeVecFunc("themis_share_measured",
		"Measured serviced-byte share per entity in the last λ window.", shareLabels,
		func(emit obsv.Emit) {
			for _, e := range s.ledger.Report() {
				emit([]string{e.Kind, e.ID}, e.Measured)
			}
		})
	reg.GaugeVecFunc("themis_share_residual",
		"measured − compiled share per entity (|residual| > 0.02 sustained means the share contract is drifting).",
		shareLabels,
		func(emit obsv.Emit) {
			for _, e := range s.ledger.Report() {
				emit([]string{e.Kind, e.ID}, e.Measured-e.Compiled)
			}
		})
	return m
}

// drainChunks/drainBytes/drainErrs tolerate a nil drainer (no backing
// store, or a boot-failed rehydration) so the families are always
// present.
func drainChunks(s *Server) int64 {
	if s.drain == nil {
		return 0
	}
	c, _, _ := s.drain.Stats()
	return c
}

func drainBytes(s *Server) int64 {
	if s.drain == nil {
		return 0
	}
	_, b, _ := s.drain.Stats()
	return b
}

func drainErrs(s *Server) int64 {
	if s.drain == nil {
		return 0
	}
	_, _, e := s.drain.Stats()
	return e
}

// observeRequest records one completed request's arrival-to-reply
// latency under its op label. Nil-receiver safe: the uninstrumented
// server calls this with s.met == nil and pays only the branch.
func (m *serverMetrics) observeRequest(op sched.Op, d time.Duration) {
	if m == nil {
		return
	}
	if i := int(op); i >= 0 && i < numOps {
		m.reqLat[i].Observe(d.Seconds())
	}
}

// newConn wraps an accepted connection with transport accounting when
// metrics are enabled.
func (s *Server) newConn(raw net.Conn) *transport.Conn {
	if s.met != nil {
		return transport.NewConnStats(raw, s.met.transport)
	}
	return transport.NewConn(raw)
}
