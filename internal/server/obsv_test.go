package server

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"themisio/internal/backing"
	"themisio/internal/obsv"
	"themisio/internal/policy"
)

// brokenStore fails every Manifest read — the boot-time re-hydration
// error path.
type brokenStore struct{}

func (brokenStore) WriteRange(backing.FileMeta, int64, []byte) error { return nil }
func (brokenStore) ReadObject(string, string, int) ([]byte, backing.FileMeta, error) {
	return nil, backing.FileMeta{}, backing.ErrNotStaged
}
func (brokenStore) DeleteObject(string, string, int) error { return nil }
func (brokenStore) Manifest() ([]backing.FileMeta, error) {
	return nil, fmt.Errorf("device gone")
}

func newTestListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// A healthy server is ready; /healthz answers 200 and flips to 503
// after Close.
func TestHealthzReadyLifecycle(t *testing.T) {
	ln := newTestListener(t)
	reg := obsv.NewRegistry()
	srv := New(ln, Config{Policy: policy.SizeFair, Quiet: true, Metrics: reg})
	go srv.Serve()
	ep := httptest.NewServer(obsv.Mux(reg, srv.Ready))
	defer ep.Close()

	resp, err := http.Get(ep.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz on a live server: %d, want 200", resp.StatusCode)
	}

	srv.Close()
	resp, err = http.Get(ep.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after Close: %d, want 503", resp.StatusCode)
	}
}

// A failed re-hydration must leave the server scrapeable but not ready:
// Serve refuses (the existing contract), Ready carries the boot error,
// /healthz answers 503 with the reason, and /metrics still renders the
// full family set — the operator's view into why the server is down.
func TestHealthz503OnBootError(t *testing.T) {
	ln := newTestListener(t)
	defer ln.Close()
	reg := obsv.NewRegistry()
	srv := New(ln, Config{
		Policy: policy.SizeFair, Quiet: true,
		Backing: brokenStore{}, Metrics: reg,
	})
	if srv.BootErr() == nil {
		t.Fatal("broken store must produce a boot error")
	}
	if ok, reason := srv.Ready(); ok || !strings.Contains(reason, "boot failed") {
		t.Fatalf("Ready() = %v, %q; want not ready with a boot-failed reason", ok, reason)
	}
	srv.Serve() // must return immediately, refusing to serve

	ep := httptest.NewServer(obsv.Mux(reg, srv.Ready))
	defer ep.Close()
	resp, err := http.Get(ep.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz on boot failure: %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "device gone") {
		t.Fatalf("/healthz body %q does not carry the boot error", body[:n])
	}

	resp, err = http.Get(ep.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	for _, fam := range []string{
		"themis_sched_pending_requests",
		"themis_backing_dirty_bytes",
		"themis_rebalance_epoch",
		"themis_cluster_members_alive",
	} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("/metrics on a boot-failed server is missing %s", fam)
		}
	}
}
