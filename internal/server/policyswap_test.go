package server

import (
	"net"
	"testing"
	"time"

	"themisio/internal/policy"
)

// startSwapServer runs one quiet server with a fast λ for policy-apply
// tests.
func startSwapServer(t *testing.T) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(ln, Config{
		Policy: policy.JobFair,
		Lambda: 10 * time.Millisecond,
		Quiet:  true,
	})
	go s.Serve()
	t.Cleanup(s.Close)
	return s
}

func waitApplied(t *testing.T, s *Server, wantStr string, wantEpoch uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if str, e := s.AppliedPolicy(); str == wantStr && e == wantEpoch {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	str, e := s.AppliedPolicy()
	t.Fatalf("applied policy = %q/%d, want %q/%d", str, e, wantStr, wantEpoch)
}

// The controller applies a gossiped policy version at its next λ, and —
// the equal-epoch regression — re-applies when the gossip tie-break
// replaces the string without moving the epoch (two concurrent sets at
// the same epoch: gating on the epoch alone would leave this member
// enforcing the losing policy forever).
func TestApplyPolicyEqualEpochTieBreak(t *testing.T) {
	s := startSwapServer(t)
	if str, e := s.AppliedPolicy(); str != "job-fair" || e != 0 {
		t.Fatalf("boot policy = %q/%d, want job-fair/0", str, e)
	}

	// A rumor lands (as if merged from gossip): applied at the next λ.
	if !s.Cluster().MergePolicy("size-fair", 1) {
		t.Fatal("merge of a fresh rumor must be adopted")
	}
	waitApplied(t, s, "size-fair", 1)

	// The tie-break winner of a concurrent set arrives: same epoch,
	// lexically greater string. The member must re-apply.
	if !s.Cluster().MergePolicy("user-then-size-fair", 1) {
		t.Fatal("equal-epoch lexically-greater rumor must be adopted")
	}
	waitApplied(t, s, "user-then-size-fair", 1)
	if got := s.Scheduler().Policy(); !got.Equal(policy.UserThenSizeFair) {
		t.Fatalf("scheduler enforcing %v, want user-then-size-fair", got)
	}
}
