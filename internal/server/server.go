// Package server implements the live (goroutine + socket) ThemisIO
// server of §4.1: a communicator accepting client connections and
// grouping requests into per-job queues, a job monitor tracking
// heartbeats, a controller recompiling token assignments and
// synchronizing job tables with peer servers every λ, and a worker pool
// drawing statistical tokens and executing requests against the
// user-space file system.
//
// The live server shares the scheduler (package core), job table, policy
// compiler and storage substrate with the discrete-event simulator; only
// the serving plane differs (real goroutines and sockets instead of a
// virtual clock).
package server

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/backing"
	"themisio/internal/cluster"
	"themisio/internal/core"
	"themisio/internal/fsys"
	"themisio/internal/jobtable"
	"themisio/internal/metrics"
	"themisio/internal/obsv"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/transport"
)

// wakeBuffer is the capacity of the counting wake channel. It only needs
// to exceed the deepest burst the workers could fail to observe; beyond
// that, a dropped token is provably redundant (wakeBuffer wakeups are
// already banked).
const wakeBuffer = 4096

// workerBatch is how many statistical tokens a worker draws per wake —
// small enough that fairness granularity is unaffected (each draw is
// still independent), large enough to amortize the park/unpark cost.
const workerBatch = 8

// Config parameterizes a live server.
type Config struct {
	// Policy is the sharing policy (default size-fair, the paper's
	// recommended production setting).
	Policy policy.Policy
	// Workers is the worker-pool size (default 4).
	Workers int
	// Capacity is the storage device size in bytes (default 256 MiB).
	Capacity int64
	// Lambda is the job-table sync interval with peers (default 500 ms).
	Lambda time.Duration
	// HeartbeatTimeout marks jobs inactive (default jobtable default).
	HeartbeatTimeout time.Duration
	// Seed fixes the statistical token stream.
	Seed int64
	// OpDelay emulates per-request device time (the RAM-backed store is
	// otherwise far faster than any real device, so a saturated-queue
	// regime — the only regime where fairness matters — would be
	// unreachable in tests). Zero disables it.
	OpDelay time.Duration
	// Peers are the addresses of other servers. Historically this drove
	// the all-to-all MsgSync fan-out; it now seeds the gossip fabric
	// (equivalent to Join) so existing deployments keep working.
	Peers []string
	// Join lists existing cluster members to join through; the join is
	// retried each λ until one seed answers, so start order is free.
	Join []string
	// GossipFanout is the number of random peers contacted per λ round
	// (default cluster.DefaultFanout).
	GossipFanout int
	// FailTimeout confirms a suspect peer failed after this sighting age
	// (default 6×Lambda).
	FailTimeout time.Duration
	// Backing is the stage-out backing store (the PFS behind the burst
	// buffer). When set, the server re-hydrates its shard from it at
	// start, drains dirty data back asynchronously — through the token
	// scheduler, under the sharing policy, as a synthetic background
	// job — and re-hydrates failed peers' ring segments. Nil disables
	// durability (the seed behaviour).
	Backing backing.Store
	// FlushTimeout bounds a forced full stage-out (default 30s).
	FlushTimeout time.Duration
	// RebalanceDisabled turns off join-time stripe rebalancing (on by
	// default): with it set, a newly joined member receives new
	// placements but existing files never migrate toward it.
	RebalanceDisabled bool
	// Logger receives the server's structured log output; the server
	// adds component and addr attributes. Nil selects slog.Default()
	// (the owning binary decides handler, level and prefix — this
	// package no longer hardcodes a "themisd:" prefix).
	Logger *slog.Logger
	// Metrics, when set, wires the full fabric instrumentation —
	// scheduler, transport, workers, backing, rebalance, cluster, and
	// the per-entity share ledger — into this registry. One registry
	// per server: families are registered once in New. Nil disables
	// instrumentation entirely (the hot path pays only nil checks).
	Metrics *obsv.Registry
	// Quiet disables logging (overrides Logger with a no-op handler).
	Quiet bool
}

// Server is a live ThemisIO server instance.
type Server struct {
	cfg     Config
	sched   *core.Themis
	table   *jobtable.Table
	node    *cluster.Node
	shard   *fsys.Shard
	router  *fsys.Router
	drain   *backing.Drainer
	migr    *Migrator
	bootErr error
	start   time.Time
	log     *slog.Logger
	met     *serverMetrics

	// recoverPasses counts failover-reconciliation passes (metrics).
	recoverPasses atomic.Int64

	// applied is the policy the scheduler last recompiled under: the
	// canonical string plus the cluster policy epoch it arrived at (0 =
	// the boot policy, before any live `policy set`). The controller
	// swaps it at λ when the gossiped version moves; MsgShareReport
	// reads it — "every member reports the new policy epoch" is this
	// value converging.
	applied atomic.Pointer[appliedPolicy]
	// ledger is the per-entity fairness accounting: serviced-byte
	// windows rolled every λ from the scheduler's lock-free counters.
	ledger *metrics.ShareLedger

	// recovering serializes asynchronous failover-recovery passes (the
	// backing I/O must not stall the controller's λ loop); stageMu
	// additionally excludes a Flush from overlapping a recovery pass —
	// recovery harvests dirty ranges outside the drainer's accounting,
	// so a flush racing it could report durable too early.
	recovering atomic.Bool
	stageMu    sync.Mutex

	// gone tracks failure-recovery progress per departed member: how
	// many λ ticks it has been seen failed (recovery adopts only after
	// recoverDelayTicks, giving every survivor's pre-stage time to
	// land), or goneDone once reconciled. Cleared when a member rejoins.
	goneMu sync.Mutex
	gone   map[string]int

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool
	// wake is a counting wake channel: every Push deposits one token
	// (dropped only when wakeBuffer tokens are already banked, i.e. the
	// workers have far more wakeups than they can consume). Unlike the
	// old cap-1 channel, concurrent pushes cannot collapse into a single
	// token and leave a worker parked while queues are non-empty.
	wake chan struct{}

	// connMu guards conns, the accepted connections still being served;
	// Close force-closes them so communicator goroutines blocked in
	// RecvRequest unwind (a peer's cached gossip connection would
	// otherwise keep the server alive past Close).
	connMu sync.Mutex
	conns  map[*transport.Conn]struct{}

	served atomic.Int64
}

// New creates a server bound to the listener.
func New(ln net.Listener, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256 << 20
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 500 * time.Millisecond
	}
	if len(cfg.Policy.Levels) == 0 && !cfg.Policy.FIFO {
		cfg.Policy = policy.SizeFair
	}
	if cfg.FailTimeout <= 0 {
		cfg.FailTimeout = 6 * cfg.Lambda
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 30 * time.Second
	}
	addr := ln.Addr().String()
	shard := fsys.NewShard(addr, cfg.Capacity)
	table := jobtable.New(addr, cfg.HeartbeatTimeout)
	s := &Server{
		cfg:   cfg,
		sched: core.New(cfg.Policy, cfg.Seed),
		table: table,
		node: cluster.NewNode(cluster.Config{
			Self:        addr,
			Fanout:      cfg.GossipFanout,
			FailTimeout: cfg.FailTimeout,
			Seed:        cfg.Seed,
		}, table),
		shard:  shard,
		router: fsys.NewRouter([]*fsys.Shard{shard}, 1, 0),
		start:  time.Now(),
		ln:     ln,
		wake:   make(chan struct{}, wakeBuffer),
		conns:  map[*transport.Conn]struct{}{},
		gone:   map[string]int{},
	}
	s.applied.Store(&appliedPolicy{str: cfg.Policy.String()})
	s.ledger = metrics.NewShareLedger(0)
	base := cfg.Logger
	if cfg.Quiet {
		base = obsv.NopLogger()
	} else if base == nil {
		base = slog.Default()
	}
	base = base.With("addr", addr)
	s.log = base.With("component", "server")
	if cfg.Backing != nil {
		// Stage-in: restore whatever this server staged out before its
		// last shutdown or crash (keyed by the listen address). A failed
		// re-hydration is fatal to Serve: running with a partial shard
		// would silently diverge from (and then corrupt) the staged
		// state. The server object is still fully constructed — migrator,
		// metrics and all — so the operator endpoint can report the
		// failure (healthz 503) instead of vanishing.
		n, err := backing.Rehydrate(shard, cfg.Backing, addr)
		if err != nil {
			s.bootErr = err
		} else {
			if n > 0 {
				s.log.Info("rehydrated from backing store", "entries", n)
			}
			s.drain = backing.NewDrainer(addr, shard, cfg.Backing)
		}
	}
	s.migr = NewMigrator(addr, shard, s.node, cfg.Backing, base.With("component", "rebalance"))
	if cfg.Metrics != nil {
		s.met = newServerMetrics(cfg.Metrics, s)
	}
	return s
}

// Ready reports whether the server is able to serve: false with a
// reason while a failed boot (BootErr) blocks Serve or after Close.
// The operator endpoint's /healthz answers from this.
func (s *Server) Ready() (bool, string) {
	if err := s.bootErr; err != nil {
		return false, "boot failed: " + err.Error()
	}
	if s.closed.Load() {
		return false, "closed"
	}
	return true, ""
}

// appliedPolicy is one published (policy string, cluster policy epoch)
// pair — what the scheduler is actually enforcing right now.
type appliedPolicy struct {
	str   string
	epoch uint64
}

// AppliedPolicy returns the canonical policy string the scheduler is
// enforcing and the cluster policy epoch it was applied under (0 means
// the boot policy — no live set has reached this member yet).
func (s *Server) AppliedPolicy() (string, uint64) {
	ap := s.applied.Load()
	return ap.str, ap.epoch
}

// ShareLedger exposes the per-entity fairness accounting (tests and
// inspection; the wire path is MsgShareReport).
func (s *Server) ShareLedger() *metrics.ShareLedger { return s.ledger }

// BootErr reports a fatal startup condition (a failed backing-store
// re-hydration); Serve refuses to run while it is non-nil.
func (s *Server) BootErr() error { return s.bootErr }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Served returns the number of requests executed.
func (s *Server) Served() int64 { return s.served.Load() }

// Scheduler exposes the Themis scheduler for inspection (themisctl).
func (s *Server) Scheduler() *core.Themis { return s.sched }

// Cluster exposes the server's fabric endpoint (membership, ring).
func (s *Server) Cluster() *cluster.Node { return s.node }

// Table exposes the job status table for inspection and tests.
func (s *Server) Table() *jobtable.Table { return s.table }

// now returns time since server start (the jobtable clock domain).
func (s *Server) now() time.Duration { return time.Since(s.start) }

// Serve runs the accept loop, workers, and controller until Close. It
// refuses to serve after a failed boot (see BootErr).
func (s *Server) Serve() {
	if s.bootErr != nil {
		s.log.Error("refusing to serve", "err", s.bootErr)
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.controller()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			s.log.Warn("accept failed", "err", err)
			return
		}
		s.wg.Add(1)
		go s.handleConn(s.newConn(conn))
	}
}

// Close stops the server and waits for goroutines. It does not notify
// the cluster: peers detect the silence and fail this member over (the
// crash path). Use Leave for a graceful departure.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.ln.Close()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// Leave announces a graceful departure to the fabric, then stops the
// server: peers mark this member left immediately instead of waiting
// out the failure timeout. With a backing store configured, the shard
// is flushed first, so a graceful shutdown never loses bytes.
func (s *Server) Leave() {
	if !s.closed.Load() {
		if err := s.Flush(); err != nil {
			s.log.Warn("stage-out on leave failed", "err", err)
		}
		s.node.Leave(s.now())
	}
	s.Close()
}

// handleConn is the communicator: it decodes requests, feeds the job
// monitor, and enqueues scheduler work tagged with the reply path.
//
// The data path performs no policy work: heartbeats, legacy syncs and
// gossip only update the job table / fabric state, and the controller —
// the sole owner of recompilation — republishes the scheduler's epoch
// when the table's generation moves (at most once per λ). Before this
// refactor every message here called sched.SetJobs, recompiling the
// token assignment per request.
func (s *Server) handleConn(c *transport.Conn) {
	defer s.wg.Done()
	defer c.Close()
	s.connMu.Lock()
	if s.closed.Load() {
		s.connMu.Unlock()
		return
	}
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
	}()
	for {
		req, err := c.RecvRequest()
		if err != nil {
			return
		}
		switch req.Type {
		case transport.MsgBye:
			req.Release()
			return
		case transport.MsgHeartbeat:
			s.table.Heartbeat(req.Job, s.now())
			req.Release()
			continue
		case transport.MsgSync:
			// Legacy peer table merge (the receive side of the static
			// all-gather); kept so mixed-version peers still sync.
			s.table.Merge(req.Table, s.now())
			req.Release()
			continue
		case transport.MsgGossip, transport.MsgJoin, transport.MsgLeave,
			transport.MsgClusterStatus, transport.MsgDrain:
			resp := s.node.Handle(req, s.now())
			req.Release()
			if err := s.sendResponse(c, resp); err != nil {
				return
			}
			continue
		case transport.MsgFlush:
			// Forced full stage-out. Runs on this connection's goroutine:
			// the drain chunks themselves go through the scheduler (the
			// policy still arbitrates them); only the completeness wait
			// blocks here.
			resp := &transport.Response{Seq: req.Seq}
			if err := s.Flush(); err != nil {
				resp.Err = err.Error()
			}
			req.Release()
			if err := s.sendResponse(c, resp); err != nil {
				return
			}
			continue
		case transport.MsgPolicySet:
			// Live policy hot-swap entry point: validate, canonicalize,
			// version through the fabric's rumor path. The scheduler swap
			// itself happens on every member's controller at its next λ —
			// in-flight requests re-arbitrate under the new compiled
			// shares; nothing restarts and nothing is dropped.
			resp := &transport.Response{Seq: req.Seq}
			if pol, err := policy.Parse(req.PolicyStr); err != nil {
				resp.Err = err.Error()
			} else {
				resp.PolicyStr = pol.String()
				resp.PolicyEpoch = s.node.ProposePolicy(pol.String())
			}
			req.Release()
			if err := s.sendResponse(c, resp); err != nil {
				return
			}
			continue
		case transport.MsgShareReport:
			// Operator fairness query — control plane, not scheduled.
			// The request's paging filter (top N by |residual|, kind)
			// is applied server-side so a 100k-entity report never
			// crosses the wire; a zero filter keeps the legacy
			// full-report answer.
			ap := s.applied.Load()
			shares := s.ledger.Report()
			if req.ShareTopN > 0 || (req.ShareKind != "" && req.ShareKind != "all") {
				shares = s.ledger.ReportTop(req.ShareTopN, req.ShareKind)
			}
			resp := &transport.Response{
				Seq:         req.Seq,
				PolicyStr:   ap.str,
				PolicyEpoch: ap.epoch,
				Epoch:       s.sched.EpochSeq(),
				Shares:      shareRecords(shares),
			}
			req.Release()
			if err := s.sendResponse(c, resp); err != nil {
				return
			}
			continue
		case transport.MsgRebalanceStatus:
			// Operator progress query — control plane, not scheduled.
			files, bytes, errs, pending := s.migr.Stats()
			resp := &transport.Response{
				Seq: req.Seq, N: files, Size: bytes,
				Epoch: s.migr.Epoch(),
				Names: []string{
					fmt.Sprintf("files-migrated %d", files),
					fmt.Sprintf("bytes-migrated %d", bytes),
					fmt.Sprintf("errors %d", errs),
					fmt.Sprintf("pending %d", pending),
				},
			}
			if err := s.migr.LastErr(); err != nil {
				resp.Names = append(resp.Names, "last-error "+err.Error())
			}
			req.Release()
			if err := s.sendResponse(c, resp); err != nil {
				return
			}
			continue
		}
		s.table.Observe(req.Job, s.now())
		r := &sched.Request{
			Job:    req.Job,
			Op:     opOf(req.Type),
			Bytes:  reqBytes(req),
			Arrive: s.now(),
			Tag:    &pending{req: req, conn: c},
		}
		s.sched.Push(r)
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

type pending struct {
	req  *transport.Request
	conn *transport.Conn
}

// sendResponse stamps this server's capability set on every outgoing
// response and sends it. Clients gate pipelined positional appends on
// having actually observed CapAppendAt from the addressed peer, so an
// old client (which ignores the trailing Caps field) and an old server
// (which never sends one) both degrade to the one-RPC-per-span path.
func (s *Server) sendResponse(c *transport.Conn, resp *transport.Response) error {
	resp.Caps = transport.CapAppendAt
	return c.SendResponse(resp)
}

func opOf(t transport.MsgType) sched.Op {
	switch t {
	case transport.MsgRead:
		return sched.OpRead
	case transport.MsgWrite, transport.MsgMigrate:
		return sched.OpWrite
	case transport.MsgOpen, transport.MsgCreate:
		return sched.OpOpen
	case transport.MsgStat:
		return sched.OpStat
	case transport.MsgMkdir:
		return sched.OpMkdir
	case transport.MsgReaddir:
		return sched.OpReaddir
	case transport.MsgUnlink:
		return sched.OpUnlink
	}
	return sched.OpClose
}

func reqBytes(r *transport.Request) int64 {
	switch r.Type {
	case transport.MsgWrite, transport.MsgMigrate:
		return int64(len(r.Data))
	case transport.MsgRead:
		return r.Size
	}
	return 0
}

// worker draws statistical tokens in small batches per wake (§4.1's
// worker loop, amortized: each draw is still an independent token, so
// fairness is identical to one-at-a-time popping) and executes the
// chosen requests. The batch size adapts to the instantaneous backlog —
// a worker never claims more than its share of the pending queue — so
// that under shallow closed-loop traffic requests are not hoarded in
// worker-local buffers (which would empty the queues and void the
// conditioned draw), while deep backlogs amortize the park/unpark cost
// over up to workerBatch draws. A worker that drains its batch keeps
// popping without parking; one that finds nothing parks on the counting
// wake channel with a timeout backstop.
func (s *Server) worker() {
	defer s.wg.Done()
	batch := make([]*sched.Request, workerBatch)
	for !s.closed.Load() {
		k := s.sched.Pending() / (2 * s.cfg.Workers)
		if k < 1 {
			k = 1
		} else if k > workerBatch {
			k = workerBatch
		}
		n := s.sched.PopBatch(s.now(), nil, batch[:k])
		if n == 0 {
			select {
			case <-s.wake:
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		for _, r := range batch[:n] {
			if s.cfg.OpDelay > 0 {
				time.Sleep(s.cfg.OpDelay)
			}
			switch p := r.Tag.(type) {
			case *pending:
				resp := s.execute(p.req)
				s.served.Add(1)
				if err := s.sendResponse(p.conn, resp); err != nil {
					s.log.Warn("reply failed", "err", err)
				}
				// Both frames go back to the payload pool only after the
				// reply is on the wire: the request's Data fed the extent
				// write (copied there), the response's Data just rode out
				// as an iovec.
				p.req.Release()
				resp.Release()
				s.met.observeRequest(r.Op, s.now()-r.Arrive)
			case *backing.Task:
				// A stage-out chunk the token draw selected: the sharing
				// policy has already arbitrated it against foreground I/O.
				if err := p.Run(); err != nil {
					s.log.Warn("stage-out chunk failed", "err", err)
				}
			}
		}
	}
}

// execute runs one file-system operation.
func (s *Server) execute(req *transport.Request) *transport.Response {
	resp := &transport.Response{Seq: req.Seq}
	fail := func(err error) *transport.Response {
		if errors.Is(err, fsys.ErrStaleLayout) {
			// The layout-changed condition crosses the wire as a typed
			// prefix, not prose: clients re-stat and retry on it.
			resp.Err = transport.ErrStaleLayout
		} else {
			resp.Err = err.Error()
		}
		return resp
	}
	switch req.Type {
	case transport.MsgMigrate:
		return s.executeMigrate(req, resp, fail)
	case transport.MsgCreate:
		if err := s.router.CreateStriped(req.Path, req.Stripes, req.StripeUnit, req.StripeSet); err != nil {
			// Open-or-create (POSIX O_CREAT without O_EXCL): an existing
			// file is not an error. This also makes striped creates
			// retry-safe — a create that reached only part of the stripe
			// set before a server failed can simply be reissued.
			if fi, serr := s.router.Stat(req.Path); serr != nil || fi.IsDir {
				return fail(err)
			}
		}
		// A create whose recorded set diverges from the ring walk came
		// from a client with a stale membership view (it dialed before
		// the last join). No epoch move will ever revisit it, so the
		// creation itself is the rebalance trigger — on the recorded
		// set[0] only, since only the coordinator's plan can act on it.
		if len(req.StripeSet) > 0 && req.StripeSet[0] == s.Addr() && !s.cfg.RebalanceDisabled {
			ring := s.node.Membership().Ring()
			if want := ring.LookupN(req.Path, max(1, req.Stripes)); !slices.Equal(req.StripeSet, want) {
				s.migr.MarkDirty()
			}
		}
	case transport.MsgOpen:
		if _, err := s.router.Stat(req.Path); err != nil {
			return fail(err)
		}
	// The data ops run against the shard directly with the client's
	// layout generation checked inside the same critical section that
	// resolves the entry — a separate check could pass against the old
	// entry and then operate on the one a migration commit swapped in.
	// The live server's router wraps exactly this one shard, so the
	// shard ops are the router ops.
	case transport.MsgWrite:
		if req.AppendAt {
			// Pipelined positional append: the worker pool may execute a
			// stripe's chunks out of order, and the offset makes landing
			// order-independent (park/drain inside the shard).
			if _, err := s.shard.AppendAtGen(req.Path, req.AppendOff, req.Data, req.LayoutGen); err != nil {
				return fail(err)
			}
		} else if _, err := s.shard.AppendGen(req.Path, req.Data, req.LayoutGen); err != nil {
			return fail(err)
		}
		resp.N = int64(len(req.Data))
	case transport.MsgRead:
		// The reply payload is leased, not allocated: it rides out as its
		// own iovec and the worker returns it to the pool after the send.
		buf := transport.Lease(int(req.Size))
		n, err := s.shard.ReadAtGen(req.Path, req.Offset, buf, req.LayoutGen)
		if err != nil {
			transport.Release(buf)
			return fail(err)
		}
		resp.N = int64(n)
		resp.Data = buf[:n]
		resp.AttachLease(buf)
	case transport.MsgStat:
		fi, err := s.shard.StatGen(req.Path, req.LayoutGen)
		if err != nil {
			return fail(err)
		}
		resp.Size = fi.Size
		resp.IsDir = fi.IsDir
		resp.Stripes = fi.Stripes
		resp.StripeUnit = fi.StripeUnit
		resp.StripeSet = fi.StripeSet
		resp.LayoutGen = fi.LayoutGen
	case transport.MsgMkdir:
		if err := s.router.Mkdir(req.Path); err != nil {
			return fail(err)
		}
	case transport.MsgReaddir:
		names, err := s.router.Readdir(req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	case transport.MsgUnlink:
		if err := s.router.Unlink(req.Path); err != nil {
			return fail(err)
		}
	}
	return resp
}

// executeMigrate runs one stripe-migration sub-op on the local shard.
// The frames arrive through the scheduler under the coordinator's
// rebalance job, so the sharing policy has already arbitrated them
// against foreground traffic by the time they land here.
func (s *Server) executeMigrate(req *transport.Request, resp *transport.Response, fail func(error) *transport.Response) *transport.Response {
	switch req.MigrateOp {
	case transport.MigrateSeal:
		size, gen, err := s.shard.Seal(req.Path, req.LayoutGen)
		if err != nil {
			return fail(err)
		}
		resp.Size, resp.Gen = size, gen
	case transport.MigrateInstall:
		if err := s.shard.MigrateInstall(req.Path, req.Offset, req.Data); err != nil {
			return fail(err)
		}
	case transport.MigrateCommit:
		if err := s.shard.MigrateCommit(req.Path, req.Stripes, req.StripeUnit, req.StripeSet, req.LayoutGen); err != nil {
			return fail(err)
		}
		// The commit may have made this server the coordinator of a
		// layout the ring wants moved again (multi-step growth); an
		// unchanged epoch would never trigger that re-plan.
		s.migr.MarkDirty()
	case transport.MigrateAbort:
		s.shard.MigrateAbort(req.Path)
	case transport.MigrateUnseal:
		s.shard.Unseal(req.Path)
	case transport.MigrateUnsealTrim:
		if err := s.shard.UnsealTrim(req.Path, req.Size); err != nil {
			return fail(err)
		}
	case transport.MigrateDrop:
		if s.shard.MigrateDrop(req.Path, req.Gen) {
			resp.N = 1
		}
	default:
		return fail(fmt.Errorf("server: unknown migrate op %d", req.MigrateOp))
	}
	return resp
}

// controller owns policy recompilation — the paper's controller role:
// every λ it expires stale heartbeats, runs the gossip round (join
// retried until a seed answers, so start order is free; then an epidemic
// push-pull exchange with k random peers in place of the old all-to-all
// MsgSync fan-out), refreshes the job table's published snapshot, and —
// only if the snapshot generation moved — compiles the policy into a new
// scheduler epoch. Steady-state traffic therefore compiles nothing:
// recompilation is O(job-set changes), not O(requests).
func (s *Server) controller() {
	defer s.wg.Done()
	defer s.node.Close()
	defer s.migr.Close()
	tick := time.NewTicker(s.cfg.Lambda)
	defer tick.Stop()
	seeds := append(append([]string{}, s.cfg.Join...), s.cfg.Peers...)
	joined := len(seeds) == 0
	var lastGen uint64
	for !s.closed.Load() {
		<-tick.C
		if s.closed.Load() {
			break
		}
		s.table.Expire(s.now(), 0)
		if !joined {
			if err := s.node.Join(seeds, s.now()); err == nil {
				joined = true
			} else {
				s.log.Info("join pending", "err", err)
			}
		}
		s.node.Gossip(s.now())
		if s.drain != nil {
			if n := s.drain.Pump(s.now(), s.pushDrain); n > 0 {
				s.wakeN(n)
			}
			s.recoverFailed()
		}
		if !s.cfg.RebalanceDisabled {
			s.rebalanceTick()
		}
		s.shard.SweepMoved(movedRetention)
		s.shard.SweepParked(parkedRetention)
		s.applyPolicy()
		if g := s.table.Refresh(s.now()); g != lastGen {
			snap := s.table.ActiveSnapshot()
			if d, ok := s.table.DeltaSince(lastGen); ok {
				// The common case at scale: the generation moved by job
				// churn, so patch the previous epoch's share tree in
				// O(churn) instead of recompiling 100k jobs from scratch.
				s.sched.ApplyDelta(snap.Jobs, d)
			} else {
				s.sched.SetJobs(snap.Jobs)
			}
			lastGen = g
		}
		// Close the λ accounting window after any recompile above, so
		// the compiled shares paired with the window are the ones now in
		// force. The roll drains only jobs that serviced bytes this
		// window and materialises their entities lazily off the snapshot.
		s.ledger.Roll(s.now(), s.sched.ServedBytesDelta(), s.table.ActiveSnapshot().Lookup, s.sched.Share)
	}
}

// applyPolicy recompiles the scheduler under the gossiped cluster
// policy when its epoch has moved past the applied one — the λ-aligned
// half of the live hot-swap, deliberately the same cadence as a
// job-table generation move. The per-job queues are untouched: every
// queued and in-flight request simply re-arbitrates under the freshly
// compiled shares on its next token draw.
func (s *Server) applyPolicy() {
	str, epoch := s.node.PolicyVersion()
	// The string is compared too, not just the epoch: two concurrent
	// sets can land at the same epoch, and the gossip tie-break may
	// replace the string this member already applied without moving the
	// epoch — gating on the epoch alone would leave the member
	// enforcing the losing policy forever.
	if cur := s.applied.Load(); epoch == cur.epoch && (epoch == 0 || str == cur.str) {
		return
	}
	pol, err := policy.Parse(str)
	if err != nil {
		// Rumors are validated at set and merge; an unparseable one here
		// means a version skew bug — keep the running policy.
		s.log.Warn("ignoring bad policy rumor", "policy", str, "err", err)
		return
	}
	s.sched.SetPolicy(pol)
	s.applied.Store(&appliedPolicy{str: pol.String(), epoch: epoch})
	s.log.Info("policy hot-swap", "policy", pol.String(), "policy_epoch", epoch)
}

// shareRecords converts ledger entries to their wire form.
func shareRecords(entries []metrics.ShareEntry) []transport.ShareRecord {
	out := make([]transport.ShareRecord, len(entries))
	for i, e := range entries {
		out[i] = transport.ShareRecord{
			Kind: e.Kind, ID: e.ID,
			Compiled: e.Compiled, Measured: e.Measured, Bytes: e.Bytes,
		}
	}
	return out
}

// pushDrain enqueues one stage-out request: same path as a foreground
// request (job-table sighting + scheduler push), so the controller
// compiles a share for the stage-out job and the token draw arbitrates
// it like any other contender.
func (s *Server) pushDrain(r *sched.Request) {
	s.table.Observe(r.Job, s.now())
	s.sched.Push(r)
}

// wakeN deposits up to n wake tokens for the workers.
func (s *Server) wakeN(n int) {
	for i := 0; i < n; i++ {
		select {
		case s.wake <- struct{}{}:
		default:
			return
		}
	}
}

// Flush forces a full stage-out: every dirty byte, changed directory,
// and pending unlink reaches the backing store before it returns. The
// themisctl `flush` command and graceful shutdown both land here. A
// concurrent recovery pass completes first (stageMu), so the durability
// barrier also covers bytes recovery harvested outside the drainer.
func (s *Server) Flush() error {
	if s.drain == nil {
		return nil
	}
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return s.drain.Flush(s.now, s.pushDrain, s.wakeN, s.cfg.FlushTimeout)
}

// Drainer exposes the stage-out engine for inspection (nil without a
// backing store).
func (s *Server) Drainer() *backing.Drainer { return s.drain }

// Migrator exposes the rebalance coordinator for inspection and tests.
func (s *Server) Migrator() *Migrator { return s.migr }

// rebalanceTick launches one asynchronous rebalance pass if none is in
// flight — like failover recovery, migration does real network and
// device I/O and must not stall the controller's gossip/λ loop. The
// pass itself returns immediately when the ring epoch has not moved.
func (s *Server) rebalanceTick() {
	if s.migr.running.Swap(true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.migr.running.Store(false)
		s.migr.Pass()
		s.migr.ZombieSweep()
	}()
}

// movedRetention is how long a migrated-away path keeps answering
// stale-layout before its marker is swept — far beyond every client
// retry window, so the marker map stays bounded without ever cutting a
// live retry short.
const movedRetention = 5 * time.Minute

// parkedRetention is how long an out-of-order positional-append chunk
// may wait for its missing predecessor before the sweep drops it — far
// beyond any live pipeline's round trip, so only chunks stranded by a
// dead client are ever dropped.
const parkedRetention = time.Minute

// goneDone marks a departed member fully reconciled; recoverDelayTicks
// is how many λ ticks a failure must age before adoption, so every
// survivor's first-sighting pre-stage (phase one) can land first.
const (
	goneDone          = -1
	recoverDelayTicks = 3
)

// recoverFailed is the two-phase failover reconciliation, run every λ.
// Phase one, at first sighting of a departed member: synchronously
// stage this shard's un-staged bytes of every affected file, so no
// survivor's acknowledged writes are missing when an adopter
// reassembles. Phase two, recoverDelayTicks later: the new ring owner
// of each affected path adopts the reassembled file and stale local
// stripes are dropped. A member is marked reconciled only when its
// phase-two pass succeeds (errors retry next λ), and the mark clears if
// the member rejoins, so its next failure recovers again.
//
// The pass runs on its own goroutine — recovery does real backing-store
// I/O and must not stall the controller's gossip/λ loop — with at most
// one pass in flight; a tick that finds one running changes nothing, so
// no phase is skipped.
func (s *Server) recoverFailed() {
	if s.recovering.Swap(true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.recovering.Store(false)
		s.stageMu.Lock()
		defer s.stageMu.Unlock()
		s.recoverPass()
	}()
}

// recoverPass is one reconciliation pass (see recoverFailed).
func (s *Server) recoverPass() {
	s.recoverPasses.Add(1)
	var dead []string
	for _, m := range s.node.Membership().Snapshot() {
		if m.State != cluster.StateFailed && m.State != cluster.StateLeft {
			s.goneMu.Lock()
			delete(s.gone, m.Addr)
			s.goneMu.Unlock()
			continue
		}
		s.goneMu.Lock()
		ticks := s.gone[m.Addr]
		if ticks != goneDone {
			ticks++
			s.gone[m.Addr] = ticks
		}
		s.goneMu.Unlock()
		switch {
		case ticks == goneDone:
		case ticks == 1:
			if err := backing.StageAffected(s.shard, s.cfg.Backing, s.Addr(), []string{m.Addr}); err != nil {
				s.log.Warn("pre-staging failed", "member", m.Addr, "err", err)
			}
		case ticks >= recoverDelayTicks:
			dead = append(dead, m.Addr)
		}
	}
	if len(dead) == 0 {
		return
	}
	ring := s.node.Membership().Ring()
	adopted, dropped, err := backing.RecoverSegment(s.shard, s.cfg.Backing, s.Addr(), dead,
		func(path string) (string, bool) { return ring.Lookup(path) })
	if err != nil {
		s.log.Warn("recovery failed, will retry", "dead", fmt.Sprint(dead), "err", err)
		return
	}
	s.goneMu.Lock()
	for _, a := range dead {
		s.gone[a] = goneDone
	}
	s.goneMu.Unlock()
	if adopted > 0 || dropped > 0 {
		s.log.Info("recovered ring segment",
			"dead", fmt.Sprint(dead), "adopted_files", adopted, "dropped_stripes", dropped)
	}
}
