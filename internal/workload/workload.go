// Package workload provides the I/O request streams used throughout the
// paper's evaluation (§5.1): IOR-style bulk transfers, the 10 MB
// write-then-read cycles of Figures 8–12, and the customized benchmark's
// iops_stat and iops_write_read modes. A Stream yields the next request a
// client process would issue, with an optional compute ("think") time
// before it.
package workload

import (
	"time"

	"themisio/internal/sched"
)

// Item is one step of a client process: think for Think, then issue an Op
// of Bytes.
type Item struct {
	Op    sched.Op
	Bytes int64
	Think time.Duration
}

// Stream yields the request sequence of one process. Next returns false
// when the process is finished.
type Stream interface {
	Next() (Item, bool)
}

// Func adapts a function to the Stream interface.
type Func func() (Item, bool)

// Next implements Stream.
func (f Func) Next() (Item, bool) { return f() }

// Common sizes used by the paper's benchmarks.
const (
	MB = int64(1) << 20
	GB = int64(1) << 30
)

// WriteReadCycle is the benchmark program of §5.3: "Each process writes
// 10 MB of data to its file, then reads it back, and continues to repeat
// this write/read cycle for a set length of time". The stream is
// infinite; the cluster's process stop time bounds it.
func WriteReadCycle(fileBytes, blockBytes int64) Stream {
	if blockBytes <= 0 {
		blockBytes = MB
	}
	if fileBytes <= 0 {
		fileBytes = 10 * MB
	}
	var off int64
	reading := false
	return Func(func() (Item, bool) {
		op := sched.OpWrite
		if reading {
			op = sched.OpRead
		}
		n := blockBytes
		if off+n > fileBytes {
			n = fileBytes - off
		}
		it := Item{Op: op, Bytes: n}
		off += n
		if off >= fileBytes {
			off = 0
			reading = !reading
		}
		return it, true
	})
}

// IOR generates the unidirectional IOR runs of §5.2: totalBytes of op in
// blockBytes transfers ("writing and reading 1 GB files in 1 MB blocks"),
// then the stream ends.
func IOR(op sched.Op, totalBytes, blockBytes int64) Stream {
	if blockBytes <= 0 {
		blockBytes = MB
	}
	var done int64
	return Func(func() (Item, bool) {
		if done >= totalBytes {
			return Item{}, false
		}
		n := blockBytes
		if done+n > totalBytes {
			n = totalBytes - done
		}
		done += n
		return Item{Op: op, Bytes: n}, true
	})
}

// IORLoop repeats IOR traffic forever (for background-job use).
func IORLoop(op sched.Op, blockBytes int64) Stream {
	if blockBytes <= 0 {
		blockBytes = MB
	}
	return Func(func() (Item, bool) {
		return Item{Op: op, Bytes: blockBytes}, true
	})
}

// StatStorm is the customized benchmark's iops_stat mode: "repeatedly
// calls stat() to query file metadata with randomly generated file
// names". File-name randomness is irrelevant to scheduling, so the
// stream simply issues stats forever.
func StatStorm() Stream {
	return Func(func() (Item, bool) {
		return Item{Op: sched.OpStat}, true
	})
}

// WriteRead1MB is the iops_write_read mode: "writes a small (1 MB) file
// then reads the same file repeatedly".
func WriteRead1MB() Stream {
	wrote := false
	return Func(func() (Item, bool) {
		if !wrote {
			wrote = true
			return Item{Op: sched.OpWrite, Bytes: MB}, true
		}
		return Item{Op: sched.OpRead, Bytes: MB}, true
	})
}

// Limited truncates a stream after n items.
func Limited(s Stream, n int) Stream {
	left := n
	return Func(func() (Item, bool) {
		if left <= 0 {
			return Item{}, false
		}
		left--
		return s.Next()
	})
}

// WithThink inserts a fixed think time before every item of s — the
// simplest compute/I-O interleave.
func WithThink(s Stream, d time.Duration) Stream {
	return Func(func() (Item, bool) {
		it, ok := s.Next()
		if !ok {
			return Item{}, false
		}
		it.Think += d
		return it, true
	})
}

// Concat runs streams back to back.
func Concat(streams ...Stream) Stream {
	i := 0
	return Func(func() (Item, bool) {
		for i < len(streams) {
			it, ok := streams[i].Next()
			if ok {
				return it, true
			}
			i++
		}
		return Item{}, false
	})
}

// Phases yields count repetitions of: think compute, then ioBytes of op
// in blockBytes requests — the generic scientific-application phase
// structure (checkpoint/trajectory output every N timesteps). count <= 0
// repeats forever.
func Phases(op sched.Op, compute time.Duration, ioBytes, blockBytes int64, count int) Stream {
	if blockBytes <= 0 {
		blockBytes = MB
	}
	phase := 0
	var off int64
	return Func(func() (Item, bool) {
		if count > 0 && phase >= count {
			return Item{}, false
		}
		it := Item{Op: op}
		if off == 0 {
			it.Think = compute
		}
		n := blockBytes
		if off+n > ioBytes {
			n = ioBytes - off
		}
		it.Bytes = n
		off += n
		if off >= ioBytes {
			off = 0
			phase++
		}
		return it, true
	})
}
