package workload

import (
	"testing"
	"testing/quick"
	"time"

	"themisio/internal/sched"
)

func drain(s Stream, max int) []Item {
	var out []Item
	for i := 0; i < max; i++ {
		it, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

func TestWriteReadCycleAlternates(t *testing.T) {
	s := WriteReadCycle(3*MB, MB)
	items := drain(s, 12)
	if len(items) != 12 {
		t.Fatal("cycle stream should be infinite")
	}
	for i := 0; i < 3; i++ {
		if items[i].Op != sched.OpWrite || items[i].Bytes != MB {
			t.Fatalf("item %d = %+v, want 1MB write", i, items[i])
		}
	}
	for i := 3; i < 6; i++ {
		if items[i].Op != sched.OpRead {
			t.Fatalf("item %d = %+v, want read phase", i, items[i])
		}
	}
	if items[6].Op != sched.OpWrite {
		t.Fatal("cycle should return to writing")
	}
}

func TestWriteReadCycleUnevenTail(t *testing.T) {
	s := WriteReadCycle(2*MB+512, MB)
	items := drain(s, 3)
	if items[2].Bytes != 512 {
		t.Fatalf("tail block = %d bytes, want 512", items[2].Bytes)
	}
}

func TestIORFiniteAndExact(t *testing.T) {
	s := IOR(sched.OpWrite, 5*MB+100, 2*MB)
	items := drain(s, 100)
	var total int64
	for _, it := range items {
		if it.Op != sched.OpWrite {
			t.Fatal("wrong op")
		}
		total += it.Bytes
	}
	if total != 5*MB+100 {
		t.Fatalf("total = %d, want %d", total, 5*MB+100)
	}
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3 (2+2+1.0001)", len(items))
	}
}

func TestIORLoopInfinite(t *testing.T) {
	s := IORLoop(sched.OpRead, MB)
	for i := 0; i < 1000; i++ {
		it, ok := s.Next()
		if !ok || it.Op != sched.OpRead || it.Bytes != MB {
			t.Fatal("IORLoop should repeat forever")
		}
	}
}

func TestStatStormAndWriteRead1MB(t *testing.T) {
	s := StatStorm()
	it, ok := s.Next()
	if !ok || it.Op != sched.OpStat || it.Bytes != 0 {
		t.Fatalf("stat storm item: %+v", it)
	}
	w := WriteRead1MB()
	first, _ := w.Next()
	if first.Op != sched.OpWrite || first.Bytes != MB {
		t.Fatalf("first item: %+v", first)
	}
	for i := 0; i < 10; i++ {
		it, _ := w.Next()
		if it.Op != sched.OpRead {
			t.Fatal("subsequent items should be reads")
		}
	}
}

func TestLimited(t *testing.T) {
	s := Limited(IORLoop(sched.OpWrite, MB), 5)
	if got := len(drain(s, 100)); got != 5 {
		t.Fatalf("limited yielded %d items", got)
	}
}

func TestWithThink(t *testing.T) {
	s := WithThink(IOR(sched.OpWrite, 2*MB, MB), 100*time.Millisecond)
	items := drain(s, 10)
	if len(items) != 2 {
		t.Fatal("length changed")
	}
	for _, it := range items {
		if it.Think != 100*time.Millisecond {
			t.Fatalf("think = %v", it.Think)
		}
	}
}

func TestConcat(t *testing.T) {
	s := Concat(IOR(sched.OpWrite, 2*MB, MB), IOR(sched.OpRead, MB, MB))
	items := drain(s, 10)
	if len(items) != 3 || items[2].Op != sched.OpRead {
		t.Fatalf("concat items: %+v", items)
	}
}

func TestPhasesStructure(t *testing.T) {
	s := Phases(sched.OpWrite, time.Second, 2*MB, MB, 3)
	items := drain(s, 100)
	if len(items) != 6 {
		t.Fatalf("items = %d, want 6 (3 phases x 2 blocks)", len(items))
	}
	for i, it := range items {
		wantThink := time.Duration(0)
		if i%2 == 0 {
			wantThink = time.Second // compute precedes each phase's first block
		}
		if it.Think != wantThink {
			t.Fatalf("item %d think = %v, want %v", i, it.Think, wantThink)
		}
	}
	// count <= 0 repeats forever.
	inf := Phases(sched.OpWrite, 0, MB, MB, 0)
	if got := len(drain(inf, 500)); got != 500 {
		t.Fatalf("infinite phases stopped at %d", got)
	}
}

// Property: IOR conserves total volume for arbitrary sizes.
func TestIORConservesVolumeProperty(t *testing.T) {
	f := func(totalRaw, blockRaw uint32) bool {
		total := int64(totalRaw%100000000) + 1
		block := int64(blockRaw%5000000) + 1
		s := IOR(sched.OpWrite, total, block)
		var sum int64
		for {
			it, ok := s.Next()
			if !ok {
				break
			}
			if it.Bytes <= 0 || it.Bytes > block {
				return false
			}
			sum += it.Bytes
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteReadCycle moves equal read and write volume over full
// cycles.
func TestCycleBalanceProperty(t *testing.T) {
	f := func(fileRaw uint16) bool {
		file := int64(fileRaw%1000)*1000 + 1000
		s := WriteReadCycle(file, 4096)
		var w, r int64
		// Drain exactly two full cycles.
		for w < 2*file || r < 2*file {
			it, _ := s.Next()
			if it.Op == sched.OpWrite {
				w += it.Bytes
			} else {
				r += it.Bytes
			}
			if w > 10*file || r > 10*file {
				return false
			}
		}
		return w == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
