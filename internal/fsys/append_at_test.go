package fsys

import (
	"bytes"
	"errors"
	"testing"
)

// appendAtShard builds a one-file shard for positional-append tests.
func appendAtShard(t *testing.T) *Shard {
	t.Helper()
	s := NewShard("bb0", 64<<20)
	if err := s.CreateEntry("/f", false, 1, 64<<10, []string{"bb0"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func pattern(off, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((off + i) * 31)
	}
	return b
}

// Out-of-order arrival: the later chunk parks and acks early, the gap
// filler lands both, and the bytes read back in order.
func TestAppendAtReorders(t *testing.T) {
	s := appendAtShard(t)
	if size, err := s.AppendAtGen("/f", 100, pattern(100, 100), 0); err != nil || size != 200 {
		t.Fatalf("parked chunk must ack its end offset: size=%d err=%v", size, err)
	}
	if fi, err := s.Stat("/f"); err != nil || fi.Size != 0 {
		t.Fatalf("parked chunk must not be visible: size=%d err=%v", fi.Size, err)
	}
	if size, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil || size != 200 {
		t.Fatalf("gap filler must drain the parked chunk: size=%d err=%v", size, err)
	}
	buf := make([]byte, 200)
	if n, err := s.ReadAt("/f", 0, buf); err != nil || n != 200 {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, pattern(0, 200)) {
		t.Fatal("reordered chunks landed out of order")
	}
}

// A chain of parked chunks drains in one cascade when the first gap
// closes.
func TestAppendAtDrainChain(t *testing.T) {
	s := appendAtShard(t)
	for _, off := range []int64{300, 100, 200} {
		if _, err := s.AppendAtGen("/f", off, pattern(int(off), 100), 0); err != nil {
			t.Fatalf("park off=%d: %v", off, err)
		}
	}
	if size, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil || size != 400 {
		t.Fatalf("cascade: size=%d err=%v", size, err)
	}
	buf := make([]byte, 400)
	if n, err := s.ReadAt("/f", 0, buf); err != nil || n != 400 || !bytes.Equal(buf, pattern(0, 400)) {
		t.Fatalf("cascade content: n=%d err=%v", n, err)
	}
}

// Whole-chunk duplicates (a retry of an already-landed chunk) succeed;
// a partial overlap is torn and must be rejected, not spliced.
func TestAppendAtDuplicateAndTorn(t *testing.T) {
	s := appendAtShard(t)
	if _, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil {
		t.Fatal(err)
	}
	if size, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil || size != 100 {
		t.Fatalf("duplicate retry must succeed: size=%d err=%v", size, err)
	}
	if size, err := s.AppendAtGen("/f", 40, pattern(40, 20), 0); err != nil || size != 100 {
		t.Fatalf("interior duplicate must succeed: size=%d err=%v", size, err)
	}
	if _, err := s.AppendAtGen("/f", 50, pattern(50, 100), 0); !errors.Is(err, ErrTornAppend) {
		t.Fatalf("partial overlap: %v", err)
	}
}

// The reorder buffer is bounded: parking past maxParkedBytes fails
// loudly instead of letting one slow predecessor pin unbounded memory.
func TestAppendAtParkedBudget(t *testing.T) {
	s := appendAtShard(t)
	chunk := make([]byte, 8<<20)
	var off int64 = 1 // never lands: offset 0 is missing
	for i := 0; i < 4; i++ {
		if _, err := s.AppendAtGen("/f", off, chunk, 0); err != nil {
			t.Fatalf("park %d within budget: %v", i, err)
		}
		off += int64(len(chunk))
	}
	if _, err := s.AppendAtGen("/f", off, chunk, 0); !errors.Is(err, ErrParkedFull) {
		t.Fatalf("past budget: %v", err)
	}
}

// SweepParked drops aged orphans (chunks whose writer died before the
// gap closed) and later traffic is unaffected.
func TestSweepParked(t *testing.T) {
	s := appendAtShard(t)
	if _, err := s.AppendAtGen("/f", 100, pattern(100, 50), 0); err != nil {
		t.Fatal(err)
	}
	if dropped := s.SweepParked(0); dropped != 1 {
		t.Fatalf("sweep dropped %d, want 1", dropped)
	}
	if size, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil || size != 100 {
		t.Fatalf("post-sweep append: size=%d err=%v", size, err)
	}
}

// Seal clears the reorder buffer: a parked chunk can never drain once
// the local size is frozen, and migration copies only frozen bytes.
// The stale-layout error the writer sees on retry triggers its normal
// re-send under the new layout.
func TestSealClearsParked(t *testing.T) {
	s := appendAtShard(t)
	if _, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendAtGen("/f", 200, pattern(200, 50), 0); err != nil {
		t.Fatal(err)
	}
	if size, _, err := s.Seal("/f", 0); err != nil || size != 100 {
		t.Fatalf("seal: size=%d err=%v", size, err)
	}
	if _, err := s.AppendAtGen("/f", 100, pattern(100, 100), 0); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("append to sealed entry: %v", err)
	}
	s.Unseal("/f")
	// The orphan is gone: closing the gap lands only the new bytes.
	if size, err := s.AppendAtGen("/f", 100, pattern(100, 100), 0); err != nil || size != 200 {
		t.Fatalf("post-unseal: size=%d err=%v", size, err)
	}
}

// Plain AppendGen and positional AppendAtGen interleave under one
// per-entry lock: a plain append that closes the gap also drains the
// reorder buffer.
func TestPlainAppendDrainsParked(t *testing.T) {
	s := appendAtShard(t)
	if _, err := s.AppendAtGen("/f", 100, pattern(100, 100), 0); err != nil {
		t.Fatal(err)
	}
	if size, err := s.AppendGen("/f", pattern(0, 100), 0); err != nil || size != 200 {
		t.Fatalf("plain append must drain parked: size=%d err=%v", size, err)
	}
	buf := make([]byte, 200)
	if n, err := s.ReadAt("/f", 0, buf); err != nil || n != 200 || !bytes.Equal(buf, pattern(0, 200)) {
		t.Fatalf("content: n=%d err=%v", n, err)
	}
}

// The park path must copy: the zero-copy worker releases the request
// frame right after acking, so a parked alias would be scribbled over.
func TestParkCopiesData(t *testing.T) {
	s := appendAtShard(t)
	chunk := pattern(100, 100)
	if _, err := s.AppendAtGen("/f", 100, chunk, 0); err != nil {
		t.Fatal(err)
	}
	for i := range chunk {
		chunk[i] = 0xdb // simulate lease poison after Release
	}
	if _, err := s.AppendAtGen("/f", 0, pattern(0, 100), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 200)
	if n, err := s.ReadAt("/f", 0, buf); err != nil || n != 200 || !bytes.Equal(buf, pattern(0, 200)) {
		t.Fatalf("parked chunk aliased the caller's buffer: n=%d err=%v", n, err)
	}
}
