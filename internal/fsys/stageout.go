package fsys

import (
	"path"
	"sort"

	"themisio/internal/storage"
)

// Stage-out support: the shard-side surface of the burst-buffer
// lifecycle. Writes mark per-file dirty ranges (see Append); the drain
// engine (internal/backing) harvests them here as coalesced chunks,
// stages them to the backing store, and re-marks them on failure.
// Recovery re-hydrates entries with RestoreFile/RestoreDir.

// DirtyChunk is one harvested unit of stage-out work: a coalesced byte
// range of one file's local stripe (or a directory's child set, or a
// zero-byte file-creation record), plus the layout metadata the backing
// store records so recovery can reassemble the file.
type DirtyChunk struct {
	Path     string
	IsDir    bool
	Children []string
	// Gen is the creation generation of the entry the chunk was
	// harvested from; the executor skips the chunk if the path has since
	// been unlinked or recreated (GenOf no longer matches).
	Gen uint64
	// Off and Data are the chunk's byte range within the local stripe.
	Off  int64
	Data []byte
	// Stripe is this shard's position in the file's stripe set; Stripes,
	// Unit, Set and LayoutGen are the recorded layout (LayoutGen rides
	// to the backing store so failover adoption can bump past it — an
	// adopted layout must be detectably newer than any client's cached
	// generation).
	Stripe    int
	Stripes   int
	Unit      int64
	Set       []string
	LayoutGen uint64
}

// GenOf returns the creation generation of the entry at p, 0 if absent.
func (s *Shard) GenOf(p string) uint64 {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n, ok := s.nodes[p]; ok {
		return n.gen
	}
	return 0
}

// MarkDirtyAll marks the entire current content of p (and its
// existence) un-staged — the repair step after a write raced an
// unlink/recreate of the same path.
func (s *Shard) MarkDirtyAll(p string) {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[p]
	if !ok {
		return
	}
	n.metaDirty = true
	if !n.isDir {
		n.dirty.Mark(0, n.index.Size())
	}
}

// stripeOf returns this shard's stripe index within n's recorded
// stripe set (0 when unstriped or unrecorded). The set is immutable
// after creation, so no lock is needed.
func (s *Shard) stripeOf(n *node) int {
	for i, addr := range n.set {
		if addr == s.name {
			return i
		}
	}
	return 0
}

// DirtyBytes returns the total un-staged bytes across all files (child
// -set changes count as zero bytes but still surface via CollectDirty).
func (s *Shard) DirtyBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, n := range s.nodes {
		if n.dirty != nil {
			total += n.dirty.Bytes()
		}
	}
	return total
}

// HasDirty reports whether any entry has un-staged state.
func (s *Shard) HasDirty() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, n := range s.nodes {
		if n.metaDirty || (n.dirty != nil && !n.dirty.Empty()) {
			return true
		}
	}
	return len(s.tombstones) > 0
}

// harvest is one file's un-staged work, captured under the shard lock
// and materialized into chunks without it (the index and extent store
// are independently synchronized, so the data copy — the expensive part
// — must not stall foreground I/O on the shard mutex).
type harvest struct {
	path  string
	n     *node
	zero  bool // entry existence not yet staged (new or empty file)
	spans []storage.Extent
}

// takeLocked captures up to budget bytes of file node n's dirty work
// (budget <= 0 takes everything) and returns the bytes taken. Caller
// holds s.mu.
func (s *Shard) takeLocked(p string, n *node, budget int64) (harvest, int64) {
	h := harvest{path: p, n: n, zero: n.metaDirty}
	n.metaDirty = false
	h.spans = n.dirty.Take(budget)
	var taken int64
	for _, sp := range h.spans {
		taken += sp.Len
	}
	return h, taken
}

// chunksOf materializes a harvest into chunks of at most chunkBytes.
// Called without the shard lock. Spans beyond the file's current size
// (stale marks from a raced repair) are discarded; a short read inside
// the size (a store error) re-marks the unread remainder so taken bytes
// never silently leave the write-back bookkeeping.
func (s *Shard) chunksOf(h harvest, chunkBytes int64, out []DirtyChunk) []DirtyChunk {
	n := h.n
	base := DirtyChunk{
		Path: h.path, Gen: n.gen,
		Stripe: s.stripeOf(n), Stripes: n.stripes, Unit: n.unit,
		Set:       append([]string(nil), n.set...),
		LayoutGen: n.layoutGen,
	}
	emitted := false
	size := n.index.Size()
	for si, span := range h.spans {
		if span.Off >= size {
			continue // stale mark past EOF: unharvestable, drop it
		}
		if span.End() > size {
			span.Len = size - span.Off
		}
		for off := span.Off; off < span.End(); off += chunkBytes {
			end := off + chunkBytes
			if end > span.End() {
				end = span.End()
			}
			buf := make([]byte, end-off)
			got := 0
			for _, sl := range n.index.Resolve(off, int64(len(buf))) {
				m, err := s.store.ReadAt(sl.Ext, sl.Off, buf[got:got+int(sl.Len)])
				got += m
				if err != nil {
					break
				}
			}
			if got > 0 {
				c := base
				c.Off, c.Data = off, buf[:got]
				out = append(out, c)
				emitted = true
			}
			if int64(got) < end-off {
				// Store error mid-span: re-mark the unread remainder AND
				// every span not yet harvested — no taken byte may leave
				// the write-back bookkeeping.
				n.dirty.Mark(off+int64(got), span.End()-off-int64(got))
				for _, rest := range h.spans[si+1:] {
					n.dirty.Mark(rest.Off, rest.Len)
				}
				return out
			}
		}
	}
	if h.zero && !emitted {
		// Nothing else to write, but the entry's existence must reach
		// the backing store (an empty file created then flushed).
		out = append(out, base)
	}
	return out
}

// CollectDirty removes and returns up to maxBytes of dirty data (and any
// number of dirty directory entries), chunked so no single chunk exceeds
// chunkBytes. Paths are visited in sorted order for determinism. The
// caller owns staging the returned chunks; MarkDirty restores a chunk
// that failed to stage. maxBytes <= 0 collects everything.
func (s *Shard) CollectDirty(maxBytes, chunkBytes int64) []DirtyChunk {
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	s.mu.Lock()
	paths := make([]string, 0, len(s.nodes))
	for p, n := range s.nodes {
		if n.metaDirty || (n.dirty != nil && !n.dirty.Empty()) {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	var out []DirtyChunk
	var files []harvest
	var taken int64
	for _, p := range paths {
		n := s.nodes[p]
		if n.isDir {
			ch := make([]string, 0, len(n.children))
			for c := range n.children {
				ch = append(ch, c)
			}
			sort.Strings(ch)
			out = append(out, DirtyChunk{Path: p, IsDir: true, Gen: n.gen, Children: ch})
			n.metaDirty = false
			continue
		}
		if maxBytes > 0 && taken >= maxBytes {
			continue
		}
		budget := int64(0)
		if maxBytes > 0 {
			budget = maxBytes - taken
		}
		h, got := s.takeLocked(p, n, budget)
		files = append(files, h)
		taken += got
	}
	s.mu.Unlock()
	// Data copies happen outside the shard lock.
	for _, h := range files {
		out = s.chunksOf(h, chunkBytes, out)
	}
	return out
}

// CollectDirtyPath removes and returns all of one file's dirty data as
// chunks — the synchronous pre-stage recovery performs before dropping
// or adopting an entry, so no acknowledged write is lost to a copy
// staler than the live shard.
func (s *Shard) CollectDirtyPath(p string, chunkBytes int64) []DirtyChunk {
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	p = clean(p)
	s.mu.Lock()
	n, ok := s.nodes[p]
	if !ok || n.isDir || ((n.dirty == nil || n.dirty.Empty()) && !n.metaDirty) {
		s.mu.Unlock()
		return nil
	}
	h, _ := s.takeLocked(p, n, 0)
	s.mu.Unlock()
	return s.chunksOf(h, chunkBytes, nil)
}

// MarkDirty re-marks a byte range of p as un-staged — the failure path
// of the drain engine, and the restage trigger after a recovery. A
// non-positive length re-marks the entry's existence (directories and
// zero-byte file records).
func (s *Shard) MarkDirty(p string, off, n int64) {
	p = clean(p)
	s.mu.RLock()
	nd, ok := s.nodes[p]
	s.mu.RUnlock()
	if !ok {
		return
	}
	if nd.isDir || n <= 0 {
		s.mu.Lock()
		nd.metaDirty = true
		s.mu.Unlock()
		return
	}
	nd.dirty.Mark(off, n)
}

// ClearDirty forgets all un-staged state — called after a restore whose
// source was the backing store itself (the content is staged by
// definition).
func (s *Shard) ClearDirty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.nodes {
		n.metaDirty = false
		if n.dirty != nil {
			n.dirty.Take(0)
		}
	}
	s.tombstones = nil
}

// Tombstone identifies one removed entry's staged object: the path and
// the stripe index this shard held. Deletes are scoped to the removing
// server's own object — every stripe holder processes the same unlink
// and removes its own row, so a late tombstone can never destroy
// another server's (or a new incarnation's) staged data.
type Tombstone struct {
	Path   string
	Stripe int
}

// TakeTombstones removes and returns the entries unlinked since the
// last call; the drain engine deletes their backing objects.
func (s *Shard) TakeTombstones() []Tombstone {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.tombstones
	s.tombstones = nil
	return out
}

// FilesWithServer returns the file paths whose recorded stripe set
// includes addr — the entries failover recovery must reconcile when
// addr fails.
func (s *Shard) FilesWithServer(addr string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p, n := range s.nodes {
		if n.isDir {
			continue
		}
		for _, a := range n.set {
			if a == addr {
				out = append(out, p)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// RestoreFile installs p with the given full content and layout,
// replacing any existing local entry (recovery reconstructs the whole
// file, so a stale local stripe is superseded). The restored entry is
// clean; the caller marks it dirty when it should restage under the new
// layout. layoutGen is the layout generation to install (0 selects the
// creation default): a crash-restart re-hydration preserves the staged
// generation, while failover adoption passes one past the highest
// staged generation so clients still holding the pre-failure layout
// are detectably stale. The child entry is recorded in the local
// parent directory if this shard holds it.
func (s *Shard) RestoreFile(p string, data []byte, stripes int, unit int64, set []string, layoutGen uint64) error {
	p = clean(p)
	s.mu.Lock()
	if old, ok := s.nodes[p]; ok {
		if old.isDir {
			s.mu.Unlock()
			return ErrIsDir
		}
		for _, e := range old.index.Extents() {
			if err := s.store.Release(e); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		delete(s.nodes, p)
	}
	s.mu.Unlock()
	if err := s.CreateEntry(p, false, stripes, unit, set); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := s.Append(p, data); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if n := s.nodes[p]; n != nil {
		// Restored content came from (or is immediately restaged to) the
		// backing store; it starts clean.
		n.metaDirty = false
		if n.dirty != nil {
			n.dirty.Take(0)
		}
		if layoutGen > 0 {
			n.layoutGen = layoutGen
		}
	}
	s.mu.Unlock()
	parent, name := path.Split(p)
	if parent = clean(parent); parent != p {
		_ = s.AddChild(parent, name) // parent may live on another shard
	}
	return nil
}

// RestoreDir installs a directory entry with the given children (a
// union with any existing entry), clean.
func (s *Shard) RestoreDir(p string, children []string) error {
	p = clean(p)
	s.mu.Lock()
	n, ok := s.nodes[p]
	if ok && !n.isDir {
		s.mu.Unlock()
		return ErrNotDir
	}
	if !ok {
		s.genCtr++
		n = &node{isDir: true, children: map[string]bool{}, gen: s.genCtr}
		s.nodes[p] = n
	}
	for _, c := range children {
		n.children[c] = true
	}
	n.metaDirty = false
	s.mu.Unlock()
	if p != "/" {
		parent, name := path.Split(p)
		_ = s.AddChild(clean(parent), name)
	}
	return nil
}

// DropStale removes a local file entry without recording a tombstone —
// the cleanup a surviving stripe holder performs when recovery has moved
// the file to a new owner under a new layout (the backing objects must
// outlive the local copy). Reports whether an entry was dropped.
func (s *Shard) DropStale(p string) bool {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[p]
	if !ok || n.isDir {
		return false
	}
	for _, e := range n.index.Extents() {
		if err := s.store.Release(e); err != nil {
			return false
		}
	}
	delete(s.nodes, p)
	return true
}
