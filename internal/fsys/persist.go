package fsys

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Persistence: the paper's conclusion names "various log-structure
// byte-addressable file system designs and persistent data structure
// strategy to enable fault tolerance" as future work. This file
// implements the snapshot half of that strategy: a shard can serialize
// its namespace and file contents to any io.Writer and be reconstructed
// from it, so a burst-buffer node can drain to stable storage before
// maintenance and restore afterwards.

// snapshotHeader identifies the snapshot format.
type snapshotHeader struct {
	Magic   string
	Version int
	Shard   string
	Entries int
}

const (
	snapshotMagic   = "themisio-shard"
	snapshotVersion = 1
)

// snapshotEntry is one serialized namespace entry.
type snapshotEntry struct {
	Path       string
	IsDir      bool
	Stripes    int
	StripeUnit int64
	StripeSet  []string
	Childs     []string
	Data       []byte // file contents (local stripe), reassembled from extents
}

// Snapshot serializes the shard: namespace entries in path order, each
// file's local stripe content read back through its extent index.
func (s *Shard) Snapshot(w io.Writer) error {
	s.mu.RLock()
	paths := make([]string, 0, len(s.nodes))
	for p := range s.nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	entries := make([]snapshotEntry, 0, len(paths))
	for _, p := range paths {
		n := s.nodes[p]
		e := snapshotEntry{Path: p, IsDir: n.isDir, Stripes: n.stripes, StripeUnit: n.unit, StripeSet: n.set}
		if n.isDir {
			for c := range n.children {
				e.Childs = append(e.Childs, c)
			}
			sort.Strings(e.Childs)
		} else {
			// Capture the size once: appends proceed under the shard
			// read-lock, so a second Size() call could exceed the buffer
			// just allocated.
			size := n.index.Size()
			e.Data = make([]byte, size)
			off := 0
			for _, sl := range n.index.Resolve(0, size) {
				m, err := s.store.ReadAt(sl.Ext, sl.Off, e.Data[off:off+int(sl.Len)])
				if err != nil {
					s.mu.RUnlock()
					return fmt.Errorf("fsys: snapshot read %s: %w", p, err)
				}
				off += m
			}
		}
		entries = append(entries, e)
	}
	s.mu.RUnlock()

	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{
		Magic: snapshotMagic, Version: snapshotVersion,
		Shard: s.name, Entries: len(entries),
	}); err != nil {
		return err
	}
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return err
		}
	}
	return nil
}

// RestoreShard reconstructs a shard from a snapshot stream, allocating
// fresh extents on a device of the given capacity. The restored shard
// serves reads/writes exactly as the original (contents compact into new
// extents — the log-structured cleaning step for free).
func RestoreShard(r io.Reader, capacity int64) (*Shard, error) {
	dec := gob.NewDecoder(r)
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("fsys: reading snapshot header: %w", err)
	}
	if h.Magic != snapshotMagic {
		return nil, fmt.Errorf("fsys: not a shard snapshot (magic %q)", h.Magic)
	}
	if h.Version < 1 || h.Version > snapshotVersion {
		// Older snapshot versions must keep restoring forever (a drained
		// node's snapshot may outlive several software upgrades); newer
		// ones are rejected rather than misread.
		return nil, fmt.Errorf("fsys: unsupported snapshot version %d", h.Version)
	}
	s := NewShard(h.Shard, capacity)
	for i := 0; i < h.Entries; i++ {
		var e snapshotEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("fsys: snapshot entry %d: %w", i, err)
		}
		if e.Path == "/" {
			// Root exists already; just restore its children.
			for _, c := range e.Childs {
				if err := s.AddChild("/", c); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := s.CreateEntry(e.Path, e.IsDir, e.Stripes, e.StripeUnit, e.StripeSet); err != nil {
			return nil, fmt.Errorf("fsys: restoring %s: %w", e.Path, err)
		}
		if e.IsDir {
			for _, c := range e.Childs {
				if err := s.AddChild(e.Path, c); err != nil {
					return nil, err
				}
			}
		} else if len(e.Data) > 0 {
			if _, err := s.Append(e.Path, e.Data); err != nil {
				return nil, fmt.Errorf("fsys: restoring data of %s: %w", e.Path, err)
			}
		}
	}
	return s, nil
}
