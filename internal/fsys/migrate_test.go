package fsys

import (
	"bytes"
	"errors"
	"testing"
)

// newMigShard builds a shard holding one striped file entry with data.
func newMigShard(t *testing.T, name string, set []string, data []byte) *Shard {
	t.Helper()
	s := NewShard(name, 1<<20)
	if err := s.CreateEntry("/f", false, len(set), 4, set); err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if _, err := s.Append("/f", data); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSealFreezesWritesNotReads(t *testing.T) {
	s := newMigShard(t, "a", []string{"a", "b"}, []byte("hello"))
	size, gen, err := s.Seal("/f", 0)
	if err != nil || size != 5 || gen == 0 {
		t.Fatalf("Seal = (%d,%d,%v)", size, gen, err)
	}
	// The generation-checked form refuses a mismatched expectation (a
	// resume pass distinguishing old-layout holders from committed
	// ones) and accepts the matching one.
	if _, _, err := s.Seal("/f", 9); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("gen-mismatched seal err = %v", err)
	}
	if _, _, err := s.Seal("/f", 1); err != nil {
		t.Fatalf("gen-matched seal: %v", err)
	}
	if _, err := s.Append("/f", []byte("x")); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("sealed append err = %v, want ErrStaleLayout", err)
	}
	buf := make([]byte, 5)
	if n, err := s.ReadAt("/f", 0, buf); err != nil || n != 5 {
		t.Fatalf("sealed read: n=%d err=%v", n, err)
	}
	// Idempotent; unseal restores writability.
	if _, _, err := s.Seal("/f", 0); err != nil {
		t.Fatal(err)
	}
	s.Unseal("/f")
	if _, err := s.Append("/f", []byte("x")); err != nil {
		t.Fatalf("unsealed append: %v", err)
	}
}

// UnsealTrim removes the torn tail a write racing the seal phase left
// behind (never-acknowledged bytes past the consistent prefix) and
// restages the trimmed stripe, so later appends land at the right
// round-robin positions.
func TestUnsealTrim(t *testing.T) {
	s := newMigShard(t, "a", []string{"a", "b"}, []byte("acked+torn"))
	if _, _, err := s.Seal("/f", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.UnsealTrim("/f", 5); err != nil {
		t.Fatal(err)
	}
	fi, err := s.Stat("/f")
	if err != nil || fi.Size != 5 {
		t.Fatalf("trimmed stat = %+v err=%v", fi, err)
	}
	buf := make([]byte, 8)
	if n, _ := s.ReadAt("/f", 0, buf); n != 5 || string(buf[:n]) != "acked" {
		t.Fatalf("trimmed content = %q", buf[:n])
	}
	// Unsealed again: appends land after the trimmed prefix.
	if _, err := s.Append("/f", []byte("!")); err != nil {
		t.Fatal(err)
	}
	// The trim tombstoned the stale staged object and re-marked the
	// entry dirty, so the backing store restages from scratch.
	if len(s.TakeTombstones()) != 1 {
		t.Fatal("trim should tombstone the stale staged object")
	}
	if !s.HasDirty() {
		t.Fatal("trimmed entry should be fully dirty")
	}
	// keep >= size is a plain unseal: no trim, no tombstone.
	s2 := newMigShard(t, "a", []string{"a"}, []byte("xyz"))
	if _, _, err := s2.Seal("/f", 0); err != nil {
		t.Fatal(err)
	}
	if err := s2.UnsealTrim("/f", 3); err != nil {
		t.Fatal(err)
	}
	if fi, _ := s2.Stat("/f"); fi.Size != 3 {
		t.Fatalf("no-op trim changed size to %d", fi.Size)
	}
	if len(s2.TakeTombstones()) != 0 {
		t.Fatal("no-op trim must not tombstone")
	}
}

func TestMigrateInstallCommit(t *testing.T) {
	s := NewShard("b", 1<<20)
	// Out-of-order and duplicate chunks are refused.
	if err := s.MigrateInstall("/g", 4, []byte("late")); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("out-of-order first chunk err = %v", err)
	}
	if err := s.MigrateInstall("/g", 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateInstall("/g", 2, []byte("dup")); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("duplicate chunk err = %v", err)
	}
	if err := s.MigrateInstall("/g", 4, []byte("efgh")); err != nil {
		t.Fatal(err)
	}
	// Pending is invisible until commit.
	if _, err := s.Stat("/g"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("pending entry visible: %v", err)
	}
	if err := s.MigrateCommit("/g", 2, 4, []string{"b", "c"}, 7); err != nil {
		t.Fatal(err)
	}
	fi, err := s.Stat("/g")
	if err != nil || fi.Size != 8 || fi.LayoutGen != 7 || fi.Stripes != 2 {
		t.Fatalf("committed stat = %+v err=%v", fi, err)
	}
	buf := make([]byte, 8)
	if n, _ := s.ReadAt("/g", 0, buf); n != 8 || !bytes.Equal(buf, []byte("abcdefgh")) {
		t.Fatalf("committed content = %q", buf[:n])
	}
	// The committed entry is fully dirty: it must restage under the new
	// layout.
	if !s.HasDirty() {
		t.Fatal("committed entry should be dirty")
	}
}

func TestMigrateCommitReplacesOldStripe(t *testing.T) {
	s := newMigShard(t, "a", []string{"a", "b"}, []byte("oldbytes"))
	if err := s.MigrateInstall("/f", 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateCommit("/f", 1, 4, []string{"a"}, 3); err != nil {
		t.Fatal(err)
	}
	fi, err := s.Stat("/f")
	if err != nil || fi.Size != 3 || fi.LayoutGen != 3 || len(fi.StripeSet) != 1 {
		t.Fatalf("replaced stat = %+v err=%v", fi, err)
	}
}

// A commit is idempotent by layout generation: the migrator re-sends
// it when a reply is lost on a torn connection, and the duplicate must
// neither fabricate an empty stripe nor disturb the installed one.
func TestMigrateCommitIdempotent(t *testing.T) {
	s := NewShard("b", 1<<20)
	if err := s.MigrateInstall("/g", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateCommit("/g", 1, 4, []string{"b"}, 5); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery: no pending buffer left, entry already at the
	// generation — must succeed without touching the content.
	if err := s.MigrateCommit("/g", 1, 4, []string{"b"}, 5); err != nil {
		t.Fatalf("duplicate commit: %v", err)
	}
	fi, err := s.Stat("/g")
	if err != nil || fi.Size != 7 {
		t.Fatalf("content after duplicate commit: %+v err=%v", fi, err)
	}
	// A bare commit (no pending, different generation) is refused: it
	// could only destroy bytes the first delivery landed.
	if err := s.MigrateCommit("/g", 1, 4, []string{"b"}, 9); err == nil {
		t.Fatal("commit with no pending install should be refused")
	}
}

func TestMigrateDropGenChecked(t *testing.T) {
	s := newMigShard(t, "a", []string{"a", "b"}, []byte("data"))
	gen := s.GenOf("/f")
	// A recreate bumps the generation; the stale drop must be a no-op.
	if s.MigrateDrop("/f", gen+99) {
		t.Fatal("gen-mismatched drop should refuse")
	}
	if !s.MigrateDrop("/f", gen) {
		t.Fatal("matching drop should land")
	}
	// Dropped paths answer stale-layout, not not-exist, and tombstone
	// their staged object.
	if _, err := s.Stat("/f"); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("moved stat err = %v", err)
	}
	if _, err := s.Append("/f", []byte("x")); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("moved append err = %v", err)
	}
	if _, err := s.ReadAt("/f", 0, make([]byte, 1)); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("moved read err = %v", err)
	}
	if !s.Moved("/f") {
		t.Fatal("Moved should report the migrated path")
	}
	ts := s.TakeTombstones()
	if len(ts) != 1 || ts[0].Path != "/f" {
		t.Fatalf("tombstones = %+v", ts)
	}
	// A fresh incarnation supersedes the moved marker.
	if err := s.CreateEntry("/f", false, 1, 4, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if s.Moved("/f") {
		t.Fatal("recreate should clear the moved marker")
	}
}

// The layout-generation checks live inside the data ops' own critical
// sections: a separate check-then-operate could race a migration
// commit swapping the entry between the two.
func TestGenCheckedOps(t *testing.T) {
	s := newMigShard(t, "a", []string{"a"}, []byte("abc"))
	if _, err := s.AppendGen("/f", []byte("d"), 0); err != nil {
		t.Fatalf("zero gen must be unchecked: %v", err)
	}
	if _, err := s.AppendGen("/f", []byte("e"), 1); err != nil {
		t.Fatalf("matching gen append: %v", err)
	}
	if _, err := s.AppendGen("/f", []byte("x"), 9); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("mismatched gen append err = %v", err)
	}
	buf := make([]byte, 8)
	if _, err := s.ReadAtGen("/f", 0, buf, 9); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("mismatched gen read err = %v", err)
	}
	if n, err := s.ReadAtGen("/f", 0, buf, 1); err != nil || string(buf[:n]) != "abcde" {
		t.Fatalf("gen read = %q err=%v", buf[:n], err)
	}
	if _, err := s.StatGen("/f", 9); !errors.Is(err, ErrStaleLayout) {
		t.Fatalf("mismatched gen stat err = %v", err)
	}
	if fi, err := s.StatGen("/f", 1); err != nil || fi.Size != 5 {
		t.Fatalf("gen stat = %+v err=%v", fi, err)
	}
}
