package fsys

import (
	"fmt"
	"path"
	"slices"
	"sort"
	"time"

	"themisio/internal/storage"
)

// Migration support: the shard-side surface of join-time stripe
// rebalancing. A migration coordinator (the file's recorded set[0]
// server, see internal/server) moves a file to its new ring placement
// in two phases: it seals every current stripe (write-freeze, reads
// keep serving), copies the sealed bytes, installs each new local
// stripe into a pending buffer on its target server, then commits —
// atomically replacing the live entry under the new layout — and drops
// the stale stripes, generation-checked so a concurrent unlink or
// recreate of the path is never clobbered. Dropped paths leave a moved
// marker so clients still holding the old layout get ErrStaleLayout
// (re-stat and retry) instead of ErrNotExist.

// pendingInstall accumulates a migrating-in stripe before its commit.
// The buffer is invisible to every read path until MigrateCommit, so a
// client can never observe a half-copied stripe. at is the last
// install's arrival, for the sweep: a coordinator that dies between
// install and commit/abort would otherwise strand the buffer forever.
type pendingInstall struct {
	buf []byte
	at  time.Time
}

// Seal write-freezes the local stripe of p and reports its frozen local
// size and creation generation. Idempotent; reads keep working. Sealing
// a directory is an error (directories are replicated, not striped, and
// never migrate). A non-zero expectLayoutGen must match the entry's
// layout generation: a coordinator resuming after an interrupted
// cutover uses it to tell holders still on the old layout from holders
// that already committed the new one — sealing and copying a
// mixed-generation holder under the wrong stripe index would corrupt
// the reassembly.
func (s *Shard) Seal(p string, expectLayoutGen uint64) (size int64, gen uint64, err error) {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[p]
	if !ok {
		if _, mv := s.moved[p]; mv {
			return 0, 0, ErrStaleLayout
		}
		return 0, 0, ErrNotExist
	}
	if n.isDir {
		return 0, 0, ErrIsDir
	}
	if expectLayoutGen != 0 && n.layoutGen != expectLayoutGen {
		return 0, 0, ErrStaleLayout
	}
	if !n.sealed {
		n.sealedAt = time.Now()
	}
	n.sealed = true
	// Parked positional-append chunks can never drain behind a seal (the
	// freeze fails the predecessor that would close their gap), and the
	// migration copies only the frozen landed size — drop them; the
	// client's stale-layout repair re-sends the tail under the new
	// layout.
	n.parked = nil
	n.parkedBytes = 0
	return n.index.Size(), n.gen, nil
}

// Unseal lifts a seal (the abort path of a failed migration). Missing
// entries are a no-op: the path may have been unlinked while sealed.
func (s *Shard) Unseal(p string) {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nodes[p]; ok {
		n.sealed = false
	}
}

// UnsealTrim lifts a seal after truncating the local stripe to keep
// bytes — the abort path of a migration whose seal phase raced a
// striped write: a chunk that landed on a not-yet-sealed holder while
// an already-sealed one refused was never acknowledged, and on an
// append-structured stripe it would misplace every later append. The
// coordinator computes keep as this stripe's share of the consistent
// round-robin prefix; acknowledged bytes are always inside it. A trim
// tombstones this server's staged object and re-marks the entry fully
// dirty, so the backing store restages the trimmed content instead of
// resurrecting the tail.
func (s *Shard) UnsealTrim(p string, keep int64) error {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[p]
	if !ok {
		return nil
	}
	if n.isDir || keep < 0 || n.index.Size() <= keep {
		n.sealed = false
		return nil
	}
	// On any failure the seal stays: lifting it with the torn tail in
	// place would let appends land misplaced — the exact corruption
	// this trim exists to prevent. The caller's pass stays dirty and
	// retries.
	prefix := make([]byte, keep)
	got := 0
	for _, sl := range n.index.Resolve(0, keep) {
		m, err := s.store.ReadAt(sl.Ext, sl.Off, prefix[got:got+int(sl.Len)])
		got += m
		if err != nil {
			return err
		}
	}
	var ext storage.Extent
	if got > 0 {
		var err error
		ext, err = s.store.Alloc(int64(got))
		if err != nil {
			return err
		}
		if _, err := s.store.WriteAt(ext, 0, prefix[:got]); err != nil {
			_ = s.store.Release(ext)
			return err
		}
	}
	// The replacement is staged; from here the swap must complete —
	// continue past release errors (allocator inconsistency; the
	// extent is merely leaked) rather than abort with the index still
	// referencing half-released extents.
	for _, e := range n.index.Extents() {
		_ = s.store.Release(e)
	}
	n.index = storage.NewIndex()
	n.dirty = storage.NewRangeSet()
	if got > 0 {
		n.index.Append(ext)
		n.dirty.Mark(0, int64(got))
	}
	n.metaDirty = true
	s.tombstones = append(s.tombstones, Tombstone{Path: p, Stripe: s.stripeOf(n)})
	n.sealed = false
	return nil
}

// MigrateInstall appends a chunk of p's new local stripe to the pending
// (not yet visible) migration buffer. Chunks must arrive in order —
// off is the write position already accumulated — so a lost or
// duplicated frame surfaces as an error instead of a torn stripe.
func (s *Shard) MigrateInstall(p string, off int64, data []byte) error {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	pi := s.pending[p]
	if pi == nil {
		if off != 0 {
			return ErrBadOffset
		}
		pi = &pendingInstall{}
		s.pending[p] = pi
	}
	if off != int64(len(pi.buf)) {
		return ErrBadOffset
	}
	pi.buf = append(pi.buf, data...)
	pi.at = time.Now()
	return nil
}

// MigrateAbort discards p's pending migration buffer.
func (s *Shard) MigrateAbort(p string) {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, p)
}

// MigrateCommit atomically makes p's pending buffer the live local
// stripe under the new layout, replacing any existing entry (this
// server may have held a stripe under the old layout too). The whole
// swap happens under one critical section, so no concurrent read can
// observe the path as missing mid-commit. The committed entry is fully
// dirty — its bytes must restage to the backing store under the new
// layout — and carries the coordinator's layout generation, so
// old-layout reads and writes are detectably stale.
//
// The commit is idempotent by that generation: a retried commit whose
// first delivery executed (the reply was lost) finds the entry already
// at layoutGen and succeeds without touching it. A commit with neither
// a pending buffer nor a matching entry is refused — installing an
// empty stripe on a bare retry would destroy the bytes the first
// delivery landed. (Files shorter than the stripe set still commit
// empty trailing stripes: the install phase always sends at least one
// chunk, so a pending buffer exists even for zero bytes.)
func (s *Shard) MigrateCommit(p string, stripes int, unit int64, set []string, layoutGen uint64) error {
	p = clean(p)
	s.mu.Lock()
	old, hadOld := s.nodes[p]
	if hadOld {
		if old.isDir {
			s.mu.Unlock()
			return ErrIsDir
		}
		// Duplicate delivery: the first commit landed (it consumed the
		// pending buffer) and only the reply was lost. The absence of a
		// pending buffer is part of the test — an aborted earlier
		// attempt can reuse the same generation on its next try, and
		// that retry arrives with freshly installed pending content
		// that must replace, not be discarded as a duplicate.
		if old.layoutGen == layoutGen && slices.Equal(old.set, set) && s.pending[p] == nil {
			s.mu.Unlock()
			return nil
		}
	}
	pi := s.pending[p]
	if pi == nil {
		s.mu.Unlock()
		return fmt.Errorf("fsys: migrate commit %s: no pending install", p)
	}
	delete(s.pending, p)
	// Stage the new extent before touching the old entry, so an
	// allocation failure leaves the previous state fully intact.
	var ext storage.Extent
	if len(pi.buf) > 0 {
		var err error
		ext, err = s.store.Alloc(int64(len(pi.buf)))
		if err != nil {
			s.pending[p] = pi
			s.mu.Unlock()
			return err
		}
		if _, err := s.store.WriteAt(ext, 0, pi.buf); err != nil {
			_ = s.store.Release(ext)
			s.pending[p] = pi
			s.mu.Unlock()
			return err
		}
	}
	if hadOld {
		for _, e := range old.index.Extents() {
			if err := s.store.Release(e); err != nil {
				// Keep the commit retryable: restore the pending buffer
				// and free the staged extent. (Old extents released
				// before the failure stay released — the same partial-
				// release exposure RemoveEntry and RestoreFile accept;
				// Release only fails on allocator inconsistency.)
				if len(pi.buf) > 0 {
					_ = s.store.Release(ext)
				}
				s.pending[p] = pi
				s.mu.Unlock()
				return err
			}
		}
		delete(s.nodes, p)
		// Tombstone the replaced entry's own staged object: the stripe
		// index (and content) changed, so the old row would otherwise
		// squat in the backing store — and a stale row sharing a (path,
		// stripe) key with a new owner's row could mislead a later
		// failover reassembly. The committed entry is fully dirty, so
		// the same drain pump that processes the delete restages the
		// fresh bytes (the unlink-then-recreate precedent).
		s.tombstones = append(s.tombstones, Tombstone{Path: p, Stripe: s.stripeOf(old)})
	}
	s.genCtr++
	delete(s.moved, p)
	n := &node{
		stripes: stripes, unit: unit, set: set,
		gen: s.genCtr, layoutGen: layoutGen, metaDirty: true,
		index: storage.NewIndex(), dirty: storage.NewRangeSet(),
	}
	if len(pi.buf) > 0 {
		off := n.index.Append(ext)
		n.dirty.Mark(off, ext.Len)
	}
	s.nodes[p] = n
	s.mu.Unlock()
	s.ensureParents(p)
	return nil
}

// ensureParents records p's ancestor directories on this shard and
// links each child. A migration target that joined the fabric after
// the directories were made has never seen their mkdir broadcasts;
// without the chain, namespace operations that consult this server for
// the moved file — readdir merges, unlink's parent update — would
// answer not-exist. Created directories are metaDirty, so they stage
// like any mkdir.
func (s *Shard) ensureParents(p string) {
	for p != "/" {
		parent, name := path.Split(p)
		parent = clean(parent)
		if err := s.AddChild(parent, name); err == nil {
			// The parent exists, so its own ancestry is already in place
			// (mkdir replication or an earlier walk of this loop).
			return
		}
		_ = s.CreateEntry(parent, true, 0, 0, nil)
		_ = s.AddChild(parent, name)
		p = parent
	}
}

// MigrateDrop removes p's now-stale local stripe after a cutover,
// records an unlink tombstone for this server's staged object (the
// drain engine propagates it), and leaves a moved marker. The drop is
// generation-checked: if the entry's creation generation no longer
// matches gen, the path was unlinked or recreated while the migration
// ran and the drop is a no-op — the new incarnation owns the name.
// Reports whether the stripe was dropped.
func (s *Shard) MigrateDrop(p string, gen uint64) bool {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[p]
	if !ok || n.isDir || n.gen != gen {
		return false
	}
	for _, e := range n.index.Extents() {
		// Complete the drop even if an extent release fails (allocator
		// inconsistency — cannot happen for index-owned extents):
		// aborting midway would leave a half-released node whose next
		// removal double-frees the extents released so far, and a
		// zombie entry no pass ever revisits. A leaked extent only
		// costs capacity.
		_ = s.store.Release(e)
	}
	delete(s.nodes, p)
	s.tombstones = append(s.tombstones, Tombstone{Path: p, Stripe: s.stripeOf(n)})
	s.moved[p] = time.Now()
	return true
}

// Moved reports whether p's local stripe was migrated away (and not
// since recreated here).
func (s *Shard) Moved(p string) bool {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, mv := s.moved[p]
	return mv
}

// SweepMoved drops moved markers older than retention, and pending
// install buffers whose coordinator has gone silent for as long (a
// live migration refreshes the buffer's timestamp on every chunk, and
// commits or aborts it within a round trip of the last one — a buffer
// idle for the whole retention belongs to a coordinator that died
// mid-migration and would otherwise strand a stripe of memory
// forever). Markers only matter while stale-layout clients are still
// retrying (seconds); the controller sweeps with a retention orders of
// magnitude above every client retry window, bounding both maps
// regardless of how many files ever migrated.
func (s *Shard) SweepMoved(retention time.Duration) {
	cutoff := time.Now().Add(-retention)
	s.mu.Lock()
	defer s.mu.Unlock()
	for p, t := range s.moved {
		if t.Before(cutoff) {
			delete(s.moved, p)
		}
	}
	for p, pi := range s.pending {
		if !pi.at.IsZero() && pi.at.Before(cutoff) {
			delete(s.pending, p)
		}
	}
}

// LocalLen returns how many bytes of a total-byte file laid
// round-robin in unit-sized chunks over nStripes servers land on
// stripe i — the closed form of the layout walk. It lives here, with
// the rest of the layout logic, as the single copy the migration
// planner and the client's write-repair path both lean on
// (property-tested against a brute-force walk in the client package).
func LocalLen(total int64, i, nStripes int, unit int64) int64 {
	cycle := unit * int64(nStripes)
	n := (total / cycle) * unit
	rem := total%cycle - int64(i)*unit
	if rem > unit {
		rem = unit
	}
	if rem > 0 {
		n += rem
	}
	return n
}

// ConsistentTotal returns the longest global length every stripe of a
// round-robin layout can jointly cover — the interleave of the local
// sizes alone, stopping at the first stripe that cannot contribute its
// expected unit (exactly as content reassembly does). Bytes beyond it
// on any one stripe are torn: a striped write that was refused by a
// migration seal on one holder after landing on another. Stats report
// this length so a client's surviving-prefix arithmetic can never
// count torn bytes, and migration trims to it.
func ConsistentTotal(sizes []int64, unit int64) int64 {
	n := len(sizes)
	if n == 1 {
		return sizes[0]
	}
	if unit <= 0 {
		unit = DefaultStripeUnit
	}
	consumed := make([]int64, n)
	var t int64
	for u := int64(0); ; u++ {
		i := int(u % int64(n))
		avail := sizes[i] - consumed[i]
		if avail <= 0 {
			return t
		}
		take := unit
		if take > avail {
			take = avail
		}
		t += take
		consumed[i] += take
		if take < unit {
			return t
		}
	}
}

// FileLayouts returns a snapshot of every file entry's path and
// recorded layout, sorted by path — the rebalance planner's scan.
// Size is the local stripe size (the planner only uses it for
// progress accounting; the sealed sizes are authoritative).
func (s *Shard) FileLayouts() []FileInfo {
	s.mu.RLock()
	out := make([]FileInfo, 0, len(s.nodes))
	for p, n := range s.nodes {
		if n.isDir {
			continue
		}
		out = append(out, FileInfo{
			Path: p, Size: n.index.Size(),
			Stripes: n.stripes, StripeUnit: n.unit,
			StripeSet: append([]string(nil), n.set...),
			LayoutGen: n.layoutGen,
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LongSealed returns the paths of file entries that have been sealed
// continuously for longer than olderThan — zombie suspects whose
// migration coordinator may have died between cutover and the drop
// delivery (the owed-drops queue is coordinator memory, so a crash
// loses it). The zombie sweep consults each path's current ring owner
// before retiring anything.
func (s *Shard) LongSealed(olderThan time.Duration) []string {
	cutoff := time.Now().Add(-olderThan)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p, n := range s.nodes {
		if !n.isDir && n.sealed && n.sealedAt.Before(cutoff) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// LayoutGenOf returns the layout generation of the entry at p, 0 if
// absent or a directory.
func (s *Shard) LayoutGenOf(p string) uint64 {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n, ok := s.nodes[p]; ok {
		return n.layoutGen
	}
	return 0
}
