package fsys

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	sh := NewShard("bb0", 8<<20)
	r := NewRouter([]*Shard{sh}, 1, 1<<16)
	if err := r.Mkdir("/ckpt"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	files := map[string][]byte{}
	for _, name := range []string{"/ckpt/a", "/ckpt/b", "/top"} {
		if err := r.Create(name); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, rng.Intn(200000)+1)
		rng.Read(data)
		if _, err := r.Write(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}

	var buf bytes.Buffer
	if err := sh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreShard(&buf, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "bb0" {
		t.Fatalf("restored name = %q", restored.Name())
	}
	r2 := NewRouter([]*Shard{restored}, 1, 1<<16)
	for name, want := range files {
		got := make([]byte, len(want))
		n, err := r2.ReadAt(name, 0, got)
		if err != nil || n != len(want) {
			t.Fatalf("restored read %s: n=%d err=%v", name, n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restored contents of %s differ", name)
		}
	}
	names, err := r2.Readdir("/ckpt")
	if err != nil || len(names) != 2 {
		t.Fatalf("restored readdir: %v %v", names, err)
	}
	// The restored shard keeps working: new writes land fine.
	if err := r2.Create("/after-restore"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Write("/after-restore", []byte("new data")); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreShard(bytes.NewReader([]byte("not a snapshot")), 1<<20); err == nil {
		t.Fatal("garbage input should fail")
	}
	// Wrong magic via a valid gob stream of the wrong shape.
	var buf bytes.Buffer
	sh := NewShard("x", 1<<20)
	if err := sh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff // corrupt mid-stream
	if _, err := RestoreShard(bytes.NewReader(raw), 1<<20); err == nil {
		t.Skip("corruption landed in padding; acceptable")
	}
}

// Property: snapshot/restore preserves arbitrary file contents exactly.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(contents [][]byte) bool {
		sh := NewShard("p", 16<<20)
		r := NewRouter([]*Shard{sh}, 1, 4096)
		total := 0
		for i, data := range contents {
			if i >= 8 {
				break
			}
			total += len(data)
			if total > 8<<20 {
				break
			}
			name := "/f" + string(rune('a'+i))
			if r.Create(name) != nil {
				return false
			}
			if len(data) > 0 {
				if _, err := r.Write(name, data); err != nil {
					return false
				}
			}
		}
		var buf bytes.Buffer
		if sh.Snapshot(&buf) != nil {
			return false
		}
		restored, err := RestoreShard(&buf, 16<<20)
		if err != nil {
			return false
		}
		r2 := NewRouter([]*Shard{restored}, 1, 4096)
		for i, data := range contents {
			if i >= 8 {
				break
			}
			name := "/f" + string(rune('a'+i))
			fi, err := r2.Stat(name)
			if err != nil {
				// Only acceptable if the original also lacks it (size cap).
				if _, err0 := r.Stat(name); err0 != nil {
					continue
				}
				return false
			}
			got := make([]byte, fi.Size)
			if _, err := r2.ReadAt(name, 0, got); err != nil && fi.Size > 0 {
				return false
			}
			if !bytes.Equal(got, data[:fi.Size]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
