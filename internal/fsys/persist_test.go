package fsys

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	sh := NewShard("bb0", 8<<20)
	r := NewRouter([]*Shard{sh}, 1, 1<<16)
	if err := r.Mkdir("/ckpt"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	files := map[string][]byte{}
	for _, name := range []string{"/ckpt/a", "/ckpt/b", "/top"} {
		if err := r.Create(name); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, rng.Intn(200000)+1)
		rng.Read(data)
		if _, err := r.Write(name, data); err != nil {
			t.Fatal(err)
		}
		files[name] = data
	}

	var buf bytes.Buffer
	if err := sh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreShard(&buf, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "bb0" {
		t.Fatalf("restored name = %q", restored.Name())
	}
	r2 := NewRouter([]*Shard{restored}, 1, 1<<16)
	for name, want := range files {
		got := make([]byte, len(want))
		n, err := r2.ReadAt(name, 0, got)
		if err != nil || n != len(want) {
			t.Fatalf("restored read %s: n=%d err=%v", name, n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restored contents of %s differ", name)
		}
	}
	names, err := r2.Readdir("/ckpt")
	if err != nil || len(names) != 2 {
		t.Fatalf("restored readdir: %v %v", names, err)
	}
	// The restored shard keeps working: new writes land fine.
	if err := r2.Create("/after-restore"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Write("/after-restore", []byte("new data")); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreShard(bytes.NewReader([]byte("not a snapshot")), 1<<20); err == nil {
		t.Fatal("garbage input should fail")
	}
	// Wrong magic via a valid gob stream of the wrong shape.
	var buf bytes.Buffer
	sh := NewShard("x", 1<<20)
	if err := sh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff // corrupt mid-stream
	if _, err := RestoreShard(bytes.NewReader(raw), 1<<20); err == nil {
		t.Skip("corruption landed in padding; acceptable")
	}
}

// TestSnapshotUnderConcurrentWriters: a snapshot taken while writers
// keep appending is internally consistent — every restored file holds a
// prefix of the deterministic pattern its writer produces, and the
// restored shard is fully functional. (Snapshot holds the namespace
// read-lock; appends to existing files proceed concurrently, so the
// snapshot must tolerate indexes growing under it.)
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	sh := NewShard("bb0", 64<<20)
	r := NewRouter([]*Shard{sh}, 1, 1<<16)
	const writers = 4
	paths := make([]string, writers)
	for i := range paths {
		paths[i] = fmt.Sprintf("/w%d", i)
		if err := r.Create(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	// pattern byte at offset o of writer i is deterministic, so any
	// prefix is verifiable without coordination.
	pat := func(i int, o int64) byte { return byte(int64(i+1)*31 + o*7) }
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := range paths {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var off int64
			block := make([]byte, 1024)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for b := range block {
					block[b] = pat(i, off+int64(b))
				}
				if _, err := r.Write(paths[i], block); err != nil {
					return // device full: writer retires
				}
				off += int64(len(block))
			}
		}(i)
	}
	for round := 0; round < 5; round++ {
		var buf bytes.Buffer
		if err := sh.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreShard(&buf, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range paths {
			fi, err := restored.Stat(p)
			if err != nil {
				t.Fatalf("round %d: stat %s: %v", round, p, err)
			}
			got := make([]byte, fi.Size)
			if n, err := restored.ReadAt(p, 0, got); err != nil || int64(n) != fi.Size {
				t.Fatalf("round %d: read %s: n=%d err=%v", round, p, n, err)
			}
			for o, b := range got {
				if b != pat(i, int64(o)) {
					t.Fatalf("round %d: %s byte %d = %#x, want %#x (torn snapshot)",
						round, p, o, b, pat(i, int64(o)))
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotV1Compatibility pins the on-disk contract: a version-1
// snapshot stream (the format every release so far has written) must
// keep restoring even as the current writer moves on. The fixture is
// encoded by hand so a change to the writer cannot silently rewrite the
// fixture too.
func TestSnapshotV1Compatibility(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snapshotHeader{
		Magic: snapshotMagic, Version: 1, Shard: "legacy", Entries: 3,
	}); err != nil {
		t.Fatal(err)
	}
	entries := []snapshotEntry{
		{Path: "/", IsDir: true, Childs: []string{"old"}},
		{Path: "/old", IsDir: true, Childs: []string{"ckpt.bin"}},
		{Path: "/old/ckpt.bin", Stripes: 2, StripeUnit: 4096,
			StripeSet: []string{"legacy", "peer"}, Data: []byte("bytes from a v1 world")},
	}
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := RestoreShard(&buf, 1<<20)
	if err != nil {
		t.Fatalf("v1 snapshot no longer restores: %v", err)
	}
	if sh.Name() != "legacy" {
		t.Fatalf("restored name %q", sh.Name())
	}
	fi, err := sh.Stat("/old/ckpt.bin")
	if err != nil || fi.Size != int64(len("bytes from a v1 world")) {
		t.Fatalf("stat: %+v err=%v", fi, err)
	}
	if fi.Stripes != 2 || fi.StripeUnit != 4096 || len(fi.StripeSet) != 2 {
		t.Fatalf("v1 layout metadata lost: %+v", fi)
	}
	got := make([]byte, fi.Size)
	if _, err := sh.ReadAt("/old/ckpt.bin", 0, got); err != nil || string(got) != "bytes from a v1 world" {
		t.Fatalf("read: %q err=%v", got, err)
	}
	// A future version must be rejected, not misread.
	var future bytes.Buffer
	fenc := gob.NewEncoder(&future)
	if err := fenc.Encode(snapshotHeader{
		Magic: snapshotMagic, Version: snapshotVersion + 1, Shard: "x", Entries: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreShard(&future, 1<<20); err == nil {
		t.Fatal("future snapshot version should be rejected")
	}
}

// Property: snapshot/restore preserves arbitrary file contents exactly.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(contents [][]byte) bool {
		sh := NewShard("p", 16<<20)
		r := NewRouter([]*Shard{sh}, 1, 4096)
		total := 0
		for i, data := range contents {
			if i >= 8 {
				break
			}
			total += len(data)
			if total > 8<<20 {
				break
			}
			name := "/f" + string(rune('a'+i))
			if r.Create(name) != nil {
				return false
			}
			if len(data) > 0 {
				if _, err := r.Write(name, data); err != nil {
					return false
				}
			}
		}
		var buf bytes.Buffer
		if sh.Snapshot(&buf) != nil {
			return false
		}
		restored, err := RestoreShard(&buf, 16<<20)
		if err != nil {
			return false
		}
		r2 := NewRouter([]*Shard{restored}, 1, 4096)
		for i, data := range contents {
			if i >= 8 {
				break
			}
			name := "/f" + string(rune('a'+i))
			fi, err := r2.Stat(name)
			if err != nil {
				// Only acceptable if the original also lacks it (size cap).
				if _, err0 := r.Stat(name); err0 != nil {
					continue
				}
				return false
			}
			got := make([]byte, fi.Size)
			if _, err := r2.ReadAt(name, 0, got); err != nil && fi.Size > 0 {
				return false
			}
			if !bytes.Equal(got, data[:fi.Size]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
