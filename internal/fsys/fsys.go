// Package fsys implements ThemisIO's user-space file system (§4.3): a
// byte-addressable store where "both directories and files are stored as
// files, and files and metadata are spread across ThemisIO servers using
// a consistent hash function". Each server holds a Shard (namespace
// entries it owns plus extent-indexed data); a Router stripes paths and
// data across shards.
//
// Concurrency follows the paper: concurrent reads need no locking;
// concurrent writes to non-conflicting byte ranges proceed without
// limitation; metadata updates are serialized per shard.
package fsys

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"themisio/internal/chash"
	"themisio/internal/storage"
)

// Errors mirror the POSIX conditions the intercepted functions surface.
var (
	ErrNotExist  = errors.New("fsys: no such file or directory")
	ErrExist     = errors.New("fsys: file exists")
	ErrIsDir     = errors.New("fsys: is a directory")
	ErrNotDir    = errors.New("fsys: not a directory")
	ErrNotEmpty  = errors.New("fsys: directory not empty")
	ErrBadOffset = errors.New("fsys: negative offset")
	// ErrStaleLayout reports an operation against a layout this shard no
	// longer serves: the entry was migrated away (rebalancing moved its
	// stripe to another server), is write-frozen mid-migration, or its
	// layout generation no longer matches the caller's cached one. The
	// condition is routing staleness, not data loss — the caller re-stats
	// the path to learn the current layout and retries.
	ErrStaleLayout = errors.New("fsys: stale file layout (migrated)")
	// ErrTornAppend reports a positional append that partially overlaps
	// the landed stripe: its offset is inside the local size but its end
	// extends past it. A whole-chunk duplicate (a retransmit of bytes
	// that already landed) is tolerated as success; a partial overlap
	// means chunk boundaries drifted between attempts, and accepting it
	// would double-write the overlapped range.
	ErrTornAppend = errors.New("fsys: positional append partially overlaps landed data")
	// ErrParkedFull reports a positional append parked-bytes budget
	// overflow: too many out-of-order chunks are waiting for a missing
	// predecessor. The pipelined client's in-flight window keeps real
	// traffic far under the bound, so hitting it means frames were lost
	// or a peer is misbehaving; the write fails and the client repairs.
	ErrParkedFull = errors.New("fsys: positional append reorder buffer full")
)

// FileInfo is the stat result.
type FileInfo struct {
	Path  string
	Size  int64
	IsDir bool
	// Stripes is the number of shards the file's data spans; StripeUnit
	// is the bytes per stripe chunk. Both are laid down at creation so
	// any client can discover a file's layout from a stat.
	Stripes    int
	StripeUnit int64
	// StripeSet is the ordered server set holding the stripes, fixed at
	// creation; readers follow it instead of re-deriving placement from
	// a ring that may have changed since.
	StripeSet []string
	// LayoutGen is the layout generation: 1 at creation, bumped every
	// time rebalancing rewrites the recorded layout. Clients cache it
	// per handle and echo it on reads and writes, so a server can tell
	// a request computed against a superseded layout from a current one.
	LayoutGen uint64
}

// node is one namespace entry on a shard.
type node struct {
	isDir    bool
	children map[string]bool // directories: child names
	index    *storage.Index  // files: local extent index
	stripes  int
	unit     int64
	set      []string
	// gen is the entry's creation generation (unique per shard
	// lifetime): stage-out work harvested from one incarnation of a
	// path must never land against a later one (unlink + recreate).
	gen uint64
	// layoutGen is the recorded layout's generation (see
	// FileInfo.LayoutGen); sealed write-freezes the local stripe while
	// a migration copies it (reads still serve, writes get
	// ErrStaleLayout so no acknowledged byte can miss the cutover copy).
	// sealedAt records when the seal was placed, so the zombie sweep
	// can tell a live migration's seal from one whose coordinator died
	// between cutover and drop delivery.
	layoutGen uint64
	sealed    bool
	sealedAt  time.Time
	// dirty tracks byte ranges written since the last stage-out (files);
	// metaDirty marks an entry whose existence or child set is not yet
	// staged (set at creation — so empty files reach the backing store
	// — and on directory child changes). Both feed the drain engine
	// (see stageout.go).
	dirty     *storage.RangeSet
	metaDirty bool
	// appendMu serializes every append (positional or plain) to this
	// entry. Plain appends used to ride on the store's allocator mutex
	// alone, but the positional path's park/drain step must be atomic
	// with the landing append: a plain (repair) append interleaving a
	// drain could land between a chunk and its parked successor and
	// shear the stripe. Acquired under the shard read-lock; reads stay
	// lock-free against appends as before.
	appendMu sync.Mutex
	// parked holds out-of-order positional-append chunks keyed by their
	// target offset, waiting for the gap before them to land (copies —
	// the transport frame backing the request is released when its
	// response is sent). parkedBytes bounds the buffer (maxParkedBytes);
	// parkedAt is when the oldest current resident arrived, for the
	// zombie sweep. Guarded by appendMu.
	parked      map[int64][]byte
	parkedBytes int64
	parkedAt    time.Time
}

// Shard is the per-server piece of the file system: the namespace
// entries whose paths hash to this server, plus local extents of striped
// files.
type Shard struct {
	name  string
	store *storage.Store

	mu    sync.RWMutex
	nodes map[string]*node
	// genCtr issues node creation generations (see node.gen).
	genCtr uint64
	// tombstones records entries removed since the last TakeTombstones —
	// the drain engine propagates them as backing-store deletes of this
	// server's own staged objects.
	tombstones []Tombstone
	// moved marks paths whose local stripe rebalancing migrated away
	// (value: when): operations from clients still holding the old
	// layout answer ErrStaleLayout (re-stat and retry) instead of
	// ErrNotExist (which would read as an unlink). Cleared when the
	// path is created or restored here again, and swept after a
	// retention far exceeding every client retry window, so the map
	// cannot grow with lifetime migration count.
	moved map[string]time.Time
	// pending holds migration install buffers not yet committed (see
	// migrate.go).
	pending map[string]*pendingInstall
}

// NewShard returns a shard named name with a device of the given
// capacity. The root directory exists on every shard (path lookups for
// "/" must succeed wherever they land).
func NewShard(name string, capacity int64) *Shard {
	s := &Shard{
		name:    name,
		store:   storage.NewStore(capacity),
		nodes:   map[string]*node{},
		moved:   map[string]time.Time{},
		pending: map[string]*pendingInstall{},
	}
	s.nodes["/"] = &node{isDir: true, children: map[string]bool{}}
	return s
}

// Name returns the shard's server name.
func (s *Shard) Name() string { return s.name }

// Used returns allocated device bytes.
func (s *Shard) Used() int64 { return s.store.Used() }

// clean canonicalizes a path.
func clean(p string) string {
	p = path.Clean("/" + strings.TrimSpace(p))
	return p
}

// CreateEntry records a namespace entry (file or directory) on this
// shard. The router calls this on the owner shard of the path, and
// separately updates the parent directory ("directory and file creation
// updates the content of the parent directory", §4.3).
func (s *Shard) CreateEntry(p string, dir bool, stripes int, unit int64, set []string) error {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[p]; ok {
		return ErrExist
	}
	s.genCtr++
	delete(s.moved, p) // a fresh incarnation supersedes any moved marker
	n := &node{isDir: dir, stripes: stripes, unit: unit, set: set, gen: s.genCtr, metaDirty: true}
	if dir {
		n.children = map[string]bool{}
	} else {
		n.layoutGen = 1
		n.index = storage.NewIndex()
		n.dirty = storage.NewRangeSet()
	}
	s.nodes[p] = n
	return nil
}

// AddChild records a child name in a directory owned by this shard.
func (s *Shard) AddChild(dir, child string) error {
	dir = clean(dir)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.nodes[dir]
	if !ok {
		return ErrNotExist
	}
	if !d.isDir {
		return ErrNotDir
	}
	d.children[child] = true
	d.metaDirty = true
	return nil
}

// RemoveChild removes a child name from a directory owned by this shard.
func (s *Shard) RemoveChild(dir, child string) error {
	dir = clean(dir)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.nodes[dir]
	if !ok {
		return ErrNotExist
	}
	delete(d.children, child)
	d.metaDirty = true
	return nil
}

// RemoveEntry deletes a namespace entry. Directories must be empty.
func (s *Shard) RemoveEntry(p string) error {
	p = clean(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[p]
	if !ok {
		return ErrNotExist
	}
	if n.isDir && len(n.children) > 0 {
		return ErrNotEmpty
	}
	if n.index != nil {
		for _, e := range n.index.Extents() {
			// Release never fails for extents the index allocated.
			if err := s.store.Release(e); err != nil {
				return fmt.Errorf("fsys: releasing %v: %w", e, err)
			}
		}
	}
	delete(s.nodes, p)
	s.tombstones = append(s.tombstones, Tombstone{Path: p, Stripe: s.stripeOf(n)})
	return nil
}

// Stat returns metadata for an entry owned by this shard. For files, Size
// is the size of the local stripe only; the router sums stripes.
func (s *Shard) Stat(p string) (FileInfo, error) {
	return s.StatGen(p, 0)
}

// StatGen is Stat with a layout-generation expectation checked inside
// the same critical section that reads the entry (layoutGen 0 skips
// the check): a caller comparing with a separate lookup could race a
// migration commit swapping the entry between the check and the read.
func (s *Shard) StatGen(p string, layoutGen uint64) (FileInfo, error) {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[p]
	if !ok {
		if _, mv := s.moved[p]; mv {
			return FileInfo{}, ErrStaleLayout
		}
		return FileInfo{}, ErrNotExist
	}
	if layoutGen != 0 && n.layoutGen != 0 && n.layoutGen != layoutGen {
		return FileInfo{}, ErrStaleLayout
	}
	fi := FileInfo{Path: p, IsDir: n.isDir, Stripes: n.stripes, StripeUnit: n.unit, StripeSet: n.set, LayoutGen: n.layoutGen}
	if n.index != nil {
		fi.Size = n.index.Size()
	}
	return fi, nil
}

// Readdir lists a directory owned by this shard, sorted.
func (s *Shard) Readdir(p string) ([]string, error) {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[p]
	if !ok {
		return nil, ErrNotExist
	}
	if !n.isDir {
		return nil, ErrNotDir
	}
	out := make([]string, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, nil
}

// Append writes data to the end of the local stripe of the file and
// returns the new local size. The shard read-lock is held for the whole
// operation: concurrent appends and reads still proceed in parallel
// (shared lock, and extent allocation serializes only on the store's
// own mutex, §4.3), but an entry replacement (recovery's RestoreFile /
// DropStale, which release the node's extents) cannot interleave and
// orphan an acknowledged write.
func (s *Shard) Append(p string, data []byte) (int64, error) {
	return s.AppendGen(p, data, 0)
}

// AppendGen is Append with a layout-generation expectation checked
// inside the same critical section that resolves the entry (layoutGen
// 0 skips the check) — a check taken under a separate lock could pass
// against the old entry and then append to the one a migration commit
// swapped in, landing an old-layout chunk the trim machinery never
// sees.
func (s *Shard) AppendGen(p string, data []byte, layoutGen uint64) (int64, error) {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[p]
	if !ok {
		if _, mv := s.moved[p]; mv {
			return 0, ErrStaleLayout
		}
		return 0, ErrNotExist
	}
	if n.isDir {
		return 0, ErrIsDir
	}
	if n.sealed {
		// Write-frozen mid-migration: refusing (instead of accepting a
		// byte the cutover copy has already passed) is what makes "no
		// acknowledged write is ever lost" hold through a rebalance.
		return 0, ErrStaleLayout
	}
	if layoutGen != 0 && n.layoutGen != 0 && n.layoutGen != layoutGen {
		return 0, ErrStaleLayout
	}
	if len(data) == 0 {
		return n.index.Size(), nil
	}
	n.appendMu.Lock()
	defer n.appendMu.Unlock()
	if err := s.appendLocked(n, data); err != nil {
		return 0, err
	}
	// A repair append can close the gap a parked positional chunk was
	// waiting on.
	if err := s.drainParked(n); err != nil {
		return 0, err
	}
	return n.index.Size(), nil
}

// maxParkedBytes bounds the per-entry positional-append reorder buffer.
// The pipelined client's in-flight window is a few MiB; anything near
// this bound is lost frames or a misbehaving peer, not normal reordering.
const maxParkedBytes = 32 << 20

// AppendAtGen is AppendGen with an explicit target offset into the local
// stripe: the server side of pipelined striped writes. A multiplexed
// connection's worker pool may execute a stripe's chunks out of order;
// the offset makes landing order-independent:
//
//   - off == local size: the chunk lands now, then any parked successors
//     whose gap it closed drain in offset order.
//   - off+len ≤ local size: a retransmit of bytes that already landed —
//     success (idempotent), nothing written.
//   - off inside the size but end past it: ErrTornAppend (chunk
//     boundaries drifted between attempts; accepting would double-write).
//   - off > local size: the chunk is parked (copied — the caller keeps
//     ownership of data) until its predecessor lands, and the call
//     SUCCEEDS immediately. The early ack is sound by induction: every
//     parked chunk either drains before its predecessor's own ack is
//     sent, or its predecessor failed — in which case the client sees
//     that failure and repairs. Parked chunks stranded by a dead client
//     are dropped by SweepParked.
//
// Returns the local size the stripe has (or will have, for a parked
// chunk) once every acked byte lands.
func (s *Shard) AppendAtGen(p string, off int64, data []byte, layoutGen uint64) (int64, error) {
	p = clean(p)
	if off < 0 {
		return 0, ErrBadOffset
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[p]
	if !ok {
		if _, mv := s.moved[p]; mv {
			return 0, ErrStaleLayout
		}
		return 0, ErrNotExist
	}
	if n.isDir {
		return 0, ErrIsDir
	}
	if n.sealed {
		return 0, ErrStaleLayout
	}
	if layoutGen != 0 && n.layoutGen != 0 && n.layoutGen != layoutGen {
		return 0, ErrStaleLayout
	}
	n.appendMu.Lock()
	defer n.appendMu.Unlock()
	size := n.index.Size()
	end := off + int64(len(data))
	switch {
	case len(data) == 0:
		return size, nil
	case end <= size:
		// Whole-chunk duplicate: already landed, ack again.
		return size, nil
	case off < size:
		return 0, fmt.Errorf("%w: off %d len %d local size %d", ErrTornAppend, off, len(data), size)
	case off > size:
		if n.parkedBytes+int64(len(data)) > maxParkedBytes {
			return 0, ErrParkedFull
		}
		if n.parked == nil {
			n.parked = map[int64][]byte{}
		}
		if _, dup := n.parked[off]; !dup {
			// Copy: the request frame backing data is released as soon
			// as the worker sends this (successful) response.
			cp := make([]byte, len(data))
			copy(cp, data)
			n.parked[off] = cp
			n.parkedBytes += int64(len(data))
			if len(n.parked) == 1 {
				n.parkedAt = time.Now()
			}
		}
		return end, nil
	}
	if err := s.appendLocked(n, data); err != nil {
		return 0, err
	}
	if err := s.drainParked(n); err != nil {
		return 0, err
	}
	return n.index.Size(), nil
}

// appendLocked writes data as a fresh extent at the end of n's local
// stripe. Caller holds s.mu (read) and n.appendMu.
func (s *Shard) appendLocked(n *node, data []byte) error {
	ext, err := s.store.Alloc(int64(len(data)))
	if err != nil {
		return err
	}
	if _, err := s.store.WriteAt(ext, 0, data); err != nil {
		return err
	}
	off := n.index.Append(ext)
	if n.dirty != nil {
		n.dirty.Mark(off, ext.Len)
	}
	return nil
}

// drainParked lands every parked chunk whose offset has become the
// local size, in offset order. Caller holds s.mu (read) and n.appendMu.
func (s *Shard) drainParked(n *node) error {
	for len(n.parked) > 0 {
		size := n.index.Size()
		d, ok := n.parked[size]
		if !ok {
			return nil
		}
		delete(n.parked, size)
		n.parkedBytes -= int64(len(d))
		if err := s.appendLocked(n, d); err != nil {
			return err
		}
	}
	return nil
}

// SweepParked drops parked positional-append chunks older than maxAge —
// residue of a client that died mid-pipeline (its predecessor chunk
// never arrived, so the gap never closes). Dropping is safe: the bytes
// were acked, but the ack chain is broken at the missing predecessor,
// so the client (or its successor re-running the job) observed a failed
// write and repairs from the landed size. Returns chunks dropped.
func (s *Shard) SweepParked(maxAge time.Duration) int {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, n := range s.nodes {
		if len(n.parked) == 0 || now.Sub(n.parkedAt) < maxAge {
			continue
		}
		dropped += len(n.parked)
		n.parked = nil
		n.parkedBytes = 0
	}
	return dropped
}

// ReadAt reads up to len(buf) bytes of the local stripe at offset off;
// short reads at EOF return the available prefix. Like Append, the
// shard read-lock is held across the copy so the extents cannot be
// released by a concurrent entry replacement mid-read.
func (s *Shard) ReadAt(p string, off int64, buf []byte) (int, error) {
	return s.ReadAtGen(p, off, buf, 0)
}

// ReadAtGen is ReadAt with a layout-generation expectation checked
// inside the read's critical section (layoutGen 0 skips the check), so
// a reader holding a superseded layout can never be served re-striped
// bytes by an entry swapped in mid-request.
func (s *Shard) ReadAtGen(p string, off int64, buf []byte, layoutGen uint64) (int, error) {
	p = clean(p)
	if off < 0 {
		return 0, ErrBadOffset
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[p]
	if !ok {
		if _, mv := s.moved[p]; mv {
			return 0, ErrStaleLayout
		}
		return 0, ErrNotExist
	}
	if n.isDir {
		return 0, ErrIsDir
	}
	if layoutGen != 0 && n.layoutGen != 0 && n.layoutGen != layoutGen {
		return 0, ErrStaleLayout
	}
	total := 0
	for _, sl := range n.index.Resolve(off, int64(len(buf))) {
		m, err := s.store.ReadAt(sl.Ext, sl.Off, buf[total:total+int(sl.Len)])
		total += m
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Exists reports whether the shard owns an entry at p.
func (s *Shard) Exists(p string) bool {
	p = clean(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.nodes[p]
	return ok
}

// Router spreads a namespace across shards with consistent hashing and
// stripes file data round-robin over each file's stripe set.
type Router struct {
	ring    *chash.Ring
	shards  map[string]*Shard
	stripes int
	stripe  int64 // stripe unit in bytes
}

// DefaultStripeUnit is the stripe unit used when none is configured.
const DefaultStripeUnit = 1 << 20

// NewRouter builds a router over the given shards. stripes is the number
// of shards each file's data spans (clipped to the shard count);
// stripeUnit is the bytes written to one shard before moving to the next.
func NewRouter(shards []*Shard, stripes int, stripeUnit int64) *Router {
	if stripes <= 0 {
		stripes = 1
	}
	if stripes > len(shards) {
		stripes = len(shards)
	}
	if stripeUnit <= 0 {
		stripeUnit = DefaultStripeUnit
	}
	r := &Router{
		ring:    chash.New(0),
		shards:  map[string]*Shard{},
		stripes: stripes,
		stripe:  stripeUnit,
	}
	for _, s := range shards {
		r.ring.Add(s.Name())
		r.shards[s.Name()] = s
	}
	return r
}

// owner returns the shard owning the namespace entry for p.
func (r *Router) owner(p string) *Shard {
	name, _ := r.ring.Lookup(clean(p))
	return r.shards[name]
}

// stripeSet returns the shards holding p's data, in stripe order.
func (r *Router) stripeSet(p string) []*Shard {
	names := r.ring.LookupN(clean(p), r.stripes)
	out := make([]*Shard, len(names))
	for i, n := range names {
		out[i] = r.shards[n]
	}
	return out
}

// Mkdir creates a directory, updating the parent's content.
func (r *Router) Mkdir(p string) error {
	p = clean(p)
	if p == "/" {
		return ErrExist
	}
	parent, name := path.Split(p)
	parent = clean(parent)
	if fi, err := r.Stat(parent); err != nil || !fi.IsDir {
		if err != nil {
			return err
		}
		return ErrNotDir
	}
	if err := r.owner(p).CreateEntry(p, true, 0, 0, nil); err != nil {
		return err
	}
	return r.owner(parent).AddChild(parent, name)
}

// Create creates an empty file with the router's stripe count; the
// namespace entry lands on the owner shard and a stripe entry on each
// shard in the stripe set.
func (r *Router) Create(p string) error {
	return r.create(p, 0, 0, nil)
}

// CreateStriped creates an empty file recording an explicit stripe
// layout (width and unit) in its metadata. The live server uses this
// for client-driven striping: each server holds one local stripe, but
// the recorded layout lets any later client discover it from a stat.
func (r *Router) CreateStriped(p string, stripes int, unit int64, set []string) error {
	return r.create(p, stripes, unit, set)
}

func (r *Router) create(p string, stripes int, unit int64, set []string) error {
	p = clean(p)
	parent, name := path.Split(p)
	parent = clean(parent)
	if fi, err := r.Stat(parent); err != nil || !fi.IsDir {
		if err != nil {
			return err
		}
		return ErrNotDir
	}
	shards := r.stripeSet(p)
	if stripes <= 0 {
		stripes = len(shards)
	}
	if unit <= 0 {
		unit = r.stripe
	}
	for _, sh := range shards {
		if err := sh.CreateEntry(p, false, stripes, unit, set); err != nil {
			return err
		}
	}
	return r.owner(parent).AddChild(parent, name)
}

// Write appends data to the file (the client library tracks offsets; the
// store is append-structured, as the paper's future-work section notes
// for log-structured designs). Data is striped across the stripe set in
// stripe-unit chunks.
func (r *Router) Write(p string, data []byte) (int, error) {
	set := r.stripeSet(p)
	if len(set) == 0 {
		return 0, ErrNotExist
	}
	written := 0
	// Determine the next stripe from the current total size.
	total := int64(0)
	for _, sh := range set {
		fi, err := sh.Stat(p)
		if err != nil {
			return 0, err
		}
		total += fi.Size
	}
	for written < len(data) {
		idx := int(total/r.stripe) % len(set)
		chunk := int(r.stripe - total%r.stripe)
		if chunk > len(data)-written {
			chunk = len(data) - written
		}
		if _, err := set[idx].Append(p, data[written:written+chunk]); err != nil {
			return written, err
		}
		written += chunk
		total += int64(chunk)
	}
	return written, nil
}

// ReadAt reads from the striped file at a global offset.
func (r *Router) ReadAt(p string, off int64, buf []byte) (int, error) {
	if off < 0 {
		return 0, ErrBadOffset
	}
	set := r.stripeSet(p)
	if len(set) == 0 {
		return 0, ErrNotExist
	}
	total := 0
	for total < len(buf) {
		idx := int(off/r.stripe) % len(set)
		localOff := off/r.stripe/int64(len(set))*r.stripe + off%r.stripe
		chunk := int(r.stripe - off%r.stripe)
		if chunk > len(buf)-total {
			chunk = len(buf) - total
		}
		n, err := set[idx].ReadAt(p, localOff, buf[total:total+chunk])
		total += n
		if err != nil {
			return total, err
		}
		if n < chunk {
			break // EOF on this stripe
		}
		off += int64(n)
	}
	return total, nil
}

// Stat aggregates stripe sizes for files; directories stat the owner.
func (r *Router) Stat(p string) (FileInfo, error) {
	p = clean(p)
	fi, err := r.owner(p).Stat(p)
	if err != nil || fi.IsDir {
		return fi, err
	}
	total := int64(0)
	for _, sh := range r.stripeSet(p) {
		sfi, err := sh.Stat(p)
		if err != nil {
			return fi, err
		}
		total += sfi.Size
	}
	fi.Size = total
	return fi, nil
}

// Readdir lists a directory.
func (r *Router) Readdir(p string) ([]string, error) {
	return r.owner(p).Readdir(p)
}

// Rename moves a file to a new path. Data does not move: the namespace
// entries (and each stripe's extent index) are re-registered under the
// destination path on the destination's shard set. Directories cannot be
// renamed (their children reference paths on many shards); this matches
// the burst-buffer usage pattern where renames finalize checkpoints.
func (r *Router) Rename(oldPath, newPath string) error {
	oldPath, newPath = clean(oldPath), clean(newPath)
	fi, err := r.Stat(oldPath)
	if err != nil {
		return err
	}
	if fi.IsDir {
		return ErrIsDir
	}
	if r.owner(newPath).Exists(newPath) {
		return ErrExist
	}
	newParent, _ := path.Split(newPath)
	if pfi, err := r.Stat(clean(newParent)); err != nil || !pfi.IsDir {
		if err != nil {
			return err
		}
		return ErrNotDir
	}
	// Read the whole file, create the destination, copy, remove source.
	// (A production implementation would splice extent indexes; copying
	// keeps the invariant that stripe placement always follows the hash
	// of the current path, which reads depend on.)
	buf := make([]byte, fi.Size)
	if fi.Size > 0 {
		if _, err := r.ReadAt(oldPath, 0, buf); err != nil {
			return err
		}
	}
	if err := r.Create(newPath); err != nil {
		return err
	}
	if fi.Size > 0 {
		if _, err := r.Write(newPath, buf); err != nil {
			return err
		}
	}
	return r.Unlink(oldPath)
}

// Unlink removes a file (all stripes) or empty directory.
func (r *Router) Unlink(p string) error {
	p = clean(p)
	if p == "/" {
		return ErrNotEmpty
	}
	fi, err := r.Stat(p)
	if err != nil {
		return err
	}
	if fi.IsDir {
		if err := r.owner(p).RemoveEntry(p); err != nil {
			return err
		}
	} else {
		for _, sh := range r.stripeSet(p) {
			if err := sh.RemoveEntry(p); err != nil {
				return err
			}
		}
	}
	parent, name := path.Split(p)
	return r.owner(clean(parent)).RemoveChild(clean(parent), name)
}
