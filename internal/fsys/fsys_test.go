package fsys

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newRouter(nShards, stripes int) *Router {
	var shards []*Shard
	for i := 0; i < nShards; i++ {
		shards = append(shards, NewShard(fmt.Sprintf("bb%d", i), 64<<20))
	}
	return NewRouter(shards, stripes, 1<<16)
}

func TestMkdirCreateStatReaddir(t *testing.T) {
	r := newRouter(4, 2)
	if err := r.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := r.Mkdir("/data"); err != ErrExist {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := r.Mkdir("/missing/sub"); err != ErrNotExist {
		t.Fatalf("mkdir under missing parent: %v", err)
	}
	if err := r.Create("/data/a.bin"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("/data/b.bin"); err != nil {
		t.Fatal(err)
	}
	fi, err := r.Stat("/data")
	if err != nil || !fi.IsDir {
		t.Fatalf("stat dir: %+v %v", fi, err)
	}
	names, err := r.Readdir("/data")
	if err != nil || len(names) != 2 || names[0] != "a.bin" || names[1] != "b.bin" {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if _, err := r.Readdir("/data/a.bin"); err != ErrNotDir {
		t.Fatalf("readdir on file: %v", err)
	}
	if _, err := r.Stat("/nope"); err != ErrNotExist {
		t.Fatalf("stat missing: %v", err)
	}
}

func TestWriteReadRoundTripStriped(t *testing.T) {
	r := newRouter(4, 3)
	if err := r.Create("/f"); err != nil {
		t.Fatal(err)
	}
	// Write 1 MB in uneven chunks so stripe boundaries are crossed.
	rng := rand.New(rand.NewSource(1))
	var want bytes.Buffer
	for want.Len() < 1<<20 {
		chunk := make([]byte, rng.Intn(100000)+1)
		rng.Read(chunk)
		if _, err := r.Write("/f", chunk); err != nil {
			t.Fatal(err)
		}
		want.Write(chunk)
	}
	fi, err := r.Stat("/f")
	if err != nil || fi.Size != int64(want.Len()) {
		t.Fatalf("size = %d, want %d (%v)", fi.Size, want.Len(), err)
	}
	// Read back in random-size chunks from random offsets.
	got := make([]byte, want.Len())
	if n, err := r.ReadAt("/f", 0, got); err != nil || n != len(got) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("striped round trip corrupted data")
	}
	// Random range reads.
	for i := 0; i < 50; i++ {
		off := rng.Intn(want.Len() - 1)
		n := rng.Intn(want.Len()-off) + 1
		buf := make([]byte, n)
		m, err := r.ReadAt("/f", int64(off), buf)
		if err != nil || m != n {
			t.Fatalf("range read off=%d n=%d: m=%d err=%v", off, n, m, err)
		}
		if !bytes.Equal(buf, want.Bytes()[off:off+n]) {
			t.Fatalf("range read mismatch at off=%d n=%d", off, n)
		}
	}
	// Reads past EOF are short.
	buf := make([]byte, 100)
	if n, err := r.ReadAt("/f", fi.Size-10, buf); err != nil || n != 10 {
		t.Fatalf("EOF read: n=%d err=%v", n, err)
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	sh := NewShard("s", 1<<20)
	r := NewRouter([]*Shard{sh}, 1, 1<<16)
	if err := r.Create("/x"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300<<10)
	if _, err := r.Write("/x", data); err != nil {
		t.Fatal(err)
	}
	if sh.Used() == 0 {
		t.Fatal("no space used after write")
	}
	if err := r.Unlink("/x"); err != nil {
		t.Fatal(err)
	}
	if sh.Used() != 0 {
		t.Fatalf("space leaked: %d bytes", sh.Used())
	}
	if _, err := r.Stat("/x"); err != ErrNotExist {
		t.Fatalf("stat after unlink: %v", err)
	}
	// Parent no longer lists it.
	names, _ := r.Readdir("/")
	for _, n := range names {
		if n == "x" {
			t.Fatal("parent still lists unlinked file")
		}
	}
}

func TestUnlinkDirectorySemantics(t *testing.T) {
	r := newRouter(2, 1)
	if err := r.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unlink("/d"); err != ErrNotEmpty {
		t.Fatalf("unlink non-empty dir: %v", err)
	}
	if err := r.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unlink("/d"); err != nil {
		t.Fatalf("unlink empty dir: %v", err)
	}
	if err := r.Unlink("/"); err != ErrNotEmpty {
		t.Fatalf("unlink root: %v", err)
	}
}

func TestWriteToMissingAndDirErrors(t *testing.T) {
	r := newRouter(2, 2)
	if _, err := r.Write("/ghost", []byte("x")); err != ErrNotExist {
		t.Fatalf("write missing: %v", err)
	}
	r.Mkdir("/d")
	if _, err := r.ReadAt("/f", -1, make([]byte, 1)); err != ErrBadOffset {
		t.Fatalf("negative offset: %v", err)
	}
}

// Property: for any sequence of appends, the concatenation read back
// equals the concatenation written, across shard/stripe configurations.
func TestStripedAppendProperty(t *testing.T) {
	f := func(chunks [][]byte, shardsSeed, stripesSeed uint8) bool {
		nShards := int(shardsSeed%4) + 1
		stripes := int(stripesSeed%3) + 1
		r := newRouter(nShards, stripes)
		if err := r.Create("/p"); err != nil {
			return false
		}
		var want bytes.Buffer
		for _, c := range chunks {
			if len(c) == 0 {
				continue
			}
			if _, err := r.Write("/p", c); err != nil {
				return false
			}
			want.Write(c)
		}
		got := make([]byte, want.Len())
		n, err := r.ReadAt("/p", 0, got)
		if err != nil || n != want.Len() {
			return false
		}
		return bytes.Equal(got, want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Namespace placement is deterministic: the same path always lands on
// the same owner shard.
func TestOwnerDeterminism(t *testing.T) {
	r := newRouter(8, 1)
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/dir/file-%d", i)
		a := r.owner(p).Name()
		for k := 0; k < 5; k++ {
			if r.owner(p).Name() != a {
				t.Fatal("owner changed between lookups")
			}
		}
	}
}

func TestRename(t *testing.T) {
	r := newRouter(3, 2)
	if err := r.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("/a/f.tmp"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 150000)
	rand.New(rand.NewSource(4)).Read(data)
	if _, err := r.Write("/a/f.tmp", data); err != nil {
		t.Fatal(err)
	}
	if err := r.Rename("/a/f.tmp", "/b/f.final"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Stat("/a/f.tmp"); err != ErrNotExist {
		t.Fatalf("source remains: %v", err)
	}
	got := make([]byte, len(data))
	if n, err := r.ReadAt("/b/f.final", 0, got); err != nil || n != len(data) {
		t.Fatalf("read renamed: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("rename corrupted data")
	}
	// Error cases.
	if err := r.Rename("/missing", "/x"); err != ErrNotExist {
		t.Fatalf("rename missing: %v", err)
	}
	if err := r.Rename("/b", "/c"); err != ErrIsDir {
		t.Fatalf("rename dir: %v", err)
	}
	r.Create("/exists")
	if err := r.Rename("/b/f.final", "/exists"); err != ErrExist {
		t.Fatalf("rename onto existing: %v", err)
	}
	if err := r.Rename("/b/f.final", "/nodir/sub"); err != ErrNotExist {
		t.Fatalf("rename into missing dir: %v", err)
	}
}
