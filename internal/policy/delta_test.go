package policy

import (
	"math"
	"math/rand"
	"testing"

	"themisio/internal/token"
)

// randomDelta mutates the model job list in place and returns the
// matching Delta: a mix of arrivals, departures and attribute changes
// drawn from rng. Like jobtable.DeltaSince's squashed deltas, each job
// appears in at most one of the three lists.
func randomDelta(rng *rand.Rand, jobs *[]JobInfo, nextID *int) Delta {
	var d Delta
	touched := map[string]bool{}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(*jobs) == 0: // add
			j := JobInfo{
				JobID:    "job" + itoa(*nextID),
				UserID:   "user" + itoa(rng.Intn(5)),
				GroupID:  "grp" + itoa(rng.Intn(3)),
				Nodes:    rng.Intn(64) + 1,
				Priority: rng.Intn(4),
				Presence: rng.Intn(3),
			}
			*nextID++
			*jobs = append(*jobs, j)
			d.Added = append(d.Added, j)
			touched[j.JobID] = true
		case op == 1: // remove
			i := rng.Intn(len(*jobs))
			if touched[(*jobs)[i].JobID] {
				continue
			}
			d.Removed = append(d.Removed, (*jobs)[i].JobID)
			touched[(*jobs)[i].JobID] = true
			*jobs = append((*jobs)[:i], (*jobs)[i+1:]...)
		default: // update attributes, possibly moving user/group scope
			i := rng.Intn(len(*jobs))
			if touched[(*jobs)[i].JobID] {
				continue
			}
			j := (*jobs)[i]
			j.Nodes = rng.Intn(64) + 1
			j.Presence = rng.Intn(3)
			if rng.Intn(2) == 0 {
				j.UserID = "user" + itoa(rng.Intn(5))
			}
			if rng.Intn(4) == 0 {
				j.GroupID = "grp" + itoa(rng.Intn(3))
			}
			(*jobs)[i] = j
			d.Updated = append(d.Updated, j)
			touched[j.JobID] = true
		}
	}
	return d
}

// The delta-compile contract: Recompile(prev, delta) is share-for-share
// BIT-identical to a from-scratch Compile of the post-delta job set —
// same segment layout, same bounds, same Share answers — over 500+
// random churn sequences per policy, with recompiles chained so errors
// would accumulate.
func TestRecompileMatchesCompileProperty(t *testing.T) {
	pols := []Policy{JobFair, SizeFair, PriorityFair, UserFair, UserThenSizeFair, GroupUserSizeFair}
	const seqs = 100 // ×6 policies = 600 churn sequences
	for pi, p := range pols {
		for s := 0; s < seqs; s++ {
			rng := rand.New(rand.NewSource(int64(pi*seqs + s)))
			var jobs []JobInfo
			nextID := 0
			// Seed population.
			seed := randomDelta(rng, &jobs, &nextID)
			for i := 0; i < rng.Intn(12); i++ {
				seed = randomDelta(rng, &jobs, &nextID)
			}
			_ = seed
			prev, err := Compile(jobs, p)
			if err != nil {
				t.Fatalf("%v: seed compile: %v", p, err)
			}
			steps := 1 + rng.Intn(6)
			for st := 0; st < steps; st++ {
				d := randomDelta(rng, &jobs, &nextID)
				inc, err := Recompile(prev, d)
				if err != nil {
					t.Fatalf("%v seq %d step %d: recompile: %v", p, s, st, err)
				}
				full, err := Compile(jobs, p)
				if err != nil {
					t.Fatalf("%v seq %d step %d: full compile: %v", p, s, st, err)
				}
				fs, is := full.Assignment.Segments(), inc.Assignment.Segments()
				if len(fs) != len(is) {
					t.Fatalf("%v seq %d step %d: %d segments incremental, %d full", p, s, st, len(is), len(fs))
				}
				for i := range fs {
					if fs[i] != is[i] {
						t.Fatalf("%v seq %d step %d: segment %d diverged: inc %+v full %+v",
							p, s, st, i, is[i], fs[i])
					}
				}
				for _, j := range jobs {
					if iw, fw := inc.Share(j.JobID), full.Share(j.JobID); iw != fw {
						t.Fatalf("%v seq %d step %d: share(%s) inc %v full %v",
							p, s, st, j.JobID, iw, fw)
					}
				}
				if got, want := inc.JobCount(), len(jobs); got != want {
					t.Fatalf("%v seq %d step %d: job count %d, want %d", p, s, st, got, want)
				}
				prev = inc
			}
		}
	}
}

// Removing every job leaves a recompilable empty tree, and adding into
// the emptied tree works (the bootstrap shape: a controller's first
// delta lands on the empty-set compile).
func TestRecompileThroughEmpty(t *testing.T) {
	empty, err := Compile(nil, GroupUserSizeFair)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := j("a", "u1", "g1", 2), j("b", "u2", "g1", 6)
	c, err := Recompile(empty, Delta{Added: []JobInfo{j1, j2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Share("b"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("share(b) = %v, want 0.5 (one group, two users)", got)
	}
	c, err = Recompile(c, Delta{Removed: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Assignment.Segments()) != 0 || c.JobCount() != 0 {
		t.Fatalf("emptied tree: %d segments, %d jobs", len(c.Assignment.Segments()), c.JobCount())
	}
	if _, err := Recompile(nil, Delta{}); err == nil {
		t.Fatal("nil base must refuse")
	}
	fifo, _ := Compile([]JobInfo{j1}, FIFO)
	if _, err := Recompile(fifo, Delta{}); err == nil {
		t.Fatal("FIFO base must refuse (no share tree)")
	}
}

// The structural-sharing pin behind the O(churn) recompile bar: a
// delta reuses the token block of every terminal scope it does not
// touch pointer-identical across epochs, and replaces exactly the
// touched scopes' blocks (which is also what lets the scheduler's
// epoch publication reuse those blocks' resolved state tables).
func TestRecompileSharesCleanBlocks(t *testing.T) {
	var jobs []JobInfo
	for g := 0; g < 3; g++ {
		for u := 0; u < 2; u++ {
			for k := 0; k < 2; k++ {
				jobs = append(jobs, j("j"+itoa(g)+itoa(u)+itoa(k), "u"+itoa(g*2+u), "g"+itoa(g), k*4+2))
			}
		}
	}
	prev, err := Compile(jobs, GroupUserSizeFair)
	if err != nil {
		t.Fatal(err)
	}
	prevBlocks := map[*token.Block]bool{}
	for _, b := range prev.Assignment.Blocks() {
		prevBlocks[b] = true
	}
	if len(prevBlocks) != 6 {
		t.Fatalf("expected 6 terminal (group,user) scopes, got %d", len(prevBlocks))
	}
	// Touch one job: only its (group,user) scope's block may change.
	upd := jobs[0]
	upd.Nodes += 7
	next, err := Recompile(prev, Delta{Updated: []JobInfo{upd}})
	if err != nil {
		t.Fatal(err)
	}
	shared, fresh := 0, 0
	for _, b := range next.Assignment.Blocks() {
		if prevBlocks[b] {
			shared++
		} else {
			fresh++
		}
	}
	if shared != 5 || fresh != 1 {
		t.Fatalf("blocks shared %d / fresh %d after a one-job delta, want 5 / 1", shared, fresh)
	}
}

// The lazily-materialised matrix chain agrees with the tree walk: the
// chain product's per-job probabilities equal the compiled segment
// widths (the tree evaluates Equation 1's exact expressions; widths
// pick up only cumulative-sum rounding, so ≤1e-12).
func TestMatricesMatchTreeShares(t *testing.T) {
	jobs := []JobInfo{
		j("j1", "u1", "g1", 16), j("j2", "u1", "g1", 8),
		j("j3", "u2", "g1", 4), j("j4", "u3", "g2", 2),
		j("j5", "u3", "g2", 1),
	}
	for _, p := range []Policy{JobFair, SizeFair, UserThenSizeFair, GroupUserSizeFair} {
		c, err := Compile(jobs, p)
		if err != nil {
			t.Fatal(err)
		}
		chain, prod, err := c.Matrices()
		if err != nil || len(chain) != len(p.Levels) {
			t.Fatalf("%v: chain %d levels (err %v), want %d", p, len(chain), err, len(p.Levels))
		}
		for ci, jid := range prod.ColLabels {
			if got, want := c.Share(jid), prod.At(0, ci); math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v: share(%s) = %v, chain product says %v", p, jid, got, want)
			}
		}
	}
}
