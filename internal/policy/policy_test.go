package policy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func j(id, user, group string, nodes int) JobInfo {
	return JobInfo{JobID: id, UserID: user, GroupID: group, Nodes: nodes}
}

func TestParsePrimitives(t *testing.T) {
	cases := map[string]string{
		"fifo":          "fifo",
		"job-fair":      "job-fair",
		"size-fair":     "size-fair",
		"priority-fair": "priority-fair",
		"user-fair":     "user-then-job-fair",
		"USER-FAIR":     "user-then-job-fair",
	}
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if p.String() != want {
			t.Fatalf("Parse(%q) = %s, want %s", in, p, want)
		}
	}
}

func TestParseComposites(t *testing.T) {
	cases := map[string]string{
		"user-then-size-fair":            "user-then-size-fair",
		"group-then-user-then-size-fair": "group-then-user-then-size-fair",
		"group-user-size-fair":           "group-then-user-then-size-fair",
		"group-then-user-fair":           "group-then-user-then-job-fair",
	}
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if p.String() != want {
			t.Fatalf("Parse(%q) = %s, want %s", in, p, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error message
	}{
		{"empty string", "", "empty policy"},
		{"whitespace only", "   ", "empty policy"},
		{"no -fair suffix", "bogus", "does not end in -fair"},
		{"bare level", "job", "does not end in -fair"},
		{"unknown level", "wat-fair", `unknown level "wat"`},
		{"unknown level in chain", "user-then-flub-fair", `unknown level "flub"`},
		{"terminal level not last", "size-then-user-fair", `"size" must be last`},
		{"terminal job not last", "job-then-size-fair", `"job" must be last`},
		{"terminal priority not last", "priority-then-job-fair", `"priority" must be last`},
		{"abbreviated composite, terminal not last", "size-user-fair", `"size" must be last`},
		{"abbreviated composite, unknown level", "group-wat-size-fair", `unknown level "wat"`},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.in); err == nil {
			t.Errorf("%s: Parse(%q) should fail", tc.name, tc.in)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Parse(%q) error %q, want substring %q", tc.name, tc.in, err, tc.want)
		}
	}
	// The abbreviated composite form itself is valid — only its
	// malformed variants above fail.
	if p, err := Parse("group-user-size-fair"); err != nil || !p.Equal(GroupUserSizeFair) {
		t.Errorf("Parse(group-user-size-fair) = %v, %v; want the predefined composite", p, err)
	}
}

// Parse(p.String()) == p for every well-formed policy: the canonical
// rendering is a fixed point of the parser, so the hot-swap path can
// gossip canonical strings without drift.
func TestParseStringRoundTrip(t *testing.T) {
	// All predefined policies round-trip.
	for _, p := range []Policy{FIFO, JobFair, UserFair, SizeFair, PriorityFair,
		UserThenJobFair, UserThenSizeFair, GroupUserSizeFair} {
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip of %q = %v, want %v", p.String(), got, p)
		}
	}
	// Property over random valid chains: any run of non-terminal levels
	// (user, group) capped by a terminal one (job, size, priority).
	rng := rand.New(rand.NewSource(42))
	nonTerminal := []Level{LevelUser, LevelGroup}
	terminal := []Level{LevelJob, LevelSize, LevelPriority}
	for i := 0; i < 500; i++ {
		var levels []Level
		for n := rng.Intn(4); n > 0; n-- {
			levels = append(levels, nonTerminal[rng.Intn(len(nonTerminal))])
		}
		levels = append(levels, terminal[rng.Intn(len(terminal))])
		p := Policy{Levels: levels}
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip of %q = %v, want %v", p.String(), got, p)
		}
	}
}

func TestCompileJobFair(t *testing.T) {
	jobs := []JobInfo{j("a", "u1", "g1", 4), j("b", "u2", "g1", 1)}
	sh, err := Shares(jobs, JobFair)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sh["a"]-0.5) > 1e-12 || math.Abs(sh["b"]-0.5) > 1e-12 {
		t.Fatalf("job-fair shares = %v, want 0.5 each", sh)
	}
}

func TestCompileSizeFair(t *testing.T) {
	jobs := []JobInfo{j("a", "u1", "g1", 4), j("b", "u2", "g1", 1)}
	sh, _ := Shares(jobs, SizeFair)
	if math.Abs(sh["a"]-0.8) > 1e-12 || math.Abs(sh["b"]-0.2) > 1e-12 {
		t.Fatalf("size-fair shares = %v, want 0.8/0.2", sh)
	}
}

func TestCompilePriorityFair(t *testing.T) {
	jobs := []JobInfo{
		{JobID: "a", UserID: "u", Priority: 3},
		{JobID: "b", UserID: "u", Priority: 1},
	}
	sh, _ := Shares(jobs, PriorityFair)
	if math.Abs(sh["a"]-0.75) > 1e-12 {
		t.Fatalf("priority-fair shares = %v, want a=0.75", sh)
	}
}

// The paper's Figure 3(b): two users, one with two jobs, one with four;
// user-then-job-fair gives the first user's jobs 1/4 each and the second
// user's jobs 1/8 each.
func TestCompileUserThenJobFairFigure3(t *testing.T) {
	jobs := []JobInfo{
		j("j1", "u1", "g", 1), j("j2", "u1", "g", 1),
		j("j3", "u2", "g", 1), j("j4", "u2", "g", 1), j("j5", "u2", "g", 1), j("j6", "u2", "g", 1),
	}
	sh, _ := Shares(jobs, UserThenJobFair)
	for _, id := range []string{"j1", "j2"} {
		if math.Abs(sh[id]-0.25) > 1e-12 {
			t.Fatalf("share(%s) = %g, want 0.25", id, sh[id])
		}
	}
	for _, id := range []string{"j3", "j4", "j5", "j6"} {
		if math.Abs(sh[id]-0.125) > 1e-12 {
			t.Fatalf("share(%s) = %g, want 0.125", id, sh[id])
		}
	}
}

// Figure 9's configuration: user1 jobs of 1 and 2 nodes; user2 jobs of 4
// and 6 nodes. User split 50/50, then size split within user.
func TestCompileUserThenSizeFairFigure9(t *testing.T) {
	jobs := []JobInfo{
		j("j1", "u1", "g", 1), j("j2", "u1", "g", 2),
		j("j3", "u2", "g", 4), j("j4", "u2", "g", 6),
	}
	sh, _ := Shares(jobs, UserThenSizeFair)
	want := map[string]float64{
		"j1": 0.5 * 1.0 / 3, "j2": 0.5 * 2.0 / 3,
		"j3": 0.5 * 4.0 / 10, "j4": 0.5 * 6.0 / 10,
	}
	for id, w := range want {
		if math.Abs(sh[id]-w) > 1e-12 {
			t.Fatalf("share(%s) = %g, want %g", id, sh[id], w)
		}
	}
}

// Figure 10/11's configuration: group1{user1: 1 job}, group2{user2: jobs
// 2,3,2 nodes; user3: 3,2; user4: 1,2}.
func TestCompileGroupUserSizeFairFigure10(t *testing.T) {
	jobs := []JobInfo{
		j("j1", "u1", "g1", 1),
		j("j2", "u2", "g2", 2), j("j3", "u2", "g2", 3), j("j4", "u2", "g2", 2),
		j("j5", "u3", "g2", 3), j("j6", "u3", "g2", 2),
		j("j7", "u4", "g2", 1), j("j8", "u4", "g2", 2),
	}
	sh, _ := Shares(jobs, GroupUserSizeFair)
	if math.Abs(sh["j1"]-0.5) > 1e-12 {
		t.Fatalf("group1's only job should get 50%%, got %g", sh["j1"])
	}
	// user2 gets 1/6 of the total; its jobs split 2:3:2.
	if math.Abs(sh["j3"]-0.5/3*3/7) > 1e-12 {
		t.Fatalf("share(j3) = %g, want %g", sh["j3"], 0.5/3*3/7)
	}
	// Sum of all shares is 1.
	total := 0.0
	for _, v := range sh {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %g", total)
	}
}

// Presence deweighting: a job active on 2 servers counts half on each.
func TestCompilePresenceDeweighting(t *testing.T) {
	jobs := []JobInfo{
		{JobID: "a", UserID: "u1", Nodes: 16, Presence: 2},
		{JobID: "b", UserID: "u2", Nodes: 8, Presence: 1},
	}
	sh, _ := Shares(jobs, SizeFair)
	if math.Abs(sh["a"]-0.5) > 1e-12 || math.Abs(sh["b"]-0.5) > 1e-12 {
		t.Fatalf("presence-deweighted shares = %v, want 0.5/0.5", sh)
	}
}

func TestCompileFIFOAndEmpty(t *testing.T) {
	c, err := Compile(nil, SizeFair)
	if err != nil || len(c.Assignment.Segments()) != 0 {
		t.Fatalf("empty job set: %v %v", c, err)
	}
	c, err = Compile([]JobInfo{j("a", "u", "g", 1)}, FIFO)
	if err != nil || len(c.Assignment.Segments()) != 0 {
		t.Fatalf("FIFO policy: %v %v", c, err)
	}
}

// Every chain matrix of a compiled policy satisfies the structural
// invariants, and the product is a valid assignment summing to 1 —
// property-checked over random job populations.
func TestCompileChainInvariantsProperty(t *testing.T) {
	pols := []Policy{JobFair, SizeFair, UserFair, UserThenSizeFair, GroupUserSizeFair}
	f := func(seedJobs []uint32) bool {
		if len(seedJobs) == 0 {
			return true
		}
		if len(seedJobs) > 40 {
			seedJobs = seedJobs[:40]
		}
		var jobs []JobInfo
		for i, s := range seedJobs {
			jobs = append(jobs, JobInfo{
				JobID:   "job" + itoa(i),
				UserID:  "user" + itoa(int(s%5)),
				GroupID: "grp" + itoa(int(s/5%3)),
				Nodes:   int(s%64) + 1,
			})
		}
		for _, p := range pols {
			c, err := Compile(jobs, p)
			if err != nil {
				return false
			}
			chain, _, merr := c.Matrices()
			if merr != nil {
				return false
			}
			for _, m := range chain {
				if m.Validate() != nil {
					return false
				}
			}
			if c.Assignment.Validate() != nil {
				return false
			}
			total := 0.0
			for _, s := range c.Assignment.Segments() {
				total += s.Width()
			}
			if math.Abs(total-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Composite-policy identity: when every job has a distinct user,
// user-then-job-fair degenerates to job-fair.
func TestUserFairDegeneratesToJobFair(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%10) + 2
		var jobs []JobInfo
		for i := 0; i < count; i++ {
			jobs = append(jobs, j("job"+itoa(i), "user"+itoa(i), "g", i+1))
		}
		a, _ := Shares(jobs, UserFair)
		b, _ := Shares(jobs, JobFair)
		for id := range a {
			if math.Abs(a[id]-b[id]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
