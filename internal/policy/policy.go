// Package policy defines ThemisIO sharing policies and compiles them to
// statistical token assignments (§2.2.2 and §3 of the paper).
//
// A policy is an ordered list of sharing-entity levels. Primitive policies
// have a single level (job-fair, user-fair, size-fair, priority-fair);
// composite policies chain levels, e.g. user-then-size-fair splits I/O
// cycles evenly across users and then, within each user, in proportion to
// job size. System administrators select the policy with a single string
// parameter, parsed by Parse.
package policy

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"themisio/internal/token"
)

// Level is one sharing-entity tier of a policy.
type Level int

const (
	// LevelJob splits evenly across jobs in scope.
	LevelJob Level = iota
	// LevelUser splits evenly across users in scope.
	LevelUser
	// LevelGroup splits evenly across groups in scope.
	LevelGroup
	// LevelSize splits across jobs in scope proportionally to node count.
	LevelSize
	// LevelPriority splits across jobs in scope proportionally to priority.
	LevelPriority
)

// String returns the canonical name of the level.
func (l Level) String() string {
	switch l {
	case LevelJob:
		return "job"
	case LevelUser:
		return "user"
	case LevelGroup:
		return "group"
	case LevelSize:
		return "size"
	case LevelPriority:
		return "priority"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// terminal reports whether the level distributes directly to jobs (and must
// therefore be the last level of a policy).
func (l Level) terminal() bool {
	return l == LevelJob || l == LevelSize || l == LevelPriority
}

// Policy is an ordered chain of sharing levels. The zero value is not
// valid; use Parse or one of the predefined policies.
type Policy struct {
	Levels []Level
	// FIFO marks the degenerate no-fairness policy used as the baseline.
	FIFO bool
}

// Predefined policies matching the paper's terminology.
var (
	FIFO              = Policy{FIFO: true}
	JobFair           = Policy{Levels: []Level{LevelJob}}
	UserFair          = Policy{Levels: []Level{LevelUser, LevelJob}}
	SizeFair          = Policy{Levels: []Level{LevelSize}}
	PriorityFair      = Policy{Levels: []Level{LevelPriority}}
	UserThenJobFair   = Policy{Levels: []Level{LevelUser, LevelJob}}
	UserThenSizeFair  = Policy{Levels: []Level{LevelUser, LevelSize}}
	GroupUserSizeFair = Policy{Levels: []Level{LevelGroup, LevelUser, LevelSize}}
)

// Equal reports whether two policies are the same chain (Policy holds a
// slice, so == does not compile; the hot-swap path and the Parse/String
// round-trip property both need value equality).
func (p Policy) Equal(q Policy) bool {
	return p.FIFO == q.FIFO && slices.Equal(p.Levels, q.Levels)
}

// String renders the policy in the paper's notation, e.g.
// "group-then-user-then-size-fair".
func (p Policy) String() string {
	if p.FIFO {
		return "fifo"
	}
	names := make([]string, len(p.Levels))
	for i, l := range p.Levels {
		names[i] = l.String()
	}
	return strings.Join(names, "-then-") + "-fair"
}

// Parse parses a policy string. Accepted forms:
//
//	"fifo"
//	"job-fair", "user-fair", "size-fair", "priority-fair"
//	"user-then-size-fair", "group-then-user-then-size-fair"
//	"group-user-size-fair" (the paper's abbreviated composite form)
//
// Non-terminal levels (user, group) are implicitly completed with a final
// job level, matching the paper: "user-fair" splits across users and then
// evenly across each user's jobs.
func Parse(s string) (Policy, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return Policy{}, fmt.Errorf("policy: empty policy string")
	}
	if s == "fifo" {
		return FIFO, nil
	}
	base := strings.TrimSuffix(s, "-fair")
	if base == s {
		return Policy{}, fmt.Errorf("policy: %q does not end in -fair", s)
	}
	base = strings.ReplaceAll(base, "-then-", "-")
	parts := strings.Split(base, "-")
	var levels []Level
	for i, part := range parts {
		var l Level
		switch part {
		case "job":
			l = LevelJob
		case "user":
			l = LevelUser
		case "group":
			l = LevelGroup
		case "size":
			l = LevelSize
		case "priority":
			l = LevelPriority
		default:
			return Policy{}, fmt.Errorf("policy: unknown level %q in %q", part, s)
		}
		if l.terminal() && i != len(parts)-1 {
			return Policy{}, fmt.Errorf("policy: level %q must be last in %q", part, s)
		}
		levels = append(levels, l)
	}
	if !levels[len(levels)-1].terminal() {
		levels = append(levels, LevelJob)
	}
	return Policy{Levels: levels}, nil
}

// JobInfo is the job metadata embedded in every I/O request by the client
// (§4.1): everything the controller needs to evaluate any policy.
type JobInfo struct {
	JobID    string
	UserID   string
	GroupID  string
	Nodes    int // job size in compute nodes
	Priority int // scheduler priority; used by priority-fair
	// Presence is the number of burst-buffer servers on which the job is
	// I/O-active, learned from the λ-interval job-table all-gather. A job
	// with files striped over k servers draws its fair share from k pools,
	// so each server deweights it by 1/k — this is the "adding token
	// counts" step in Figure 5 that restores *global* fairness. Zero means
	// unknown and is treated as 1.
	Presence int
}

// Key returns the identity key of the job.
func (j JobInfo) Key() string { return j.JobID }

// StageOutUser is the user identity of synthetic background jobs (the
// drain engine's stage-out traffic). It is an ordinary user as far as
// policy compilation is concerned: under user-fair it is one more user,
// under size-fair a Nodes-weighted job — the sharing policy governs
// background write-back bandwidth exactly like any contending job.
const StageOutUser = "_system"

// StageOutJob returns the synthetic job identity under which a server's
// drain engine submits stage-out traffic to the token scheduler. Each
// server drains under its own job id, so presence deweighting never
// splits a drain job across servers.
func StageOutJob(server string) JobInfo {
	return JobInfo{
		JobID:   "stage-out@" + server,
		UserID:  StageOutUser,
		GroupID: StageOutUser,
		Nodes:   1,
	}
}

// RebalanceJob returns the synthetic job identity under which a
// server's migration coordinator issues join-time stripe-rebalance
// traffic (stripe fetches and installs on its peers). Like the drain
// job it is an ordinary 1-node job of the _system user, so the
// compiled sharing policy governs migration-vs-foreground bandwidth
// with no reserved lane and no starvation.
func RebalanceJob(server string) JobInfo {
	return JobInfo{
		JobID:   "rebalance@" + server,
		UserID:  StageOutUser,
		GroupID: StageOutUser,
		Nodes:   1,
	}
}

// IsStageOut reports whether the job is a synthetic background
// identity — a drain engine's stage-out job or a rebalance
// coordinator's migration job (metering and operator tools single
// these out).
func (j JobInfo) IsStageOut() bool { return j.UserID == StageOutUser }

// weight returns the job's weight under a terminal level, deweighted by
// the job's server presence so that multi-server jobs receive a globally
// (not per-server) fair share.
func (j JobInfo) weight(l Level) float64 {
	w := 1.0
	switch l {
	case LevelSize:
		if j.Nodes > 0 {
			w = float64(j.Nodes)
		}
	case LevelPriority:
		if j.Priority > 0 {
			w = float64(j.Priority)
		}
	}
	if j.Presence > 1 {
		w /= float64(j.Presence)
	}
	return w
}

// scopeKey returns the identity of the scope a job belongs to at a
// non-terminal level.
func (j JobInfo) scopeKey(l Level) string {
	switch l {
	case LevelUser:
		return j.UserID
	case LevelGroup:
		return j.GroupID
	}
	return j.JobID
}

// Compiled is the result of compiling a policy against a set of active
// jobs: the segment assignment plus the share tree it was derived from.
// The transition-matrix chain the paper defines is no longer built
// eagerly — at 100k jobs the U×J chain product is prohibitive and the
// tree walk computes the identical values — but remains available for
// inspection and testing via Matrices.
type Compiled struct {
	Policy     Policy
	Assignment *token.Assignment
	tree       *shareTree
}

// Share returns the job's compiled token share, 0 if absent. Lookups
// resolve through the share tree, so they work identically for full
// and delta compiles (the latter skip the assignment's index map).
func (c *Compiled) Share(job string) float64 {
	if c == nil || c.tree == nil {
		return 0
	}
	return c.tree.share(job)
}

// JobCount returns the number of jobs in the compiled share tree.
func (c *Compiled) JobCount() int {
	if c == nil || c.tree == nil {
		return 0
	}
	c.tree.mu.RLock()
	defer c.tree.mu.RUnlock()
	return len(c.tree.index)
}

// Matrices materialises Equation 1's transition-matrix chain and its
// product for the compiled job set — the inspection/testing view the
// eager compiler used to carry. Returns nils for FIFO or an empty set.
func (c *Compiled) Matrices() ([]*token.Matrix, *token.Matrix, error) {
	if c == nil || c.tree == nil {
		return nil, nil, nil
	}
	c.tree.mu.RLock()
	jobs := make([]JobInfo, 0, len(c.tree.index))
	for _, lf := range c.tree.index {
		jobs = append(jobs, lf.info)
	}
	c.tree.mu.RUnlock()
	if len(jobs) == 0 {
		return nil, nil, nil
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].JobID < jobs[k].JobID })
	scopes := []scope{{key: "root", jobs: jobs}}
	var chain []*token.Matrix
	for li, level := range c.Policy.Levels {
		last := li == len(c.Policy.Levels)-1
		var m *token.Matrix
		var next []scope
		if last {
			m, next = terminalMatrix(scopes, level)
		} else {
			m, next = partitionMatrix(scopes, level)
		}
		if err := m.Validate(); err != nil {
			return nil, nil, fmt.Errorf("policy: level %d (%s): %w", li, level, err)
		}
		chain = append(chain, m)
		scopes = next
	}
	prod, err := token.ChainProduct(chain)
	if err != nil {
		return nil, nil, err
	}
	return chain, prod, nil
}

// scope is an internal node of the sharing tree during matrix
// materialisation.
type scope struct {
	key  string
	jobs []JobInfo
}

// Compile evaluates Equation 1 of the paper for the policy over the
// given jobs, producing the statistical token assignment. Jobs are
// sorted by JobID for deterministic segment layout. Compiling a FIFO
// policy or an empty job set returns an assignment with no segments.
// The result carries the share tree Recompile patches incrementally.
func Compile(jobs []JobInfo, p Policy) (*Compiled, error) {
	c := &Compiled{Policy: p}
	if p.FIFO {
		a, err := token.FromWeights(nil, nil)
		if err != nil {
			return nil, err
		}
		c.Assignment = a
		return c, nil
	}
	sorted := make([]JobInfo, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].JobID < sorted[k].JobID })
	tr := newShareTree(p)
	for _, j := range sorted {
		tr.insertLocked(j)
	}
	a, err := tr.assignmentLocked(true)
	if err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	c.Assignment, c.tree = a, tr
	return c, nil
}

// partitionMatrix builds the transition matrix for a non-terminal level:
// each row is a parent scope, each column a child scope (a distinct user or
// group within the parent), with equal shares across children.
func partitionMatrix(scopes []scope, level Level) (*token.Matrix, []scope) {
	var next []scope
	type cell struct{ row, col int }
	var cells []cell
	for r, sc := range scopes {
		order := []string{}
		byKey := map[string][]JobInfo{}
		for _, j := range sc.jobs {
			k := j.scopeKey(level)
			if _, ok := byKey[k]; !ok {
				order = append(order, k)
			}
			byKey[k] = append(byKey[k], j)
		}
		sort.Strings(order)
		for _, k := range order {
			col := len(next)
			next = append(next, scope{key: sc.key + "/" + k, jobs: byKey[k]})
			cells = append(cells, cell{row: r, col: col})
		}
	}
	m := token.NewMatrix(len(scopes), len(next))
	for r, sc := range scopes {
		m.RowLabels = append(m.RowLabels, sc.key)
		_ = r
	}
	for _, sc := range next {
		m.ColLabels = append(m.ColLabels, sc.key)
	}
	// Count children per row, then assign the equal share.
	childCount := make([]int, len(scopes))
	for _, c := range cells {
		childCount[c.row]++
	}
	for _, c := range cells {
		m.Set(c.row, c.col, 1/float64(childCount[c.row]))
	}
	return m, next
}

// terminalMatrix builds the final transition matrix: each row is a scope,
// each column a job, with shares proportional to the job's weight under the
// terminal level (1 for job-fair, node count for size-fair, priority for
// priority-fair).
func terminalMatrix(scopes []scope, level Level) (*token.Matrix, []scope) {
	totalJobs := 0
	for _, sc := range scopes {
		totalJobs += len(sc.jobs)
	}
	m := token.NewMatrix(len(scopes), totalJobs)
	col := 0
	for r, sc := range scopes {
		m.RowLabels = append(m.RowLabels, sc.key)
		sum := 0.0
		for _, j := range sc.jobs {
			sum += j.weight(level)
		}
		for _, j := range sc.jobs {
			m.ColLabels = append(m.ColLabels, j.JobID)
			w := j.weight(level)
			if sum > 0 {
				m.Set(r, col, w/sum)
			}
			col++
		}
		_ = r
	}
	return m, nil
}

// Shares is a convenience wrapper returning the per-job share map for a
// policy over a job set.
func Shares(jobs []JobInfo, p Policy) (map[string]float64, error) {
	c, err := Compile(jobs, p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(jobs))
	for _, j := range jobs {
		out[j.JobID] = c.Share(j.JobID)
	}
	return out, nil
}
