// The share tree: policy compilation restructured for O(churn) delta
// recompiles at 100k+ jobs.
//
// Compile builds a tree mirroring the policy's level chain — one scope
// node per distinct user/group along the non-terminal levels, one leaf
// per job under its terminal scope — and derives the token assignment
// from a single in-order walk. Recompile patches only the scopes a
// delta touches (structural sharing: untouched subtrees are reused
// pointer-identical) and re-walks. The walk evaluates exactly the
// float expressions Equation 1's matrix chain would: a scope's factor
// is the left-associated product of 1/children along its path and a
// leaf's weight is factor·(w/Σw), which is bitwise what ChainProduct
// computes for a single-parent-per-column chain. Delta-compiled shares
// are therefore bit-identical to a from-scratch Compile (pinned by
// TestRecompileMatchesCompileProperty), and the matrices themselves
// are only materialised on demand via Compiled.Matrices.
package policy

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"themisio/internal/token"
)

// Delta describes the job-set change between two job-table generations:
// jobs that joined the active set, jobs whose policy-relevant attributes
// (nodes, user, group, priority, presence) changed, and jobs that left.
// jobtable produces deltas (DeltaSince) and Recompile consumes them.
// A well-formed delta names each job in at most one of the three lists
// (DeltaSince squashes multi-generation histories down to that form).
type Delta struct {
	Added   []JobInfo
	Updated []JobInfo
	Removed []string
}

// Empty reports whether the delta carries no change.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Updated) == 0 && len(d.Removed) == 0
}

// Size returns the number of individual job changes in the delta.
func (d Delta) Size() int { return len(d.Added) + len(d.Updated) + len(d.Removed) }

// jobLeaf is one job's node in the share tree. The job's unnormalised
// token weight (the factor-chain probability before FromBlocks'
// division by the weight total) is published atomically so Share can
// answer lock-free once the leaf is found; a Compiled superseded by a
// later Recompile of the same lineage answers Share with the lineage's
// latest weights (the epoch consumers — scheduler, ledger, CLI — only
// ever read the newest).
type jobLeaf struct {
	info  JobInfo
	share atomic.Uint64 // math.Float64bits of the unnormalised weight
}

// scopeNode is one sharing scope: a child holder at non-terminal
// levels (children, sorted by key), a leaf holder at the terminal
// level (leaves, sorted by JobID).
type scopeNode struct {
	key      string
	children []*scopeNode
	childIdx map[string]*scopeNode
	leaves   []*jobLeaf

	// block caches the terminal scope's token block, valid while the
	// scope's leaf set is untouched (nil after an insert/remove) and its
	// path factor is unchanged (blockFactor — a scope split/merge above
	// re-derives it). This is the structural sharing that makes
	// Recompile O(churn): the next assignment reuses a clean scope's
	// block pointer-identical, and only dirty scopes re-read their
	// leaves and allocate a fresh block (blocks are immutable once
	// published — earlier epochs keep referencing the old one).
	block       *token.Block
	blockFactor float64
}

// shareTree is the mutable compilation state shared across the epochs
// of one policy lineage. All mutation happens under mu on the
// controller; Share takes the read lock only to resolve the leaf.
type shareTree struct {
	pol   Policy
	mu    sync.RWMutex
	root  *scopeNode
	index map[string]*jobLeaf

	// totalBits is the assignment's weight total (the FromBlocks
	// normaliser: Σ block.Sum in walk order) at the last build; Share
	// divides the leaf's raw weight by it, evaluating the identical
	// float expression on the full-compile and delta paths.
	totalBits atomic.Uint64
}

func newShareTree(pol Policy) *shareTree {
	return &shareTree{pol: pol, root: &scopeNode{key: "root"}, index: make(map[string]*jobLeaf)}
}

// insertLocked adds the job to its scope chain, creating scopes as
// needed; an existing leaf for the same JobID is replaced (attribute
// change or scope move).
func (t *shareTree) insertLocked(j JobInfo) {
	if _, ok := t.index[j.JobID]; ok {
		t.removeLocked(j.JobID)
	}
	n := t.root
	for _, l := range t.pol.Levels[:len(t.pol.Levels)-1] {
		k := j.scopeKey(l)
		c, ok := n.childIdx[k]
		if !ok {
			c = &scopeNode{key: k}
			if n.childIdx == nil {
				n.childIdx = make(map[string]*scopeNode)
			}
			n.childIdx[k] = c
			i := sort.Search(len(n.children), func(i int) bool { return n.children[i].key >= k })
			n.children = append(n.children, nil)
			copy(n.children[i+1:], n.children[i:])
			n.children[i] = c
		}
		n = c
	}
	leaf := &jobLeaf{info: j}
	i := sort.Search(len(n.leaves), func(i int) bool { return n.leaves[i].info.JobID >= j.JobID })
	n.leaves = append(n.leaves, nil)
	copy(n.leaves[i+1:], n.leaves[i:])
	n.leaves[i] = leaf
	n.block = nil
	t.index[j.JobID] = leaf
}

// removeLocked deletes the job's leaf and cascades emptied scopes out
// of the tree. The scope path comes from the leaf's own recorded info,
// so a remove always finds the chain the job was inserted under.
func (t *shareTree) removeLocked(jobID string) {
	leaf, ok := t.index[jobID]
	if !ok {
		return
	}
	info := leaf.info
	path := make([]*scopeNode, 1, len(t.pol.Levels))
	path[0] = t.root
	n := t.root
	for _, l := range t.pol.Levels[:len(t.pol.Levels)-1] {
		c := n.childIdx[info.scopeKey(l)]
		if c == nil {
			delete(t.index, jobID)
			return
		}
		path = append(path, c)
		n = c
	}
	i := sort.Search(len(n.leaves), func(i int) bool { return n.leaves[i].info.JobID >= jobID })
	if i < len(n.leaves) && n.leaves[i].info.JobID == jobID {
		n.leaves = append(n.leaves[:i], n.leaves[i+1:]...)
	}
	n.block = nil
	delete(t.index, jobID)
	for d := len(path) - 1; d >= 1; d-- {
		c := path[d]
		if len(c.leaves) > 0 || len(c.children) > 0 {
			break
		}
		p := path[d-1]
		delete(p.childIdx, c.key)
		i := sort.Search(len(p.children), func(i int) bool { return p.children[i].key >= c.key })
		if i < len(p.children) && p.children[i] == c {
			p.children = append(p.children[:i], p.children[i+1:]...)
		}
	}
}

// assignmentLocked derives the token assignment from the tree: an
// in-order walk (children by key, leaves by JobID — the exact column
// order of the matrix chain) accumulating each path's factor, emitting
// one token block per terminal scope. Clean scopes contribute their
// cached block pointer-identical — the structural sharing that makes a
// delta recompile O(churn + scopes): only scopes whose leaves or path
// factor changed re-read their leaves, allocate a fresh immutable
// block, and re-publish their jobs' raw weights for Share. withIndex
// selects whether the assignment carries the job→share map (full
// compiles keep it; the delta path skips the O(n) map rebuild because
// incremental epochs answer Share from this tree).
func (t *shareTree) assignmentLocked(withIndex bool) (*token.Assignment, error) {
	n := len(t.index)
	blocks := make([]*token.Block, 0, 64)
	terminal := t.pol.Levels[len(t.pol.Levels)-1]
	var walkErr error
	var walk func(s *scopeNode, factor float64, depth int)
	walk = func(s *scopeNode, factor float64, depth int) {
		if depth == len(t.pol.Levels)-1 {
			if s.block == nil || s.blockFactor != factor {
				sum := 0.0
				for _, lf := range s.leaves {
					sum += lf.info.weight(terminal)
				}
				jobs := make([]string, len(s.leaves))
				ws := make([]float64, len(s.leaves))
				for i, lf := range s.leaves {
					w := 0.0
					if sum > 0 {
						w = factor * (lf.info.weight(terminal) / sum)
					}
					jobs[i] = lf.info.JobID
					ws[i] = w
					lf.share.Store(math.Float64bits(w))
				}
				b, err := token.NewBlock(jobs, ws)
				if err != nil {
					if walkErr == nil {
						walkErr = err
					}
					return
				}
				s.block, s.blockFactor = b, factor
			}
			blocks = append(blocks, s.block)
			return
		}
		f := factor * (1 / float64(len(s.children)))
		for _, c := range s.children {
			walk(c, f, depth+1)
		}
	}
	if n > 0 {
		walk(t.root, 1.0, 0)
	}
	if walkErr != nil {
		return nil, walkErr
	}
	a, err := token.FromBlocks(blocks, withIndex)
	if err != nil {
		return nil, err
	}
	// FromBlocks' normaliser (Σ block.Sum in walk order) — Share divides
	// by the same value, so every compile path evaluates the identical
	// float expression.
	t.totalBits.Store(math.Float64bits(a.Total()))
	return a, nil
}

// share answers Compiled.Share from the tree: the leaf's published raw
// weight divided by the assignment's weight total — the same
// normalisation FromBlocks applies, so the full-compile and delta
// paths return bitwise-identical shares.
func (t *shareTree) share(job string) float64 {
	t.mu.RLock()
	lf, ok := t.index[job]
	t.mu.RUnlock()
	if !ok {
		return 0
	}
	total := math.Float64frombits(t.totalBits.Load())
	if total <= 0 {
		return 0
	}
	return math.Float64frombits(lf.share.Load()) / total
}

// Recompile derives a new Compiled from prev by applying the delta to
// its share tree and re-walking: O(delta·log n) tree surgery plus one
// O(n) sort-free, map-free normalisation pass, against the full
// Compile's sort + scope partitioning + index build. The returned
// Compiled shares prev's tree (same lineage). Callers that may hold a
// FIFO or nil base must fall back to Compile on error.
func Recompile(prev *Compiled, d Delta) (*Compiled, error) {
	if prev == nil || prev.tree == nil {
		return nil, fmt.Errorf("policy: recompile without a share tree (nil or FIFO base)")
	}
	t := prev.tree
	t.mu.Lock()
	for _, id := range d.Removed {
		t.removeLocked(id)
	}
	for _, j := range d.Updated {
		t.insertLocked(j)
	}
	for _, j := range d.Added {
		t.insertLocked(j)
	}
	a, err := t.assignmentLocked(false)
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &Compiled{Policy: prev.Policy, Assignment: a, tree: t}, nil
}
