package core

import (
	"testing"

	"themisio/internal/policy"
	"themisio/internal/sched"
)

// ApplyDelta publishes the same shares as a full SetJobs and counts as
// a delta compile; the unsafe shapes (no epoch yet, policy changed
// underneath) fall back to full compilation transparently.
func TestApplyDeltaCompilesIncrementally(t *testing.T) {
	th := New(policy.UserThenSizeFair, 1)

	// No epoch yet → full-compile fallback.
	js := jobs("a", "b")
	th.ApplyDelta(js, policy.Delta{Added: js})
	if th.CompilesFull() != 1 || th.CompilesDelta() != 0 {
		t.Fatalf("bootstrap: full=%d delta=%d, want 1/0", th.CompilesFull(), th.CompilesDelta())
	}

	// Incremental add.
	js = jobs("a", "b", "c")
	th.ApplyDelta(js, policy.Delta{Added: jobs("c")})
	if th.CompilesFull() != 1 || th.CompilesDelta() != 1 {
		t.Fatalf("delta add: full=%d delta=%d, want 1/1", th.CompilesFull(), th.CompilesDelta())
	}
	ref := New(policy.UserThenSizeFair, 1)
	ref.SetJobs(js)
	for _, j := range js {
		if got, want := th.Share(j.JobID), ref.Share(j.JobID); got != want {
			t.Fatalf("share(%s) = %v via delta, %v via full", j.JobID, got, want)
		}
	}
	if th.EpochSeq() != 2 {
		t.Fatalf("epoch seq = %d, want 2", th.EpochSeq())
	}

	// Job-count mismatch (bogus delta) → full-compile fallback.
	js = jobs("a", "b", "c", "d")
	th.ApplyDelta(js, policy.Delta{})
	if th.CompilesFull() != 2 {
		t.Fatalf("mismatched delta must full-compile: full=%d", th.CompilesFull())
	}
	if got, want := th.Share("d"), 0.25; got != want {
		t.Fatalf("share(d) = %v, want %v", got, want)
	}

	// SetPolicy republishes under the new policy, so a later empty
	// delta stays on the incremental path against the fresh epoch.
	th.SetPolicy(policy.SizeFair)
	full, delta := th.CompilesFull(), th.CompilesDelta()
	th.ApplyDelta(js, policy.Delta{})
	if th.CompilesFull() != full || th.CompilesDelta() != delta+1 {
		t.Fatalf("post-SetPolicy ApplyDelta: full=%d delta=%d, want %d/%d",
			th.CompilesFull(), th.CompilesDelta(), full, delta+1)
	}
	if got := th.Compiles(); got != th.CompilesFull()+th.CompilesDelta() {
		t.Fatalf("Compiles() = %d, want full+delta = %d", got, th.CompilesFull()+th.CompilesDelta())
	}
}

// ServedBytesDelta drains only jobs that serviced bytes since the last
// drain, and deltas sum to the cumulative counters.
func TestServedBytesDelta(t *testing.T) {
	th := New(policy.JobFair, 1)
	th.SetJobs(jobs("a", "b", "c"))
	th.Push(req("a", 100))
	th.Push(req("b", 50))
	for th.Pop(0, nil) != nil {
	}
	d := th.ServedBytesDelta()
	if len(d) != 2 || d["a"] != 100 || d["b"] != 50 {
		t.Fatalf("first drain = %v, want a:100 b:50", d)
	}
	// Idle window: nothing dirty, empty drain.
	if d := th.ServedBytesDelta(); len(d) != 0 {
		t.Fatalf("idle drain = %v, want empty", d)
	}
	// Next window only reports the new traffic.
	th.Push(req("a", 7))
	if r := th.Pop(0, nil); r == nil {
		t.Fatal("pop failed")
	}
	d = th.ServedBytesDelta()
	if len(d) != 1 || d["a"] != 7 {
		t.Fatalf("second drain = %v, want a:7", d)
	}
	if got := th.ServedBytes()["a"]; got != 107 {
		t.Fatalf("cumulative a = %d, want 107", got)
	}
	// Metadata ops charge their nominal cost too.
	th.Push(&sched.Request{Job: policy.JobInfo{JobID: "c"}, Op: sched.OpStat})
	if r := th.Pop(0, nil); r == nil {
		t.Fatal("meta pop failed")
	}
	if d := th.ServedBytesDelta(); d["c"] == 0 {
		t.Fatalf("meta drain = %v, want nonzero c", d)
	}
}
