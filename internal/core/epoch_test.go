package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"themisio/internal/policy"
	"themisio/internal/sched"
)

// The data path performs zero policy work: only SetJobs/SetPolicy
// compile, and each publication is a new epoch.
func TestCompilesOnlyOnPublish(t *testing.T) {
	th := New(policy.SizeFair, 1)
	if th.Compiles() != 0 || th.EpochSeq() != 0 {
		t.Fatalf("fresh scheduler: compiles=%d epoch=%d", th.Compiles(), th.EpochSeq())
	}
	th.SetJobs(jobs("a", "b"))
	if th.Compiles() != 1 || th.EpochSeq() != 1 {
		t.Fatalf("after SetJobs: compiles=%d epoch=%d", th.Compiles(), th.EpochSeq())
	}
	for i := 0; i < 1000; i++ {
		th.Push(req("a", 1))
		th.Pop(0, nil)
	}
	if th.Compiles() != 1 {
		t.Fatalf("push/pop traffic compiled policy %d times", th.Compiles()-1)
	}
	th.SetPolicy(policy.JobFair)
	if th.Compiles() != 2 || th.EpochSeq() != 2 {
		t.Fatalf("after SetPolicy: compiles=%d epoch=%d", th.Compiles(), th.EpochSeq())
	}
}

// Conservation under contention: concurrent pushers and poppers across
// many jobs neither lose nor duplicate a request, and per-job FIFO order
// survives. Run with -race to exercise the lock-striped queues and the
// atomic epoch.
func TestConcurrentConservation(t *testing.T) {
	const (
		pushers = 8
		poppers = 4
		perJob  = 500
	)
	th := New(policy.SizeFair, 42)
	var infos []policy.JobInfo
	for i := 0; i < pushers; i++ {
		infos = append(infos, policy.JobInfo{
			JobID: fmt.Sprintf("job-%d", i), UserID: "u", Nodes: i + 1,
		})
	}
	th.SetJobs(infos)

	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perJob; i++ {
				th.Push(&sched.Request{Job: infos[p], Op: sched.OpWrite, Bytes: int64(i)})
			}
		}(p)
	}

	// Poppers record (job, Bytes) sequences; Bytes encodes push order.
	var popped atomic.Int64
	seen := make([]map[string][]int64, poppers)
	total := int64(pushers * perJob)
	for w := 0; w < poppers; w++ {
		seen[w] = map[string][]int64{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for popped.Load() < total {
				r := th.Pop(0, nil)
				if r == nil {
					continue
				}
				popped.Add(1)
				seen[w][r.Job.JobID] = append(seen[w][r.Job.JobID], r.Bytes)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("drain stalled: %d/%d popped, %d pending", popped.Load(), total, th.Pending())
	}
	if th.Pending() != 0 {
		t.Fatalf("pending = %d after full drain", th.Pending())
	}
	// Merge and verify: every request exactly once; each popper's view of
	// one job is increasing (a single queue pop is ordered, so interleaved
	// order across workers must still be consistent per worker).
	counts := map[string]int{}
	for w := range seen {
		for job, bs := range seen[w] {
			counts[job] += len(bs)
		}
	}
	for _, in := range infos {
		if counts[in.JobID] != perJob {
			t.Fatalf("job %s served %d times, want %d", in.JobID, counts[in.JobID], perJob)
		}
	}
	served := th.Served()
	for _, in := range infos {
		if served[in.JobID] != perJob {
			t.Fatalf("Served()[%s] = %d, want %d", in.JobID, served[in.JobID], perJob)
		}
	}
}

// Epoch swaps race safely against the data path (run with -race): a
// controller goroutine republishing epochs and strict-mode flips must
// never wedge or corrupt concurrent push/pop traffic.
func TestEpochSwapUnderTraffic(t *testing.T) {
	th := New(policy.SizeFair, 7)
	th.SetJobs(jobs("a", "b"))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%2 == 0 {
				th.SetJobs(jobs("a", "b", "c"))
			} else {
				th.SetJobs(jobs("a", "b"))
			}
			th.Share("a")
			th.Assignment()
		}
	}()
	var served atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for served.Load() < 20000 {
				th.Push(req("a", 1))
				if th.Pop(0, nil) != nil {
					served.Add(1)
				}
			}
		}()
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	defer wg.Wait()
	defer close(stop)
	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-wgDone:
			return
		case <-deadline:
			t.Fatalf("traffic wedged: served=%d pending=%d", served.Load(), th.Pending())
		default:
			if served.Load() >= 20000 {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// PopBatch fills up to len(out) requests and preserves per-job FIFO.
func TestPopBatch(t *testing.T) {
	th := New(policy.JobFair, 1)
	th.SetJobs(jobs("a"))
	for i := 0; i < 20; i++ {
		th.Push(req("a", int64(i)))
	}
	out := make([]*sched.Request, 8)
	want := int64(0)
	for {
		n := th.PopBatch(0, nil, out)
		if n == 0 {
			break
		}
		for _, r := range out[:n] {
			if r.Bytes != want {
				t.Fatalf("batch order: got %d, want %d", r.Bytes, want)
			}
			want++
		}
	}
	if want != 20 || th.Pending() != 0 {
		t.Fatalf("drained %d of 20, pending=%d", want, th.Pending())
	}
}

// The fallback path (no compiled segments — e.g. the degenerate FIFO
// policy) serves the oldest-created queue first, across shards, exactly
// as the pre-striping implementation did.
func TestFallbackServesOldestQueueFirst(t *testing.T) {
	th := New(policy.FIFO, 1)
	th.SetJobs(jobs("z-late", "a-early")) // FIFO compiles zero segments
	// Queue creation order is push order, regardless of id or shard hash.
	th.Push(req("z-late", 1))
	th.Push(req("a-early", 2))
	th.Push(req("z-late", 3))
	th.Push(req("a-early", 4))
	var got []string
	for th.Pending() > 0 {
		got = append(got, th.Pop(0, nil).Job.JobID)
	}
	want := []string{"z-late", "z-late", "a-early", "a-early"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback order = %v, want oldest queue drained first %v", got, want)
		}
	}
}
