package core

import (
	"testing"

	"themisio/internal/policy"
)

// Strict mode (the opportunity-fairness ablation) forfeits draws that
// land on jobs without work, wasting cycles the production design
// reclaims.
func TestStrictModeWastesIdleShares(t *testing.T) {
	th := New(policy.JobFair, 11)
	th.SetStrict(true)
	th.SetJobs(jobs("busy", "idle"))
	for i := 0; i < 2000; i++ {
		th.Push(req("busy", 1))
	}
	served, misses := 0, 0
	for i := 0; i < 4000 && th.Pending() > 0; i++ {
		if th.Pop(0, nil) != nil {
			served++
		} else {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("strict mode should forfeit draws landing on the idle job")
	}
	if th.Wasted() != int64(misses) {
		t.Fatalf("Wasted() = %d, observed %d", th.Wasted(), misses)
	}
	// Roughly half the draws land on the idle job's segment.
	frac := float64(misses) / float64(served+misses)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("wasted fraction = %.2f, want ~0.5 under job-fair", frac)
	}
	// Switching back to opportunistic serves everything.
	th.SetStrict(false)
	for th.Pending() > 0 {
		if th.Pop(0, nil) == nil {
			t.Fatal("opportunistic pop returned nil with backlog")
		}
	}
}

// In strict mode a saturated single job still gets its full share (its
// segment covers all of [0,1)).
func TestStrictModeSingleJobUnaffected(t *testing.T) {
	th := New(policy.SizeFair, 3)
	th.SetStrict(true)
	th.SetJobs(jobs("only"))
	for i := 0; i < 100; i++ {
		th.Push(req("only", 1))
	}
	for i := 0; i < 100; i++ {
		if th.Pop(0, nil) == nil {
			t.Fatal("lone job should never miss")
		}
	}
}
