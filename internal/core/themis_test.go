package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"themisio/internal/policy"
	"themisio/internal/sched"
)

func req(job string, bytes int64) *sched.Request {
	return &sched.Request{
		Job:   policy.JobInfo{JobID: job, UserID: "u-" + job, Nodes: 1},
		Op:    sched.OpWrite,
		Bytes: bytes,
	}
}

func jobs(ids ...string) []policy.JobInfo {
	var out []policy.JobInfo
	for _, id := range ids {
		out = append(out, policy.JobInfo{JobID: id, UserID: "u-" + id, Nodes: 1})
	}
	return out
}

func TestPopEmpty(t *testing.T) {
	th := New(policy.JobFair, 1)
	if th.Pop(0, nil) != nil {
		t.Fatal("empty pop should be nil")
	}
}

func TestPerJobFIFOOrder(t *testing.T) {
	th := New(policy.JobFair, 1)
	th.SetJobs(jobs("a"))
	for i := 0; i < 50; i++ {
		th.Push(req("a", int64(i)))
	}
	for i := 0; i < 50; i++ {
		r := th.Pop(0, nil)
		if r == nil || r.Bytes != int64(i) {
			t.Fatalf("pop %d: %+v — per-job order must be FIFO", i, r)
		}
	}
}

// Job-fair: service frequencies converge to equal shares when both jobs
// stay backlogged.
func TestJobFairFrequencies(t *testing.T) {
	th := New(policy.JobFair, 42)
	th.SetJobs(jobs("a", "b"))
	const n = 20000
	for i := 0; i < n; i++ {
		th.Push(req("a", 1))
		th.Push(req("b", 1))
	}
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[th.Pop(0, nil).Job.JobID]++
	}
	fa := float64(counts["a"]) / n
	if math.Abs(fa-0.5) > 0.02 {
		t.Fatalf("job a frequency = %.3f, want 0.5", fa)
	}
}

// Size-fair 4:1, verified via Served counters.
func TestSizeFairFrequencies(t *testing.T) {
	th := New(policy.SizeFair, 42)
	th.SetJobs([]policy.JobInfo{
		{JobID: "big", UserID: "u1", Nodes: 4},
		{JobID: "small", UserID: "u2", Nodes: 1},
	})
	const n = 20000
	for i := 0; i < n; i++ {
		th.Push(req("big", 1))
		th.Push(req("small", 1))
	}
	for i := 0; i < n; i++ {
		th.Pop(0, nil)
	}
	served := th.Served()
	ratio := float64(served["big"]) / float64(served["small"])
	if ratio < 3.6 || ratio > 4.4 {
		t.Fatalf("size-fair service ratio = %.2f, want ~4", ratio)
	}
}

// Opportunity fairness: a job with no backlog forfeits its draws; the
// backlogged job gets every cycle, and nothing is ever left idle while
// work is pending.
func TestWorkConserving(t *testing.T) {
	th := New(policy.JobFair, 7)
	th.SetJobs(jobs("a", "b"))
	for i := 0; i < 1000; i++ {
		th.Push(req("a", 1))
	}
	for i := 0; i < 1000; i++ {
		r := th.Pop(0, nil)
		if r == nil {
			t.Fatalf("pop %d returned nil with %d pending — not work-conserving", i, th.Pending())
		}
		if r.Job.JobID != "a" {
			t.Fatal("served a job with no backlog")
		}
	}
}

// A job pushing requests before the controller knows it is still served
// (from leftover cycles), never starved.
func TestUnknownJobNotStarved(t *testing.T) {
	th := New(policy.JobFair, 9)
	th.SetJobs(jobs("known"))
	th.Push(req("stranger", 1))
	// Known job has no backlog; the stranger must be served.
	r := th.Pop(0, nil)
	if r == nil || r.Job.JobID != "stranger" {
		t.Fatalf("stranger not served: %+v", r)
	}
	// Even with the known job backlogged, the stranger drains eventually.
	th.Push(req("stranger", 1))
	for i := 0; i < 100; i++ {
		th.Push(req("known", 1))
	}
	servedStranger := false
	for th.Pending() > 0 {
		if r := th.Pop(0, nil); r != nil && r.Job.JobID == "stranger" {
			servedStranger = true
		}
	}
	if !servedStranger {
		t.Fatal("stranger starved")
	}
}

// SetPolicy recompiles shares on the fly.
func TestSetPolicyRecompiles(t *testing.T) {
	th := New(policy.JobFair, 3)
	th.SetJobs([]policy.JobInfo{
		{JobID: "big", UserID: "u1", Nodes: 9},
		{JobID: "small", UserID: "u2", Nodes: 1},
	})
	if got := th.Share("big"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("job-fair share = %g", got)
	}
	th.SetPolicy(policy.SizeFair)
	if got := th.Share("big"); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("size-fair share = %g", got)
	}
	if th.Policy().String() != "size-fair" {
		t.Fatal("policy not switched")
	}
}

func TestAssignmentAndString(t *testing.T) {
	th := New(policy.JobFair, 3)
	if th.Assignment() != nil {
		t.Fatal("assignment before SetJobs should be nil")
	}
	th.SetJobs(jobs("a", "b"))
	a := th.Assignment()
	if a == nil || len(a.Segments()) != 2 {
		t.Fatalf("assignment = %+v", a)
	}
	if th.String() == "" || th.PendingOf("a") != 0 {
		t.Fatal("introspection broken")
	}
}

// Determinism: same seed, same push sequence → identical pop sequence.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		th := New(policy.JobFair, 123)
		th.SetJobs(jobs("a", "b", "c"))
		for i := 0; i < 300; i++ {
			th.Push(req([]string{"a", "b", "c"}[i%3], int64(i)))
		}
		var out []string
		for th.Pending() > 0 {
			out = append(out, th.Pop(0, nil).Job.JobID)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("diverged at %d: %s vs %s", i, x[i], y[i])
		}
	}
}

// Property: conservation — everything pushed is popped exactly once, for
// arbitrary interleavings of pushes across jobs.
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		th := New(policy.SizeFair, seed)
		th.SetJobs([]policy.JobInfo{
			{JobID: "a", UserID: "u1", Nodes: 3},
			{JobID: "b", UserID: "u2", Nodes: 1},
			{JobID: "c", UserID: "u1", Nodes: 2},
		})
		pushed := 0
		popped := 0
		seen := map[int64]bool{}
		for i, op := range ops {
			switch op % 4 {
			case 0, 1, 2:
				r := req([]string{"a", "b", "c"}[op%3], int64(i))
				th.Push(r)
				pushed++
			case 3:
				if r := th.Pop(time.Duration(i), nil); r != nil {
					if seen[r.Bytes] {
						return false // double-served
					}
					seen[r.Bytes] = true
					popped++
				}
			}
		}
		for {
			r := th.Pop(0, nil)
			if r == nil {
				break
			}
			if seen[r.Bytes] {
				return false
			}
			seen[r.Bytes] = true
			popped++
		}
		return pushed == popped && th.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: long-run service frequencies track arbitrary size-fair
// weights within statistical tolerance.
func TestShareTrackingProperty(t *testing.T) {
	f := func(n1, n2 uint8) bool {
		a := int(n1%16) + 1
		b := int(n2%16) + 1
		th := New(policy.SizeFair, int64(a*100+b))
		th.SetJobs([]policy.JobInfo{
			{JobID: "a", UserID: "u1", Nodes: a},
			{JobID: "b", UserID: "u2", Nodes: b},
		})
		const n = 8000
		for i := 0; i < n; i++ {
			th.Push(req("a", 1))
			th.Push(req("b", 1))
		}
		count := 0
		for i := 0; i < n; i++ {
			if th.Pop(0, nil).Job.JobID == "a" {
				count++
			}
		}
		want := float64(a) / float64(a+b)
		got := float64(count) / n
		return math.Abs(got-want) < 0.04
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// ServedBytes charges each pop with the request's scheduling cost
// (payload bytes for data ops, MetaCost for metadata) — the raw
// material of the λ share ledger.
func TestServedBytesCounter(t *testing.T) {
	th := New(policy.JobFair, 1)
	th.SetJobs(jobs("a", "b"))
	th.Push(req("a", 1000))
	th.Push(req("a", 24))
	th.Push(req("b", 4096))
	th.Push(&sched.Request{Job: policy.JobInfo{JobID: "b"}, Op: sched.OpStat})
	for th.Pop(0, nil) != nil {
	}
	got := th.ServedBytes()
	if got["a"] != 1024 {
		t.Fatalf("a served bytes = %d, want 1024", got["a"])
	}
	if got["b"] != 4096+sched.MetaCost {
		t.Fatalf("b served bytes = %d, want %d", got["b"], 4096+sched.MetaCost)
	}
}
