// Package core implements the ThemisIO scheduler — the paper's primary
// contribution. Incoming I/O requests are grouped into per-job queues by
// the communicator; the controller compiles the active sharing policy over
// the active job set into a statistical token assignment (a probability
// segment per job on [0,1), Equation 1); and each worker draws a token to
// choose which job's queue to serve next.
//
// Two properties fall out of the design:
//
//   - Opportunity fairness: the draw is conditioned on jobs that actually
//     have pending requests, so idle I/O cycles are reassigned to jobs with
//     demand and the system always operates at maximal throughput (§1).
//   - Processing isolation: because every service decision is an
//     independent draw, a bursty job can never pack the queue ahead of a
//     modest one — expected service rates match the policy shares at the
//     granularity of single requests ("time slicing").
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/token"
)

// Themis is the statistical-token scheduler. It implements
// sched.Scheduler. It is safe for concurrent use: the live server calls
// Push from connection goroutines and Pop from workers; the simulator is
// single-threaded and pays only uncontended-lock overhead.
type Themis struct {
	mu  sync.Mutex
	pol policy.Policy
	rng *rand.Rand

	queues *sched.JobQueues

	jobs     []policy.JobInfo
	compiled *policy.Compiled

	// strict disables opportunity fairness: tokens are drawn over the
	// full assignment and a draw landing on a job without eligible work
	// is forfeited (a wasted I/O cycle). This is the mandatory-assignment
	// behaviour of prior bandwidth-reservation systems, kept as an
	// ablation of the paper's key design choice.
	strict bool

	// stats
	served map[string]int64
	wasted int64
}

// New returns a Themis scheduler enforcing the given policy. seed fixes
// the token-draw stream; experiments use distinct fixed seeds so results
// are reproducible.
func New(pol policy.Policy, seed int64) *Themis {
	return &Themis{
		pol:    pol,
		rng:    rand.New(rand.NewSource(seed)),
		queues: sched.NewJobQueues(),
		served: make(map[string]int64),
	}
}

// Name implements sched.Scheduler.
func (t *Themis) Name() string { return "themis-" + t.pol.String() }

// Policy returns the active sharing policy.
func (t *Themis) Policy() policy.Policy { return t.pol }

// SetPolicy switches the sharing policy at runtime and recompiles the
// assignment ("the statistical assignment can be easily adjusted by
// recalculating the matrix multiplication", §3).
func (t *Themis) SetPolicy(pol policy.Policy) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pol = pol
	t.recompileLocked()
}

// SetJobs installs the active job set from the controller (local job
// table heartbeats and λ-sync merges both land here) and recompiles the
// token assignment.
func (t *Themis) SetJobs(jobs []policy.JobInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs = append(t.jobs[:0], jobs...)
	t.recompileLocked()
}

func (t *Themis) recompileLocked() {
	c, err := policy.Compile(t.jobs, t.pol)
	if err != nil {
		// Compilation fails only on structurally impossible inputs (all
		// weights zero); keep the previous assignment rather than stall.
		return
	}
	t.compiled = c
}

// Assignment returns the current token assignment (nil before the first
// SetJobs). Exposed for tests and for themisctl introspection.
func (t *Themis) Assignment() *token.Assignment {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.compiled == nil {
		return nil
	}
	return t.compiled.Assignment
}

// Push implements sched.Scheduler: enqueue on the job's queue, creating
// it on first sight. The caller (server communicator) is responsible for
// also feeding the job table so SetJobs eventually reflects the job.
func (t *Themis) Push(r *sched.Request) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queues.Push(r)
}

// Pop implements sched.Scheduler: draw a statistical token conditioned on
// eligible jobs — jobs with a backlog whose head request the serving
// plane can start now (allow filter) — and serve the head of the chosen
// job's queue. Jobs that have traffic but are not yet in the assignment
// (e.g. first requests raced the controller) are served from leftover
// draws so they are never starved.
func (t *Themis) Pop(now time.Duration, allow sched.AllowFunc) *sched.Request {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.queues.Pending() == 0 {
		return nil
	}
	eligible := func(j string) bool {
		return t.queues.PeekFrom(j, allow) != nil
	}
	if t.compiled != nil && len(t.compiled.Assignment.Segments) > 0 {
		if t.strict {
			// Ablation mode: unconditioned draw; a miss wastes the cycle.
			job, ok := t.compiled.Assignment.Lookup(t.rng.Float64())
			if ok && eligible(job) {
				return t.popFromLocked(job, allow)
			}
			t.wasted++
			return nil
		}
		job, ok := t.compiled.Assignment.PickEligible(eligible, t.rng.Float64)
		if ok {
			if r := t.popFromLocked(job, allow); r != nil {
				return r
			}
		}
	}
	// No assignment yet, or all backlogged jobs are outside it: serve the
	// oldest-created eligible queue.
	for _, id := range t.queues.Order() {
		if eligible(id) {
			return t.popFromLocked(id, allow)
		}
	}
	return nil
}

func (t *Themis) popFromLocked(job string, allow sched.AllowFunc) *sched.Request {
	r := t.queues.PopFrom(job, allow)
	if r != nil {
		t.served[job]++
	}
	return r
}

// Pending implements sched.Scheduler.
func (t *Themis) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queues.Pending()
}

// PendingOf returns the backlog of one job (for tests/inspection).
func (t *Themis) PendingOf(job string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queues.LenOf(job)
}

// SetStrict toggles the strict-shares ablation mode (see the strict
// field). The production configuration is opportunistic (false).
func (t *Themis) SetStrict(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.strict = on
}

// Wasted returns the number of forfeited draws in strict mode.
func (t *Themis) Wasted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wasted
}

// Served returns the number of requests served per job since creation.
func (t *Themis) Served() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.served))
	for k, v := range t.served {
		out[k] = v
	}
	return out
}

// Share returns the current token share of a job (0 if absent).
func (t *Themis) Share(job string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.compiled == nil {
		return 0
	}
	return t.compiled.Assignment.Share(job)
}

// String summarizes the scheduler state for debugging.
func (t *Themis) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("themis{policy=%s jobs=%d pending=%d}", t.pol, len(t.jobs), t.queues.Pending())
}
