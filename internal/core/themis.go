// Package core implements the ThemisIO scheduler — the paper's primary
// contribution. Incoming I/O requests are grouped into per-job queues by
// the communicator; the controller compiles the active sharing policy over
// the active job set into a statistical token assignment (a probability
// segment per job on [0,1), Equation 1); and each worker draws a token to
// choose which job's queue to serve next.
//
// Two properties fall out of the design:
//
//   - Opportunity fairness: the draw is conditioned on jobs that actually
//     have pending requests, so idle I/O cycles are reassigned to jobs with
//     demand and the system always operates at maximal throughput (§1).
//   - Processing isolation: because every service decision is an
//     independent draw, a bursty job can never pack the queue ahead of a
//     modest one — expected service rates match the policy shares at the
//     granularity of single requests ("time slicing").
//
// The implementation is epoch-compiled: the compiled policy is published
// as an immutable epoch through an atomic pointer (recompiled only by the
// controller, never on the data path), per-job queues are lock-striped by
// job id, and token draws come from a lock-free counter-indexed
// generator. Push and Pop therefore perform no policy work and take no
// global lock — only the one shard lock covering the touched job. The
// statistical guarantees are unaffected: independent uniform draws remain
// independent whether taken one at a time under a global lock or
// concurrently against a shared epoch.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/token"
)

// numShards is the queue lock-stripe count. Shard index is a hash of the
// job id, so concurrent pushes for different jobs contend only when they
// collide mod 16 — plenty for the worker-pool sizes the server runs.
const numShards = 16

// shard is one lock stripe: the queues of every job hashing to it.
// Padding keeps neighboring shard locks on separate cache lines.
type shard struct {
	mu sync.Mutex
	q  *sched.JobQueues
	_  [40]byte
}

// jobState is a job's lock-free scheduling summary: one backlog counter
// per service class, maintained under the job's shard lock (so they
// exactly track queue content at lock boundaries) and read without any
// lock by the eligibility scan, plus the served tally. Counters can be
// momentarily stale to a reader — the conditioned draw re-checks under
// the shard lock when it pops, so staleness costs at most a redraw,
// never a wrong pop.
type jobState struct {
	cls    [sched.NumClasses]atomic.Int64
	served atomic.Int64
	// bytes is the job's cumulative serviced-byte counter (request Cost:
	// payload bytes for data ops, the nominal MetaCost for metadata),
	// charged lock-free at the pop that hands the request to a worker.
	// The controller's λ share ledger turns these into measured
	// per-entity shares to compare against the compiled token shares.
	bytes atomic.Int64
	// dirty flags that bytes moved since the controller's last
	// ServedBytesDelta drain; the first charge per window also appends
	// the job to the scheduler's dirty list, so a λ drain touches only
	// jobs that actually serviced bytes — O(active), not O(known).
	dirty atomic.Bool
	// lastReported is the bytes value at the last drain. Controller-only
	// (single ServedBytesDelta caller), so no atomics needed.
	lastReported int64
}

// backlogged reports whether any class has queued work (the allow==nil
// eligibility check of the live server's hot path).
func (s *jobState) backlogged() bool {
	return s.cls[0].Load() > 0 || s.cls[1].Load() > 0 || s.cls[2].Load() > 0
}

// epoch is one immutable compiled-policy publication. Workers load the
// current epoch with a single atomic pointer read; the controller
// replaces it wholesale on job-set changes and λ ticks.
type epoch struct {
	seq      uint64
	compiled *policy.Compiled
	// The draw tables, derived from the assignment's scope blocks once
	// at publication: blocks[b] with cum[b] (raw weight mass before
	// block b; cum[len] equals total) for the two-level token search,
	// and offs[b] (flat segment index of the block's first job) for the
	// conditioned draw's eligibility mask. states[b][j] and shards[b][j]
	// are blocks[b].Jobs[j]'s counter block and lock stripe, resolved
	// per block so the per-pop path does no hashing and no map lookups
	// outside the queue itself — and reused pointer-identical from the
	// previous epoch for every block a delta recompile structurally
	// shared, which keeps steady-state publication O(churn + scopes)
	// rather than O(jobs).
	blocks []*token.Block
	cum    []float64
	offs   []int
	total  float64
	n      int
	states [][]*jobState
	shards [][]*shard
}

// Themis is the statistical-token scheduler. It implements
// sched.Scheduler. It is safe for concurrent use: the live server calls
// Push from connection goroutines and Pop from workers with no global
// lock; the simulator is single-threaded and pays only uncontended
// shard-lock overhead.
type Themis struct {
	// confMu serializes the cold path: SetJobs/SetPolicy recompilation
	// and epoch publication. The data path never takes it.
	confMu sync.Mutex
	pol    policy.Policy
	jobs   []policy.JobInfo

	epoch   atomic.Pointer[epoch]
	strict  atomic.Bool
	draws   drawSeq
	pending atomic.Int64
	wasted  atomic.Int64
	// compilesFull counts from-scratch policy compilations (SetJobs,
	// SetPolicy, and ApplyDelta fallbacks); compilesDelta counts
	// incremental recompiles that patched the previous epoch's share
	// tree. Compiles() reports their sum.
	compilesFull  atomic.Int64
	compilesDelta atomic.Int64

	// dirtyMu guards dirtyJobs, the list of jobs whose bytes counter
	// moved since the last ServedBytesDelta drain (each appears once,
	// gated by jobState.dirty).
	dirtyMu   sync.Mutex
	dirtyJobs []string

	// drawObs, when set, is called with the wall-clock duration of every
	// Pop that hands out a request — the operator endpoint's draw-latency
	// histogram. Unset (the default, and every benchmark's configuration)
	// it costs the hot path one atomic pointer load.
	drawObs atomic.Pointer[func(time.Duration)]

	// states maps job id → *jobState; entries are created on first push
	// (or epoch publication) and never removed — job ids recur, and a
	// zeroed counter block is cheap.
	states sync.Map
	// order publishes the job ids in first-seen order (copy-on-write,
	// appended only when a job id is first registered): the fallback pop
	// serves the oldest-created queue first, exactly as the pre-striping
	// single JobQueues did, rather than an arbitrary shard-hash order.
	orderMu sync.Mutex
	order   atomic.Pointer[[]string]

	shards [numShards]shard
}

// New returns a Themis scheduler enforcing the given policy. seed fixes
// the token-draw stream; experiments use distinct fixed seeds so results
// are reproducible.
func New(pol policy.Policy, seed int64) *Themis {
	t := &Themis{pol: pol}
	t.draws.seed = uint64(seed)
	t.order.Store(new([]string))
	for i := range t.shards {
		t.shards[i].q = sched.NewJobQueues()
	}
	return t
}

// drawSeq generates the statistical token stream: draw i is the i-th
// output of splitmix64 from the seed. Indexing by an atomic counter
// makes concurrent draws lock-free while keeping the single-threaded
// stream (the simulator, the tests) deterministic for a fixed seed.
type drawSeq struct {
	seed uint64
	ctr  atomic.Uint64
}

// mix64 is the splitmix64 finalizer (same avalanche as chash uses for
// ring placement).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// next returns a uniform draw in [0, 1).
func (d *drawSeq) next() float64 {
	i := d.ctr.Add(1)
	return float64(mix64(d.seed+i*0x9e3779b97f4a7c15)>>11) / (1 << 53)
}

// shardIdx maps a job id to its lock stripe (FNV-1a).
func shardIdx(job string) int {
	h := uint64(1469598103934665603)
	for i := 0; i < len(job); i++ {
		h ^= uint64(job[i])
		h *= 1099511628211
	}
	return int(h & (numShards - 1))
}

// Name implements sched.Scheduler.
func (t *Themis) Name() string {
	t.confMu.Lock()
	defer t.confMu.Unlock()
	return "themis-" + t.pol.String()
}

// Policy returns the active sharing policy.
func (t *Themis) Policy() policy.Policy {
	t.confMu.Lock()
	defer t.confMu.Unlock()
	return t.pol
}

// SetPolicy switches the sharing policy at runtime and republishes the
// compiled epoch ("the statistical assignment can be easily adjusted by
// recalculating the matrix multiplication", §3).
func (t *Themis) SetPolicy(pol policy.Policy) {
	t.confMu.Lock()
	defer t.confMu.Unlock()
	t.pol = pol
	t.republishLocked()
}

// SetJobs installs the active job set from the controller and publishes
// a new compiled epoch. This is the only path that compiles policy: the
// controller calls it when the job table's generation moves (job
// arrival/departure, presence change) or a λ sync lands — never per
// request.
func (t *Themis) SetJobs(jobs []policy.JobInfo) {
	t.confMu.Lock()
	defer t.confMu.Unlock()
	t.jobs = append(t.jobs[:0], jobs...)
	t.republishLocked()
}

func (t *Themis) republishLocked() {
	c, err := policy.Compile(t.jobs, t.pol)
	if err != nil {
		// Compilation fails only on structurally impossible inputs (all
		// weights zero); keep the previous epoch rather than stall.
		return
	}
	t.publishCompiledLocked(c)
	t.compilesFull.Add(1)
}

// ApplyDelta installs the job set like SetJobs but compiles it
// incrementally: the previous epoch's share tree is patched with the
// delta (O(churn) instead of O(jobs)). Any condition the delta path
// cannot prove correct — no prior epoch, a policy change since it was
// compiled, a recompile error, or a job-count mismatch between the
// patched tree and the authoritative slice — falls back to a full
// compile, so ApplyDelta is always safe to call with a best-effort
// delta. Epoch publication stays a single atomic pointer swap.
func (t *Themis) ApplyDelta(jobs []policy.JobInfo, d policy.Delta) {
	t.confMu.Lock()
	defer t.confMu.Unlock()
	t.jobs = append(t.jobs[:0], jobs...)
	e := t.epoch.Load()
	if e == nil || e.compiled == nil || !e.compiled.Policy.Equal(t.pol) {
		t.republishLocked()
		return
	}
	c, err := policy.Recompile(e.compiled, d)
	if err != nil || c.JobCount() != len(jobs) {
		t.republishLocked()
		return
	}
	t.publishCompiledLocked(c)
	t.compilesDelta.Add(1)
}

// publishCompiledLocked derives the new epoch's draw tables from the
// compiled assignment's scope blocks and swaps it in. Blocks carried
// over unchanged from the previous epoch (a delta recompile shares
// them pointer-identical) reuse their resolved state and stripe
// arrays, so only churned scopes pay the per-job resolution.
func (t *Themis) publishCompiledLocked(c *policy.Compiled) {
	blocks := c.Assignment.Blocks()
	prev := t.epoch.Load()
	var prevIdx map[*token.Block]int
	if prev != nil && len(prev.blocks) > 0 {
		prevIdx = make(map[*token.Block]int, len(prev.blocks))
		for i, b := range prev.blocks {
			prevIdx[b] = i
		}
	}
	e := &epoch{
		seq:      1,
		compiled: c,
		blocks:   blocks,
		cum:      make([]float64, len(blocks)+1),
		offs:     make([]int, len(blocks)+1),
		total:    c.Assignment.Total(),
		n:        c.Assignment.Len(),
		states:   make([][]*jobState, len(blocks)),
		shards:   make([][]*shard, len(blocks)),
	}
	if prev != nil {
		e.seq = prev.seq + 1
	}
	for bi, b := range blocks {
		e.cum[bi+1] = e.cum[bi] + b.Sum
		e.offs[bi+1] = e.offs[bi] + len(b.Jobs)
		if pi, ok := prevIdx[b]; ok {
			e.states[bi] = prev.states[pi]
			e.shards[bi] = prev.shards[pi]
			continue
		}
		sts := make([]*jobState, len(b.Jobs))
		shs := make([]*shard, len(b.Jobs))
		for j, job := range b.Jobs {
			sts[j] = t.state(job)
			shs[j] = &t.shards[shardIdx(job)]
		}
		e.states[bi] = sts
		e.shards[bi] = shs
	}
	t.epoch.Store(e)
}

// state returns the job's counter block, creating it on first sight and
// recording the job's position in the first-seen order.
func (t *Themis) state(job string) *jobState {
	if v, ok := t.states.Load(job); ok {
		return v.(*jobState)
	}
	v, loaded := t.states.LoadOrStore(job, &jobState{})
	if !loaded {
		t.orderMu.Lock()
		old := *t.order.Load()
		next := make([]string, len(old), len(old)+1)
		copy(next, old)
		next = append(next, job)
		t.order.Store(&next)
		t.orderMu.Unlock()
	}
	return v.(*jobState)
}

// Compiles returns the number of policy compilations performed since
// creation — full and delta combined. The request path never compiles,
// so this grows O(job-set changes + λ ticks), not O(requests) —
// asserted by the server's regression test.
func (t *Themis) Compiles() int64 { return t.compilesFull.Load() + t.compilesDelta.Load() }

// CompilesFull returns the number of from-scratch compilations.
func (t *Themis) CompilesFull() int64 { return t.compilesFull.Load() }

// CompilesDelta returns the number of incremental delta recompiles.
func (t *Themis) CompilesDelta() int64 { return t.compilesDelta.Load() }

// EpochSeq returns the current epoch's sequence number (0 before the
// first SetJobs).
func (t *Themis) EpochSeq() uint64 {
	if e := t.epoch.Load(); e != nil {
		return e.seq
	}
	return 0
}

// Assignment returns the current token assignment (nil before the first
// SetJobs). Exposed for tests and for themisctl introspection.
func (t *Themis) Assignment() *token.Assignment {
	e := t.epoch.Load()
	if e == nil {
		return nil
	}
	return e.compiled.Assignment
}

// Push implements sched.Scheduler: enqueue on the job's queue, creating
// it on first sight. Only the job's shard lock is taken. The caller
// (server communicator) is responsible for also feeding the job table so
// the controller's SetJobs eventually reflects the job.
func (t *Themis) Push(r *sched.Request) {
	st := t.state(r.Job.JobID)
	sh := &t.shards[shardIdx(r.Job.JobID)]
	sh.mu.Lock()
	sh.q.Push(r)
	st.cls[sched.ClassOf(r.Op)].Add(1)
	sh.mu.Unlock()
	t.pending.Add(1)
}

// peek reports whether the job has an allowed head request right now.
func (t *Themis) peek(job string, allow sched.AllowFunc) bool {
	sh := &t.shards[shardIdx(job)]
	sh.mu.Lock()
	ok := sh.q.PeekFrom(job, allow) != nil
	sh.mu.Unlock()
	return ok
}

// popFromResolved removes the job's oldest allowed request — nil if none
// (or if a concurrent worker won the race since the caller's peek) —
// with the job's state and stripe already in hand (the epoch caches both
// per segment, so draws skip the hashing).
func (t *Themis) popFromResolved(job string, st *jobState, sh *shard, allow sched.AllowFunc) *sched.Request {
	sh.mu.Lock()
	r := sh.q.PopFrom(job, allow)
	if r != nil {
		st.cls[sched.ClassOf(r.Op)].Add(-1)
	}
	sh.mu.Unlock()
	if r != nil {
		st.served.Add(1)
		st.bytes.Add(r.Cost())
		if !st.dirty.Load() && st.dirty.CompareAndSwap(false, true) {
			t.dirtyMu.Lock()
			t.dirtyJobs = append(t.dirtyJobs, job)
			t.dirtyMu.Unlock()
		}
		t.pending.Add(-1)
	}
	return r
}

// Pop implements sched.Scheduler: draw a statistical token conditioned on
// eligible jobs — jobs with a backlog whose head request the serving
// plane can start now (allow filter) — and serve the head of the chosen
// job's queue. Jobs that have traffic but are not yet in the assignment
// (e.g. first requests raced the controller) are served from leftover
// draws so they are never starved.
//
// Pop loads the current epoch once and touches only the shard locks of
// the jobs it inspects; under contention a draw can lose the chosen head
// to another worker, in which case the job is dropped from the eligible
// set and the draw retried, preserving the conditioned distribution.
func (t *Themis) Pop(now time.Duration, allow sched.AllowFunc) *sched.Request {
	if t.pending.Load() == 0 {
		return nil
	}
	if obs := t.drawObs.Load(); obs != nil {
		start := time.Now()
		r := t.pop(now, allow)
		if r != nil {
			(*obs)(time.Since(start))
		}
		return r
	}
	return t.pop(now, allow)
}

// pop is Pop's body (split so the observer wrapper stays off the
// uninstrumented path).
func (t *Themis) pop(now time.Duration, allow sched.AllowFunc) *sched.Request {
	e := t.epoch.Load()
	if e != nil && e.n > 0 {
		if t.strict.Load() {
			// Ablation mode: unconditioned draw; a miss wastes the cycle.
			if b, j := e.segIdx(t.draws.next()); b >= 0 {
				if r := t.popFromResolved(e.blocks[b].Jobs[j], e.states[b][j], e.shards[b][j], allow); r != nil {
					return r
				}
			}
			t.wasted.Add(1)
			return nil
		}
		// Optimistic unconditioned draw first: serving the drawn job when
		// it has work, and falling back to a fully conditioned redraw when
		// it does not, yields exactly the conditioned distribution —
		// P(serve j) = w_j + (1-E)·w_j/E = w_j/E over eligible mass E —
		// while making the saturated hot path O(log jobs): one draw, two
		// binary searches (block, then segment within it), one counter
		// load, one shard lock.
		if allow == nil {
			if b, j := e.segIdx(t.draws.next()); b >= 0 && e.states[b][j].backlogged() {
				if r := t.popFromResolved(e.blocks[b].Jobs[j], e.states[b][j], e.shards[b][j], nil); r != nil {
					return r
				}
			}
		}
		if r := t.popCompiled(e, allow); r != nil {
			return r
		}
	}
	// No assignment yet, or all backlogged jobs are outside it: serve the
	// oldest-created eligible queue.
	return t.popAny(allow)
}

// popCompiled draws over the epoch's segments conditioned on eligibility.
// With no allow filter (the live server's workers) eligibility is read
// from the epoch's lock-free backlog counters; a filter falls back to
// precise per-shard peeks, which the single-threaded simulator pays only
// as uncontended locks.
func (t *Themis) popCompiled(e *epoch, allow sched.AllowFunc) *sched.Request {
	var buf [64]bool
	var elig []bool
	if e.n <= len(buf) {
		elig = buf[:e.n]
	} else {
		elig = make([]bool, e.n)
	}
	// Eligible mass accumulates in raw weight space — conditioning on it
	// is identical to normalised segment widths (both divide out at the
	// draw), without a per-segment division.
	total := 0.0
	n := 0
	for bi, blk := range e.blocks {
		base := e.offs[bi]
		for j := range blk.Jobs {
			ok := false
			if allow == nil {
				ok = e.states[bi][j].backlogged()
			} else {
				ok = t.peek(blk.Jobs[j], allow)
			}
			if ok {
				elig[base+j] = true
				total += blk.Ws[j]
				n++
			}
		}
	}
	for ; n > 0; n-- {
		b, j := e.pickIdx(elig, total, t.draws.next())
		if b < 0 {
			return nil
		}
		if r := t.popFromResolved(e.blocks[b].Jobs[j], e.states[b][j], e.shards[b][j], allow); r != nil {
			return r
		}
		// A concurrent worker drained the job between peek and pop:
		// recondition without it and redraw.
		elig[e.offs[b]+j] = false
		total -= e.blocks[b].Ws[j]
	}
	return nil
}

// segIdx returns the block/segment coordinates containing draw
// x ∈ [0,1) over the full (unconditioned) assignment: the draw is
// scaled into raw weight space, binary-searched over the block prefix
// masses, then over the chosen block's prefix sums. Returns (-1, -1)
// on an empty assignment.
func (e *epoch) segIdx(x float64) (int, int) {
	if e.n == 0 {
		return -1, -1
	}
	xm := x * e.total
	nb := len(e.blocks)
	b := sort.Search(nb, func(i int) bool { return e.cum[i+1] > xm })
	if b >= nb {
		b = nb - 1
	}
	blk := e.blocks[b]
	if len(blk.Jobs) == 0 {
		return -1, -1
	}
	r := xm - e.cum[b]
	j := sort.Search(len(blk.Cum), func(i int) bool { return blk.Cum[i] > r })
	if j >= len(blk.Jobs) {
		j = len(blk.Jobs) - 1
	}
	return b, j
}

// pickIdx returns the coordinates of the segment containing draw x
// conditioned on the eligible set (total is the eligible raw mass), or
// the first eligible segment when the eligible mass is zero
// (zero-share jobs — e.g. just-arrived jobs the controller has not
// weighted yet — are served from leftover cycles, mirroring
// token.Assignment.PickEligible). Returns (-1, -1) if nothing is
// eligible.
func (e *epoch) pickIdx(elig []bool, total, x float64) (int, int) {
	if total > 0 {
		x *= total
		acc := 0.0
		for bi, blk := range e.blocks {
			base := e.offs[bi]
			for j := range blk.Jobs {
				if !elig[base+j] {
					continue
				}
				acc += blk.Ws[j]
				if x < acc {
					return bi, j
				}
			}
		}
	}
	// Zero eligible mass, or floating-point residue: first eligible.
	for bi, blk := range e.blocks {
		base := e.offs[bi]
		for j := range blk.Jobs {
			if elig[base+j] {
				return bi, j
			}
		}
	}
	return -1, -1
}

// popAny serves the first-seen eligible job's oldest request — the
// fallback when no compiled segment matches a backlogged job, preserving
// the pre-striping behaviour of serving the oldest-created queue first
// (which is also what the degenerate FIFO policy relies on).
func (t *Themis) popAny(allow sched.AllowFunc) *sched.Request {
	for _, id := range *t.order.Load() {
		st := t.state(id)
		if allow == nil && !st.backlogged() {
			continue
		}
		if r := t.popFromResolved(id, st, &t.shards[shardIdx(id)], allow); r != nil {
			return r
		}
	}
	return nil
}

// PopBatch pops up to len(out) requests in one call — the worker's
// per-wake batch: K independent draws against the current epoch,
// amortizing the wake/park transition. It fills out from the front and
// returns the count; fewer than len(out) (possibly zero) means the
// eligible backlog ran dry.
func (t *Themis) PopBatch(now time.Duration, allow sched.AllowFunc, out []*sched.Request) int {
	n := 0
	for n < len(out) {
		r := t.Pop(now, allow)
		if r == nil {
			break
		}
		out[n] = r
		n++
	}
	return n
}

// Pending implements sched.Scheduler.
func (t *Themis) Pending() int {
	return int(t.pending.Load())
}

// PendingOf returns the backlog of one job (for tests/inspection).
func (t *Themis) PendingOf(job string) int {
	sh := &t.shards[shardIdx(job)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.q.LenOf(job)
}

// SetStrict toggles the strict-shares ablation mode: tokens are drawn
// over the full assignment and a draw landing on a job without eligible
// work is forfeited (a wasted I/O cycle). This is the
// mandatory-assignment behaviour of prior bandwidth-reservation systems,
// kept as an ablation of the paper's key design choice. The production
// configuration is opportunistic (false).
func (t *Themis) SetStrict(on bool) { t.strict.Store(on) }

// Wasted returns the number of forfeited draws in strict mode.
func (t *Themis) Wasted() int64 { return t.wasted.Load() }

// Draws returns the number of lottery tokens drawn since creation
// (every compiled-epoch draw, whether or not it yielded work).
func (t *Themis) Draws() uint64 { return t.draws.ctr.Load() }

// Backlogs returns the current queued-request count per job (all
// classes summed). Allocates; scrape/inspection path only.
func (t *Themis) Backlogs() map[string]int64 {
	out := make(map[string]int64)
	t.states.Range(func(k, v any) bool {
		st := v.(*jobState)
		var n int64
		for c := range st.cls {
			n += st.cls[c].Load()
		}
		if n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// SetDrawObserver installs fn to be called with the latency of every
// Pop that returns a request (nil uninstalls). Used by the operator
// metrics endpoint's draw-latency histogram; fn must be cheap and
// safe for concurrent calls from all workers.
func (t *Themis) SetDrawObserver(fn func(time.Duration)) {
	if fn == nil {
		t.drawObs.Store(nil)
		return
	}
	t.drawObs.Store(&fn)
}

// ServedBytes returns the cumulative serviced bytes per job since
// creation (request Cost at pop time). The λ share ledger diffs
// successive snapshots into per-window measured shares; the snapshot
// allocates, so it belongs on the controller's cold path, never per
// request.
func (t *Themis) ServedBytes() map[string]int64 {
	out := make(map[string]int64)
	t.states.Range(func(k, v any) bool {
		if n := v.(*jobState).bytes.Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// ServedBytesDelta drains the per-job serviced-byte deltas accumulated
// since the previous drain — touching only the jobs whose counters
// actually moved, so a λ roll at 100k known jobs with 1k active costs
// O(1k). Single consumer (the controller); a charge racing the drain is
// never lost: the dirty flag is cleared before the counter is read, so
// a concurrent charge either lands in this window's read or re-marks
// the job for the next one.
func (t *Themis) ServedBytesDelta() map[string]int64 {
	t.dirtyMu.Lock()
	jobs := t.dirtyJobs
	t.dirtyJobs = nil
	t.dirtyMu.Unlock()
	out := make(map[string]int64, len(jobs))
	for _, job := range jobs {
		st := t.state(job)
		st.dirty.Store(false)
		cum := st.bytes.Load()
		if d := cum - st.lastReported; d != 0 {
			out[job] = d
			st.lastReported = cum
		}
	}
	return out
}

// Served returns the number of requests served per job since creation.
func (t *Themis) Served() map[string]int64 {
	out := make(map[string]int64)
	t.states.Range(func(k, v any) bool {
		if n := v.(*jobState).served.Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// Share returns the current token share of a job (0 if absent). It
// reads the compiled share tree, which stays correct on delta-compiled
// epochs (whose assignments skip the job→segment index).
func (t *Themis) Share(job string) float64 {
	e := t.epoch.Load()
	if e == nil {
		return 0
	}
	return e.compiled.Share(job)
}

// String summarizes the scheduler state for debugging.
func (t *Themis) String() string {
	t.confMu.Lock()
	pol, jobs := t.pol, len(t.jobs)
	t.confMu.Unlock()
	return fmt.Sprintf("themis{policy=%s jobs=%d pending=%d}", pol, jobs, t.Pending())
}
