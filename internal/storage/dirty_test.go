package storage

import (
	"math/rand"
	"testing"
)

func TestRangeSetMarkCoalesces(t *testing.T) {
	rs := NewRangeSet()
	rs.Mark(0, 10)
	rs.Mark(20, 10)
	rs.Mark(10, 10) // bridges the gap
	spans := rs.Spans()
	if len(spans) != 1 || spans[0] != (Extent{Off: 0, Len: 30}) {
		t.Fatalf("spans = %v, want one [0,30)", spans)
	}
	if rs.Bytes() != 30 {
		t.Fatalf("bytes = %d", rs.Bytes())
	}
	// Overlap and containment.
	rs.Mark(5, 10)
	if got := rs.Spans(); len(got) != 1 || got[0].Len != 30 {
		t.Fatalf("overlap re-mark changed spans: %v", got)
	}
	rs.Mark(25, 20)
	if got := rs.Spans(); len(got) != 1 || got[0] != (Extent{Off: 0, Len: 45}) {
		t.Fatalf("extending mark: %v", got)
	}
}

func TestRangeSetTakeBudget(t *testing.T) {
	rs := NewRangeSet()
	rs.Mark(0, 100)
	rs.Mark(200, 100)
	got := rs.Take(150)
	if len(got) != 2 || got[0] != (Extent{0, 100}) || got[1] != (Extent{200, 50}) {
		t.Fatalf("take(150) = %v", got)
	}
	if rs.Bytes() != 50 {
		t.Fatalf("remaining = %d", rs.Bytes())
	}
	rest := rs.Take(0) // take all
	if len(rest) != 1 || rest[0] != (Extent{250, 50}) {
		t.Fatalf("take rest = %v", rest)
	}
	if !rs.Empty() {
		t.Fatal("not empty after full take")
	}
}

// Property-ish: random marks always yield sorted, disjoint, coalesced
// spans whose total equals the union of marked bytes.
func TestRangeSetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rs := NewRangeSet()
		ref := map[int64]bool{}
		for i := 0; i < 40; i++ {
			off := int64(rng.Intn(500))
			n := int64(rng.Intn(60) + 1)
			rs.Mark(off, n)
			for b := off; b < off+n; b++ {
				ref[b] = true
			}
		}
		spans := rs.Spans()
		var total int64
		for i, s := range spans {
			total += s.Len
			if i > 0 && spans[i-1].End() >= s.Off {
				t.Fatalf("trial %d: spans not disjoint/coalesced: %v", trial, spans)
			}
			for b := s.Off; b < s.End(); b++ {
				if !ref[b] {
					t.Fatalf("trial %d: byte %d marked but never written", trial, b)
				}
			}
		}
		if total != int64(len(ref)) {
			t.Fatalf("trial %d: %d bytes tracked, want %d", trial, total, len(ref))
		}
	}
}
