package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocReleaseCoalesce(t *testing.T) {
	s := NewStore(1024)
	a, err := s.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if s.Free() != 0 {
		t.Fatalf("free = %d, want 0", s.Free())
	}
	if _, err := s.Alloc(1); err != ErrNoSpace {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Release middle then neighbours; free list must coalesce to one run.
	if err := s.Release(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(c); err != nil {
		t.Fatal(err)
	}
	fl := s.FreeExtents()
	if len(fl) != 1 || fl[0].Off != 0 || fl[0].Len != 1024 {
		t.Fatalf("free list = %+v, want one full extent", fl)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	s := NewStore(1024)
	a, _ := s.Alloc(128)
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(a); err != ErrDoubleFree {
		t.Fatalf("want ErrDoubleFree, got %v", err)
	}
	if err := s.Release(Extent{Off: -1, Len: 8}); err != ErrBadExtent {
		t.Fatalf("want ErrBadExtent, got %v", err)
	}
	if err := s.Release(Extent{Off: 1000, Len: 100}); err != ErrBadExtent {
		t.Fatalf("out-of-bounds release: %v", err)
	}
}

func TestAllocBadSize(t *testing.T) {
	s := NewStore(64)
	if _, err := s.Alloc(0); err == nil {
		t.Fatal("alloc(0) should fail")
	}
	if _, err := s.Alloc(-5); err == nil {
		t.Fatal("alloc(-5) should fail")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewStore(4096)
	e, _ := s.Alloc(1024)
	msg := []byte("the quick brown fox")
	if _, err := s.WriteAt(e, 100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := s.ReadAt(e, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	// Out-of-extent access is rejected.
	if _, err := s.WriteAt(e, 1020, msg); err != ErrBadExtent {
		t.Fatalf("overflow write: %v", err)
	}
	if _, err := s.ReadAt(e, -1, got); err != ErrBadExtent {
		t.Fatalf("negative read: %v", err)
	}
}

func TestIndexAppendResolve(t *testing.T) {
	s := NewStore(1 << 20)
	ix := NewIndex()
	e1, _ := s.Alloc(100)
	e2, _ := s.Alloc(200)
	ix.Append(e1)
	ix.Append(e2)
	if ix.Size() != 300 || ix.Runs() != 2 {
		t.Fatalf("size/runs = %d/%d", ix.Size(), ix.Runs())
	}
	// Range straddling both extents.
	sl := ix.Resolve(50, 150)
	if len(sl) != 2 {
		t.Fatalf("slices = %+v", sl)
	}
	if sl[0].Ext != e1 || sl[0].Off != 50 || sl[0].Len != 50 {
		t.Fatalf("slice0 = %+v", sl[0])
	}
	if sl[1].Ext != e2 || sl[1].Off != 0 || sl[1].Len != 100 {
		t.Fatalf("slice1 = %+v", sl[1])
	}
	// Past EOF clips; fully past EOF returns nil.
	if got := ix.Resolve(250, 100); len(got) != 1 || got[0].Len != 50 {
		t.Fatalf("clip = %+v", got)
	}
	if got := ix.Resolve(300, 1); got != nil {
		t.Fatalf("past EOF = %+v", got)
	}
	if got := ix.Resolve(-1, 10); got != nil {
		t.Fatal("negative offset should resolve to nothing")
	}
}

// Property: random alloc/release sequences never corrupt the free list:
// used+free == capacity, free list stays sorted, disjoint, coalesced.
func TestAllocatorInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(1 << 16)
		var live []Extent
		for op := 0; op < 300; op++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				e, err := s.Alloc(int64(rng.Intn(2000) + 1))
				if err == nil {
					live = append(live, e)
				}
			} else {
				i := rng.Intn(len(live))
				if s.Release(live[i]) != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			// Invariants.
			var used int64
			for _, e := range live {
				used += e.Len
			}
			if used != s.Used() {
				return false
			}
			fl := s.FreeExtents()
			var freeSum int64
			for i, e := range fl {
				freeSum += e.Len
				if i > 0 && fl[i-1].End() >= e.Off {
					return false // unsorted or uncoalesced
				}
			}
			if freeSum+used != s.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: data written to one extent never bleeds into another.
func TestWriteIsolationProperty(t *testing.T) {
	s := NewStore(1 << 16)
	a, _ := s.Alloc(4096)
	b, _ := s.Alloc(4096)
	f := func(off uint16, val byte) bool {
		o := int64(off) % 4096
		buf := []byte{val, val ^ 0xff}
		if o > 4094 {
			o = 4094
		}
		marker := make([]byte, 4096)
		for i := range marker {
			marker[i] = 0xAA
		}
		s.WriteAt(b, 0, marker)
		s.WriteAt(a, o, buf)
		got := make([]byte, 4096)
		s.ReadAt(b, 0, got)
		for _, g := range got {
			if g != 0xAA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
