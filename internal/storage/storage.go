// Package storage implements the byte-addressable storage device under
// each ThemisIO server (§4.3). The paper uses Intel Optane persistent
// memory (and RAM in the evaluation: "ThemisIO runs on the CLX nodes with
// RAM as storage devices"); this implementation is a RAM slab with an
// extent allocator and a per-file extent index, which exercises the same
// allocate/index/read/write code paths.
//
// Concurrency contract mirrors §4.3: concurrent reads need no locking;
// concurrent writes to non-conflicting byte ranges proceed without
// limitation; only allocator metadata updates take a lock.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by the store.
var (
	ErrNoSpace    = errors.New("storage: out of space")
	ErrBadExtent  = errors.New("storage: extent out of bounds")
	ErrDoubleFree = errors.New("storage: extent not allocated")
)

// Extent is a contiguous region of the device.
type Extent struct {
	Off int64
	Len int64
}

// End returns the first byte past the extent.
func (e Extent) End() int64 { return e.Off + e.Len }

// Store is a byte-addressable device: a slab plus a first-fit extent
// allocator with free-list coalescing.
type Store struct {
	mu   sync.Mutex
	data []byte
	free []Extent // sorted by Off, coalesced
	used int64
}

// NewStore returns a store with the given capacity in bytes.
func NewStore(capacity int64) *Store {
	return &Store{
		data: make([]byte, capacity),
		free: []Extent{{Off: 0, Len: capacity}},
	}
}

// Capacity returns the device size in bytes.
func (s *Store) Capacity() int64 { return int64(len(s.data)) }

// Used returns the number of allocated bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Free returns the number of unallocated bytes.
func (s *Store) Free() int64 { return s.Capacity() - s.Used() }

// Alloc reserves n bytes, first-fit. It returns ErrNoSpace if no single
// free extent is large enough (the store does not split allocations).
func (s *Store) Alloc(n int64) (Extent, error) {
	if n <= 0 {
		return Extent{}, fmt.Errorf("storage: alloc of %d bytes", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.free {
		if f.Len < n {
			continue
		}
		e := Extent{Off: f.Off, Len: n}
		if f.Len == n {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i] = Extent{Off: f.Off + n, Len: f.Len - n}
		}
		s.used += n
		return e, nil
	}
	return Extent{}, ErrNoSpace
}

// Release returns an extent to the free list, coalescing neighbours.
// Releasing a region that overlaps the free list is ErrDoubleFree.
func (s *Store) Release(e Extent) error {
	if e.Len <= 0 || e.Off < 0 || e.End() > s.Capacity() {
		return ErrBadExtent
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].Off >= e.Off })
	if i < len(s.free) && e.End() > s.free[i].Off {
		return ErrDoubleFree
	}
	if i > 0 && s.free[i-1].End() > e.Off {
		return ErrDoubleFree
	}
	s.free = append(s.free, Extent{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = e
	// Coalesce with successor, then predecessor.
	if i+1 < len(s.free) && s.free[i].End() == s.free[i+1].Off {
		s.free[i].Len += s.free[i+1].Len
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	if i > 0 && s.free[i-1].End() == s.free[i].Off {
		s.free[i-1].Len += s.free[i].Len
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
	s.used -= e.Len
	return nil
}

// WriteAt copies p into the extent at offset off within the extent.
// The caller guarantees the extent was allocated; disjoint-range writers
// need no further synchronization (§4.3).
func (s *Store) WriteAt(e Extent, off int64, p []byte) (int, error) {
	if off < 0 || off+int64(len(p)) > e.Len {
		return 0, ErrBadExtent
	}
	n := copy(s.data[e.Off+off:e.Off+off+int64(len(p))], p)
	return n, nil
}

// ReadAt copies from the extent at offset off within the extent into p.
func (s *Store) ReadAt(e Extent, off int64, p []byte) (int, error) {
	if off < 0 || off+int64(len(p)) > e.Len {
		return 0, ErrBadExtent
	}
	n := copy(p, s.data[e.Off+off:e.Off+off+int64(len(p))])
	return n, nil
}

// FreeExtents returns a copy of the free list (for tests and fsck-style
// validation).
func (s *Store) FreeExtents() []Extent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Extent(nil), s.free...)
}

// mapping is one contiguous run of a file: file bytes
// [FileOff, FileOff+Ext.Len) live at device extent Ext.
type mapping struct {
	FileOff int64
	Ext     Extent
}

// Index maps file offsets to device extents for one file replica on one
// server ("an index specifies the NVMe region of the file's contents",
// §4.3). Appends extend the index; overwrites reuse existing mappings.
type Index struct {
	mu   sync.RWMutex
	runs []mapping // sorted by FileOff, non-overlapping
	size int64
}

// NewIndex returns an empty extent index.
func NewIndex() *Index { return &Index{} }

// Size returns the file size implied by the index.
func (ix *Index) Size() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.size
}

// Append registers a new extent covering file bytes
// [Size(), Size()+ext.Len) and returns the file offset the extent was
// assigned (callers use it to mark the exact range dirty even when
// appends race).
func (ix *Index) Append(ext Extent) int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	off := ix.size
	ix.runs = append(ix.runs, mapping{FileOff: off, Ext: ext})
	ix.size += ext.Len
	return off
}

// Runs returns the number of extents in the index.
func (ix *Index) Runs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.runs)
}

// Extents returns a copy of all extents, in file order.
func (ix *Index) Extents() []Extent {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Extent, len(ix.runs))
	for i, r := range ix.runs {
		out[i] = r.Ext
	}
	return out
}

// Slice describes the piece of a device extent that backs part of a file
// range lookup.
type Slice struct {
	Ext Extent // the containing extent
	Off int64  // offset within Ext
	Len int64  // bytes available in this slice
}

// Resolve maps the file range [off, off+n) to device slices. The returned
// slices cover min(n, Size()-off) bytes; a lookup past EOF returns nil.
func (ix *Index) Resolve(off, n int64) []Slice {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if off < 0 || n <= 0 || off >= ix.size {
		return nil
	}
	if off+n > ix.size {
		n = ix.size - off
	}
	i := sort.Search(len(ix.runs), func(i int) bool {
		return ix.runs[i].FileOff+ix.runs[i].Ext.Len > off
	})
	var out []Slice
	for ; i < len(ix.runs) && n > 0; i++ {
		r := ix.runs[i]
		inner := off - r.FileOff
		if inner < 0 {
			inner = 0
			off = r.FileOff
		}
		avail := r.Ext.Len - inner
		take := avail
		if take > n {
			take = n
		}
		out = append(out, Slice{Ext: r.Ext, Off: inner, Len: take})
		off += take
		n -= take
	}
	return out
}
