package storage

import "sync"

// RangeSet tracks dirty byte ranges of one file — the write-back
// bookkeeping the paper's conclusion asks for ("persistent data structure
// strategy to enable fault tolerance"). Every write marks its range;
// the drain engine takes coalesced spans off the set and stages them out
// to the backing store. Ranges are file-offset addressed (not device
// extents), so the set survives the extent compaction a snapshot/restore
// cycle performs.
//
// The set keeps ranges sorted, non-overlapping, and coalesced, so its
// size is bounded by the number of disjoint dirty regions — for the
// append-structured burst-buffer write pattern, typically one.
type RangeSet struct {
	mu     sync.Mutex
	spans  []Extent // sorted by Off, coalesced
	marked int64    // total dirty bytes
}

// NewRangeSet returns an empty dirty-range set.
func NewRangeSet() *RangeSet { return &RangeSet{} }

// Mark records [off, off+n) as dirty, merging with adjacent or
// overlapping spans. Non-positive n is a no-op.
func (rs *RangeSet) Mark(off, n int64) {
	if n <= 0 || off < 0 {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e := Extent{Off: off, Len: n}
	// Find the first span that could merge with e (ends at or after
	// e.Off), absorb every span e touches, then insert.
	i := 0
	for i < len(rs.spans) && rs.spans[i].End() < e.Off {
		i++
	}
	j := i
	for j < len(rs.spans) && rs.spans[j].Off <= e.End() {
		if rs.spans[j].Off < e.Off {
			e.Len += e.Off - rs.spans[j].Off
			e.Off = rs.spans[j].Off
		}
		if rs.spans[j].End() > e.End() {
			e.Len = rs.spans[j].End() - e.Off
		}
		rs.marked -= rs.spans[j].Len
		j++
	}
	rs.spans = append(rs.spans[:i], append([]Extent{e}, rs.spans[j:]...)...)
	rs.marked += e.Len
}

// Take removes and returns up to max dirty bytes of coalesced spans, in
// offset order. max <= 0 takes everything. The caller owns staging the
// returned ranges; on failure it re-Marks them.
func (rs *RangeSet) Take(max int64) []Extent {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.spans) == 0 {
		return nil
	}
	var out []Extent
	var taken int64
	for len(rs.spans) > 0 {
		s := rs.spans[0]
		if max > 0 && taken+s.Len > max {
			cut := max - taken
			if cut <= 0 {
				break
			}
			out = append(out, Extent{Off: s.Off, Len: cut})
			rs.spans[0] = Extent{Off: s.Off + cut, Len: s.Len - cut}
			rs.marked -= cut
			return out
		}
		out = append(out, s)
		taken += s.Len
		rs.marked -= s.Len
		rs.spans = rs.spans[1:]
	}
	return out
}

// Bytes returns the total dirty byte count.
func (rs *RangeSet) Bytes() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.marked
}

// Empty reports whether no range is dirty.
func (rs *RangeSet) Empty() bool { return rs.Bytes() == 0 }

// Spans returns a copy of the dirty spans (for tests and inspection).
func (rs *RangeSet) Spans() []Extent {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]Extent(nil), rs.spans...)
}
