package transport

import (
	"net"
	"testing"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/policy"
)

// binaryPair returns a dial-side binary conn and an accept-side
// auto-detecting conn, as the live server sees them.
func binaryPair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewBinaryConn(a), NewConn(b)
}

func sampleRequest() *Request {
	return &Request{
		Type:        MsgWrite,
		Seq:         99,
		Job:         policy.JobInfo{JobID: "j", UserID: "u", GroupID: "g", Nodes: 8, Priority: 2, Presence: 3},
		Path:        "/data/x",
		Offset:      1 << 40,
		Size:        4096,
		Data:        []byte{1, 2, 3, 4, 5},
		Stripes:     4,
		StripeUnit:  256 << 10,
		StripeSet:   []string{"a:1", "b:2", "c:3", "d:4"},
		MigrateOp:   MigrateCommit,
		Gen:         17,
		LayoutGen:   3,
		From:        "127.0.0.1:7777",
		PolicyStr:   "user-then-size-fair",
		PolicyEpoch: 6,
	}
}

// The binary codec round-trips every request field, and the accept side
// adopts the binary codec for its replies.
func TestBinaryRoundTripAndAdoption(t *testing.T) {
	c1, c2 := binaryPair()
	defer c1.Close()
	defer c2.Close()
	want := sampleRequest()
	done := make(chan *Request, 1)
	go func() {
		got, err := c2.RecvRequest()
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- got
	}()
	if err := c1.SendRequest(want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil {
		t.Fatal("no request")
	}
	if got.Type != want.Type || got.Seq != want.Seq || got.Job != want.Job ||
		got.Path != want.Path || got.Offset != want.Offset || got.Size != want.Size ||
		string(got.Data) != string(want.Data) || got.Stripes != want.Stripes ||
		got.StripeUnit != want.StripeUnit || len(got.StripeSet) != 4 ||
		got.StripeSet[3] != "d:4" || got.From != want.From ||
		got.MigrateOp != want.MigrateOp || got.Gen != want.Gen ||
		got.LayoutGen != want.LayoutGen || got.PolicyStr != want.PolicyStr ||
		got.PolicyEpoch != want.PolicyEpoch {
		t.Fatalf("binary request round trip: %+v", got)
	}
	if !c2.recvBin || !c2.sendBin {
		t.Fatalf("accept side should have adopted binary: recv=%v send=%v", c2.recvBin, c2.sendBin)
	}
	// The reply comes back binary and the dial side auto-detects it.
	wantResp := &Response{
		Seq: 99, N: 5, Data: []byte{9, 8}, Size: 123, IsDir: true,
		Names: []string{"x", "y"}, Stripes: 2, StripeUnit: 1 << 20,
		StripeSet: []string{"a:1", "b:2"}, LayoutGen: 4, Gen: 21, Epoch: 7,
		Members:   []MemberRecord{{Addr: "a:1", State: 2, Incarnation: 11}},
		PolicyStr: "size-fair", PolicyEpoch: 6,
		Shares: []ShareRecord{
			{Kind: "job", ID: "j1", Compiled: 0.75, Measured: 0.743, Bytes: 1 << 30},
			{Kind: "user", ID: "alice", Compiled: 0.25, Measured: 0.26, Bytes: 4096},
		},
	}
	go func() {
		if err := c2.SendResponse(wantResp); err != nil {
			t.Error(err)
		}
	}()
	gotResp, err := c1.RecvResponse()
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Seq != 99 || gotResp.N != 5 || string(gotResp.Data) != string(wantResp.Data) ||
		!gotResp.IsDir || gotResp.Size != 123 || len(gotResp.Names) != 2 ||
		gotResp.Epoch != 7 || len(gotResp.Members) != 1 ||
		gotResp.Members[0].Incarnation != 11 || len(gotResp.StripeSet) != 2 ||
		gotResp.LayoutGen != 4 || gotResp.Gen != 21 ||
		gotResp.PolicyStr != "size-fair" || gotResp.PolicyEpoch != 6 ||
		len(gotResp.Shares) != 2 || gotResp.Shares[0] != wantResp.Shares[0] ||
		gotResp.Shares[1] != wantResp.Shares[1] {
		t.Fatalf("binary response round trip: %+v", gotResp)
	}
	if !c1.recvBin {
		t.Fatal("dial side should have detected the binary reply stream")
	}
}

// A gob sender against an auto-detecting receiver stays fully gob in
// both directions — the mixed-version fallback.
func TestGobPeerKeepsGobReplies(t *testing.T) {
	a, b := net.Pipe()
	c1, c2 := NewConn(a), NewConn(b) // both legacy
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = c1.SendRequest(&Request{Type: MsgStat, Seq: 5, Path: "/p"})
	}()
	got, err := c2.RecvRequest()
	if err != nil || got.Seq != 5 {
		t.Fatalf("gob request: %+v err=%v", got, err)
	}
	if c2.recvBin || c2.sendBin {
		t.Fatal("gob peer must not flip the accept side to binary")
	}
	go func() {
		_ = c2.SendResponse(&Response{Seq: 5, Err: "nope"})
	}()
	resp, err := c1.RecvResponse()
	if err != nil || resp.Seq != 5 || resp.Error() == nil {
		t.Fatalf("gob response: %+v err=%v", resp, err)
	}
}

// Control frames — the gossip job-table snapshot — survive the binary
// framing via the embedded blob, so a binary client connection can still
// carry MsgClusterStatus/MsgSync traffic.
func TestBinaryCarriesTableAndMembers(t *testing.T) {
	c1, c2 := binaryPair()
	defer c1.Close()
	defer c2.Close()
	req := sampleRequest()
	req.Type = MsgGossip
	req.Table = []jobtable.Entry{{
		Info:    policy.JobInfo{JobID: "j1", UserID: "u1", Nodes: 4},
		Last:    3 * time.Second,
		Servers: map[string]bool{"s1": true},
		Demand:  9,
	}}
	req.Members = []MemberRecord{{Addr: "s1", State: 1, Incarnation: 3}}
	go func() { _ = c1.SendRequest(req) }()
	got, err := c2.RecvRequest()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Table) != 1 || !got.Table[0].Servers["s1"] || got.Table[0].Demand != 9 ||
		len(got.Members) != 1 || got.Members[0].Incarnation != 3 {
		t.Fatalf("control fields lost: %+v", got)
	}
}

// Encode/decode are exact inverses on the raw frame level, including
// empty and nil fields.
func TestCodecSymmetry(t *testing.T) {
	reqs := []*Request{
		{},
		{Type: MsgBye},
		sampleRequest(),
		{Type: MsgRead, Seq: 1, Path: "/r", Offset: -1, Size: 1 << 20},
	}
	for i, want := range reqs {
		b := appendRequest(nil, want)
		var got Request
		if err := decodeRequest(b, &got); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Job != want.Job ||
			got.Path != want.Path || got.Offset != want.Offset ||
			string(got.Data) != string(want.Data) || len(got.StripeSet) != len(want.StripeSet) {
			t.Fatalf("case %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	// Truncated frames error instead of panicking.
	full := appendRequest(nil, sampleRequest())
	for cut := 0; cut < len(full); cut += 3 {
		var got Request
		if err := decodeRequest(full[:cut], &got); err == nil && cut < len(full)-1 {
			// Short prefixes of a valid frame may still parse if the cut
			// lands past all fields; anything else must error, not panic.
			_ = got
		}
	}
}
