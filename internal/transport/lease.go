// Payload buffer leasing: the tiered sync.Pool behind the zero-copy
// receive path. A binary-decoded message's Data no longer copies out of
// the frame scratch — the frame buffer itself is leased from this pool,
// the decoded byte-slice fields alias it, and ownership rides with the
// message until its Release. The server's read path leases its reply
// payloads from the same pool, so a steady read/write workload recycles
// stripe-unit-sized buffers instead of allocating one per data message.
//
// Ownership contract (see ARCHITECTURE.md "Data path"):
//
//   - Lease(n) returns a []byte of length n whose backing array came
//     from the pool (or a fresh allocation on a miss, or a plain
//     allocation above the largest class).
//   - Release(b) returns the backing array to its size class. b must be
//     a slice obtained from Lease (reslicing the front, b[:k], is fine —
//     the backing array is recycled whole). Releasing is optional:
//     an unreleased buffer falls to the garbage collector like any
//     other allocation — a throughput leak, never a correctness one.
//   - After Release, the buffer and every alias of it must not be
//     touched. SetLeasePoison(true) (tests) scribbles released buffers
//     so a use-after-release shows up as corrupt data under -race
//     instead of a heisenbug.
package transport

import (
	"sync"
	"sync/atomic"
)

// leaseClasses are the payload size classes, spanning a heartbeat frame
// up to the largest adaptive stripe unit. Above the top class Lease
// falls back to a plain allocation (Release ignores it).
var leaseClasses = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

var leasePools [len(leaseClasses)]sync.Pool

// leaseGets / leaseMisses meter the payload pool for the operator
// metrics endpoint, mirroring the scratch pool's PoolStats.
var leaseGets, leaseMisses atomic.Int64

// leasePoison, when set, scribbles released buffers (test hook).
var leasePoison atomic.Bool

// leasePoisonByte is what a released buffer is filled with under
// SetLeasePoison — distinctive enough that it cannot pass for payload
// in a content-checked test.
const leasePoisonByte = 0xdb

// Lease returns a length-n byte slice backed by the payload pool.
func Lease(n int) []byte {
	leaseGets.Add(1)
	for i, sz := range leaseClasses {
		if n <= sz {
			if v := leasePools[i].Get(); v != nil {
				return v.([]byte)[:n]
			}
			leaseMisses.Add(1)
			return make([]byte, n, sz)
		}
	}
	leaseMisses.Add(1)
	return make([]byte, n)
}

// Release returns a leased buffer's backing array to its size class.
// Slices whose capacity matches no class (plain allocations above the
// top class, or foreign slices) are left to the garbage collector.
func Release(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	for i, sz := range leaseClasses {
		if c == sz {
			full := b[:sz]
			if leasePoison.Load() {
				for j := range full {
					full[j] = leasePoisonByte
				}
			}
			//lint:ignore SA6002 the slice-header box is one 24-byte allocation per release, dwarfed by the payload it recycles
			leasePools[i].Put(full)
			return
		}
	}
}

// LeaseStats reports the payload pool's lifetime gets and misses (a
// miss is a Lease that had to allocate). Process-wide, like PoolStats.
func LeaseStats() (gets, misses int64) {
	return leaseGets.Load(), leaseMisses.Load()
}

// SetLeasePoison toggles scribbling of released buffers — a test hook
// that turns any read-after-Release into visibly corrupt data. Safe to
// leave on for whole test binaries: a correct program never observes a
// released buffer.
func SetLeasePoison(on bool) { leasePoison.Store(on) }
