package transport

import (
	"bufio"
	"io"
	"net"
	"sync/atomic"
)

// Stats counts frames and bytes through a set of connections, by
// message type and direction — the transport layer's contribution to
// the operator metrics endpoint. Requests are attributed to their
// MsgType; responses (which carry no type on the wire) are counted
// under the synthetic "response" row. Counting is a pair of atomic
// adds per frame; a Stats may be shared by every connection a server
// accepts.
//
// Byte counts are exact stream positions, not payload sizes: the
// sender side counts what actually went down the socket (framing,
// codec magic and gob type headers included), and the receiver side
// derives the consumed prefix as raw-bytes-read minus the decoder's
// read-ahead still buffered.
type Stats struct {
	frames [2][numTypeSlots]atomic.Int64
	bytes  [2][numTypeSlots]atomic.Int64
}

// Directions for Stats rows.
const (
	DirIn = iota
	DirOut
)

// numMsgTypes is the count of defined MsgType values; the extra slot
// counts responses.
const (
	numMsgTypes  = int(MsgShareReport) + 1
	respSlot     = numMsgTypes
	numTypeSlots = numMsgTypes + 1
)

func (s *Stats) count(dir, slot int, nbytes int64) {
	if slot < 0 || slot >= numTypeSlots {
		return
	}
	s.frames[dir][slot].Add(1)
	s.bytes[dir][slot].Add(nbytes)
}

// Snapshot emits one row per (type, direction) with traffic: typ is
// the MsgType name or "response", dir is "in" or "out". Rows with zero
// frames are skipped, so a scrape shows only the message types the
// fabric has actually exchanged.
func (s *Stats) Snapshot(emit func(typ, dir string, frames, bytes int64)) {
	dirs := [2]string{DirIn: "in", DirOut: "out"}
	for d := 0; d < 2; d++ {
		for t := 0; t < numTypeSlots; t++ {
			f := s.frames[d][t].Load()
			if f == 0 {
				continue
			}
			name := "response"
			if t < numMsgTypes {
				name = MsgType(t).String()
			}
			emit(name, dirs[d], f, s.bytes[d][t].Load())
		}
	}
}

// PoolStats reports the codec scratch-buffer pool's lifetime gets and
// misses (a miss is a Get that had to allocate a fresh buffer). The
// pool is process-wide — it backs every connection — so the hit rate
// is a process-level figure: at steady state gets grows and misses
// does not.
func PoolStats() (gets, misses int64) {
	return poolGets.Load(), poolMisses.Load()
}

// countReader counts raw bytes read from the socket. It sits between
// the net.Conn and the bufio.Reader, so its count includes the
// decoder's read-ahead; the per-message attribution subtracts what is
// still buffered. Owned by the single reader goroutine — plain fields.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countWriter counts raw bytes written to the socket. All writes
// happen under the connection's write mutex, so plain fields suffice.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewConnStats is NewConn with per-message accounting into st: the
// accept side of an instrumented server. Passing nil st is NewConn.
func NewConnStats(raw net.Conn, st *Stats) *Conn {
	if st == nil {
		return NewConn(raw)
	}
	cr := &countReader{r: raw}
	cw := &countWriter{w: raw}
	return &Conn{
		raw: raw, w: cw, br: bufio.NewReader(cr),
		cr: cr, cw: cw, stats: st, adopt: true,
	}
}

// NewBinaryConnStats is NewBinaryConn with per-message accounting into
// st: an instrumented dial side (the themisctl network probe). Passing
// nil st is NewBinaryConn.
func NewBinaryConnStats(raw net.Conn, st *Stats) *Conn {
	if st == nil {
		return NewBinaryConn(raw)
	}
	cr := &countReader{r: raw}
	cw := &countWriter{w: raw}
	return &Conn{
		raw: raw, w: cw, br: bufio.NewReader(cr),
		cr: cr, cw: cw, stats: st, sendBin: true,
	}
}

// recvPos returns the stream position the reader has consumed up to:
// raw bytes read minus the decoder read-ahead still buffered.
func (c *Conn) recvPos() int64 { return c.cr.n - int64(c.br.Buffered()) }

// noteRecv attributes the just-decoded message's bytes. Reader
// goroutine only.
func (c *Conn) noteRecv(slot int) {
	pos := c.recvPos()
	c.stats.count(DirIn, slot, pos-c.lastRecvPos)
	c.lastRecvPos = pos
}
