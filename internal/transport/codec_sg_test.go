package transport

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// sinkConn discards writes — the alloc-measurement target (a net.Pipe
// would block without a reader and a TCP socket would add syscalls).
type sinkConn struct{ net.Conn }

func (sinkConn) Write(p []byte) (int, error)      { return len(p), nil }
func (sinkConn) SetWriteDeadline(time.Time) error { return nil }

// The receive path leases the frame and the decoded Data aliases it —
// both directions, both payload sizes (folded flat and vectored).
func TestLeasedAliasRoundTrip(t *testing.T) {
	for _, size := range []int{64, sgMinPayload, 1 << 20} {
		c1, c2 := binaryPair()
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		go func() {
			_ = c1.SendRequest(&Request{Type: MsgWrite, Seq: 3, Path: "/f", Data: payload})
		}()
		req, err := c2.RecvRequest()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(req.Data, payload) {
			t.Fatalf("size %d: request payload corrupted", size)
		}
		if req.frame == nil {
			t.Fatalf("size %d: binary-decoded request should own a leased frame", size)
		}
		req.Release()
		if req.Data != nil {
			t.Fatal("Release must nil Data so stale uses fail loudly")
		}
		// Response direction, with the lease attached server-style.
		go func() {
			resp := &Response{Seq: 3, N: int64(size)}
			lease := Lease(size)
			copy(lease, payload)
			resp.Data = lease
			resp.AttachLease(lease)
			_ = c2.SendResponse(resp)
			resp.Release()
		}()
		resp, err := c1.RecvResponse()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(resp.Data, payload) {
			t.Fatalf("size %d: response payload corrupted", size)
		}
		resp.Release()
		c1.Close()
		c2.Close()
	}
}

// Release scribbles the buffer under the poison hook, so any alias read
// after Release shows corrupt data instead of a heisenbug.
func TestReleasePoison(t *testing.T) {
	SetLeasePoison(true)
	defer SetLeasePoison(false)
	b := Lease(64 << 10)
	for i := range b {
		b[i] = 0xaa
	}
	alias := b[100:200]
	Release(b)
	for i, v := range alias {
		if v != leasePoisonByte {
			t.Fatalf("alias[%d] = %#x after Release, want poison %#x", i, v, leasePoisonByte)
		}
	}
	// Oversized leases (above the top class) are plain allocations and
	// Release must leave them alone.
	big := Lease(8 << 20)
	big[0] = 1
	Release(big)
	if big[0] != 1 {
		t.Fatal("Release must not touch an above-class buffer")
	}
}

// A segmented payload (DataSegs) is byte-identical on the wire to the
// same bytes sent flat — on the binary codec (both the folded and the
// vectored path) and on the legacy gob codec (which flattens).
func TestSegmentedSendEqualsFlat(t *testing.T) {
	for _, size := range []int{100, 64 << 10} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 13)
		}
		segs := [][]byte{payload[:size/3], payload[size/3 : size/2], payload[size/2:]}
		for _, legacy := range []bool{false, true} {
			a, b := net.Pipe()
			var c1 *Conn
			if legacy {
				c1 = NewConn(a)
			} else {
				c1 = NewBinaryConn(a)
			}
			c2 := NewConn(b)
			req := &Request{Type: MsgWrite, Seq: 9, Path: "/f", DataSegs: segs, LayoutGen: 2}
			go func() { _ = c1.SendRequest(req) }()
			got, err := c2.RecvRequest()
			if err != nil {
				t.Fatalf("legacy=%v size=%d: %v", legacy, size, err)
			}
			if !bytes.Equal(got.Data, payload) || got.DataSegs != nil {
				t.Fatalf("legacy=%v size=%d: segmented send did not arrive flat and intact", legacy, size)
			}
			if req.DataSegs == nil || req.Data != nil {
				t.Fatal("send must not mutate the caller's request")
			}
			got.Release()
			c1.Close()
			c2.Close()
		}
	}
}

// Wire compatibility across versions: a frame without the new trailing
// fields is byte-identical to the pre-scatter-gather encoding (the new
// group is a strict suffix), an old-style frame decodes with the new
// fields zero, and unknown future trailing bytes are skipped unparsed —
// the exact properties that let a PR 6 peer interoperate with this one.
func TestWireCompatTrailingFields(t *testing.T) {
	base := sampleRequest()
	old := appendRequest(nil, base)

	at := sampleRequest()
	at.AppendAt = true
	at.AppendOff = 1 << 30
	newer := appendRequest(nil, at)
	if !bytes.HasPrefix(newer, old) || len(newer) == len(old) {
		t.Fatal("the AppendAt group must extend the old encoding as a strict suffix")
	}

	var got Request
	if err := decodeRequest(old, &got); err != nil {
		t.Fatal(err)
	}
	if got.AppendAt || got.AppendOff != 0 {
		t.Fatal("an old-style frame must decode with the trailing fields zero")
	}
	if err := decodeRequest(newer, &got); err != nil {
		t.Fatal(err)
	}
	if !got.AppendAt || got.AppendOff != 1<<30 {
		t.Fatalf("trailing group lost: %+v", got)
	}
	// A yet-newer sender may append bytes this decoder has never heard
	// of; they must be ignored, not failed.
	future := append(append([]byte{}, newer...), 0x80, 0x01, 0xde, 0xad)
	if err := decodeRequest(future, &got); err != nil {
		t.Fatalf("unknown trailing bytes must be skipped: %v", err)
	}

	// The share-report paging filter rides the same flagged group, alone
	// or composed with AppendAt (fields in flag-bit order).
	flt := sampleRequest()
	flt.ShareTopN = 20
	flt.ShareKind = "user"
	fb := appendRequest(nil, flt)
	if !bytes.HasPrefix(fb, old) || len(fb) == len(old) {
		t.Fatal("the share-filter group must extend the old encoding as a strict suffix")
	}
	var gotF Request
	if err := decodeRequest(fb, &gotF); err != nil || gotF.ShareTopN != 20 || gotF.ShareKind != "user" {
		t.Fatalf("share filter lost: %+v err=%v", gotF, err)
	}
	if gotF.AppendAt {
		t.Fatal("filter-only frame must not imply AppendAt")
	}
	both := sampleRequest()
	both.AppendAt, both.AppendOff = true, 4096
	both.ShareTopN, both.ShareKind = 5, "group"
	var gotB Request
	if err := decodeRequest(appendRequest(nil, both), &gotB); err != nil ||
		!gotB.AppendAt || gotB.AppendOff != 4096 || gotB.ShareTopN != 5 || gotB.ShareKind != "group" {
		t.Fatalf("composed flag groups lost: %+v err=%v", gotB, err)
	}

	// Response side: the capability word.
	r := &Response{Seq: 7, N: 5, Size: 99}
	oldR := appendResponse(nil, r)
	r.Caps = CapAppendAt
	newR := appendResponse(nil, r)
	if !bytes.HasPrefix(newR, oldR) || len(newR) == len(oldR) {
		t.Fatal("the Caps word must extend the old encoding as a strict suffix")
	}
	var gotR Response
	if err := decodeResponse(oldR, &gotR); err != nil || gotR.Caps != 0 {
		t.Fatalf("old-style response: caps=%d err=%v", gotR.Caps, err)
	}
	if err := decodeResponse(newR, &gotR); err != nil || gotR.Caps != CapAppendAt {
		t.Fatalf("caps word lost: caps=%d err=%v", gotR.Caps, err)
	}
}

// The steady-state encode of a 64 KiB data frame performs zero
// allocations: scratch comes from the pool, the payload rides as an
// iovec, and the iovec list is the connection's reusable field. This is
// the regression pin for the zero-copy send path.
func TestEncodeAllocs(t *testing.T) {
	c := NewBinaryConn(sinkConn{})
	data := make([]byte, 64<<10)
	req := &Request{Type: MsgWrite, Seq: 1, Path: "/bench/file", Data: data, LayoutGen: 3}
	for i := 0; i < 8; i++ { // warm the scratch pool and iovec array
		if err := c.SendRequest(req); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := c.SendRequest(req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("64 KiB data frame encode = %v allocs/op, want 0", n)
	}
}
