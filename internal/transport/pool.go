// Per-server connection pools. One TCP connection per (client, server)
// serializes every stripe of a job through a single kernel socket lock;
// a small pool multiplies the paths without giving up the ordering that
// positional appends rely on. The pick discipline carries the
// correctness argument:
//
//   - SlotFor(key) is the stripe-affinity pick: a stable key (the
//     client hashes path and stripe index) always lands on the same
//     slot, so one file's chunk stream for one stripe rides one
//     connection in send order. The server's AppendAtGen reorder buffer
//     then never parks a copy for pool-induced reordering, and the BDP
//     estimator's samples stay coherent per network path.
//   - PickSpread() rotates over every slot: reads at explicit offsets
//     are idempotent and order-free, so read chunks fan out across all
//     connections for parallel socket reads and parallel decode.
//   - Pick() rotates over the already-open connections only, so
//     control traffic (stats, broadcasts) never forces a lazy dial.
//
// Slot 0 is dialed when the pool is built — pool construction keeps the
// dial-error semantics a single connection had — and every other slot
// dials on first use. A slot whose dial fails (or whose connection
// dies) cools down before it is retried, and picks fall back to a
// healthy slot in the meantime; losing the whole server is the owner's
// call (the client tears the pool down as it used to tear one
// connection down).
//
// Capabilities are negotiated once per pool: every response on any slot
// stamps the shared caps word, so a freshly dialed slot N inherits what
// slot 0 already learned and pipelines immediately.
package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SlotCooldown is how long a pool slot fast-fails after a failed dial
// or a died connection before it is retried. Mirrors the client's
// whole-server dial cooldown, scoped to one slot.
const SlotCooldown = 3 * time.Second

// MuxConn multiplexes concurrent request/response exchanges over one
// connection: one reader goroutine, waiters keyed by Seq. It is the
// per-connection half of a Pool, split out so the client's pipelined
// stripe I/O can start requests without waiting.
type MuxConn struct {
	conn *Conn
	// caps is the pool-shared capability word; any response carrying a
	// non-zero Caps stamps it (heartbeat acks included, so negotiation
	// usually completes before the first data RPC).
	caps *atomic.Uint64
	dead atomic.Bool

	mu   sync.Mutex
	wait map[uint64]chan *Response
	err  error
}

func newMuxConn(conn *Conn, caps *atomic.Uint64) *MuxConn {
	mc := &MuxConn{conn: conn, caps: caps, wait: map[uint64]chan *Response{}}
	go mc.reader()
	return mc
}

func (mc *MuxConn) reader() {
	for {
		resp, err := mc.conn.RecvResponse()
		if err != nil {
			mc.dead.Store(true)
			mc.mu.Lock()
			mc.err = err
			for _, ch := range mc.wait {
				close(ch)
			}
			mc.wait = map[uint64]chan *Response{}
			mc.mu.Unlock()
			return
		}
		if resp.Caps != 0 && mc.caps != nil {
			mc.caps.Store(resp.Caps)
		}
		mc.mu.Lock()
		ch, ok := mc.wait[resp.Seq]
		delete(mc.wait, resp.Seq)
		mc.mu.Unlock()
		if ok {
			ch <- resp
		} else {
			// No waiter (caller torn down mid-exchange): the leased
			// frame goes straight back to the pool.
			resp.Release()
		}
	}
}

// Start registers req's response channel and puts the request on the
// wire without waiting — the building block of pipelined stripe I/O.
// The caller must receive exactly once from the returned channel; a
// closed channel means the connection died.
func (mc *MuxConn) Start(req *Request) (chan *Response, error) {
	ch := make(chan *Response, 1)
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	mc.wait[req.Seq] = ch
	mc.mu.Unlock()
	if err := mc.conn.SendRequest(req); err != nil {
		mc.mu.Lock()
		delete(mc.wait, req.Seq)
		mc.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Forget abandons a started exchange (context cancellation): the waiter
// is deregistered so the reader releases the late response's frame, and
// anything already delivered into the buffered channel is released
// here.
func (mc *MuxConn) Forget(seq uint64, ch chan *Response) {
	mc.mu.Lock()
	delete(mc.wait, seq)
	mc.mu.Unlock()
	select {
	case resp, ok := <-ch:
		if ok && resp != nil {
			resp.Release()
		}
	default:
	}
}

// Call performs one request/response exchange, honoring ctx: on
// cancellation the waiter is abandoned (the late response's frame still
// returns to the lease pool) and ctx.Err() is returned.
func (mc *MuxConn) Call(ctx context.Context, req *Request) (*Response, error) {
	ch, err := mc.Start(req)
	if err != nil {
		return nil, err
	}
	if ctx == nil || ctx.Done() == nil {
		resp, ok := <-ch
		if !ok {
			return nil, fmt.Errorf("transport: connection lost")
		}
		return resp, nil
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("transport: connection lost")
		}
		return resp, nil
	case <-ctx.Done():
		mc.Forget(req.Seq, ch)
		return nil, ctx.Err()
	}
}

// Send fires a request without expecting to wait on its response
// (heartbeats, goodbyes); any response that does come back is consumed
// by the reader (and still stamps the pool's caps).
func (mc *MuxConn) Send(req *Request) error { return mc.conn.SendRequest(req) }

// Dead reports whether the connection's reader has exited.
func (mc *MuxConn) Dead() bool { return mc.dead.Load() }

// Close closes the underlying connection; the reader exits and fails
// every waiter.
func (mc *MuxConn) Close() { mc.conn.Close() }

// poolSlot is one lazily dialed connection of a Pool. The slot mutex
// serializes dialing of this slot only; picks on other slots proceed.
type poolSlot struct {
	mu       sync.Mutex
	mc       atomic.Pointer[MuxConn]
	badUntil atomic.Int64 // unixnano; cooldown after a failed dial or death
}

// Pool is a fixed-width set of connections to one server.
type Pool struct {
	addr string
	size int
	dial func(addr string) (*Conn, error)

	caps   atomic.Uint64
	slots  []poolSlot
	closed atomic.Bool

	rr atomic.Uint64 // spread-pick cursor

	// Window budgets: the in-flight pipeline depth is a property of the
	// pool, not of one connection — depth×size tokens each for writes
	// and reads, so a size-1 pool budgets exactly what one connection
	// used to, and a wider pool scales the budget with its paths.
	wtok, rtok chan struct{}

	inflight atomic.Int64 // acquired window tokens (both kinds)
}

// NewPool builds a pool of size connections to addr with a per-conn
// pipeline depth of depth (the write and read window budgets are each
// depth×size). Slot 0 is dialed immediately — a pool to an unreachable
// server fails here, like a single dial used to — and the remaining
// slots dial on first use.
func NewPool(addr string, size, depth int, dial func(addr string) (*Conn, error)) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{
		addr:  addr,
		size:  size,
		dial:  dial,
		slots: make([]poolSlot, size),
		wtok:  make(chan struct{}, size*depth),
		rtok:  make(chan struct{}, size*depth),
	}
	if _, err := p.ensureSlot(0); err != nil {
		return nil, err
	}
	registerPool(p)
	return p, nil
}

// Addr returns the server address the pool connects to.
func (p *Pool) Addr() string { return p.addr }

// Size returns the pool's configured width.
func (p *Pool) Size() int { return p.size }

// Caps returns the pool-level capability word — the bits any response
// on any slot has stamped.
func (p *Pool) Caps() uint64 { return p.caps.Load() }

var errPoolClosed = fmt.Errorf("transport: pool closed")

// ensureSlot returns slot i's live connection, dialing it on first use.
// A slot in cooldown (recent failed dial, or a connection that died)
// fails fast so the caller can fall back to a healthy slot.
func (p *Pool) ensureSlot(i int) (*MuxConn, error) {
	s := &p.slots[i]
	if mc := s.mc.Load(); mc != nil && !mc.Dead() {
		return mc, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.closed.Load() {
		return nil, errPoolClosed
	}
	if mc := s.mc.Load(); mc != nil {
		if !mc.Dead() {
			return mc, nil
		}
		// The connection died under us: evict it and cool the slot down
		// so one flapping path cannot trigger a dial storm.
		mc.Close()
		s.mc.Store(nil)
		s.badUntil.Store(time.Now().Add(SlotCooldown).UnixNano())
	}
	if time.Now().UnixNano() < s.badUntil.Load() {
		return nil, fmt.Errorf("transport: pool slot %d of %s cooling down", i, p.addr)
	}
	poolDialing.Add(1)
	conn, err := p.dial(p.addr)
	poolDialing.Add(-1)
	if err != nil {
		s.badUntil.Store(time.Now().Add(SlotCooldown).UnixNano())
		return nil, err
	}
	mc := newMuxConn(conn, &p.caps)
	if p.closed.Load() {
		// Close ran while we dialed; registering now would leak the
		// socket past teardown.
		mc.Close()
		return nil, errPoolClosed
	}
	s.mc.Store(mc)
	return mc, nil
}

// SlotFor is the stripe-affinity pick: key maps deterministically to a
// slot, so the same (path, stripe) always rides the same connection and
// per-stripe append order is preserved end to end. When the affinity
// slot is unhealthy the pick degrades to the nearest healthy slot —
// order degrades to the server's reorder buffer rather than the whole
// write failing — and only when no slot can be had does the pool report
// the last error for the owner to fail the server over.
func (p *Pool) SlotFor(key uint64) (*MuxConn, error) {
	i := int(key % uint64(p.size))
	countPick(i)
	mc, err := p.ensureSlot(i)
	if err == nil {
		return mc, nil
	}
	return p.fallback(i, err)
}

// PickSpread rotates over every slot, dialing lazily — the read path's
// pick, spreading idempotent chunk RPCs across all connections.
func (p *Pool) PickSpread() (*MuxConn, error) {
	i := int(p.rr.Add(1) % uint64(p.size))
	countPick(i)
	mc, err := p.ensureSlot(i)
	if err == nil {
		return mc, nil
	}
	return p.fallback(i, err)
}

// Pick rotates over the already-open connections only — the control
// path's pick, which must never stall a stat behind a lazy dial. With
// nothing open yet it dials slot 0 (the primed slot, so this only
// happens after a death).
func (p *Pool) Pick() (*MuxConn, error) {
	n := int(p.rr.Add(1))
	for k := 0; k < p.size; k++ {
		i := (n + k) % p.size
		if mc := p.slots[i].mc.Load(); mc != nil && !mc.Dead() {
			countPick(i)
			return mc, nil
		}
	}
	countPick(0)
	return p.ensureSlot(0)
}

// fallback scans for any healthy slot after pick i failed, preferring
// already-open connections, then undialed slots.
func (p *Pool) fallback(i int, lastErr error) (*MuxConn, error) {
	for k := 1; k < p.size; k++ {
		j := (i + k) % p.size
		if mc := p.slots[j].mc.Load(); mc != nil && !mc.Dead() {
			return mc, nil
		}
	}
	for k := 1; k < p.size; k++ {
		j := (i + k) % p.size
		if mc, err := p.ensureSlot(j); err == nil {
			return mc, nil
		}
	}
	return nil, lastErr
}

// AcquireWrite takes one write-window token, honoring ctx. The budget
// is pool-wide: concurrent striped writes to one server share depth×size
// in-flight chunk RPCs instead of each opening its own window.
func (p *Pool) AcquireWrite(ctx context.Context) error { return p.acquire(ctx, p.wtok) }

// ReleaseWrite returns a write-window token.
func (p *Pool) ReleaseWrite() { p.release(p.wtok) }

// TryAcquireWrite takes a write-window token only if one is free — the
// non-blocking pick callers use while they still hold collectable
// in-flight responses of their own (blocking then could deadlock on a
// token the caller itself must release).
func (p *Pool) TryAcquireWrite() bool { return p.tryAcquire(p.wtok) }

// AcquireRead takes one read-window token, honoring ctx.
func (p *Pool) AcquireRead(ctx context.Context) error { return p.acquire(ctx, p.rtok) }

// TryAcquireRead takes a read-window token only if one is free.
func (p *Pool) TryAcquireRead() bool { return p.tryAcquire(p.rtok) }

// ReleaseRead returns a read-window token.
func (p *Pool) ReleaseRead() { p.release(p.rtok) }

func (p *Pool) tryAcquire(tok chan struct{}) bool {
	select {
	case tok <- struct{}{}:
		p.inflight.Add(1)
		return true
	default:
		return false
	}
}

func (p *Pool) acquire(ctx context.Context, tok chan struct{}) error {
	if ctx == nil || ctx.Done() == nil {
		tok <- struct{}{}
	} else {
		select {
		case tok <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	p.inflight.Add(1)
	return nil
}

func (p *Pool) release(tok chan struct{}) {
	p.inflight.Add(-1)
	<-tok
}

// ForEach calls f with every currently open connection (heartbeats,
// goodbyes). Lazily undialed slots are skipped.
func (p *Pool) ForEach(f func(*MuxConn)) {
	for i := range p.slots {
		if mc := p.slots[i].mc.Load(); mc != nil && !mc.Dead() {
			f(mc)
		}
	}
}

// OpenConns reports how many connections the pool currently holds open
// — the lazy-dial observable.
func (p *Pool) OpenConns() int {
	n := 0
	for i := range p.slots {
		if mc := p.slots[i].mc.Load(); mc != nil && !mc.Dead() {
			n++
		}
	}
	return n
}

// Close tears the pool down: every open connection closes and no new
// dial will register.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	unregisterPool(p)
	for i := range p.slots {
		s := &p.slots[i]
		s.mu.Lock()
		if mc := s.mc.Load(); mc != nil {
			mc.Close()
			s.mc.Store(nil)
		}
		s.mu.Unlock()
	}
}

// --- process-wide pool accounting (themis_transport_pool_*) -----------

// poolPickSlots bounds the picks-by-slot vector; wider pools fold their
// tail into the last bucket.
const poolPickSlots = 16

var (
	poolDialing atomic.Int64
	poolPicks   [poolPickSlots]atomic.Int64

	poolRegMu sync.Mutex
	poolReg   = map[*Pool]struct{}{}
)

func countPick(slot int) {
	if slot >= poolPickSlots {
		slot = poolPickSlots - 1
	}
	poolPicks[slot].Add(1)
}

func registerPool(p *Pool) {
	poolRegMu.Lock()
	poolReg[p] = struct{}{}
	poolRegMu.Unlock()
}

func unregisterPool(p *Pool) {
	poolRegMu.Lock()
	delete(poolReg, p)
	poolRegMu.Unlock()
}

// ConnPoolStats reports the process-wide pool state: connections open
// across every live pool, dials in progress, and slots sitting in
// cooldown. Computed at scrape time — the request path pays nothing.
func ConnPoolStats() (open, dialing, cooldown int64) {
	now := time.Now().UnixNano()
	poolRegMu.Lock()
	defer poolRegMu.Unlock()
	for p := range poolReg {
		for i := range p.slots {
			if mc := p.slots[i].mc.Load(); mc != nil && !mc.Dead() {
				open++
			} else if p.slots[i].badUntil.Load() > now {
				cooldown++
			}
		}
	}
	return open, dialing + poolDialing.Load(), cooldown
}

// PoolPicks emits the process-wide pick count per slot index (slot
// poolPickSlots-1 aggregates everything at or past it).
func PoolPicks(emit func(slot int, picks int64)) {
	for i := range poolPicks {
		if n := poolPicks[i].Load(); n > 0 {
			emit(i, n)
		}
	}
}

// PoolsSnapshot emits one row per live pool: its server address, open
// connection count and in-flight window tokens — the per-server
// in-flight gauge.
func PoolsSnapshot(emit func(addr string, open, inflight int64)) {
	poolRegMu.Lock()
	pools := make([]*Pool, 0, len(poolReg))
	for p := range poolReg {
		pools = append(pools, p)
	}
	poolRegMu.Unlock()
	for _, p := range pools {
		emit(p.addr, int64(p.OpenConns()), p.inflight.Load())
	}
}
