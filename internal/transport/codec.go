// Binary codec: hand-rolled length-prefixed framing for the hot data
// messages. A frame is a little-endian uint32 payload length followed by
// the payload; fields are written in a fixed order as uvarints, zigzag
// varints, and length-prefixed byte strings. The rare control-plane
// fields (the job-table snapshot carried by gossip/sync frames) ride as
// an embedded gob blob behind a presence flag, so the binary framing
// stays full-fidelity without reimplementing gob's reflective encoding
// for structures that never appear on the data path.
//
// Encode scratch space comes from a sync.Pool and payloads at or above
// sgMinPayload ride as their own iovecs (writev), so a steady-state
// write frame encodes with zero allocations and zero payload copies.
// On decode the frame buffer is leased from the payload pool and the
// decoded Data aliases it — no copy-out; ownership travels with the
// message until its Release (see lease.go for the contract).
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"themisio/internal/jobtable"
)

// maxFrame bounds a frame payload; anything larger is a corrupt or
// hostile stream.
const maxFrame = 1 << 30

type frameBuf struct{ b []byte }

// poolGets / poolMisses meter the scratch pool for the operator
// metrics endpoint: a miss is a Get the pool could not serve from a
// recycled buffer (the New path). See PoolStats.
var poolGets, poolMisses atomic.Int64

var framePool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return &frameBuf{b: make([]byte, 0, 4096)}
}}

// getFrameBuf is the metered Get.
func getFrameBuf() *frameBuf {
	poolGets.Add(1)
	return framePool.Get().(*frameBuf)
}

// sgMinPayload is the payload size at which the send path switches to
// the vectored (scatter-gather) write: the codec encodes everything
// except the payload into pooled scratch, and the payload bytes ride as
// their own iovec(s) straight from caller memory — one writev syscall,
// zero concatenation copies. Below it one concatenated write wins (the
// extra iovec bookkeeping costs more than copying a few KiB, and
// non-TCP conns fall back to one write per iovec anyway).
const sgMinPayload = 8 << 10

// sendVecFrames / sendVecBytes / sendFlatFrames meter the send path for
// the operator metrics endpoint: frames that went out vectored, the
// payload bytes that rode as their own iovecs (the zero-copy bytes),
// and frames sent as one concatenated write. Process-wide, like the
// pool counters.
var sendVecFrames, sendVecBytes, sendFlatFrames atomic.Int64

// IOStats reports the process-wide send-path split: frames sent via the
// vectored scatter-gather path, the payload bytes those frames carried
// as caller-owned iovecs, and frames sent as a single concatenated
// write (small payloads and control traffic).
func IOStats() (vecFrames, vecPayloadBytes, flatFrames int64) {
	return sendVecFrames.Load(), sendVecBytes.Load(), sendFlatFrames.Load()
}

// writeBinFrame sends one binary frame whose encoding has been split
// around the payload: head holds everything through the payload-length
// uvarint, tail everything after the payload, and data/segs the payload
// itself. Large payloads go out vectored as [head][payload...][tail] in
// one writev; small ones are folded into the scratch buffer and sent as
// a single write, byte-identical either way. Callers hold c.wmu.
func (c *Conn) writeBinFrame(data []byte, segs [][]byte,
	head func(b []byte, dataLen int) []byte, tail func(b []byte) []byte) error {

	n := len(data)
	if segs != nil {
		n = 0
		for _, s := range segs {
			n += len(s)
		}
	}
	buf := getFrameBuf()
	b := buf.b[:0]
	withMagic := !c.magicSent
	if withMagic {
		b = append(b, binMagic[:]...)
	}
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = head(b, n)
	vectored := n >= sgMinPayload
	if !vectored {
		if segs != nil {
			for _, s := range segs {
				b = append(b, s...)
			}
		} else {
			b = append(b, data...)
		}
	}
	mid := len(b)
	b = tail(b)
	plen := len(b) - start - 4
	if vectored {
		plen += n
	}
	if plen > maxFrame {
		// Nothing was written: the stream is intact and the magic (if
		// still owed) must ride the next frame, so don't latch magicSent.
		buf.b = b
		framePool.Put(buf)
		return fmt.Errorf("transport: frame exceeds %d bytes", maxFrame)
	}
	binary.LittleEndian.PutUint32(b[start:], uint32(plen))

	var err error
	if !vectored {
		_, err = c.w.Write(b)
		sendFlatFrames.Add(1)
	} else {
		// The iovec list bypasses the stats counting writer: wrapping
		// would defeat writev (net.Buffers only vectorizes on the raw
		// *net.TCPConn), so bytes are credited manually under wmu. The
		// list is built in the connection's reusable c.iov and WriteTo is
		// called on the field itself — a local net.Buffers header would
		// escape into the writev interface check and cost an allocation
		// per frame, which the 0-alloc encode pin forbids.
		iov := append(c.iov[:0], b[:mid])
		if segs != nil {
			for _, s := range segs {
				if len(s) > 0 {
					iov = append(iov, s)
				}
			}
		} else {
			iov = append(iov, data)
		}
		if mid < len(b) {
			iov = append(iov, b[mid:])
		}
		c.iov = iov
		var nw int64
		nw, err = c.iov.WriteTo(c.raw)
		if c.cw != nil {
			c.cw.n += nw
		}
		// WriteTo consumes the list in place; restore the full header and
		// drop the payload refs so the reusable array cannot pin caller
		// buffers past the send.
		for i := range iov {
			iov[i] = nil
		}
		c.iov = iov[:0]
		sendVecFrames.Add(1)
		sendVecBytes.Add(int64(n))
	}
	if err == nil && withMagic {
		c.magicSent = true
	}
	buf.b = b
	framePool.Put(buf)
	return err
}

// readFrameLeased reads one length-prefixed frame into a buffer leased
// from the payload pool and returns it. Ownership passes to the caller
// — normally to the decoded message, whose byte-slice Data aliases the
// frame and whose Release returns it (see Lease/Release).
func (c *Conn) readFrameLeased() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes", n)
	}
	b := Lease(int(n))
	if _, err := io.ReadFull(c.br, b); err != nil {
		Release(b)
		return nil, err
	}
	return b, nil
}

// --- primitive writers ---------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendSvarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendTable embeds a job-table snapshot as a flagged gob blob (gossip
// and sync frames only — never data messages).
func appendTable(b []byte, t []jobtable.Entry) []byte {
	if len(t) == 0 {
		return append(b, 0)
	}
	b = append(b, 1)
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(t); err != nil {
		// Entries are plain data; encoding them cannot fail. Emit an
		// empty blob rather than a torn frame if it somehow does.
		return appendBytes(b[:len(b)-1], nil)
	}
	return appendBytes(b, blob.Bytes())
}

// appendF64 writes a float64 as 8 fixed little-endian bytes (shares are
// uniform in [0,1]; varint encoding buys nothing on IEEE bit patterns).
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendShares(b []byte, ss []ShareRecord) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s.Kind)
		b = appendString(b, s.ID)
		b = appendF64(b, s.Compiled)
		b = appendF64(b, s.Measured)
		b = appendSvarint(b, s.Bytes)
	}
	return b
}

func appendMembers(b []byte, ms []MemberRecord) []byte {
	b = binary.AppendUvarint(b, uint64(len(ms)))
	for _, m := range ms {
		b = appendString(b, m.Addr)
		b = append(b, m.State)
		b = binary.AppendUvarint(b, m.Incarnation)
	}
	return b
}

// --- primitive reader ----------------------------------------------------

// reader decodes a frame payload; the first error sticks and zero values
// flow from then on, checked once at the end.
type reader struct {
	b   []byte
	err error
}

func (d *reader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("transport: truncated frame")
	}
	d.b = nil
}

func (d *reader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *reader) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *reader) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *reader) bool() bool { return d.u8() != 0 }

// raw returns the next n bytes of the frame without copying.
func (d *reader) raw(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *reader) str() string {
	return string(d.raw(d.uvarint()))
}

// alias returns the next length-prefixed slice as a view into the
// frame buffer — no copy. The frame is leased and owned by the decoded
// message (Release discipline), so the view stays valid until the
// message releases it.
func (d *reader) alias() []byte {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	return d.raw(n)
}

func (d *reader) strs() []string {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) { // each entry takes ≥1 byte
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *reader) table() []jobtable.Entry {
	if !d.bool() {
		return nil
	}
	blob := d.raw(d.uvarint())
	if len(blob) == 0 {
		return nil
	}
	var t []jobtable.Entry
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&t); err != nil {
		if d.err == nil {
			d.err = err
		}
		return nil
	}
	return t
}

func (d *reader) f64() float64 {
	raw := d.raw(8)
	if raw == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw))
}

func (d *reader) shares() []ShareRecord {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := make([]ShareRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var s ShareRecord
		s.Kind = d.str()
		s.ID = d.str()
		s.Compiled = d.f64()
		s.Measured = d.f64()
		s.Bytes = d.svarint()
		out = append(out, s)
	}
	return out
}

func (d *reader) members() []MemberRecord {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := make([]MemberRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var m MemberRecord
		m.Addr = d.str()
		m.State = d.u8()
		m.Incarnation = d.uvarint()
		out = append(out, m)
	}
	return out
}

// --- message codecs ------------------------------------------------------

// AppendRequestFrame appends the binary encoding of r to b (no length
// prefix) and returns the extended slice. Exported for the codec
// benchmark; the wire path goes through Conn. With sufficient capacity
// in b, encoding allocates nothing — the property the 0-alloc
// regression test pins.
func AppendRequestFrame(b []byte, r *Request) []byte { return appendRequest(b, r) }

// DecodeRequestFrame decodes a payload produced by AppendRequestFrame.
// The decoded Data aliases b — the caller owns the lifetime (on the
// wire path the alias is a leased frame released via Request.Release).
func DecodeRequestFrame(b []byte, r *Request) error { return decodeRequest(b, r) }

// AppendResponseFrame appends the binary encoding of r to b.
func AppendResponseFrame(b []byte, r *Response) []byte { return appendResponse(b, r) }

// DecodeResponseFrame decodes a payload produced by AppendResponseFrame.
func DecodeResponseFrame(b []byte, r *Response) error { return decodeResponse(b, r) }

// Flags of the optional trailing group of a request frame. The group is
// omitted entirely when every flagged field is zero, so such a frame is
// byte-identical to what older encoders produced; older decoders never
// look past the last fixed field and skip the group unparsed. Flagged
// field groups are encoded in flag-bit order, so a decoder that knows a
// prefix of the flags still parses everything it understands.
const (
	// reqFlagAppendAt: an offset-checked append position
	// (AppendAt/AppendOff).
	reqFlagAppendAt = 1 << 0
	// reqFlagShareFilter: a MsgShareReport paging filter
	// (ShareTopN/ShareKind).
	reqFlagShareFilter = 1 << 1
)

// appendRequestHead appends the fields up to and including the payload
// length — the prefix of the frame that precedes the Data bytes.
func appendRequestHead(b []byte, r *Request, dataLen int) []byte {
	b = append(b, byte(r.Type))
	b = appendUvarint(b, r.Seq)
	b = appendString(b, r.Job.JobID)
	b = appendString(b, r.Job.UserID)
	b = appendString(b, r.Job.GroupID)
	b = appendSvarint(b, int64(r.Job.Nodes))
	b = appendSvarint(b, int64(r.Job.Priority))
	b = appendSvarint(b, int64(r.Job.Presence))
	b = appendString(b, r.Path)
	b = appendSvarint(b, r.Offset)
	b = appendSvarint(b, r.Size)
	b = appendUvarint(b, uint64(dataLen))
	return b
}

// appendRequestTail appends the fields after the Data bytes, plus the
// optional trailing group (omitted when all-zero — wire compatibility).
func appendRequestTail(b []byte, r *Request) []byte {
	b = appendSvarint(b, int64(r.Stripes))
	b = appendSvarint(b, r.StripeUnit)
	b = appendStrings(b, r.StripeSet)
	b = append(b, r.MigrateOp)
	b = appendUvarint(b, r.Gen)
	b = appendUvarint(b, r.LayoutGen)
	b = appendString(b, r.From)
	b = appendMembers(b, r.Members)
	b = appendTable(b, r.Table)
	b = appendString(b, r.PolicyStr)
	b = appendUvarint(b, r.PolicyEpoch)
	var flags uint64
	if r.AppendAt {
		flags |= reqFlagAppendAt
	}
	if r.ShareTopN != 0 || r.ShareKind != "" {
		flags |= reqFlagShareFilter
	}
	if flags != 0 {
		b = appendUvarint(b, flags)
		if flags&reqFlagAppendAt != 0 {
			b = appendSvarint(b, r.AppendOff)
		}
		if flags&reqFlagShareFilter != 0 {
			b = appendSvarint(b, int64(r.ShareTopN))
			b = appendString(b, r.ShareKind)
		}
	}
	return b
}

func appendRequest(b []byte, r *Request) []byte {
	b = appendRequestHead(b, r, r.payloadLen())
	if r.DataSegs != nil {
		for _, s := range r.DataSegs {
			b = append(b, s...)
		}
	} else {
		b = append(b, r.Data...)
	}
	return appendRequestTail(b, r)
}

func decodeRequest(b []byte, r *Request) error {
	d := reader{b: b}
	r.Type = MsgType(d.u8())
	r.Seq = d.uvarint()
	r.Job.JobID = d.str()
	r.Job.UserID = d.str()
	r.Job.GroupID = d.str()
	r.Job.Nodes = int(d.svarint())
	r.Job.Priority = int(d.svarint())
	r.Job.Presence = int(d.svarint())
	r.Path = d.str()
	r.Offset = d.svarint()
	r.Size = d.svarint()
	r.Data = d.alias()
	r.Stripes = int(d.svarint())
	r.StripeUnit = d.svarint()
	r.StripeSet = d.strs()
	r.MigrateOp = d.u8()
	r.Gen = d.uvarint()
	r.LayoutGen = d.uvarint()
	r.From = d.str()
	r.Members = d.members()
	r.Table = d.table()
	r.PolicyStr = d.str()
	r.PolicyEpoch = d.uvarint()
	// Optional trailing group: present only when a newer sender had
	// something to say (an older sender's frame ends exactly here).
	if d.err == nil && len(d.b) > 0 {
		flags := d.uvarint()
		if flags&reqFlagAppendAt != 0 {
			r.AppendAt = true
			r.AppendOff = d.svarint()
		}
		if flags&reqFlagShareFilter != 0 {
			r.ShareTopN = int(d.svarint())
			r.ShareKind = d.str()
		}
	}
	return d.err
}

// appendResponseHead appends the fields up to and including the payload
// length — the prefix of the frame that precedes the Data bytes.
func appendResponseHead(b []byte, r *Response, dataLen int) []byte {
	b = appendUvarint(b, r.Seq)
	b = appendString(b, r.Err)
	b = appendSvarint(b, r.N)
	b = appendUvarint(b, uint64(dataLen))
	return b
}

// appendResponseTail appends the fields after the Data bytes, plus the
// trailing capability word (omitted when zero — wire compatibility).
func appendResponseTail(b []byte, r *Response) []byte {
	b = appendSvarint(b, r.Size)
	b = appendBool(b, r.IsDir)
	b = appendStrings(b, r.Names)
	b = appendSvarint(b, int64(r.Stripes))
	b = appendSvarint(b, r.StripeUnit)
	b = appendStrings(b, r.StripeSet)
	b = appendUvarint(b, r.LayoutGen)
	b = appendUvarint(b, r.Gen)
	b = appendUvarint(b, r.Epoch)
	b = appendMembers(b, r.Members)
	b = appendTable(b, r.Table)
	b = appendString(b, r.PolicyStr)
	b = appendUvarint(b, r.PolicyEpoch)
	b = appendShares(b, r.Shares)
	if r.Caps != 0 {
		b = appendUvarint(b, r.Caps)
	}
	return b
}

func appendResponse(b []byte, r *Response) []byte {
	b = appendResponseHead(b, r, len(r.Data))
	b = append(b, r.Data...)
	return appendResponseTail(b, r)
}

func decodeResponse(b []byte, r *Response) error {
	d := reader{b: b}
	r.Seq = d.uvarint()
	r.Err = d.str()
	r.N = d.svarint()
	r.Data = d.alias()
	r.Size = d.svarint()
	r.IsDir = d.bool()
	r.Names = d.strs()
	r.Stripes = int(d.svarint())
	r.StripeUnit = d.svarint()
	r.StripeSet = d.strs()
	r.LayoutGen = d.uvarint()
	r.Gen = d.uvarint()
	r.Epoch = d.uvarint()
	r.Members = d.members()
	r.Table = d.table()
	r.PolicyStr = d.str()
	r.PolicyEpoch = d.uvarint()
	r.Shares = d.shares()
	// Optional trailing capability word (absent from older senders).
	if d.err == nil && len(d.b) > 0 {
		r.Caps = d.uvarint()
	}
	return d.err
}
