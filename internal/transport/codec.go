// Binary codec: hand-rolled length-prefixed framing for the hot data
// messages. A frame is a little-endian uint32 payload length followed by
// the payload; fields are written in a fixed order as uvarints, zigzag
// varints, and length-prefixed byte strings. The rare control-plane
// fields (the job-table snapshot carried by gossip/sync frames) ride as
// an embedded gob blob behind a presence flag, so the binary framing
// stays full-fidelity without reimplementing gob's reflective encoding
// for structures that never appear on the data path.
//
// Encode and decode scratch space comes from a sync.Pool, so a
// steady-state read/write workload allocates only the decoded payload
// itself (one slice per data-carrying message) — the property the codec
// benchmark pins against gob.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"themisio/internal/jobtable"
)

// maxFrame bounds a frame payload; anything larger is a corrupt or
// hostile stream.
const maxFrame = 1 << 30

type frameBuf struct{ b []byte }

// poolGets / poolMisses meter the scratch pool for the operator
// metrics endpoint: a miss is a Get the pool could not serve from a
// recycled buffer (the New path). See PoolStats.
var poolGets, poolMisses atomic.Int64

var framePool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return &frameBuf{b: make([]byte, 0, 4096)}
}}

// getFrameBuf is the metered Get.
func getFrameBuf() *frameBuf {
	poolGets.Add(1)
	return framePool.Get().(*frameBuf)
}

// writeFrame encodes one message with the pooled scratch buffer and
// writes it — magic first if this stream has not sent one — as a single
// raw write. Callers hold c.wmu.
func (c *Conn) writeFrame(encode func([]byte) []byte) error {
	buf := getFrameBuf()
	b := buf.b[:0]
	withMagic := !c.magicSent
	if withMagic {
		b = append(b, binMagic[:]...)
	}
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = encode(b)
	if len(b)-start-4 > maxFrame {
		// Nothing was written: the stream is intact and the magic (if
		// still owed) must ride the next frame, so don't latch magicSent.
		buf.b = b
		framePool.Put(buf)
		return fmt.Errorf("transport: frame exceeds %d bytes", maxFrame)
	}
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	_, err := c.w.Write(b)
	if err == nil && withMagic {
		c.magicSent = true
	}
	buf.b = b
	framePool.Put(buf)
	return err
}

// readFrame reads one length-prefixed frame into pooled scratch and
// decodes it. The decode callback must copy out anything it keeps.
func (c *Conn) readFrame(decode func([]byte) error) error {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes", n)
	}
	buf := getFrameBuf()
	if cap(buf.b) < int(n) {
		buf.b = make([]byte, n)
	}
	b := buf.b[:n]
	if _, err := io.ReadFull(c.br, b); err != nil {
		framePool.Put(buf)
		return err
	}
	err := decode(b)
	buf.b = b
	framePool.Put(buf)
	return err
}

// --- primitive writers ---------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendSvarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendTable embeds a job-table snapshot as a flagged gob blob (gossip
// and sync frames only — never data messages).
func appendTable(b []byte, t []jobtable.Entry) []byte {
	if len(t) == 0 {
		return append(b, 0)
	}
	b = append(b, 1)
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(t); err != nil {
		// Entries are plain data; encoding them cannot fail. Emit an
		// empty blob rather than a torn frame if it somehow does.
		return appendBytes(b[:len(b)-1], nil)
	}
	return appendBytes(b, blob.Bytes())
}

// appendF64 writes a float64 as 8 fixed little-endian bytes (shares are
// uniform in [0,1]; varint encoding buys nothing on IEEE bit patterns).
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendShares(b []byte, ss []ShareRecord) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s.Kind)
		b = appendString(b, s.ID)
		b = appendF64(b, s.Compiled)
		b = appendF64(b, s.Measured)
		b = appendSvarint(b, s.Bytes)
	}
	return b
}

func appendMembers(b []byte, ms []MemberRecord) []byte {
	b = binary.AppendUvarint(b, uint64(len(ms)))
	for _, m := range ms {
		b = appendString(b, m.Addr)
		b = append(b, m.State)
		b = binary.AppendUvarint(b, m.Incarnation)
	}
	return b
}

// --- primitive reader ----------------------------------------------------

// reader decodes a frame payload; the first error sticks and zero values
// flow from then on, checked once at the end.
type reader struct {
	b   []byte
	err error
}

func (d *reader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("transport: truncated frame")
	}
	d.b = nil
}

func (d *reader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *reader) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *reader) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *reader) bool() bool { return d.u8() != 0 }

// raw returns the next n bytes of the frame without copying.
func (d *reader) raw(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *reader) str() string {
	return string(d.raw(d.uvarint()))
}

// bytes copies the next length-prefixed slice out of the pooled frame
// (the frame buffer is reused as soon as decode returns).
func (d *reader) bytes() []byte {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	src := d.raw(n)
	if src == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, src)
	return out
}

func (d *reader) strs() []string {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) { // each entry takes ≥1 byte
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *reader) table() []jobtable.Entry {
	if !d.bool() {
		return nil
	}
	blob := d.raw(d.uvarint())
	if len(blob) == 0 {
		return nil
	}
	var t []jobtable.Entry
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&t); err != nil {
		if d.err == nil {
			d.err = err
		}
		return nil
	}
	return t
}

func (d *reader) f64() float64 {
	raw := d.raw(8)
	if raw == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw))
}

func (d *reader) shares() []ShareRecord {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := make([]ShareRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var s ShareRecord
		s.Kind = d.str()
		s.ID = d.str()
		s.Compiled = d.f64()
		s.Measured = d.f64()
		s.Bytes = d.svarint()
		out = append(out, s)
	}
	return out
}

func (d *reader) members() []MemberRecord {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := make([]MemberRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var m MemberRecord
		m.Addr = d.str()
		m.State = d.u8()
		m.Incarnation = d.uvarint()
		out = append(out, m)
	}
	return out
}

// --- message codecs ------------------------------------------------------

// AppendRequestFrame appends the binary encoding of r to b (no length
// prefix) and returns the extended slice. Exported for the codec
// benchmark; the wire path goes through Conn.
func AppendRequestFrame(b []byte, r *Request) []byte { return appendRequest(b, r) }

// DecodeRequestFrame decodes a payload produced by AppendRequestFrame.
func DecodeRequestFrame(b []byte, r *Request) error { return decodeRequest(b, r) }

// AppendResponseFrame appends the binary encoding of r to b.
func AppendResponseFrame(b []byte, r *Response) []byte { return appendResponse(b, r) }

// DecodeResponseFrame decodes a payload produced by AppendResponseFrame.
func DecodeResponseFrame(b []byte, r *Response) error { return decodeResponse(b, r) }

func appendRequest(b []byte, r *Request) []byte {
	b = append(b, byte(r.Type))
	b = appendUvarint(b, r.Seq)
	b = appendString(b, r.Job.JobID)
	b = appendString(b, r.Job.UserID)
	b = appendString(b, r.Job.GroupID)
	b = appendSvarint(b, int64(r.Job.Nodes))
	b = appendSvarint(b, int64(r.Job.Priority))
	b = appendSvarint(b, int64(r.Job.Presence))
	b = appendString(b, r.Path)
	b = appendSvarint(b, r.Offset)
	b = appendSvarint(b, r.Size)
	b = appendBytes(b, r.Data)
	b = appendSvarint(b, int64(r.Stripes))
	b = appendSvarint(b, r.StripeUnit)
	b = appendStrings(b, r.StripeSet)
	b = append(b, r.MigrateOp)
	b = appendUvarint(b, r.Gen)
	b = appendUvarint(b, r.LayoutGen)
	b = appendString(b, r.From)
	b = appendMembers(b, r.Members)
	b = appendTable(b, r.Table)
	b = appendString(b, r.PolicyStr)
	b = appendUvarint(b, r.PolicyEpoch)
	return b
}

func decodeRequest(b []byte, r *Request) error {
	d := reader{b: b}
	r.Type = MsgType(d.u8())
	r.Seq = d.uvarint()
	r.Job.JobID = d.str()
	r.Job.UserID = d.str()
	r.Job.GroupID = d.str()
	r.Job.Nodes = int(d.svarint())
	r.Job.Priority = int(d.svarint())
	r.Job.Presence = int(d.svarint())
	r.Path = d.str()
	r.Offset = d.svarint()
	r.Size = d.svarint()
	r.Data = d.bytes()
	r.Stripes = int(d.svarint())
	r.StripeUnit = d.svarint()
	r.StripeSet = d.strs()
	r.MigrateOp = d.u8()
	r.Gen = d.uvarint()
	r.LayoutGen = d.uvarint()
	r.From = d.str()
	r.Members = d.members()
	r.Table = d.table()
	r.PolicyStr = d.str()
	r.PolicyEpoch = d.uvarint()
	return d.err
}

func appendResponse(b []byte, r *Response) []byte {
	b = appendUvarint(b, r.Seq)
	b = appendString(b, r.Err)
	b = appendSvarint(b, r.N)
	b = appendBytes(b, r.Data)
	b = appendSvarint(b, r.Size)
	b = appendBool(b, r.IsDir)
	b = appendStrings(b, r.Names)
	b = appendSvarint(b, int64(r.Stripes))
	b = appendSvarint(b, r.StripeUnit)
	b = appendStrings(b, r.StripeSet)
	b = appendUvarint(b, r.LayoutGen)
	b = appendUvarint(b, r.Gen)
	b = appendUvarint(b, r.Epoch)
	b = appendMembers(b, r.Members)
	b = appendTable(b, r.Table)
	b = appendString(b, r.PolicyStr)
	b = appendUvarint(b, r.PolicyEpoch)
	b = appendShares(b, r.Shares)
	return b
}

func decodeResponse(b []byte, r *Response) error {
	d := reader{b: b}
	r.Seq = d.uvarint()
	r.Err = d.str()
	r.N = d.svarint()
	r.Data = d.bytes()
	r.Size = d.svarint()
	r.IsDir = d.bool()
	r.Names = d.strs()
	r.Stripes = int(d.svarint())
	r.StripeUnit = d.svarint()
	r.StripeSet = d.strs()
	r.LayoutGen = d.uvarint()
	r.Gen = d.uvarint()
	r.Epoch = d.uvarint()
	r.Members = d.members()
	r.Table = d.table()
	r.PolicyStr = d.str()
	r.PolicyEpoch = d.uvarint()
	r.Shares = d.shares()
	return d.err
}
