// Package transport defines the wire protocol between ThemisIO clients
// and servers, and between servers (job-table synchronization). The
// paper uses UCX over InfiniBand (§4.2); this implementation frames the
// same message semantics over any net.Conn — the scheduler arbitrates at
// the request level either way, and transport latency constants live in
// the simulator, not here.
//
// Two codecs share the stream format:
//
//   - gob (legacy): self-describing, reflective, and what every peer
//     spoke before the binary codec existed. Server↔server control
//     traffic (gossip, the legacy MsgSync all-gather) stays on gob.
//   - binary: a length-prefixed hand-rolled framing for the hot data
//     messages (read/write/response payloads) with pooled buffers —
//     near-zero steady-state allocation on the request path.
//
// Negotiation is per connection and receiver-driven: a binary sender
// prefixes its stream with a magic that can never begin a gob stream (a
// gob message cannot have length zero, so a leading 0x00 byte is
// unambiguous); every receiver peeks the first bytes and picks the
// decoder. The accept side of a connection additionally adopts the
// peer's codec for its replies, so an old gob client keeps talking to a
// new server entirely in gob.
//
// Every I/O request carries the job metadata (job id, user id, group,
// node count) that the server's policies evaluate — the paper's key
// enabler for profile-free sharing.
package transport

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/policy"
)

// MsgType enumerates the protocol operations, mirroring the intercepted
// POSIX functions of §4.4 plus control traffic.
type MsgType uint8

// Protocol message types.
const (
	MsgOpen MsgType = iota
	MsgCreate
	MsgRead
	MsgWrite
	MsgClose
	MsgStat
	MsgMkdir
	MsgReaddir
	MsgUnlink
	MsgHeartbeat
	MsgBye
	MsgSync // server↔server job-table all-gather (legacy static-peer mode)

	// Cluster-fabric control traffic (internal/cluster).
	MsgGossip        // push-pull λ exchange: job table + membership digest
	MsgJoin          // a starting server announces itself to a seed
	MsgLeave         // graceful departure notice
	MsgClusterStatus // operator query: membership + ring epoch
	MsgDrain         // operator request: mark the receiving server draining

	// MsgFlush forces a full stage-out: the receiving server drains
	// every dirty byte to its backing store before replying. The drain
	// traffic itself still goes through the token scheduler under the
	// stage-out job — a flush forces completeness, not priority.
	MsgFlush

	// MsgMigrate is the server↔server stripe-migration protocol of
	// join-time rebalancing. The MigrateOp field selects the sub-op
	// (seal/install/commit/abort/drop); the frames carry the rebalance
	// job identity and are scheduled through the receiving server's
	// token draw like any write, so the sharing policy arbitrates
	// migration bandwidth against foreground I/O.
	MsgMigrate

	// MsgRebalanceStatus is the operator query for a server's migration
	// progress (themisctl rebalance status).
	MsgRebalanceStatus

	// MsgPolicySet installs a new cluster-wide sharing policy on the
	// receiving member: the member validates the policy string, bumps
	// the cluster policy epoch past every version it has seen, and lets
	// the gossip rumor path carry the new version to every other
	// member. Each server's controller recompiles at its next λ — no
	// restart, no dropped request. The reply echoes the canonical
	// policy string and the new policy epoch.
	MsgPolicySet

	// MsgShareReport is the per-entity fairness query (themisctl policy
	// status): the reply carries the server's applied policy string and
	// policy epoch plus one ShareRecord per sharing entity (job, user,
	// group) with its compiled token share and its measured
	// serviced-byte share over the server's λ-windowed accounting
	// horizon.
	MsgShareReport
)

// Migration sub-ops carried in Request.MigrateOp for MsgMigrate.
const (
	// MigrateSeal write-freezes the local stripe of a file about to
	// move; reads keep working. The reply reports the frozen local size
	// (Size) and the entry's creation generation (Gen).
	MigrateSeal uint8 = iota
	// MigrateInstall appends a chunk of the file's new local stripe to
	// the receiving server's pending (not yet visible) migration buffer.
	MigrateInstall
	// MigrateCommit atomically replaces/creates the live entry from the
	// pending buffer under the new layout (Stripes/StripeUnit/StripeSet/
	// LayoutGen), marking it dirty so it restages.
	MigrateCommit
	// MigrateAbort discards the pending buffer (failed migration).
	MigrateAbort
	// MigrateDrop removes a stale local stripe after cutover,
	// generation-checked (Gen) so a concurrent unlink/recreate of the
	// path is never clobbered, and leaves a moved marker so late
	// old-layout clients get ErrStaleLayout instead of ErrNotExist.
	MigrateDrop
	// MigrateUnseal lifts a seal after an aborted migration.
	MigrateUnseal
	// MigrateUnsealTrim lifts a seal after truncating the local stripe
	// to Size bytes — the abort path when the seal phase raced a
	// striped write and left unacknowledged torn bytes beyond the
	// consistent round-robin prefix.
	MigrateUnsealTrim
)

// String names the message type.
func (m MsgType) String() string {
	names := []string{"open", "create", "read", "write", "close", "stat",
		"mkdir", "readdir", "unlink", "heartbeat", "bye", "sync",
		"gossip", "join", "leave", "cluster-status", "drain", "flush",
		"migrate", "rebalance-status", "policy-set", "share-report"}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// MemberRecord is the wire form of a cluster membership rumor. The
// cluster package converts to and from its Member type; transport keeps
// only the codec so the dependency points upward (cluster → transport).
type MemberRecord struct {
	Addr        string
	State       uint8
	Incarnation uint64
}

// ShareRecord is the wire form of one sharing entity's fairness
// accounting: the token share the policy compiled for it versus the
// share of serviced bytes it actually received over the reporting
// server's λ-windowed horizon. Kind is "job", "user" or "group". The
// metrics package owns the accounting; transport keeps only the codec
// (the MemberRecord pattern).
type ShareRecord struct {
	Kind     string
	ID       string
	Compiled float64
	Measured float64
	Bytes    int64
}

// Residual is the measured-minus-compiled convergence residual; the
// fairness CI gate bounds its magnitude.
func (r ShareRecord) Residual() float64 { return r.Measured - r.Compiled }

// Request is a client→server (or server→server, for MsgSync) message.
type Request struct {
	Type MsgType
	Seq  uint64
	Job  policy.JobInfo

	Path   string
	Offset int64
	Size   int64
	Data   []byte
	// DataSegs, when non-nil, is the write payload as a scatter list
	// (Data must then be nil): the client's striped-write path hands
	// the per-server spans of the caller's buffer here and the binary
	// sender carries each segment as its own iovec — no concatenation
	// copy. The wire form is identical to Data (one contiguous payload
	// field); DataSegs never appears on the receive side. The gob
	// fallback flattens it before encoding.
	DataSegs [][]byte

	// AppendAt marks a write as offset-checked: the server appends only
	// if the local stripe length equals AppendOff, parking early
	// arrivals and discarding duplicates — what keeps pipelined chunk
	// streams in order per stripe under the server's unordered worker
	// pool. Rides the optional trailing frame group (older peers ignore
	// it); clients set it only after the peer advertised CapAppendAt.
	AppendAt  bool
	AppendOff int64

	// Stripes, StripeUnit and StripeSet are the file's stripe layout,
	// sent with MsgCreate so the servers record it in the file
	// metadata; any later client then discovers the layout from a stat
	// instead of guessing from its own configuration or deriving the
	// server set from a ring that may have drifted since creation.
	Stripes    int
	StripeUnit int64
	StripeSet  []string

	// MigrateOp selects the MsgMigrate sub-op (MigrateSeal & friends).
	MigrateOp uint8
	// Gen is the expected creation generation for generation-checked
	// migration ops (MigrateDrop): a concurrent unlink/recreate bumps
	// the entry's generation and the stale op becomes a no-op.
	Gen uint64
	// LayoutGen is, on MsgRead/MsgWrite, the client's cached layout
	// generation of the file (zero = unchecked, the legacy behaviour):
	// a server whose entry has a different layout generation answers
	// ErrStaleLayout so the client re-stats instead of silently reading
	// or writing re-striped bytes. On MigrateCommit it is the new
	// layout generation being installed.
	LayoutGen uint64

	// Table carries job status entries for MsgSync and MsgGossip.
	Table []jobtable.Entry

	// From is the sender's advertised address for cluster control
	// messages (the accepted socket's remote port is ephemeral, so the
	// listen address must ride in the frame).
	From string
	// Members carries the membership digest for MsgGossip/MsgJoin/
	// MsgLeave.
	Members []MemberRecord

	// PolicyStr and PolicyEpoch carry the cluster-wide policy version:
	// the policy string to install on MsgPolicySet, and the sender's
	// current policy rumor on MsgGossip/MsgJoin (epoch 0 means no live
	// set has ever happened and is never merged).
	PolicyStr   string
	PolicyEpoch uint64

	// ShareTopN and ShareKind page a MsgShareReport server-side: the
	// ledger returns only the top N entities by |residual| of the given
	// kind ("job", "user", "group"; "" or "all" keeps every kind). Zero
	// values mean the full report — the legacy behaviour, and what an
	// older client's frame decodes to. Rides the optional trailing
	// frame group (older servers ignore it and answer unfiltered).
	ShareTopN int
	ShareKind string

	// frame is the leased receive buffer a binary-decoded request's
	// Data aliases; Release returns it to the payload pool.
	frame []byte
}

// payloadLen is the request's wire payload length: Data, or the scatter
// list's total when DataSegs is set.
func (r *Request) payloadLen() int {
	if r.DataSegs == nil {
		return len(r.Data)
	}
	n := 0
	for _, s := range r.DataSegs {
		n += len(s)
	}
	return n
}

// Release returns the leased frame buffer this request's Data aliases
// to the payload pool (no-op for gob-decoded or locally built
// requests). After Release neither r.Data nor any alias of it may be
// used; Data is nilled so a stale use fails loudly. Releasing is
// optional — an unreleased frame is garbage-collected — but the hot
// paths (server workers, the client's response consumers) release so
// steady-state traffic recycles instead of allocating.
func (r *Request) Release() {
	if r.frame != nil {
		b := r.frame
		r.frame = nil
		r.Data = nil
		Release(b)
	}
}

// Response answers a Request, matched by Seq.
type Response struct {
	Seq  uint64
	Err  string
	N    int64
	Data []byte

	// Stat results.
	Size       int64
	IsDir      bool
	Names      []string
	Stripes    int
	StripeUnit int64
	StripeSet  []string
	// LayoutGen is the entry's layout generation (stat replies; clients
	// cache it and echo it on reads and writes). Gen is the entry's
	// creation generation (MigrateSeal replies; the coordinator uses it
	// for generation-checked cutover).
	LayoutGen uint64
	Gen       uint64

	// Pull half of a gossip exchange (MsgGossip/MsgJoin replies), and
	// the MsgClusterStatus answer.
	Table   []jobtable.Entry
	Members []MemberRecord
	Epoch   uint64

	// PolicyStr and PolicyEpoch carry the policy version: the pull half
	// of a gossip exchange, the new version on a MsgPolicySet reply,
	// and the *applied* version on a MsgShareReport reply (the epoch
	// the server's scheduler last recompiled under — what "every member
	// reports the new policy epoch" means during a hot-swap).
	PolicyStr   string
	PolicyEpoch uint64
	// Shares is the per-entity fairness report (MsgShareReport).
	Shares []ShareRecord

	// Caps advertises the responder's protocol capabilities (CapAppendAt
	// and friends). Carried as the optional trailing frame word — older
	// peers neither send nor parse it, so a zero Caps from the wire
	// means "legacy peer" and gates every newer protocol feature off.
	Caps uint64

	// frame is the leased buffer this response's Data aliases: the
	// receive frame (binary decode), or the server read path's reply
	// payload (AttachLease). Release returns it.
	frame []byte
}

// Capability bits for Response.Caps.
const (
	// CapAppendAt: the server honors Request.AppendAt offset-checked
	// ordered appends, which is what licenses a client to pipeline
	// striped write chunks without a round trip between them.
	CapAppendAt uint64 = 1 << 0
)

// Release returns the leased buffer this response's Data aliases to the
// payload pool (no-op for gob-decoded responses). Same contract as
// Request.Release.
func (r *Response) Release() {
	if r.frame != nil {
		b := r.frame
		r.frame = nil
		r.Data = nil
		Release(b)
	}
}

// AttachLease hands the response ownership of a leased buffer that its
// Data aliases — the server read path leases its reply payload and the
// worker releases it after the reply is on the wire.
func (r *Response) AttachLease(b []byte) { r.frame = b }

// Error materializes the response error, nil if none.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("%s", r.Err)
}

// ErrStaleLayout is the wire form of the layout-changed condition: the
// addressed server no longer holds (or no longer holds under the
// client's cached layout) the file's data, because join-time
// rebalancing moved or re-striped it. Clients that see it re-stat the
// path to learn the new layout and retry; it is a routing condition,
// not a data error. The string is the protocol contract — both codecs
// carry errors as strings, so the prefix is what survives the wire.
const ErrStaleLayout = "stale-layout: file layout changed, re-stat"

// IsStaleLayout reports whether err is the wire-carried stale-layout
// condition. Matched anywhere in the message, not just as a prefix:
// intermediate layers (the client's write-repair path, for one) wrap
// the server string with context, and a wrapped stale answer must stay
// recognizably retryable.
func IsStaleLayout(err error) bool {
	return err != nil && strings.Contains(err.Error(), "stale-layout:")
}

// IsNotExist reports whether err carries the server's missing-entry
// condition (fsys.ErrNotExist's message; both codecs carry errors as
// strings). The one place the prose is matched — callers deciding
// merge-tolerance or mid-cutover retries must not each hard-code the
// wording.
func IsNotExist(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no such file or directory")
}

// binMagic announces the binary codec at the start of a stream. The
// leading 0x00 can never begin a gob stream (gob frames open with a
// non-zero uvarint byte count), which is what makes receiver-side
// detection unambiguous.
var binMagic = [4]byte{0x00, 'T', 'B', '1'}

// Conn is a framed message stream with serialized writes. Each direction
// is independently either gob- or binary-coded; see the package comment
// for the negotiation rules.
type Conn struct {
	raw net.Conn
	// w is where encoded frames go: raw, or the counting wrapper when
	// the connection carries Stats.
	w  io.Writer
	br *bufio.Reader

	// Accounting state (nil/zero without Stats — see NewConnStats).
	// cr/lastRecvPos are owned by the reader goroutine; cw is guarded
	// by wmu like all send state.
	stats       *Stats
	cr          *countReader
	cw          *countWriter
	lastRecvPos int64

	// Send state, guarded by wmu. sendBin may additionally be flipped by
	// the receive path (codec adoption) before the first reply is sent;
	// the request whose arrival triggered the flip happens-before its
	// reply, so the update is ordered for every sender.
	wmu       sync.Mutex
	enc       *gob.Encoder
	sendBin   bool
	adopt     bool
	magicSent bool
	// iov is the reusable iovec scratch of the vectored send path.
	iov net.Buffers

	// Receive state, owned by the single reader goroutine.
	dec      *gob.Decoder
	recvBin  bool
	detected bool
}

// NewConn wraps a net.Conn in legacy mode: sends are gob, receives
// auto-detect the peer's codec, and — this being the accept side — the
// send direction adopts the detected codec for replies.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, w: raw, br: bufio.NewReader(raw), adopt: true}
}

// NewBinaryConn wraps a net.Conn in binary mode (the dial side of a data
// connection): sends are length-prefixed binary opened with the codec
// magic; receives still auto-detect, so a reply stream from either kind
// of peer is understood.
func NewBinaryConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, w: raw, br: bufio.NewReader(raw), sendBin: true}
}

// detect inspects the first bytes of the receive stream and locks in the
// decoder. Called from the receive path only (one reader per conn).
func (c *Conn) detect() error {
	if c.detected {
		return nil
	}
	b, err := c.br.Peek(len(binMagic))
	if err != nil {
		return err
	}
	if bytes.Equal(b, binMagic[:]) {
		if _, err := c.br.Discard(len(binMagic)); err != nil {
			return err
		}
		c.recvBin = true
		if c.adopt {
			c.wmu.Lock()
			c.sendBin = true
			c.wmu.Unlock()
		}
	}
	c.detected = true
	return nil
}

// SendRequest writes a request frame.
func (c *Conn) SendRequest(r *Request) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var before int64
	if c.stats != nil {
		before = c.cw.n
	}
	var err error
	if c.sendBin {
		err = c.writeBinFrame(r.Data, r.DataSegs,
			func(b []byte, n int) []byte { return appendRequestHead(b, r, n) },
			func(b []byte) []byte { return appendRequestTail(b, r) })
	} else {
		if c.enc == nil {
			c.enc = gob.NewEncoder(c.w)
		}
		if r.DataSegs != nil {
			// gob has no scatter path: flatten into a shallow copy so the
			// caller's request (and its segment list) stays untouched.
			rr := *r
			rr.Data = make([]byte, 0, rr.payloadLen())
			for _, s := range r.DataSegs {
				rr.Data = append(rr.Data, s...)
			}
			rr.DataSegs = nil
			r = &rr
		}
		err = c.enc.Encode(r)
	}
	if err == nil && c.stats != nil {
		c.stats.count(DirOut, int(r.Type), c.cw.n-before)
	}
	return err
}

// SendResponse writes a response frame.
func (c *Conn) SendResponse(r *Response) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var before int64
	if c.stats != nil {
		before = c.cw.n
	}
	var err error
	if c.sendBin {
		err = c.writeBinFrame(r.Data, nil,
			func(b []byte, n int) []byte { return appendResponseHead(b, r, n) },
			func(b []byte) []byte { return appendResponseTail(b, r) })
	} else {
		if c.enc == nil {
			c.enc = gob.NewEncoder(c.w)
		}
		err = c.enc.Encode(r)
	}
	if err == nil && c.stats != nil {
		c.stats.count(DirOut, respSlot, c.cw.n-before)
	}
	return err
}

// RecvRequest reads a request frame (server side).
func (c *Conn) RecvRequest() (*Request, error) {
	if err := c.detect(); err != nil {
		return nil, err
	}
	if c.recvBin {
		b, err := c.readFrameLeased()
		if err != nil {
			return nil, err
		}
		r := new(Request)
		if err := decodeRequest(b, r); err != nil {
			Release(b)
			return nil, err
		}
		// The decoded Data aliases the leased frame; ownership rides
		// with the request until its Release.
		r.frame = b
		if c.stats != nil {
			c.noteRecv(int(r.Type))
		}
		return r, nil
	}
	if c.dec == nil {
		c.dec = gob.NewDecoder(c.br)
	}
	var r Request
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	if c.stats != nil {
		c.noteRecv(int(r.Type))
	}
	return &r, nil
}

// RecvResponse reads a response frame (client side).
func (c *Conn) RecvResponse() (*Response, error) {
	if err := c.detect(); err != nil {
		return nil, err
	}
	if c.recvBin {
		b, err := c.readFrameLeased()
		if err != nil {
			return nil, err
		}
		r := new(Response)
		if err := decodeResponse(b, r); err != nil {
			Release(b)
			return nil, err
		}
		r.frame = b
		if c.stats != nil {
			c.noteRecv(respSlot)
		}
		return r, nil
	}
	if c.dec == nil {
		c.dec = gob.NewDecoder(c.br)
	}
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	if c.stats != nil {
		c.noteRecv(respSlot)
	}
	return &r, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline bounds both reads and writes on the underlying
// connection; the zero time clears it. Control-plane exchanges use
// this so one wedged peer cannot stall a server's λ loop forever.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
