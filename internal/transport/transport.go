// Package transport defines the wire protocol between ThemisIO clients
// and servers, and between servers (job-table synchronization). The
// paper uses UCX over InfiniBand (§4.2); this implementation frames the
// same message semantics with encoding/gob over any net.Conn — the
// scheduler arbitrates at the request level either way, and transport
// latency constants live in the simulator, not here.
//
// Every I/O request carries the job metadata (job id, user id, group,
// node count) that the server's policies evaluate — the paper's key
// enabler for profile-free sharing.
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/policy"
)

// MsgType enumerates the protocol operations, mirroring the intercepted
// POSIX functions of §4.4 plus control traffic.
type MsgType uint8

// Protocol message types.
const (
	MsgOpen MsgType = iota
	MsgCreate
	MsgRead
	MsgWrite
	MsgClose
	MsgStat
	MsgMkdir
	MsgReaddir
	MsgUnlink
	MsgHeartbeat
	MsgBye
	MsgSync // server↔server job-table all-gather (legacy static-peer mode)

	// Cluster-fabric control traffic (internal/cluster).
	MsgGossip        // push-pull λ exchange: job table + membership digest
	MsgJoin          // a starting server announces itself to a seed
	MsgLeave         // graceful departure notice
	MsgClusterStatus // operator query: membership + ring epoch
	MsgDrain         // operator request: mark the receiving server draining
)

// String names the message type.
func (m MsgType) String() string {
	names := []string{"open", "create", "read", "write", "close", "stat",
		"mkdir", "readdir", "unlink", "heartbeat", "bye", "sync",
		"gossip", "join", "leave", "cluster-status", "drain"}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// MemberRecord is the wire form of a cluster membership rumor. The
// cluster package converts to and from its Member type; transport keeps
// only the codec so the dependency points upward (cluster → transport).
type MemberRecord struct {
	Addr        string
	State       uint8
	Incarnation uint64
}

// Request is a client→server (or server→server, for MsgSync) message.
type Request struct {
	Type MsgType
	Seq  uint64
	Job  policy.JobInfo

	Path   string
	Offset int64
	Size   int64
	Data   []byte

	// Stripes, StripeUnit and StripeSet are the file's stripe layout,
	// sent with MsgCreate so the servers record it in the file
	// metadata; any later client then discovers the layout from a stat
	// instead of guessing from its own configuration or deriving the
	// server set from a ring that may have drifted since creation.
	Stripes    int
	StripeUnit int64
	StripeSet  []string

	// Table carries job status entries for MsgSync and MsgGossip.
	Table []jobtable.Entry

	// From is the sender's advertised address for cluster control
	// messages (the accepted socket's remote port is ephemeral, so the
	// listen address must ride in the frame).
	From string
	// Members carries the membership digest for MsgGossip/MsgJoin/
	// MsgLeave.
	Members []MemberRecord
}

// Response answers a Request, matched by Seq.
type Response struct {
	Seq  uint64
	Err  string
	N    int64
	Data []byte

	// Stat results.
	Size       int64
	IsDir      bool
	Names      []string
	Stripes    int
	StripeUnit int64
	StripeSet  []string

	// Pull half of a gossip exchange (MsgGossip/MsgJoin replies), and
	// the MsgClusterStatus answer.
	Table   []jobtable.Entry
	Members []MemberRecord
	Epoch   uint64
}

// Error materializes the response error, nil if none.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("%s", r.Err)
}

// Conn is a gob-framed message stream with serialized writes.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	wmu sync.Mutex
}

// NewConn wraps a net.Conn.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// SendRequest writes a request frame.
func (c *Conn) SendRequest(r *Request) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(r)
}

// SendResponse writes a response frame.
func (c *Conn) SendResponse(r *Response) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(r)
}

// RecvRequest reads a request frame (server side).
func (c *Conn) RecvRequest() (*Request, error) {
	var r Request
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// RecvResponse reads a response frame (client side).
func (c *Conn) RecvResponse() (*Response, error) {
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline bounds both reads and writes on the underlying
// connection; the zero time clears it. Control-plane exchanges use
// this so one wedged peer cannot stall a server's λ loop forever.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
