package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"themisio/internal/jobtable"
	"themisio/internal/policy"
)

func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRequestRoundTrip(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	want := &Request{
		Type:   MsgWrite,
		Seq:    42,
		Job:    policy.JobInfo{JobID: "j", UserID: "u", GroupID: "g", Nodes: 8, Presence: 2},
		Path:   "/data/x",
		Offset: 1024,
		Size:   4096,
		Data:   []byte{1, 2, 3, 4},
	}
	done := make(chan *Request, 1)
	go func() {
		got, err := c2.RecvRequest()
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	if err := c1.SendRequest(want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.Type != want.Type || got.Seq != want.Seq || got.Path != want.Path ||
		got.Job != want.Job || got.Offset != want.Offset || string(got.Data) != string(want.Data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestResponseRoundTripAndError(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	go func() {
		_ = c2.SendResponse(&Response{Seq: 7, Err: "fsys: no such file or directory"})
	}()
	got, err := c1.RecvResponse()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Error() == nil {
		t.Fatalf("response: %+v", got)
	}
	ok := &Response{Seq: 8}
	if ok.Error() != nil {
		t.Fatal("empty Err should be nil error")
	}
}

func TestSyncMessageCarriesJobTable(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	tb := jobtable.New("s1", 0)
	tb.Observe(policy.JobInfo{JobID: "a", UserID: "u", Nodes: 16}, 0)
	tb.Observe(policy.JobInfo{JobID: "b", UserID: "v", Nodes: 8}, 0)
	snap := tb.Snapshot()
	go func() {
		_ = c1.SendRequest(&Request{Type: MsgSync, Table: snap})
	}()
	got, err := c2.RecvRequest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgSync || len(got.Table) != 2 {
		t.Fatalf("sync message: %+v", got)
	}
	if !got.Table[0].Servers["s1"] {
		t.Fatal("server set lost in transit")
	}
	// Merging the received snapshot works like a local all-gather.
	tb2 := jobtable.New("s2", 0)
	tb2.Merge(got.Table, 0)
	act := tb2.Active(0)
	if len(act) != 2 || act[0].Presence != 1 {
		t.Fatalf("merge of wire snapshot: %+v", act)
	}
}

// Concurrent senders on one conn must not interleave frames.
func TestConcurrentSendersSerialize(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	const n = 200
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_ = c1.SendRequest(&Request{Type: MsgStat, Seq: uint64(i), Path: "/p"})
			}(i)
		}
		wg.Wait()
	}()
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		got, err := c2.RecvRequest()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if seen[got.Seq] {
			t.Fatalf("duplicate seq %d", got.Seq)
		}
		seen[got.Seq] = true
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for m, want := range map[MsgType]string{
		MsgOpen: "open", MsgCreate: "create", MsgRead: "read",
		MsgWrite: "write", MsgSync: "sync", MsgHeartbeat: "heartbeat",
	} {
		if m.String() != want {
			t.Fatalf("%d = %q, want %q", m, m.String(), want)
		}
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown type should render")
	}
}

// The cluster control frames (gossip push-pull, join, status) carry a
// job-table snapshot and a membership digest both ways; make sure the
// new fields survive the gob round trip.
func TestGossipFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	req := &Request{
		Type: MsgGossip,
		Seq:  42,
		From: "127.0.0.1:7001",
		Table: []jobtable.Entry{{
			Info:    policy.JobInfo{JobID: "j1", UserID: "u1", Nodes: 4},
			Last:    3 * time.Second,
			Servers: map[string]bool{"127.0.0.1:7001": true},
			Demand:  9,
		}},
		Members: []MemberRecord{
			{Addr: "127.0.0.1:7000", State: 0, Incarnation: 1},
			{Addr: "127.0.0.1:7001", State: 3, Incarnation: 5},
		},
	}
	go func() { _ = ca.SendRequest(req) }()
	got, err := cb.RecvRequest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgGossip || got.From != req.From || len(got.Members) != 2 ||
		got.Members[1].Incarnation != 5 || !got.Table[0].Servers["127.0.0.1:7001"] {
		t.Fatalf("request round trip lost fields: %+v", got)
	}
	resp := &Response{
		Seq:     42,
		Epoch:   7,
		Table:   req.Table,
		Members: req.Members,
	}
	go func() { _ = cb.SendResponse(resp) }()
	rgot, err := ca.RecvResponse()
	if err != nil {
		t.Fatal(err)
	}
	if rgot.Epoch != 7 || len(rgot.Members) != 2 || len(rgot.Table) != 1 {
		t.Fatalf("response round trip lost fields: %+v", rgot)
	}
	for _, m := range []MsgType{MsgGossip, MsgJoin, MsgLeave, MsgClusterStatus, MsgDrain} {
		if m.String() == "" || m.String()[0] == 'm' {
			t.Fatalf("missing name for %d", uint8(m))
		}
	}
}
