package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startEcho runs a minimal accept-loop server: every accepted
// connection echoes each request's Seq back (stamping Caps like a real
// themisd response does) and counts itself.
func startEcho(t *testing.T) (addr string, accepted *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted = &atomic.Int64{}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(raw net.Conn) {
				conn := NewConn(raw)
				defer conn.Close()
				for {
					req, err := conn.RecvRequest()
					if err != nil {
						return
					}
					_ = conn.SendResponse(&Response{Seq: req.Seq, Caps: CapAppendAt})
				}
			}(raw)
		}
	}()
	return ln.Addr().String(), accepted
}

// waitAccepted polls the accept counter: a client-side dial returns at
// the SYN-ACK, before the server's Accept goroutine runs.
func waitAccepted(t *testing.T, accepted *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for accepted.Load() != want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := accepted.Load(); got != want {
		t.Fatalf("server accepted %d conns, want %d", got, want)
	}
}

func dialBinary(addr string) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	return NewBinaryConn(raw), nil
}

// TestPoolAffinityStability: the same key always picks the same
// connection, and distinct keys spread over distinct slots.
func TestPoolAffinityStability(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := NewPool(addr, 4, 2, dialBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	picked := map[uint64]*MuxConn{}
	for round := 0; round < 10; round++ {
		for key := uint64(0); key < 8; key++ {
			mc, err := p.SlotFor(key)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := picked[key]; ok && prev != mc {
				t.Fatalf("key %d moved between connections", key)
			}
			picked[key] = mc
		}
	}
	distinct := map[*MuxConn]bool{}
	for _, mc := range picked {
		distinct[mc] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("8 keys over a size-4 pool used %d connections, want 4", len(distinct))
	}
	// Keys size apart share a slot (the affinity function is key % size).
	if picked[0] != picked[4] || picked[1] != picked[5] {
		t.Fatal("keys equal mod size should share a connection")
	}
}

// TestPoolLazyDial: construction dials exactly slot 0; other slots dial
// on first pick only.
func TestPoolLazyDial(t *testing.T) {
	addr, accepted := startEcho(t)
	p, err := NewPool(addr, 4, 2, dialBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.OpenConns(); got != 1 {
		t.Fatalf("after NewPool: %d conns open, want 1 (slot 0 only)", got)
	}
	waitAccepted(t, accepted, 1)
	for key := uint64(0); key < 4; key++ {
		if _, err := p.SlotFor(key); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.OpenConns(); got != 4 {
		t.Fatalf("after picking every slot: %d conns open, want 4", got)
	}
	// Re-picking does not re-dial.
	for key := uint64(0); key < 4; key++ {
		if _, err := p.SlotFor(key); err != nil {
			t.Fatal(err)
		}
	}
	waitAccepted(t, accepted, 4)
}

// TestPoolSlotCooldown: a slot whose dial fails is not retried inside
// SlotCooldown (picks fall back to a healthy slot), so a flapping path
// cannot trigger a dial storm.
func TestPoolSlotCooldown(t *testing.T) {
	addr, _ := startEcho(t)
	var dials atomic.Int64
	dial := func(a string) (*Conn, error) {
		// First dial (slot 0, at construction) succeeds; every later
		// dial fails.
		if dials.Add(1) > 1 {
			return nil, fmt.Errorf("injected dial failure")
		}
		return dialBinary(a)
	}
	p, err := NewPool(addr, 4, 2, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	slot0, err := p.SlotFor(0)
	if err != nil {
		t.Fatal(err)
	}
	// Key 1 maps to slot 1, whose dial fails: the pick falls back to the
	// healthy slot 0 instead of failing the caller.
	mc, err := p.SlotFor(1)
	if err != nil {
		t.Fatalf("pick with failing slot did not fall back: %v", err)
	}
	if mc != slot0 {
		t.Fatal("fallback should land on the open slot-0 connection")
	}
	before := dials.Load()
	for i := 0; i < 50; i++ {
		if _, err := p.SlotFor(1); err != nil {
			t.Fatal(err)
		}
	}
	// Within the cooldown the failed slot must not be re-dialed. (The
	// fallback scan may have probed the other undialed slots once each;
	// only growth proportional to picks is a storm.)
	if after := dials.Load(); after-before > 3 {
		t.Fatalf("%d dial attempts during cooldown, want at most the one-shot probes", after-before)
	}
}

// TestPoolSizeOneEquivalence: a size-1 pool routes every pick — by
// affinity, spread, and control — through the single connection, so the
// wire sees exactly the byte stream one connection produced before
// pools existed.
func TestPoolSizeOneEquivalence(t *testing.T) {
	addr, accepted := startEcho(t)
	p, err := NewPool(addr, 1, 8, dialBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	first, err := p.SlotFor(0)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 16; key++ {
		if mc, _ := p.SlotFor(key); mc != first {
			t.Fatal("SlotFor left the single slot")
		}
		if mc, _ := p.PickSpread(); mc != first {
			t.Fatal("PickSpread left the single slot")
		}
		if mc, _ := p.Pick(); mc != first {
			t.Fatal("Pick left the single slot")
		}
	}
	waitAccepted(t, accepted, 1)
}

// TestPoolCapsShared: a capability learned on one slot's response is
// visible pool-wide, so a lazily dialed slot pipelines immediately.
func TestPoolCapsShared(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := NewPool(addr, 4, 2, dialBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Caps() != 0 {
		t.Fatal("caps known before any response")
	}
	mc, err := p.SlotFor(0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := mc.Call(context.Background(), &Request{Type: MsgHeartbeat, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp.Release()
	if p.Caps()&CapAppendAt == 0 {
		t.Fatal("slot-0 response did not stamp the pool caps")
	}
}

// TestPoolWindowTokens: the write window is a pool-wide budget of
// depth×size tokens; TryAcquire fails once they are spent and Release
// frees them.
func TestPoolWindowTokens(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := NewPool(addr, 2, 3, dialBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 6; i++ {
		if !p.TryAcquireWrite() {
			t.Fatalf("token %d refused below the budget", i)
		}
	}
	if p.TryAcquireWrite() {
		t.Fatal("token granted past the depth×size budget")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.AcquireWrite(ctx); err == nil {
		t.Fatal("blocking acquire past the budget should honor ctx")
	}
	p.ReleaseWrite()
	if !p.TryAcquireWrite() {
		t.Fatal("released token not reusable")
	}
	for i := 0; i < 6; i++ {
		p.ReleaseWrite()
	}
}

// TestMuxConnConcurrentCalls: many goroutines multiplex exchanges over
// one MuxConn and each gets its own matched response.
func TestMuxConnConcurrentCalls(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := NewPool(addr, 1, 8, dialBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	mc, err := p.SlotFor(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			resp, err := mc.Call(context.Background(), &Request{Type: MsgHeartbeat, Seq: seq})
			if err != nil {
				t.Errorf("seq %d: %v", seq, err)
				return
			}
			if resp.Seq != seq {
				t.Errorf("seq %d got response for %d", seq, resp.Seq)
			}
			resp.Release()
		}(uint64(i))
	}
	wg.Wait()
}
