package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// StageOut measures how the sharing policy governs stage-out (backing-
// store write-back) bandwidth against foreground I/O. The drain engine
// submits write-back chunks through the token scheduler under a
// synthetic 1-node background job, so its bandwidth share is whatever
// the policy compiles for that job — no reserved drain lane, no
// starvation. The experiment runs a write-only 3-node foreground job
// against a continuously-busy drain on one server and reports the
// drain's measured share of write bandwidth under size-fair (expected
// 1/(3+1) = 0.25) and job-fair (expected 1/2).
func StageOut() *Result {
	r := &Result{ID: "stageout", Title: "stage-out drain vs foreground under the sharing policy"}
	const (
		end  = 30 * time.Second
		from = 5 * time.Second
		to   = 28 * time.Second
	)
	run := func(pol policy.Policy) (fg, drain float64) {
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(pol, 8)})
		job := jobInfo("job1-3n", "u1", "g1", 3)
		for i := 0; i < 24; i++ {
			c.AddProc(bb.Proc{
				Job:    job,
				Stream: workload.IORLoop(sched.OpWrite, workload.MB),
				Start:  time.Duration(i) * 437 * time.Microsecond,
				Stop:   end,
			})
		}
		// Depth 64 keeps ~64 MB of chunks outstanding — a continuously
		// dirty shard. (A shallow drain queue under-uses its share and
		// opportunity fairness hands the gap to the foreground job,
		// which is the desired behaviour, not the one under test.)
		c.AddStageOut(0, 0, 64, 0, end)
		c.Run(end)
		fg = c.Meter().MeanRate(job.JobID, from, to)
		drain = c.Meter().MeanRate(bb.StageOutJobID(0), from, to)
		return fg, drain
	}

	fgS, drS := run(policy.SizeFair)
	fgJ, drJ := run(policy.JobFair)
	shareS := drS / (fgS + drS)
	shareJ := drJ / (fgJ + drJ)
	r.addf("size-fair: foreground %5.1f GB/s, drain %5.1f GB/s — drain share %.3f (policy share 0.250)",
		gbps(fgS), gbps(drS), shareS)
	r.addf("job-fair : foreground %5.1f GB/s, drain %5.1f GB/s — drain share %.3f (policy share 0.500)",
		gbps(fgJ), gbps(drJ), shareJ)
	r.Paper = []string{
		"no figure — the paper's conclusion leaves persistence as future work;",
		"the claim under test is that stage-out traffic obeys Equation 1 like any job",
	}
	r.metric("sizefair_fg_gbps", gbps(fgS))
	r.metric("sizefair_drain_gbps", gbps(drS))
	r.metric("sizefair_drain_share", shareS)
	r.metric("jobfair_drain_share", shareJ)
	return r
}
