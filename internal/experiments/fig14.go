package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/metrics"
	"themisio/internal/policy"
	"themisio/internal/workload"
)

// fig14SyncDelay models the control-plane processing + interconnect cost
// of one all-gather; §5.6 observes "~50 ms is the effectiveness boundary
// of ThemisIO on Frontera", i.e. syncs cannot usefully apply faster than
// a few tens of milliseconds.
const fig14SyncDelay = 30 * time.Millisecond

// Fig14 reproduces the λ-delayed fairness study: three size-16/8/8 jobs
// whose files land on two servers such that every server starts with only
// a local view (job1 on both servers; jobs 2 and 3 on one each). For each
// λ ∈ {10, 50, 200, 500} ms it reports job 1's share of the aggregate
// throughput per λ interval, the interval at which global fairness
// (share ≈ 0.5) is reached, and the post-convergence share variance.
func Fig14() *Result {
	r := &Result{ID: "fig14", Title: "λ-delayed global fairness"}
	lambdas := []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond}
	const horizon = 6 * time.Second

	for _, lambda := range lambdas {
		c := bb.NewCluster(bb.Config{
			Servers:   2,
			NewSched:  themisSched(policy.SizeFair, 14),
			Lambda:    lambda,
			Bin:       lambda, // meter at λ granularity
			SyncDelay: fig14SyncDelay,
		})
		mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
		// Job 1 (16 nodes) has file stripes on both servers; jobs 2 and 3
		// (8 nodes each) on disjoint servers — the Figure 5 scenario.
		c.AddJob(bb.JobSpec{Job: jobInfo("job1", "u1", "g1", 16), Procs: 64, MakeStream: mk, Targets: []int{0, 1}})
		c.AddJob(bb.JobSpec{Job: jobInfo("job2", "u2", "g1", 8), Procs: 32, MakeStream: mk, Targets: []int{0}})
		c.AddJob(bb.JobSpec{Job: jobInfo("job3", "u3", "g1", 8), Procs: 32, MakeStream: mk, Targets: []int{1}})
		c.Run(horizon)

		m := c.Meter()
		r1 := m.Rates("job1", 0, horizon)
		r2 := m.Rates("job2", 0, horizon)
		r3 := m.Rates("job3", 0, horizon)
		shares := make([]float64, len(r1))
		for i := range r1 {
			tot := r1[i] + r2[i] + r3[i]
			if tot > 0 {
				shares[i] = r1[i] / tot
			}
		}
		// Find the first interval from which job1's share stays within
		// ±6% of the fair 0.50. For small λ single intervals carry few
		// requests and are statistically noisy (that is the point of the
		// figure), so the in-band criterion is evaluated on a rolling
		// mean spanning ~50 ms (the paper's observed effectiveness
		// boundary on Frontera).
		win := int(50 * time.Millisecond / lambda)
		if win < 1 {
			win = 1
		}
		smooth := func(i int) float64 {
			end := i + win
			if end > len(shares) {
				end = len(shares)
			}
			return metrics.Mean(shares[i:end])
		}
		converged := -1
		for i := range shares {
			ok := true
			for j := i; j < len(shares); j++ {
				if s := smooth(j); s < 0.44 || s > 0.56 {
					ok = false
					break
				}
			}
			if ok {
				converged = i
				break
			}
		}
		var post []float64
		if converged >= 0 {
			post = shares[converged:]
		}
		sd := metrics.Stddev(post)
		preview := ""
		for i := 0; i < len(shares) && i < 8; i++ {
			preview += trimPct(shares[i])
		}
		r.addf("λ=%4dms: job1 share by interval [%s…]  fair at interval %d, post-convergence σ(share)=%.3f",
			lambda.Milliseconds(), preview, converged+1, sd)
		r.metric(lambdaKey(lambda)+"_converge_interval", float64(converged+1))
		r.metric(lambdaKey(lambda)+"_share_sigma", sd)
	}
	r.Paper = []string{
		"λ ∈ {50, 200, 500} ms reach global fairness by the 2nd interval;",
		"λ = 10 ms takes 5 intervals; shorter intervals show higher share variance",
	}
	return r
}

func lambdaKey(l time.Duration) string {
	switch l {
	case 10 * time.Millisecond:
		return "l10"
	case 50 * time.Millisecond:
		return "l50"
	case 200 * time.Millisecond:
		return "l200"
	}
	return "l500"
}

func trimPct(v float64) string {
	return " " + pct(v)
}

func pct(v float64) string {
	d := int(v*100 + 0.5)
	if d < 10 {
		return "0" + string(rune('0'+d)) + "%"
	}
	return string(rune('0'+d/10)) + string(rune('0'+d%10)) + "%"
}
