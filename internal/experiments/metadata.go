package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Metadata reproduces the motivating scenario of §2.2.1: "the I/O
// workload of a job can be heavy in metadata access, which eventually
// saturates the metadata server. While this blocks other jobs from
// accessing metadata, the data servers ... may be idle. Again, it is the
// FIFO processing of I/O requests that causes this huge resource waste."
//
// A stat storm (the customized benchmark's iops_stat mode) floods one
// server's request queue while a modest victim job does ordinary data
// I/O plus occasional stats. Under FIFO the storm's queue depth starves
// the victim's data path even though bandwidth is idle; under job-fair
// statistical tokens the victim is isolated.
func Metadata() *Result {
	r := &Result{ID: "metadata", Title: "metadata-storm isolation (iops_stat vs data job)"}
	type outcome struct {
		victimData  float64 // bytes/sec
		victimStats float64 // ops/sec
		stormStats  float64 // ops/sec
	}
	run := func(mk func(int, float64) sched.Scheduler) outcome {
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: mk})
		// The storm: 512 processes with deep async queues — ~65k requests
		// outstanding, a 50 ms-deep FIFO queue at the IOPS envelope.
		c.AddJob(bb.JobSpec{
			Job:        jobInfo("storm", "meta-heavy", "g1", 1),
			Procs:      512,
			QueueDepth: 128,
			MakeStream: func(int) workload.Stream { return workload.StatStorm() },
		})
		// The victim: a small data job with a sprinkle of metadata.
		c.AddJob(bb.JobSpec{
			Job:        jobInfo("victim", "data-user", "g2", 1),
			Procs:      32,
			MakeStream: wrCycle(),
		})
		c.AddJob(bb.JobSpec{
			Job:   jobInfo("victim", "data-user", "g2", 1),
			Procs: 8,
			MakeStream: func(int) workload.Stream {
				return workload.WithThink(workload.StatStorm(), 10*time.Millisecond)
			},
		})
		c.Run(10 * time.Second)
		m := c.Meter()
		var o outcome
		o.victimData = m.MeanRate("victim", 2*time.Second, 10*time.Second)
		if s := m.Meta("victim"); s != nil {
			o.victimStats = s.TotalBytes() / 10 // series stores op counts
		}
		if s := m.Meta("storm"); s != nil {
			o.stormStats = s.TotalBytes() / 10
		}
		return o
	}
	fifo := run(fifoSched())
	fair := run(themisSched(policy.JobFair, 17))

	r.addf("%-10s %18s %18s %16s", "scheduler", "victim data", "victim stats/s", "storm stats/s")
	r.addf("%-10s %13.2f GB/s %18.0f %16.0f", "fifo", gbps(fifo.victimData), fifo.victimStats, fifo.stormStats)
	r.addf("%-10s %13.2f GB/s %18.0f %16.0f", "job-fair", gbps(fair.victimData), fair.victimStats, fair.stormStats)
	r.addf("victim data speedup under job-fair: %.1fx", fair.victimData/fifo.victimData)
	r.metric("fifo_victim_gbps", gbps(fifo.victimData))
	r.metric("fair_victim_gbps", gbps(fair.victimData))
	r.metric("fifo_storm_ops", fifo.stormStats)
	r.metric("fair_storm_ops", fair.stormStats)
	r.Paper = []string{
		"§2.2.1 (qualitative): a metadata-heavy job saturates the metadata path",
		"and FIFO blocks other jobs while data bandwidth sits idle; isolation",
		"via request-processing arbitration removes the waste",
	}
	return r
}
