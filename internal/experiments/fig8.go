package experiments

import (
	"fmt"
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
)

// sharingTimeline is the common shape of Figures 8 and 12: job 1 runs for
// 60 s, job 2 starts at 15 s and runs for 30 s.
const (
	shareJob2Start = 15 * time.Second
	shareJob2Stop  = 45 * time.Second
	shareEnd       = 60 * time.Second
	// Measurement windows (skip 5 s of edges for clean medians).
	aloneFrom  = 5 * time.Second
	aloneTo    = 14 * time.Second
	sharedFrom = 20 * time.Second
	sharedTo   = 44 * time.Second
)

// seriesLine renders a job's combined-throughput series every sampleEvery
// seconds, the textual analogue of the figure curves.
func seriesLine(c *bb.Cluster, job string, until time.Duration, every int) string {
	rates := c.Meter().Rates(job, 0, until)
	out := fmt.Sprintf("%-8s", job)
	for i := 0; i < len(rates); i += every {
		out += fmt.Sprintf(" %5.1f", rates[i]/1e9)
	}
	return out + "  (GB/s, every " + fmt.Sprint(every) + "s)"
}

// Fig8a: size-fair, a 4-node 224-process job against a 1-node 56-process
// job; throughput splits ~4:1.
func Fig8a() *Result {
	r := &Result{ID: "fig8a", Title: "size-fair, 4-node vs 1-node"}
	c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.SizeFair, 8)})
	benchJob(c, jobInfo("job1-4n", "u1", "g1", 4), 0, shareEnd)
	benchJob(c, jobInfo("job2-1n", "u2", "g1", 1), shareJob2Start, shareJob2Stop)
	c.Run(shareEnd)

	alone := c.Meter().MedianRate("job1-4n", aloneFrom, aloneTo)
	s1 := c.Meter().MedianRate("job1-4n", sharedFrom, sharedTo)
	s2 := c.Meter().MedianRate("job2-1n", sharedFrom, sharedTo)
	r.addf("job1 unopposed median : %5.1f GB/s", gbps(alone))
	r.addf("job1 shared median    : %5.1f GB/s", gbps(s1))
	r.addf("job2 shared median    : %5.1f GB/s", gbps(s2))
	r.addf("throughput ratio      : %5.2fx (job sizes 4:1)", s1/s2)
	r.Lines = append(r.Lines, seriesLine(c, "job1-4n", shareEnd, 5), seriesLine(c, "job2-1n", shareEnd, 5))
	r.Paper = []string{
		"unopposed 21.8 GB/s; shared 17.4 vs 4.4 GB/s — ratio 3.96x ≈ the 4x size ratio",
	}
	r.metric("alone_gbps", gbps(alone))
	r.metric("job1_gbps", gbps(s1))
	r.metric("job2_gbps", gbps(s2))
	r.metric("ratio", s1/s2)
	return r
}

// Fig8b: job-fair over the same pair; near-equal split.
func Fig8b() *Result {
	r := &Result{ID: "fig8b", Title: "job-fair, 4-node vs 1-node"}
	c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.JobFair, 8)})
	benchJob(c, jobInfo("job1-4n", "u1", "g1", 4), 0, shareEnd)
	benchJob(c, jobInfo("job2-1n", "u2", "g1", 1), shareJob2Start, shareJob2Stop)
	c.Run(shareEnd)

	alone := c.Meter().MedianRate("job1-4n", aloneFrom, aloneTo)
	s1 := c.Meter().MedianRate("job1-4n", sharedFrom, sharedTo)
	s2 := c.Meter().MedianRate("job2-1n", sharedFrom, sharedTo)
	r.addf("job1 unopposed median : %5.1f GB/s", gbps(alone))
	r.addf("job1 shared median    : %5.1f GB/s", gbps(s1))
	r.addf("job2 shared median    : %5.1f GB/s", gbps(s2))
	r.addf("throughput ratio      : %5.2fx (want ~1 despite 4x more processes)", s1/s2)
	r.Paper = []string{"unopposed 21.7 GB/s; both jobs ~10.6 GB/s when sharing"}
	r.metric("job1_gbps", gbps(s1))
	r.metric("job2_gbps", gbps(s2))
	r.metric("ratio", s1/s2)
	return r
}

// Fig8c: user-fair; user A runs two 2-node jobs, user B one 1-node job.
// The users split evenly regardless of job counts and sizes.
func Fig8c() *Result {
	r := &Result{ID: "fig8c", Title: "user-fair, 2 users / 3 jobs"}
	c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.UserFair, 8)})
	benchJob(c, jobInfo("ua-job1", "userA", "g1", 2), 0, shareEnd)
	benchJob(c, jobInfo("ua-job2", "userA", "g1", 2), shareJob2Start, shareJob2Stop)
	benchJob(c, jobInfo("ub-job1", "userB", "g1", 1), shareJob2Start, shareJob2Stop)
	c.Run(shareEnd)

	a1 := c.Meter().MedianRate("ua-job1", sharedFrom, sharedTo)
	a2 := c.Meter().MedianRate("ua-job2", sharedFrom, sharedTo)
	b1 := c.Meter().MedianRate("ub-job1", sharedFrom, sharedTo)
	r.addf("user A job1 : %5.1f GB/s (2 nodes)", gbps(a1))
	r.addf("user A job2 : %5.1f GB/s (2 nodes)", gbps(a2))
	r.addf("user A total: %5.1f GB/s", gbps(a1+a2))
	r.addf("user B total: %5.1f GB/s (1 node, 1 job)", gbps(b1))
	r.Paper = []string{"user A total 10.85 GB/s ≈ user B 10.80 GB/s"}
	r.metric("userA_gbps", gbps(a1+a2))
	r.metric("userB_gbps", gbps(b1))
	return r
}

// Fig9: user-then-size-fair with four jobs — even across users, then
// proportional to node count within each user.
func Fig9() *Result {
	r := &Result{ID: "fig9", Title: "user-then-size-fair, 2 users / 4 jobs"}
	c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.UserThenSizeFair, 9)})
	benchJob(c, jobInfo("u1-j1", "user1", "g1", 1), 0, shareEnd)
	benchJob(c, jobInfo("u1-j2", "user1", "g1", 2), 0, shareEnd)
	benchJob(c, jobInfo("u2-j3", "user2", "g1", 4), 0, shareEnd)
	benchJob(c, jobInfo("u2-j4", "user2", "g1", 6), 0, shareEnd)
	c.Run(shareEnd)

	from, to := 10*time.Second, shareEnd
	j1 := c.Meter().MedianRate("u1-j1", from, to)
	j2 := c.Meter().MedianRate("u1-j2", from, to)
	j3 := c.Meter().MedianRate("u2-j3", from, to)
	j4 := c.Meter().MedianRate("u2-j4", from, to)
	r.addf("user1 job1 (1 node) : %5.1f GB/s", gbps(j1))
	r.addf("user1 job2 (2 nodes): %5.1f GB/s", gbps(j2))
	r.addf("user2 job3 (4 nodes): %5.1f GB/s", gbps(j3))
	r.addf("user2 job4 (6 nodes): %5.1f GB/s", gbps(j4))
	r.addf("user totals         : %5.1f vs %5.1f GB/s", gbps(j1+j2), gbps(j3+j4))
	r.addf("within-user ratios  : %4.2f (want 2.0), %4.2f (want 1.5)", j2/j1, j4/j3)
	r.Paper = []string{
		"user1: 3.3 + 6.6 GB/s (1:2); user2: 3.9 + 5.9 GB/s (≈4:6); users ~10 GB/s each",
	}
	r.metric("user1_gbps", gbps(j1+j2))
	r.metric("user2_gbps", gbps(j3+j4))
	r.metric("u1_ratio", j2/j1)
	r.metric("u2_ratio", j4/j3)
	return r
}

// Fig10 reproduces the three-tier group-user-size-fair experiment of
// Figures 10 and 11: two groups, four users, eight jobs; the result is
// rendered as the share tree of Figure 11.
func Fig10() *Result {
	r := &Result{ID: "fig10", Title: "group-user-size-fair, 2 groups / 4 users / 8 jobs"}
	c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.GroupUserSizeFair, 10)})
	type jdef struct {
		id    string
		user  string
		group string
		nodes int
	}
	defs := []jdef{
		{"g1-u1-j1", "u1", "g1", 1},
		{"g2-u2-j2", "u2", "g2", 2},
		{"g2-u2-j3", "u2", "g2", 3},
		{"g2-u2-j4", "u2", "g2", 2},
		{"g2-u3-j5", "u3", "g2", 3},
		{"g2-u3-j6", "u3", "g2", 2},
		{"g2-u4-j7", "u4", "g2", 1},
		{"g2-u4-j8", "u4", "g2", 2},
	}
	for _, d := range defs {
		benchJob(c, jobInfo(d.id, d.user, d.group, d.nodes), 0, shareEnd)
	}
	c.Run(shareEnd)

	from, to := 10*time.Second, shareEnd
	rate := map[string]float64{}
	total := 0.0
	for _, d := range defs {
		rate[d.id] = c.Meter().MedianRate(d.id, from, to)
		total += rate[d.id]
	}
	r.addf("total throughput: %5.1f GB/s", gbps(total))
	groups := map[string]float64{}
	users := map[string]float64{}
	for _, d := range defs {
		groups[d.group] += rate[d.id]
		users[d.user] += rate[d.id]
	}
	for _, g := range []string{"g1", "g2"} {
		r.addf("group %s: %4.1f%% (%4.1f GB/s)", g, groups[g]/total*100, gbps(groups[g]))
	}
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		r.addf("  user %s: %4.1f%%", u, users[u]/total*100)
	}
	for _, d := range defs {
		r.addf("    %s (size=%d): %5.2f%%", d.id, d.nodes, rate[d.id]/total*100)
	}
	r.Paper = []string{
		"total 20.7 GB/s; group1 46% / group2 54%; group2 users ~18% each;",
		"jobs within a user proportional to node count (Figure 11 tree)",
	}
	r.metric("total_gbps", gbps(total))
	r.metric("group1_share", groups["g1"]/total)
	r.metric("group2_share", groups["g2"]/total)
	for _, u := range []string{"u2", "u3", "u4"} {
		r.metric("user_"+u+"_share", users[u]/total)
	}
	return r
}
