package experiments

import (
	"time"

	"themisio/internal/apptrace"
	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
)

// appServers is the deployment of §5.5: two ThemisIO servers.
const appServers = 2

// horizonFactor bounds how much longer than baseline an interfered run
// may take before the experiment is considered misconfigured.
const horizonFactor = 8

// runApp executes one application run and returns its time-to-solution.
// bg, when true, adds the §5.5 background job: a one-node 56-process I/O
// benchmark running for the whole horizon.
func runApp(app apptrace.App, mk func(int, float64) sched.Scheduler, bg bool, horizon time.Duration) time.Duration {
	c := bb.NewCluster(bb.Config{Servers: appServers, NewSched: mk})
	h := apptrace.Run(c, app, policy.JobInfo{
		JobID: app.Name, UserID: "science", GroupID: "apps", Nodes: app.Nodes,
	})
	if bg {
		c.AddJob(bb.JobSpec{
			Job:        jobInfo("background", "noisy", "other", 1),
			Procs:      56,
			MakeStream: wrCycle(),
		})
	}
	c.Run(horizon)
	return h.TTS()
}

type appRow struct {
	name               string
	base, fifo, fair   time.Duration
	fifoPct, fairPct   float64
	slowdownReduction  float64
	maxPossiblePct     float64
	nodesWithBg, nodes int
}

func runAppSuite(apps []apptrace.App) []appRow {
	rows := make([]appRow, 0, len(apps))
	for _, app := range apps {
		base := runApp(app, themisSched(policy.SizeFair, 13), false, 10*time.Minute)
		horizon := time.Duration(float64(base) * horizonFactor)
		fifo := runApp(app, fifoSched(), true, horizon)
		fair := runApp(app, themisSched(policy.SizeFair, 13), true, horizon)
		row := appRow{
			name: app.Name, base: base, fifo: fifo, fair: fair,
			fifoPct: (float64(fifo)/float64(base) - 1) * 100,
			fairPct: (float64(fair)/float64(base) - 1) * 100,
			nodes:   app.Nodes, nodesWithBg: app.Nodes + 1,
			maxPossiblePct: 100.0 / float64(app.Nodes+1),
		}
		if row.fifoPct > 0 {
			row.slowdownReduction = (1 - row.fairPct/row.fifoPct) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig13 reproduces the §5.5 application study: each application runs (1)
// with exclusive access (baseline), (2) under FIFO with a background
// benchmark job, and (3) under size-fair with the background job.
func Fig13() *Result {
	r := &Result{ID: "fig13", Title: "application slowdown: FIFO vs size-fair (2 servers)"}
	apps := append(apptrace.Suite(), apptrace.ResNet50Sync)
	rows := runAppSuite(apps)
	r.addf("%-15s %10s %12s %12s %11s %11s %12s", "app", "baseline", "fifo+bg", "sizefair+bg", "fifo slow", "fair slow", "reduction")
	for _, row := range rows {
		r.addf("%-15s %9.1fs %11.1fs %11.1fs %+10.1f%% %+10.1f%% %11.1f%%",
			row.name, row.base.Seconds(), row.fifo.Seconds(), row.fair.Seconds(),
			row.fifoPct, row.fairPct, row.slowdownReduction)
		key := row.name
		r.metric(key+"_fifo_pct", row.fifoPct)
		r.metric(key+"_fair_pct", row.fairPct)
	}
	r.Paper = []string{
		"FIFO slowdown: NAMD 60.6%, WRF 45.3%, BERT 3.8%, SPECFEM3D 3.0%, ResNet-50 170% (2.7x);",
		"size-fair:     NAMD  0.1%, WRF  4.6%, BERT 1.6%, SPECFEM3D 0.0%, ResNet-50 12.9%;",
		"ResNet-50 sync variant: FIFO ~2.0x vs size-fair 1.1%;",
		"slowdown reduced 59.1–99.8% across applications",
	}
	return r
}

// Fig1 reproduces the motivating figure: time-to-solution of the five
// applications with exclusive burst-buffer access vs shared with a
// background I/O job under FIFO (the production default).
func Fig1() *Result {
	r := &Result{ID: "fig1", Title: "baseline vs shared (FIFO) time-to-solution"}
	rows := runAppSuite(apptrace.Suite())
	r.addf("%-15s %12s %12s %10s", "app", "baseline", "shared", "slowdown")
	for _, row := range rows {
		r.addf("%-15s %11.1fs %11.1fs %+9.1f%%", row.name, row.base.Seconds(), row.fifo.Seconds(), row.fifoPct)
		r.metric(row.name+"_slowdown_pct", row.fifoPct)
	}
	r.Paper = []string{"shared runtimes are 3–173% longer than baseline across the five applications"}
	return r
}
