// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a pure function of fixed seeds over
// the discrete-event simulator, so results are reproducible bit-for-bit.
// cmd/benchrun exposes the registry on the command line; the repository's
// top-level benchmarks wrap the same runners.
//
// Absolute GB/s values are expected to land near the paper's because the
// simulator is calibrated from the paper's own hardware envelope
// (internal/bb/calibration.go); the claims under test are the *shapes*:
// who wins, by what factor, and where behaviour changes.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"themisio/internal/bb"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Result is the outcome of one experiment: rendered rows plus the paper's
// reference numbers for side-by-side comparison.
type Result struct {
	ID    string
	Title string
	// Lines is the regenerated table/series.
	Lines []string
	// Paper summarizes what the paper reports for the same figure.
	Paper []string
	// Metrics exposes key scalar results for tests and benchmarks.
	Metrics map[string]float64
}

// Render formats the result as text.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Paper) > 0 {
		b.WriteString("--- paper reports ---\n")
		for _, l := range r.Paper {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) metric(k string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[k] = v
}

// Spec is a registry entry.
type Spec struct {
	ID    string
	Title string
	Run   func() *Result
}

// Registry lists every reproducible figure/table in paper order.
var Registry = []Spec{
	{"capacity", "§5.2 single-server hardware envelope", Capacity},
	{"fig1", "Figure 1: application slowdown with a shared burst buffer (FIFO)", Fig1},
	{"fig7", "Figure 7: aggregate throughput scaling, 1–128 servers", Fig7},
	{"fig8a", "Figure 8a: size-fair, 4-node vs 1-node job", Fig8a},
	{"fig8b", "Figure 8b: job-fair, 4-node vs 1-node job", Fig8b},
	{"fig8c", "Figure 8c: user-fair, 2 users / 3 jobs", Fig8c},
	{"fig9", "Figure 9: user-then-size-fair, 2 users / 4 jobs", Fig9},
	{"fig10", "Figures 10+11: group-user-size-fair, 2 groups / 4 users / 8 jobs", Fig10},
	{"fig12", "Figure 12: ThemisIO vs GIFT vs TBF (job-fair)", Fig12},
	{"fig13", "Figure 13: application slowdown, FIFO vs size-fair", Fig13},
	{"fig14", "Figure 14: λ-delayed global fairness", Fig14},
	{"ablation", "design ablations: opportunity fairness, presence deweighting", Ablation},
	{"metadata", "§2.2.1 metadata-storm isolation (iops_stat)", Metadata},
	{"stageout", "stage-out drain vs foreground under the sharing policy", StageOut},
	{"rebalance", "join-time stripe migration vs foreground under the sharing policy", Rebalance},
	{"policyswap", "live policy hot-swap: measured share re-convergence", PolicySwap},
}

// Lookup finds a registry entry by ID.
func Lookup(id string) *Spec {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// --- shared builders -----------------------------------------------------

func themisSched(pol policy.Policy, seed int64) func(int, float64) sched.Scheduler {
	return func(i int, _ float64) sched.Scheduler { return core.New(pol, seed+101*int64(i)) }
}

func fifoSched() func(int, float64) sched.Scheduler {
	return func(int, float64) sched.Scheduler { return sched.NewFIFO() }
}

func giftSched() func(int, float64) sched.Scheduler {
	return func(_ int, capacity float64) sched.Scheduler {
		return sched.NewGIFT(sched.GIFTConfig{Capacity: capacity})
	}
}

func tbfSched() func(int, float64) sched.Scheduler {
	return func(_ int, capacity float64) sched.Scheduler {
		return sched.NewTBF(sched.TBFConfig{Capacity: capacity})
	}
}

func jobInfo(id, user, group string, nodes int) policy.JobInfo {
	return policy.JobInfo{JobID: id, UserID: user, GroupID: group, Nodes: nodes}
}

// wrCycle is the §5.3 benchmark stream: 10 MB write-then-read cycles in
// 1 MB blocks.
func wrCycle() func(int) workload.Stream {
	return func(int) workload.Stream {
		return workload.WriteReadCycle(10*workload.MB, workload.MB)
	}
}

// benchJob adds a §5.3-style benchmark job: 56 processes per node. Process
// start times are staggered by a few hundred microseconds each — as MPI
// ranks on a real machine are — so write/read cycle phases desynchronize
// and the duplex link is driven in both directions at once.
func benchJob(c *bb.Cluster, job policy.JobInfo, start, stop time.Duration) {
	procs := 56 * job.Nodes
	for i := 0; i < procs; i++ {
		c.AddProc(bb.Proc{
			Job:    job,
			Stream: wrCycle()(i),
			Start:  start + time.Duration(i)*437*time.Microsecond,
			Stop:   stop,
		})
	}
}

func gbps(v float64) float64 { return v / 1e9 }
