package experiments

import (
	"fmt"
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// PolicySwap sweeps the live policy hot-swap machinery on the
// simulated burst buffer: the administrator flips the cluster-wide
// sharing policy while traffic is in flight, every server recompiles
// at its next λ (PR 2's epoch machinery — the swap is just one more
// epoch publication), and the per-entity measured serviced-byte shares
// must re-converge to the freshly compiled token shares. Four
// scenarios:
//
//   - steady: no swap — size-fair over two flooding users; the
//     baseline that the measured share tracks the compiled share at
//     all (the 0.249-vs-0.25 claims of EXPERIMENTS.md, as an
//     enforced sweep).
//   - swap: job-fair → size-fair mid-flood; shares must match the old
//     policy before the swap and the new one after it.
//   - swap-rebalance: the swap lands while a join-time stripe
//     migration is running; the rebalance job re-arbitrates under the
//     new compiled share like any foreground job.
//   - straggler: two servers, the second applies the swap a couple of
//     gossip rounds late (a member that missed the first fan-outs and
//     learns via catch-up); after the rumor lands everywhere, both
//     servers' λ share ledgers must agree with their compiled shares.
//
// Every *_residual metric is a measured-minus-compiled share residual;
// the fairness CI gate bounds them all at ±0.02.
func PolicySwap() *Result {
	r := &Result{ID: "policyswap", Title: "live policy hot-swap: measured share re-convergence"}

	// 2 MB chunks keep the event count (and wall time) down; the fluid
	// model's shares are byte-based, so chunk size does not move them.
	const chunk = 2 * workload.MB

	u1 := jobInfo("job1-3n", "u1", "g1", 3)
	u2 := jobInfo("job2-1n", "u2", "g2", 1)
	flood := func(c *bb.Cluster, job policy.JobInfo, procs int, end time.Duration) {
		for i := 0; i < procs; i++ {
			c.AddProc(bb.Proc{
				Job:    job,
				Stream: workload.IORLoop(sched.OpWrite, chunk),
				Start:  time.Duration(i) * 437 * time.Microsecond,
				Stop:   end,
			})
		}
	}
	// measured returns jobA's share of the two jobs' combined
	// throughput over [from, to).
	measured := func(c *bb.Cluster, jobA, jobB string, from, to time.Duration) float64 {
		a := c.Meter().MeanRate(jobA, from, to)
		b := c.Meter().MeanRate(jobB, from, to)
		return a / (a + b)
	}
	compiled := func(pol policy.Policy, jobs ...policy.JobInfo) map[string]float64 {
		m, err := policy.Shares(jobs, pol)
		if err != nil {
			panic(err)
		}
		return m
	}
	// ledgerResidual returns the worst |measured − compiled| among the
	// named jobs in server i's λ share ledger — the sim mirror of what
	// `themisctl policy status` prints per server.
	ledgerResidual := func(c *bb.Cluster, i int, jobs ...string) float64 {
		want := map[string]bool{}
		for _, j := range jobs {
			want[j] = true
		}
		worst := 0.0
		found := 0
		for _, e := range c.ShareReport(i) {
			if e.Kind != "job" || !want[e.ID] {
				continue
			}
			found++
			if res := e.Residual(); res > worst {
				worst = res
			} else if -res > worst {
				worst = -res
			}
		}
		if found != len(jobs) {
			panic(fmt.Sprintf("policyswap: ledger of server %d reports %d of %d jobs", i, found, len(jobs)))
		}
		return worst
	}

	// --- steady: no swap, size-fair baseline ---------------------------
	{
		const end = 10 * time.Second
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.SizeFair, 11)})
		flood(c, u1, 8, end)
		flood(c, u2, 8, end)
		c.Run(end)
		comp := compiled(policy.SizeFair, u1, u2)
		meas := measured(c, u1.JobID, u2.JobID, 4*time.Second, 9*time.Second)
		r.addf("steady       size-fair: u1 measured %.3f (compiled %.3f)", meas, comp[u1.JobID])
		r.metric("steady_u1_share", meas)
		r.metric("steady_u1_residual", meas-comp[u1.JobID])
	}

	// --- swap: job-fair → size-fair mid-flood --------------------------
	{
		const (
			swapAt = 6 * time.Second
			end    = 13 * time.Second
		)
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.JobFair, 12)})
		flood(c, u1, 8, end)
		flood(c, u2, 8, end)
		c.SwapPolicy(swapAt, policy.SizeFair, 0)
		c.Run(end)
		pre := measured(c, u1.JobID, u2.JobID, 2*time.Second, 5*time.Second)
		post := measured(c, u1.JobID, u2.JobID, 9*time.Second, 12*time.Second)
		compPre := compiled(policy.JobFair, u1, u2)
		compPost := compiled(policy.SizeFair, u1, u2)
		// The ledger horizon (8 λ = 4 s) has fully forgotten the old
		// policy by the end, so its report must agree with its own
		// compiled shares too — the wire-visible convergence signal.
		led := ledgerResidual(c, 0, u1.JobID, u2.JobID)
		r.addf("swap         job-fair→size-fair at %v: u1 pre %.3f (compiled %.3f), post %.3f (compiled %.3f), ledger residual %.3f",
			swapAt, pre, compPre[u1.JobID], post, compPost[u1.JobID], led)
		r.metric("swap_pre_share", pre)
		r.metric("swap_pre_residual", pre-compPre[u1.JobID])
		r.metric("swap_post_share", post)
		r.metric("swap_post_residual", post-compPost[u1.JobID])
		r.metric("swap_ledger_residual", led)
	}

	// --- swap-rebalance: flip policy while a migration is running ------
	{
		const (
			swapAt = 6 * time.Second
			end    = 13 * time.Second
		)
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.JobFair, 13)})
		flood(c, u1, 8, end)
		// Depth 32 keeps the migration continuously busy, as in the
		// rebalance experiment: what is under test is the share, not
		// opportunistic hand-back.
		c.AddRebalance(0, chunk, 32, 0, end)
		c.SwapPolicy(swapAt, policy.SizeFair, 0)
		c.Run(end)
		mig := bb.RebalanceJobID(0)
		migJob := policy.RebalanceJob("bb0")
		pre := measured(c, mig, u1.JobID, 2*time.Second, 5*time.Second)
		post := measured(c, mig, u1.JobID, 9*time.Second, 12*time.Second)
		compPre := compiled(policy.JobFair, u1, migJob)
		compPost := compiled(policy.SizeFair, u1, migJob)
		r.addf("swap-rebal   job-fair→size-fair mid-migration: migration pre %.3f (compiled %.3f), post %.3f (compiled %.3f)",
			pre, compPre[mig], post, compPost[mig])
		r.metric("rebalance_pre_share", pre)
		r.metric("rebalance_pre_residual", pre-compPre[mig])
		r.metric("rebalance_post_share", post)
		r.metric("rebalance_post_residual", post-compPost[mig])
	}

	// --- straggler: one member applies the swap two λ late -------------
	{
		const (
			swapAt  = 6 * time.Second
			stagger = 2 * bb.DefaultLambda // server 1 recompiles 2λ after server 0
			end     = 14 * time.Second
		)
		c := bb.NewCluster(bb.Config{
			Servers: 2, NewSched: themisSched(policy.JobFair, 14),
			GossipFanout: 1, GossipSeed: 7,
		})
		flood(c, u1, 8, end)
		flood(c, u2, 8, end)
		c.SwapPolicy(swapAt, policy.SizeFair, stagger)
		c.Run(end)
		comp := compiled(policy.SizeFair, u1, u2)
		// Global measured share once every member has recompiled (the
		// last one applies at swapAt+stagger; give the ledger horizon a
		// beat to forget the mixed-policy transient).
		post := measured(c, u1.JobID, u2.JobID, 9*time.Second, 13*time.Second)
		worstLedger := ledgerResidual(c, 0, u1.JobID, u2.JobID)
		if l1 := ledgerResidual(c, 1, u1.JobID, u2.JobID); l1 > worstLedger {
			worstLedger = l1
		}
		r.addf("straggler    2 servers, swap lands 2λ apart: u1 post %.3f (compiled %.3f), worst ledger residual %.3f",
			post, comp[u1.JobID], worstLedger)
		r.metric("straggler_post_share", post)
		r.metric("straggler_post_residual", post-comp[u1.JobID])
		r.metric("straggler_ledger_residual", worstLedger)
	}

	r.Paper = []string{
		"no figure — the paper's §2.2.2 operability claim (one policy string",
		"steers sharing) extended to a live fleet; the claim under test is that",
		"a hot-swap re-converges measured shares to Equation 1 within a few λ",
	}
	return r
}
