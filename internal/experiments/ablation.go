package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Ablation quantifies the two design choices DESIGN.md calls out:
//
//  1. Opportunity fairness (conditional token draws) vs strict shares
//     (mandatory assignment, as in reservation-based systems): a bursty
//     job's idle half-cycles are reclaimed by the other job only in the
//     opportunistic design.
//  2. Presence deweighting in the λ-sync (Figure 5's token-count
//     addition): without it, a job striped across both servers keeps
//     its locally-fair over-allocation even after the tables agree.
func Ablation() *Result {
	r := &Result{ID: "ablation", Title: "design ablations: opportunity fairness, presence deweighting"}

	// --- 1. opportunity fairness -----------------------------------
	run := func(strict bool) (steady, total float64) {
		c := bb.NewCluster(bb.Config{
			Servers: 1,
			NewSched: func(i int, _ float64) sched.Scheduler {
				th := core.New(policy.JobFair, 21+int64(i))
				th.SetStrict(strict)
				return th
			},
		})
		mk := func(int) workload.Stream { return workload.WriteReadCycle(10*workload.MB, workload.MB) }
		// Job 1 runs continuously; job 2 alternates 1 s of I/O with 1 s
		// of compute (50% duty cycle) — think time between cycles.
		c.AddJob(bb.JobSpec{Job: jobInfo("steady", "u1", "g", 1), Procs: 56, MakeStream: mk})
		c.AddJob(bb.JobSpec{
			Job:   jobInfo("bursty", "u2", "g", 1),
			Procs: 56,
			MakeStream: func(int) workload.Stream {
				// One full 10 MB cycle then ~1 s of think.
				inner := workload.WriteReadCycle(10*workload.MB, workload.MB)
				i := 0
				return workload.Func(func() (workload.Item, bool) {
					it, ok := inner.Next()
					if i%20 == 0 {
						it.Think = time.Second
					}
					i++
					return it, ok
				})
			},
		})
		c.Run(20 * time.Second)
		return c.Meter().MeanRate("steady", 4*time.Second, 20*time.Second),
			c.Meter().MeanRate("steady", 4*time.Second, 20*time.Second) +
				c.Meter().MeanRate("bursty", 4*time.Second, 20*time.Second)
	}
	oppSteady, oppTotal := run(false)
	strictSteady, strictTotal := run(true)
	r.addf("opportunity fairness ablation (job2 at ~50%% duty cycle):")
	r.addf("  opportunistic: steady job %5.1f GB/s, total %5.1f GB/s", gbps(oppSteady), gbps(oppTotal))
	r.addf("  strict shares: steady job %5.1f GB/s, total %5.1f GB/s", gbps(strictSteady), gbps(strictTotal))
	r.addf("  utilization kept by opportunity fairness: +%.0f%%", (oppTotal/strictTotal-1)*100)
	r.metric("opp_total_gbps", gbps(oppTotal))
	r.metric("strict_total_gbps", gbps(strictTotal))

	// --- 2. presence deweighting ------------------------------------
	shares := func(presence bool) float64 {
		jobs := []policy.JobInfo{
			{JobID: "wide", UserID: "u1", Nodes: 16},
			{JobID: "narrow", UserID: "u2", Nodes: 8},
		}
		if presence {
			jobs[0].Presence = 2 // striped over both servers
			jobs[1].Presence = 1
		}
		sh, err := policy.Shares(jobs, policy.SizeFair)
		if err != nil {
			return 0
		}
		return sh["wide"]
	}
	r.addf("presence deweighting (16-node job on 2 servers vs 8-node job on 1):")
	r.addf("  per-server share of the wide job without deweighting: %.0f%%", shares(false)*100)
	r.addf("  with deweighting (Figure 5 reconciliation):           %.0f%%", shares(true)*100)
	r.addf("  global share: 2×%.0f%% of half the fleet = the fair 50%%", shares(true)*100)
	r.metric("wide_share_raw", shares(false))
	r.metric("wide_share_deweighted", shares(true))

	r.Paper = []string{
		"§1: opportunity fairness means fairness is enforced only when demand",
		"exceeds capacity, so ThemisIO 'is always operating with maximal I/O",
		"throughput'; §3.1/Figure 5: token-count addition restores global fairness",
	}
	return r
}
