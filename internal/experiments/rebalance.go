package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Rebalance measures how the sharing policy governs join-time stripe
// migration bandwidth against foreground I/O. The migration
// coordinator issues its stripe fetches and installs under a synthetic
// 1-node rebalance job, and every frame goes through the receiving
// server's token scheduler — so migration gets whatever share the
// policy compiles for one more 1-node job of the _system user, exactly
// the stage-out drain contract. The experiment runs a write-only
// 3-node foreground job against a continuously-busy migration on one
// server and reports the migration's measured share of write bandwidth
// under size-fair (expected 1/(3+1) = 0.25) and job-fair (expected
// 1/2).
func Rebalance() *Result {
	r := &Result{ID: "rebalance", Title: "join-time stripe migration vs foreground under the sharing policy"}
	const (
		end  = 30 * time.Second
		from = 5 * time.Second
		to   = 28 * time.Second
	)
	run := func(pol policy.Policy) (fg, mig float64) {
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(pol, 8)})
		job := jobInfo("job1-3n", "u1", "g1", 3)
		for i := 0; i < 24; i++ {
			c.AddProc(bb.Proc{
				Job:    job,
				Stream: workload.IORLoop(sched.OpWrite, workload.MB),
				Start:  time.Duration(i) * 437 * time.Microsecond,
				Stop:   end,
			})
		}
		// Depth 64 keeps ~64 MB of migration chunks outstanding — a ring
		// move with a deep backlog of files to shift. (A shallow queue
		// under-uses its share and opportunity fairness hands the gap to
		// the foreground job — desired, but not what is under test.)
		c.AddRebalance(0, 0, 64, 0, end)
		c.Run(end)
		fg = c.Meter().MeanRate(job.JobID, from, to)
		mig = c.Meter().MeanRate(bb.RebalanceJobID(0), from, to)
		return fg, mig
	}

	fgS, mgS := run(policy.SizeFair)
	fgJ, mgJ := run(policy.JobFair)
	shareS := mgS / (fgS + mgS)
	shareJ := mgJ / (fgJ + mgJ)
	r.addf("size-fair: foreground %5.1f GB/s, migration %5.1f GB/s — migration share %.3f (policy share 0.250)",
		gbps(fgS), gbps(mgS), shareS)
	r.addf("job-fair : foreground %5.1f GB/s, migration %5.1f GB/s — migration share %.3f (policy share 0.500)",
		gbps(fgJ), gbps(mgJ), shareJ)
	r.Paper = []string{
		"no figure — elastic scale-out is outside the paper's scope;",
		"the claim under test is that migration traffic obeys Equation 1 like any job",
	}
	r.metric("sizefair_fg_gbps", gbps(fgS))
	r.metric("sizefair_migration_gbps", gbps(mgS))
	r.metric("sizefair_migration_share", shareS)
	r.metric("jobfair_migration_share", shareJ)
	return r
}
