package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// Capacity reproduces the §5.2 single-server hardware envelope text:
// ~11.7 GB/s unidirectional and ~22 GB/s combined read+write.
func Capacity() *Result {
	r := &Result{ID: "capacity", Title: "§5.2 single-server hardware envelope"}
	run := func(mk func(int) workload.Stream, procs int) *bb.Cluster {
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: themisSched(policy.JobFair, 1)})
		c.AddJob(bb.JobSpec{Job: jobInfo("j1", "u1", "g1", 1), Procs: procs, MakeStream: mk})
		c.Run(12 * time.Second)
		return c
	}
	w := run(func(int) workload.Stream { return workload.IORLoop(sched.OpWrite, workload.MB) }, 56)
	writeRate := w.Meter().MedianRate("j1", 2*time.Second, 12*time.Second)
	rd := run(func(int) workload.Stream { return workload.IORLoop(sched.OpRead, workload.MB) }, 56)
	readRate := rd.Meter().MedianRate("j1", 2*time.Second, 12*time.Second)
	both := run(wrCycle(), 224)
	bothRate := both.Meter().MedianRate("j1", 6*time.Second, 12*time.Second)

	r.addf("write-only      : %6.1f GB/s", gbps(writeRate))
	r.addf("read-only       : %6.1f GB/s", gbps(readRate))
	r.addf("write+read mixed: %6.1f GB/s", gbps(bothRate))
	r.Paper = []string{
		"unidirectional ~11.7 GB/s per server; combined read+write ~22 GB/s",
	}
	r.metric("write_gbps", gbps(writeRate))
	r.metric("read_gbps", gbps(readRate))
	r.metric("combined_gbps", gbps(bothRate))
	return r
}

// Fig7 reproduces the scaling study: 1–128 server nodes, an equal number
// of client nodes each running 8 IOR processes writing and reading 1 GB
// files in 1 MB blocks, under FIFO and job-fair queuing.
func Fig7() *Result {
	r := &Result{ID: "fig7", Title: "Figure 7: aggregate throughput scaling"}
	r.addf("%8s %14s %14s %14s %14s %8s", "servers", "fifo-read", "fifo-write", "jobfair-read", "jobfair-write", "eff")
	counts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	const (
		dur     = 3 * time.Second
		warm    = time.Second
		tick    = 2 * time.Millisecond
		procsPN = 8
	)
	measure := func(n int, mk func(int, float64) sched.Scheduler, op sched.Op) float64 {
		c := bb.NewCluster(bb.Config{Servers: n, NewSched: mk, Tick: tick})
		c.AddJob(bb.JobSpec{
			Job:   jobInfo("ior", "u1", "g1", n),
			Procs: procsPN * n,
			MakeStream: func(int) workload.Stream {
				return workload.IORLoop(op, workload.MB)
			},
			QueueDepth: 8,
		})
		c.Run(dur)
		return c.Meter().MedianRate("ior", warm, dur)
	}
	for _, n := range counts {
		fr := measure(n, fifoSched(), sched.OpRead)
		fw := measure(n, fifoSched(), sched.OpWrite)
		jr := measure(n, themisSched(policy.JobFair, 7), sched.OpRead)
		jw := measure(n, themisSched(policy.JobFair, 7), sched.OpWrite)
		eff := fr / (float64(n) * bb.DefaultDirBW)
		r.addf("%8d %11.1f GB/s %11.1f GB/s %11.1f GB/s %11.1f GB/s %7.0f%%",
			n, gbps(fr), gbps(fw), gbps(jr), gbps(jw), eff*100)
		if n == 1 {
			r.metric("n1_read_gbps", gbps(fr))
		}
		if n == 8 {
			r.metric("n8_eff", eff)
		}
		if n == 128 {
			r.metric("n128_read_gbps", gbps(fr))
			r.metric("n128_eff", eff)
		}
	}
	r.Paper = []string{
		"1 server: 11.7 GB/s; 8 servers: slowest 77.1 GB/s (82% efficiency);",
		"128 servers: 1017 GB/s (68% efficiency); FIFO and job-fair comparable",
	}
	return r
}
