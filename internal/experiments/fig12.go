package experiments

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
)

// Fig12 compares ThemisIO's job-fair sharing against the GIFT and TBF
// algorithms (reimplemented behind the same scheduler interface, exactly
// as the paper did in §5.4) using a pair of single-node benchmark jobs:
// job 1 runs 60 s; job 2 runs 15 s–45 s.
func Fig12() *Result {
	r := &Result{ID: "fig12", Title: "ThemisIO vs GIFT vs TBF, job-fair sharing"}
	type outcome struct {
		name              string
		peak, j2, sd, tot float64
	}
	run := func(name string, mk func(int, float64) sched.Scheduler) outcome {
		// Meter at 250 ms bins: the allocation-quantization signatures of
		// GIFT (500 ms windows) and TBF (bucket drain/refill cycles) show
		// up below the 1 s sampling the paper uses; the simulator has no
		// client/network noise, so the quantization is the whole σ signal.
		// Means (rather than medians of sub-second bins) give the paper's
		// sustained-throughput numbers.
		c := bb.NewCluster(bb.Config{Servers: 1, NewSched: mk, Bin: 250 * time.Millisecond})
		benchJob(c, jobInfo("job1", "u1", "g1", 1), 0, shareEnd)
		benchJob(c, jobInfo("job2", "u2", "g1", 1), shareJob2Start, shareJob2Stop)
		c.Run(shareEnd)
		m := c.Meter()
		return outcome{
			name: name,
			peak: m.MeanRate("job1", aloneFrom, aloneTo),
			j2:   m.MeanRate("job2", sharedFrom, sharedTo),
			sd:   m.StddevRate("job2", sharedFrom, sharedTo),
			tot:  m.MeanRate("job1", sharedFrom, sharedTo) + m.MeanRate("job2", sharedFrom, sharedTo),
		}
	}
	outs := []outcome{
		run("themisio", themisSched(policy.JobFair, 12)),
		run("gift", giftSched()),
		run("tbf", tbfSched()),
	}
	r.addf("%-9s %12s %14s %12s %14s", "scheduler", "peak(job1)", "job2 shared", "σ(job2)", "shared total")
	for _, o := range outs {
		r.addf("%-9s %9.1f GB/s %11.1f GB/s %9.0f MB/s %11.1f GB/s",
			o.name, gbps(o.peak), gbps(o.j2), o.sd/1e6, gbps(o.tot))
		r.metric(o.name+"_peak_gbps", gbps(o.peak))
		r.metric(o.name+"_job2_gbps", gbps(o.j2))
		r.metric(o.name+"_sigma_mbps", o.sd/1e6)
	}
	th, gf, tb := outs[0], outs[1], outs[2]
	r.addf("themis peak vs gift/tbf : +%.1f%% / +%.1f%%",
		(th.peak/gf.peak-1)*100, (th.peak/tb.peak-1)*100)
	r.addf("themis job2 vs gift/tbf : +%.1f%% / +%.1f%%",
		(th.j2/gf.j2-1)*100, (th.j2/tb.j2-1)*100)
	r.metric("peak_gain_vs_gift_pct", (th.peak/gf.peak-1)*100)
	r.metric("peak_gain_vs_tbf_pct", (th.peak/tb.peak-1)*100)
	r.Paper = []string{
		"peak: ThemisIO 19.8 GB/s, +13.5% over GIFT (17.5), +13.7% over TBF (17.4);",
		"job2 shared: 10.2 vs 9.4 (GIFT) vs 8.9 (TBF) GB/s;",
		"σ(job2): 504 vs 626 (GIFT) vs 845 (TBF) MB/s",
	}
	return r
}
