package experiments

import (
	"strings"
	"testing"
)

// These tests assert the *shape* claims of each reproduced figure — the
// ratios, orderings and convergence points the paper's evaluation rests
// on. The slow application suite (fig1/fig13, ~2 minutes) is exercised
// by BenchmarkFig13Applications instead.

func metricsOf(t *testing.T, r *Result) map[string]float64 {
	t.Helper()
	if r.Metrics == nil {
		t.Fatalf("%s: no metrics", r.ID)
	}
	return r.Metrics
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"capacity", "fig1", "fig7", "fig8a", "fig8b", "fig8c",
		"fig9", "fig10", "fig12", "fig13", "fig14", "ablation", "metadata",
		"stageout", "rebalance", "policyswap"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, Registry[i].ID, id)
		}
		if Lookup(id) == nil {
			t.Fatalf("Lookup(%s) failed", id)
		}
	}
	if Lookup("nope") != nil {
		t.Fatal("Lookup of unknown id should be nil")
	}
}

func TestCapacityEnvelope(t *testing.T) {
	m := metricsOf(t, Capacity())
	if m["write_gbps"] < 11 || m["write_gbps"] > 12.5 {
		t.Fatalf("write = %.1f GB/s, want ~11.7", m["write_gbps"])
	}
	if m["read_gbps"] < 11 || m["read_gbps"] > 12.5 {
		t.Fatalf("read = %.1f GB/s, want ~11.7", m["read_gbps"])
	}
	if m["combined_gbps"] < 20.5 || m["combined_gbps"] > 23 {
		t.Fatalf("combined = %.1f GB/s, want ~22", m["combined_gbps"])
	}
}

func TestFig8aShape(t *testing.T) {
	m := metricsOf(t, Fig8a())
	if m["ratio"] < 3.6 || m["ratio"] > 4.4 {
		t.Fatalf("size-fair ratio = %.2f, want ~4 (paper 3.96)", m["ratio"])
	}
	if m["alone_gbps"] < 20 {
		t.Fatalf("unopposed = %.1f GB/s, want ~22", m["alone_gbps"])
	}
	if tot := m["job1_gbps"] + m["job2_gbps"]; tot < 20 {
		t.Fatalf("sharing total = %.1f GB/s — utilization lost", tot)
	}
}

func TestFig8bShape(t *testing.T) {
	m := metricsOf(t, Fig8b())
	if m["ratio"] < 0.9 || m["ratio"] > 1.15 {
		t.Fatalf("job-fair ratio = %.2f, want ~1", m["ratio"])
	}
}

func TestFig8cShape(t *testing.T) {
	m := metricsOf(t, Fig8c())
	diff := m["userA_gbps"] / m["userB_gbps"]
	if diff < 0.9 || diff > 1.15 {
		t.Fatalf("user-fair user split = %.2f, want ~1 (paper 10.85 vs 10.80)", diff)
	}
}

func TestFig9Shape(t *testing.T) {
	m := metricsOf(t, Fig9())
	if r := m["user1_gbps"] / m["user2_gbps"]; r < 0.9 || r > 1.1 {
		t.Fatalf("user split = %.2f, want ~1", r)
	}
	if m["u1_ratio"] < 1.8 || m["u1_ratio"] > 2.2 {
		t.Fatalf("user1 within ratio = %.2f, want ~2 (1:2 nodes)", m["u1_ratio"])
	}
	if m["u2_ratio"] < 1.3 || m["u2_ratio"] > 1.7 {
		t.Fatalf("user2 within ratio = %.2f, want ~1.5 (4:6 nodes)", m["u2_ratio"])
	}
}

func TestFig10Shape(t *testing.T) {
	m := metricsOf(t, Fig10())
	if m["group1_share"] < 0.45 || m["group1_share"] > 0.55 {
		t.Fatalf("group1 share = %.2f, want ~0.5", m["group1_share"])
	}
	for _, u := range []string{"u2", "u3", "u4"} {
		s := m["user_"+u+"_share"]
		if s < 0.13 || s > 0.21 {
			t.Fatalf("user %s share = %.3f, want ~1/6", u, s)
		}
	}
	if m["total_gbps"] < 18 {
		t.Fatalf("total = %.1f GB/s, want ~20", m["total_gbps"])
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep takes ~3s")
	}
	m := metricsOf(t, Fig12())
	// ThemisIO sustains a double-digit peak advantage over both.
	if m["peak_gain_vs_gift_pct"] < 8 || m["peak_gain_vs_gift_pct"] > 20 {
		t.Fatalf("gain vs GIFT = %.1f%%, paper 13.5%%", m["peak_gain_vs_gift_pct"])
	}
	if m["peak_gain_vs_tbf_pct"] < 8 || m["peak_gain_vs_tbf_pct"] > 20 {
		t.Fatalf("gain vs TBF = %.1f%%, paper 13.7%%", m["peak_gain_vs_tbf_pct"])
	}
	// Variance ordering: ThemisIO < GIFT < TBF (paper 504 < 626 < 845).
	if !(m["themisio_sigma_mbps"] < m["gift_sigma_mbps"] &&
		m["gift_sigma_mbps"] < m["tbf_sigma_mbps"]) {
		t.Fatalf("σ ordering broken: %v / %v / %v",
			m["themisio_sigma_mbps"], m["gift_sigma_mbps"], m["tbf_sigma_mbps"])
	}
}

func TestFig14Shape(t *testing.T) {
	m := metricsOf(t, Fig14())
	// All λ converge; larger λ converge by the 2nd interval.
	for _, k := range []string{"l200_converge_interval", "l500_converge_interval"} {
		if m[k] < 1 || m[k] > 2 {
			t.Fatalf("%s = %v, want <= 2", k, m[k])
		}
	}
	if m["l10_converge_interval"] < 3 {
		t.Fatalf("λ=10ms converged at interval %v; the paper needs 5 (control-plane bound)", m["l10_converge_interval"])
	}
	// Shorter λ → higher post-convergence share variance.
	if !(m["l10_share_sigma"] > m["l50_share_sigma"] &&
		m["l50_share_sigma"] > m["l500_share_sigma"]) {
		t.Fatalf("variance trend broken: %v / %v / %v",
			m["l10_share_sigma"], m["l50_share_sigma"], m["l500_share_sigma"])
	}
}

func TestAblationShape(t *testing.T) {
	m := metricsOf(t, Ablation())
	if m["opp_total_gbps"] < 1.5*m["strict_total_gbps"] {
		t.Fatalf("opportunity fairness should roughly double utilization here: %v vs %v",
			m["opp_total_gbps"], m["strict_total_gbps"])
	}
	if m["wide_share_deweighted"] >= m["wide_share_raw"] {
		t.Fatal("presence deweighting should shrink the wide job's per-server share")
	}
}

func TestMetadataIsolationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("metadata-storm scenario takes ~20s")
	}
	m := metricsOf(t, Metadata())
	if m["fair_victim_gbps"] < 3*m["fifo_victim_gbps"] {
		t.Fatalf("job-fair should rescue the victim's data path: %.2f vs %.2f GB/s",
			m["fair_victim_gbps"], m["fifo_victim_gbps"])
	}
	if m["fifo_storm_ops"] < 0.5e6 {
		t.Fatalf("storm should saturate the IOPS envelope under FIFO: %.0f ops/s", m["fifo_storm_ops"])
	}
}

func TestStageOutShareTracksPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-out sharing scenario takes ~15s")
	}
	m := metricsOf(t, StageOut())
	if s := m["sizefair_drain_share"]; s < 0.21 || s > 0.29 {
		t.Fatalf("size-fair drain share = %.3f, want ~0.25", s)
	}
	if s := m["jobfair_drain_share"]; s < 0.44 || s > 0.56 {
		t.Fatalf("job-fair drain share = %.3f, want ~0.50", s)
	}
	if m["sizefair_fg_gbps"] < 7 {
		t.Fatalf("foreground under size-fair = %.1f GB/s, drain must not starve it", m["sizefair_fg_gbps"])
	}
}

// TestFairnessGate is the CI fairness gate: the policy hot-swap
// sweeps (steady baseline, mid-flood swap, swap during rebalance,
// straggler member) must show every entity's measured serviced-byte
// share within ±0.02 of its compiled token share at window close. This
// runs in -short too — it IS the CI job — and turns EXPERIMENTS.md
// claims like 0.249-vs-0.25 into an enforced invariant instead of
// prose.
func TestFairnessGate(t *testing.T) {
	const tolerance = 0.02
	m := metricsOf(t, PolicySwap())
	checked := 0
	for k, v := range m {
		if !strings.HasSuffix(k, "_residual") {
			continue
		}
		checked++
		if v < -tolerance || v > tolerance {
			t.Errorf("%s = %+.4f, exceeds ±%.2f fairness gate", k, v, tolerance)
		} else {
			t.Logf("%s = %+.4f (within ±%.2f)", k, v, tolerance)
		}
	}
	if checked < 8 {
		t.Fatalf("gate checked only %d residual metrics; the sweep shrank", checked)
	}
}

// The rebalance experiment's sharing assertion lives with the
// acceptance test (TestRebalanceShareTracksPolicy in
// internal/cluster/rebalance_test.go, tighter ±0.01 tolerance) —
// running the same ~15s simulation twice bought nothing.

func TestRenderIncludesPaperReference(t *testing.T) {
	res := Capacity()
	out := res.Render()
	if !strings.Contains(out, "paper reports") || !strings.Contains(out, "GB/s") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}
