// Package apptrace models the five real applications of the paper's
// evaluation (§5.1, §5.5) as I/O phase traces: alternating compute and
// I/O bursts whose volumes and concurrency are sized so that each
// application's baseline I/O fraction matches what the paper's measured
// slowdowns imply. DESIGN.md documents this substitution (real runs on
// Frontera → traces on the simulator); EXPERIMENTS.md records the
// derivation of each parameter set.
//
// Synchronous applications (NAMD, WRF, SPECFEM3D, BERT, ResNet-sync)
// compute for a phase and then write/read their phase volume through
// IOProcs concurrent streams. ResNet-50's default configuration instead
// uses asynchronous I/O: a prefetch pipeline reads the next batches while
// the trainer computes, which is why its interference behaviour is
// non-linear (§5.5: "with asynchronous I/O, ResNet-50 is bounded by the
// computation and communication. As the I/O latency increases, I/O
// becomes the dominating factor").
package apptrace

import (
	"time"

	"themisio/internal/bb"
	"themisio/internal/policy"
	"themisio/internal/sched"
	"themisio/internal/workload"
)

// App describes one application trace.
type App struct {
	Name  string
	Nodes int

	// Synchronous phase structure.
	Phases  int           // number of compute+I/O phases
	Compute time.Duration // compute time per phase
	IOBytes int64         // I/O volume per phase per I/O process
	Block   int64         // request size
	IOProcs int           // concurrent I/O streams
	Depth   int           // queue depth per stream
	Op      sched.Op      // I/O direction of the bursts

	// Asynchronous pipeline structure (ResNet). When Async is true the
	// phase fields above are reinterpreted: Phases = training steps,
	// Compute = per-step compute, IOBytes = per-step batch volume.
	Async    bool
	Prefetch int // batches the pipeline may run ahead
}

// Handle reports the application's completion.
type Handle struct {
	App      App
	Finished bool
	DoneAt   time.Duration
}

// TTS returns the time-to-solution, panicking if the app never finished
// (the experiment's horizon was too short — a configuration error).
func (h *Handle) TTS() time.Duration {
	if !h.Finished {
		panic("apptrace: " + h.App.Name + " did not finish within the simulation horizon")
	}
	return h.DoneAt
}

// Run launches the application on the cluster at time 0 under the given
// job identity, targeting all servers.
func Run(c *bb.Cluster, app App, job policy.JobInfo) *Handle {
	h := &Handle{App: app}
	if app.Async {
		runAsync(c, app, job, h)
		return h
	}
	handles := c.AddJob(bb.JobSpec{
		Job:   job,
		Procs: app.IOProcs,
		MakeStream: func(int) workload.Stream {
			return workload.Phases(app.Op, app.Compute, app.IOBytes, app.Block, app.Phases)
		},
		QueueDepth: app.Depth,
	})
	// Poll completion cheaply on the engine: phases end on request
	// completions, so checking at a coarse period loses at most one
	// period of precision — refine by checking at every bin boundary.
	var watch func()
	watch = func() {
		if bb.AllFinished(handles) {
			h.Finished = true
			h.DoneAt = bb.LastDone(handles)
			return
		}
		c.Engine().After(10*time.Millisecond, watch)
	}
	c.Engine().At(0, watch)
	return h
}

// runAsync wires the ResNet-style prefetch pipeline: reader streams keep
// up to Prefetch batches in flight or buffered; the trainer consumes one
// batch per step and computes for Compute. A step stalls only when no
// batch is buffered — exactly the "I/O becomes the dominating factor"
// regime when interference slows the readers below the consume rate.
//
// Each of the IOProcs reader workers fetches its slice of the batch one
// Block-sized request at a time (DataLoader workers are sequential), so a
// batch keeps exactly IOProcs requests outstanding — the pipeline cannot
// flood the queue the way an unbounded fan-out would.
func runAsync(c *bb.Cluster, app App, job policy.JobInfo, h *Handle) {
	eng := c.Engine()
	perProc := app.IOBytes / int64(app.IOProcs)
	if perProc <= 0 {
		perProc = app.Block
	}
	var (
		buffered       int
		inflight       int
		step           int
		issued         int
		trainerWaiting bool
	)
	var issueBatches func()
	var startStep func()

	issueBatch := func() {
		inflight++
		issued++
		remaining := app.IOProcs
		for p := 0; p < app.IOProcs; p++ {
			target := (issued*app.IOProcs + p) % c.Servers()
			bytes := perProc
			// chain issues this worker's slice sequentially.
			var chain func(time.Duration)
			chain = func(time.Duration) {
				if bytes <= 0 {
					remaining--
					if remaining == 0 {
						inflight--
						buffered++
						if trainerWaiting {
							trainerWaiting = false
							startStep()
						}
						issueBatches()
					}
					return
				}
				n := app.Block
				if n > bytes {
					n = bytes
				}
				bytes -= n
				c.Submit(target, &sched.Request{Job: job, Op: sched.OpRead, Bytes: n, Done: chain})
			}
			chain(0)
		}
	}
	issueBatches = func() {
		for buffered+inflight < app.Prefetch && issued < app.Phases {
			issueBatch()
		}
	}
	startStep = func() {
		if step >= app.Phases {
			h.Finished = true
			h.DoneAt = eng.Now()
			return
		}
		if buffered == 0 {
			trainerWaiting = true
			return
		}
		buffered--
		issueBatches()
		eng.After(app.Compute, func() {
			step++
			if step >= app.Phases {
				h.Finished = true
				h.DoneAt = eng.Now()
				return
			}
			startStep()
		})
	}
	eng.At(0, func() {
		issueBatches()
		startStep()
	})
}

// The application suite, calibrated against the paper's configurations
// (§5.1) and measured baseline I/O fractions (§5.5; see EXPERIMENTS.md
// for the per-app derivation). Volumes are scaled so each app's baseline
// time-to-solution is tens of virtual seconds rather than hours, which
// preserves every reported ratio.
var (
	// NAMD: 64 nodes, trajectory saved every 48 steps (the paper modified
	// the input to do so), making checkpoints a substantial fraction of
	// the run (~21% of baseline); 56 writers saturate the link at baseline.
	NAMD = App{
		Name: "NAMD", Nodes: 64, Phases: 6,
		Compute: 6 * time.Second, IOBytes: 635 * workload.MB, Block: workload.MB,
		IOProcs: 56, Depth: 1, Op: sched.OpWrite,
	}
	// WRF: 4 nodes, 12 km CONUS history output each simulated hour;
	// moderate I/O fraction (~16% of baseline runtime).
	WRF = App{
		Name: "WRF", Nodes: 4, Phases: 6,
		Compute: 5 * time.Second, IOBytes: 365 * workload.MB, Block: workload.MB,
		IOProcs: 56, Depth: 1, Op: sched.OpWrite,
	}
	// BERT: 4 nodes, reads 48 MB HDF5 shards between long compute steps;
	// small I/O fraction (~1.3%), bandwidth-bound bursts.
	BERT = App{
		Name: "BERT", Nodes: 4, Phases: 4,
		Compute: 8 * time.Second, IOBytes: 42 * workload.MB, Block: workload.MB,
		IOProcs: 56, Depth: 1, Op: sched.OpRead,
	}
	// SPECFEM3D: 16 nodes, seismogram dumps; tiny I/O fraction (~1%).
	SPECFEM3D = App{
		Name: "SPECFEM3D", Nodes: 16, Phases: 5,
		Compute: 8 * time.Second, IOBytes: 33 * workload.MB, Block: workload.MB,
		IOProcs: 56, Depth: 1, Op: sched.OpWrite,
	}
	// ResNet-50 with asynchronous I/O (the PyTorch DataLoader pipeline):
	// 16 reader workers stream each step's 2.48 GB batch, prefetch depth
	// 2. At baseline the batch read (~155 ms) hides under the 250 ms
	// compute step (I/O ≈ 0.62× compute, per §5.5's sync-overhead
	// measurement).
	ResNet50 = App{
		Name: "ResNet-50", Nodes: 16, Phases: 60,
		Compute: 250 * time.Millisecond, IOBytes: 2480 * workload.MB, Block: workload.MB,
		IOProcs: 16, Depth: 1, Op: sched.OpRead,
		Async: true, Prefetch: 2,
	}
	// ResNet-50 with synchronous I/O (§5.5's validation variant): reads
	// serialized with compute (IOBytes here is per reader process, as for
	// the other synchronous traces). The per-step volume is reduced
	// relative to the async trace so that the FIFO interference factor
	// lands at the paper's ~2.0x; the cost is a smaller sync-vs-async
	// baseline overhead than the paper's 62.1% (see EXPERIMENTS.md).
	ResNet50Sync = App{
		Name: "ResNet-50-sync", Nodes: 16, Phases: 60,
		Compute: 250 * time.Millisecond, IOBytes: 57 * workload.MB, Block: workload.MB,
		IOProcs: 16, Depth: 1, Op: sched.OpRead,
	}
)

// Suite returns the five applications in the paper's Figure 13 order.
func Suite() []App {
	return []App{NAMD, WRF, BERT, SPECFEM3D, ResNet50}
}
