package apptrace

import (
	"testing"
	"time"

	"themisio/internal/bb"
	"themisio/internal/core"
	"themisio/internal/policy"
	"themisio/internal/sched"
)

func cluster(pol policy.Policy) *bb.Cluster {
	return bb.NewCluster(bb.Config{
		Servers: 2,
		NewSched: func(i int, _ float64) sched.Scheduler {
			return core.New(pol, int64(i)+5)
		},
	})
}

func jobFor(app App) policy.JobInfo {
	return policy.JobInfo{JobID: app.Name, UserID: "sci", GroupID: "g", Nodes: app.Nodes}
}

func TestSyncTraceBaselineDuration(t *testing.T) {
	// A tiny synchronous app: 3 phases of 1 s compute + ~0.5 s I/O.
	app := App{
		Name: "tiny", Nodes: 4, Phases: 3,
		Compute: time.Second, IOBytes: 200 << 20, Block: 1 << 20,
		IOProcs: 56, Depth: 1, Op: sched.OpWrite,
	}
	c := cluster(policy.SizeFair)
	h := Run(c, app, jobFor(app))
	c.Run(time.Minute)
	tts := h.TTS()
	// Expected: 3 × (1 s compute + 56×200 MB / (2×10.9 GB/s write path)
	// ≈ 0.55 s I/O) ≈ 4.6 s.
	if tts < 4300*time.Millisecond || tts > 5000*time.Millisecond {
		t.Fatalf("baseline TTS = %v, want ~4.6s", tts)
	}
}

func TestTTSPanicsIfUnfinished(t *testing.T) {
	app := NAMD
	c := cluster(policy.SizeFair)
	h := Run(c, app, jobFor(app))
	c.Run(time.Second) // far too short
	defer func() {
		if recover() == nil {
			t.Fatal("TTS on unfinished app should panic")
		}
	}()
	h.TTS()
}

// The async pipeline hides I/O when readers keep up: TTS ≈ steps×compute.
func TestAsyncPipelineHidesIO(t *testing.T) {
	app := App{
		Name: "async", Nodes: 8, Phases: 20,
		Compute: 100 * time.Millisecond, IOBytes: 800 << 20, Block: 1 << 20,
		IOProcs: 16, Depth: 1, Op: sched.OpRead,
		Async: true, Prefetch: 2,
	}
	c := cluster(policy.SizeFair)
	h := Run(c, app, jobFor(app))
	c.Run(time.Minute)
	tts := h.TTS()
	want := time.Duration(app.Phases) * app.Compute
	if tts > want+want/4 {
		t.Fatalf("async TTS = %v, want ≈ %v (I/O hidden)", tts, want)
	}
}

// When per-step I/O exceeds compute, the pipeline becomes I/O-bound and
// TTS tracks the read time instead.
func TestAsyncPipelineIOBound(t *testing.T) {
	app := App{
		Name: "asyncio", Nodes: 8, Phases: 10,
		Compute: 10 * time.Millisecond, IOBytes: 2 << 30, Block: 1 << 20,
		IOProcs: 16, Depth: 1, Op: sched.OpRead,
		Async: true, Prefetch: 2,
	}
	c := cluster(policy.SizeFair)
	h := Run(c, app, jobFor(app))
	c.Run(time.Minute)
	tts := h.TTS()
	computeOnly := time.Duration(app.Phases) * app.Compute
	if tts < 5*computeOnly {
		t.Fatalf("I/O-bound async TTS = %v, should far exceed compute-only %v", tts, computeOnly)
	}
}

// The suite definition matches the paper's Figure 13 ordering and node
// counts (§5.1 configurations).
func TestSuiteConfiguration(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d apps", len(suite))
	}
	wantNodes := map[string]int{
		"NAMD": 64, "WRF": 4, "BERT": 4, "SPECFEM3D": 16, "ResNet-50": 16,
	}
	for _, app := range suite {
		if wantNodes[app.Name] != app.Nodes {
			t.Fatalf("%s nodes = %d, want %d", app.Name, app.Nodes, wantNodes[app.Name])
		}
	}
	if !ResNet50.Async || ResNet50Sync.Async {
		t.Fatal("ResNet async/sync flags wrong")
	}
}
