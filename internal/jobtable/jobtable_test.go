package jobtable

import (
	"testing"
	"testing/quick"
	"time"

	"themisio/internal/policy"
)

func info(id string, nodes int) policy.JobInfo {
	return policy.JobInfo{JobID: id, UserID: "u-" + id, GroupID: "g", Nodes: nodes}
}

func TestHeartbeatInsertAndRefresh(t *testing.T) {
	tb := New("s1", time.Second)
	if !tb.Heartbeat(info("a", 4), 0) {
		t.Fatal("first heartbeat should report a new job")
	}
	if tb.Heartbeat(info("a", 4), 500*time.Millisecond) {
		t.Fatal("refresh within timeout should not report change")
	}
	if st, ok := tb.StatusOf("a", 700*time.Millisecond); !ok || st != Active {
		t.Fatalf("status = %v/%v, want active", st, ok)
	}
	if st, _ := tb.StatusOf("a", 2*time.Second); st != Inactive {
		t.Fatal("job should be inactive after timeout")
	}
	// A heartbeat after going stale counts as a change (job revived).
	if !tb.Heartbeat(info("a", 4), 3*time.Second) {
		t.Fatal("revival should report change")
	}
}

func TestObserveTracksPresenceAndDemand(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	tb.Observe(info("a", 4), time.Millisecond)
	act := tb.Active(time.Millisecond)
	if len(act) != 1 || act[0].Presence != 1 {
		t.Fatalf("active = %+v, want presence 1", act)
	}
	snap := tb.Snapshot()
	if snap[0].Demand != 2 {
		t.Fatalf("demand = %d, want 2", snap[0].Demand)
	}
	if !snap[0].Servers["s1"] {
		t.Fatal("server set should contain the observing server")
	}
}

func TestHeartbeatDoesNotExtendServers(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Heartbeat(info("a", 4), 0)
	if len(tb.Snapshot()[0].Servers) != 0 {
		t.Fatal("heartbeat alone should not mark I/O presence")
	}
}

func TestActiveSortedAndFiltered(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("b", 1), 0)
	tb.Observe(info("a", 2), 0)
	tb.Observe(info("c", 3), 5*time.Second)
	act := tb.Active(5 * time.Second)
	if len(act) != 1 || act[0].JobID != "c" {
		t.Fatalf("active at 5s = %+v, want only c", act)
	}
	act = tb.Active(5*time.Second + 500*time.Millisecond)
	if len(act) != 1 || act[0].JobID != "c" {
		t.Fatalf("active = %+v, want [c]", act)
	}
	// Sorted order with everything fresh.
	tb2 := New("s1", time.Minute)
	tb2.Observe(info("b", 1), 0)
	tb2.Observe(info("a", 2), 0)
	tb2.Observe(info("c", 3), 0)
	act = tb2.Active(0)
	if len(act) != 3 || act[0].JobID != "a" || act[1].JobID != "b" || act[2].JobID != "c" {
		t.Fatalf("active = %+v, want sorted [a b c]", act)
	}
}

func TestExpireAndRemove(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 1), 0)
	tb.Observe(info("b", 1), 10*time.Second)
	if n := tb.Expire(10*time.Second, 0); n != 1 {
		t.Fatalf("expired %d entries, want 1 (keep = 4x timeout)", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d, want 1", tb.Len())
	}
	tb.Remove("b")
	if tb.Len() != 0 {
		t.Fatal("remove failed")
	}
}

// Figure 5's scenario: server1 sees jobs 1 (16 nodes) and 2 (8 nodes);
// server2 sees jobs 1 and 3 (8 nodes). After the all-gather both servers
// know all three jobs and job1's presence on two servers.
func TestAllGatherFigure5(t *testing.T) {
	s1 := New("s1", time.Second)
	s2 := New("s2", time.Second)
	s1.Observe(info("job1", 16), 0)
	s1.Observe(info("job2", 8), 0)
	s2.Observe(info("job1", 16), 0)
	s2.Observe(info("job3", 8), 0)

	AllGather([]*Table{s1, s2}, time.Millisecond)

	for _, tb := range []*Table{s1, s2} {
		act := tb.Active(time.Millisecond)
		if len(act) != 3 {
			t.Fatalf("%s active = %d jobs, want 3", tb.Owner(), len(act))
		}
		if act[0].JobID != "job1" || act[0].Presence != 2 {
			t.Fatalf("%s job1 presence = %d, want 2", tb.Owner(), act[0].Presence)
		}
		if act[1].Presence != 1 || act[2].Presence != 1 {
			t.Fatalf("%s jobs 2/3 presence = %d/%d, want 1/1", tb.Owner(), act[1].Presence, act[2].Presence)
		}
	}
}

func TestMergeKeepsFreshest(t *testing.T) {
	s1 := New("s1", time.Second)
	s2 := New("s2", time.Second)
	s1.Observe(info("a", 1), 0)
	s2.Observe(info("a", 1), 3*time.Second)
	s1.Merge(s2.Snapshot(), 3*time.Second)
	if st, _ := s1.StatusOf("a", 3*time.Second); st != Active {
		t.Fatal("merge should revive the job with the fresher heartbeat")
	}
	// Merging an older snapshot must not regress.
	old := []Entry{{Info: info("a", 1), Last: 0, Servers: map[string]bool{}}}
	s1.Merge(old, 3*time.Second)
	if st, _ := s1.StatusOf("a", 3*time.Second); st != Active {
		t.Fatal("older snapshot regressed the heartbeat")
	}
}

// Property: AllGather is idempotent and converges all tables to the same
// active set in one round.
func TestAllGatherConvergenceProperty(t *testing.T) {
	f := func(assign []uint8) bool {
		if len(assign) == 0 {
			return true
		}
		if len(assign) > 60 {
			assign = assign[:60]
		}
		const nServers = 4
		tables := make([]*Table, nServers)
		for i := range tables {
			tables[i] = New("s"+string(rune('0'+i)), time.Second)
		}
		for jid, a := range assign {
			// Each job lands on 1–2 servers derived from its seed byte.
			s1 := int(a) % nServers
			s2 := int(a/4) % nServers
			id := "j" + itoa(jid)
			tables[s1].Observe(policy.JobInfo{JobID: id, UserID: "u", Nodes: 1}, 0)
			tables[s2].Observe(policy.JobInfo{JobID: id, UserID: "u", Nodes: 1}, 0)
		}
		AllGather(tables, time.Millisecond)
		ref := tables[0].Active(time.Millisecond)
		for _, tb := range tables[1:] {
			act := tb.Active(time.Millisecond)
			if len(act) != len(ref) {
				return false
			}
			for i := range act {
				if act[i].JobID != ref[i].JobID || act[i].Presence != ref[i].Presence {
					return false
				}
			}
		}
		// Idempotence.
		AllGather(tables, time.Millisecond)
		again := tables[0].Active(time.Millisecond)
		if len(again) != len(ref) {
			return false
		}
		for i := range again {
			if again[i].Presence != ref[i].Presence {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// DropServer is the failover path: a failed server's sightings vanish
// from every entry, so presence (and the 1/k deweighting) shifts onto
// the survivors.
func TestDropServerShiftsPresence(t *testing.T) {
	a := New("s1", time.Second)
	b := New("s2", time.Second)
	a.Observe(info("j", 4), 0)
	b.Observe(info("j", 4), 0)
	AllGather([]*Table{a, b}, 0)
	if act := a.Active(0); act[0].Presence != 2 {
		t.Fatalf("presence = %d before drop, want 2", act[0].Presence)
	}
	if !a.DropServer("s2") {
		t.Fatal("DropServer should report a change")
	}
	if a.DropServer("s2") {
		t.Fatal("second DropServer should be a no-op")
	}
	if act := a.Active(0); act[0].Presence != 1 {
		t.Fatalf("presence = %d after drop, want 1", act[0].Presence)
	}
	if !a.Snapshot()[0].Servers["s1"] {
		t.Fatal("surviving server's sighting must remain")
	}
}

// The epoch snapshot: Observe/Heartbeat bump the generation only when
// membership (or a policy-relevant attribute) of the active set actually
// changes — never per request — and the published snapshot matches
// Active().
func TestGenerationMovesOnlyOnActiveSetChanges(t *testing.T) {
	tb := New("s1", time.Second)
	if tb.Generation() != 0 {
		t.Fatalf("fresh table generation = %d, want 0", tb.Generation())
	}
	tb.Observe(info("a", 4), 0)
	g1 := tb.Generation()
	if g1 == 0 {
		t.Fatal("new job must bump the generation")
	}
	// A hot request path: hundreds of sightings of the same job.
	for i := 0; i < 500; i++ {
		tb.Observe(info("a", 4), time.Duration(i)*time.Millisecond)
		tb.Heartbeat(info("a", 4), time.Duration(i)*time.Millisecond)
	}
	if tb.Generation() != g1 {
		t.Fatalf("steady traffic moved the generation %d → %d", g1, tb.Generation())
	}
	snap := tb.ActiveSnapshot()
	if snap.Gen != g1 || len(snap.Jobs) != 1 || snap.Jobs[0].JobID != "a" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// A policy-relevant attribute change (job resized) is a new epoch.
	tb.Observe(info("a", 8), 600*time.Millisecond)
	g2 := tb.Generation()
	if g2 == g1 {
		t.Fatal("node-count change must bump the generation")
	}
	// Second job arrival bumps; its steady heartbeats do not.
	tb.Heartbeat(info("b", 1), 700*time.Millisecond)
	g3 := tb.Generation()
	if g3 == g2 {
		t.Fatal("new job via heartbeat must bump the generation")
	}
	tb.Heartbeat(info("b", 1), 800*time.Millisecond)
	if tb.Generation() != g3 {
		t.Fatal("repeat heartbeat must not bump the generation")
	}
}

// Pure decay — a job going silent — is invisible to write-triggered
// republishes; Refresh (the controller's λ tick) catches it.
func TestRefreshCatchesDecayAndDropServer(t *testing.T) {
	tb := New("s1", time.Second)
	tb.Observe(info("a", 4), 0)
	tb.Observe(info("b", 1), 0)
	g := tb.Generation()
	// Nothing written after t=0; job "b"... both decay at 2s.
	if got := tb.Refresh(500 * time.Millisecond); got != g {
		t.Fatalf("refresh inside the window moved generation %d → %d", g, got)
	}
	g2 := tb.Refresh(3 * time.Second)
	if g2 == g {
		t.Fatal("refresh past the timeout must republish the shrunken set")
	}
	if snap := tb.ActiveSnapshot(); len(snap.Jobs) != 0 {
		t.Fatalf("decayed snapshot still lists %v", snap.Jobs)
	}
	// DropServer has no clock: the change lands at the next Refresh.
	a := New("s1", time.Second)
	b := New("s2", time.Second)
	a.Observe(info("j", 4), 0)
	b.Observe(info("j", 4), 0)
	AllGather([]*Table{a, b}, 0)
	gd := a.Generation()
	a.DropServer("s2")
	if a.Generation() != gd {
		t.Fatal("DropServer itself must not republish (it has no clock)")
	}
	if a.Refresh(0) == gd {
		t.Fatal("Refresh after DropServer must publish the presence change")
	}
	if snap := a.ActiveSnapshot(); snap.Jobs[0].Presence != 1 {
		t.Fatalf("presence = %d after drop+refresh, want 1", snap.Jobs[0].Presence)
	}
}

// The snapshot is immutable and consistent with Active() at publish time.
func TestActiveSnapshotMatchesActive(t *testing.T) {
	tb := New("s1", time.Second)
	for i := 0; i < 10; i++ {
		tb.Observe(info("job-"+itoa(i), i+1), time.Duration(i))
	}
	tb.Refresh(time.Duration(9))
	snap := tb.ActiveSnapshot()
	act := tb.Active(time.Duration(9))
	if len(snap.Jobs) != len(act) {
		t.Fatalf("snapshot %d jobs, Active %d", len(snap.Jobs), len(act))
	}
	for i := range act {
		if snap.Jobs[i] != act[i] {
			t.Fatalf("snapshot[%d] = %+v, Active[%d] = %+v", i, snap.Jobs[i], i, act[i])
		}
	}
}
